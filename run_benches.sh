#!/bin/bash
# Full bench sweep with default flags; per-binary wall cap as a safety net.
set -u
out=/root/repo/bench_output.txt
: > "$out"
for b in /root/repo/build/bench/bench_table4 /root/repo/build/bench/bench_table5 \
         /root/repo/build/bench/bench_table6 /root/repo/build/bench/bench_table7 \
         /root/repo/build/bench/bench_fig6 /root/repo/build/bench/bench_fig7 \
         /root/repo/build/bench/bench_fig8 /root/repo/build/bench/bench_ablation; do
  echo "############ $(basename $b) ############" >> "$out"
  timeout 2400 "$b" >> "$out" 2>&1
  echo "(exit: $?)" >> "$out"
  echo >> "$out"
done
echo "############ bench_main ############" >> "$out"
timeout 2400 /root/repo/build/bench/bench_main --faults \
  --json=/root/repo/BENCH_main.json >> "$out" 2>&1
echo "(exit: $?)" >> "$out"
echo >> "$out"
echo "############ bench_parallel ############" >> "$out"
timeout 2400 /root/repo/build/bench/bench_parallel --threads=1,2,4,8 \
  --json=/root/repo/BENCH_parallel.json >> "$out" 2>&1
echo "(exit: $?)" >> "$out"
echo >> "$out"
echo "############ bench_serve ############" >> "$out"
timeout 2400 /root/repo/build/bench/bench_serve --faults \
  --json=/root/repo/BENCH_serve.json >> "$out" 2>&1
echo "(exit: $?)" >> "$out"
echo >> "$out"
echo "############ bench_micro ############" >> "$out"
timeout 900 /root/repo/build/bench/bench_micro --benchmark_min_time=0.2 >> "$out" 2>&1
echo "(exit: $?)" >> "$out"
echo ALL-DONE >> "$out"
