// Query-shape classification (Figure 2 categories) and the TD-Auto
// decision-tree inputs.

#include "query/shape.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"
#include "workload/random_query.h"

namespace parqo {
namespace {

using testing::Tp;

TEST(ShapeTest, SinglePattern) {
  JoinGraph jg({Tp("?x", "p", "?y")});
  EXPECT_EQ(ClassifyShape(jg), QueryShape::kSingle);
}

TEST(ShapeTest, StarAllPatternsShareOneVariable) {
  JoinGraph jg({Tp("?c", "p0", "?x0"), Tp("?c", "p1", "?x1"),
                Tp("?x2", "p2", "?c")});
  EXPECT_EQ(ClassifyShape(jg), QueryShape::kStar);
  EXPECT_EQ(CyclomaticNumber(jg), 0);
}

TEST(ShapeTest, TwoPatternChainVersusStar) {
  // L2-style: ?x worksFor ?y . ?y subOrg <u>  => chain.
  JoinGraph chain({Tp("?x", "worksFor", "?y"), Tp("?y", "subOrg", "u")});
  EXPECT_EQ(ClassifyShape(chain), QueryShape::kChain);
  // L1-style: both patterns have ?x as subject => star.
  JoinGraph star({Tp("?x", "type", "RG"), Tp("?x", "subOrg", "d")});
  EXPECT_EQ(ClassifyShape(star), QueryShape::kStar);
}

TEST(ShapeTest, Chain) {
  JoinGraph jg({Tp("?a", "p0", "?b"), Tp("?b", "p1", "?c"),
                Tp("?c", "p2", "?d"), Tp("?d", "p3", "?e")});
  EXPECT_EQ(ClassifyShape(jg), QueryShape::kChain);
  EXPECT_EQ(CyclomaticNumber(jg), 0);
  EXPECT_GT(TpToJoinVarRatio(jg), 1.0);
}

TEST(ShapeTest, Cycle) {
  JoinGraph jg({Tp("?a", "p0", "?b"), Tp("?b", "p1", "?c"),
                Tp("?c", "p2", "?a")});
  EXPECT_EQ(ClassifyShape(jg), QueryShape::kCycle);
  EXPECT_EQ(CyclomaticNumber(jg), 1);
  EXPECT_DOUBLE_EQ(TpToJoinVarRatio(jg), 1.0);
}

TEST(ShapeTest, Tree) {
  // A "T": center pattern with three join variables.
  JoinGraph jg({Tp("?a", "p0", "?b"), Tp("?b", "p1", "?c"),
                Tp("?b", "p2", "?d"), Tp("?d", "p3", "?e"),
                Tp("?c", "p4", "?f")});
  EXPECT_EQ(ClassifyShape(jg), QueryShape::kTree);
  EXPECT_EQ(CyclomaticNumber(jg), 0);
}

TEST(ShapeTest, DenseFigure1) {
  JoinGraph jg(testing::Figure1Query());
  // Figure 1's query has the cycle tp2-?a-tp7-?d-tp6-?c-tp2.
  EXPECT_EQ(ClassifyShape(jg), QueryShape::kDense);
  EXPECT_GE(CyclomaticNumber(jg), 1);
}

TEST(ShapeTest, RatioBelowOneNeedsMultipleCycles) {
  // Two triangles sharing one pattern: 5 patterns, 6 join variables.
  JoinGraph jg({Tp("?a", "p0", "?b"), Tp("?b", "p1", "?c"),
                Tp("?c", "p2", "?a"), Tp("?a", "p3", "?d"),
                Tp("?d", "p4", "?b")});
  EXPECT_EQ(ClassifyShape(jg), QueryShape::kDense);
  EXPECT_GE(CyclomaticNumber(jg), 2);
}

// The random generator must produce what it is asked for.
struct GenCase {
  QueryShape shape;
  int n;
};

class GeneratorShapeTest : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorShapeTest, ClassifiesAsRequested) {
  Rng rng(1234 + GetParam().n);
  for (int i = 0; i < 10; ++i) {
    GeneratedQuery q =
        GenerateRandomQuery(GetParam().shape, GetParam().n, rng);
    ASSERT_EQ(static_cast<int>(q.patterns.size()), GetParam().n);
    JoinGraph jg(q.patterns);
    EXPECT_TRUE(jg.IsConnected(jg.AllTps()));
    EXPECT_EQ(ClassifyShape(jg), GetParam().shape)
        << ToString(ClassifyShape(jg)) << " for n=" << GetParam().n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeneratorShapeTest,
    ::testing::Values(GenCase{QueryShape::kStar, 4},
                      GenCase{QueryShape::kStar, 12},
                      GenCase{QueryShape::kChain, 5},
                      GenCase{QueryShape::kChain, 16},
                      GenCase{QueryShape::kCycle, 6},
                      GenCase{QueryShape::kCycle, 12},
                      GenCase{QueryShape::kTree, 8},
                      GenCase{QueryShape::kTree, 20},
                      GenCase{QueryShape::kDense, 8},
                      GenCase{QueryShape::kDense, 16}),
    [](const ::testing::TestParamInfo<GenCase>& param_info) {
      return ToString(param_info.param.shape) +
             std::to_string(param_info.param.n);
    });

}  // namespace
}  // namespace parqo
