#include "sparql/parser.h"

#include <gtest/gtest.h>

#include "workload/benchmark_queries.h"

namespace parqo {
namespace {

TEST(SparqlParserTest, ParsesMinimalQuery) {
  auto q = ParseSparql("SELECT ?x WHERE { ?x <http://p> ?y . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select_vars, std::vector<std::string>{"x"});
  ASSERT_EQ(q->patterns.size(), 1u);
  EXPECT_TRUE(q->patterns[0].s.IsVar());
  EXPECT_EQ(q->patterns[0].s.var, "x");
  EXPECT_FALSE(q->patterns[0].p.IsVar());
  EXPECT_EQ(q->patterns[0].p.term.lexical, "http://p");
}

TEST(SparqlParserTest, ExpandsPrefixedNames) {
  auto q = ParseSparql(
      "PREFIX ub: <http://ub#>\n"
      "SELECT * WHERE { ?x ub:worksFor ?y . ?y ub:name \"CS\" }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->select_all);
  ASSERT_EQ(q->patterns.size(), 2u);
  EXPECT_EQ(q->patterns[0].p.term.lexical, "http://ub#worksFor");
  EXPECT_EQ(q->patterns[1].o.term.kind, TermKind::kLiteral);
  EXPECT_EQ(q->patterns[1].o.term.lexical, "CS");
}

TEST(SparqlParserTest, PrefixedNameWithTrailingDot) {
  // "taxon:9606." must parse as the name then the pattern terminator.
  auto q = ParseSparql(
      "PREFIX taxon: <http://tax/>\n"
      "SELECT ?p WHERE { ?p <http://org> taxon:9606. }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->patterns[0].o.term.lexical, "http://tax/9606");
}

TEST(SparqlParserTest, OptionalFinalDot) {
  auto q = ParseSparql(
      "SELECT ?x WHERE { ?x <p> ?y . ?y <q> ?z }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->patterns.size(), 2u);
}

TEST(SparqlParserTest, CaseInsensitiveKeywords) {
  auto q = ParseSparql("select ?x where { ?x <p> ?y }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
}

TEST(SparqlParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseSparql("SELECT WHERE { ?x <p> ?y }").ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x { ?x <p> ?y }").ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x <p> }").ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x <p> ?y ").ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { }").ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x undeclared:p ?y }").ok());
  EXPECT_FALSE(
      ParseSparql("SELECT ?x WHERE { \"lit\" <p> ?y }").ok());
  EXPECT_FALSE(ParseSparql("").ok());
}

TEST(SparqlParserTest, VariablePositionsEverywhere) {
  auto q = ParseSparql("SELECT * WHERE { ?s ?p ?o }");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->patterns[0].p.IsVar());
}

TEST(SparqlParserTest, RoundTripsThroughToString) {
  auto q1 = ParseSparql(
      "SELECT ?x ?y WHERE { ?x <http://p> ?y . ?y <http://q> \"v\" . }");
  ASSERT_TRUE(q1.ok());
  auto q2 = ParseSparql(q1->ToString());
  ASSERT_TRUE(q2.ok()) << q2.status().ToString() << "\n" << q1->ToString();
  EXPECT_EQ(q1->patterns, q2->patterns);
}

// Every benchmark query of Table III must parse with the advertised size.
class BenchmarkQueryParseTest
    : public ::testing::TestWithParam<BenchmarkQuery> {};

TEST_P(BenchmarkQueryParseTest, ParsesWithExpectedSize) {
  const BenchmarkQuery& bq = GetParam();
  auto q = ParseSparql(bq.sparql);
  ASSERT_TRUE(q.ok()) << bq.name << ": " << q.status().ToString();
  EXPECT_EQ(static_cast<int>(q->patterns.size()), bq.num_patterns)
      << bq.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarkQueries, BenchmarkQueryParseTest,
    ::testing::ValuesIn(AllBenchmarkQueries()),
    [](const ::testing::TestParamInfo<BenchmarkQuery>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace parqo
