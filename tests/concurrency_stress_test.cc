// Concurrency stress for the annotated-lock subsystems, written for the
// CI ThreadSanitizer job: a serving storm (QueryServer::ServeConcurrent)
// races direct PlanCache eviction churn and a MetricsRegistry snapshot
// loop, so every lock the wrappers in common/thread_annotations.h now
// mediate — cache shards, pool queue, metrics maps — is hammered from
// three directions at once. The second half exercises the runtime
// LockRank checker itself: hierarchy-ordered nesting must pass, and
// misordered or same-rank nesting must abort (death tests), proving the
// dynamic layer of the lock discipline enforces what the linter and the
// clang analysis check statically.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "exec/cluster.h"
#include "partition/hash_so.h"
#include "plan/plan.h"
#include "server/plan_cache.h"
#include "server/server.h"
#include "tests/test_util.h"
#include "workload/watdiv.h"

namespace parqo {
namespace {

constexpr int kNodes = 4;

const RdfGraph& StressGraph() {
  // parqo-lint: allow(naked-new) leaked cached dataset
  static const RdfGraph& g = *new RdfGraph([] {
    WatdivDataConfig cfg;
    cfg.entities_per_class = 120;
    cfg.density = 1.1;
    return GenerateWatdivData(cfg);
  }());
  return g;
}

const Cluster& StressCluster() {
  // parqo-lint: allow(naked-new) leaked cached cluster
  static const Cluster& c = *new Cluster(
      StressGraph(), HashSoPartitioner().PartitionData(StressGraph(), kNodes));
  return c;
}

const HashSoPartitioner& Part() {
  static HashSoPartitioner part;
  return part;
}

PlanNodePtr MakeScanPlan(int tp, double sentinel) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kScan;
  node->tp = tp;
  node->total_cost = sentinel;
  return node;
}

// --------------------------------------------------------------------------
// The three-way storm: serving sessions (which miss, optimize, insert,
// and hit the cache through the pool), a dedicated eviction churner
// driving the same tiny cache shards past capacity, and a metrics
// snapshot loop copying the registry maps while serving threads create
// and bump instruments. Run under TSan this covers every Mutex the
// refactor introduced; without TSan it is still a crash/consistency test
// (every copied-out plan must stay whole, rows per signature must agree).

TEST(ConcurrencyStressTest, ServingRacesEvictionChurnAndMetricsSnapshots) {
  SetMetricsEnabled(true);

  ServerConfig config;
  config.num_threads = 4;
  config.cache_shards = 2;
  config.cache_shard_capacity = 2;  // more templates than capacity: evict
  QueryServer server(StressGraph(), StressCluster(), Part(), config);

  Rng rng(2017);
  std::vector<WatdivTemplate> templates = GenerateWatdivTemplates(40, rng);
  std::vector<std::vector<TriplePattern>> stream;
  for (int i = 0; i < 64; ++i) {
    stream.push_back(templates[i % 12].patterns);
  }

  std::atomic<bool> stop{false};

  // Metrics snapshot loop: copies the registry maps (kMetrics lock)
  // while serving threads call counter()/histogram() concurrently.
  std::atomic<std::uint64_t> snapshots{0};
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
      // Touch the copy so the reads cannot be optimized away.
      if (snap.CounterValue("server.cache.inserts") <
          std::uint64_t{1} << 62) {
        snapshots.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Eviction churner: inserts/looks up synthetic entries in the same
  // cache the sessions use, so shard locks see foreign traffic and the
  // LRU is constantly evicting under the sessions' feet.
  std::atomic<std::uint64_t> churn_validated{0};
  std::thread churner([&] {
    PlanCache& cache = server.cache();
    const std::string hot_key = PlanCache::MakeKey("churn-hot", "hash-so");
    CachedPlan hot;
    hot.plan = MakeScanPlan(3, 42.0);
    hot.plan_cost = 42.0;
    int i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      CachedPlan filler;
      filler.plan = MakeScanPlan(i % 16, 1.0);
      cache.Insert(PlanCache::MakeKey("churn" + std::to_string(i % 512),
                                      "hash-so"),
                   std::move(filler));
      cache.Insert(hot_key, hot);
      std::optional<CachedPlan> got = cache.Lookup(hot_key);
      if (got) {
        ASSERT_NE(got->plan, nullptr);
        ASSERT_EQ(got->plan->total_cost, 42.0);
        churn_validated.fetch_add(1, std::memory_order_relaxed);
      }
      (void)cache.size();  // sequential shard locking vs. shard traffic
      ++i;
    }
  });

  std::vector<ServeResult> results = server.ServeConcurrent(stream, 4);
  stop.store(true, std::memory_order_release);
  snapshotter.join();
  churner.join();
  SetMetricsEnabled(false);

  ASSERT_EQ(results.size(), stream.size());
  std::map<std::string, double> cost_by_signature;
  for (const ServeResult& r : results) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    ASSERT_NE(r.plan, nullptr);
    // Plans for one signature must agree no matter how the entry raced
    // eviction (a copied-out CachedPlan is immune to churn by contract).
    auto [it, inserted] =
        cost_by_signature.emplace(r.signature, r.plan->total_cost);
    if (!inserted) {
      EXPECT_EQ(r.plan->total_cost, it->second)
          << "signature " << r.signature;
    }
  }
  EXPECT_GT(server.cache().evictions(), 0u);
  EXPECT_GT(churn_validated.load(), 0u);
  EXPECT_GT(snapshots.load(), 0u);
}

// --------------------------------------------------------------------------
// Runtime LockRank checker: the dynamic third of the lock discipline.

TEST(LockRankCheckerTest, HierarchyOrderedNestingPasses) {
  bool prev = LockRankCheckingEnabled();
  SetLockRankCheckingEnabled(true);
  Mutex shard(LockRank::kCacheShard);
  Mutex metrics(LockRank::kMetrics);
  {
    MutexLock outer(shard);
    MutexLock inner(metrics);  // 20 -> 80 climbs the hierarchy
  }
  {
    // Sequential reacquisition at a lower rank is fine once the higher
    // lock is released — only simultaneous holding is ordered.
    MutexLock again(shard);
  }
  SetLockRankCheckingEnabled(prev);
}

TEST(LockRankCheckerTest, ToggleWhileHeldNeitherAbortsNorLeaksRank) {
  bool prev = LockRankCheckingEnabled();
  Mutex mu(LockRank::kPool);
  SetLockRankCheckingEnabled(false);
  {
    MutexLock held(mu);  // acquired unchecked...
    SetLockRankCheckingEnabled(true);
  }  // ...released checked: the tolerant pop must not abort
  {
    MutexLock held(mu);  // acquired checked...
    SetLockRankCheckingEnabled(false);
  }  // ...released unchecked: must not leave a stale rank behind
  SetLockRankCheckingEnabled(true);
  {
    MutexLock clean(mu);  // a leaked kPool entry would abort here
  }
  SetLockRankCheckingEnabled(prev);
}

TEST(LockRankCheckerDeathTest, MisorderedNestingAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetLockRankCheckingEnabled(true);
        Mutex metrics(LockRank::kMetrics);
        Mutex shard(LockRank::kCacheShard);
        MutexLock outer(metrics);
        MutexLock inner(shard);  // 80 -> 20 descends: abort
      },
      "lock rank order");
}

TEST(LockRankCheckerDeathTest, SameRankNestingAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetLockRankCheckingEnabled(true);
        Mutex a(LockRank::kPool);
        Mutex b(LockRank::kPool);
        MutexLock outer(a);
        MutexLock inner(b);  // same rank: no defined order, abort
      },
      "lock rank order");
}

}  // namespace
}  // namespace parqo
