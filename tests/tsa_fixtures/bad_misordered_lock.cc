// Negative fixture: lock acquisitions against the declared order.
// `fine` is declared PARQO_ACQUIRED_AFTER(coarse), and the LockRank
// values (kCacheShard = 20 for coarse, kMetrics = 80 for fine) say the
// same thing; Backwards() takes them in reverse. tools/
// check_tsa_fixtures.py asserts clang REJECTS this file (the
// acquired_after relation is checked under -Wthread-safety-beta) and
// tools/parqo_lint_test.py asserts the linter reports lock-rank-order.
// If either starts accepting it, the enforcement is broken — do not
// "fix" this file to make tools pass.

#include "common/thread_annotations.h"

namespace parqo {
namespace {

struct Ordered {
  Mutex coarse{LockRank::kCacheShard};
  Mutex fine PARQO_ACQUIRED_AFTER(coarse) = Mutex(LockRank::kMetrics);
  int entries PARQO_GUARDED_BY(coarse) = 0;
  int samples PARQO_GUARDED_BY(fine) = 0;
};

void Backwards(Ordered& ordered) {
  MutexLock inner(ordered.fine);    // rank 80 taken first
  MutexLock outer(ordered.coarse);  // rank 20 inside it: misordered
  ++ordered.entries;
  ++ordered.samples;
}

}  // namespace
}  // namespace parqo

int main() {
  parqo::Ordered ordered;
  parqo::Backwards(ordered);
  return 0;
}
