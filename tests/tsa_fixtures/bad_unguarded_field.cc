// Negative fixture: guarded state touched without its lock, and a
// mutable member of a mutex-owning type with no GUARDED_BY and no written
// reason. tools/check_tsa_fixtures.py asserts clang REJECTS this file
// (-Wthread-safety -Werror: the unlocked `hits` accesses) and
// tools/parqo_lint_test.py asserts the linter reports guarded-field (the
// bare `rows` member). If either starts accepting it, the enforcement is
// broken — do not "fix" this file to make tools pass.

#include "common/thread_annotations.h"

namespace parqo {
namespace {

struct TableStats {
  Mutex mu{LockRank::kLeaf};
  long hits PARQO_GUARDED_BY(mu) = 0;
  long rows = 0;  // guarded-field: no annotation, no written reason
};

long TouchWithoutLock(TableStats& stats) {
  stats.hits += 1;   // clang: writing 'hits' requires holding 'mu'
  return stats.hits;  // clang: reading 'hits' requires holding 'mu'
}

}  // namespace
}  // namespace parqo

int main() {
  parqo::TableStats stats;
  return static_cast<int>(parqo::TouchWithoutLock(stats));
}
