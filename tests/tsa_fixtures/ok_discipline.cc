// Positive control for the thread-safety toolchain: this file follows
// every rule of the lock discipline (ranked mutexes, GUARDED_BY on every
// mutable member or a written reason, RAII-only acquisition, nesting that
// climbs the hierarchy, a declared ACQUIRED_AFTER order taken in order).
// tools/check_tsa_fixtures.py asserts it compiles CLEANLY under
//   clang -fsyntax-only -Wthread-safety -Wthread-safety-beta -Werror
// and tools/parqo_lint_test.py asserts the linter reports nothing. If
// either starts failing, the toolchain itself regressed — fix the tools,
// not this file.

#include "common/thread_annotations.h"

namespace parqo {
namespace {

struct BoundedQueue {
  Mutex mu{LockRank::kPool};
  int pending PARQO_GUARDED_BY(mu) = 0;
  // parqo-lint: allow(guarded-field) written once before the queue is shared
  int limit = 16;
};

/// Locked helper: the REQUIRES contract replaces a redundant acquisition.
int DrainLocked(BoundedQueue& q) PARQO_REQUIRES(q.mu) {
  int drained = q.pending;
  q.pending = 0;
  return drained;
}

struct Layered {
  Mutex shard_mu{LockRank::kCacheShard};
  /// Declared order: shard_mu first, stats_mu inside it (20 -> 80 also
  /// climbs the LockRank hierarchy, so all three checkers agree).
  Mutex stats_mu PARQO_ACQUIRED_AFTER(shard_mu) = Mutex(LockRank::kMetrics);
  int entries PARQO_GUARDED_BY(shard_mu) = 0;
  int lookups PARQO_GUARDED_BY(stats_mu) = 0;
};

void TouchInOrder(Layered& layered, BoundedQueue& q) {
  {
    MutexLock shard(layered.shard_mu);
    MutexLock stats(layered.stats_mu);
    ++layered.entries;
    ++layered.lookups;
  }
  MutexLock lock(q.mu);
  ++q.pending;
  if (q.pending > q.limit) {
    (void)DrainLocked(q);
  }
}

}  // namespace
}  // namespace parqo

int main() {
  parqo::BoundedQueue q;
  parqo::Layered layered;
  parqo::TouchInOrder(layered, q);
  return 0;
}
