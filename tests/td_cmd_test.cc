// TD-CMD (Algorithm 1): search-space size against the closed forms of
// Section III-D (this is Table VII's exactness check), plan validity,
// locality handling, and timeout behavior.

#include "optimizer/td_cmd.h"

#include <functional>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "optimizer/enumeration_stats.h"
#include "plan/validate.h"
#include "tests/optimizer_test_util.h"
#include "tests/test_util.h"

namespace parqo {
namespace {

using testing::QueryFixture;

OptimizeResult RunOn(const QueryFixture& fx, bool pruned = false,
                     double timeout = 600) {
  OptimizeOptions options;
  options.timeout_seconds = timeout;
  return RunTdCmd(fx.inputs(), options, pruned);
}

TEST(TdCmdTest, ChainSearchSpaceMatchesEquation8) {
  for (int n : {4, 8, 16}) {
    Rng rng(n);
    QueryFixture fx(GenerateRandomQuery(QueryShape::kChain, n, rng),
                    /*use_hash_locality=*/false);
    OptimizeResult r = RunOn(fx);
    ASSERT_NE(r.plan, nullptr);
    EXPECT_EQ(r.enumerated, ChainSearchSpace(n)) << "n=" << n;
  }
}

TEST(TdCmdTest, CycleSearchSpaceMatchesEquation9) {
  for (int n : {4, 8, 16}) {
    Rng rng(n);
    QueryFixture fx(GenerateRandomQuery(QueryShape::kCycle, n, rng),
                    /*use_hash_locality=*/false);
    OptimizeResult r = RunOn(fx);
    ASSERT_NE(r.plan, nullptr);
    EXPECT_EQ(r.enumerated, CycleSearchSpace(n)) << "n=" << n;
  }
}

TEST(TdCmdTest, StarSearchSpaceMatchesEquation7) {
  for (int n : {4, 6, 8}) {
    Rng rng(n);
    QueryFixture fx(GenerateRandomQuery(QueryShape::kStar, n, rng),
                    /*use_hash_locality=*/false);
    OptimizeResult r = RunOn(fx);
    ASSERT_NE(r.plan, nullptr);
    EXPECT_EQ(r.enumerated, StarSearchSpace(n)) << "n=" << n;
  }
}

TEST(TdCmdTest, PlansAreValidAndComplete) {
  for (QueryShape shape : {QueryShape::kStar, QueryShape::kChain,
                           QueryShape::kCycle, QueryShape::kTree,
                           QueryShape::kDense}) {
    Rng rng(77);
    QueryFixture fx(GenerateRandomQuery(shape, 8, rng));
    OptimizeResult r = RunOn(fx);
    ASSERT_NE(r.plan, nullptr) << ToString(shape);
    EXPECT_TRUE(ValidatePlan(*r.plan, fx.jg(), nullptr).ok())
        << ToString(shape);
    EXPECT_FALSE(r.timed_out);
    EXPECT_GT(r.enumerated, 0u);
  }
}

TEST(TdCmdTest, LocalStarQueryGetsLocalPlanUnderHash) {
  // A star query is fully local under Hash-SO; the best plan must be the
  // single local join (no network cost beats any distributed plan).
  Rng rng(3);
  QueryFixture fx(GenerateRandomQuery(QueryShape::kStar, 5, rng),
                  /*use_hash_locality=*/true);
  OptimizeResult r = RunOn(fx);
  ASSERT_NE(r.plan, nullptr);
  EXPECT_EQ(r.plan->method, JoinMethod::kLocal);
  EXPECT_EQ(r.plan->JoinDepth(), 1);
  EXPECT_EQ(r.plan->children.size(), 5u);
}

TEST(TdCmdTest, WithoutLocalityDistributedJoinsAreUsed) {
  Rng rng(3);
  QueryFixture fx(GenerateRandomQuery(QueryShape::kStar, 5, rng),
                  /*use_hash_locality=*/false);
  OptimizeResult r = RunOn(fx);
  ASSERT_NE(r.plan, nullptr);
  EXPECT_NE(r.plan->method, JoinMethod::kLocal);
}

TEST(TdCmdTest, TimeoutReturnsNoPlan) {
  Rng rng(4);
  QueryFixture fx(GenerateRandomQuery(QueryShape::kDense, 24, rng));
  OptimizeResult r = RunOn(fx, /*pruned=*/false, /*timeout=*/1e-4);
  EXPECT_TRUE(r.timed_out);
  EXPECT_EQ(r.plan, nullptr);
}

TEST(TdCmdTest, DeterministicAcrossRuns) {
  Rng rng(5);
  GeneratedQuery q = GenerateRandomQuery(QueryShape::kTree, 9, rng);
  QueryFixture fx1(q), fx2(q);
  OptimizeResult r1 = RunOn(fx1);
  OptimizeResult r2 = RunOn(fx2);
  ASSERT_NE(r1.plan, nullptr);
  ASSERT_NE(r2.plan, nullptr);
  EXPECT_DOUBLE_EQ(r1.plan->total_cost, r2.plan->total_cost);
  EXPECT_EQ(r1.enumerated, r2.enumerated);
}

TEST(TdCmdTest, LinearAmortizedEnumerationIsFastOnChains) {
  // The optimal-efficiency claim (Section III): chain-30 has only 4,495
  // operators, so exhaustive optimization must be effectively instant.
  // A generous ceiling guards against accidental quadratic regressions.
  Rng rng(123);
  QueryFixture fx(GenerateRandomQuery(QueryShape::kChain, 30, rng),
                  /*use_hash_locality=*/false);
  OptimizeResult r = RunOn(fx);
  ASSERT_NE(r.plan, nullptr);
  EXPECT_FALSE(r.timed_out);
  EXPECT_LT(r.seconds, 2.0);
  EXPECT_EQ(r.enumerated, ChainSearchSpace(30));
}

TEST(TdCmdpTest, SearchSpaceEqualsTdCmdOnChains) {
  // Table VII: chain and cycle rows are identical for TD-CMD and TD-CMDP.
  for (QueryShape shape : {QueryShape::kChain, QueryShape::kCycle}) {
    Rng rng(6);
    GeneratedQuery q = GenerateRandomQuery(shape, 10, rng);
    QueryFixture fx1(q, false), fx2(q, false);
    EXPECT_EQ(RunOn(fx1, false).enumerated, RunOn(fx2, true).enumerated)
        << ToString(shape);
  }
}

TEST(TdCmdpTest, PrunesStarsTreesAndDense) {
  for (QueryShape shape :
       {QueryShape::kStar, QueryShape::kTree, QueryShape::kDense}) {
    Rng rng(7);
    GeneratedQuery q = GenerateRandomQuery(shape, 9, rng);
    QueryFixture fx1(q, false), fx2(q, false);
    OptimizeResult full = RunOn(fx1, false);
    OptimizeResult pruned = RunOn(fx2, true);
    if (fx1.jg().MaxJoinVarDegree() >= 4) {
      // Rule 1 only bites when some join variable admits incomplete k>2
      // divisions (a degree-3 variable's ternary divisions are all
      // complete already).
      EXPECT_LT(pruned.enumerated, full.enumerated) << ToString(shape);
    } else {
      EXPECT_LE(pruned.enumerated, full.enumerated) << ToString(shape);
    }
    // Rule-pruned plans cannot beat the optimum.
    EXPECT_GE(pruned.plan->total_cost, full.plan->total_cost);
  }
}

TEST(TdCmdpTest, LocalShortCircuitSkipsEnumeration) {
  // Rule 3: a fully local query returns the local join immediately.
  Rng rng(8);
  QueryFixture fx(GenerateRandomQuery(QueryShape::kStar, 8, rng),
                  /*use_hash_locality=*/true);
  OptimizeResult r = RunOn(fx, /*pruned=*/true);
  ASSERT_NE(r.plan, nullptr);
  EXPECT_EQ(r.plan->method, JoinMethod::kLocal);
  EXPECT_EQ(r.enumerated, 0u);
}

TEST(TdCmdpTest, BinaryBroadcastRuleHolds) {
  // Rule 2: no k>2 broadcast joins anywhere in a TD-CMDP plan.
  Rng rng(9);
  QueryFixture fx(GenerateRandomQuery(QueryShape::kTree, 10, rng), false);
  OptimizeResult r = RunOn(fx, /*pruned=*/true);
  ASSERT_NE(r.plan, nullptr);
  std::function<void(const PlanNode&)> check = [&](const PlanNode& n) {
    if (n.kind == PlanNode::Kind::kJoin &&
        n.method == JoinMethod::kBroadcast) {
      EXPECT_EQ(n.children.size(), 2u);
    }
    for (const PlanNodePtr& c : n.children) check(*c);
  };
  check(*r.plan);
}

}  // namespace
}  // namespace parqo
