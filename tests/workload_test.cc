// Workload generators: LUBM/UniProt schema coverage (every benchmark
// query must have matching bindings for its patterns), WatDiv template
// structure, and synthetic statistics ranges.

#include <gtest/gtest.h>

#include "query/shape.h"
#include "sparql/parser.h"
#include "stats/data_stats.h"
#include "workload/benchmark_queries.h"
#include "workload/lubm.h"
#include "workload/random_query.h"
#include "workload/uniprot.h"
#include "workload/watdiv.h"

namespace parqo {
namespace {

TEST(LubmGeneratorTest, ScalesWithUniversities) {
  LubmConfig small;
  small.universities = 1;
  LubmConfig larger = small;
  larger.universities = 4;
  RdfGraph g1 = GenerateLubm(small);
  RdfGraph g4 = GenerateLubm(larger);
  EXPECT_GT(g1.NumTriples(), 500u);
  EXPECT_GT(g4.NumTriples(), g1.NumTriples() * 3);
}

TEST(LubmGeneratorTest, DeterministicForSeed) {
  LubmConfig cfg;
  cfg.universities = 1;
  RdfGraph a = GenerateLubm(cfg);
  RdfGraph b = GenerateLubm(cfg);
  EXPECT_EQ(a.NumTriples(), b.NumTriples());
}

TEST(BenchmarkQueryTest, TableThreeShapesAndSizes) {
  ASSERT_EQ(AllBenchmarkQueries().size(), 15u);
  for (const BenchmarkQuery& bq : AllBenchmarkQueries()) {
    auto parsed = ParseSparql(bq.sparql);
    ASSERT_TRUE(parsed.ok()) << bq.name;
    JoinGraph jg(parsed->patterns);
    EXPECT_EQ(ClassifyShape(jg), bq.shape) << bq.name;
    EXPECT_EQ(jg.num_tps(), bq.num_patterns) << bq.name;
  }
  EXPECT_EQ(GetBenchmarkQuery("L9").num_patterns, 11);
}

// Every pattern of every benchmark query must match data in its dataset;
// otherwise the Table IV/V/VI reproduction would optimize trivia.
class QueryCoverageTest : public ::testing::TestWithParam<BenchmarkQuery> {
 protected:
  static const RdfGraph& Lubm() {
    // parqo-lint: allow(naked-new) leaked cached dataset
    static const RdfGraph& g = *new RdfGraph([] {
      LubmConfig cfg;
      cfg.universities = 7;
      return GenerateLubm(cfg);
    }());
    return g;
  }
  static const RdfGraph& Uniprot() {
    // parqo-lint: allow(naked-new) leaked cached dataset
    static const RdfGraph& g = *new RdfGraph([] {
      UniprotConfig cfg;
      cfg.proteins = 1500;
      return GenerateUniprot(cfg);
    }());
    return g;
  }
};

TEST_P(QueryCoverageTest, EveryPatternHasMatches) {
  const BenchmarkQuery& bq = GetParam();
  const RdfGraph& g = bq.lubm ? Lubm() : Uniprot();
  auto parsed = ParseSparql(bq.sparql);
  ASSERT_TRUE(parsed.ok());
  JoinGraph jg(parsed->patterns);
  QueryStatistics stats = ComputeStatisticsFromGraph(jg, g);
  for (int tp = 0; tp < jg.num_tps(); ++tp) {
    // Cardinality 1 is the floor for empty matches; require real matches
    // by checking the constants resolve and some count was recorded.
    EXPECT_GE(stats.Cardinality(tp), 1.0) << bq.name << " tp" << tp;
  }
  // The whole-query constants must at least resolve in the dictionary.
  for (const TriplePattern& tp : parsed->patterns) {
    for (const PatternTerm* t : {&tp.s, &tp.p, &tp.o}) {
      if (!t->IsVar()) {
        EXPECT_NE(g.dict().Lookup(t->term), kInvalidTermId)
            << bq.name << " misses constant " << t->term.lexical;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, QueryCoverageTest,
    ::testing::ValuesIn(AllBenchmarkQueries()),
    [](const ::testing::TestParamInfo<BenchmarkQuery>& param_info) {
      return param_info.param.name;
    });

TEST(UniprotGeneratorTest, U2ChainIsGuaranteed) {
  UniprotConfig cfg;
  cfg.proteins = 200;
  RdfGraph g = GenerateUniprot(cfg);
  EXPECT_NE(g.dict().LookupIri("http://purl.uniprot.org/uniprot/Q4N2B5"),
            kInvalidTermId);
}

TEST(WatdivGeneratorTest, TemplatesAreConnectedAndSized) {
  Rng rng(99);
  auto templates = GenerateWatdivTemplates(124, rng);
  ASSERT_EQ(templates.size(), 124u);
  int stars = 0;
  for (const WatdivTemplate& t : templates) {
    ASSERT_GE(t.patterns.size(), 2u);
    ASSERT_LE(t.patterns.size(), 10u);
    JoinGraph jg(t.patterns);
    EXPECT_TRUE(jg.IsConnected(jg.AllTps())) << "template " << t.id;
    if (ClassifyShape(jg) == QueryShape::kStar) ++stars;
  }
  // The WatDiv mix is dominated by stars and star-joins.
  EXPECT_GT(stars, 10);
}

TEST(WatdivGeneratorTest, InstancesVaryStatisticsNotStructure) {
  Rng rng(100);
  auto templates = GenerateWatdivTemplates(3, rng);
  GeneratedQuery a = InstantiateWatdivTemplate(templates[0], rng);
  GeneratedQuery b = InstantiateWatdivTemplate(templates[0], rng);
  EXPECT_EQ(a.patterns, b.patterns);
  EXPECT_NE(a.cardinalities, b.cardinalities);
  for (double c : a.cardinalities) {
    EXPECT_GE(c, 1);
    EXPECT_LE(c, 1000);
  }
}

TEST(RandomQueryTest, StatisticsRespectPaperRanges) {
  Rng rng(101);
  GeneratedQuery q = GenerateRandomQuery(QueryShape::kTree, 10, rng);
  JoinGraph jg(q.patterns);
  QueryStatistics stats = q.MakeStats(jg);
  for (int tp = 0; tp < jg.num_tps(); ++tp) {
    EXPECT_GE(stats.Cardinality(tp), 1);
    EXPECT_LE(stats.Cardinality(tp), 1000);
    for (VarId v : jg.VarsOf(tp)) {
      EXPECT_GE(stats.Bindings(tp, v), 1);
      EXPECT_LE(stats.Bindings(tp, v), stats.Cardinality(tp));
    }
  }
}

}  // namespace
}  // namespace parqo
