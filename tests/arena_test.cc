#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/flat_map.h"
#include "common/scratch_pool.h"
#include "common/tp_set.h"

namespace parqo {
namespace {

//===--------------------------------------------------------------------===//
// Arena
//===--------------------------------------------------------------------===//

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  struct Aligned16 {
    alignas(16) char data[24];
  };
  std::vector<void*> ptrs;
  for (int i = 0; i < 100; ++i) {
    void* p1 = arena.Allocate(1, 1);
    void* p8 = arena.Allocate(8, 8);
    void* p16 = arena.New<Aligned16>();
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p8) % 8, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p16) % 16, 0u);
    ptrs.push_back(p1);
    ptrs.push_back(p8);
    ptrs.push_back(p16);
  }
  // Writing each allocation's full extent must not corrupt any other:
  // stamp everything, then verify everything.
  std::memset(ptrs[0], 0xab, 1);
  for (std::size_t i = 0; i < ptrs.size(); i += 3) {
    std::memset(ptrs[i], static_cast<int>(i & 0xff), 1);
    std::memset(ptrs[i + 1], static_cast<int>((i + 1) & 0xff), 8);
    std::memset(ptrs[i + 2], static_cast<int>((i + 2) & 0xff), 24);
  }
  for (std::size_t i = 0; i < ptrs.size(); i += 3) {
    EXPECT_EQ(*static_cast<unsigned char*>(ptrs[i]), i & 0xff);
    for (int b = 0; b < 8; ++b) {
      EXPECT_EQ(static_cast<unsigned char*>(ptrs[i + 1])[b], (i + 1) & 0xff);
    }
  }
}

TEST(ArenaTest, GrowsByWholeBlocksAndTracksUsage) {
  Arena arena(/*block_bytes=*/256);
  EXPECT_EQ(arena.num_blocks(), 0u);
  EXPECT_EQ(arena.bytes_used(), 0u);

  arena.Allocate(100, 8);
  EXPECT_EQ(arena.num_blocks(), 1u);
  EXPECT_EQ(arena.bytes_used(), 100u);
  EXPECT_GE(arena.bytes_reserved(), 256u);

  // Exhaust the first block: a second one appears.
  for (int i = 0; i < 10; ++i) arena.Allocate(100, 8);
  EXPECT_GE(arena.num_blocks(), 2u);
  EXPECT_EQ(arena.bytes_used(), 1100u);
}

TEST(ArenaTest, OversizeAllocationGetsDedicatedBlock) {
  Arena arena(/*block_bytes=*/128);
  void* small = arena.Allocate(16, 8);
  void* big = arena.Allocate(4096, 8);  // far larger than a block
  ASSERT_NE(big, nullptr);
  std::memset(big, 0x5a, 4096);  // the whole request must be writable
  EXPECT_NE(small, big);
  // The arena can keep allocating small objects afterwards.
  void* after = arena.Allocate(16, 8);
  ASSERT_NE(after, nullptr);
  std::memset(after, 0x11, 16);
}

TEST(ArenaTest, ResetReusesBlocksWithoutNewReservation) {
  Arena arena(/*block_bytes=*/512);
  for (int i = 0; i < 64; ++i) arena.Allocate(64, 8);
  std::size_t reserved = arena.bytes_reserved();
  std::size_t blocks = arena.num_blocks();
  ASSERT_GE(blocks, 2u);

  for (int round = 0; round < 5; ++round) {
    arena.Reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    for (int i = 0; i < 64; ++i) {
      void* p = arena.Allocate(64, 8);
      std::memset(p, round, 64);
    }
    // A warm arena never grows: same blocks, same reservation.
    EXPECT_EQ(arena.bytes_reserved(), reserved);
    EXPECT_EQ(arena.num_blocks(), blocks);
  }
}

TEST(ArenaTest, NewConstructsAndNewArrayIsWritable) {
  struct Node {
    int a;
    double b;
  };
  Arena arena;
  Node* n = arena.New<Node>(Node{7, 2.5});
  EXPECT_EQ(n->a, 7);
  EXPECT_EQ(n->b, 2.5);

  int* arr = arena.NewArray<int>(1000);
  for (int i = 0; i < 1000; ++i) arr[i] = i;
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(arr[i], i);
}

TEST(ArenaTest, ZeroSizedAllocationsYieldDistinctPointers) {
  Arena arena;
  void* a = arena.Allocate(0, 1);
  void* b = arena.Allocate(0, 1);
  EXPECT_NE(a, b);
}

#if defined(PARQO_ASAN)
TEST(ArenaDeathTest, UseAfterResetIsPoisoned) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Arena arena;
        int* p = arena.New<int>(42);
        arena.Reset();
        // Poisoned: the write must fault under ASan.
        *p = 7;
      },
      "use-after-poison");
}

TEST(ArenaDeathTest, OverflowPastAllocationIsPoisoned) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Arena arena;
        char* p = static_cast<char*>(arena.Allocate(8, 8));
        // Redzone between allocations: one past the end is poisoned.
        p[8] = 1;
      },
      "use-after-poison");
}
#endif  // PARQO_ASAN

//===--------------------------------------------------------------------===//
// FlatTpSetMap
//===--------------------------------------------------------------------===//

TEST(FlatTpSetMapTest, FindOnEmptyMap) {
  FlatTpSetMap<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(TpSet::Singleton(3)), nullptr);
}

TEST(FlatTpSetMapTest, InsertAndFind) {
  FlatTpSetMap<int> map;
  auto [v, inserted] = map.EmplaceFirstWins(TpSet::Singleton(1), 10);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*v, 10);
  EXPECT_EQ(map.size(), 1u);

  const int* found = map.Find(TpSet::Singleton(1));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(*found, 10);
  EXPECT_EQ(map.Find(TpSet::Singleton(2)), nullptr);
}

TEST(FlatTpSetMapTest, FirstInsertWins) {
  FlatTpSetMap<int> map;
  TpSet key = TpSet::Singleton(5) | TpSet::Singleton(9);
  map.EmplaceFirstWins(key, 1);
  auto [v, inserted] = map.EmplaceFirstWins(key, 2);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(*v, 1);  // the existing value survived
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatTpSetMapTest, ManyKeysSurviveGrowth) {
  // Every nonempty subset of {0..11}: 4095 keys, forcing many rehashes
  // and plenty of collisions/wrap-arounds in a power-of-two table.
  FlatTpSetMap<std::uint64_t> map;
  std::vector<TpSet> keys;
  for (std::uint64_t bits = 1; bits < (1u << 12); ++bits) {
    TpSet s;
    for (int i = 0; i < 12; ++i) {
      if (bits & (1u << i)) s.Add(i);
    }
    keys.push_back(s);
    auto [v, inserted] = map.EmplaceFirstWins(s, bits);
    ASSERT_TRUE(inserted);
    ASSERT_EQ(*v, bits);
  }
  EXPECT_EQ(map.size(), keys.size());
  // Load factor stays at or under one half.
  EXPECT_GE(map.capacity(), 2 * map.size());
  for (std::uint64_t bits = 1; bits < (1u << 12); ++bits) {
    const std::uint64_t* v = map.Find(keys[bits - 1]);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, bits);
  }
  // And absent keys still miss.
  EXPECT_EQ(map.Find(TpSet::Singleton(20)), nullptr);
}

TEST(FlatTpSetMapTest, ReserveAvoidsRehash) {
  FlatTpSetMap<int> map;
  map.Reserve(1000);
  std::size_t cap = map.capacity();
  EXPECT_GE(cap, 2000u);
  for (int i = 0; i < 1000; ++i) {
    TpSet s;
    s.Add(i % 64);
    s.Add((i / 64) % 64 == i % 64 ? (i % 64 + 1) % 64 : (i / 64) % 64);
    map.EmplaceFirstWins(s, i);
  }
  EXPECT_EQ(map.capacity(), cap);
}

TEST(FlatTpSetMapTest, ClearKeepsCapacity) {
  FlatTpSetMap<int> map;
  for (int i = 0; i < 100; ++i) {
    map.EmplaceFirstWins(TpSet::Singleton(i % 64) | TpSet::Singleton(63),
                         i);
  }
  std::size_t cap = map.capacity();
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), cap);
  EXPECT_EQ(map.Find(TpSet::Singleton(1) | TpSet::Singleton(63)), nullptr);
  auto [v, inserted] = map.EmplaceFirstWins(TpSet::Singleton(2), 5);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*v, 5);
}

TEST(FlatTpSetMapTest, ForEachVisitsEveryEntryOnce) {
  FlatTpSetMap<int> map;
  std::set<int> expect;
  for (int i = 0; i < 64; ++i) {
    map.EmplaceFirstWins(TpSet::Singleton(i), i);
    expect.insert(i);
  }
  std::set<int> seen;
  map.ForEach([&](TpSet key, int value) {
    EXPECT_EQ(key.First(), value);
    EXPECT_TRUE(seen.insert(value).second);
  });
  EXPECT_EQ(seen, expect);
}

TEST(FlatTpSetMapTest, PointerValuesAreStableAcrossRehash) {
  // The memo stores pointers; their *targets* must stay valid while the
  // table rehashes around them.
  FlatTpSetMap<const int*> map;
  std::vector<std::unique_ptr<int>> storage;
  for (int i = 0; i < 500; ++i) {
    storage.push_back(std::make_unique<int>(i));
    TpSet s = TpSet::Singleton(i % 64);
    s.Add((i / 64 + i % 64 + 1) % 64);
    map.EmplaceFirstWins(s, storage.back().get());
  }
  int hits = 0;
  map.ForEach([&](TpSet, const int* v) {
    hits++;
    EXPECT_GE(*v, 0);
    EXPECT_LT(*v, 500);
  });
  EXPECT_EQ(static_cast<std::size_t>(hits), map.size());
}

//===--------------------------------------------------------------------===//
// ScratchPool
//===--------------------------------------------------------------------===//

TEST(ScratchPoolTest, LeaseReusesCapacityAcrossCalls) {
  ScratchPool<int> pool(/*reserve_per_vector=*/4);
  const int* data0 = nullptr;
  {
    ScratchPool<int>::Lease lease(pool);
    for (int i = 0; i < 100; ++i) lease->push_back(i);
    data0 = lease->data();
    EXPECT_EQ(pool.depth(), 1u);
  }
  EXPECT_EQ(pool.depth(), 0u);
  {
    // Same depth, same vector, already-grown capacity: no reallocation.
    ScratchPool<int>::Lease lease(pool);
    EXPECT_TRUE(lease->empty());
    EXPECT_GE(lease->capacity(), 100u);
    lease->push_back(1);
    EXPECT_EQ(lease->data(), data0);
  }
}

TEST(ScratchPoolTest, NestedLeasesGetDistinctVectors) {
  ScratchPool<int> pool;
  ScratchPool<int>::Lease outer(pool);
  outer->push_back(1);
  {
    ScratchPool<int>::Lease inner(pool);
    inner->push_back(2);
    EXPECT_NE(outer.get(), inner.get());
    EXPECT_EQ(pool.depth(), 2u);
    // The outer lease's contents survive inner churn.
    for (int i = 0; i < 1000; ++i) inner->push_back(i);
  }
  ASSERT_EQ(outer->size(), 1u);
  EXPECT_EQ((*outer)[0], 1);
}

TEST(ScratchPoolTest, DeepRecursionKeepsOuterReferencesValid) {
  ScratchPool<int> pool;
  // Simulated recursion: each level records a marker, goes deeper, and
  // checks the marker afterwards (deque backing keeps references valid
  // while deeper levels grow the pool).
  std::function<void(int)> recurse = [&](int depth) {
    ScratchPool<int>::Lease lease(pool);
    lease->push_back(depth);
    if (depth < 40) recurse(depth + 1);
    ASSERT_EQ(lease->size(), 1u);
    EXPECT_EQ((*lease)[0], depth);
  };
  recurse(0);
  EXPECT_EQ(pool.depth(), 0u);
}

}  // namespace
}  // namespace parqo
