// Tests for ThreadPool's lifecycle and ParallelFor edge cases: tasks
// submitted before destruction must all run (the destructor drains the
// queue), and ParallelFor must handle n == 0, n == 1, max_workers > n,
// and nesting without hanging or dropping indexes.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace parqo {
namespace {

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  ThreadPool neg(-3);
  EXPECT_EQ(neg.size(), 1);
  std::atomic<int> ran{0};
  neg.Submit([&ran] { ++ran; });
  neg.ParallelFor(4, [&ran](int) { ++ran; });
  EXPECT_GE(ran.load(), 4);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  // Submit far more tasks than workers and destroy immediately: every
  // queued task must still execute exactly once before join returns. A
  // pool that discards its queue on stop loses fire-and-forget work that
  // the batch optimizer treats as durable.
  constexpr int kTasks = 200;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&ran] {
        // Stagger a little so destruction overlaps a non-empty queue.
        std::this_thread::yield();
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // ~ThreadPool races with the queue still mostly full.
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolTest, SubmitRacingDestructionNeverDropsPreDtorTasks) {
  // A producer thread submits continuously while the main thread destroys
  // the pool. Tasks enqueued before the destructor completes must run;
  // the producer stops once it observes the pool gone. Run several rounds
  // to give the race a chance to interleave differently.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> submitted{0};
    std::atomic<int> ran{0};
    std::atomic<bool> stop{false};
    auto pool = std::make_unique<ThreadPool>(2);
    std::thread producer([&] {
      while (!stop.load(std::memory_order_acquire)) {
        pool->Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        submitted.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
      }
    });
    // parqo-lint: allow(naked-sleep) let the producer race for a bounded 1ms
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stop.store(true, std::memory_order_release);
    producer.join();  // all Submits complete before destruction starts
    int final_submitted = submitted.load();
    pool.reset();  // must drain everything already queued
    EXPECT_EQ(ran.load(), final_submitted);
  }
}

TEST(ThreadPoolTest, ParallelForZeroIsNoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&calls](int) { ++calls; });
  pool.ParallelFor(-5, [&calls](int) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForSingleItemRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id executed_on;
  pool.ParallelFor(1, [&](int i) {
    EXPECT_EQ(i, 0);
    executed_on = std::this_thread::get_id();
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(executed_on, caller);  // n == 1 never pays for a dispatch
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&hits](int i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ParallelForMaxWorkersExceedingN) {
  // max_workers larger than n (and than the pool) must neither hang nor
  // double-run indexes: only n - 1 helper slots can ever claim work.
  ThreadPool pool(2);
  constexpr int kN = 8;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(
      kN, [&hits](int i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
      /*max_workers=*/64);
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ParallelForMaxWorkersOneIsSerial) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  pool.ParallelFor(
      16,
      [&](int) {
        int now = concurrent.fetch_add(1) + 1;
        int p = peak.load();
        while (now > p && !peak.compare_exchange_weak(p, now)) {
        }
        std::this_thread::yield();
        concurrent.fetch_sub(1);
      },
      /*max_workers=*/1);
  EXPECT_EQ(peak.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Every outer item runs an inner ParallelFor on the SAME pool. With a
  // pool smaller than the outer fan-out, progress must not depend on a
  // free pool slot — the calling task drains inner items itself.
  ThreadPool pool(2);
  constexpr int kOuter = 8;
  constexpr int kInner = 8;
  std::atomic<int> total{0};
  pool.ParallelFor(kOuter, [&](int) {
    pool.ParallelFor(kInner, [&total](int) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(ThreadPoolTest, ParallelForFromInsideSubmittedTask) {
  ThreadPool pool(1);  // single worker: the task itself must make progress
  std::atomic<int> total{0};
  std::atomic<bool> done{false};
  pool.Submit([&] {
    pool.ParallelFor(32, [&total](int) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
    done.store(true, std::memory_order_release);
  });
  // Bounded wait so a deadlock fails the test instead of hanging ctest.
  for (int i = 0; i < 2000 && !done.load(std::memory_order_acquire); ++i) {
    // parqo-lint: allow(naked-sleep) bounded 2s poll; deadlock fails, not hangs
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(done.load());
  EXPECT_EQ(total.load(), 32);
}

}  // namespace
}  // namespace parqo
