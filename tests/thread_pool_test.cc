// Tests for ThreadPool's lifecycle and ParallelFor edge cases: tasks
// submitted before destruction must all run (the destructor drains the
// queue), and ParallelFor must handle n == 0, n == 1, max_workers > n,
// and nesting without hanging or dropping indexes.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace parqo {
namespace {

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  ThreadPool neg(-3);
  EXPECT_EQ(neg.size(), 1);
  std::atomic<int> ran{0};
  neg.Submit([&ran] { ++ran; });
  neg.ParallelFor(4, [&ran](int) { ++ran; });
  EXPECT_GE(ran.load(), 4);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  // Submit far more tasks than workers and destroy immediately: every
  // queued task must still execute exactly once before join returns. A
  // pool that discards its queue on stop loses fire-and-forget work that
  // the batch optimizer treats as durable.
  constexpr int kTasks = 200;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&ran] {
        // Stagger a little so destruction overlaps a non-empty queue.
        std::this_thread::yield();
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // ~ThreadPool races with the queue still mostly full.
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolTest, SubmitRacingDestructionNeverDropsPreDtorTasks) {
  // A producer thread submits continuously while the main thread destroys
  // the pool. Tasks enqueued before the destructor completes must run;
  // the producer stops once it observes the pool gone. Run several rounds
  // to give the race a chance to interleave differently.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> submitted{0};
    std::atomic<int> ran{0};
    std::atomic<bool> stop{false};
    auto pool = std::make_unique<ThreadPool>(2);
    std::thread producer([&] {
      while (!stop.load(std::memory_order_acquire)) {
        pool->Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        submitted.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
      }
    });
    // parqo-lint: allow(naked-sleep) let the producer race for a bounded 1ms
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stop.store(true, std::memory_order_release);
    producer.join();  // all Submits complete before destruction starts
    int final_submitted = submitted.load();
    pool.reset();  // must drain everything already queued
    EXPECT_EQ(ran.load(), final_submitted);
  }
}

TEST(ThreadPoolTest, ParallelForZeroIsNoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&calls](int) { ++calls; });
  pool.ParallelFor(-5, [&calls](int) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForSingleItemRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id executed_on;
  pool.ParallelFor(1, [&](int i) {
    EXPECT_EQ(i, 0);
    executed_on = std::this_thread::get_id();
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(executed_on, caller);  // n == 1 never pays for a dispatch
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&hits](int i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ParallelForMaxWorkersExceedingN) {
  // max_workers larger than n (and than the pool) must neither hang nor
  // double-run indexes: only n - 1 helper slots can ever claim work.
  ThreadPool pool(2);
  constexpr int kN = 8;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(
      kN, [&hits](int i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
      /*max_workers=*/64);
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ParallelForMaxWorkersOneIsSerial) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  pool.ParallelFor(
      16,
      [&](int) {
        int now = concurrent.fetch_add(1) + 1;
        int p = peak.load();
        while (now > p && !peak.compare_exchange_weak(p, now)) {
        }
        std::this_thread::yield();
        concurrent.fetch_sub(1);
      },
      /*max_workers=*/1);
  EXPECT_EQ(peak.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Every outer item runs an inner ParallelFor on the SAME pool. With a
  // pool smaller than the outer fan-out, progress must not depend on a
  // free pool slot — the calling task drains inner items itself.
  ThreadPool pool(2);
  constexpr int kOuter = 8;
  constexpr int kInner = 8;
  std::atomic<int> total{0};
  pool.ParallelFor(kOuter, [&](int) {
    pool.ParallelFor(kInner, [&total](int) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(ThreadPoolTest, ParallelForFromInsideSubmittedTask) {
  ThreadPool pool(1);  // single worker: the task itself must make progress
  std::atomic<int> total{0};
  std::atomic<bool> done{false};
  pool.Submit([&] {
    pool.ParallelFor(32, [&total](int) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
    done.store(true, std::memory_order_release);
  });
  // Bounded wait so a deadlock fails the test instead of hanging ctest.
  for (int i = 0; i < 2000 && !done.load(std::memory_order_acquire); ++i) {
    // parqo-lint: allow(naked-sleep) bounded 2s poll; deadlock fails, not hangs
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(done.load());
  EXPECT_EQ(total.load(), 32);
}

// ---------------------------------------------------------------------------
// Shutdown semantics. The original hazard: workers exit once stop is set
// and the queue drains, so a Submit that arrives after shutdown parked
// its task in the queue forever — a ParallelFor whose helpers were
// submitted that way would hang waiting for indexes nobody runs. The fix
// contract: Shutdown is explicit and idempotent, post-shutdown Submit
// runs inline, post-shutdown ParallelFor degrades to a serial loop.

TEST(ThreadPoolTest, SubmitAfterShutdownRunsInline) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::atomic<int> ran{0};
  std::thread::id executed_on;
  pool.Submit([&] {
    executed_on = std::this_thread::get_id();
    ++ran;
  });
  EXPECT_EQ(ran.load(), 1);  // ran before Submit returned, not dropped
  EXPECT_EQ(executed_on, std::this_thread::get_id());
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 16);  // the first Shutdown drained everything
  pool.Shutdown();
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 16);
}  // ~ThreadPool calls Shutdown a fourth time; must also be a no-op.

TEST(ThreadPoolTest, ParallelForAfterShutdownRunsSeriallyAndCompletely) {
  ThreadPool pool(4);
  pool.Shutdown();
  constexpr int kN = 64;
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  pool.ParallelFor(kN, [&](int i) {
    int now = concurrent.fetch_add(1) + 1;
    int p = peak.load();
    while (now > p && !peak.compare_exchange_weak(p, now)) {
    }
    hits[i].fetch_add(1, std::memory_order_relaxed);
    concurrent.fetch_sub(1);
  });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  // Helpers submitted to a stopped pool drain inline on this thread, so
  // the loop is serial — and, critically, it terminated.
  EXPECT_EQ(peak.load(), 1);
}

TEST(ThreadPoolTest, ConcurrentShutdownCallersAllReturnAfterDrain) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&ran] {
      std::this_thread::yield();
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::vector<std::thread> closers;
  for (int t = 0; t < 4; ++t) {
    closers.emplace_back([&pool] { pool.Shutdown(); });
  }
  for (std::thread& t : closers) t.join();
  // Every Shutdown returned only after the queue drained and workers
  // joined, no matter which caller won the once-flag.
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ShutdownStressNeverLosesOrDuplicatesTasks) {
  // TSan-targeted stress (the thread-sanitizer CI job runs this suite):
  // producers Submit and run nested ParallelFors while the main thread
  // shuts the pool down mid-storm. Every submitted task must run exactly
  // once — on a worker, inline after stop, or via caller participation —
  // and every ParallelFor must cover all indexes and return.
  for (int round = 0; round < 8; ++round) {
    ThreadPool pool(3);
    std::atomic<int> submitted{0};
    std::atomic<int> ran{0};
    std::atomic<int> pfor_sum{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> producers;
    for (int t = 0; t < 3; ++t) {
      producers.emplace_back([&, t] {
        while (!stop.load(std::memory_order_acquire)) {
          if (t == 0) {
            // Concurrent sessions shape: ParallelFor racing Shutdown.
            pool.ParallelFor(8, [&pfor_sum](int) {
              pfor_sum.fetch_add(1, std::memory_order_relaxed);
            });
          } else {
            submitted.fetch_add(1, std::memory_order_relaxed);
            pool.Submit([&ran] {
              ran.fetch_add(1, std::memory_order_relaxed);
            });
          }
          std::this_thread::yield();
        }
      });
    }
    // parqo-lint: allow(naked-sleep) let the storm race shutdown for 1ms
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    pool.Shutdown();  // concurrent with active Submit/ParallelFor
    stop.store(true, std::memory_order_release);
    for (std::thread& t : producers) t.join();
    EXPECT_EQ(ran.load(), submitted.load()) << "round " << round;
    EXPECT_EQ(pfor_sum.load() % 8, 0) << "round " << round;
  }
}

}  // namespace
}  // namespace parqo
