// Plan-identity sweep: every benchmark query (L1-L10, U1-U5) through all
// seven algorithms, serial and parallel, with and without the validator,
// must produce a plan whose (cost, shape) is bit-identical to the golden
// recorded before the arena/flat-memo refactor of the enumeration hot
// path. The golden file (plan_identity_golden.inc) was generated from the
// pre-arena tree with PARQO_DUMP_PLAN_IDENTITY=1, so this test is the
// "before vs after" proof that routing candidate construction through the
// arena and replacing the memo tables changed nothing about plan choice.
//
// Regenerating (only legitimate after an intentional cost-model or
// estimator change):
//   PARQO_DUMP_PLAN_IDENTITY=1 ./tests/plan_identity_test  (then redirect
//   stdout to tests/plan_identity_golden.inc)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "optimizer/optimizer.h"
#include "optimizer/prepared_query.h"
#include "partition/hash_so.h"
#include "plan/plan.h"
#include "sparql/parser.h"
#include "stats/data_stats.h"
#include "workload/benchmark_queries.h"
#include "workload/lubm.h"
#include "workload/uniprot.h"

namespace parqo {
namespace {

struct GoldenEntry {
  const char* query;
  const char* algorithm;
  const char* cost;   // %.17g — round-trips the double exactly
  const char* shape;  // PlanToCompactString
};

const GoldenEntry kGolden[] = {
#include "tests/plan_identity_golden.inc"
    // Sentinel so the array is never empty (dump mode starts from an
    // empty golden file).
    {nullptr, nullptr, nullptr, nullptr},
};

const std::vector<Algorithm> kAllAlgorithms{
    Algorithm::kTdCmd,  Algorithm::kTdCmdp,  Algorithm::kHgrTdCmd,
    Algorithm::kTdAuto, Algorithm::kMsc,     Algorithm::kDpBushy,
    Algorithm::kBinaryDp};

std::string FormatCost(double cost) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", cost);
  return buf;
}

const GoldenEntry* FindGolden(const std::string& query,
                              const std::string& algorithm) {
  for (const GoldenEntry& e : kGolden) {
    if (e.query == nullptr) break;  // sentinel
    if (query == e.query && algorithm == e.algorithm) return &e;
  }
  return nullptr;
}

TEST(PlanIdentityTest, AllAlgorithmsMatchPreArenaGolden) {
  const bool dump = std::getenv("PARQO_DUMP_PLAN_IDENTITY") != nullptr;

  // Same data scale as ParallelDeterminismTest.BenchmarkQueriesOnRealStatistics
  // so statistics (and therefore golden plans) are reproducible.
  LubmConfig lubm_cfg;
  lubm_cfg.universities = 2;
  RdfGraph lubm = GenerateLubm(lubm_cfg);
  UniprotConfig uni_cfg;
  uni_cfg.proteins = 400;
  RdfGraph uniprot = GenerateUniprot(uni_cfg);
  HashSoPartitioner hash;

  for (const BenchmarkQuery& bq : AllBenchmarkQueries()) {
    auto parsed = ParseSparql(bq.sparql);
    ASSERT_TRUE(parsed.ok()) << bq.name;
    const RdfGraph& data = bq.lubm ? lubm : uniprot;
    PreparedQuery prepared(parsed->patterns, hash, StatsFromData(data));

    for (Algorithm algorithm : kAllAlgorithms) {
      // The four configurations that must all agree: serial/parallel x
      // validator off/on. Any divergence between them is a determinism
      // bug; any divergence from the golden is a hot-path refactor
      // changing plan choice.
      struct Config {
        const char* label;
        int threads;
        bool validate;
      };
      const Config kConfigs[] = {{"serial", 1, false},
                                 {"parallel", 4, false},
                                 {"serial+validate", 1, true},
                                 {"parallel+validate", 4, true}};

      std::string cost, shape;
      for (const Config& config : kConfigs) {
        OptimizeOptions options;
        options.timeout_seconds = 120;
        options.num_threads = config.threads;
        options.validate = config.validate;
        OptimizeResult result =
            Optimize(algorithm, prepared.inputs(), options);
        ASSERT_FALSE(result.timed_out)
            << bq.name << " " << ToString(algorithm) << " " << config.label;
        ASSERT_NE(result.plan, nullptr)
            << bq.name << " " << ToString(algorithm) << " " << config.label;
        std::string c = FormatCost(result.plan->total_cost);
        std::string s = PlanToCompactString(*result.plan);
        if (cost.empty()) {
          cost = c;
          shape = s;
        } else {
          EXPECT_EQ(c, cost) << bq.name << " " << ToString(algorithm)
                             << " diverges in config " << config.label;
          EXPECT_EQ(s, shape) << bq.name << " " << ToString(algorithm)
                              << " diverges in config " << config.label;
        }
      }

      if (dump) {
        std::printf("{\"%s\", \"%s\", \"%s\", \"%s\"},\n", bq.name.c_str(),
                    ToString(algorithm).c_str(), cost.c_str(),
                    shape.c_str());
        continue;
      }
      const GoldenEntry* golden = FindGolden(bq.name, ToString(algorithm));
      ASSERT_NE(golden, nullptr)
          << "no golden for " << bq.name << " " << ToString(algorithm)
          << " — regenerate with PARQO_DUMP_PLAN_IDENTITY=1";
      EXPECT_STREQ(cost.c_str(), golden->cost)
          << bq.name << " " << ToString(algorithm)
          << ": plan cost differs from the pre-arena golden";
      EXPECT_STREQ(shape.c_str(), golden->shape)
          << bq.name << " " << ToString(algorithm)
          << ": plan shape differs from the pre-arena golden";
    }
  }
}

}  // namespace
}  // namespace parqo
