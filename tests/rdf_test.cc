// Dictionary, RdfGraph, and N-Triples parser/writer tests.

#include <gtest/gtest.h>

#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "rdf/ntriples.h"

namespace parqo {
namespace {

TEST(DictionaryTest, EncodeIsIdempotent) {
  Dictionary d;
  TermId a = d.EncodeIri("http://x/a");
  TermId b = d.EncodeIri("http://x/b");
  EXPECT_NE(a, b);
  EXPECT_EQ(d.EncodeIri("http://x/a"), a);
  EXPECT_EQ(d.size(), 2u);
}

TEST(DictionaryTest, KindsAreDistinct) {
  Dictionary d;
  TermId iri = d.Encode(Term::Iri("x"));
  TermId lit = d.Encode(Term::Literal("x"));
  TermId blank = d.Encode(Term::Blank("x"));
  EXPECT_NE(iri, lit);
  EXPECT_NE(iri, blank);
  EXPECT_NE(lit, blank);
}

TEST(DictionaryTest, LookupMissingReturnsInvalid) {
  Dictionary d;
  EXPECT_EQ(d.LookupIri("http://nope"), kInvalidTermId);
  d.EncodeIri("http://yes");
  EXPECT_NE(d.LookupIri("http://yes"), kInvalidTermId);
}

TEST(DictionaryTest, DecodeRoundTrips) {
  Dictionary d;
  Term t = Term::Literal("hello world");
  TermId id = d.Encode(t);
  EXPECT_EQ(d.Decode(id), t);
}

TEST(NTriplesTest, ParsesBasicTriples) {
  auto result = ParseNTriplesString(
      "<http://a> <http://p> <http://b> .\n"
      "# a comment\n"
      "\n"
      "<http://a> <http://q> \"lit\" .\n"
      "_:b1 <http://p> _:b2 .\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumTriples(), 3u);
}

TEST(NTriplesTest, ParsesLiteralEscapesAndSuffixes) {
  auto result = ParseNTriplesString(
      "<http://a> <http://p> \"line\\nbreak\" .\n"
      "<http://a> <http://p> \"tag\"@en .\n"
      "<http://a> <http://p> "
      "\"5\"^^<http://www.w3.org/2001/XMLSchema#int> .\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumTriples(), 3u);
  // Typed and tagged literals must be distinct dictionary entries.
  EXPECT_EQ(result->dict().size(), 2u + 3u);
}

TEST(NTriplesTest, RejectsGarbage) {
  EXPECT_FALSE(ParseNTriplesString("<http://a> <http://p> .\n").ok());
  EXPECT_FALSE(ParseNTriplesString("<http://a <http://p> <http://b> .").ok());
  EXPECT_FALSE(
      ParseNTriplesString("\"lit\" <http://p> <http://b> .").ok());
  EXPECT_FALSE(
      ParseNTriplesString("<http://a> \"lit\" <http://b> .").ok());
  EXPECT_FALSE(
      ParseNTriplesString("<http://a> <http://p> <http://b>").ok());
  Status st =
      ParseNTriplesString("<a> <p> <b> .\nnot a triple\n").status();
  EXPECT_NE(st.message().find("line 2"), std::string::npos);
}

TEST(NTriplesTest, WriteParseRoundTrip) {
  const char* doc =
      "<http://a> <http://p> <http://b> .\n"
      "<http://a> <http://q> \"x \\\"quoted\\\"\" .\n"
      "<http://a> <http://q> \"tagged\"@en .\n";
  auto g1 = ParseNTriplesString(doc);
  ASSERT_TRUE(g1.ok());
  std::string serialized = WriteNTriples(*g1);
  auto g2 = ParseNTriplesString(serialized);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->NumTriples(), g1->NumTriples());
  EXPECT_EQ(WriteNTriples(*g2), serialized);
}

TEST(RdfGraphTest, DeduplicatesTriples) {
  Dictionary d;
  TermId a = d.EncodeIri("a"), p = d.EncodeIri("p"), b = d.EncodeIri("b");
  RdfGraph g(std::move(d), {{a, p, b}, {a, p, b}});
  EXPECT_EQ(g.NumTriples(), 1u);
}

TEST(RdfGraphTest, AdjacencyIndexes) {
  Dictionary d;
  TermId a = d.EncodeIri("a"), p = d.EncodeIri("p"), b = d.EncodeIri("b"),
         c = d.EncodeIri("c");
  RdfGraph g(std::move(d), {{a, p, b}, {b, p, c}, {a, p, c}});
  EXPECT_EQ(g.OutDegree(a), 2u);
  EXPECT_EQ(g.InDegree(a), 0u);
  EXPECT_EQ(g.OutDegree(b), 1u);
  EXPECT_EQ(g.InDegree(b), 1u);
  EXPECT_EQ(g.InDegree(c), 2u);
  // Vertices exclude the predicate-only term p.
  EXPECT_EQ(g.vertices().size(), 3u);
  for (TripleIdx e : g.OutEdges(a)) {
    EXPECT_EQ(g.triples()[e].s, a);
  }
  for (TripleIdx e : g.InEdges(c)) {
    EXPECT_EQ(g.triples()[e].o, c);
  }
}

}  // namespace
}  // namespace parqo
