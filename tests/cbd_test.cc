// Algorithm 2 (connected binary-division enumeration): the Figure 4 /
// Example 6 running example, completeness and uniqueness against brute
// force (Theorem 1), and property sweeps over random queries.

#include "optimizer/cbd_enumerator.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "tests/test_util.h"
#include "workload/random_query.h"

namespace parqo {
namespace {

using testing::BruteForceCbds;
using testing::CanonicalCbd;
using testing::Figure4Query;

std::set<std::pair<std::uint64_t, std::uint64_t>> EnumerateToSet(
    const JoinGraph& jg, TpSet q, VarId vj, int* count = nullptr) {
  std::set<std::pair<std::uint64_t, std::uint64_t>> out;
  EnumerateCbds(jg, q, vj, [&](TpSet a, TpSet b) {
    auto [x, y] = CanonicalCbd(q, a, b);
    bool inserted = out.emplace(x.bits(), y.bits()).second;
    EXPECT_TRUE(inserted) << "cbd emitted twice: " << a.ToString() << " | "
                          << b.ToString();
    if (count != nullptr) ++*count;
    return true;
  });
  return out;
}

TEST(CbdTest, Figure4RunningExample) {
  JoinGraph jg(Figure4Query());
  VarId vj = jg.FindVar("vj");
  ASSERT_NE(vj, kInvalidVarId);
  ASSERT_EQ(jg.Ntp(vj).Count(), 4);  // tp1, tp3, tp5, tp9

  // The components of Figure 4 after removing vj.
  auto comps = jg.ComponentsExcluding(jg.AllTps(), vj);
  ASSERT_EQ(comps.size(), 3u);
  int indivisible = 0, divisible = 0;
  for (TpSet c : comps) {
    if ((c & jg.Ntp(vj)).Count() == 1) {
      ++indivisible;
      EXPECT_EQ(c.Count(), 2);  // {tp1,tp2} and {tp3,tp4}
    } else {
      ++divisible;
      EXPECT_EQ(c.Count(), 5);  // {tp5..tp9}
    }
  }
  EXPECT_EQ(indivisible, 2);
  EXPECT_EQ(divisible, 1);

  int count = 0;
  auto got = EnumerateToSet(jg, jg.AllTps(), vj, &count);
  auto expected = BruteForceCbds(jg, jg.AllTps(), vj);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(static_cast<std::size_t>(count), expected.size());

  // Example 6's concrete divisions must be among them. Paper indexes are
  // 1-based: tp1..tp9 -> bits 0..8.
  auto has = [&](std::initializer_list<int> side) {
    TpSet a;
    for (int tp : side) a.Add(tp - 1);
    auto [x, y] = CanonicalCbd(jg.AllTps(), a, jg.AllTps() - a);
    return got.count({x.bits(), y.bits()}) > 0;
  };
  EXPECT_TRUE(has({1, 2}));           // ({tp1,tp2}, rest)
  EXPECT_TRUE(has({1, 2, 5}));        // ({tp1,tp2,tp5}, rest)
  EXPECT_TRUE(has({1, 2, 5, 6, 7}));  // ({tp1,tp2,tp5,tp6,tp7}, rest)
}

TEST(CbdTest, EveryEmittedCbdSatisfiesDefinition3) {
  JoinGraph jg(Figure4Query());
  VarId vj = jg.FindVar("vj");
  EnumerateCbds(jg, jg.AllTps(), vj, [&](TpSet a, TpSet b) {
    EXPECT_FALSE(a.Empty());
    EXPECT_FALSE(b.Empty());
    EXPECT_EQ(a | b, jg.AllTps());
    EXPECT_FALSE(a.Intersects(b));
    EXPECT_TRUE(jg.IsConnected(a)) << a.ToString();
    EXPECT_TRUE(jg.IsConnected(b)) << b.ToString();
    EXPECT_TRUE(a.Intersects(jg.Ntp(vj)));
    EXPECT_TRUE(b.Intersects(jg.Ntp(vj)));
    return true;
  });
}

TEST(CbdTest, WorksOnSubqueries) {
  // Enumeration restricted to a subquery must ignore patterns outside it.
  JoinGraph jg(Figure4Query());
  VarId vj = jg.FindVar("vj");
  TpSet sub;
  for (int tp : {0, 1, 4, 5, 6, 7, 8}) sub.Add(tp);
  auto got = EnumerateToSet(jg, sub, vj);
  auto expected = BruteForceCbds(jg, sub, vj);
  EXPECT_EQ(got, expected);
  EXPECT_FALSE(expected.empty());
}

TEST(CbdTest, AbortStopsEnumeration) {
  JoinGraph jg(Figure4Query());
  VarId vj = jg.FindVar("vj");
  int seen = 0;
  bool finished = EnumerateCbds(jg, jg.AllTps(), vj, [&](TpSet, TpSet) {
    return ++seen < 2;
  });
  EXPECT_FALSE(finished);
  EXPECT_EQ(seen, 2);
}

TEST(CbdTest, StarQueryYieldsAllAnchorSubsets) {
  // For a star with n patterns, the cbds on the center are all subsets
  // containing the anchor: 2^(n-1) - 1.
  Rng rng(5);
  GeneratedQuery q = GenerateRandomQuery(QueryShape::kStar, 5, rng);
  JoinGraph jg(q.patterns);
  VarId center = jg.join_vars()[0];
  auto got = EnumerateToSet(jg, jg.AllTps(), center);
  EXPECT_EQ(got.size(), 15u);  // 2^4 - 1
}

TEST(CbdTest, ChainQuerySplitsAtTheVariable) {
  Rng rng(6);
  GeneratedQuery q = GenerateRandomQuery(QueryShape::kChain, 6, rng);
  JoinGraph jg(q.patterns);
  for (VarId vj : jg.join_vars()) {
    auto got = EnumerateToSet(jg, jg.AllTps(), vj);
    // A chain has exactly one cbd per interior variable.
    EXPECT_EQ(got.size(), 1u);
  }
}

// Property sweep: enumerator output == brute force on random queries of
// every shape.
struct SweepCase {
  QueryShape shape;
  int n;
  std::uint64_t seed;
};

class CbdSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(CbdSweepTest, MatchesBruteForce) {
  Rng rng(GetParam().seed);
  for (int rep = 0; rep < 8; ++rep) {
    GeneratedQuery q =
        GenerateRandomQuery(GetParam().shape, GetParam().n, rng);
    JoinGraph jg(q.patterns);
    for (VarId vj : jg.join_vars()) {
      if (jg.Ntp(vj).Count() < 2) continue;
      auto got = EnumerateToSet(jg, jg.AllTps(), vj);
      auto expected = BruteForceCbds(jg, jg.AllTps(), vj);
      ASSERT_EQ(got, expected)
          << ToString(GetParam().shape) << " n=" << GetParam().n
          << " var=" << jg.var_name(vj);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CbdSweepTest,
    ::testing::Values(SweepCase{QueryShape::kStar, 6, 11},
                      SweepCase{QueryShape::kChain, 7, 12},
                      SweepCase{QueryShape::kCycle, 7, 13},
                      SweepCase{QueryShape::kTree, 8, 14},
                      SweepCase{QueryShape::kTree, 10, 15},
                      SweepCase{QueryShape::kDense, 8, 16},
                      SweepCase{QueryShape::kDense, 10, 17}),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      return ToString(param_info.param.shape) +
             std::to_string(param_info.param.n);
    });

}  // namespace
}  // namespace parqo
