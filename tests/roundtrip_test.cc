// Round-trip and cross-module consistency properties that glue the
// parsers, printers, and generators together:
//   * ParsedQuery::ToString -> ParseSparql is the identity on patterns
//     for every generator output and every benchmark query;
//   * N-Triples serialization of generated datasets re-parses to the
//     same triple multiset;
//   * the exported JSON plan's costs match the in-memory plan.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.h"
#include "optimizer/prepared_query.h"
#include "partition/hash_so.h"
#include "plan/export.h"
#include "rdf/ntriples.h"
#include "sparql/parser.h"
#include "workload/benchmark_queries.h"
#include "workload/lubm.h"
#include "workload/random_query.h"
#include "workload/uniprot.h"
#include "workload/watdiv.h"

namespace parqo {
namespace {

TEST(RoundTripTest, GeneratedQueriesSurviveToStringParse) {
  Rng rng(61);
  for (QueryShape shape :
       {QueryShape::kStar, QueryShape::kChain, QueryShape::kCycle,
        QueryShape::kTree, QueryShape::kDense}) {
    for (int n : {3, 7, 12}) {
      GeneratedQuery q = GenerateRandomQuery(shape, n, rng);
      ParsedQuery pq;
      pq.select_all = true;
      pq.patterns = q.patterns;
      auto reparsed = ParseSparql(pq.ToString());
      ASSERT_TRUE(reparsed.ok())
          << ToString(shape) << " n=" << n << ": "
          << reparsed.status().ToString() << "\n"
          << pq.ToString();
      EXPECT_EQ(reparsed->patterns, q.patterns);
    }
  }
}

TEST(RoundTripTest, WatdivTemplatesSurviveToStringParse) {
  Rng rng(62);
  for (const WatdivTemplate& t : GenerateWatdivTemplates(30, rng)) {
    ParsedQuery pq;
    pq.select_all = true;
    pq.patterns = t.patterns;
    auto reparsed = ParseSparql(pq.ToString());
    ASSERT_TRUE(reparsed.ok()) << pq.ToString();
    EXPECT_EQ(reparsed->patterns, t.patterns);
  }
}

TEST(RoundTripTest, BenchmarkQueriesSurviveToStringParse) {
  for (const BenchmarkQuery& bq : AllBenchmarkQueries()) {
    auto parsed = ParseSparql(bq.sparql);
    ASSERT_TRUE(parsed.ok()) << bq.name;
    auto reparsed = ParseSparql(parsed->ToString());
    ASSERT_TRUE(reparsed.ok()) << bq.name << "\n" << parsed->ToString();
    EXPECT_EQ(reparsed->patterns, parsed->patterns) << bq.name;
    EXPECT_EQ(reparsed->select_vars, parsed->select_vars) << bq.name;
  }
}

TEST(RoundTripTest, LubmSerializesAndReparses) {
  LubmConfig cfg;
  cfg.universities = 1;
  RdfGraph g = GenerateLubm(cfg);
  auto g2 = ParseNTriplesString(WriteNTriples(g));
  ASSERT_TRUE(g2.ok()) << g2.status().ToString();
  EXPECT_EQ(g2->NumTriples(), g.NumTriples());
  // Identical canonical serialization (triples sorted by ids may differ
  // across dictionaries, so compare the sorted text form).
  std::string a = WriteNTriples(g);
  std::string b = WriteNTriples(*g2);
  std::multiset<std::string> la, lb;
  std::size_t pos = 0;
  for (std::string* s : {&a, &b}) {
    auto& target = s == &a ? la : lb;
    pos = 0;
    while (pos < s->size()) {
      std::size_t nl = s->find('\n', pos);
      target.insert(s->substr(pos, nl - pos));
      pos = nl + 1;
    }
  }
  EXPECT_EQ(la, lb);
}

TEST(RoundTripTest, UniprotSerializesAndReparses) {
  UniprotConfig cfg;
  cfg.proteins = 100;
  RdfGraph g = GenerateUniprot(cfg);
  auto g2 = ParseNTriplesString(WriteNTriples(g));
  ASSERT_TRUE(g2.ok()) << g2.status().ToString();
  EXPECT_EQ(g2->NumTriples(), g.NumTriples());
}

TEST(RoundTripTest, JsonExportPreservesCosts) {
  Rng rng(63);
  GeneratedQuery q = GenerateRandomQuery(QueryShape::kTree, 6, rng);
  HashSoPartitioner hash;
  PreparedQuery prepared(q.patterns, hash, [&q](const JoinGraph& jg) {
    return q.MakeStats(jg);
  });
  OptimizeResult r =
      Optimize(Algorithm::kTdCmd, prepared.inputs(), OptimizeOptions{});
  ASSERT_NE(r.plan, nullptr);
  std::string json = PlanToJson(*r.plan, prepared.join_graph());
  // The root's totalCost appears verbatim with %.17g precision.
  char expect[64];
  std::snprintf(expect, sizeof(expect), "\"totalCost\":%.17g",
                r.plan->total_cost);
  EXPECT_NE(json.find(expect), std::string::npos) << json;
}

}  // namespace
}  // namespace parqo
