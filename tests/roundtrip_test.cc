// Round-trip and cross-module consistency properties that glue the
// parsers, printers, and generators together:
//   * ParsedQuery::ToString -> ParseSparql is the identity on patterns
//     for every generator output and every benchmark query;
//   * N-Triples serialization of generated datasets re-parses to the
//     same triple multiset;
//   * the exported JSON plan's costs match the in-memory plan.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.h"
#include "optimizer/prepared_query.h"
#include "partition/hash_so.h"
#include "plan/export.h"
#include "rdf/ntriples.h"
#include "sparql/parser.h"
#include "workload/benchmark_queries.h"
#include "workload/lubm.h"
#include "workload/random_query.h"
#include "workload/uniprot.h"
#include "workload/watdiv.h"

namespace parqo {
namespace {

TEST(RoundTripTest, GeneratedQueriesSurviveToStringParse) {
  Rng rng(61);
  for (QueryShape shape :
       {QueryShape::kStar, QueryShape::kChain, QueryShape::kCycle,
        QueryShape::kTree, QueryShape::kDense}) {
    for (int n : {3, 7, 12}) {
      GeneratedQuery q = GenerateRandomQuery(shape, n, rng);
      ParsedQuery pq;
      pq.select_all = true;
      pq.patterns = q.patterns;
      auto reparsed = ParseSparql(pq.ToString());
      ASSERT_TRUE(reparsed.ok())
          << ToString(shape) << " n=" << n << ": "
          << reparsed.status().ToString() << "\n"
          << pq.ToString();
      EXPECT_EQ(reparsed->patterns, q.patterns);
    }
  }
}

TEST(RoundTripTest, WatdivTemplatesSurviveToStringParse) {
  Rng rng(62);
  for (const WatdivTemplate& t : GenerateWatdivTemplates(30, rng)) {
    ParsedQuery pq;
    pq.select_all = true;
    pq.patterns = t.patterns;
    auto reparsed = ParseSparql(pq.ToString());
    ASSERT_TRUE(reparsed.ok()) << pq.ToString();
    EXPECT_EQ(reparsed->patterns, t.patterns);
  }
}

TEST(RoundTripTest, BenchmarkQueriesSurviveToStringParse) {
  for (const BenchmarkQuery& bq : AllBenchmarkQueries()) {
    auto parsed = ParseSparql(bq.sparql);
    ASSERT_TRUE(parsed.ok()) << bq.name;
    auto reparsed = ParseSparql(parsed->ToString());
    ASSERT_TRUE(reparsed.ok()) << bq.name << "\n" << parsed->ToString();
    EXPECT_EQ(reparsed->patterns, parsed->patterns) << bq.name;
    EXPECT_EQ(reparsed->select_vars, parsed->select_vars) << bq.name;
  }
}

TEST(RoundTripTest, LubmSerializesAndReparses) {
  LubmConfig cfg;
  cfg.universities = 1;
  RdfGraph g = GenerateLubm(cfg);
  auto g2 = ParseNTriplesString(WriteNTriples(g));
  ASSERT_TRUE(g2.ok()) << g2.status().ToString();
  EXPECT_EQ(g2->NumTriples(), g.NumTriples());
  // Identical canonical serialization (triples sorted by ids may differ
  // across dictionaries, so compare the sorted text form).
  std::string a = WriteNTriples(g);
  std::string b = WriteNTriples(*g2);
  std::multiset<std::string> la, lb;
  std::size_t pos = 0;
  for (std::string* s : {&a, &b}) {
    auto& target = s == &a ? la : lb;
    pos = 0;
    while (pos < s->size()) {
      std::size_t nl = s->find('\n', pos);
      target.insert(s->substr(pos, nl - pos));
      pos = nl + 1;
    }
  }
  EXPECT_EQ(la, lb);
}

TEST(RoundTripTest, UniprotSerializesAndReparses) {
  UniprotConfig cfg;
  cfg.proteins = 100;
  RdfGraph g = GenerateUniprot(cfg);
  auto g2 = ParseNTriplesString(WriteNTriples(g));
  ASSERT_TRUE(g2.ok()) << g2.status().ToString();
  EXPECT_EQ(g2->NumTriples(), g.NumTriples());
}

// Serialize → parse → serialize is a fixed point, compared as line
// multisets because dictionary ids (and thus triple order) may differ.
void ExpectStableNTriples(const RdfGraph& g) {
  std::string a = WriteNTriples(g);
  auto g2 = ParseNTriplesString(a);
  ASSERT_TRUE(g2.ok()) << g2.status().ToString() << "\n" << a;
  std::string b = WriteNTriples(*g2);
  std::multiset<std::string> la, lb;
  std::size_t pos = 0;
  std::size_t nl;
  for (pos = 0; (nl = a.find('\n', pos)) != std::string::npos; pos = nl + 1) {
    la.insert(a.substr(pos, nl - pos));
  }
  for (pos = 0; (nl = b.find('\n', pos)) != std::string::npos; pos = nl + 1) {
    lb.insert(b.substr(pos, nl - pos));
  }
  EXPECT_EQ(la, lb);
}

TEST(RoundTripTest, NTriplesEscapedQuotesAndBackslashes) {
  const char* src =
      "<http://e/s> <http://e/p> \"say \\\"hi\\\"; a\\\\b \\t end\" .\n";
  auto g = ParseNTriplesString(src);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  ASSERT_EQ(g->NumTriples(), 1u);
  Term o = g->dict().Decode(g->triples()[0].o);
  EXPECT_EQ(o.kind, TermKind::kLiteral);
  EXPECT_EQ(o.lexical, "say \"hi\"; a\\b \t end");
  ExpectStableNTriples(*g);
}

TEST(RoundTripTest, NTriplesLangTagsAndDatatypes) {
  const char* src =
      "<http://e/s> <http://e/p> \"hello\"@en .\n"
      "<http://e/s> <http://e/p> \"bonjour\"@fr-CA .\n"
      "<http://e/s> <http://e/p> "
      "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";
  auto g = ParseNTriplesString(src);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  ASSERT_EQ(g->NumTriples(), 3u);
  // Suffixes are kept verbatim in the lexical form so distinct typed
  // literals stay distinct in the dictionary.
  std::multiset<std::string> lexicals;
  for (const Triple& t : g->triples()) {
    lexicals.insert(g->dict().Decode(t.o).lexical);
  }
  EXPECT_EQ(lexicals.count("hello@en"), 1u);
  EXPECT_EQ(lexicals.count("bonjour@fr-CA"), 1u);
  EXPECT_EQ(
      lexicals.count("42^^<http://www.w3.org/2001/XMLSchema#integer>"), 1u);
  ExpectStableNTriples(*g);
}

TEST(RoundTripTest, NTriplesCrlfLineEndings) {
  // Files written on Windows terminate lines with \r\n; the \r must not
  // leak into the last term or trip the trailing-content check.
  const char* src =
      "<http://e/s> <http://e/p> <http://e/o> .\r\n"
      "<http://e/s> <http://e/p> \"v\" .\r\n";
  auto g = ParseNTriplesString(src);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  ASSERT_EQ(g->NumTriples(), 2u);
  for (const Triple& t : g->triples()) {
    std::string lex = g->dict().Decode(t.o).lexical;
    EXPECT_EQ(lex.find('\r'), std::string::npos) << lex;
  }
}

TEST(RoundTripTest, NTriplesCommentsAndBlankLines) {
  const char* src =
      "# full-line comment\n"
      "\n"
      "   \t\n"
      "<http://e/s> <http://e/p> <http://e/o> . # trailing comment\n"
      "<http://e/s> <http://e/p> \"v\" .# comment hugging the dot\n";
  auto g = ParseNTriplesString(src);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumTriples(), 2u);
}

TEST(RoundTripTest, NTriplesTerminatorAdjacentTokens) {
  // "x"@en. and _:b. (no space before the dot) are legal N-Triples; the
  // dot must terminate the statement, not be swallowed into the language
  // tag or the blank-node label.
  const char* src =
      "<http://e/s> <http://e/p> \"x\"@en.\n"
      "_:a <http://e/p> _:b.\n"
      "<http://e/s> <http://e/p> \"42\"^^<http://e/int>.\n";
  auto g = ParseNTriplesString(src);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  ASSERT_EQ(g->NumTriples(), 3u);
  std::multiset<std::string> lexicals;
  for (const Triple& t : g->triples()) {
    lexicals.insert(g->dict().Decode(t.o).lexical);
  }
  EXPECT_EQ(lexicals.count("x@en"), 1u);
  EXPECT_EQ(lexicals.count("b"), 1u);  // not "b."
  EXPECT_EQ(lexicals.count("42^^<http://e/int>"), 1u);
  ExpectStableNTriples(*g);
}

TEST(RoundTripTest, NTriplesAtSignInLiteralBodyStaysEscaped) {
  // The writer splits a trailing @tag off the lexical form and emits it
  // verbatim, so it must only do that for well-formed tags: a body that
  // merely contains '@' followed by a tab, quote, or backslash has to
  // stay inside the escaped literal or the output would not re-parse.
  const char* src =
      "<http://e/s> <http://e/p> \"user@host\\tname\" .\n"
      "<http://e/s> <http://e/p> \"a@\\\"quoted\\\"\" .\n"
      "<http://e/s> <http://e/p> \"end@\" .\n";
  auto g = ParseNTriplesString(src);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  ASSERT_EQ(g->NumTriples(), 3u);
  ExpectStableNTriples(*g);
  // A sane-looking tag suffix may be re-serialized as a tag, but the
  // term's lexical form must survive the round trip unchanged.
  const char* ambiguous = "<http://e/s> <http://e/p> \"user@domain-x\" .\n";
  auto ga = ParseNTriplesString(ambiguous);
  ASSERT_TRUE(ga.ok());
  auto ga2 = ParseNTriplesString(WriteNTriples(*ga));
  ASSERT_TRUE(ga2.ok());
  EXPECT_EQ(ga2->dict().Decode(ga2->triples()[0].o).lexical,
            "user@domain-x");
}

TEST(RoundTripTest, JsonExportPreservesCosts) {
  Rng rng(63);
  GeneratedQuery q = GenerateRandomQuery(QueryShape::kTree, 6, rng);
  HashSoPartitioner hash;
  PreparedQuery prepared(q.patterns, hash, [&q](const JoinGraph& jg) {
    return q.MakeStats(jg);
  });
  OptimizeResult r =
      Optimize(Algorithm::kTdCmd, prepared.inputs(), OptimizeOptions{});
  ASSERT_NE(r.plan, nullptr);
  std::string json = PlanToJson(*r.plan, prepared.join_graph());
  // The root's totalCost appears verbatim with %.17g precision.
  char expect[64];
  std::snprintf(expect, sizeof(expect), "\"totalCost\":%.17g",
                r.plan->total_cost);
  EXPECT_NE(json.find(expect), std::string::npos) << json;
}

}  // namespace
}  // namespace parqo
