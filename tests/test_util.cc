#include "tests/test_util.h"

#include <functional>
#include <map>
#include <unordered_map>

#include "common/status.h"

namespace parqo::testing {

TriplePattern Tp(const std::string& s, const std::string& p,
                 const std::string& o) {
  auto term = [](const std::string& t) {
    if (!t.empty() && t[0] == '?') return PatternTerm::Var(t.substr(1));
    return PatternTerm::Const(Term::Iri(t));
  };
  TriplePattern tp;
  tp.s = term(s);
  tp.p = term(p);
  tp.o = term(o);
  return tp;
}

std::vector<TriplePattern> Figure1Query() {
  return {
      Tp("?b", "p1", "?a"),  // tp1
      Tp("?c", "p2", "?a"),  // tp2
      Tp("?a", "p3", "?e"),  // tp3
      Tp("?e", "p4", "?g"),  // tp4
      Tp("?b", "p5", "?f"),  // tp5
      Tp("?c", "p6", "?d"),  // tp6
      Tp("?a", "p7", "?d"),  // tp7
  };
}

std::vector<TriplePattern> Figure4Query() {
  return {
      Tp("?vj", "p1", "?w"),   // tp1: in N_tp(vj), indivisible with tp2
      Tp("?w", "p2", "c2"),    // tp2
      Tp("?vj", "p3", "?x"),   // tp3: in N_tp(vj), indivisible with tp4
      Tp("?x", "p4", "c4"),    // tp4
      Tp("?vj", "?a", "?b"),   // tp5: in N_tp(vj), divisible component
      Tp("?a", "?e", "?c"),    // tp6 (edges to tp5, tp7, tp8)
      Tp("?c", "p7", "c7"),    // tp7
      Tp("?b", "?e", "?d"),    // tp8 (edges to tp5, tp6, tp9)
      Tp("?vj", "p9", "?d"),   // tp9: in N_tp(vj)
  };
}

std::pair<TpSet, TpSet> CanonicalCbd(TpSet q, TpSet a, TpSet b) {
  if (a.Contains(q.First())) return {a, b};
  return {b, a};
}

std::set<std::pair<std::uint64_t, std::uint64_t>> BruteForceCbds(
    const JoinGraph& jg, TpSet q, VarId vj) {
  std::set<std::pair<std::uint64_t, std::uint64_t>> out;
  TpSet ntp = jg.Ntp(vj) & q;
  const std::uint64_t bits = q.bits();
  // Iterate proper non-empty submasks of q.
  for (std::uint64_t sub = (bits - 1) & bits; sub != 0;
       sub = (sub - 1) & bits) {
    TpSet a(sub);
    TpSet b = q - a;
    if (b.Empty()) continue;
    if (!a.Intersects(ntp) || !b.Intersects(ntp)) continue;
    if (!jg.IsConnected(a) || !jg.IsConnected(b)) continue;
    auto [x, y] = CanonicalCbd(q, a, b);
    out.emplace(x.bits(), y.bits());
  }
  return out;
}

std::set<std::pair<std::vector<std::uint64_t>, VarId>> BruteForceCmds(
    const JoinGraph& jg, TpSet q) {
  std::set<std::pair<std::vector<std::uint64_t>, VarId>> out;
  std::vector<int> elements;
  for (int tp : q) elements.push_back(tp);

  std::vector<TpSet> blocks;
  std::function<void()> recurse = [&]() {
    std::size_t next = 0;
    TpSet used;
    for (const TpSet& b : blocks) used |= b;
    bool complete = true;
    for (int e : elements) {
      if (!used.Contains(e)) {
        next = static_cast<std::size_t>(e);
        complete = false;
        break;
      }
    }
    if (complete) {
      if (blocks.size() < 2) return;
      for (VarId vj : jg.join_vars()) {
        bool ok = true;
        for (const TpSet& b : blocks) {
          if ((b & jg.Ntp(vj)).Empty() || !jg.IsConnected(b)) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        std::vector<std::uint64_t> parts;
        for (const TpSet& b : blocks) parts.push_back(b.bits());
        std::sort(parts.begin(), parts.end());
        out.emplace(parts, vj);
      }
      return;
    }
    // Place `next` into each existing block or a new one.
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      blocks[i].Add(static_cast<int>(next));
      recurse();
      blocks[i].Remove(static_cast<int>(next));
    }
    blocks.push_back(TpSet::Singleton(static_cast<int>(next)));
    recurse();
    blocks.pop_back();
  };
  recurse();
  return out;
}

std::set<std::vector<TermId>> ReferenceEvaluate(const JoinGraph& jg,
                                                const RdfGraph& graph) {
  // Pre-bucket triples by predicate id (0 bucket = all, for var
  // predicates).
  std::unordered_map<TermId, std::vector<const Triple*>> by_predicate;
  for (const Triple& t : graph.triples()) {
    by_predicate[t.p].push_back(&t);
  }

  const Dictionary& dict = graph.dict();
  auto resolve = [&](const PatternTerm& t) -> std::pair<bool, TermId> {
    if (t.IsVar()) return {false, kInvalidTermId};
    return {true, dict.Lookup(t.term)};
  };

  struct Slot {
    bool is_const;
    TermId constant;
    VarId var;
  };
  struct Pat {
    Slot s, p, o;
  };
  std::vector<Pat> pats;
  for (int i = 0; i < jg.num_tps(); ++i) {
    const TriplePattern& tp = jg.pattern(i);
    auto slot = [&](const PatternTerm& t) {
      auto [is_const, id] = resolve(t);
      Slot s;
      s.is_const = is_const;
      s.constant = id;
      s.var = t.IsVar() ? jg.FindVar(t.var) : kInvalidVarId;
      return s;
    };
    pats.push_back(Pat{slot(tp.s), slot(tp.p), slot(tp.o)});
  }

  std::vector<TermId> binding(jg.num_vars(), kInvalidTermId);
  std::vector<bool> done(pats.size(), false);
  std::set<std::vector<TermId>> results;

  // Pick the next pattern greedily: prefer bound predicates and the most
  // bound/constant positions.
  auto pick = [&]() {
    int best = -1;
    int best_score = -1;
    for (std::size_t i = 0; i < pats.size(); ++i) {
      if (done[i]) continue;
      int score = 0;
      auto bound = [&](const Slot& s) {
        return s.is_const ||
               (s.var != kInvalidVarId && binding[s.var] != kInvalidTermId);
      };
      if (bound(pats[i].p)) score += 4;
      if (bound(pats[i].s)) score += 2;
      if (bound(pats[i].o)) score += 2;
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    return best;
  };

  std::function<void(int)> recurse = [&](int depth) {
    if (depth == static_cast<int>(pats.size())) {
      results.insert(binding);
      return;
    }
    int i = pick();
    done[i] = true;
    const Pat& pat = pats[i];

    auto each = [&](const Triple& t) {
      std::vector<std::pair<VarId, TermId>> newly;
      auto unify = [&](const Slot& s, TermId value) {
        if (s.is_const) return s.constant == value;
        if (binding[s.var] != kInvalidTermId) {
          return binding[s.var] == value;
        }
        // Also handle two slots with the same fresh var in one pattern.
        for (auto& [v, val] : newly) {
          if (v == s.var) return val == value;
        }
        newly.emplace_back(s.var, value);
        return true;
      };
      if (unify(pat.s, t.s) && unify(pat.p, t.p) && unify(pat.o, t.o)) {
        for (auto& [v, val] : newly) binding[v] = val;
        recurse(depth + 1);
        for (auto& [v, val] : newly) binding[v] = kInvalidTermId;
      }
    };

    TermId p_id = kInvalidTermId;
    if (pat.p.is_const) {
      p_id = pat.p.constant;
    } else if (binding[pat.p.var] != kInvalidTermId) {
      p_id = binding[pat.p.var];
    }
    if (p_id != kInvalidTermId) {
      auto it = by_predicate.find(p_id);
      if (it != by_predicate.end()) {
        for (const Triple* t : it->second) each(*t);
      }
    } else {
      for (const Triple& t : graph.triples()) each(t);
    }
    done[i] = false;
  };
  recurse(0);
  return results;
}

}  // namespace parqo::testing
