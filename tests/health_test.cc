// Self-healing serving tier (DESIGN.md section 16): the
// NodeHealthRegistry's breaker state machine and EWMA tracking, the
// cluster-wide RetryBudget, the adaptive AdmissionController, and their
// integration into the executor (pre-emptive quarantine, deterministic
// hedging) and the QueryServer (sick-node streams trip breakers and
// route around; retry storms are capped by the shared budget).
//
// The concurrency tests double as the TSan targets for the health
// registry: the CI thread-sanitizer job runs this binary.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/stopwatch.h"
#include "exec/cluster.h"
#include "exec/executor.h"
#include "exec/health.h"
#include "partition/hash_so.h"
#include "plan/plan.h"
#include "rdf/ntriples.h"
#include "server/admission.h"
#include "server/server.h"
#include "stats/data_stats.h"
#include "tests/test_util.h"

namespace parqo {
namespace {

using testing::Tp;

// --------------------------------------------------------------------------
// RetryBudget: the cluster-wide retry cap.

TEST(RetryBudgetTest, FixedCapacityIsAHardBound) {
  RetryBudget budget(3);
  EXPECT_EQ(budget.remaining(), 3u);
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_FALSE(budget.TryAcquire());  // bucket dry: every further draw fails
  EXPECT_FALSE(budget.TryAcquire());
  EXPECT_EQ(budget.acquired(), 3u);
  EXPECT_EQ(budget.denied(), 2u);
  EXPECT_EQ(budget.remaining(), 0u);
}

TEST(RetryBudgetTest, RefillAccruesOverTime) {
  // An empty bucket with a very fast refill becomes claimable within the
  // test's (bounded) patience; with refill the budget is a rate, not a
  // fixed pool.
  RetryBudget budget(0, /*refill_per_second=*/1e6);
  Deadline deadline = Deadline::AfterSeconds(5.0);
  bool acquired = false;
  while (!deadline.Expired()) {
    if (budget.TryAcquire()) {
      acquired = true;
      break;
    }
  }
  EXPECT_TRUE(acquired);
}

TEST(RetryBudgetTest, ConcurrentAcquiresNeverExceedCapacity) {
  // TSan target: 8 threads hammer one fixed bucket; exactly `capacity`
  // acquires may succeed in total, no matter the interleaving.
  constexpr std::uint64_t kCapacity = 1000;
  RetryBudget budget(kCapacity);
  std::atomic<std::uint64_t> successes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (budget.TryAcquire()) {
          successes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(successes.load(), kCapacity);
  EXPECT_EQ(budget.acquired(), kCapacity);
  EXPECT_EQ(budget.denied(), 8u * 1000u - kCapacity);
}

TEST(RetryBudgetTest, RetryDrawsExactlyOneTokenPerStartedRetry) {
  RetryBudget budget(1);
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.budget = &budget;
  Retry retry(policy, /*seed=*/7);

  // The first attempt is free: admission controls first tries, the
  // budget only meters retries.
  ASSERT_TRUE(retry.ShouldRetry());
  EXPECT_EQ(budget.acquired(), 0u);
  retry.BeginAttempt();

  // Retry 1 draws the single token — and repeated ShouldRetry() calls
  // (the executor's loop re-checks) must not double-draw.
  ASSERT_TRUE(retry.ShouldRetry());
  ASSERT_TRUE(retry.ShouldRetry());
  EXPECT_EQ(budget.acquired(), 1u);
  retry.BeginAttempt();

  // Retry 2 finds the bucket dry: the loop stops with the typed cause.
  EXPECT_FALSE(retry.ShouldRetry());
  EXPECT_TRUE(retry.budget_exhausted());
  EXPECT_EQ(budget.denied(), 1u);
}

TEST(RetryBudgetTest, NoBudgetMeansPerQueryPolicyOnly) {
  Retry retry(RetryPolicy{}, /*seed=*/7);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(retry.ShouldRetry());
    retry.BeginAttempt();
  }
  EXPECT_FALSE(retry.ShouldRetry());       // per-query attempts exhausted
  EXPECT_FALSE(retry.budget_exhausted());  // ... but not the budget
}

// --------------------------------------------------------------------------
// NodeHealthRegistry: breaker state machine.

TEST(HealthRegistryTest, BreakerTripsAtThresholdNotBefore) {
  HealthConfig cfg;
  cfg.failure_threshold = 3;
  cfg.cooldown_seconds = 1000;  // stays open for the whole test
  NodeHealthRegistry reg(2, cfg);

  reg.RecordNodeFailure(0);
  reg.RecordNodeFailure(0);
  EXPECT_EQ(reg.state(0), BreakerState::kClosed);
  EXPECT_TRUE(reg.AllowRoute(0));
  reg.RecordNodeFailure(0);
  EXPECT_EQ(reg.state(0), BreakerState::kOpen);
  EXPECT_EQ(reg.breaker_opens(), 1u);

  // Open inside cooldown: quarantined, and the other node is untouched.
  EXPECT_FALSE(reg.AllowRoute(0));
  EXPECT_GE(reg.routes_denied(), 1u);
  EXPECT_TRUE(reg.AllowRoute(1));
  EXPECT_EQ(reg.state(1), BreakerState::kClosed);
}

TEST(HealthRegistryTest, SuccessResetsTheConsecutiveStreak) {
  HealthConfig cfg;
  cfg.failure_threshold = 3;
  NodeHealthRegistry reg(1, cfg);
  reg.RecordNodeFailure(0);
  reg.RecordNodeFailure(0);
  reg.RecordNodeSuccess(0, 1e-5);  // a good op between the bad ones
  reg.RecordNodeFailure(0);
  reg.RecordNodeFailure(0);
  EXPECT_EQ(reg.state(0), BreakerState::kClosed);  // streak never hit 3
  EXPECT_EQ(reg.consecutive_failures(0), 2);
}

TEST(HealthRegistryTest, CooldownOffersOneProbeAndSuccessCloses) {
  HealthConfig cfg;
  cfg.failure_threshold = 1;
  cfg.cooldown_seconds = 0;  // half-open is offered immediately
  NodeHealthRegistry reg(1, cfg);

  reg.RecordNodeFailure(0);
  ASSERT_EQ(reg.state(0), BreakerState::kOpen);

  // First router past the cooldown claims the probe...
  EXPECT_TRUE(reg.AllowRoute(0));
  EXPECT_EQ(reg.state(0), BreakerState::kHalfOpen);
  EXPECT_EQ(reg.probes_started(), 1u);
  // ... and everyone else keeps being turned away until its outcome.
  EXPECT_FALSE(reg.AllowRoute(0));

  reg.RecordNodeSuccess(0, 1e-5);
  EXPECT_EQ(reg.state(0), BreakerState::kClosed);
  EXPECT_EQ(reg.breaker_closes(), 1u);
  EXPECT_TRUE(reg.AllowRoute(0));
}

TEST(HealthRegistryTest, FailedProbeReopensTheBreaker) {
  HealthConfig cfg;
  cfg.failure_threshold = 1;
  cfg.cooldown_seconds = 0;
  NodeHealthRegistry reg(1, cfg);

  reg.RecordNodeFailure(0);
  ASSERT_TRUE(reg.AllowRoute(0));  // the probe
  ASSERT_EQ(reg.state(0), BreakerState::kHalfOpen);
  reg.RecordNodeFailure(0);  // probe failed
  EXPECT_EQ(reg.state(0), BreakerState::kOpen);
  EXPECT_EQ(reg.breaker_opens(), 2u);
  EXPECT_EQ(reg.breaker_closes(), 0u);
}

TEST(HealthRegistryTest, ExactlyOneConcurrentRouterWinsTheProbe) {
  // TSan target: with the breaker open past cooldown, N racing routers
  // must elect exactly one half-open probe.
  HealthConfig cfg;
  cfg.failure_threshold = 1;
  cfg.cooldown_seconds = 0;
  NodeHealthRegistry reg(1, cfg);
  reg.RecordNodeFailure(0);
  ASSERT_EQ(reg.state(0), BreakerState::kOpen);

  std::atomic<int> allowed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      if (reg.AllowRoute(0)) allowed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(allowed.load(), 1);
  EXPECT_EQ(reg.probes_started(), 1u);
  EXPECT_EQ(reg.state(0), BreakerState::kHalfOpen);
}

TEST(HealthRegistryTest, ConcurrentFeedbackKeepsInvariants) {
  // TSan target: routing, success/failure feedback, and session
  // recording race freely; the registry must stay sane (no torn EWMAs,
  // opens >= closes, counters monotone).
  HealthConfig cfg;
  cfg.failure_threshold = 4;
  cfg.cooldown_seconds = 0;
  cfg.session_window = 16;
  NodeHealthRegistry reg(4, cfg);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&reg, t] {
      ExecMetrics fake;
      fake.node_busy_seconds.assign(4, 1e-4);
      fake.node_ops.assign(4, 10);
      fake.node_failures.assign(4, 0);
      fake.wall_seconds = 1e-3;
      for (int i = 0; i < 500; ++i) {
        int node = (t + i) % 4;
        reg.AllowRoute(node);
        if (i % 7 == 0) {
          reg.RecordNodeFailure(node);
        } else {
          reg.RecordNodeSuccess(node, 1e-5 * (1 + node));
        }
        if (i % 64 == 0) reg.RecordSession(fake);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int node = 0; node < 4; ++node) {
    double ewma = reg.EwmaOpSeconds(node);
    EXPECT_TRUE(std::isfinite(ewma));
    EXPECT_GE(ewma, 0.0);
  }
  EXPECT_GE(reg.breaker_opens(), reg.breaker_closes());
  EXPECT_GT(reg.SessionP99Seconds(), 0.0);
}

// --------------------------------------------------------------------------
// NodeHealthRegistry: EWMA and derived thresholds.

TEST(HealthRegistryTest, EwmaBlendsSamples) {
  HealthConfig cfg;
  cfg.ewma_alpha = 0.5;
  NodeHealthRegistry reg(1, cfg);
  EXPECT_EQ(reg.EwmaOpSeconds(0), 0.0);  // no samples yet
  reg.RecordNodeSuccess(0, 0.1);
  EXPECT_DOUBLE_EQ(reg.EwmaOpSeconds(0), 0.1);  // first sample seeds
  reg.RecordNodeSuccess(0, 0.2);
  EXPECT_DOUBLE_EQ(reg.EwmaOpSeconds(0), 0.15);  // 0.5*0.2 + 0.5*0.1
}

TEST(HealthRegistryTest, HedgeThresholdIsQuantileTimesMultiplier) {
  HealthConfig cfg;
  cfg.ewma_alpha = 1.0;  // EWMA == last sample, to pin the quantile
  cfg.hedge_quantile = 0.5;
  cfg.hedge_multiplier = 2.0;
  cfg.hedge_min_seconds = 1e-9;
  NodeHealthRegistry reg(3, cfg);
  EXPECT_TRUE(std::isinf(reg.HedgeThresholdSeconds()));  // no samples

  reg.RecordNodeSuccess(0, 0.1);
  reg.RecordNodeSuccess(1, 0.2);
  reg.RecordNodeSuccess(2, 0.3);
  reg.RecordSession(ExecMetrics{});  // recomputes the derived thresholds
  // Median of {0.1, 0.2, 0.3} is 0.2; threshold = 2.0 * 0.2.
  EXPECT_DOUBLE_EQ(reg.HedgeThresholdSeconds(), 0.4);
}

TEST(HealthRegistryTest, HedgeThresholdRespectsTheFloor) {
  HealthConfig cfg;
  cfg.ewma_alpha = 1.0;
  cfg.hedge_multiplier = 2.0;
  cfg.hedge_min_seconds = 0.5;  // far above 2 * any sample below
  NodeHealthRegistry reg(1, cfg);
  reg.RecordNodeSuccess(0, 1e-6);
  reg.RecordSession(ExecMetrics{});
  EXPECT_DOUBLE_EQ(reg.HedgeThresholdSeconds(), 0.5);
}

TEST(HealthRegistryTest, SessionP99TracksRecentWalls) {
  HealthConfig cfg;
  cfg.session_window = 4;
  NodeHealthRegistry reg(1, cfg);
  EXPECT_EQ(reg.SessionP99Seconds(), 0.0);
  for (double wall : {1.0, 2.0, 3.0, 4.0}) {
    ExecMetrics m;
    m.wall_seconds = wall;
    reg.RecordSession(m);
  }
  // Nearest-rank p99 over a window of 4: rank floor(0.99 * 3) = 2.
  EXPECT_DOUBLE_EQ(reg.SessionP99Seconds(), 3.0);
}

// --------------------------------------------------------------------------
// AdmissionController: bounded queue and shedding.

TEST(AdmissionTest, QueuedRequestAdmitsWhenASlotFrees) {
  AdmissionConfig cfg;
  cfg.max_in_flight = 1;
  cfg.max_queue = 2;
  cfg.max_queue_wait_seconds = 5.0;
  AdmissionController ctrl(cfg);

  ASSERT_TRUE(ctrl.TryAdmit());  // the slot is taken
  std::atomic<bool> admitted{false};
  std::thread waiter([&] { admitted.store(ctrl.TryAdmit()); });

  // Wait (bounded) until the request is parked in the queue, then free
  // the slot; the waiter must be admitted through the queue path.
  Deadline deadline = Deadline::AfterSeconds(5.0);
  while (ctrl.queued() == 0 && !deadline.Expired()) {
  }
  ASSERT_EQ(ctrl.queued(), 1);
  ctrl.Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(ctrl.queue_admitted(), 1u);
  EXPECT_EQ(ctrl.queued(), 0);
  ctrl.Release();
}

TEST(AdmissionTest, QueueWaitIsBounded) {
  AdmissionConfig cfg;
  cfg.max_in_flight = 1;
  cfg.max_queue = 2;
  cfg.max_queue_wait_seconds = 0.02;
  AdmissionController ctrl(cfg);
  ASSERT_TRUE(ctrl.TryAdmit());

  Stopwatch watch;
  EXPECT_FALSE(ctrl.TryAdmit());  // waits ~20ms, then gives up typed
  EXPECT_GE(watch.ElapsedSeconds(), 0.02);
  EXPECT_EQ(ctrl.queue_rejected(), 1u);
  EXPECT_EQ(ctrl.rejected(), 1u);
  EXPECT_EQ(ctrl.queued(), 0);
  ctrl.Release();
}

TEST(AdmissionTest, QueueDepthIsBounded) {
  AdmissionConfig cfg;
  cfg.max_in_flight = 1;
  cfg.max_queue = 1;
  cfg.max_queue_wait_seconds = 5.0;
  AdmissionController ctrl(cfg);
  ASSERT_TRUE(ctrl.TryAdmit());

  std::atomic<bool> admitted{false};
  std::thread waiter([&] { admitted.store(ctrl.TryAdmit()); });
  Deadline deadline = Deadline::AfterSeconds(5.0);
  while (ctrl.queued() == 0 && !deadline.Expired()) {
  }
  ASSERT_EQ(ctrl.queued(), 1);

  // The queue is full: the next request is rejected immediately, not
  // parked behind an unbounded line.
  EXPECT_FALSE(ctrl.TryAdmit());
  EXPECT_EQ(ctrl.queue_rejected(), 1u);

  ctrl.Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  ctrl.Release();
}

TEST(AdmissionTest, SheddingHalvesTheCapAndBypassesTheQueue) {
  // Feed the registry fake slow sessions so its p99 crosses the shed
  // threshold, then watch the front door tighten.
  HealthConfig hcfg;
  hcfg.session_window = 8;
  NodeHealthRegistry reg(1, hcfg);
  ExecMetrics slow;
  slow.wall_seconds = 1.0;
  for (int i = 0; i < 8; ++i) reg.RecordSession(slow);
  ASSERT_DOUBLE_EQ(reg.SessionP99Seconds(), 1.0);

  AdmissionConfig cfg;
  cfg.max_in_flight = 4;
  cfg.max_queue = 4;
  cfg.max_queue_wait_seconds = 1.0;
  cfg.shed_p99_seconds = 0.5;
  AdmissionController ctrl(cfg, &reg);
  ASSERT_TRUE(ctrl.IsShedding());

  // Effective cap is 4 / 2 = 2; the third request is shed without
  // queueing (no 1-second wait — it returns at once).
  EXPECT_TRUE(ctrl.TryAdmit());
  EXPECT_TRUE(ctrl.TryAdmit());
  Stopwatch watch;
  EXPECT_FALSE(ctrl.TryAdmit());
  EXPECT_LT(watch.ElapsedSeconds(), 0.5);
  EXPECT_EQ(ctrl.shed(), 1u);
  EXPECT_EQ(ctrl.queued(), 0);
  ctrl.Release();
  ctrl.Release();

  // A healthy p99 reopens the full cap.
  ExecMetrics fast;
  fast.wall_seconds = 1e-4;
  for (int i = 0; i < 8; ++i) reg.RecordSession(fast);
  EXPECT_FALSE(ctrl.IsShedding());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ctrl.TryAdmit());
  for (int i = 0; i < 4; ++i) ctrl.Release();
}

// --------------------------------------------------------------------------
// Executor integration on a tiny hand-made cluster (the chaos_test mini
// fixture): quarantine and hedging.

class HealthExecutorTest : public ::testing::Test {
 protected:
  HealthExecutorTest() {
    auto g = ParseNTriplesString(
        "<s1> <worksFor> <d1> .\n"
        "<s2> <worksFor> <d1> .\n"
        "<s3> <worksFor> <d2> .\n"
        "<d1> <subOrg> <u1> .\n"
        "<d2> <subOrg> <u1> .\n"
        "<d2> <subOrg> <u2> .\n"
        "<s1> <likes> <s2> .\n"
        "<s2> <likes> <s3> .\n");
    graph_ = std::make_unique<RdfGraph>(std::move(*g));
    jg_ = std::make_unique<JoinGraph>(std::vector<TriplePattern>{
        Tp("?x", "worksFor", "?y"), Tp("?y", "subOrg", "?u"),
        Tp("?x", "likes", "?z")});
    cluster_ = std::make_unique<Cluster>(*graph_,
                                         hash_.PartitionData(*graph_, 3));
    estimator_ = std::make_unique<CardinalityEstimator>(
        *jg_, ComputeStatisticsFromGraph(*jg_, *graph_));
    builder_ = std::make_unique<PlanBuilder>(*estimator_,
                                             CostModel(CostParams{}));
  }

  PlanNodePtr RepartitionPlan() {
    return builder_->Join(
        JoinMethod::kRepartition, jg_->FindVar("y"),
        {builder_->Join(JoinMethod::kRepartition, jg_->FindVar("x"),
                        {builder_->Scan(0), builder_->Scan(2)}),
         builder_->Scan(1)});
  }

  std::set<std::vector<TermId>> Expected() {
    return testing::ReferenceEvaluate(*jg_, *graph_);
  }

  std::set<std::vector<TermId>> Normalize(const BindingTable& t) {
    std::set<std::vector<TermId>> rows;
    for (std::size_t r = 0; r < t.NumRows(); ++r) {
      std::vector<TermId> row;
      for (VarId v = 0; v < jg_->num_vars(); ++v) {
        int c = t.ColumnOf(v);
        row.push_back(c < 0 ? kInvalidTermId : t.At(r, c));
      }
      rows.insert(row);
    }
    return rows;
  }

  HashSoPartitioner hash_;
  std::unique_ptr<RdfGraph> graph_;
  std::unique_ptr<JoinGraph> jg_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<CardinalityEstimator> estimator_;
  std::unique_ptr<PlanBuilder> builder_;
};

TEST_F(HealthExecutorTest, OpenBreakerQuarantinesPreemptively) {
  // Trip node 1's breaker out-of-band (a previous session's failures),
  // then execute: the partition must be re-homed BEFORE dispatch, with
  // zero mid-query crash detections and bit-identical rows.
  HealthConfig cfg;
  cfg.failure_threshold = 1;
  cfg.cooldown_seconds = 1000;
  NodeHealthRegistry health(3, cfg);
  health.RecordNodeFailure(1);
  ASSERT_EQ(health.state(1), BreakerState::kOpen);

  PlanNodePtr plan = RepartitionPlan();
  for (ExecEngine engine : {ExecEngine::kRow, ExecEngine::kBatch}) {
    for (bool parallel : {false, true}) {
      SCOPED_TRACE(std::string(engine == ExecEngine::kRow ? "row" : "batch") +
                   (parallel ? " parallel" : " serial"));
      Executor exec(*cluster_, *jg_, CostParams{}, parallel, RetryPolicy{},
                    engine, &health);
      ExecMetrics m;
      auto result = exec.Execute(*plan, &m);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(Normalize(*result), Expected());
      ASSERT_EQ(m.quarantined_nodes.size(), 1u);
      EXPECT_EQ(m.quarantined_nodes[0], 1);
      EXPECT_TRUE(m.degraded_nodes.empty());
      EXPECT_EQ(m.recovery_attempts, 0u);
      EXPECT_EQ(m.node_ops[1], 0u);  // never dispatched to the open node
      for (std::uint64_t f : m.node_failures) EXPECT_EQ(f, 0u);
    }
  }
}

TEST_F(HealthExecutorTest, LastSurvivorIsNeverQuarantined) {
  HealthConfig cfg;
  cfg.failure_threshold = 1;
  cfg.cooldown_seconds = 1000;
  NodeHealthRegistry health(3, cfg);
  for (int node = 0; node < 3; ++node) health.RecordNodeFailure(node);

  PlanNodePtr plan = RepartitionPlan();
  Executor exec(*cluster_, *jg_, CostParams{}, /*parallel_nodes=*/false,
                RetryPolicy{}, ExecEngine::kBatch, &health);
  ExecMetrics m;
  auto result = exec.Execute(*plan, &m);
  // A query beats no query: with every breaker open, one survivor keeps
  // serving and the rows are still exact.
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Normalize(*result), Expected());
  EXPECT_EQ(m.quarantined_nodes.size(), 2u);
}

TEST_F(HealthExecutorTest, HedgedStragglerKeepsRowsBitIdentical) {
  // Train healthy EWMAs so the hedge threshold is finite and below the
  // straggler's injected delay, then run against a slow node: every op
  // bound for it is hedged to a healthy peer, the hedge wins (strictly
  // smaller in-flight delay), and the rows match the fault-free run.
  HealthConfig cfg;
  cfg.ewma_alpha = 1.0;
  NodeHealthRegistry health(3, cfg);
  for (int node = 0; node < 3; ++node) health.RecordNodeSuccess(node, 1e-5);
  health.RecordSession(ExecMetrics{});
  double threshold = health.HedgeThresholdSeconds();
  ASSERT_TRUE(std::isfinite(threshold));

  const double delay = 4 * threshold;
  PlanNodePtr plan = RepartitionPlan();
  for (ExecEngine engine : {ExecEngine::kRow, ExecEngine::kBatch}) {
    for (bool parallel : {false, true}) {
      SCOPED_TRACE(std::string(engine == ExecEngine::kRow ? "row" : "batch") +
                   (parallel ? " parallel" : " serial"));
      FaultPlan fault(3);
      fault.SlowNode(2, delay);
      Executor exec(*cluster_, *jg_, CostParams{}, parallel, RetryPolicy{},
                    engine, &health);
      ExecMetrics m;
      Result<BindingTable> result = [&] {
        FaultScope scope(&fault);
        return exec.Execute(*plan, &m);
      }();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(Normalize(*result), Expected());
      EXPECT_GT(m.hedged_ops, 0u);
      EXPECT_EQ(m.hedge_wins, m.hedged_ops);  // peers are strictly faster
      EXPECT_EQ(m.node_ops[2], 0u);   // every straggler op re-homed
      EXPECT_EQ(fault.slow_ops(), 0u);  // the delay was never paid
      EXPECT_TRUE(m.degraded_nodes.empty());
      EXPECT_EQ(m.recovery_attempts, 0u);
    }
  }
}

TEST_F(HealthExecutorTest, HedgeTieKeepsThePrimary) {
  // When every candidate is as slow as the primary, a hedge launches but
  // cannot win: first-completion-wins breaks ties toward the primary so
  // the outcome is deterministic.
  HealthConfig cfg;
  cfg.ewma_alpha = 1.0;
  NodeHealthRegistry health(3, cfg);
  for (int node = 0; node < 3; ++node) health.RecordNodeSuccess(node, 1e-5);
  health.RecordSession(ExecMetrics{});
  const double delay = 4 * health.HedgeThresholdSeconds();

  FaultPlan fault(3);
  for (int node = 0; node < 3; ++node) fault.SlowNode(node, delay);
  PlanNodePtr plan = RepartitionPlan();
  Executor exec(*cluster_, *jg_, CostParams{}, /*parallel_nodes=*/false,
                RetryPolicy{}, ExecEngine::kBatch, &health);
  ExecMetrics m;
  Result<BindingTable> result = [&] {
    FaultScope scope(&fault);
    return exec.Execute(*plan, &m);
  }();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Normalize(*result), Expected());
  EXPECT_GT(m.hedged_ops, 0u);
  EXPECT_EQ(m.hedge_wins, 0u);  // ties keep the primary copy
  for (int node = 0; node < 3; ++node) EXPECT_GT(m.node_ops[node], 0u);
}

// --------------------------------------------------------------------------
// Server integration: sick-node streams and the shared retry budget.

class HealthServerTest : public ::testing::Test {
 protected:
  HealthServerTest() {
    auto g = ParseNTriplesString(
        "<s1> <worksFor> <d1> .\n"
        "<s2> <worksFor> <d1> .\n"
        "<s3> <worksFor> <d2> .\n"
        "<d1> <subOrg> <u1> .\n"
        "<d2> <subOrg> <u1> .\n"
        "<d2> <subOrg> <u2> .\n"
        "<s1> <likes> <s2> .\n"
        "<s2> <likes> <s3> .\n");
    graph_ = std::make_unique<RdfGraph>(std::move(*g));
    cluster_ = std::make_unique<Cluster>(*graph_,
                                         hash_.PartitionData(*graph_, 3));
  }

  std::vector<TriplePattern> Query() {
    return {Tp("?x", "worksFor", "?y"), Tp("?y", "subOrg", "?u"),
            Tp("?x", "likes", "?z")};
  }

  static std::set<std::vector<TermId>> Rows(const ServeResult& r) {
    std::set<std::vector<TermId>> rows;
    int num_vars = static_cast<int>(r.var_names.size());
    for (std::size_t i = 0; i < r.rows.NumRows(); ++i) {
      std::vector<TermId> row;
      for (VarId v = 0; v < num_vars; ++v) {
        int c = r.rows.ColumnOf(v);
        row.push_back(c < 0 ? kInvalidTermId : r.rows.At(i, c));
      }
      rows.insert(row);
    }
    return rows;
  }

  HashSoPartitioner hash_;
  std::unique_ptr<RdfGraph> graph_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(HealthServerTest, SickNodeTripsBreakerThenSessionsRouteAround) {
  ServerConfig config;
  config.health.failure_threshold = 2;
  config.health.cooldown_seconds = 1000;  // stays quarantined once open
  QueryServer server(*graph_, *cluster_, hash_, config);
  ASSERT_NE(server.health(), nullptr);

  // Fault-free baseline rows (also warms the plan cache).
  ServeResult clean = server.Serve(Query());
  ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();
  std::set<std::vector<TermId>> baseline = Rows(clean);

  FaultPlan fault(3);
  fault.SickNode(1);
  FaultScope scope(&fault);

  // Stream sessions at the sick node until its breaker trips. Each
  // session detects at least one failure, so the trip must land within
  // failure_threshold sessions.
  int sessions_to_trip = 0;
  while (server.health()->state(1) != BreakerState::kOpen) {
    ASSERT_LT(sessions_to_trip, config.health.failure_threshold)
        << "breaker did not trip within the configured threshold";
    ServeResult r = server.Serve(Query());
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(Rows(r), baseline);  // recovered, bit-identical
    ++sessions_to_trip;
  }
  EXPECT_LE(sessions_to_trip, config.health.failure_threshold);
  EXPECT_GE(server.health()->breaker_opens(), 1u);

  // Every session after the trip routes around the open node: zero
  // mid-query crash detections, exact rows, node 1 untouched.
  for (int i = 0; i < 3; ++i) {
    ServeResult r = server.Serve(Query());
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(Rows(r), baseline);
    ASSERT_EQ(r.exec_metrics.quarantined_nodes.size(), 1u);
    EXPECT_EQ(r.exec_metrics.quarantined_nodes[0], 1);
    EXPECT_EQ(r.exec_metrics.node_ops[1], 0u);
    for (std::uint64_t f : r.exec_metrics.node_failures) EXPECT_EQ(f, 0u);
    EXPECT_TRUE(r.exec_metrics.degraded_nodes.empty());
  }
}

TEST_F(HealthServerTest, CuredNodeIsProbedBackIntoService) {
  ServerConfig config;
  config.health.failure_threshold = 1;
  config.health.cooldown_seconds = 0;  // probe is offered immediately
  QueryServer server(*graph_, *cluster_, hash_, config);

  FaultPlan fault(3);
  FaultScope scope(&fault);
  fault.SickNode(1);
  ServeResult sick = server.Serve(Query());
  ASSERT_TRUE(sick.status.ok()) << sick.status.ToString();
  ASSERT_EQ(server.health()->state(1), BreakerState::kOpen);

  // The node recovers; the next session wins the half-open probe, the
  // probe succeeds, and the breaker closes.
  fault.CureNode(1);
  ServeResult probe = server.Serve(Query());
  ASSERT_TRUE(probe.status.ok()) << probe.status.ToString();
  EXPECT_EQ(server.health()->state(1), BreakerState::kClosed);
  EXPECT_GE(server.health()->breaker_closes(), 1u);

  // Back to normal service on all three nodes.
  ServeResult after = server.Serve(Query());
  ASSERT_TRUE(after.status.ok());
  EXPECT_GT(after.exec_metrics.node_ops[1], 0u);
  EXPECT_TRUE(after.exec_metrics.quarantined_nodes.empty());
}

TEST_F(HealthServerTest, RetryBudgetCapsTheStormAcrossSessions) {
  ServerConfig config;
  config.retry_budget = 3;  // fixed: total retries across ALL sessions
  config.enable_health = false;  // isolate the budget from quarantining
  QueryServer server(*graph_, *cluster_, hash_, config);
  ASSERT_NE(server.retry_budget(), nullptr);

  ServeResult clean = server.Serve(Query());
  ASSERT_TRUE(clean.status.ok());
  std::set<std::vector<TermId>> baseline = Rows(clean);

  // A flaky network that eats nearly every shipment: each session wants
  // many retries, but the shared bucket only holds 3 in total.
  FaultPlan fault(3);
  fault.DropShipments(0.95, /*seed=*/2017);
  std::uint64_t failed = 0;
  std::uint64_t budget_failures = 0;
  {
    FaultScope scope(&fault);
    for (int i = 0; i < 6; ++i) {
      ServeResult r = server.Serve(Query());
      if (r.status.ok()) {
        EXPECT_EQ(Rows(r), baseline);
      } else {
        // A session may also die on its per-query attempt cap (tokens
        // were granted but every attempt dropped); once the bucket is
        // dry, failures carry the budget-typed message instead.
        ASSERT_EQ(r.status.code(), StatusCode::kUnavailable)
            << r.status.ToString();
        ++failed;
        if (r.status.ToString().find("retry budget") != std::string::npos) {
          ++budget_failures;
        }
      }
    }
  }
  EXPECT_GT(budget_failures, 0u);  // the dry bucket surfaced, typed
  EXPECT_LE(server.retry_budget()->acquired(),
            server.retry_budget()->capacity());
  EXPECT_EQ(server.retry_budget()->remaining(), 0u);
  EXPECT_GT(server.retry_budget()->denied(), 0u);
  EXPECT_GT(failed, 0u);  // the storm was cut short, typed, not retried
}

}  // namespace
}  // namespace parqo
