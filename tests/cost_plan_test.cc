// Cost model (Table I / Eq. 3-4) and plan construction/validation tests.

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "plan/plan.h"
#include "plan/validate.h"
#include "tests/test_util.h"

namespace parqo {
namespace {

using testing::Tp;

TEST(CostModelTest, TableOneFormulas) {
  CostParams p;
  p.alpha = 0.02;
  p.beta_broadcast = 0.05;
  p.beta_repartition = 0.1;
  p.gamma_local = 0.004;
  p.gamma_broadcast = 0.008;
  p.gamma_repartition = 0.005;
  p.num_nodes = 10;
  CostModel m(p);

  std::vector<double> cards{100, 300, 50};
  double sum = 450, max = 300, out = 1000;

  EXPECT_DOUBLE_EQ(m.JoinOpCost(JoinMethod::kLocal, cards, out),
                   0.02 * sum + 0.004 * out);
  EXPECT_DOUBLE_EQ(m.JoinOpCost(JoinMethod::kBroadcast, cards, out),
                   0.02 * sum + 0.05 * (sum - max) * 10 + 0.008 * out);
  EXPECT_DOUBLE_EQ(m.JoinOpCost(JoinMethod::kRepartition, cards, out),
                   0.02 * sum + 0.1 * sum + 0.005 * out);
}

TEST(CostModelTest, BroadcastCheaperWhenOneInputDominates) {
  CostModel m{CostParams{}};
  // A huge input with a tiny one: broadcasting the tiny one avoids
  // reshuffling the huge one.
  std::vector<double> cards{1e6, 10};
  double out = 1e5;
  EXPECT_LT(m.JoinOpCost(JoinMethod::kBroadcast, cards, out),
            m.JoinOpCost(JoinMethod::kRepartition, cards, out));
  // With balanced large inputs, repartition wins.
  std::vector<double> balanced{1e6, 1e6};
  EXPECT_LT(m.JoinOpCost(JoinMethod::kRepartition, balanced, out),
            m.JoinOpCost(JoinMethod::kBroadcast, balanced, out));
}

class PlanTest : public ::testing::Test {
 protected:
  PlanTest()
      : jg_({Tp("?x", "p", "?y"), Tp("?y", "q", "?z"),
             Tp("?z", "r", "?w")}),
        stats_(MakeStats()),
        est_(jg_, stats_),
        builder_(est_, CostModel(CostParams{})) {}

  QueryStatistics MakeStats() {
    QueryStatistics s(jg_);
    s.SetCardinality(0, 100);
    s.SetCardinality(1, 200);
    s.SetCardinality(2, 300);
    s.SetBindings(0, jg_.FindVar("y"), 50);
    s.SetBindings(1, jg_.FindVar("y"), 100);
    s.SetBindings(1, jg_.FindVar("z"), 100);
    s.SetBindings(2, jg_.FindVar("z"), 150);
    return s;
  }

  JoinGraph jg_;
  QueryStatistics stats_;
  CardinalityEstimator est_;
  PlanBuilder builder_;
};

TEST_F(PlanTest, ScanNodeProperties) {
  PlanNodePtr scan = builder_.Scan(1);
  EXPECT_EQ(scan->kind, PlanNode::Kind::kScan);
  EXPECT_EQ(scan->tps, TpSet::Singleton(1));
  EXPECT_DOUBLE_EQ(scan->cardinality, 200);
  EXPECT_DOUBLE_EQ(scan->total_cost, 0);
  EXPECT_EQ(scan->NumJoinOps(), 0);
  EXPECT_EQ(scan->JoinDepth(), 0);
}

TEST_F(PlanTest, JoinCostIsEquation3) {
  PlanNodePtr left = builder_.Join(
      JoinMethod::kRepartition, jg_.FindVar("y"),
      {builder_.Scan(0), builder_.Scan(1)});
  PlanNodePtr root = builder_.Join(JoinMethod::kBroadcast,
                                   jg_.FindVar("z"),
                                   {left, builder_.Scan(2)});
  // Eq. 3: total = max(children totals) + own op cost.
  EXPECT_DOUBLE_EQ(root->total_cost, left->total_cost + root->op_cost);
  EXPECT_EQ(root->NumJoinOps(), 2);
  EXPECT_EQ(root->JoinDepth(), 2);
  EXPECT_EQ(root->tps, jg_.AllTps());
}

TEST_F(PlanTest, LocalJoinAllBuildsOneOperator) {
  TpSet pair;
  pair.Add(0);
  pair.Add(1);
  PlanNodePtr local = builder_.LocalJoinAll(pair);
  EXPECT_EQ(local->method, JoinMethod::kLocal);
  EXPECT_EQ(local->children.size(), 2u);
  EXPECT_EQ(local->JoinDepth(), 1);
  // Local joins have no transfer cost component.
  std::vector<double> cards{100, 200};
  EXPECT_DOUBLE_EQ(local->op_cost,
                   builder_.cost_model().JoinOpCost(
                       JoinMethod::kLocal, cards, local->cardinality));
}

TEST_F(PlanTest, ValidateAcceptsWellFormedPlan) {
  PlanNodePtr left = builder_.Join(
      JoinMethod::kRepartition, jg_.FindVar("y"),
      {builder_.Scan(0), builder_.Scan(1)});
  PlanNodePtr root = builder_.Join(JoinMethod::kBroadcast,
                                   jg_.FindVar("z"),
                                   {left, builder_.Scan(2)});
  EXPECT_TRUE(ValidatePlan(*root, jg_, nullptr).ok());
}

TEST_F(PlanTest, ValidateRejectsPartialPlans) {
  PlanNodePtr left = builder_.Join(
      JoinMethod::kRepartition, jg_.FindVar("y"),
      {builder_.Scan(0), builder_.Scan(1)});
  Status st = ValidatePlan(*left, jg_, nullptr);
  EXPECT_FALSE(st.ok());
}

TEST_F(PlanTest, ValidateRejectsCartesianJoinVariable) {
  // Joining tp0 and tp2 (no shared variable) on ?y: tp2 does not contain
  // ?y, so condition 3 of Definition 3 is violated.
  PlanNodePtr bad = builder_.Join(JoinMethod::kRepartition,
                                  jg_.FindVar("y"),
                                  {builder_.Scan(0), builder_.Scan(2)});
  PlanNodePtr root = builder_.Join(JoinMethod::kRepartition,
                                   jg_.FindVar("z"),
                                   {bad, builder_.Scan(1)});
  EXPECT_FALSE(ValidatePlan(*root, jg_, nullptr).ok());
}

TEST_F(PlanTest, ValidateChecksLocalityWhenIndexGiven) {
  TpSet pair;
  pair.Add(0);
  pair.Add(1);
  PlanNodePtr local = builder_.LocalJoinAll(pair);
  PlanNodePtr root = builder_.Join(JoinMethod::kRepartition,
                                   jg_.FindVar("z"),
                                   {local, builder_.Scan(2)});
  // With an index that says nothing is local, the plan is invalid.
  LocalQueryIndex none = LocalQueryIndex::None(jg_.num_tps());
  EXPECT_FALSE(ValidatePlan(*root, jg_, &none).ok());
  // With an index making {tp0, tp1} local, it passes.
  LocalQueryIndex index({pair});
  EXPECT_TRUE(ValidatePlan(*root, jg_, &index).ok());
}

TEST_F(PlanTest, PrintingContainsStructure) {
  PlanNodePtr root = builder_.Join(
      JoinMethod::kRepartition, jg_.FindVar("y"),
      {builder_.Scan(0), builder_.Scan(1)});
  std::string s = PlanToString(*root, jg_);
  EXPECT_NE(s.find("JoinR"), std::string::npos);
  EXPECT_NE(s.find("Scan tp0"), std::string::npos);
  EXPECT_NE(s.find("?y"), std::string::npos);
  EXPECT_EQ(PlanToCompactString(*root), "(tp0 *R tp1)");
}

}  // namespace
}  // namespace parqo
