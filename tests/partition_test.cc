// Partitioner invariants: total coverage of the data side, the
// query-side maximal local queries of Examples 5 and 7, and the
// LocalQueryIndex containment logic (Theorem 5 / Lemma 4).

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "partition/hash_so.h"
#include "partition/local_query_index.h"
#include "partition/min_edge_cut.h"
#include "partition/path_bmc.h"
#include "partition/two_hop.h"
#include "tests/test_util.h"
#include "workload/lubm.h"

namespace parqo {
namespace {

using testing::Figure1Query;

std::vector<std::unique_ptr<Partitioner>> AllPartitioners() {
  std::vector<std::unique_ptr<Partitioner>> out;
  out.push_back(std::make_unique<HashSoPartitioner>());
  out.push_back(std::make_unique<TwoHopForwardPartitioner>());
  out.push_back(std::make_unique<PathBmcPartitioner>());
  out.push_back(std::make_unique<MinEdgeCutPartitioner>());
  return out;
}

TEST(PartitionDataTest, EveryTripleIsStoredSomewhere) {
  LubmConfig cfg;
  cfg.universities = 2;
  RdfGraph g = GenerateLubm(cfg);
  ASSERT_GT(g.NumTriples(), 1000u);

  for (const auto& p : AllPartitioners()) {
    PartitionAssignment pa = p->PartitionData(g, 5);
    ASSERT_EQ(pa.num_nodes, 5) << p->name();
    std::vector<bool> covered(g.NumTriples(), false);
    for (const auto& node : pa.node_triples) {
      for (TripleIdx i : node) {
        ASSERT_LT(i, g.NumTriples());
        covered[i] = true;
      }
    }
    for (std::size_t i = 0; i < covered.size(); ++i) {
      EXPECT_TRUE(covered[i]) << p->name() << " lost triple " << i;
    }
    EXPECT_GE(pa.ReplicationFactor(g.NumTriples()), 1.0) << p->name();
    // Sanity: replication stays bounded for these methods at n=5.
    EXPECT_LE(pa.ReplicationFactor(g.NumTriples()), 5.0) << p->name();
  }
}

TEST(PartitionDataTest, LoadStaysRoughlyBalanced) {
  // distribute()'s stated goal (Section II-C) includes load balance.
  // Allow generous skew (semantic methods trade balance for locality),
  // but no node may be empty or hold the majority of the data.
  LubmConfig cfg;
  cfg.universities = 3;
  RdfGraph g = GenerateLubm(cfg);
  for (const auto& p : AllPartitioners()) {
    PartitionAssignment pa = p->PartitionData(g, 5);
    std::size_t total = pa.TotalStored();
    for (const auto& node : pa.node_triples) {
      EXPECT_GT(node.size(), 0u) << p->name();
      EXPECT_LT(node.size(), total * 3 / 4) << p->name();
    }
  }
}

TEST(PartitionDataTest, HashSoCollocatesByEndpoint) {
  LubmConfig cfg;
  cfg.universities = 1;
  RdfGraph g = GenerateLubm(cfg);
  HashSoPartitioner hash;
  PartitionAssignment pa = hash.PartitionData(g, 4);
  // Every triple appears on hash(s) and hash(o).
  for (int node = 0; node < 4; ++node) {
    for (TripleIdx i : pa.node_triples[node]) {
      const Triple& t = g.triples()[i];
      EXPECT_TRUE(HashToNode(t.s, 4) == node || HashToNode(t.o, 4) == node);
    }
  }
}

TEST(MlqTest, HashSoExample7) {
  // Example 7: under hash partitioning, the MLQ at ?a of the Figure 1
  // query is {tp1, tp2, tp3, tp7}.
  JoinGraph jg(Figure1Query());
  QueryGraph qg(jg);
  HashSoPartitioner hash;
  int va = qg.VertexOfVar(jg.FindVar("a"));
  TpSet mlq = hash.MaximalLocalQuery(qg, va);
  TpSet expected;
  expected.Add(0);
  expected.Add(1);
  expected.Add(2);
  expected.Add(6);
  EXPECT_EQ(mlq, expected);
}

TEST(MlqTest, PathBmcExample5) {
  // Example 5: under path partitioning, the MLQ at ?b is
  // {tp1, tp3, tp4, tp5, tp7}.
  JoinGraph jg(Figure1Query());
  QueryGraph qg(jg);
  PathBmcPartitioner path;
  int vb = qg.VertexOfVar(jg.FindVar("b"));
  TpSet mlq = path.MaximalLocalQuery(qg, vb);
  TpSet expected;
  expected.Add(0);
  expected.Add(2);
  expected.Add(3);
  expected.Add(4);
  expected.Add(6);
  EXPECT_EQ(mlq, expected);
}

TEST(MlqTest, TwoHopIsBetweenHashAndPath) {
  JoinGraph jg(Figure1Query());
  QueryGraph qg(jg);
  TwoHopForwardPartitioner twof;
  PathBmcPartitioner path;
  int vb = qg.VertexOfVar(jg.FindVar("b"));
  TpSet two = twof.MaximalLocalQuery(qg, vb);
  TpSet all = path.MaximalLocalQuery(qg, vb);
  EXPECT_TRUE(two.IsSubsetOf(all));
  // 2 hops from ?b: tp1, tp5 (hop 1) + tp3, tp7 (hop 2), not tp4.
  EXPECT_EQ(two.Count(), 4);
  EXPECT_FALSE(two.Contains(3));
}

TEST(LocalQueryIndexTest, SubqueriesOfLocalAreLocal) {
  // Lemma 4 via Example 7: every subquery of {tp1, tp2, tp3, tp7} is
  // local under hash partitioning.
  JoinGraph jg(Figure1Query());
  QueryGraph qg(jg);
  HashSoPartitioner hash;
  LocalQueryIndex index(qg, hash);

  TpSet mlq_a;
  mlq_a.Add(0);
  mlq_a.Add(1);
  mlq_a.Add(2);
  mlq_a.Add(6);
  for (std::uint64_t sub = mlq_a.bits(); sub != 0;
       sub = (sub - 1) & mlq_a.bits()) {
    EXPECT_TRUE(index.IsLocal(TpSet(sub)));
  }
  // The whole query is not local under hash partitioning.
  EXPECT_FALSE(index.IsLocal(jg.AllTps()));
  // {tp3, tp4} shares ?e => local; {tp4, tp5} shares nothing => not.
  TpSet e34;
  e34.Add(2);
  e34.Add(3);
  EXPECT_TRUE(index.IsLocal(e34));
  TpSet e45;
  e45.Add(3);
  e45.Add(4);
  EXPECT_FALSE(index.IsLocal(e45));
}

TEST(LocalQueryIndexTest, SingletonsAlwaysLocal) {
  JoinGraph jg(Figure1Query());
  QueryGraph qg(jg);
  for (const auto& p : AllPartitioners()) {
    LocalQueryIndex index(qg, *p);
    for (int tp = 0; tp < jg.num_tps(); ++tp) {
      EXPECT_TRUE(index.IsLocal(TpSet::Singleton(tp))) << p->name();
    }
  }
  LocalQueryIndex none = LocalQueryIndex::None(jg.num_tps());
  EXPECT_TRUE(none.IsLocal(TpSet::Singleton(0)));
  TpSet pair;
  pair.Add(0);
  pair.Add(1);
  EXPECT_FALSE(none.IsLocal(pair));
}

TEST(LocalQueryIndexTest, PathBmcMakesWholeQueriesLocal) {
  // All benchmark queries are local under Path-BMC in the paper
  // (Section V-B); check the pattern on Figure 1: the whole query is
  // reachable from ?b and ?c jointly but not from one vertex, so it is
  // NOT local; however the L2-style chain is.
  JoinGraph chain_jg({testing::Tp("?x", "worksFor", "?y"),
                      testing::Tp("?y", "subOrg", "u")});
  QueryGraph chain_qg(chain_jg);
  PathBmcPartitioner path;
  LocalQueryIndex index(chain_qg, path);
  EXPECT_TRUE(index.IsLocal(chain_jg.AllTps()));
}

TEST(LocalQueryIndexTest, MinimizeDropsDominatedMlqs) {
  std::vector<TpSet> mlqs;
  TpSet big;
  big.Add(0);
  big.Add(1);
  big.Add(2);
  TpSet small;
  small.Add(1);
  mlqs.push_back(small);
  mlqs.push_back(big);
  mlqs.push_back(big);
  LocalQueryIndex index(std::move(mlqs));
  EXPECT_EQ(index.mlqs().size(), 1u);
  EXPECT_TRUE(index.IsLocal(small));
  EXPECT_TRUE(index.IsLocal(big));
}

}  // namespace
}  // namespace parqo
