// Tests for the observability backbone: the metrics registry (counters,
// gauges, histograms, snapshots) and the trace recorder/span machinery.
// These run in their own binary so toggling the global enable flags
// cannot leak into other suites.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"

namespace parqo {
namespace {

// Each test flips the global enable flag; restore the default afterwards
// so test order never matters.
class MetricsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetMetricsEnabled(false);
    MetricsRegistry::Global().ResetAll();
  }
};

TEST_F(MetricsTest, FindOrCreateReturnsSameInstrument) {
  MetricsRegistry registry;
  MetricCounter& a = registry.counter("x.count");
  MetricCounter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &registry.counter("y.count"));
  MetricGauge& g = registry.gauge("x.gauge");
  EXPECT_EQ(&g, &registry.gauge("x.gauge"));
  MetricHistogram& h = registry.histogram("x.hist");
  EXPECT_EQ(&h, &registry.histogram("x.hist"));
}

TEST_F(MetricsTest, DisabledUpdatesAreDropped) {
  MetricsRegistry registry;
  SetMetricsEnabled(false);
  MetricCounter& c = registry.counter("c");
  MetricGauge& g = registry.gauge("g");
  MetricHistogram& h = registry.histogram("h");
  c.Add(5);
  g.Set(3.5);
  h.Observe(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);

  SetMetricsEnabled(true);
  c.Add(5);
  c.Add();  // default increment of 1
  g.Set(3.5);
  h.Observe(1.0);
  EXPECT_EQ(c.value(), 6u);
  EXPECT_EQ(g.value(), 3.5);
  EXPECT_EQ(h.count(), 1u);
}

TEST_F(MetricsTest, HistogramStats) {
  SetMetricsEnabled(true);
  MetricsRegistry registry;
  MetricHistogram& h = registry.histogram("h");
  // Empty histogram reports zeros, not the infinity sentinels.
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);

  h.Observe(0.5);
  h.Observe(2.0);
  h.Observe(8.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);

  // Each sample lands in exactly one bucket, and the bucket's upper
  // bound is the first power of two at or above the sample.
  std::uint64_t total = 0;
  for (int i = 0; i < MetricHistogram::kNumBuckets; ++i) {
    if (h.bucket(i) > 0) {
      EXPECT_GE(MetricHistogram::BucketUpperBound(i), 0.5);
    }
    total += h.bucket(i);
  }
  EXPECT_EQ(total, 3u);

  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST_F(MetricsTest, HistogramExtremeSamplesStayInRange) {
  SetMetricsEnabled(true);
  MetricsRegistry registry;
  MetricHistogram& h = registry.histogram("h");
  // Zero and sub-2^-32 samples go to bucket 0; huge samples clamp to the
  // last bucket instead of indexing out of bounds.
  h.Observe(0.0);
  h.Observe(1e-300);
  h.Observe(1e300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_GE(h.bucket(0), 2u);
  EXPECT_GE(h.bucket(MetricHistogram::kNumBuckets - 1), 1u);
}

TEST_F(MetricsTest, SnapshotAndCounterValue) {
  SetMetricsEnabled(true);
  MetricsRegistry registry;
  registry.counter("opt.runs").Add(3);
  registry.gauge("part.rep").Set(1.5);
  registry.histogram("opt.seconds").Observe(0.25);

  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "opt.runs");
  EXPECT_EQ(snap.counters[0].value, 3u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 1.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].sum, 0.25);
  ASSERT_EQ(snap.histograms[0].buckets.size(), 1u);
  EXPECT_EQ(snap.histograms[0].buckets[0].second, 1u);

  EXPECT_EQ(snap.CounterValue("opt.runs"), 3u);
  EXPECT_EQ(snap.CounterValue("no.such.counter"), 0u);
}

TEST_F(MetricsTest, SnapshotJsonIsWellFormed) {
  SetMetricsEnabled(true);
  MetricsRegistry registry;
  registry.counter("a").Add(1);
  registry.gauge("b").Set(2.0);
  registry.histogram("c").Observe(4.0);
  std::string json = registry.Snapshot().ToJson();
  // Structural spot checks (full validation happens in CI's bench-smoke
  // step via python's json module).
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"a\""), std::string::npos);
  int braces = 0;
  for (char ch : json) {
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    ASSERT_GE(braces, 0);
  }
  EXPECT_EQ(braces, 0);
}

TEST_F(MetricsTest, ResetAllZeroesButKeepsNames) {
  SetMetricsEnabled(true);
  MetricsRegistry registry;
  MetricCounter& c = registry.counter("c");
  c.Add(9);
  registry.gauge("g").Set(1.0);
  registry.histogram("h").Observe(1.0);
  registry.ResetAll();
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 0u);
  EXPECT_EQ(snap.gauges[0].value, 0.0);
  EXPECT_EQ(snap.histograms[0].count, 0u);
  // The pre-reset reference is still the live instrument.
  c.Add(1);
  EXPECT_EQ(registry.Snapshot().CounterValue("c"), 1u);
}

TEST_F(MetricsTest, ConcurrentCounterUpdatesDontLoseIncrements) {
  SetMetricsEnabled(true);
  MetricsRegistry registry;
  MetricCounter& c = registry.counter("c");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    TraceRecorder::Global().SetEnabled(false);
    TraceRecorder::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.SetEnabled(false);
  rec.Clear();
  { TraceSpan span("invisible", "test"); }
  EXPECT_EQ(rec.NumEvents(), 0u);
}

TEST_F(TraceTest, SpanRecordsOnDestruction) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(true);
  {
    TraceSpan span("phase/test", "test");
    EXPECT_EQ(rec.NumEvents(), 0u);  // only complete spans are recorded
  }
  ASSERT_EQ(rec.NumEvents(), 1u);
  { TraceSpan span("phase/other"); }
  EXPECT_EQ(rec.NumEvents(), 2u);
  rec.Clear();
  EXPECT_EQ(rec.NumEvents(), 0u);
}

TEST_F(TraceTest, SpanStartedWhileDisabledStaysInert) {
  // Enable state is latched at construction: a span created before
  // SetEnabled(true) must not record a bogus zero timestamp later.
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(false);
  {
    TraceSpan span("latched", "test");
    rec.SetEnabled(true);
  }
  EXPECT_EQ(rec.NumEvents(), 0u);
}

TEST_F(TraceTest, ChromeJsonEnvelope) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(true);
  rec.Record("op \"quoted\"\\", "test", 10, 5);
  std::string json = rec.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // Name must be escaped, not emitted raw.
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 5"), std::string::npos);
}

}  // namespace
}  // namespace parqo
