// The correctness-tooling layer: PARQO_CHECK / PARQO_DCHECK semantics,
// PlanValidator rejecting every class of hand-built invalid plan, the
// Definition 3 division contract, and the full-workload gate — every
// algorithm over L1-L10 / U1-U5 with OptimizeOptions::validate ON,
// multi-threaded, must produce plans and memos that survive the
// validator's independent recomputation.

#include "optimizer/plan_validator.h"

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "optimizer/optimizer.h"
#include "optimizer/prepared_query.h"
#include "partition/hash_so.h"
#include "partition/local_query_index.h"
#include "plan/plan.h"
#include "query/join_graph.h"
#include "sparql/parser.h"
#include "tests/optimizer_test_util.h"
#include "tests/test_util.h"
#include "workload/benchmark_queries.h"
#include "workload/lubm.h"
#include "workload/random_query.h"
#include "workload/uniprot.h"

namespace parqo {
namespace {

using testing::QueryFixture;
using testing::Tp;

//===--------------------------------------------------------------------===//
// check.h semantics
//===--------------------------------------------------------------------===//

TEST(CheckDeathTest, CheckAbortsWithFileLineAndExpression) {
  EXPECT_DEATH(PARQO_CHECK(1 + 1 == 3),
               "PARQO_CHECK failed at .*validator_test\\.cc:[0-9]+: "
               "1 \\+ 1 == 3");
}

TEST(CheckDeathTest, CheckOkAbortsWithStatusMessage) {
  auto broken = [] { return Status::Internal("memo polluted"); };
  EXPECT_DEATH(PARQO_CHECK_OK(broken()), "memo polluted");
}

TEST(CheckTest, CheckPassesSilently) {
  PARQO_CHECK(2 + 2 == 4);
  PARQO_CHECK_OK(Status::Ok());
}

TEST(CheckTest, DcheckEvaluatesOperandOnlyWhenEnabled) {
  int evaluations = 0;
  auto bump = [&] {
    ++evaluations;
    return true;
  };
  PARQO_DCHECK(bump());
#if PARQO_DCHECK_ENABLED
  EXPECT_EQ(evaluations, 1) << "enabled PARQO_DCHECK must evaluate";
#else
  EXPECT_EQ(evaluations, 0)
      << "PARQO_DCHECK must be compiled out of NDEBUG builds";
#endif
}

#if PARQO_DCHECK_ENABLED
TEST(CheckDeathTest, DcheckAbortsWhenEnabled) {
  EXPECT_DEATH(PARQO_DCHECK(1 == 2), "PARQO_CHECK failed");
}
#endif

//===--------------------------------------------------------------------===//
// PlanValidator vs hand-built invalid plans
//===--------------------------------------------------------------------===//

// A 4-pattern chain: tp0 -?b- tp1 -?c- tp2 -?d- tp3. Non-adjacent
// patterns share nothing, so e.g. {0, 2} is disconnected.
std::vector<TriplePattern> ChainQuery() {
  return {Tp("?a", "p1", "?b"), Tp("?b", "p2", "?c"), Tp("?c", "p3", "?d"),
          Tp("?d", "p4", "?e")};
}

std::shared_ptr<PlanNode> MakeScan(int tp, double card = 10) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanNode::Kind::kScan;
  n->tp = tp;
  n->tps = TpSet::Singleton(tp);
  n->cardinality = card;
  return n;
}

std::shared_ptr<PlanNode> MakeJoin(JoinMethod method, VarId join_var,
                                   std::vector<PlanNodePtr> children,
                                   double card = 5) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanNode::Kind::kJoin;
  n->method = method;
  n->join_var = join_var;
  for (const PlanNodePtr& c : children) {
    n->tps |= c->tps;
    n->total_cost = std::max(n->total_cost, c->total_cost);
  }
  n->cardinality = card;
  n->op_cost = 1;
  n->total_cost += n->op_cost;
  n->children = std::move(children);
  return n;
}

class PlanValidatorTest : public ::testing::Test {
 protected:
  PlanValidatorTest()
      : jg_(ChainQuery()),
        none_(LocalQueryIndex::None(jg_.num_tps())),
        validator_(jg_, &none_) {}

  VarId Var(const std::string& name) {
    VarId v = jg_.FindVar(name);
    PARQO_CHECK(v != kInvalidVarId);
    return v;
  }

  JoinGraph jg_;
  LocalQueryIndex none_;
  PlanValidator validator_;  // structural only: no estimator / cost model
};

TEST_F(PlanValidatorTest, AcceptsWellFormedPlan) {
  auto left = MakeJoin(JoinMethod::kRepartition, Var("b"),
                       {MakeScan(0), MakeScan(1)});
  auto right = MakeJoin(JoinMethod::kRepartition, Var("d"),
                        {MakeScan(2), MakeScan(3)});
  auto root = MakeJoin(JoinMethod::kBroadcast, Var("c"), {left, right});
  Status st = validator_.ValidatePlan(*root);
  EXPECT_TRUE(st.ok()) << st.message();
}

TEST_F(PlanValidatorTest, RejectsDisconnectedBlock) {
  // {tp0, tp2} share no join variable: a Cartesian product.
  auto bad = MakeJoin(JoinMethod::kRepartition, Var("c"),
                      {MakeScan(0), MakeScan(2)});
  Status st = validator_.ValidateSubplan(*bad);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("disconnected"), std::string::npos)
      << st.message();
}

TEST_F(PlanValidatorTest, RejectsOverlappingDivision) {
  auto left = MakeJoin(JoinMethod::kRepartition, Var("b"),
                       {MakeScan(0), MakeScan(1)});
  auto right = MakeJoin(JoinMethod::kRepartition, Var("c"),
                        {MakeScan(1), MakeScan(2)});  // tp1 again
  auto bad = MakeJoin(JoinMethod::kRepartition, Var("c"), {left, right});
  Status st = validator_.ValidateSubplan(*bad);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("overlap"), std::string::npos) << st.message();
}

TEST_F(PlanValidatorTest, RejectsChildrenNotCoveringNode) {
  auto join = MakeJoin(JoinMethod::kRepartition, Var("b"),
                       {MakeScan(0), MakeScan(1)});
  join->tps.Add(2);  // claims tp2 without a child covering it
  Status st = validator_.ValidateSubplan(*join);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("cover"), std::string::npos) << st.message();
}

TEST_F(PlanValidatorTest, RejectsDistributedJoinWithoutVariable) {
  auto join = MakeJoin(JoinMethod::kRepartition, kInvalidVarId,
                       {MakeScan(0), MakeScan(1)});
  Status st = validator_.ValidateSubplan(*join);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("without a join variable"), std::string::npos)
      << st.message();
}

TEST_F(PlanValidatorTest, RejectsChildMissingTheJoinVariable) {
  // {tp1, tp2} is connected via ?c, but tp1 does not contain ?d, so a
  // distributed join of the two on ?d violates Definition 3 cond. 3.
  auto join = MakeJoin(JoinMethod::kRepartition, Var("d"),
                       {MakeScan(1), MakeScan(2)});
  Status st = validator_.ValidateSubplan(*join);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("Definition 3"), std::string::npos)
      << st.message();
}

TEST_F(PlanValidatorTest, RejectsLocalJoinOfNonLocalSubquery) {
  // Under LocalQueryIndex::None nothing beyond singletons is local.
  auto join = MakeJoin(JoinMethod::kLocal, kInvalidVarId,
                       {MakeScan(0), MakeScan(1)});
  Status st = validator_.ValidateSubplan(*join);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("non-local"), std::string::npos)
      << st.message();
}

TEST_F(PlanValidatorTest, RejectsLocalJoinOverRepartitionedInput) {
  // Pretend the whole query is one maximal local query so the locality
  // check passes and the partition-property rule is what must fire: a
  // repartition result is hash-distributed on the join variable, not
  // co-located with the stored data, so no local join may consume it.
  LocalQueryIndex permissive(std::vector<TpSet>{TpSet::FullSet(4)});
  PlanValidator validator(jg_, &permissive);
  auto repart = MakeJoin(JoinMethod::kRepartition, Var("b"),
                         {MakeScan(0), MakeScan(1)});
  auto bad = MakeJoin(JoinMethod::kLocal, kInvalidVarId,
                      {repart, MakeScan(2)});
  Status st = validator.ValidateSubplan(*bad);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("illegal partition-property claim"),
            std::string::npos)
      << st.message();
}

TEST_F(PlanValidatorTest, BroadcastPropagatesLargestInputsProperty) {
  LocalQueryIndex permissive(std::vector<TpSet>{TpSet::FullSet(4)});
  PlanValidator validator(jg_, &permissive);
  // The repartition result is the *largest* broadcast input, so the
  // broadcast result inherits its hashed property (II-D) and still must
  // not feed a local join.
  auto repart = MakeJoin(JoinMethod::kRepartition, Var("b"),
                         {MakeScan(0), MakeScan(1)}, /*card=*/100);
  auto bcast = MakeJoin(JoinMethod::kBroadcast, Var("c"),
                        {repart, MakeScan(2)}, /*card=*/50);
  auto bad = MakeJoin(JoinMethod::kLocal, kInvalidVarId,
                      {bcast, MakeScan(3)});
  Status st = validator.ValidateSubplan(*bad);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("illegal partition-property claim"),
            std::string::npos)
      << st.message();

  // With the scan as the largest input the broadcast result stays base
  // partitioned and the same local join is legal.
  auto repart_small = MakeJoin(JoinMethod::kRepartition, Var("b"),
                               {MakeScan(0), MakeScan(1)}, /*card=*/2);
  auto bcast_base = MakeJoin(JoinMethod::kBroadcast, Var("c"),
                             {repart_small, MakeScan(2)}, /*card=*/50);
  auto good = MakeJoin(JoinMethod::kLocal, kInvalidVarId,
                       {bcast_base, MakeScan(3)});
  Status ok = validator.ValidateSubplan(*good);
  EXPECT_TRUE(ok.ok()) << ok.message();
}

TEST_F(PlanValidatorTest, RejectsNonFiniteAndNegativeCosts) {
  auto join = MakeJoin(JoinMethod::kRepartition, Var("b"),
                       {MakeScan(0), MakeScan(1)});
  auto nan_cost = std::make_shared<PlanNode>(*join);
  nan_cost->op_cost = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(validator_.ValidateSubplan(*nan_cost).ok());

  auto negative = std::make_shared<PlanNode>(*join);
  negative->total_cost = -1;
  EXPECT_FALSE(validator_.ValidateSubplan(*negative).ok());

  auto below_op = std::make_shared<PlanNode>(*join);
  below_op->op_cost = 1;
  below_op->total_cost = 0;  // < op_cost: Eq. 3 violated
  EXPECT_FALSE(validator_.ValidateSubplan(*below_op).ok());
}

TEST_F(PlanValidatorTest, RejectsScanAnomalies) {
  auto bad_index = MakeScan(7);  // the query has 4 patterns
  EXPECT_FALSE(validator_.ValidateSubplan(*bad_index).ok());

  auto costed_scan = MakeScan(0);
  costed_scan->total_cost = 3;
  EXPECT_FALSE(validator_.ValidateSubplan(*costed_scan).ok());

  auto wrong_tps = MakeScan(0);
  wrong_tps->tps = TpSet(0b0011);
  EXPECT_FALSE(validator_.ValidateSubplan(*wrong_tps).ok());
}

TEST_F(PlanValidatorTest, MemoEntryMustMatchKeyAndBeConnected) {
  auto join = MakeJoin(JoinMethod::kRepartition, Var("b"),
                       {MakeScan(0), MakeScan(1)});
  Status ok = validator_.ValidateMemoEntry(TpSet(0b0011), *join);
  EXPECT_TRUE(ok.ok()) << ok.message();

  Status wrong_key = validator_.ValidateMemoEntry(TpSet(0b0111), *join);
  ASSERT_FALSE(wrong_key.ok());
  EXPECT_NE(wrong_key.message().find("keyed by"), std::string::npos)
      << wrong_key.message();

  // A disconnected key means the memo got polluted with a subquery that
  // Algorithm 2/3 must never derive (Lemmas 1-2).
  auto cartesian = MakeJoin(JoinMethod::kRepartition, Var("c"),
                            {MakeScan(0), MakeScan(2)});
  Status polluted = validator_.ValidateMemoEntry(TpSet(0b0101), *cartesian);
  ASSERT_FALSE(polluted.ok());
  EXPECT_NE(polluted.message().find("polluted"), std::string::npos)
      << polluted.message();
}

TEST_F(PlanValidatorTest, DivisionContract) {
  TpSet all = jg_.AllTps();
  VarId c = Var("c");
  // {0,1} | {2,3} on ?c is a valid binary division of the chain.
  std::vector<TpSet> good{TpSet(0b0011), TpSet(0b1100)};
  Status ok = ValidateDivision(jg_, all, good, c);
  EXPECT_TRUE(ok.ok()) << ok.message();

  std::vector<TpSet> one_block{TpSet(0b1111)};
  EXPECT_FALSE(ValidateDivision(jg_, all, one_block, c).ok());

  std::vector<TpSet> overlapping{TpSet(0b0111), TpSet(0b1100)};
  EXPECT_FALSE(ValidateDivision(jg_, all, overlapping, c).ok());

  std::vector<TpSet> not_covering{TpSet(0b0011), TpSet(0b0100)};
  EXPECT_FALSE(ValidateDivision(jg_, all, not_covering, c).ok());

  // {1,3} is disconnected even though the union covers q.
  std::vector<TpSet> disconnected{TpSet(0b0101), TpSet(0b1010)};
  EXPECT_FALSE(ValidateDivision(jg_, all, disconnected, c).ok());

  // ?e touches only tp3: block {0,1} has no pattern incident to it.
  EXPECT_FALSE(ValidateDivision(jg_, all, good, Var("e")).ok());
}

//===--------------------------------------------------------------------===//
// Cost recomputation against the real estimator / cost model
//===--------------------------------------------------------------------===//

TEST(PlanValidatorCostTest, DetectsTamperedCostsAndCardinalities) {
  Rng rng(20170547);
  GeneratedQuery q = GenerateRandomQuery(QueryShape::kTree, 7, rng);
  QueryFixture fx(q);
  OptimizerInputs inputs = fx.inputs();
  OptimizeOptions options;
  options.validate = true;
  OptimizeResult result = Optimize(Algorithm::kTdCmd, inputs, options);
  ASSERT_NE(result.plan, nullptr);

  CostModel cost_model(options.cost_params);
  PlanValidator validator(fx.jg(), inputs.local_index, inputs.estimator,
                          &cost_model);
  Status ok = validator.ValidatePlan(*result.plan);
  EXPECT_TRUE(ok.ok()) << ok.message();

  // Tampering with any recorded number must be caught by the
  // independent Eq. 3/4 recomputation.
  auto bumped = std::make_shared<PlanNode>(*result.plan);
  bumped->total_cost += 1e-3;
  EXPECT_FALSE(validator.ValidatePlan(*bumped).ok());

  auto wrong_card = std::make_shared<PlanNode>(*result.plan);
  wrong_card->cardinality *= 2;
  EXPECT_FALSE(validator.ValidatePlan(*wrong_card).ok());
}

//===--------------------------------------------------------------------===//
// Full workloads under validation, multi-threaded
//===--------------------------------------------------------------------===//

TEST(ValidatorWorkloadTest, AllAlgorithmsAllBenchmarkQueriesValidate) {
  // L1-L10 / U1-U5 on exact statistics from generated data, every
  // algorithm, 4 intra-query workers, validation ON: Optimize() aborts
  // the process if any plan, memo entry, or division violates an
  // invariant, so merely completing this loop is the assertion.
  LubmConfig lubm_cfg;
  lubm_cfg.universities = 2;
  RdfGraph lubm = GenerateLubm(lubm_cfg);
  UniprotConfig uni_cfg;
  uni_cfg.proteins = 400;
  RdfGraph uniprot = GenerateUniprot(uni_cfg);
  HashSoPartitioner hash;

  const std::vector<Algorithm> kAll{
      Algorithm::kMsc,    Algorithm::kDpBushy,  Algorithm::kBinaryDp,
      Algorithm::kTdCmd,  Algorithm::kTdCmdp,   Algorithm::kHgrTdCmd,
      Algorithm::kTdAuto,
  };

  OptimizeOptions options;
  options.validate = true;
  options.num_threads = 4;  // the sharded memo must also validate
  options.timeout_seconds = 120;

  for (const BenchmarkQuery& bq : AllBenchmarkQueries()) {
    auto parsed = ParseSparql(bq.sparql);
    ASSERT_TRUE(parsed.ok()) << bq.name;
    const RdfGraph& data = bq.lubm ? lubm : uniprot;
    PreparedQuery prepared(parsed->patterns, hash, StatsFromData(data));
    for (Algorithm algorithm : kAll) {
      OptimizeResult result = Optimize(algorithm, prepared.inputs(), options);
      if (result.timed_out) continue;
      ASSERT_NE(result.plan, nullptr)
          << bq.name << " " << ToString(algorithm);
      EXPECT_EQ(result.plan->tps, prepared.join_graph().AllTps())
          << bq.name << " " << ToString(algorithm);
    }
  }
}

}  // namespace
}  // namespace parqo
