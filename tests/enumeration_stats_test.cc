// Closed-form search-space arithmetic (Section III-D).

#include "optimizer/enumeration_stats.h"

#include <gtest/gtest.h>

namespace parqo {
namespace {

TEST(EnumerationStatsTest, BellNumbers) {
  EXPECT_EQ(BellNumber(0), 1u);
  EXPECT_EQ(BellNumber(1), 1u);
  EXPECT_EQ(BellNumber(2), 2u);
  EXPECT_EQ(BellNumber(3), 5u);
  EXPECT_EQ(BellNumber(4), 15u);
  EXPECT_EQ(BellNumber(5), 52u);
  EXPECT_EQ(BellNumber(8), 4140u);
  EXPECT_EQ(BellNumber(10), 115975u);
}

TEST(EnumerationStatsTest, Binomials) {
  EXPECT_EQ(Binomial(8, 0), 1u);
  EXPECT_EQ(Binomial(8, 3), 56u);
  EXPECT_EQ(Binomial(8, 8), 1u);
  EXPECT_EQ(Binomial(8, 9), 0u);
  EXPECT_EQ(Binomial(30, 15), 155117520u);
}

TEST(EnumerationStatsTest, ChainClosedFormMatchesTableVII) {
  // Table VII TD-CMD row, chain column: 84 / 680 / 4,495.
  EXPECT_EQ(ChainSearchSpace(8), 84u);
  EXPECT_EQ(ChainSearchSpace(16), 680u);
  EXPECT_EQ(ChainSearchSpace(30), 4495u);
}

TEST(EnumerationStatsTest, CycleClosedFormMatchesTableVII) {
  // Table VII TD-CMD row, cycle column: 224 / 1,920 / 13,050.
  EXPECT_EQ(CycleSearchSpace(8), 224u);
  EXPECT_EQ(CycleSearchSpace(16), 1920u);
  EXPECT_EQ(CycleSearchSpace(30), 13050u);
}

TEST(EnumerationStatsTest, StarWorstCaseGrowsLikeBell) {
  // Small cases by hand: n=3 -> 3*(B2-1) + 1*(B3-1) = 3 + 4 = 7.
  EXPECT_EQ(StarSearchSpace(3), 7u);
  EXPECT_EQ(StarSearchSpace(2), 1u);
  EXPECT_GT(StarSearchSpace(12), StarSearchSpace(11) * 2);
}

}  // namespace
}  // namespace parqo
