// Tests for the extension features beyond the paper's core: the BGP
// matcher, the hot-query (dynamic partitioning) model from the appendix,
// plan export, and the Binary-DP (TriAD-style) baseline.

#include <gtest/gtest.h>

#include <functional>

#include "common/rng.h"
#include "exec/cluster.h"
#include "exec/executor.h"
#include "optimizer/prepared_query.h"
#include "partition/hash_so.h"
#include "partition/hot_query.h"
#include "plan/export.h"
#include "plan/validate.h"
#include "query/match.h"
#include "rdf/ntriples.h"
#include "sparql/parser.h"
#include "tests/optimizer_test_util.h"
#include "tests/test_util.h"

namespace parqo {
namespace {

using testing::QueryFixture;
using testing::Tp;

TEST(MatchBgpTest, FindsAllMatches) {
  auto g = ParseNTriplesString(
      "<a> <p> <b> .\n"
      "<b> <q> <c> .\n"
      "<a> <p> <d> .\n"
      "<d> <q> <c> .\n"
      "<d> <q> <e> .\n");
  ASSERT_TRUE(g.ok());
  JoinGraph jg({Tp("?x", "p", "?y"), Tp("?y", "q", "?z")});
  auto matches = MatchBgp(jg, *g, 0);
  EXPECT_EQ(matches.size(), 3u);  // (a,b,c), (a,d,c), (a,d,e)
  for (const BgpMatch& m : matches) {
    EXPECT_EQ(m.triples.size(), 2u);
    EXPECT_EQ(m.bindings.size(), 3u);
    // The matched triples really connect through the binding of ?y.
    EXPECT_EQ(m.triples[0].o, m.bindings[jg.FindVar("y")]);
    EXPECT_EQ(m.triples[1].s, m.bindings[jg.FindVar("y")]);
  }
}

TEST(MatchBgpTest, LimitStopsEarly) {
  auto g = ParseNTriplesString(
      "<a> <p> <b> .\n<a> <p> <c> .\n<a> <p> <d> .\n");
  ASSERT_TRUE(g.ok());
  JoinGraph jg({Tp("?x", "p", "?y")});
  EXPECT_EQ(MatchBgp(jg, *g, 2).size(), 2u);
  EXPECT_EQ(MatchBgp(jg, *g, 0).size(), 3u);
}

TEST(MatchBgpTest, UnmatchableConstantIsEmpty) {
  auto g = ParseNTriplesString("<a> <p> <b> .\n");
  ASSERT_TRUE(g.ok());
  JoinGraph jg({Tp("?x", "nosuch", "?y")});
  EXPECT_TRUE(MatchBgp(jg, *g, 0).empty());
}

TEST(HotQueryTest, IntersectionDetection) {
  // Query: Figure 1. Hot query: a (?s p3 ?o)(?o p4 ?o2) chain, which
  // embeds tp3 and tp4.
  JoinGraph jg(testing::Figure1Query());
  QueryGraph qg(jg);
  std::vector<TriplePattern> hot{Tp("?s", "p3", "?o"),
                                 Tp("?o", "p4", "?o2")};
  int ve = qg.VertexOfVar(jg.FindVar("e"));
  ASSERT_GE(ve, 0);
  TpSet inter = HotQueryIntersection(qg, hot, ve);
  TpSet expected;
  expected.Add(2);  // tp3
  expected.Add(3);  // tp4
  EXPECT_EQ(inter, expected);

  // A vertex not touching the intersection contributes nothing.
  int vf = qg.VertexOfVar(jg.FindVar("f"));
  EXPECT_TRUE(HotQueryIntersection(qg, hot, vf).Empty());
}

TEST(HotQueryTest, MlqGrowsBeyondBasePartitioner) {
  JoinGraph jg(testing::Figure1Query());
  QueryGraph qg(jg);
  HashSoPartitioner hash;
  // Hot query covering the whole Figure 1 shape via wildcard patterns
  // with the same predicates.
  std::vector<TriplePattern> hot{
      Tp("?a", "p1", "?b"), Tp("?c", "p2", "?d"), Tp("?e", "p3", "?f"),
      Tp("?g", "p4", "?h"), Tp("?i", "p5", "?j"), Tp("?k", "p6", "?l"),
      Tp("?m", "p7", "?n")};
  HotQueryPartitioner dynamic(hash, {hot});
  EXPECT_EQ(dynamic.name(), "hash-so+hot");

  int va = qg.VertexOfVar(jg.FindVar("a"));
  TpSet base_mlq = hash.MaximalLocalQuery(qg, va);
  TpSet hot_mlq = dynamic.MaximalLocalQuery(qg, va);
  EXPECT_GT(hot_mlq.Count(), base_mlq.Count());
  EXPECT_EQ(hot_mlq, jg.AllTps());  // the whole query embeds
}

TEST(HotQueryTest, HotQueryExecutesLocally) {
  // When the workload query IS the hot query, all its matches are
  // co-located, the optimizer sees it as local, and the local plan
  // produces exactly the reference results.
  auto g = ParseNTriplesString(
      "<a> <works> <l1> .\n<b> <works> <l1> .\n<c> <works> <l2> .\n"
      "<l1> <part> <d1> .\n<l2> <part> <d2> .\n"
      "<a> <age> <x1> .\n<b> <age> <x2> .\n<c> <age> <x3> .\n");
  ASSERT_TRUE(g.ok());
  std::vector<TriplePattern> patterns{Tp("?p", "works", "?l"),
                                      Tp("?l", "part", "?d"),
                                      Tp("?p", "age", "?x")};
  HashSoPartitioner hash;
  HotQueryPartitioner dynamic(hash, {patterns});

  PreparedQuery prepared(patterns, dynamic, StatsFromData(*g));
  // The whole query must be local under the hot-query model.
  EXPECT_TRUE(
      prepared.local_index().IsLocal(prepared.join_graph().AllTps()));

  OptimizeResult r =
      Optimize(Algorithm::kTdCmdp, prepared.inputs(), OptimizeOptions{});
  ASSERT_NE(r.plan, nullptr);
  EXPECT_EQ(r.plan->method, JoinMethod::kLocal);

  Cluster cluster(*g, dynamic.PartitionData(*g, 4));
  Executor executor(cluster, prepared.join_graph(), CostParams{});
  ExecMetrics metrics;
  auto rows = executor.Execute(*r.plan, &metrics);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(metrics.rows_transferred, 0u);
  EXPECT_EQ(rows->NumRows(),
            testing::ReferenceEvaluate(prepared.join_graph(), *g).size());
}

TEST(HotQueryTest, DataSideStillCoversEverything) {
  auto g = ParseNTriplesString(
      "<a> <p> <b> .\n<b> <q> <c> .\n<x> <r> <y> .\n");
  ASSERT_TRUE(g.ok());
  HashSoPartitioner hash;
  HotQueryPartitioner dynamic(hash,
                              {{Tp("?s", "p", "?o"), Tp("?o", "q", "?z")}});
  PartitionAssignment pa = dynamic.PartitionData(*g, 3);
  std::vector<bool> covered(g->NumTriples(), false);
  for (const auto& node : pa.node_triples) {
    for (TripleIdx i : node) covered[i] = true;
  }
  for (bool c : covered) EXPECT_TRUE(c);
}

TEST(PlanExportTest, DotAndJsonContainStructure) {
  Rng rng(88);
  GeneratedQuery q = GenerateRandomQuery(QueryShape::kChain, 4, rng);
  QueryFixture fx(q, /*use_hash_locality=*/false);
  OptimizeResult r =
      Optimize(Algorithm::kTdCmd, fx.inputs(), OptimizeOptions{});
  ASSERT_NE(r.plan, nullptr);

  std::string dot = PlanToDot(*r.plan, fx.jg());
  EXPECT_NE(dot.find("digraph plan"), std::string::npos);
  EXPECT_NE(dot.find("scan tp0"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);

  std::string json = PlanToJson(*r.plan, fx.jg());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"kind\":\"join\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"scan\""), std::string::npos);
  EXPECT_NE(json.find("\"totalCost\""), std::string::npos);
  // Braces balance (cheap well-formedness check).
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(BinaryDpTest, PlansAreBinaryOnly) {
  Rng rng(89);
  GeneratedQuery q = GenerateRandomQuery(QueryShape::kTree, 9, rng);
  QueryFixture fx(q, /*use_hash_locality=*/false);
  OptimizeResult r =
      Optimize(Algorithm::kBinaryDp, fx.inputs(), OptimizeOptions{});
  ASSERT_NE(r.plan, nullptr);
  EXPECT_EQ(r.algorithm_used, Algorithm::kBinaryDp);
  EXPECT_TRUE(ValidatePlan(*r.plan, fx.jg(), nullptr).ok());
  std::function<void(const PlanNode&)> check = [&](const PlanNode& n) {
    if (n.kind == PlanNode::Kind::kJoin) {
      EXPECT_EQ(n.children.size(), 2u);
    }
    for (const PlanNodePtr& c : n.children) check(*c);
  };
  check(*r.plan);
}

TEST(BinaryDpTest, NeverBeatsKaryTdCmd) {
  for (QueryShape shape :
       {QueryShape::kStar, QueryShape::kTree, QueryShape::kDense}) {
    Rng rng(90);
    GeneratedQuery q = GenerateRandomQuery(shape, 8, rng);
    QueryFixture fx1(q), fx2(q);
    OptimizeResult kary =
        Optimize(Algorithm::kTdCmd, fx1.inputs(), OptimizeOptions{});
    OptimizeResult binary =
        Optimize(Algorithm::kBinaryDp, fx2.inputs(), OptimizeOptions{});
    ASSERT_NE(kary.plan, nullptr);
    ASSERT_NE(binary.plan, nullptr);
    EXPECT_GE(binary.plan->total_cost, kary.plan->total_cost - 1e-9)
        << ToString(shape);
    // The binary space is strictly smaller on star-like shapes.
    EXPECT_LE(binary.enumerated, kary.enumerated);
  }
}

TEST(BinaryDpTest, ChainSpaceEqualsTdCmd) {
  // Chains have no k>2 divisions, so the spaces coincide.
  Rng rng(91);
  GeneratedQuery q = GenerateRandomQuery(QueryShape::kChain, 10, rng);
  QueryFixture fx1(q, false), fx2(q, false);
  OptimizeResult kary =
      Optimize(Algorithm::kTdCmd, fx1.inputs(), OptimizeOptions{});
  OptimizeResult binary =
      Optimize(Algorithm::kBinaryDp, fx2.inputs(), OptimizeOptions{});
  EXPECT_EQ(binary.enumerated, kary.enumerated);
  EXPECT_DOUBLE_EQ(binary.plan->total_cost, kary.plan->total_cost);
}

}  // namespace
}  // namespace parqo
