#include "common/tp_set.h"

#include <gtest/gtest.h>

#include <set>

namespace parqo {
namespace {

TEST(TpSetTest, EmptyAndSingleton) {
  TpSet empty;
  EXPECT_TRUE(empty.Empty());
  EXPECT_EQ(empty.Count(), 0);

  TpSet s = TpSet::Singleton(5);
  EXPECT_FALSE(s.Empty());
  EXPECT_EQ(s.Count(), 1);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.First(), 5);
}

TEST(TpSetTest, FullSet) {
  EXPECT_EQ(TpSet::FullSet(0).Count(), 0);
  EXPECT_EQ(TpSet::FullSet(7).Count(), 7);
  EXPECT_EQ(TpSet::FullSet(64).Count(), 64);
  EXPECT_TRUE(TpSet::FullSet(7).Contains(6));
  EXPECT_FALSE(TpSet::FullSet(7).Contains(7));
}

TEST(TpSetTest, AddRemove) {
  TpSet s;
  s.Add(3);
  s.Add(10);
  s.Add(3);
  EXPECT_EQ(s.Count(), 2);
  s.Remove(3);
  EXPECT_EQ(s.Count(), 1);
  EXPECT_TRUE(s.Contains(10));
  s.Remove(10);
  EXPECT_TRUE(s.Empty());
}

TEST(TpSetTest, SetAlgebra) {
  TpSet a;
  a.Add(1);
  a.Add(2);
  a.Add(3);
  TpSet b;
  b.Add(3);
  b.Add(4);

  EXPECT_EQ((a | b).Count(), 4);
  EXPECT_EQ((a & b).Count(), 1);
  EXPECT_TRUE((a & b).Contains(3));
  EXPECT_EQ((a - b).Count(), 2);
  EXPECT_FALSE((a - b).Contains(3));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE((a - b).Intersects(b - a));
}

TEST(TpSetTest, SubsetRelation) {
  TpSet a;
  a.Add(1);
  a.Add(2);
  TpSet b = a;
  b.Add(9);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_TRUE(TpSet{}.IsSubsetOf(a));
}

TEST(TpSetTest, IterationAscending) {
  TpSet s;
  s.Add(63);
  s.Add(0);
  s.Add(17);
  std::vector<int> got;
  for (int i : s) got.push_back(i);
  EXPECT_EQ(got, (std::vector<int>{0, 17, 63}));
}

TEST(TpSetTest, PopFirst) {
  TpSet s;
  s.Add(2);
  s.Add(7);
  EXPECT_EQ(s.PopFirst(), 2);
  EXPECT_EQ(s.PopFirst(), 7);
  EXPECT_TRUE(s.Empty());
}

TEST(TpSetTest, ToString) {
  TpSet s;
  EXPECT_EQ(s.ToString(), "{}");
  s.Add(1);
  s.Add(5);
  EXPECT_EQ(s.ToString(), "{1, 5}");
}

TEST(TpSetTest, HashDistinguishes) {
  TpSetHash h;
  std::set<std::size_t> hashes;
  for (int i = 0; i < 64; ++i) {
    hashes.insert(h(TpSet::Singleton(i)));
  }
  EXPECT_EQ(hashes.size(), 64u);
}

}  // namespace
}  // namespace parqo
