// Cardinality estimation (Eq. 10/11) and the exact data-derived
// statistics.

#include "stats/estimator.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rdf/ntriples.h"
#include "stats/data_stats.h"
#include "tests/test_util.h"

namespace parqo {
namespace {

using testing::Tp;

TEST(EstimatorTest, SinglePatternIsItsCardinality) {
  JoinGraph jg({Tp("?x", "p", "?y")});
  QueryStatistics stats(jg);
  stats.SetCardinality(0, 123);
  CardinalityEstimator est(jg, std::move(stats));
  EXPECT_DOUBLE_EQ(est.Cardinality(TpSet::Singleton(0)), 123);
}

TEST(EstimatorTest, TwoPatternJoinMatchesEquation10) {
  JoinGraph jg({Tp("?x", "p", "?y"), Tp("?y", "q", "?z")});
  VarId y = jg.FindVar("y");
  QueryStatistics stats(jg);
  stats.SetCardinality(0, 100);
  stats.SetCardinality(1, 50);
  stats.SetBindings(0, y, 20);
  stats.SetBindings(1, y, 40);
  CardinalityEstimator est(jg, std::move(stats));
  // |tp1 JOIN tp2| = 100 * 50 / max(20, 40) = 125.
  TpSet both = TpSet::FullSet(2);
  EXPECT_DOUBLE_EQ(est.Cardinality(both), 125);
  // B(result, y) = min(20, 40) = 20.
  EXPECT_DOUBLE_EQ(est.Bindings(both, y), 20);
}

TEST(EstimatorTest, MultiSharedVariablesMultiplyDenominators) {
  // Two patterns sharing both x and y.
  JoinGraph jg({Tp("?x", "p", "?y"), Tp("?x", "q", "?y")});
  VarId x = jg.FindVar("x");
  VarId y = jg.FindVar("y");
  QueryStatistics stats(jg);
  stats.SetCardinality(0, 1000);
  stats.SetCardinality(1, 1000);
  stats.SetBindings(0, x, 10);
  stats.SetBindings(1, x, 10);
  stats.SetBindings(0, y, 100);
  stats.SetBindings(1, y, 50);
  CardinalityEstimator est(jg, std::move(stats));
  // 1000*1000 / (max(10,10) * max(100,50)) = 1e6 / 1000 = 1000.
  EXPECT_DOUBLE_EQ(est.Cardinality(TpSet::FullSet(2)), 1000);
}

TEST(EstimatorTest, CardinalityFlooredAtOne) {
  JoinGraph jg({Tp("?x", "p", "?y"), Tp("?y", "q", "?z")});
  VarId y = jg.FindVar("y");
  QueryStatistics stats(jg);
  stats.SetCardinality(0, 2);
  stats.SetCardinality(1, 2);
  stats.SetBindings(0, y, 2);
  stats.SetBindings(1, y, 2);
  // 2*2/2 = 2; force tiny: bindings are clamped to <= card so the floor
  // engages with card 1 inputs.
  CardinalityEstimator est(jg, std::move(stats));
  EXPECT_GE(est.Cardinality(TpSet::FullSet(2)), 1.0);
}

TEST(EstimatorTest, DeterministicAcrossCallOrders) {
  Rng rng(7);
  JoinGraph jg(testing::Figure1Query());
  QueryStatistics stats(jg);
  for (int tp = 0; tp < jg.num_tps(); ++tp) {
    stats.SetCardinality(tp, static_cast<double>(rng.Uniform(1, 1000)));
    for (VarId v : jg.VarsOf(tp)) {
      stats.SetBindings(tp, v, static_cast<double>(rng.Uniform(1, 500)));
    }
  }
  CardinalityEstimator a(jg, stats);
  CardinalityEstimator b(jg, stats);
  TpSet full = jg.AllTps();
  TpSet sub;
  sub.Add(0);
  sub.Add(2);
  sub.Add(3);
  // b derives the full query first, a derives the subquery first; the
  // memoized values must agree (pure function of the bitset).
  double b_full = b.Cardinality(full);
  double a_sub = a.Cardinality(sub);
  EXPECT_DOUBLE_EQ(a.Cardinality(full), b_full);
  EXPECT_DOUBLE_EQ(b.Cardinality(sub), a_sub);
}

TEST(EstimatorTest, BindingsNeverExceedCardinality) {
  JoinGraph jg({Tp("?x", "p", "?y"), Tp("?y", "q", "?z")});
  QueryStatistics stats(jg);
  stats.SetCardinality(0, 10);
  stats.SetBindings(0, jg.FindVar("y"), 1e9);  // clamped by setter
  EXPECT_LE(stats.Bindings(0, jg.FindVar("y")), 10);
}

TEST(DataStatsTest, ExactCountsFromGraph) {
  auto g = ParseNTriplesString(
      "<a> <p> <b> .\n"
      "<a> <p> <c> .\n"
      "<d> <p> <c> .\n"
      "<a> <q> <b> .\n");
  ASSERT_TRUE(g.ok());
  JoinGraph jg({Tp("?s", "p", "?o"), Tp("?s", "q", "?o2")});
  QueryStatistics stats = ComputeStatisticsFromGraph(jg, *g);
  EXPECT_DOUBLE_EQ(stats.Cardinality(0), 3);  // three <p> triples
  EXPECT_DOUBLE_EQ(stats.Cardinality(1), 1);
  EXPECT_DOUBLE_EQ(stats.Bindings(0, jg.FindVar("s")), 2);  // a, d
  EXPECT_DOUBLE_EQ(stats.Bindings(0, jg.FindVar("o")), 2);  // b, c
}

TEST(DataStatsTest, ConstantPositionsFilter) {
  auto g = ParseNTriplesString(
      "<a> <p> <b> .\n"
      "<a> <p> <c> .\n"
      "<d> <p> <c> .\n");
  ASSERT_TRUE(g.ok());
  JoinGraph jg({Tp("a", "p", "?o"), Tp("?s", "p", "c")});
  QueryStatistics stats = ComputeStatisticsFromGraph(jg, *g);
  EXPECT_DOUBLE_EQ(stats.Cardinality(0), 2);
  EXPECT_DOUBLE_EQ(stats.Cardinality(1), 2);
}

TEST(DataStatsTest, UnmatchableConstantsGetFloorCardinality) {
  auto g = ParseNTriplesString("<a> <p> <b> .\n");
  ASSERT_TRUE(g.ok());
  JoinGraph jg({Tp("?s", "nosuch", "?o"), Tp("?s", "p", "?x")});
  QueryStatistics stats = ComputeStatisticsFromGraph(jg, *g);
  EXPECT_DOUBLE_EQ(stats.Cardinality(0), 1);
}

TEST(DataStatsTest, RepeatedVariableRequiresEquality) {
  auto g = ParseNTriplesString(
      "<a> <p> <a> .\n"
      "<a> <p> <b> .\n");
  ASSERT_TRUE(g.ok());
  JoinGraph jg({Tp("?x", "p", "?x"), Tp("?x", "p", "?y")});
  QueryStatistics stats = ComputeStatisticsFromGraph(jg, *g);
  EXPECT_DOUBLE_EQ(stats.Cardinality(0), 1);  // only <a> <p> <a>
  EXPECT_DOUBLE_EQ(stats.Cardinality(1), 2);
}

}  // namespace
}  // namespace parqo
