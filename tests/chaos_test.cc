// Chaos harness (DESIGN.md section 11): execute the benchmark workload and
// hand-built per-operator plans under seeded fault plans — node crashes,
// stragglers, dropped shipments — across both executor paths, and assert
// the chaos invariant: every run either returns rows bit-identical to the
// fault-free baseline or a clean typed Status with zeroed metrics. Never a
// silently wrong result, never a hang (retries are bounded, ctest enforces
// the wall clock).
//
// The workload sweep's fault schedules derive from PARQO_CHAOS_SEED so CI
// can run distinct seeds; the targeted operator tests pin their own seeds
// to keep every assertion deterministic. The deadline tests at the bottom
// cover the optimizer half of the failure model: a tiny wall-clock budget
// must still yield a valid executable plan (degraded or MSC fallback),
// with the cause recorded.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/stopwatch.h"
#include "exec/cluster.h"
#include "exec/executor.h"
#include "exec/health.h"
#include "optimizer/prepared_query.h"
#include "partition/hash_so.h"
#include "plan/plan.h"
#include "plan/validate.h"
#include "rdf/ntriples.h"
#include "sparql/parser.h"
#include "stats/data_stats.h"
#include "tests/optimizer_test_util.h"
#include "tests/test_util.h"
#include "workload/benchmark_queries.h"
#include "workload/lubm.h"
#include "workload/random_query.h"
#include "workload/uniprot.h"

namespace parqo {
namespace {

using testing::Tp;

constexpr int kNodes = 4;

// CI runs the suite under several seeds (see .github/workflows/ci.yml);
// every value must uphold the chaos invariant.
std::uint64_t ChaosSeed() {
  const char* env = std::getenv("PARQO_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 2017;
  return std::strtoull(env, nullptr, 10);
}

const RdfGraph& LubmGraph() {
  // parqo-lint: allow(naked-new) leaked cached dataset
  static const RdfGraph& g = *new RdfGraph([] {
    LubmConfig cfg;
    cfg.universities = 2;
    return GenerateLubm(cfg);
  }());
  return g;
}

const RdfGraph& UniprotGraph() {
  // parqo-lint: allow(naked-new) leaked cached dataset
  static const RdfGraph& g = *new RdfGraph([] {
    UniprotConfig cfg;
    cfg.proteins = 400;
    return GenerateUniprot(cfg);
  }());
  return g;
}

std::set<std::vector<TermId>> Normalize(const BindingTable& t,
                                        const JoinGraph& jg) {
  std::set<std::vector<TermId>> rows;
  for (std::size_t r = 0; r < t.NumRows(); ++r) {
    std::vector<TermId> row;
    for (VarId v = 0; v < jg.num_vars(); ++v) {
      int c = t.ColumnOf(v);
      row.push_back(c < 0 ? kInvalidTermId : t.At(r, c));
    }
    rows.insert(row);
  }
  return rows;
}

std::uint64_t Sum(const std::vector<std::uint64_t>& v) {
  std::uint64_t s = 0;
  for (std::uint64_t x : v) s += x;
  return s;
}

// The failure half of the chaos invariant: a typed error and metrics that
// cannot leak partial per-operator sums (satellite fix: the executor zeroes
// everything it counted before the fault surfaced).
void ExpectCleanFailure(const Status& status, const ExecMetrics& m) {
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();
  EXPECT_TRUE(m.failed);
  EXPECT_EQ(m.rows_scanned, 0u);
  EXPECT_EQ(m.rows_transferred, 0u);
  EXPECT_EQ(m.bytes_shipped, 0u);
  EXPECT_EQ(m.distributed_joins, 0u);
  EXPECT_EQ(m.result_rows, 0u);
  EXPECT_EQ(m.recovery_attempts, 0u);
  EXPECT_EQ(m.rows_reshipped, 0u);
  EXPECT_EQ(m.measured_cost, 0.0);
  EXPECT_EQ(m.total_work, 0.0);
  EXPECT_TRUE(m.edges.empty());
  EXPECT_TRUE(m.degraded_nodes.empty());
  EXPECT_EQ(Sum(m.node_rows_scanned), 0u);
  EXPECT_EQ(Sum(m.node_rows_received), 0u);
  EXPECT_EQ(Sum(m.node_rows_joined), 0u);
}

// The success half: rows bit-identical to the fault-free baseline and the
// per-node reconciliation invariant intact (scalars count only successful
// deliveries; wasted traffic lives in rows_reshipped).
void ExpectExactRecovery(const BindingTable& rows, const ExecMetrics& m,
                         const std::set<std::vector<TermId>>& expected,
                         const JoinGraph& jg) {
  EXPECT_FALSE(m.failed);
  EXPECT_EQ(Normalize(rows, jg), expected);
  EXPECT_EQ(Sum(m.node_rows_received), m.rows_transferred);
  EXPECT_EQ(Sum(m.node_rows_scanned), m.rows_scanned);
}

// ---------------------------------------------------------------------------
// Workload sweep: every benchmark query under randomized-but-seeded fault
// plans, serial and parallel executors.

class ChaosQueryTest : public ::testing::TestWithParam<BenchmarkQuery> {};

TEST_P(ChaosQueryTest, FaultedRunsMatchBaselineOrFailCleanly) {
  const BenchmarkQuery& bq = GetParam();
  const RdfGraph& graph = bq.lubm ? LubmGraph() : UniprotGraph();

  auto parsed = ParseSparql(bq.sparql);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  OptimizeOptions options;
  options.cost_params.num_nodes = kNodes;
  options.timeout_seconds = 60;
  HashSoPartitioner hash;
  PreparedQuery pq(parsed->patterns, hash, StatsFromData(graph));
  OptimizeResult r = Optimize(Algorithm::kTdAuto, pq.inputs(), options);
  ASSERT_NE(r.plan, nullptr);

  PartitionAssignment assignment = hash.PartitionData(graph, kNodes);
  Cluster cluster(graph, assignment);

  RetryPolicy retry;
  retry.max_attempts = 6;

  Executor baseline_exec(cluster, pq.join_graph(), options.cost_params,
                         /*parallel_nodes=*/false, retry);
  ExecMetrics base;
  auto baseline = baseline_exec.Execute(*r.plan, &base);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  std::set<std::vector<TermId>> expected =
      Normalize(*baseline, pq.join_graph());
  EXPECT_EQ(base.recovery_attempts, 0u);  // no scope active
  EXPECT_TRUE(base.degraded_nodes.empty());

  struct Scenario {
    const char* name;
    FaultPlanConfig config;
  };
  std::vector<Scenario> scenarios(3);
  scenarios[0].name = "crashes";
  scenarios[0].config.crash_probability = 0.5;
  scenarios[1].name = "drops";
  scenarios[1].config.drop_probability = 0.2;
  scenarios[2].name = "mixed";
  scenarios[2].config.crash_probability = 0.3;
  scenarios[2].config.slow_probability = 0.25;
  scenarios[2].config.slow_seconds = 1e-4;
  scenarios[2].config.drop_probability = 0.1;

  const std::uint64_t seed = ChaosSeed();
  for (int variant = 0; variant < 2; ++variant) {
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      for (bool parallel : {false, true}) {
        SCOPED_TRACE(std::string(scenarios[s].name) + " variant " +
                     std::to_string(variant) +
                     (parallel ? " parallel" : " serial"));
        FaultPlan fault(seed * 1000003 + variant * 31 + s, kNodes,
                        scenarios[s].config);
        Executor exec(cluster, pq.join_graph(), options.cost_params,
                      parallel, retry);
        ExecMetrics m;
        Result<BindingTable> result = [&] {
          FaultScope scope(&fault);
          return exec.Execute(*r.plan, &m);
        }();
        if (result.ok()) {
          ExpectExactRecovery(*result, m, expected, pq.join_graph());
          EXPECT_EQ(m.degraded_nodes.size(), fault.crashes_fired());
        } else {
          ExpectCleanFailure(result.status(), m);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Benchmark, ChaosQueryTest, ::testing::ValuesIn(AllBenchmarkQueries()),
    [](const ::testing::TestParamInfo<BenchmarkQuery>& param_info) {
      return param_info.param.name;
    });

// ---------------------------------------------------------------------------
// Targeted per-operator fault tests on a tiny hand-made cluster. Fixed
// seeds keep every assertion deterministic.

class ChaosExecutorTest : public ::testing::Test {
 protected:
  ChaosExecutorTest() {
    auto g = ParseNTriplesString(
        "<s1> <worksFor> <d1> .\n"
        "<s2> <worksFor> <d1> .\n"
        "<s3> <worksFor> <d2> .\n"
        "<d1> <subOrg> <u1> .\n"
        "<d2> <subOrg> <u1> .\n"
        "<d2> <subOrg> <u2> .\n"
        "<s1> <likes> <s2> .\n"
        "<s2> <likes> <s3> .\n");
    graph_ = std::make_unique<RdfGraph>(std::move(*g));
    jg_ = std::make_unique<JoinGraph>(std::vector<TriplePattern>{
        Tp("?x", "worksFor", "?y"), Tp("?y", "subOrg", "?u"),
        Tp("?x", "likes", "?z")});
    cluster_ = std::make_unique<Cluster>(*graph_,
                                         hash_.PartitionData(*graph_, 3));
    estimator_ = std::make_unique<CardinalityEstimator>(
        *jg_, ComputeStatisticsFromGraph(*jg_, *graph_));
    builder_ = std::make_unique<PlanBuilder>(*estimator_,
                                             CostModel(CostParams{}));
  }

  PlanNodePtr RepartitionPlan() {
    return builder_->Join(
        JoinMethod::kRepartition, jg_->FindVar("y"),
        {builder_->Join(JoinMethod::kRepartition, jg_->FindVar("x"),
                        {builder_->Scan(0), builder_->Scan(2)}),
         builder_->Scan(1)});
  }

  PlanNodePtr BroadcastPlan() {
    return builder_->Join(
        JoinMethod::kBroadcast, jg_->FindVar("y"),
        {builder_->Join(JoinMethod::kBroadcast, jg_->FindVar("x"),
                        {builder_->Scan(0), builder_->Scan(2)}),
         builder_->Scan(1)});
  }

  std::set<std::vector<TermId>> Expected() {
    return testing::ReferenceEvaluate(*jg_, *graph_);
  }

  Result<BindingTable> RunUnder(FaultPlan& fault, const PlanNode& plan,
                                ExecMetrics* m,
                                RetryPolicy retry = RetryPolicy{}) {
    Executor exec(*cluster_, *jg_, CostParams{}, /*parallel_nodes=*/false,
                  retry);
    FaultScope scope(&fault);
    return exec.Execute(plan, m);
  }

  HashSoPartitioner hash_;
  std::unique_ptr<RdfGraph> graph_;
  std::unique_ptr<JoinGraph> jg_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<CardinalityEstimator> estimator_;
  std::unique_ptr<PlanBuilder> builder_;
};

TEST_F(ChaosExecutorTest, CrashDuringScanRecovers) {
  PlanNodePtr plan = RepartitionPlan();
  FaultPlan fault(3);
  fault.CrashNodeAtOp(1, 0);  // dies on its very first scan
  ExecMetrics m;
  auto result = RunUnder(fault, *plan, &m);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectExactRecovery(*result, m, Expected(), *jg_);
  EXPECT_EQ(fault.crashes_fired(), 1u);
  ASSERT_EQ(m.degraded_nodes.size(), 1u);
  EXPECT_EQ(m.degraded_nodes[0], 1);
  EXPECT_GE(m.recovery_attempts, 1u);
  EXPECT_GE(m.operators_reexecuted, 1u);
}

TEST_F(ChaosExecutorTest, CrashDuringFinalJoinRecovers) {
  // Serial op sequence per node: scan, scan, join, scan, join — ordinal 4
  // lands inside the last repartition join.
  PlanNodePtr plan = RepartitionPlan();
  FaultPlan fault(3);
  fault.CrashNodeAtOp(2, 4);
  ExecMetrics m;
  auto result = RunUnder(fault, *plan, &m);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectExactRecovery(*result, m, Expected(), *jg_);
  ASSERT_EQ(m.degraded_nodes.size(), 1u);
  EXPECT_EQ(m.degraded_nodes[0], 2);
  EXPECT_GE(m.operators_reexecuted, 1u);
}

TEST_F(ChaosExecutorTest, CrashDuringBroadcastJoinRecovers) {
  PlanNodePtr plan = BroadcastPlan();
  FaultPlan fault(3);
  fault.CrashNodeAtOp(0, 2);  // after its two scans: mid broadcast join
  ExecMetrics m;
  auto result = RunUnder(fault, *plan, &m);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectExactRecovery(*result, m, Expected(), *jg_);
  ASSERT_EQ(m.degraded_nodes.size(), 1u);
  EXPECT_EQ(m.degraded_nodes[0], 0);
}

TEST_F(ChaosExecutorTest, CrashDuringLocalJoinRecovers) {
  // {tp0, tp2} share ?x under Hash-SO, so the local join is correct.
  JoinGraph star(std::vector<TriplePattern>{Tp("?x", "worksFor", "?y"),
                                            Tp("?x", "likes", "?z")});
  CardinalityEstimator est(star, ComputeStatisticsFromGraph(star, *graph_));
  PlanBuilder builder(est, CostModel(CostParams{}));
  PlanNodePtr plan = builder.LocalJoinAll(TpSet::FullSet(2));

  FaultPlan fault(3);
  fault.CrashNodeAtOp(0, 2);  // scan, scan, then dies mid local join
  Executor exec(*cluster_, star, CostParams{});
  ExecMetrics m;
  Result<BindingTable> result = [&] {
    FaultScope scope(&fault);
    return exec.Execute(*plan, &m);
  }();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Normalize(*result, star),
            testing::ReferenceEvaluate(star, *graph_));
  EXPECT_EQ(m.rows_transferred, 0u);  // recovery ships nothing for locals
  ASSERT_EQ(m.degraded_nodes.size(), 1u);
  EXPECT_EQ(m.degraded_nodes[0], 0);
  EXPECT_GE(m.operators_reexecuted, 1u);
}

TEST_F(ChaosExecutorTest, DroppedShipmentsAreReshippedExactly) {
  PlanNodePtr plan = BroadcastPlan();
  FaultPlan fault(3);
  fault.DropShipments(0.5, /*seed=*/42);
  RetryPolicy retry;
  retry.max_attempts = 32;  // enough budget that p=0.5 cannot exhaust it
  ExecMetrics m;
  auto result = RunUnder(fault, *plan, &m, retry);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectExactRecovery(*result, m, Expected(), *jg_);
  EXPECT_GT(fault.drops_fired(), 0u);
  EXPECT_EQ(m.shipments_dropped, fault.drops_fired());
  EXPECT_GT(m.rows_reshipped, 0u);
  EXPECT_TRUE(m.degraded_nodes.empty());  // drops degrade no node
}

TEST_F(ChaosExecutorTest, RepartitionDropsReconcileTraffic) {
  PlanNodePtr plan = RepartitionPlan();
  FaultPlan fault(3);
  fault.DropShipments(0.5, /*seed=*/7);
  RetryPolicy retry;
  retry.max_attempts = 32;
  ExecMetrics m;
  auto result = RunUnder(fault, *plan, &m, retry);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectExactRecovery(*result, m, Expected(), *jg_);
  EXPECT_GT(fault.drops_fired(), 0u);
}

TEST_F(ChaosExecutorTest, TotalShipmentLossReturnsTypedError) {
  // Every delivery fails: the retry budget must exhaust into a typed
  // kUnavailable with zeroed metrics — scans had already counted rows,
  // and none of that partial state may leak (satellite regression).
  PlanNodePtr plan = RepartitionPlan();
  FaultPlan fault(3);
  fault.DropShipments(1.0, /*seed=*/7);
  ExecMetrics m;
  auto result = RunUnder(fault, *plan, &m);
  ASSERT_FALSE(result.ok());
  ExpectCleanFailure(result.status(), m);
  EXPECT_GT(m.wall_seconds, 0.0);  // wall time is an observation, kept
}

TEST_F(ChaosExecutorTest, AllNodesCrashingReturnsTypedError) {
  PlanNodePtr plan = RepartitionPlan();
  FaultPlan fault(3);
  for (int node = 0; node < 3; ++node) fault.CrashNodeAtOp(node, 0);
  ExecMetrics m;
  auto result = RunUnder(fault, *plan, &m);
  ASSERT_FALSE(result.ok());
  ExpectCleanFailure(result.status(), m);
}

TEST_F(ChaosExecutorTest, StragglerDelaysButNeverDegrades) {
  PlanNodePtr plan = RepartitionPlan();
  FaultPlan fault(3);
  fault.SlowNode(1, 1e-4);
  ExecMetrics m;
  auto result = RunUnder(fault, *plan, &m);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectExactRecovery(*result, m, Expected(), *jg_);
  EXPECT_GT(fault.slow_ops(), 0u);
  EXPECT_TRUE(m.degraded_nodes.empty());
  EXPECT_EQ(m.recovery_attempts, 0u);
}

TEST_F(ChaosExecutorTest, StragglerPlusCrashOnSameNode) {
  // The nastiest single-node failure mode: a node limps (straggler
  // delay on every op) and then dies mid-plan. Recovery must still
  // produce bit-identical rows, for both engines, serial and parallel.
  PlanNodePtr plan = RepartitionPlan();
  for (ExecEngine engine : {ExecEngine::kRow, ExecEngine::kBatch}) {
    for (bool parallel : {false, true}) {
      SCOPED_TRACE(std::string(engine == ExecEngine::kRow ? "row" : "batch") +
                   (parallel ? " parallel" : " serial"));
      FaultPlan fault(3);
      fault.SlowNode(1, 1e-4);
      fault.CrashNodeAtOp(1, 2);  // limps through two ops, then dies
      Executor exec(*cluster_, *jg_, CostParams{}, parallel, RetryPolicy{},
                    engine);
      ExecMetrics m;
      Result<BindingTable> result = [&] {
        FaultScope scope(&fault);
        return exec.Execute(*plan, &m);
      }();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectExactRecovery(*result, m, Expected(), *jg_);
      EXPECT_EQ(fault.crashes_fired(), 1u);
      ASSERT_EQ(m.degraded_nodes.size(), 1u);
      EXPECT_EQ(m.degraded_nodes[0], 1);
      EXPECT_GT(fault.slow_ops(), 0u);  // the limp was real, not skipped
      EXPECT_GE(m.recovery_attempts, 1u);
    }
  }
}

TEST_F(ChaosExecutorTest, FlappingNodeCrashRecoverCrash) {
  // Flapping node: persistently sick -> cured -> sick again, across three
  // consecutive executions sharing one fault plan and one health
  // registry (threshold high enough that the breaker only observes; the
  // breaker-driven quarantine path is covered in health_test). Every
  // phase must uphold the chaos invariant for both engines, serial and
  // parallel.
  PlanNodePtr plan = RepartitionPlan();
  for (ExecEngine engine : {ExecEngine::kRow, ExecEngine::kBatch}) {
    for (bool parallel : {false, true}) {
      SCOPED_TRACE(std::string(engine == ExecEngine::kRow ? "row" : "batch") +
                   (parallel ? " parallel" : " serial"));
      FaultPlan fault(3);
      HealthConfig hc;
      hc.failure_threshold = 1000;  // observe, never trip
      NodeHealthRegistry health(3, hc);
      Executor exec(*cluster_, *jg_, CostParams{}, parallel, RetryPolicy{},
                    engine, &health);
      FaultScope scope(&fault);

      // Phase 1: node 1 is sick; every probe on it is refused until the
      // executor re-homes its partition.
      fault.SickNode(1);
      ExecMetrics m1;
      auto r1 = exec.Execute(*plan, &m1);
      ASSERT_TRUE(r1.ok()) << r1.status().ToString();
      ExpectExactRecovery(*r1, m1, Expected(), *jg_);
      ASSERT_EQ(m1.degraded_nodes.size(), 1u);
      EXPECT_EQ(m1.degraded_nodes[0], 1);
      EXPECT_GT(fault.sick_refusals(), 0u);
      EXPECT_GE(health.consecutive_failures(1), 1);
      health.RecordSession(m1);

      // Phase 2: cured. The node serves again; nothing degrades and the
      // success feedback clears its failure streak.
      fault.CureNode(1);
      ExecMetrics m2;
      auto r2 = exec.Execute(*plan, &m2);
      ASSERT_TRUE(r2.ok()) << r2.status().ToString();
      ExpectExactRecovery(*r2, m2, Expected(), *jg_);
      EXPECT_TRUE(m2.degraded_nodes.empty());
      EXPECT_EQ(m2.recovery_attempts, 0u);
      EXPECT_GT(m2.node_ops[1], 0u);
      health.RecordSession(m2);
      EXPECT_EQ(health.consecutive_failures(1), 0);

      // Phase 3: sick again — the flap. Detection and recovery repeat.
      fault.SickNode(1);
      ExecMetrics m3;
      auto r3 = exec.Execute(*plan, &m3);
      ASSERT_TRUE(r3.ok()) << r3.status().ToString();
      ExpectExactRecovery(*r3, m3, Expected(), *jg_);
      ASSERT_EQ(m3.degraded_nodes.size(), 1u);
      EXPECT_EQ(m3.degraded_nodes[0], 1);
      EXPECT_GE(health.consecutive_failures(1), 1);
      health.RecordSession(m3);
    }
  }
}

TEST_F(ChaosExecutorTest, EmptyFaultPlanChangesNothing) {
  PlanNodePtr plan = RepartitionPlan();
  Executor exec(*cluster_, *jg_, CostParams{});
  ExecMetrics off, on;
  auto bare = exec.Execute(*plan, &off);
  FaultPlan fault(3);
  auto scoped = RunUnder(fault, *plan, &on);
  ASSERT_TRUE(bare.ok());
  ASSERT_TRUE(scoped.ok());
  EXPECT_EQ(Normalize(*bare, *jg_), Normalize(*scoped, *jg_));
  EXPECT_EQ(off.rows_scanned, on.rows_scanned);
  EXPECT_EQ(off.rows_transferred, on.rows_transferred);
  EXPECT_EQ(off.bytes_shipped, on.bytes_shipped);
  EXPECT_DOUBLE_EQ(off.measured_cost, on.measured_cost);
  EXPECT_EQ(on.recovery_attempts, 0u);
  EXPECT_EQ(on.shipments_dropped, 0u);
}

TEST_F(ChaosExecutorTest, SeededFaultsReplayIdentically) {
  PlanNodePtr plan = RepartitionPlan();
  FaultPlanConfig config;
  config.crash_probability = 0.4;
  config.drop_probability = 0.3;
  RetryPolicy retry;
  retry.max_attempts = 8;

  auto run = [&](ExecMetrics* m, std::uint64_t* crashes,
                 std::uint64_t* drops) {
    FaultPlan fault(/*seed=*/99, 3, config);
    auto result = RunUnder(fault, *plan, m, retry);
    *crashes = fault.crashes_fired();
    *drops = fault.drops_fired();
    return result;
  };
  ExecMetrics m1, m2;
  std::uint64_t c1, c2, d1, d2;
  auto r1 = run(&m1, &c1, &d1);
  auto r2 = run(&m2, &c2, &d2);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(d1, d2);
  ASSERT_EQ(r1.ok(), r2.ok());
  if (r1.ok()) {
    EXPECT_EQ(Normalize(*r1, *jg_), Normalize(*r2, *jg_));
    EXPECT_EQ(m1.recovery_attempts, m2.recovery_attempts);
    EXPECT_EQ(m1.operators_reexecuted, m2.operators_reexecuted);
    EXPECT_EQ(m1.rows_reshipped, m2.rows_reshipped);
    EXPECT_EQ(m1.degraded_nodes, m2.degraded_nodes);
  } else {
    EXPECT_EQ(r1.status().code(), r2.status().code());
  }
}

// ---------------------------------------------------------------------------
// Optimizer deadlines: a tiny budget degrades gracefully instead of
// failing, and no budget reproduces pre-deadline behavior exactly.

TEST(ChaosDeadlineTest, ExpiredDeadlineStillYieldsExecutablePlan) {
  Rng rng(7);
  GeneratedQuery q = GenerateRandomQuery(QueryShape::kDense, 12, rng);
  testing::QueryFixture fixture(q, /*use_hash_locality=*/false);

  OptimizeOptions options;
  options.timeout_seconds = 60;
  options.deadline = Deadline::AfterSeconds(0);  // already expired
  OptimizeResult r = Optimize(Algorithm::kTdCmd, fixture.inputs(), options);
  ASSERT_NE(r.plan, nullptr);
  EXPECT_EQ(r.abort_cause, AbortCause::kDeadline);
  EXPECT_FALSE(r.timed_out);  // degradation is not failure
  EXPECT_TRUE(ValidatePlan(*r.plan, fixture.jg(),
                           fixture.inputs().local_index)
                  .ok());
}

TEST(ChaosDeadlineTest, ExpiredDeadlineParallelEnumerator) {
  Rng rng(11);
  GeneratedQuery q = GenerateRandomQuery(QueryShape::kDense, 12, rng);
  testing::QueryFixture fixture(q, /*use_hash_locality=*/false);

  OptimizeOptions options;
  options.timeout_seconds = 60;
  options.num_threads = 2;
  options.deadline = Deadline::AfterSeconds(0);
  OptimizeResult r = Optimize(Algorithm::kTdCmd, fixture.inputs(), options);
  ASSERT_NE(r.plan, nullptr);
  EXPECT_EQ(r.abort_cause, AbortCause::kDeadline);
  EXPECT_TRUE(ValidatePlan(*r.plan, fixture.jg(),
                           fixture.inputs().local_index)
                  .ok());
}

TEST(ChaosDeadlineTest, MscFallbackCoversEveryAlgorithm) {
  // MSC under an expired deadline aborts before its first flat plan; the
  // Optimize() wrapper must re-run it with the deadline lifted so the
  // caller still gets a plan.
  Rng rng(13);
  GeneratedQuery q = GenerateRandomQuery(QueryShape::kDense, 10, rng);
  testing::QueryFixture fixture(q, /*use_hash_locality=*/false);

  OptimizeOptions options;
  options.timeout_seconds = 60;
  options.deadline = Deadline::AfterSeconds(0);
  for (Algorithm a : {Algorithm::kTdCmd, Algorithm::kTdCmdp,
                      Algorithm::kHgrTdCmd, Algorithm::kTdAuto,
                      Algorithm::kMsc}) {
    SCOPED_TRACE(ToString(a));
    OptimizeResult r = Optimize(a, fixture.inputs(), options);
    ASSERT_NE(r.plan, nullptr);
    EXPECT_TRUE(ValidatePlan(*r.plan, fixture.jg(),
                             fixture.inputs().local_index)
                    .ok());
    if (r.fell_back_to_msc) {
      EXPECT_EQ(r.abort_cause, AbortCause::kDeadline);
    }
  }
}

TEST(ChaosDeadlineTest, NoDeadlineIsBitIdenticalToInfinite) {
  const BenchmarkQuery& bq = GetBenchmarkQuery("L2");
  auto parsed = ParseSparql(bq.sparql);
  ASSERT_TRUE(parsed.ok());
  HashSoPartitioner hash;
  PreparedQuery pq(parsed->patterns, hash, StatsFromData(LubmGraph()));

  OptimizeOptions plain;
  plain.timeout_seconds = 60;
  OptimizeOptions infinite = plain;
  infinite.deadline = Deadline::Infinite();
  OptimizeOptions generous = plain;
  generous.deadline = Deadline::AfterSeconds(3600);

  OptimizeResult a = Optimize(Algorithm::kTdCmd, pq.inputs(), plain);
  OptimizeResult b = Optimize(Algorithm::kTdCmd, pq.inputs(), infinite);
  OptimizeResult c = Optimize(Algorithm::kTdCmd, pq.inputs(), generous);
  ASSERT_NE(a.plan, nullptr);
  ASSERT_NE(b.plan, nullptr);
  ASSERT_NE(c.plan, nullptr);
  EXPECT_EQ(a.enumerated, b.enumerated);
  EXPECT_EQ(a.enumerated, c.enumerated);
  EXPECT_DOUBLE_EQ(a.plan->total_cost, b.plan->total_cost);
  EXPECT_DOUBLE_EQ(a.plan->total_cost, c.plan->total_cost);
  EXPECT_EQ(a.abort_cause, AbortCause::kNone);
  EXPECT_EQ(c.abort_cause, AbortCause::kNone);
  EXPECT_FALSE(c.fell_back_to_msc);
}

TEST(ChaosDeadlineTest, DegradedPlanStillExecutesCorrectly) {
  // End to end: optimize a benchmark query under an expired deadline, then
  // run whatever plan came back against the fault-free cluster and check
  // the rows against the reference evaluator.
  const BenchmarkQuery& bq = GetBenchmarkQuery("L4");
  const RdfGraph& graph = LubmGraph();
  auto parsed = ParseSparql(bq.sparql);
  ASSERT_TRUE(parsed.ok());
  HashSoPartitioner hash;
  PreparedQuery pq(parsed->patterns, hash, StatsFromData(graph));

  OptimizeOptions options;
  options.cost_params.num_nodes = kNodes;
  options.timeout_seconds = 60;
  options.deadline = Deadline::AfterSeconds(0);
  OptimizeResult r = Optimize(Algorithm::kTdAuto, pq.inputs(), options);
  ASSERT_NE(r.plan, nullptr);

  Cluster cluster(graph, hash.PartitionData(graph, kNodes));
  Executor executor(cluster, pq.join_graph(), options.cost_params);
  auto result = executor.Execute(*r.plan, nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  JoinGraph reference_jg(parsed->patterns);
  EXPECT_EQ(Normalize(*result, pq.join_graph()),
            testing::ReferenceEvaluate(reference_jg, graph));
}

}  // namespace
}  // namespace parqo
