// Regression tests for BGP canonicalization (server/signature.h): the
// signature must be a pure function of the query's structure — invariant
// under variable renaming, triple-pattern permutation, and constant-value
// substitution — because the serving layer's plan cache keys on it. The
// original bug class: a signature derived from variable spellings or
// container iteration order maps the same template to many keys (cache
// misses) or, worse, different templates to one key (wrong plan served).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "query/join_graph.h"
#include "server/signature.h"
#include "tests/test_util.h"
#include "workload/watdiv.h"

namespace parqo {
namespace {

using testing::Tp;

/// Renames every variable through `names` (old name without '?' -> new
/// name without '?').
std::vector<TriplePattern> Rename(
    const std::vector<TriplePattern>& patterns,
    const std::map<std::string, std::string>& names) {
  std::vector<TriplePattern> out = patterns;
  for (TriplePattern& tp : out) {
    for (PatternTerm* t : {&tp.s, &tp.p, &tp.o}) {
      if (!t->IsVar()) continue;
      auto it = names.find(t->var);
      if (it != names.end()) t->var = it->second;
    }
  }
  return out;
}

/// Deterministic pseudo-random renaming + permutation of a query.
std::vector<TriplePattern> Scramble(const std::vector<TriplePattern>& patterns,
                                    Rng& rng) {
  std::map<std::string, std::string> names;
  for (const TriplePattern& tp : patterns) {
    for (const std::string& v : tp.Variables()) {
      if (!names.count(v)) {
        names[v] = "scr" + std::to_string(rng.Next() % 100000) + "_" +
                   std::to_string(names.size());
      }
    }
  }
  std::vector<TriplePattern> out = Rename(patterns, names);
  // Fisher-Yates with the test rng.
  for (std::size_t i = out.size(); i > 1; --i) {
    std::swap(out[i - 1], out[rng.Next() % i]);
  }
  return out;
}

TEST(SignatureTest, MinimizedRenameAndPermuteRegression) {
  // The minimized reproducer for the original bug: the same 3-pattern
  // query written with different variable names and a different pattern
  // order must produce the identical signature.
  std::vector<TriplePattern> original = {
      Tp("?a", "p1", "?b"),
      Tp("?b", "p2", "?c"),
      Tp("?c", "p3", "k1"),
  };
  std::vector<TriplePattern> rewritten = {
      Tp("?z", "p3", "k1"),
      Tp("?x", "p1", "?y"),
      Tp("?y", "p2", "?z"),
  };
  CanonicalBgp a = CanonicalizeBgp(original);
  CanonicalBgp b = CanonicalizeBgp(rewritten);
  EXPECT_EQ(a.signature, b.signature);
  EXPECT_TRUE(a.exact);
  EXPECT_TRUE(b.exact);
  // Identical signature means identical canonical pattern lists (with the
  // caller's own constants, which here coincide).
  EXPECT_EQ(a.patterns, b.patterns);
}

TEST(SignatureTest, SignatureDistinguishesPredicates) {
  // Predicates stay literal in the signature: they are the workload's
  // plan discriminator.
  CanonicalBgp a = CanonicalizeBgp({Tp("?a", "p1", "?b")});
  CanonicalBgp b = CanonicalizeBgp({Tp("?a", "p2", "?b")});
  EXPECT_NE(a.signature, b.signature);
}

TEST(SignatureTest, ConstantsParameterizeByEqualityClass) {
  // Subject/object constant *values* are parameterized out...
  CanonicalBgp a =
      CanonicalizeBgp({Tp("?a", "p", "k1"), Tp("?a", "q", "k2")});
  CanonicalBgp b =
      CanonicalizeBgp({Tp("?a", "p", "k9"), Tp("?a", "q", "k3")});
  EXPECT_EQ(a.signature, b.signature);
  ASSERT_EQ(a.constants.size(), 2u);
  ASSERT_EQ(b.constants.size(), 2u);

  // ...but constant *sharing* is structure: a query whose two positions
  // hold the SAME constant dedups to one query-graph vertex and can need
  // a different plan, so it must get a different signature.
  CanonicalBgp shared =
      CanonicalizeBgp({Tp("?a", "p", "k1"), Tp("?a", "q", "k1")});
  EXPECT_NE(a.signature, shared.signature);
  EXPECT_EQ(shared.constants.size(), 1u);
}

TEST(SignatureTest, VarNamesAndPermRoundTrip) {
  std::vector<TriplePattern> q = {
      Tp("?user", "follows", "?friend"),
      Tp("?friend", "likes", "?product"),
  };
  CanonicalBgp c = CanonicalizeBgp(q);
  ASSERT_EQ(c.patterns.size(), q.size());
  ASSERT_EQ(c.pattern_perm.size(), q.size());
  // Undoing the renaming and the permutation must recover the original
  // pattern list exactly.
  std::map<std::string, std::string> undo;
  for (std::size_t k = 0; k < c.var_names.size(); ++k) {
    undo["x" + std::to_string(k)] = c.var_names[k];
  }
  for (std::size_t i = 0; i < c.patterns.size(); ++i) {
    std::vector<TriplePattern> restored = Rename({c.patterns[i]}, undo);
    EXPECT_EQ(restored[0], q[c.pattern_perm[i]]) << "canonical index " << i;
  }
}

TEST(SignatureTest, SymmetricCycleIsInvariant) {
  // A 3-cycle with one predicate is fully symmetric: refinement alone
  // cannot split the variables and individualization must break the tie
  // the same way for every rotation/renaming.
  std::vector<TriplePattern> cycle = {
      Tp("?a", "p", "?b"),
      Tp("?b", "p", "?c"),
      Tp("?c", "p", "?a"),
  };
  CanonicalBgp base = CanonicalizeBgp(cycle);
  EXPECT_TRUE(base.exact);
  Rng rng(41);
  for (int trial = 0; trial < 32; ++trial) {
    CanonicalBgp scrambled = CanonicalizeBgp(Scramble(cycle, rng));
    EXPECT_EQ(scrambled.signature, base.signature) << "trial " << trial;
  }
}

TEST(SignatureTest, AllPermutationsOfSmallQueryAgree) {
  std::vector<TriplePattern> q = {
      Tp("?a", "p1", "?b"),
      Tp("?b", "p2", "?c"),
      Tp("?a", "p3", "?c"),
      Tp("?c", "p4", "k1"),
  };
  CanonicalBgp base = CanonicalizeBgp(q);
  std::vector<int> perm = {0, 1, 2, 3};
  do {
    std::vector<TriplePattern> permuted;
    for (int i : perm) permuted.push_back(q[i]);
    EXPECT_EQ(CanonicalizeBgp(permuted).signature, base.signature);
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(SignatureTest, WatdivTemplateSweepInvariance) {
  // Every one of the 124 WatDiv templates, scrambled several ways, must
  // keep its signature; and distinct templates must (with their distinct
  // predicate walks) get distinct signatures almost always — the cache
  // hit rate acceptance bar depends on both directions.
  Rng rng(2017);
  std::vector<WatdivTemplate> templates = GenerateWatdivTemplates(124, rng);
  Rng scramble_rng(7);
  std::map<std::string, int> sig_to_template;
  int collisions = 0;
  for (const WatdivTemplate& t : templates) {
    CanonicalBgp base = CanonicalizeBgp(t.patterns);
    EXPECT_TRUE(base.exact) << "template " << t.id;
    for (int trial = 0; trial < 4; ++trial) {
      CanonicalBgp s =
          CanonicalizeBgp(Scramble(t.patterns, scramble_rng));
      EXPECT_EQ(s.signature, base.signature)
          << "template " << t.id << " trial " << trial;
    }
    auto [it, inserted] = sig_to_template.emplace(base.signature, t.id);
    if (!inserted) ++collisions;
  }
  // Random-walk templates can occasionally coincide structurally; what
  // must not happen is wholesale collapse.
  EXPECT_LT(collisions, 10);
}

TEST(SignatureTest, CanonicalVarNumbersMatchJoinGraphVarIds) {
  // Regression: parqo_serve maps result columns through
  // ColumnOf(VarId k) == var_names[k], which requires canonical ?xk to
  // be VarId k of a JoinGraph over canon.patterns. JoinGraph interns
  // VarIds by first occurrence in (s, p, o) pattern order, so canonical
  // numbering must follow the same rule — not refinement-rank order.
  // This query's rank order differs from first-occurrence order, which
  // once produced headers misaligned with the row cells.
  std::vector<TriplePattern> q = {
      Tp("?p", "<http://ex/worksFor>", "?l"),
      Tp("?l", "<http://ex/partOf>", "?d"),
  };
  CanonicalBgp canon = CanonicalizeBgp(q);
  JoinGraph jg(canon.patterns);
  ASSERT_EQ(jg.num_vars(), static_cast<int>(canon.var_names.size()));
  for (VarId v = 0; v < jg.num_vars(); ++v) {
    EXPECT_EQ(jg.var_name(v), "x" + std::to_string(v));
  }
  // Sweep the WatDiv templates too: every canonical form must intern in
  // ?x0, ?x1, ... order.
  Rng rng(2017);
  for (const WatdivTemplate& t : GenerateWatdivTemplates(124, rng)) {
    CanonicalBgp c = CanonicalizeBgp(t.patterns);
    JoinGraph g(c.patterns);
    ASSERT_EQ(g.num_vars(), static_cast<int>(c.var_names.size()))
        << "template " << t.id;
    for (VarId v = 0; v < g.num_vars(); ++v) {
      ASSERT_EQ(g.var_name(v), "x" + std::to_string(v))
          << "template " << t.id;
    }
  }
}

TEST(SignatureTest, EmptyAndSingletonQueries) {
  EXPECT_EQ(CanonicalizeBgp({}).signature, "");
  CanonicalBgp one = CanonicalizeBgp({Tp("?s", "p", "?o")});
  EXPECT_TRUE(one.exact);
  EXPECT_EQ(one.patterns.size(), 1u);
  EXPECT_EQ(one.var_names.size(), 2u);
}

}  // namespace
}  // namespace parqo
