// Cost-model calibration: recovering Table II coefficients from
// synthetic operator timings.

#include "cost/calibrate.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace parqo {
namespace {

CalibrationSample MakeSample(JoinMethod method, const CostParams& truth,
                             Rng& rng, double noise) {
  CalibrationSample s;
  s.method = method;
  int k = static_cast<int>(rng.Uniform(2, 4));
  for (int i = 0; i < k; ++i) {
    s.input_cards.push_back(static_cast<double>(rng.Uniform(100, 100000)));
  }
  s.output_card = static_cast<double>(rng.Uniform(10, 500000));
  CostModel model(truth);
  s.seconds = model.JoinOpCost(method, s.input_cards, s.output_card) *
              (1.0 + noise * (rng.UniformDouble() - 0.5));
  return s;
}

TEST(CalibrateTest, RecoversExactCoefficientsWithoutNoise) {
  CostParams truth;
  truth.alpha = 0.02;
  truth.beta_broadcast = 0.05;
  truth.beta_repartition = 0.1;
  truth.gamma_local = 0.004;
  truth.gamma_broadcast = 0.008;
  truth.gamma_repartition = 0.005;
  truth.num_nodes = 10;

  Rng rng(77);
  std::vector<CalibrationSample> samples;
  for (int i = 0; i < 50; ++i) {
    samples.push_back(MakeSample(JoinMethod::kLocal, truth, rng, 0));
    samples.push_back(MakeSample(JoinMethod::kBroadcast, truth, rng, 0));
    samples.push_back(MakeSample(JoinMethod::kRepartition, truth, rng, 0));
  }
  CostParams initial;
  initial.num_nodes = 10;
  CostParams fitted = CalibrateCostParams(samples, initial);

  EXPECT_NEAR(fitted.alpha, truth.alpha, 1e-6);
  EXPECT_NEAR(fitted.beta_broadcast, truth.beta_broadcast, 1e-6);
  EXPECT_NEAR(fitted.beta_repartition, truth.beta_repartition, 1e-6);
  EXPECT_NEAR(fitted.gamma_local, truth.gamma_local, 1e-6);
  EXPECT_NEAR(fitted.gamma_broadcast, truth.gamma_broadcast, 1e-6);
  EXPECT_NEAR(fitted.gamma_repartition, truth.gamma_repartition, 1e-6);
}

TEST(CalibrateTest, ToleratesNoise) {
  CostParams truth;
  truth.num_nodes = 10;  // defaults are the Table II values
  Rng rng(78);
  std::vector<CalibrationSample> samples;
  for (int i = 0; i < 400; ++i) {
    samples.push_back(MakeSample(JoinMethod::kBroadcast, truth, rng, 0.2));
    samples.push_back(
        MakeSample(JoinMethod::kRepartition, truth, rng, 0.2));
  }
  CostParams fitted = CalibrateCostParams(samples, truth);
  EXPECT_NEAR(fitted.beta_broadcast, truth.beta_broadcast,
              truth.beta_broadcast * 0.3);
  EXPECT_NEAR(fitted.beta_repartition, truth.beta_repartition,
              truth.beta_repartition * 0.3);
}

TEST(CalibrateTest, KeepsInitialWhenUnderdetermined) {
  CostParams initial;
  initial.beta_broadcast = 0.123;
  std::vector<CalibrationSample> samples;  // only 1 broadcast sample
  CalibrationSample s;
  s.method = JoinMethod::kBroadcast;
  s.input_cards = {10, 20};
  s.output_card = 5;
  s.seconds = 1;
  samples.push_back(s);
  CostParams fitted = CalibrateCostParams(samples, initial);
  EXPECT_DOUBLE_EQ(fitted.beta_broadcast, 0.123);
}

TEST(CalibrateTest, CoefficientsAreNeverNegative) {
  // Adversarial samples: zero-time executions force the fit toward 0.
  std::vector<CalibrationSample> samples;
  Rng rng(79);
  for (int i = 0; i < 20; ++i) {
    CalibrationSample s;
    s.method = JoinMethod::kRepartition;
    s.input_cards = {static_cast<double>(rng.Uniform(1, 100)),
                     static_cast<double>(rng.Uniform(1, 100))};
    s.output_card = static_cast<double>(rng.Uniform(1, 100));
    s.seconds = 0;
    samples.push_back(s);
  }
  CostParams fitted = CalibrateCostParams(samples, CostParams{});
  EXPECT_GE(fitted.alpha, 0);
  EXPECT_GE(fitted.beta_repartition, 0);
  EXPECT_GE(fitted.gamma_repartition, 0);
}

}  // namespace
}  // namespace parqo
