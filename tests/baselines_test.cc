// MSC and DP-Bushy baseline tests, plus TD-Auto's decision tree and the
// cross-algorithm optimality property (TD-CMD enumerates a superset of
// every other algorithm's plan space, so its plan cost lower-bounds all
// of them).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "optimizer/dp_bushy.h"
#include "optimizer/msc.h"
#include "optimizer/optimizer.h"
#include "optimizer/td_auto.h"
#include "optimizer/td_cmd.h"
#include "plan/validate.h"
#include <functional>

#include "tests/optimizer_test_util.h"
#include "tests/test_util.h"

namespace parqo {
namespace {

using testing::QueryFixture;

TEST(MscTest, ChainHasExactlyOneFlatPlan) {
  // Table VII: MSC enumerates exactly one plan for the 8-pattern chain
  // (the unique perfect tiling by adjacent pairs at every level).
  Rng rng(41);
  QueryFixture fx(GenerateRandomQuery(QueryShape::kChain, 8, rng),
                  /*use_hash_locality=*/false);
  OptimizeResult r = RunMsc(fx.inputs(), OptimizeOptions{});
  ASSERT_NE(r.plan, nullptr);
  EXPECT_EQ(r.enumerated, 1u);
  EXPECT_TRUE(ValidatePlan(*r.plan, fx.jg(), nullptr).ok());
  // Flat: 8 -> 4 -> 2 -> 1 relations = 3 join levels.
  EXPECT_EQ(r.plan->JoinDepth(), 3);
}

TEST(MscTest, PlansAreFlatterThanLeftDeep) {
  Rng rng(42);
  QueryFixture fx(GenerateRandomQuery(QueryShape::kTree, 9, rng));
  OptimizeResult r = RunMsc(fx.inputs(), OptimizeOptions{});
  ASSERT_NE(r.plan, nullptr);
  EXPECT_TRUE(
      ValidatePlan(*r.plan, fx.jg(), fx.inputs().local_index).ok());
  // A flat plan of a 9-pattern query needs at most ceil(log2(9)) + 1
  // levels of k-way joins.
  EXPECT_LE(r.plan->JoinDepth(), 5);
}

TEST(MscTest, NeverUsesBroadcastJoins) {
  for (QueryShape shape : {QueryShape::kChain, QueryShape::kTree,
                           QueryShape::kDense}) {
    Rng rng(43);
    QueryFixture fx(GenerateRandomQuery(shape, 8, rng));
    OptimizeResult r = RunMsc(fx.inputs(), OptimizeOptions{});
    ASSERT_NE(r.plan, nullptr) << ToString(shape);
    std::function<void(const PlanNode&)> check = [&](const PlanNode& n) {
      if (n.kind == PlanNode::Kind::kJoin) {
        EXPECT_NE(n.method, JoinMethod::kBroadcast);
      }
      for (const PlanNodePtr& c : n.children) check(*c);
    };
    check(*r.plan);
  }
}

TEST(MscTest, RespectsPlanCap) {
  Rng rng(44);
  QueryFixture fx(GenerateRandomQuery(QueryShape::kDense, 10, rng));
  OptimizeOptions options;
  options.msc_plan_cap = 3;
  OptimizeResult r = RunMsc(fx.inputs(), options);
  EXPECT_LE(r.enumerated, 3u);
  EXPECT_NE(r.plan, nullptr);  // best-so-far still returned
}

TEST(DpBushyTest, ProducesValidPlans) {
  for (QueryShape shape : {QueryShape::kChain, QueryShape::kCycle,
                           QueryShape::kTree, QueryShape::kDense}) {
    Rng rng(45);
    QueryFixture fx(GenerateRandomQuery(shape, 8, rng));
    OptimizeResult r = RunDpBushy(fx.inputs(), OptimizeOptions{});
    ASSERT_NE(r.plan, nullptr) << ToString(shape);
    EXPECT_TRUE(
        ValidatePlan(*r.plan, fx.jg(), fx.inputs().local_index).ok())
        << ToString(shape);
    EXPECT_GT(r.enumerated, 0u);
  }
}

TEST(DpBushyTest, ChainBinarySplitsMatchTdCmdSpace) {
  // For chains every cmd is binary and DP-Bushy's valid splits coincide
  // with the cbds, so the enumerated counts agree.
  Rng rng(46);
  GeneratedQuery q = GenerateRandomQuery(QueryShape::kChain, 8, rng);
  QueryFixture fx1(q, false), fx2(q, false);
  OptimizeResult dp = RunDpBushy(fx1.inputs(), OptimizeOptions{});
  OptimizeResult td = RunTdCmd(fx2.inputs(), OptimizeOptions{}, false);
  EXPECT_EQ(dp.enumerated, td.enumerated);
}

TEST(DpBushyTest, ExploresFewerPlansOnDenseQueries) {
  // Table VII: DP-Bushy's space is far smaller than TD-CMD's on dense
  // queries (it misses most multi-way divisions).
  Rng rng(47);
  GeneratedQuery q = GenerateRandomQuery(QueryShape::kDense, 10, rng);
  QueryFixture fx1(q, false), fx2(q, false);
  OptimizeResult dp = RunDpBushy(fx1.inputs(), OptimizeOptions{});
  OptimizeResult td = RunTdCmd(fx2.inputs(), OptimizeOptions{}, false);
  ASSERT_FALSE(td.timed_out);
  EXPECT_LT(dp.enumerated, td.enumerated);
}

TEST(TdAutoTest, DecisionTreeFollowsFigure5) {
  OptimizeOptions options;  // theta_d=5, theta_n=30, lambda_n=14
  Rng rng(48);

  // Chain: ratio >= 1, low degrees -> TD-CMD.
  {
    JoinGraph jg(GenerateRandomQuery(QueryShape::kChain, 10, rng).patterns);
    EXPECT_EQ(TdAutoChoice(jg, options), Algorithm::kTdCmd);
  }
  // Star with 10 patterns: degree 10 >= theta_d, 10 < theta_n -> TD-CMDP.
  {
    JoinGraph jg(GenerateRandomQuery(QueryShape::kStar, 10, rng).patterns);
    EXPECT_EQ(TdAutoChoice(jg, options), Algorithm::kTdCmdp);
  }
  // Star with 32 patterns: degree high, size >= theta_n -> HGR.
  {
    JoinGraph jg(GenerateRandomQuery(QueryShape::kStar, 32, rng).patterns);
    EXPECT_EQ(TdAutoChoice(jg, options), Algorithm::kHgrTdCmd);
  }
  // Dense with many cycles (ratio < 1): small -> TD-CMD, large -> HGR.
  // K4-style: every pair of the four patterns shares a distinct
  // variable, giving 6 join variables over 4 patterns.
  {
    std::vector<TriplePattern> k4{
        testing::Tp("?x", "?y", "?z"), testing::Tp("?x", "?u", "?v"),
        testing::Tp("?y", "?u", "?w"), testing::Tp("?z", "?v", "?w")};
    JoinGraph jg(k4);
    ASSERT_LT(TpToJoinVarRatio(jg), 1.0);
    EXPECT_EQ(TdAutoChoice(jg, options), Algorithm::kTdCmd);
    OptimizeOptions tight = options;
    tight.lambda_n = 3;
    EXPECT_EQ(TdAutoChoice(jg, tight), Algorithm::kHgrTdCmd);
  }
}

TEST(TdAutoTest, ReportsTheAlgorithmUsed) {
  Rng rng(49);
  QueryFixture fx(GenerateRandomQuery(QueryShape::kChain, 8, rng));
  OptimizeResult r = RunTdAuto(fx.inputs(), OptimizeOptions{});
  ASSERT_NE(r.plan, nullptr);
  EXPECT_EQ(r.algorithm_used, Algorithm::kTdCmd);
}

// TD-CMD's plan space is a superset of every other algorithm's, so with
// the shared cost model its plan cost is a lower bound for all of them.
struct OptimalityCase {
  QueryShape shape;
  int n;
  std::uint64_t seed;
};

class OptimalityTest : public ::testing::TestWithParam<OptimalityCase> {};

TEST_P(OptimalityTest, TdCmdLowerBoundsEveryAlgorithm) {
  Rng rng(GetParam().seed);
  GeneratedQuery q =
      GenerateRandomQuery(GetParam().shape, GetParam().n, rng);
  QueryFixture reference_fx(q);
  OptimizeOptions options;
  OptimizeResult reference =
      Optimize(Algorithm::kTdCmd, reference_fx.inputs(), options);
  ASSERT_NE(reference.plan, nullptr);

  for (Algorithm algo :
       {Algorithm::kTdCmdp, Algorithm::kHgrTdCmd, Algorithm::kTdAuto,
        Algorithm::kMsc, Algorithm::kDpBushy, Algorithm::kBinaryDp}) {
    QueryFixture fx(q);
    OptimizeResult r = Optimize(algo, fx.inputs(), options);
    ASSERT_NE(r.plan, nullptr) << ToString(algo);
    EXPECT_TRUE(ValidatePlan(*r.plan, fx.jg(), fx.inputs().local_index)
                    .ok())
        << ToString(algo);
    EXPECT_GE(r.plan->total_cost, reference.plan->total_cost - 1e-9)
        << ToString(algo);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OptimalityTest,
    ::testing::Values(OptimalityCase{QueryShape::kStar, 6, 51},
                      OptimalityCase{QueryShape::kChain, 8, 52},
                      OptimalityCase{QueryShape::kCycle, 8, 53},
                      OptimalityCase{QueryShape::kTree, 9, 54},
                      OptimalityCase{QueryShape::kTree, 11, 55},
                      OptimalityCase{QueryShape::kDense, 8, 56},
                      OptimalityCase{QueryShape::kDense, 10, 57}),
    [](const ::testing::TestParamInfo<OptimalityCase>& param_info) {
      return ToString(param_info.param.shape) +
             std::to_string(param_info.param.n);
    });

}  // namespace
}  // namespace parqo
