// Query graph (G_Q) construction and forward reachability — the
// ingredients of combine(v, G_Q) for the partitioning model.

#include "query/query_graph.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace parqo {
namespace {

using testing::Figure1Query;
using testing::Tp;

TEST(QueryGraphTest, VerticesAreSubjectsAndObjects) {
  JoinGraph jg({Tp("?x", "p", "?y"), Tp("?y", "q", "c")});
  QueryGraph qg(jg);
  // Vertices: ?x, ?y, c. The predicates are edge labels, not vertices.
  EXPECT_EQ(qg.num_vertices(), 3);
  int vy = qg.VertexOfVar(jg.FindVar("y"));
  ASSERT_GE(vy, 0);
  EXPECT_EQ(qg.vertex(vy).in_tps, TpSet::Singleton(0));
  EXPECT_EQ(qg.vertex(vy).out_tps, TpSet::Singleton(1));
  EXPECT_EQ(qg.vertex(vy).IncidentTps().Count(), 2);
}

TEST(QueryGraphTest, SharedConstantsAreOneVertex) {
  JoinGraph jg({Tp("c", "p", "?x"), Tp("c", "q", "?y")});
  QueryGraph qg(jg);
  EXPECT_EQ(qg.num_vertices(), 3);  // c, ?x, ?y
  // The constant vertex has both out-edges.
  bool found = false;
  for (int i = 0; i < qg.num_vertices(); ++i) {
    if (!qg.vertex(i).is_var) {
      EXPECT_EQ(qg.vertex(i).out_tps.Count(), 2);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(QueryGraphTest, ForwardReachabilityExample5) {
  // Example 5: with path partitioning, the maximal local query at ?b of
  // the Figure 1 query is {tp1, tp3, tp4, tp5, tp7} — everything
  // forward-reachable from ?b.
  JoinGraph jg(Figure1Query());
  QueryGraph qg(jg);
  int vb = qg.VertexOfVar(jg.FindVar("b"));
  ASSERT_GE(vb, 0);
  TpSet reach = qg.ForwardReachableTps(vb, /*max_hops=*/-1);
  TpSet expected;
  expected.Add(0);  // tp1
  expected.Add(2);  // tp3
  expected.Add(3);  // tp4
  expected.Add(4);  // tp5
  expected.Add(6);  // tp7
  EXPECT_EQ(reach, expected);
}

TEST(QueryGraphTest, ForwardReachabilityHopLimits) {
  JoinGraph jg(Figure1Query());
  QueryGraph qg(jg);
  int vb = qg.VertexOfVar(jg.FindVar("b"));
  // 1 hop from ?b: tp1 (?b p1 ?a) and tp5 (?b p5 ?f).
  TpSet one = qg.ForwardReachableTps(vb, 1);
  TpSet expected1;
  expected1.Add(0);
  expected1.Add(4);
  EXPECT_EQ(one, expected1);
  // 2 hops adds ?a's out-edges tp3 and tp7.
  TpSet two = qg.ForwardReachableTps(vb, 2);
  TpSet expected2 = expected1;
  expected2.Add(2);
  expected2.Add(6);
  EXPECT_EQ(two, expected2);
  // 0 hops reaches nothing.
  EXPECT_TRUE(qg.ForwardReachableTps(vb, 0).Empty());
}

TEST(QueryGraphTest, CyclesTerminate) {
  JoinGraph jg({Tp("?a", "p", "?b"), Tp("?b", "q", "?a")});
  QueryGraph qg(jg);
  TpSet reach = qg.ForwardReachableTps(0, -1);
  EXPECT_EQ(reach.Count(), 2);
}

}  // namespace
}  // namespace parqo
