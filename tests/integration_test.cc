// End-to-end integration: generate data, parse the benchmark queries,
// partition, optimize with every algorithm, execute on the simulated
// cluster, and require that (a) every plan validates, (b) every
// algorithm/partitioning combination returns exactly the same result set,
// and (c) that set equals the reference evaluator's matches over the
// unpartitioned graph. This pins down the whole pipeline of the paper's
// Section V-B experiment at test scale.

#include <gtest/gtest.h>

#include <memory>

#include "exec/cluster.h"
#include "exec/executor.h"
#include "optimizer/prepared_query.h"
#include "partition/hash_so.h"
#include "partition/min_edge_cut.h"
#include "partition/path_bmc.h"
#include "partition/two_hop.h"
#include "plan/validate.h"
#include "sparql/parser.h"
#include "tests/test_util.h"
#include "workload/benchmark_queries.h"
#include "workload/lubm.h"
#include "workload/uniprot.h"

namespace parqo {
namespace {

constexpr int kNodes = 4;

const RdfGraph& LubmGraph() {
  // parqo-lint: allow(naked-new) leaked cached dataset
  static const RdfGraph& g = *new RdfGraph([] {
    LubmConfig cfg;
    cfg.universities = 2;
    return GenerateLubm(cfg);
  }());
  return g;
}

const RdfGraph& UniprotGraph() {
  // parqo-lint: allow(naked-new) leaked cached dataset
  static const RdfGraph& g = *new RdfGraph([] {
    UniprotConfig cfg;
    cfg.proteins = 400;
    return GenerateUniprot(cfg);
  }());
  return g;
}

// Normalizes an executor result to reference-evaluator row format.
std::set<std::vector<TermId>> Normalize(const BindingTable& t,
                                        const JoinGraph& jg) {
  std::set<std::vector<TermId>> rows;
  for (std::size_t r = 0; r < t.NumRows(); ++r) {
    std::vector<TermId> row;
    for (VarId v = 0; v < jg.num_vars(); ++v) {
      int c = t.ColumnOf(v);
      row.push_back(c < 0 ? kInvalidTermId : t.At(r, c));
    }
    rows.insert(row);
  }
  return rows;
}

class IntegrationTest : public ::testing::TestWithParam<BenchmarkQuery> {};

TEST_P(IntegrationTest, AllAlgorithmsAndPartitioningsAgree) {
  const BenchmarkQuery& bq = GetParam();
  const RdfGraph& graph = bq.lubm ? LubmGraph() : UniprotGraph();

  auto parsed = ParseSparql(bq.sparql);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  JoinGraph reference_jg(parsed->patterns);
  std::set<std::vector<TermId>> expected =
      testing::ReferenceEvaluate(reference_jg, graph);

  OptimizeOptions options;
  options.cost_params.num_nodes = kNodes;
  options.timeout_seconds = 60;

  HashSoPartitioner hash;
  TwoHopForwardPartitioner two_hop;
  PathBmcPartitioner path;
  MinEdgeCutPartitioner min_cut;

  struct Combo {
    const Partitioner* partitioner;
    Algorithm algorithm;
  };
  std::vector<Combo> combos;
  for (Algorithm a :
       {Algorithm::kTdCmd, Algorithm::kTdCmdp, Algorithm::kHgrTdCmd,
        Algorithm::kTdAuto, Algorithm::kMsc, Algorithm::kDpBushy}) {
    combos.push_back({&hash, a});
  }
  // Only the partition-aware optimizer runs on the other methods
  // (Section V-B).
  combos.push_back({&two_hop, Algorithm::kTdAuto});
  combos.push_back({&path, Algorithm::kTdAuto});
  combos.push_back({&min_cut, Algorithm::kTdAuto});

  double tdcmd_cost = -1;
  for (const Combo& combo : combos) {
    SCOPED_TRACE(ToString(combo.algorithm) + " on " +
                 combo.partitioner->name());
    PreparedQuery pq(parsed->patterns, *combo.partitioner,
                     StatsFromData(graph));
    OptimizeResult r = Optimize(combo.algorithm, pq.inputs(), options);
    ASSERT_NE(r.plan, nullptr);
    ASSERT_TRUE(
        ValidatePlan(*r.plan, pq.join_graph(), &pq.local_index()).ok());
    if (combo.algorithm == Algorithm::kTdCmd) {
      tdcmd_cost = r.plan->total_cost;
    } else if (combo.partitioner == &hash && tdcmd_cost >= 0) {
      EXPECT_GE(r.plan->total_cost, tdcmd_cost - 1e-9);
    }

    PartitionAssignment assignment =
        combo.partitioner->PartitionData(graph, kNodes);
    Cluster cluster(graph, assignment);
    Executor executor(cluster, pq.join_graph(), options.cost_params);
    ExecMetrics metrics;
    auto result = executor.Execute(*r.plan, &metrics);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(Normalize(*result, pq.join_graph()), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Benchmark, IntegrationTest, ::testing::ValuesIn(AllBenchmarkQueries()),
    [](const ::testing::TestParamInfo<BenchmarkQuery>& param_info) {
      return param_info.param.name;
    });

TEST(IntegrationSmokeTest, SomeQueriesHaveResults) {
  // Guard against a silently empty benchmark: the cheap star/chain
  // queries must return rows at this scale.
  for (const char* name : {"L1", "L2", "L4", "U5"}) {
    const BenchmarkQuery& bq = GetBenchmarkQuery(name);
    const RdfGraph& graph = bq.lubm ? LubmGraph() : UniprotGraph();
    auto parsed = ParseSparql(bq.sparql);
    ASSERT_TRUE(parsed.ok());
    JoinGraph jg(parsed->patterns);
    EXPECT_FALSE(testing::ReferenceEvaluate(jg, graph).empty()) << name;
  }
}

}  // namespace
}  // namespace parqo
