// Helpers to run optimizers on generated queries inside tests.

#ifndef PARQO_TESTS_OPTIMIZER_TEST_UTIL_H_
#define PARQO_TESTS_OPTIMIZER_TEST_UTIL_H_

#include <memory>

#include "optimizer/optimizer.h"
#include "partition/hash_so.h"
#include "partition/local_query_index.h"
#include "query/join_graph.h"
#include "query/query_graph.h"
#include "stats/estimator.h"
#include "workload/random_query.h"

namespace parqo::testing {

/// Owns the optimizer inputs for one generated query. `use_hash_locality`
/// selects between the Hash-SO local-query index (the experiments'
/// default) and a no-locality index (pure enumeration studies).
class QueryFixture {
 public:
  explicit QueryFixture(const GeneratedQuery& q,
                        bool use_hash_locality = true)
      : jg_(q.patterns), qg_(jg_) {
    if (use_hash_locality) {
      index_ = std::make_unique<LocalQueryIndex>(qg_, hash_);
    } else {
      index_ = std::make_unique<LocalQueryIndex>(
          LocalQueryIndex::None(jg_.num_tps()));
    }
    estimator_ =
        std::make_unique<CardinalityEstimator>(jg_, q.MakeStats(jg_));
  }

  const JoinGraph& jg() const { return jg_; }

  OptimizerInputs inputs() const {
    OptimizerInputs in;
    in.join_graph = &jg_;
    in.query_graph = &qg_;
    in.local_index = index_.get();
    in.estimator = estimator_.get();
    return in;
  }

 private:
  HashSoPartitioner hash_;
  JoinGraph jg_;
  QueryGraph qg_;
  std::unique_ptr<LocalQueryIndex> index_;
  std::unique_ptr<CardinalityEstimator> estimator_;
};

}  // namespace parqo::testing

#endif  // PARQO_TESTS_OPTIMIZER_TEST_UTIL_H_
