// Algorithm 3 (connected multi-division enumeration): Example 4 on the
// Figure 1 query, exactness against brute-force set-partition enumeration
// (Theorem 2), the Section III-D closed forms, and the TD-CMDP ccmd
// pruning mode (Rule 1).

#include "optimizer/cmd_enumerator.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "optimizer/enumeration_stats.h"
#include "tests/test_util.h"
#include "workload/random_query.h"

namespace parqo {
namespace {

using testing::BruteForceCmds;
using testing::Figure1Query;

using CmdKey = std::pair<std::vector<std::uint64_t>, VarId>;

std::set<CmdKey> EnumerateToSet(const JoinGraph& jg, TpSet q, CmdMode mode,
                                std::uint64_t* count = nullptr) {
  std::set<CmdKey> out;
  EnumerateCmds(jg, q, mode, [&](std::span<const TpSet> parts, VarId vj) {
    std::vector<std::uint64_t> bits;
    for (TpSet p : parts) bits.push_back(p.bits());
    std::sort(bits.begin(), bits.end());
    bool inserted = out.emplace(bits, vj).second;
    EXPECT_TRUE(inserted) << "cmd emitted twice (var " << vj << ")";
    if (count != nullptr) ++*count;
    return true;
  });
  return out;
}

TEST(CmdTest, Example4DivisionsArePresent) {
  JoinGraph jg(Figure1Query());
  VarId a = jg.FindVar("a");
  auto got = EnumerateToSet(jg, jg.AllTps(), CmdMode::kAll);

  auto key = [&](std::initializer_list<std::initializer_list<int>> parts,
                 VarId vj) {
    std::vector<std::uint64_t> bits;
    for (auto part : parts) {
      TpSet s;
      for (int tp : part) s.Add(tp - 1);  // paper's tp indexes are 1-based
      bits.push_back(s.bits());
    }
    std::sort(bits.begin(), bits.end());
    return CmdKey{bits, vj};
  };
  // Example 4: ({tp1,tp5}, {tp7}, {tp2,tp6}, {tp3,tp4}, ?a) and
  // ({tp1,tp5,tp7}, {tp2,tp6}, {tp3,tp4}, ?a).
  EXPECT_TRUE(got.count(key({{1, 5}, {7}, {2, 6}, {3, 4}}, a)));
  EXPECT_TRUE(got.count(key({{1, 5, 7}, {2, 6}, {3, 4}}, a)));
}

TEST(CmdTest, MatchesBruteForceOnFigure1) {
  JoinGraph jg(Figure1Query());
  std::uint64_t count = 0;
  auto got = EnumerateToSet(jg, jg.AllTps(), CmdMode::kAll, &count);
  auto expected = BruteForceCmds(jg, jg.AllTps());
  EXPECT_EQ(got, expected);
  EXPECT_EQ(count, expected.size());
}

TEST(CmdTest, StarCountMatchesBellFormula) {
  // A star with n patterns has B_n - 1 cmds on its center variable
  // (every multi-division is connected and touches the center).
  for (int n : {3, 4, 5, 6}) {
    Rng rng(100 + n);
    GeneratedQuery q = GenerateRandomQuery(QueryShape::kStar, n, rng);
    JoinGraph jg(q.patterns);
    std::uint64_t count = 0;
    EnumerateToSet(jg, jg.AllTps(), CmdMode::kAll, &count);
    EXPECT_EQ(count, BellNumber(n) - 1) << "n=" << n;
  }
}

TEST(CmdTest, ChainFullQueryHasMinusOneDivisions) {
  // A chain's cmds are all binary: n-1 cuts.
  Rng rng(9);
  GeneratedQuery q = GenerateRandomQuery(QueryShape::kChain, 8, rng);
  JoinGraph jg(q.patterns);
  std::uint64_t count = 0;
  EnumerateToSet(jg, jg.AllTps(), CmdMode::kAll, &count);
  EXPECT_EQ(count, 7u);
}

TEST(CmdTest, CycleFullQueryHasNTimesNMinusOne) {
  // Section III-D: the full cycle query has n(n-1) cmds.
  Rng rng(10);
  const int n = 7;
  GeneratedQuery q = GenerateRandomQuery(QueryShape::kCycle, n, rng);
  JoinGraph jg(q.patterns);
  std::uint64_t count = 0;
  EnumerateToSet(jg, jg.AllTps(), CmdMode::kAll, &count);
  EXPECT_EQ(count, static_cast<std::uint64_t>(n * (n - 1)));
}

TEST(CmdTest, EveryEmittedCmdSatisfiesDefinition3) {
  JoinGraph jg(Figure1Query());
  EnumerateCmds(jg, jg.AllTps(), CmdMode::kAll,
                [&](std::span<const TpSet> parts, VarId vj) {
                  EXPECT_GE(parts.size(), 2u);
                  TpSet uni;
                  for (TpSet p : parts) {
                    EXPECT_FALSE(p.Empty());
                    EXPECT_FALSE(p.Intersects(uni));  // condition 1
                    uni |= p;
                    EXPECT_TRUE(jg.IsConnected(p));   // condition 3
                    EXPECT_TRUE(p.Intersects(jg.Ntp(vj)));
                  }
                  EXPECT_EQ(uni, jg.AllTps());        // condition 2
                  return true;
                });
}

TEST(CmdTest, PrunedModeKeepsBinaryAndCcmdsOnly) {
  JoinGraph jg(Figure1Query());
  auto all = EnumerateToSet(jg, jg.AllTps(), CmdMode::kAll);
  auto pruned = EnumerateToSet(jg, jg.AllTps(), CmdMode::kCcmdAndBinary);

  // Pruned is a subset of the full space.
  for (const CmdKey& k : pruned) {
    EXPECT_TRUE(all.count(k));
  }
  // Exactly the binary divisions and the complete multi-divisions
  // survive.
  std::set<CmdKey> expected;
  for (const CmdKey& k : all) {
    if (k.first.size() == 2) {
      expected.insert(k);
      continue;
    }
    bool complete = true;
    for (std::uint64_t part : k.first) {
      if ((TpSet(part) & jg.Ntp(k.second)).Count() != 1) complete = false;
    }
    if (complete) expected.insert(k);
  }
  EXPECT_EQ(pruned, expected);
  EXPECT_LT(pruned.size(), all.size());
}

TEST(CmdTest, PrunedModeIdenticalOnChains) {
  // Table VII: TD-CMDP's search space equals TD-CMD's for chains (every
  // cmd is already binary).
  Rng rng(11);
  GeneratedQuery q = GenerateRandomQuery(QueryShape::kChain, 10, rng);
  JoinGraph jg(q.patterns);
  EXPECT_EQ(EnumerateToSet(jg, jg.AllTps(), CmdMode::kAll),
            EnumerateToSet(jg, jg.AllTps(), CmdMode::kCcmdAndBinary));
}

struct SweepCase {
  QueryShape shape;
  int n;
  std::uint64_t seed;
};

class CmdSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(CmdSweepTest, MatchesBruteForce) {
  Rng rng(GetParam().seed);
  for (int rep = 0; rep < 5; ++rep) {
    GeneratedQuery q =
        GenerateRandomQuery(GetParam().shape, GetParam().n, rng);
    JoinGraph jg(q.patterns);
    auto got = EnumerateToSet(jg, jg.AllTps(), CmdMode::kAll);
    auto expected = BruteForceCmds(jg, jg.AllTps());
    ASSERT_EQ(got, expected)
        << ToString(GetParam().shape) << " n=" << GetParam().n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CmdSweepTest,
    ::testing::Values(SweepCase{QueryShape::kStar, 6, 21},
                      SweepCase{QueryShape::kChain, 7, 22},
                      SweepCase{QueryShape::kCycle, 7, 23},
                      SweepCase{QueryShape::kTree, 8, 24},
                      SweepCase{QueryShape::kDense, 8, 25}),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      return ToString(param_info.param.shape) +
             std::to_string(param_info.param.n);
    });

}  // namespace
}  // namespace parqo
