// Shared helpers for the test suite: quick query construction, the Figure 1
// and Figure 4 running examples from the paper, brute-force reference
// implementations of cbd/cmd enumeration, and a reference SPARQL evaluator
// used to check the execution engine end to end.

#ifndef PARQO_TESTS_TEST_UTIL_H_
#define PARQO_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "query/join_graph.h"
#include "rdf/graph.h"
#include "sparql/query.h"

namespace parqo::testing {

/// Builds a triple pattern from three tokens: "?name" makes a variable,
/// anything else an IRI constant.
TriplePattern Tp(const std::string& s, const std::string& p,
                 const std::string& o);

/// The query of Figure 1a (7 triple patterns, join variables
/// ?a ?b ?c ?d ?e as in Figure 1b).
std::vector<TriplePattern> Figure1Query();

/// The join graph of Figure 4: patterns tp1..tp9 (indexes 0..8) around the
/// join variable vj, with {tp1,tp2} and {tp3,tp4} indivisible components
/// and {tp5..tp9} divisible. Returns patterns; vj is the variable "vj".
std::vector<TriplePattern> Figure4Query();

/// Canonical form of an unordered binary division: the side containing
/// the query's lowest pattern first.
std::pair<TpSet, TpSet> CanonicalCbd(TpSet q, TpSet a, TpSet b);

/// Brute force D_cbd(q) on vj by subset enumeration (Definition 3, k=2).
std::set<std::pair<std::uint64_t, std::uint64_t>> BruteForceCbds(
    const JoinGraph& jg, TpSet q, VarId vj);

/// Brute force D_cmd(q) over all join variables by set-partition
/// enumeration; each cmd is (sorted part bitsets, var). Only feasible for
/// |q| <= ~10.
std::set<std::pair<std::vector<std::uint64_t>, VarId>> BruteForceCmds(
    const JoinGraph& jg, TpSet q);

/// Reference evaluator: all matches of the query against the full graph
/// by backtracking, returned as sorted rows over the join graph's
/// variables in ascending VarId order.
std::set<std::vector<TermId>> ReferenceEvaluate(const JoinGraph& jg,
                                                const RdfGraph& graph);

}  // namespace parqo::testing

#endif  // PARQO_TESTS_TEST_UTIL_H_
