// Tests for the common utilities: strings, Status/Result, Rng.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace parqo {
namespace {

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringsTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StringsTest, WithThousandsSep) {
  EXPECT_EQ(WithThousandsSep(0), "0");
  EXPECT_EQ(WithThousandsSep(999), "999");
  EXPECT_EQ(WithThousandsSep(1000), "1,000");
  EXPECT_EQ(WithThousandsSep(75256333), "75,256,333");
}

TEST(StringsTest, FormatCostE) {
  // Matches the paper's Table VI rendering.
  EXPECT_EQ(FormatCostE(31200), "3.12E4");
  EXPECT_EQ(FormatCostE(9.79e6), "9.79E6");
  EXPECT_EQ(FormatCostE(0), "0");
  EXPECT_EQ(FormatCostE(1), "1.00E0");
}

TEST(StringsTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(0.5), "0.500s");
  EXPECT_EQ(FormatSeconds(432.429), "432s");
  EXPECT_EQ(FormatSeconds(0.0004), "0.0004s");
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  Status bad = Status::InvalidArgument("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.message(), "nope");
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  EXPECT_EQ(bad.ToString(), "nope");
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  Result<int> bad = Status::NotFound("missing");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(RngTest, DeterministicAndInRange) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = r.Uniform(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
    double d = r.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    std::int64_t s = r.Skewed(100);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 100);
  }
}

TEST(RngTest, SkewFavorsSmallIndexes) {
  Rng r(9);
  int low = 0, high = 0;
  for (int i = 0; i < 10000; ++i) {
    std::int64_t v = r.Skewed(100);
    if (v < 10) ++low;
    if (v >= 90) ++high;
  }
  EXPECT_GT(low, high * 3);
}

}  // namespace
}  // namespace parqo
