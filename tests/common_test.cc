// Tests for the common utilities: strings, Status/Result, Rng, the
// steady-clock Deadline, and the fault layer's Retry policy.

#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/fault.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"

namespace parqo {
namespace {

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringsTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StringsTest, WithThousandsSep) {
  EXPECT_EQ(WithThousandsSep(0), "0");
  EXPECT_EQ(WithThousandsSep(999), "999");
  EXPECT_EQ(WithThousandsSep(1000), "1,000");
  EXPECT_EQ(WithThousandsSep(75256333), "75,256,333");
}

TEST(StringsTest, FormatCostE) {
  // Matches the paper's Table VI rendering.
  EXPECT_EQ(FormatCostE(31200), "3.12E4");
  EXPECT_EQ(FormatCostE(9.79e6), "9.79E6");
  EXPECT_EQ(FormatCostE(0), "0");
  EXPECT_EQ(FormatCostE(1), "1.00E0");
}

TEST(StringsTest, FormatCostEDecadeBoundaries) {
  // Mantissa rounding must carry into the exponent: a naive
  // log10/pow normalization rendered 999999.9 as "10.00E5".
  EXPECT_EQ(FormatCostE(999999.9), "1.00E6");
  EXPECT_EQ(FormatCostE(999.999), "1.00E3");
  EXPECT_EQ(FormatCostE(9.996), "1.00E1");
  // Just below the rounding threshold stays in the lower decade.
  EXPECT_EQ(FormatCostE(9.994), "9.99E0");
  EXPECT_EQ(FormatCostE(1e6), "1.00E6");
  EXPECT_EQ(FormatCostE(0.001), "1.00E-3");
}

TEST(StringsTest, FormatCostEExtremes) {
  // Denormals: log10-based normalization drifted here; %E is exact.
  EXPECT_EQ(FormatCostE(5e-324), "4.94E-324");
  EXPECT_EQ(FormatCostE(DBL_MIN), "2.23E-308");
  EXPECT_EQ(FormatCostE(DBL_MAX), "1.80E308");
  EXPECT_EQ(FormatCostE(std::numeric_limits<double>::infinity()), "inf");
  // Negative and zero costs can't arise from the cost model, but the
  // formatter must not emit garbage for them.
  EXPECT_EQ(FormatCostE(-1.0), "0");
}

TEST(StringsTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(0.5), "0.500s");
  EXPECT_EQ(FormatSeconds(432.429), "432s");
  EXPECT_EQ(FormatSeconds(0.0004), "0.0004s");
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  Status bad = Status::InvalidArgument("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.message(), "nope");
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  EXPECT_EQ(bad.ToString(), "nope");
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  Result<int> bad = Status::NotFound("missing");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(RngTest, DeterministicAndInRange) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = r.Uniform(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
    double d = r.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    std::int64_t s = r.Skewed(100);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 100);
  }
}

TEST(RngTest, GoldenStreamsUnchanged) {
  // Pinned streams: workload generators depend on these exact draws for
  // cross-platform reproducibility, and the rejection-sampling rewrite
  // of Uniform must not disturb them for in-range inputs (the rejection
  // threshold for small ranges is a handful of values out of 2^64).
  Rng a(2017);
  const std::int64_t kExpectedA[] = {679, 960, 684, 238, 524, 304, 302,
                                     611};
  for (std::int64_t want : kExpectedA) EXPECT_EQ(a.Uniform(0, 999), want);
  Rng b(42);
  const std::int64_t kExpectedB[] = {4, 0, -3, -4, -3, 4, 2, -3};
  for (std::int64_t want : kExpectedB) EXPECT_EQ(b.Uniform(-5, 5), want);
}

TEST(RngTest, UniformFullInt64Domain) {
  // [INT64_MIN, INT64_MAX] has range 2^64, which overflowed to 0 and
  // divided by zero before the fix. Every draw is a valid sample.
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  Rng r(1);
  bool saw_negative = false, saw_positive = false;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = r.Uniform(kMin, kMax);
    saw_negative |= v < 0;
    saw_positive |= v > 0;
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_positive);
}

TEST(RngTest, UniformHugeRanges) {
  // Ranges near (but not at) the full domain exercise the unsigned
  // wrap-around in lo + offset.
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = r.Uniform(kMin, kMax - 1);
    EXPECT_LE(v, kMax - 1);
    std::int64_t w = r.Uniform(kMin + 1, kMax);
    EXPECT_GE(w, kMin + 1);
    EXPECT_EQ(r.Uniform(kMax, kMax), kMax);
    EXPECT_EQ(r.Uniform(kMin, kMin), kMin);
  }
}

TEST(RngTest, UniformUnbiased) {
  // Property test for the rejection sampler: over a range that does NOT
  // divide 2^64 evenly, every value's frequency stays near uniform. With
  // the old `Next() % range` the bias for range 3 is immeasurably small,
  // so instead check a structural property: the sampler must reject draws
  // below threshold = 2^64 mod range and still terminate, while all
  // emitted values stay in range and all values get hit.
  Rng r(11);
  constexpr std::int64_t kRange = 1000003;  // prime, doesn't divide 2^64
  std::vector<int> low_hits(10, 0);
  for (int i = 0; i < 200000; ++i) {
    std::int64_t v = r.Uniform(0, kRange - 1);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, kRange);
    if (v < 10) ++low_hits[v];
  }
  // Expected hits per bucket: 200000/1000003 = 0.2; across 10 buckets we
  // expect ~2 total, so just assert no bucket is wildly hot (a modulo
  // bug that folded the domain would concentrate mass).
  for (int h : low_hits) EXPECT_LE(h, 20);
}

TEST(RngTest, SkewFavorsSmallIndexes) {
  Rng r(9);
  int low = 0, high = 0;
  for (int i = 0; i < 10000; ++i) {
    std::int64_t v = r.Skewed(100);
    if (v < 10) ++low;
    if (v >= 90) ++high;
  }
  EXPECT_GT(low, high * 3);
}

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.IsInfinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.RemainingSeconds(),
            std::numeric_limits<double>::infinity());
  EXPECT_TRUE(Deadline::Infinite().IsInfinite());
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately) {
  Deadline d = Deadline::AfterSeconds(0);
  EXPECT_FALSE(d.IsInfinite());
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingSeconds(), 0.0);  // clamped, never negative
}

TEST(DeadlineTest, GenerousBudgetIsAlive) {
  Deadline d = Deadline::AfterSeconds(3600);
  EXPECT_FALSE(d.Expired());
  double remaining = d.RemainingSeconds();
  EXPECT_GT(remaining, 3500.0);
  EXPECT_LE(remaining, 3600.0);
}

TEST(RetryTest, ZeroAttemptsForbidsEvenTheFirstTry) {
  RetryPolicy policy;
  policy.max_attempts = 0;
  Retry retry(policy, /*seed=*/1);
  EXPECT_FALSE(retry.ShouldRetry());
  EXPECT_EQ(retry.attempts_started(), 0);
}

TEST(RetryTest, BudgetExhaustsAfterMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  Retry retry(policy, /*seed=*/1);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(retry.ShouldRetry());
    EXPECT_EQ(retry.BeginAttempt(), i);
  }
  EXPECT_FALSE(retry.ShouldRetry());
  EXPECT_EQ(retry.attempts_started(), 3);
}

TEST(RetryTest, ExpiredDeadlineForbidsAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  Retry retry(policy, /*seed=*/1, Deadline::AfterSeconds(0));
  EXPECT_FALSE(retry.ShouldRetry());
  // And the backoff collapses to the deadline's (zero) remainder.
  EXPECT_EQ(retry.NextBackoffSeconds(), 0.0);
}

TEST(RetryTest, BackoffSaturatesAtMaxWithoutOverflow) {
  RetryPolicy policy;
  policy.max_attempts = 200;
  policy.initial_backoff_seconds = 1e-3;
  policy.max_backoff_seconds = 0.5;
  policy.backoff_multiplier = 1e100;  // would overflow to inf if grown
  policy.jitter_fraction = 0.0;
  Retry retry(policy, /*seed=*/5);
  EXPECT_EQ(retry.NextBackoffSeconds(), 1e-3);
  for (int i = 0; i < 100; ++i) {
    double wait = retry.NextBackoffSeconds();
    EXPECT_TRUE(std::isfinite(wait));
    EXPECT_EQ(wait, policy.max_backoff_seconds);
  }
}

TEST(RetryTest, JitterStaysWithinFractionAndNeverExceedsMax) {
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.initial_backoff_seconds = 0.010;
  policy.max_backoff_seconds = 0.010;  // constant base isolates jitter
  policy.backoff_multiplier = 1.0;
  policy.jitter_fraction = 0.25;
  Retry retry(policy, /*seed=*/77);
  for (int i = 0; i < 500; ++i) {
    double wait = retry.NextBackoffSeconds();
    EXPECT_GE(wait, 0.010 * 0.75 - 1e-12);
    EXPECT_LE(wait, 0.010);  // clamped at max even with +25% jitter
  }
}

TEST(RetryTest, JitterIsDeterministicUnderFixedSeed) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.001;
  policy.max_attempts = 50;
  Retry a(policy, /*seed=*/123), b(policy, /*seed=*/123);
  bool any_difference_from_other_seed = false;
  Retry c(policy, /*seed=*/124);
  for (int i = 0; i < 20; ++i) {
    double wa = a.NextBackoffSeconds();
    EXPECT_EQ(wa, b.NextBackoffSeconds());
    if (wa != c.NextBackoffSeconds()) any_difference_from_other_seed = true;
  }
  EXPECT_TRUE(any_difference_from_other_seed);
}

TEST(FaultPlanTest, CrashFiresExactlyOnce) {
  FaultPlan plan(2);
  plan.CrashNodeAtOp(0, 2);
  EXPECT_TRUE(plan.BeginNodeOp(0));   // op 0
  EXPECT_TRUE(plan.BeginNodeOp(0));   // op 1
  EXPECT_FALSE(plan.BeginNodeOp(0));  // op 2: fires
  EXPECT_TRUE(plan.BeginNodeOp(0));   // consumed; recovery not re-killed
  EXPECT_TRUE(plan.BeginNodeOp(1));   // other node untouched
  EXPECT_EQ(plan.crashes_fired(), 1u);
}

TEST(FaultPlanTest, ScopeInstallsAndRestores) {
  EXPECT_EQ(ActiveFaultPlan(), nullptr);
  FaultPlan outer(1), inner(1);
  {
    FaultScope a(&outer);
    EXPECT_EQ(ActiveFaultPlan(), &outer);
    {
      FaultScope b(&inner);
      EXPECT_EQ(ActiveFaultPlan(), &inner);
    }
    EXPECT_EQ(ActiveFaultPlan(), &outer);
  }
  EXPECT_EQ(ActiveFaultPlan(), nullptr);
}

TEST(FaultPlanTest, DropRateIsSeededAndRoughlyBernoulli) {
  FaultPlan plan(1);
  plan.DropShipments(0.3, /*seed=*/9);
  int dropped = 0;
  for (int i = 0; i < 10000; ++i) {
    if (!plan.DeliverShipment()) ++dropped;
  }
  EXPECT_EQ(plan.drops_fired(), static_cast<std::uint64_t>(dropped));
  EXPECT_GT(dropped, 2500);
  EXPECT_LT(dropped, 3500);

  FaultPlan replay(1);
  replay.DropShipments(0.3, /*seed=*/9);
  int replay_dropped = 0;
  for (int i = 0; i < 10000; ++i) {
    if (!replay.DeliverShipment()) ++replay_dropped;
  }
  EXPECT_EQ(dropped, replay_dropped);
}

}  // namespace
}  // namespace parqo
