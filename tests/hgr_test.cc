// Join-graph reduction (Section IV-B) and HGR-TD-CMD tests.

#include "optimizer/hgr_td_cmd.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "optimizer/cbd_enumerator.h"
#include "optimizer/grouped_graph.h"
#include "optimizer/join_graph_reduction.h"
#include "optimizer/td_cmd.h"
#include "partition/hash_so.h"
#include "partition/path_bmc.h"
#include "plan/validate.h"
#include "tests/optimizer_test_util.h"
#include "tests/test_util.h"

namespace parqo {
namespace {

using testing::Figure1Query;
using testing::QueryFixture;

TEST(ConnectedSubqueryEnumerationTest, CountsAndConnectivity) {
  JoinGraph jg(Figure1Query());
  std::vector<TpSet> subs =
      EnumerateConnectedSubqueries(jg, jg.AllTps(), 100000);
  // Every result is connected and within range; all distinct.
  std::set<std::uint64_t> seen;
  for (TpSet s : subs) {
    EXPECT_TRUE(jg.IsConnected(s)) << s.ToString();
    EXPECT_TRUE(seen.insert(s.bits()).second);
  }
  // Brute-force count of connected subsets.
  std::size_t expected = 0;
  for (std::uint64_t sub = 1; sub < (1ull << jg.num_tps()); ++sub) {
    if (jg.IsConnected(TpSet(sub))) ++expected;
  }
  EXPECT_EQ(subs.size(), expected);
}

TEST(ConnectedSubqueryEnumerationTest, CapIsHonored) {
  JoinGraph jg(Figure1Query());
  std::vector<TpSet> subs =
      EnumerateConnectedSubqueries(jg, jg.AllTps(), 5);
  EXPECT_EQ(subs.size(), 5u);
}

TEST(JgrTest, GroupsAreDisjointLocalAndCovering) {
  JoinGraph jg(Figure1Query());
  QueryGraph qg(jg);
  HashSoPartitioner hash;
  LocalQueryIndex index(qg, hash);

  QueryStatistics stats(jg);
  for (int tp = 0; tp < jg.num_tps(); ++tp) {
    stats.SetCardinality(tp, 100 + tp);
    // Flat binding counts keep join estimates near the input sizes, so
    // the greedy ratio favors larger local groups.
    for (VarId v : jg.VarsOf(tp)) stats.SetBindings(tp, v, 100 + tp);
  }
  CardinalityEstimator est(jg, std::move(stats));

  JgrResult jgr = ReduceJoinGraph(jg, index, est, 4096);
  TpSet covered;
  for (TpSet g : jgr.groups) {
    EXPECT_FALSE(g.Empty());
    EXPECT_FALSE(g.Intersects(covered));
    covered |= g;
    EXPECT_TRUE(jg.IsConnected(g)) << g.ToString();
    EXPECT_TRUE(index.IsLocal(g)) << g.ToString();
  }
  EXPECT_EQ(covered, jg.AllTps());
  // Hash-SO collapses the Figure 1 query below 7 singleton groups.
  EXPECT_LT(jgr.groups.size(), 7u);
}

TEST(JgrTest, TieBreakIsCanonicalNotHashOrder) {
  // Regression: the greedy cover used to scan candidates in the pool's
  // unordered_set hash order, so when two candidates tied on
  // (ratio, gain) the grouping — and with it the final plan — depended
  // on hash order. Minimized trigger: a 6-pattern chain with the two
  // overlapping MLQ pairs {tp2,tp3} and {tp3,tp4}, which tie exactly
  // under flat statistics. Canonical (sorted-by-bits) order must group
  // {tp2,tp3} — the pool's hash order picked {tp3,tp4} here.
  std::vector<TriplePattern> chain{
      testing::Tp("?a", "<p1>", "?b"), testing::Tp("?b", "<p2>", "?c"),
      testing::Tp("?c", "<p3>", "?d"), testing::Tp("?d", "<p4>", "?e"),
      testing::Tp("?e", "<p5>", "?f"), testing::Tp("?f", "<p6>", "?g")};
  JoinGraph jg(chain);

  TpSet mid_lo;  // {2,3} = bits 12
  mid_lo.Add(2);
  mid_lo.Add(3);
  TpSet mid_hi;  // {3,4} = bits 24
  mid_hi.Add(3);
  mid_hi.Add(4);
  LocalQueryIndex index({mid_lo, mid_hi});

  QueryStatistics flat(jg);
  for (int tp = 0; tp < jg.num_tps(); ++tp) {
    flat.SetCardinality(tp, 100);
    for (VarId v : jg.VarsOf(tp)) flat.SetBindings(tp, v, 100);
  }
  CardinalityEstimator est(jg, std::move(flat));

  JgrResult jgr = ReduceJoinGraph(jg, index, est, 4096);
  std::vector<TpSet> expected{mid_lo, TpSet::Singleton(0),
                              TpSet::Singleton(1), TpSet::Singleton(4),
                              TpSet::Singleton(5)};
  EXPECT_EQ(jgr.groups, expected);
}

TEST(GroupedGraphTest, ReducedStructure) {
  JoinGraph jg(Figure1Query());
  // Groups: {tp1,tp2,tp3,tp7} (the ?a star) / {tp5} / {tp6} / {tp4}.
  TpSet star_a;
  star_a.Add(0);
  star_a.Add(1);
  star_a.Add(2);
  star_a.Add(6);
  std::vector<TpSet> groups{star_a, TpSet::Singleton(4),
                            TpSet::Singleton(5), TpSet::Singleton(3)};
  GroupedJoinGraph gg(jg, groups);
  EXPECT_EQ(gg.num_tps(), 4);
  EXPECT_TRUE(gg.IsConnected(gg.AllTps()));
  // Reduced join variables: ?b (group0-tp5), ?c (group0-tp6),
  // ?d (group0-tp6), ?e (group0-tp4). ?a is internal to group 0.
  EXPECT_EQ(gg.join_vars().size(), 4u);
  EXPECT_EQ(gg.ExpandTps(gg.AllTps()), jg.AllTps());
  EXPECT_EQ(gg.GroupTps(0), star_a);
  // Every reduced join variable touches group 0.
  for (VarId v : gg.join_vars()) {
    EXPECT_TRUE(gg.Ntp(v).Contains(0));
    EXPECT_EQ(gg.Degree(v, gg.AllTps()), 2);
  }
}

TEST(GroupedGraphTest, CbdEnumerationMatchesBruteForceOnGroups) {
  // Algorithm 2 must be exact on the reduced graph too: compare against
  // subset enumeration using the grouped graph's own connectivity.
  JoinGraph jg(testing::Figure1Query());
  TpSet star_a;
  star_a.Add(0);
  star_a.Add(1);
  star_a.Add(2);
  star_a.Add(6);
  GroupedJoinGraph gg(jg, {star_a, TpSet::Singleton(4),
                           TpSet::Singleton(5), TpSet::Singleton(3)});

  for (VarId vj : gg.join_vars()) {
    if (gg.Degree(vj, gg.AllTps()) < 2) continue;
    // Brute force over group subsets.
    std::set<std::pair<std::uint64_t, std::uint64_t>> expected;
    TpSet all = gg.AllTps();
    TpSet ntp = gg.Ntp(vj) & all;
    for (std::uint64_t sub = (all.bits() - 1) & all.bits(); sub != 0;
         sub = (sub - 1) & all.bits()) {
      TpSet a(sub);
      TpSet b = all - a;
      if (b.Empty()) continue;
      if (!a.Intersects(ntp) || !b.Intersects(ntp)) continue;
      if (!gg.IsConnected(a) || !gg.IsConnected(b)) continue;
      auto [x, y] = testing::CanonicalCbd(all, a, b);
      expected.emplace(x.bits(), y.bits());
    }
    std::set<std::pair<std::uint64_t, std::uint64_t>> got;
    EnumerateCbds(gg, all, vj, [&](TpSet a, TpSet b) {
      auto [x, y] = testing::CanonicalCbd(all, a, b);
      EXPECT_TRUE(got.emplace(x.bits(), y.bits()).second)
          << "duplicate cbd on reduced graph";
      return true;
    });
    EXPECT_EQ(got, expected) << "var " << jg.var_name(vj);
  }
}

TEST(HgrTest, ProducesValidPlansAndShrinksSearchSpace) {
  for (QueryShape shape :
       {QueryShape::kTree, QueryShape::kDense, QueryShape::kStar}) {
    Rng rng(31);
    GeneratedQuery q = GenerateRandomQuery(shape, 12, rng);
    QueryFixture fx(q);
    OptimizeOptions options;
    OptimizeResult hgr = RunHgrTdCmd(fx.inputs(), options);
    ASSERT_NE(hgr.plan, nullptr) << ToString(shape);
    EXPECT_TRUE(
        ValidatePlan(*hgr.plan, fx.jg(), fx.inputs().local_index).ok())
        << ToString(shape);

    QueryFixture fx2(q);
    OptimizeResult full = RunTdCmd(fx2.inputs(), options, false);
    ASSERT_NE(full.plan, nullptr);
    EXPECT_LE(hgr.enumerated, full.enumerated) << ToString(shape);
    // The reduced space cannot beat the full optimum.
    EXPECT_GE(hgr.plan->total_cost, full.plan->total_cost)
        << ToString(shape);
  }
}

TEST(HgrTest, FullyLocalQueryCollapsesToOneGroup) {
  // Under Path-BMC a chain query is a single local query; with uniform
  // statistics (flat 1000-row estimates, so the greedy ratio strictly
  // favors coverage) HGR collapses it to one group and returns the
  // one-operator local plan without any enumeration.
  Rng rng(32);
  GeneratedQuery q = GenerateRandomQuery(QueryShape::kChain, 6, rng);
  JoinGraph jg(q.patterns);
  QueryGraph qg(jg);
  PathBmcPartitioner path;
  LocalQueryIndex index(qg, path);
  QueryStatistics flat(jg);
  for (int tp = 0; tp < jg.num_tps(); ++tp) {
    flat.SetCardinality(tp, 1000);
    for (VarId v : jg.VarsOf(tp)) flat.SetBindings(tp, v, 1000);
  }
  CardinalityEstimator est(jg, std::move(flat));
  OptimizerInputs in;
  in.join_graph = &jg;
  in.query_graph = &qg;
  in.local_index = &index;
  in.estimator = &est;

  OptimizeResult r = RunHgrTdCmd(in, OptimizeOptions{});
  ASSERT_NE(r.plan, nullptr);
  EXPECT_EQ(r.plan->method, JoinMethod::kLocal);
  EXPECT_EQ(r.enumerated, 0u);
  EXPECT_TRUE(ValidatePlan(*r.plan, jg, &index).ok());
}

}  // namespace
}  // namespace parqo
