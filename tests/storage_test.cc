// Compressed storage subsystem tests (DESIGN.md section 17): varbyte and
// leaf-page round-trips, page-boundary seeks, permutation agreement,
// aggregated counts vs brute force, NodeStore scan regressions for the
// patterns that used to degenerate to full filter passes, merge-join vs
// hash-join bit-identity, and exact pairwise join statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "exec/join_kernel.h"
#include "exec/node_store.h"
#include "exec/reference_join.h"
#include "rdf/ntriples.h"
#include "stats/data_stats.h"
#include "stats/estimator.h"
#include "storage/compressed_index.h"
#include "storage/dataset_index.h"
#include "storage/varbyte.h"
#include "tests/test_util.h"

namespace parqo {
namespace {

using testing::Tp;

TEST(VarbyteTest, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  0xffffffffull,
                                  (1ull << 35) - 1,
                                  ~0ull};
  std::vector<std::uint8_t> buf;
  for (std::uint64_t v : values) VarbyteEncode(v, buf);
  const std::uint8_t* p = buf.data();
  for (std::uint64_t v : values) EXPECT_EQ(VarbyteDecode(p), v);
  EXPECT_EQ(p, buf.data() + buf.size());
}

std::vector<IndexKey> FullScan(const CompressedKeyIndex& idx) {
  CompressedKeyIndex::Scratch scratch;
  std::vector<IndexKey> out;
  idx.ScanRange(IndexKey{0, 0, 0},
                IndexKey{kMaxTermId, kMaxTermId, kMaxTermId}, scratch,
                [&](std::span<const IndexKey> run) {
                  out.insert(out.end(), run.begin(), run.end());
                });
  return out;
}

TEST(CompressedKeyIndexTest, RoundTripsAcrossPageBoundarySizes) {
  // Sizes straddling leaf-page boundaries, including empty and single.
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, kLeafEntries - 1,
                        kLeafEntries, kLeafEntries + 1, 3 * kLeafEntries,
                        3 * kLeafEntries + 1}) {
    Rng rng(n * 31 + 7);
    std::vector<IndexKey> keys(n);
    for (IndexKey& k : keys) {
      k = {static_cast<TermId>(rng.Uniform(0, 50)),
           static_cast<TermId>(rng.Uniform(0, 1000)),
           static_cast<TermId>(rng.Uniform(0, 1u << 20))};
    }
    std::sort(keys.begin(), keys.end());
    CompressedKeyIndex idx;
    idx.Build(keys);
    EXPECT_EQ(idx.size(), n);
    EXPECT_EQ(FullScan(idx), keys) << "n=" << n;
  }
}

TEST(CompressedKeyIndexTest, PreservesDuplicatesAndMaxIds) {
  // Adversarial distributions: all-identical keys (gap encoding must keep
  // multiplicity) and maximal TermIds (widest varbytes).
  std::vector<IndexKey> keys(2 * kLeafEntries + 5,
                             IndexKey{kMaxTermId, kMaxTermId, kMaxTermId});
  CompressedKeyIndex idx;
  idx.Build(keys);
  EXPECT_EQ(FullScan(idx), keys);
  CompressedKeyIndex::Scratch scratch;
  EXPECT_EQ(idx.CountRange(keys.front(), keys.front(), scratch),
            keys.size());
}

TEST(CompressedKeyIndexTest, SeeksAtPageBoundaries) {
  // Distinct keys so every range count has one closed-form answer.
  const std::size_t n = 4 * kLeafEntries;
  std::vector<IndexKey> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = {static_cast<TermId>(i / 1000), static_cast<TermId>(i % 1000),
               static_cast<TermId>(i)};
  }
  CompressedKeyIndex idx;
  idx.Build(keys);
  ASSERT_EQ(idx.num_pages(), 4u);

  CompressedKeyIndex::Scratch scratch;
  auto count = [&](std::size_t lo, std::size_t hi) {
    return idx.CountRange(keys[lo], keys[hi], scratch);
  };
  // Ranges pinned exactly at page boundaries, one-off each side, interior
  // pages answered from the directory, and cross-page single steps.
  EXPECT_EQ(count(0, n - 1), n);
  EXPECT_EQ(count(0, kLeafEntries - 1), kLeafEntries);
  EXPECT_EQ(count(kLeafEntries, 2 * kLeafEntries - 1), kLeafEntries);
  EXPECT_EQ(count(kLeafEntries - 1, kLeafEntries), 2u);
  EXPECT_EQ(count(kLeafEntries - 1, 3 * kLeafEntries), 2 * kLeafEntries + 2);
  EXPECT_EQ(count(7, 7), 1u);
  // Empty ranges: between-keys and off-the-end probes.
  EXPECT_EQ(idx.CountRange(IndexKey{kMaxTermId, 0, 0},
                           IndexKey{kMaxTermId, kMaxTermId, kMaxTermId},
                           scratch),
            0u);
  std::vector<IndexKey> got;
  idx.ScanRange(keys[kLeafEntries - 1], keys[kLeafEntries], scratch,
                [&](std::span<const IndexKey> run) {
                  got.insert(got.end(), run.begin(), run.end());
                });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], keys[kLeafEntries - 1]);
  EXPECT_EQ(got[1], keys[kLeafEntries]);
}

std::vector<Triple> RandomTriples(std::uint64_t seed, std::size_t n,
                                  TermId max_s, TermId max_p, TermId max_o) {
  Rng rng(seed);
  std::vector<Triple> triples(n);
  for (Triple& t : triples) {
    t = {static_cast<TermId>(rng.Uniform(1, max_s)),
         static_cast<TermId>(rng.Uniform(1, max_p)),
         static_cast<TermId>(rng.Uniform(1, max_o))};
  }
  return triples;
}

std::multiset<std::array<TermId, 3>> AsMultiset(
    const std::vector<Triple>& ts) {
  std::multiset<std::array<TermId, 3>> out;
  for (const Triple& t : ts) out.insert({t.s, t.p, t.o});
  return out;
}

TEST(DatasetIndexTest, AllPermutationsAgreeOnTheTripleMultiset) {
  // Includes duplicate triples: per-node stores are multisets.
  std::vector<Triple> triples = RandomTriples(11, 5000, 300, 8, 400);
  triples.insert(triples.end(), triples.begin(), triples.begin() + 100);
  DatasetIndex index(triples);
  EXPECT_EQ(index.NumTriples(), triples.size());

  const auto want = AsMultiset(triples);
  for (Perm perm : {Perm::kSpo, Perm::kPso, Perm::kPos, Perm::kOsp}) {
    CompressedKeyIndex::Scratch scratch;
    std::vector<Triple> got;
    std::vector<IndexKey> keys;
    index.perm(perm).ScanRange(
        IndexKey{0, 0, 0}, IndexKey{kMaxTermId, kMaxTermId, kMaxTermId},
        scratch, [&](std::span<const IndexKey> run) {
          for (const IndexKey& k : run) {
            keys.push_back(k);
            got.push_back(PermTriple(perm, k));
          }
        });
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()))
        << "perm " << static_cast<int>(perm);
    EXPECT_EQ(AsMultiset(got), want) << "perm " << static_cast<int>(perm);
  }
}

TEST(DatasetIndexTest, CountPatternMatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    std::vector<Triple> triples = RandomTriples(seed, 3000, 60, 6, 80);
    // Dedup like RdfGraph does, so distinct == count holds for pinned
    // pairs and the aggregate path is comparable to set semantics.
    std::sort(triples.begin(), triples.end(),
              [](const Triple& a, const Triple& b) {
                return std::array<TermId, 3>{a.s, a.p, a.o} <
                       std::array<TermId, 3>{b.s, b.p, b.o};
              });
    triples.erase(std::unique(triples.begin(), triples.end(),
                              [](const Triple& a, const Triple& b) {
                                return a.s == b.s && a.p == b.p &&
                                       a.o == b.o;
                              }),
                  triples.end());
    DatasetIndex index(triples);

    Rng rng(seed * 977);
    for (int probe = 0; probe < 200; ++probe) {
      // Random constant mask over ids both present and absent.
      TermId s = rng.Bernoulli(0.5)
                     ? static_cast<TermId>(rng.Uniform(1, 70))
                     : kInvalidTermId;
      TermId p = rng.Bernoulli(0.5) ? static_cast<TermId>(rng.Uniform(1, 8))
                                    : kInvalidTermId;
      TermId o = rng.Bernoulli(0.5)
                     ? static_cast<TermId>(rng.Uniform(1, 90))
                     : kInvalidTermId;
      std::uint64_t brute = 0;
      for (const Triple& t : triples) {
        brute += (s == kInvalidTermId || t.s == s) &&
                 (p == kInvalidTermId || t.p == p) &&
                 (o == kInvalidTermId || t.o == o);
      }
      EXPECT_EQ(index.CountPattern(s, p, o), brute)
          << "seed " << seed << " mask (" << s << "," << p << "," << o
          << ")";
    }

    // Aggregated unary stats vs brute-force distinct sets.
    for (TermId p = 1; p <= 7; ++p) {
      std::set<TermId> ds, dobj;
      std::uint64_t cnt = 0;
      for (const Triple& t : triples) {
        if (t.p != p) continue;
        ++cnt;
        ds.insert(t.s);
        dobj.insert(t.o);
      }
      DatasetIndex::UnaryStats u = index.StatsForP(p);
      EXPECT_EQ(u.count, cnt);
      EXPECT_EQ(u.distinct_a, ds.size());
      EXPECT_EQ(u.distinct_b, dobj.size());
    }
    std::set<TermId> all_s, all_p, all_o;
    for (const Triple& t : triples) {
      all_s.insert(t.s);
      all_p.insert(t.p);
      all_o.insert(t.o);
    }
    EXPECT_EQ(index.distinct_s(), all_s.size());
    EXPECT_EQ(index.distinct_p(), all_p.size());
    EXPECT_EQ(index.distinct_o(), all_o.size());
  }
}

TEST(DatasetIndexTest, CompressedFootprintBeatsDualVectors) {
  std::vector<Triple> triples = RandomTriples(5, 100000, 5000, 40, 8000);
  DatasetIndex index(triples);
  const double bytes_per_triple =
      static_cast<double>(index.ByteSize()) / triples.size();
  // The replaced layout stored two sorted vector<Triple> = 24 B/triple;
  // four compressed permutations plus aggregates must still beat it.
  EXPECT_LT(bytes_per_triple, 24.0);
}

// ---------------------------------------------------------------------------
// NodeStore scan regressions (satellite: the variable-predicate and
// constant-subject patterns used to scan+filter the whole store).

ResolvedPattern Pattern(TermId s, TermId p, TermId o, VarId vs, VarId vp,
                        VarId vo) {
  ResolvedPattern rp;
  rp.s = s;
  rp.p = p;
  rp.o = o;
  rp.var_s = vs;
  rp.var_p = vp;
  rp.var_o = vo;
  for (VarId v : {vs, vp, vo}) {
    if (v != kInvalidVarId &&
        std::find(rp.schema.begin(), rp.schema.end(), v) ==
            rp.schema.end()) {
      rp.schema.push_back(v);
    }
  }
  std::sort(rp.schema.begin(), rp.schema.end());
  return rp;
}

TEST(NodeStoreTest, VariablePredicateScansUseThePermutations) {
  std::vector<Triple> triples = RandomTriples(21, 4000, 50, 6, 70);
  NodeStore store(triples);

  // ?s ?p ?o: every triple, SPO order, sorted by ?s.
  BindingTable all =
      store.Scan(Pattern(kInvalidTermId, kInvalidTermId, kInvalidTermId,
                         /*vs=*/0, /*vp=*/1, /*vo=*/2));
  EXPECT_EQ(all.NumRows(), triples.size());
  EXPECT_EQ(all.sorted_by(), 0);
  EXPECT_TRUE(std::is_sorted(all.Column(all.ColumnOf(0)).begin(),
                             all.Column(all.ColumnOf(0)).end()));

  // Constant subject, variable predicate+object: SPO prefix seek.
  const TermId s = triples[17].s;
  BindingTable by_s =
      store.Scan(Pattern(s, kInvalidTermId, kInvalidTermId, kInvalidVarId,
                         /*vp=*/0, /*vo=*/1));
  std::uint64_t brute = 0;
  for (const Triple& t : triples) brute += t.s == s;
  EXPECT_EQ(by_s.NumRows(), brute);
  for (TermId v : by_s.Column(by_s.ColumnOf(0))) {
    (void)v;
  }
  EXPECT_EQ(by_s.sorted_by(), 0);  // sorted by ?p (SPO with s pinned)
  EXPECT_TRUE(std::is_sorted(by_s.Column(by_s.ColumnOf(0)).begin(),
                             by_s.Column(by_s.ColumnOf(0)).end()));

  // Constant object, variable subject+predicate: OSP prefix seek.
  const TermId o = triples[33].o;
  BindingTable by_o =
      store.Scan(Pattern(kInvalidTermId, kInvalidTermId, o, /*vs=*/0,
                         /*vp=*/1, kInvalidVarId));
  brute = 0;
  for (const Triple& t : triples) brute += t.o == o;
  EXPECT_EQ(by_o.NumRows(), brute);
  EXPECT_EQ(by_o.sorted_by(), 0);  // OSP: s is the first free component

  // Repeated variable (?x ?p ?x) still filters equality.
  BindingTable loops = store.Scan(
      Pattern(kInvalidTermId, kInvalidTermId, kInvalidTermId, /*vs=*/0,
              /*vp=*/1, /*vo=*/0));
  brute = 0;
  for (const Triple& t : triples) brute += t.s == t.o;
  EXPECT_EQ(loops.NumRows(), brute);
}

TEST(NodeStoreTest, MorselScanMatchesSerialScan) {
  std::vector<Triple> triples = RandomTriples(9, 10000, 40, 5, 60);
  NodeStore store(triples);
  const ResolvedPattern rp = Pattern(kInvalidTermId, 3, kInvalidTermId,
                                     /*vs=*/0, kInvalidVarId, /*vo=*/1);
  BindingTable serial = store.Scan(rp);
  BindingTable morsel = store.Scan(rp, /*morsel_rows=*/512,
                                   /*parallel=*/true);
  EXPECT_TRUE(serial == morsel);
  EXPECT_EQ(serial.sorted_by(), morsel.sorted_by());
}

// ---------------------------------------------------------------------------
// Merge join vs hash join bit-identity.

BindingTable SortedTable(std::vector<VarId> schema,
                         std::vector<std::vector<TermId>> rows, VarId key) {
  BindingTable t(std::move(schema));
  for (const std::vector<TermId>& r : rows) t.AppendRow(r);
  t.SetSortedBy(key);
  return t;
}

TEST(MergeJoinTest, BitIdenticalToHashJoinIncludingDuplicates) {
  // Duplicate key runs on both sides, plus unmatched keys at both ends.
  BindingTable left = SortedTable(
      {0, 1},
      {{1, 10}, {2, 20}, {2, 21}, {4, 40}, {4, 41}, {4, 42}, {9, 90}}, 0);
  BindingTable right = SortedTable(
      {0, 2}, {{0, 5}, {2, 7}, {2, 8}, {4, 6}, {5, 1}}, 0);
  ASSERT_EQ(MergeJoinKey(left, right), 0);
  BindingTable merged = BatchMergeJoin(left, right);
  BindingTable hashed = BatchHashJoin(left, right);
  EXPECT_TRUE(merged == hashed);
  EXPECT_TRUE(merged == ReferenceHashJoin(left, right));
  EXPECT_EQ(merged.sorted_by(), hashed.sorted_by());

  // Parallel morsels with a tiny morsel size cross run boundaries.
  BatchJoinOptions opts;
  opts.morsel_rows = 2;
  opts.parallel = true;
  EXPECT_TRUE(BatchMergeJoin(left, right, opts) == hashed);
}

TEST(MergeJoinTest, RandomizedSweepAgainstHashJoin) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    auto make = [&](VarId other, std::size_t n, TermId key_range) {
      std::vector<std::vector<TermId>> rows(n);
      for (auto& r : rows) {
        r = {static_cast<TermId>(rng.Uniform(0, key_range)),
             static_cast<TermId>(rng.Uniform(0, 1000))};
      }
      std::sort(rows.begin(), rows.end());
      return SortedTable({0, other}, std::move(rows), 0);
    };
    const std::size_t nl = static_cast<std::size_t>(rng.Uniform(0, 300));
    const std::size_t nr = static_cast<std::size_t>(rng.Uniform(0, 300));
    BindingTable left = make(1, nl, 40);
    BindingTable right = make(2, nr, 40);
    BindingTable hashed = BatchHashJoin(left, right);
    if (MergeJoinKey(left, right) == kInvalidVarId) {
      // Only empty inputs disqualify here; result is empty both ways.
      EXPECT_EQ(hashed.NumRows(), 0u);
      continue;
    }
    EXPECT_TRUE(BatchMergeJoin(left, right) == hashed) << "seed " << seed;
  }
}

TEST(MergeJoinTest, KeyRequiresSortedSingleSharedVariable) {
  BindingTable left = SortedTable({0, 1}, {{1, 2}}, 0);
  BindingTable right = SortedTable({0, 1}, {{1, 2}}, 0);
  // Two shared variables: not mergeable.
  EXPECT_EQ(MergeJoinKey(left, right), kInvalidVarId);

  BindingTable a = SortedTable({0, 1}, {{1, 2}}, 0);
  BindingTable b = SortedTable({0, 2}, {{1, 3}}, 0);
  EXPECT_EQ(MergeJoinKey(a, b), 0);
  // Unknown order on one side disqualifies.
  b.SetSortedBy(kInvalidVarId);
  EXPECT_EQ(MergeJoinKey(a, b), kInvalidVarId);
  // Sorted on a non-shared variable disqualifies.
  b.SetSortedBy(2);
  EXPECT_EQ(MergeJoinKey(a, b), kInvalidVarId);
}

TEST(MergeJoinTest, AppendInvalidatesSortedMetadata) {
  BindingTable t = SortedTable({0, 1}, {{1, 2}, {3, 4}}, 0);
  EXPECT_EQ(t.sorted_by(), 0);
  t.AppendRow(std::vector<TermId>{0, 9});  // out of order
  EXPECT_EQ(t.sorted_by(), kInvalidVarId);

  BindingTable u = SortedTable({0, 1}, {{5, 6}}, 0);
  BindingTable v = SortedTable({0, 1}, {{1, 1}}, 0);
  u.AppendFrom(v);
  EXPECT_EQ(u.sorted_by(), kInvalidVarId);

  // Projection keeps metadata when the sorted column survives.
  BindingTable w = SortedTable({0, 1}, {{1, 2}, {3, 4}}, 0);
  EXPECT_EQ(w.Project({0}).sorted_by(), 0);
  EXPECT_EQ(w.Project({1}).sorted_by(), kInvalidVarId);
}

// ---------------------------------------------------------------------------
// Pairwise join statistics and the estimator's exact two-pattern path.

TEST(PairwiseStatsTest, MeasuredJoinCardinalityIsExact) {
  auto g = ParseNTriplesString(
      "<a> <p> <b> .\n"
      "<a> <p> <c> .\n"
      "<d> <p> <c> .\n"
      "<b> <q> <e> .\n"
      "<c> <q> <e> .\n"
      "<c> <q> <f> .\n");
  ASSERT_TRUE(g.ok());
  JoinGraph jg({Tp("?s", "p", "?x"), Tp("?x", "q", "?y")});
  DataStatsOptions opts;
  opts.pairwise_joins = true;
  QueryStatistics stats = ComputeStatisticsFromGraph(jg, *g, opts);
  ASSERT_TRUE(stats.has_pairwise());
  // Join on ?x: (a,b)x(b,e); (a,c)x{(c,e),(c,f)}; (d,c)x{(c,e),(c,f)} = 5.
  EXPECT_DOUBLE_EQ(stats.JoinCardinality(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(stats.JoinCardinality(1, 0), 5.0);

  // The estimator's two-pattern estimate becomes exact:
  // |tp0| * |tp1| * jc / (|tp0| * |tp1|) = jc.
  CardinalityEstimator est(jg, std::move(stats));
  EXPECT_DOUBLE_EQ(est.Cardinality(TpSet::FullSet(2)), 5.0);
}

TEST(PairwiseStatsTest, BaselineStatisticsUnchangedWithoutPairwise) {
  auto g = ParseNTriplesString(
      "<a> <p> <b> .\n"
      "<b> <q> <c> .\n");
  ASSERT_TRUE(g.ok());
  JoinGraph jg({Tp("?s", "p", "?x"), Tp("?x", "q", "?y")});
  QueryStatistics base = ComputeStatisticsFromGraph(jg, *g);
  EXPECT_FALSE(base.has_pairwise());
  EXPECT_DOUBLE_EQ(base.JoinCardinality(0, 1), -1.0);

  // The pairwise overload leaves the per-pattern values untouched.
  DataStatsOptions opts;
  opts.pairwise_joins = true;
  QueryStatistics pw = ComputeStatisticsFromGraph(jg, *g, opts);
  for (int tp = 0; tp < jg.num_tps(); ++tp) {
    EXPECT_DOUBLE_EQ(pw.Cardinality(tp), base.Cardinality(tp));
    for (VarId v : jg.VarsOf(tp)) {
      EXPECT_DOUBLE_EQ(pw.Bindings(tp, v), base.Bindings(tp, v));
    }
  }
}

TEST(PairwiseStatsTest, RandomizedPairsMatchBruteForceJoin) {
  for (std::uint64_t seed : {4ull, 5ull}) {
    // Small random graph through the dictionary-backed path.
    Rng rng(seed);
    std::string nt;
    for (int i = 0; i < 400; ++i) {
      nt += "<s" + std::to_string(rng.Uniform(0, 25)) + "> <p" +
            std::to_string(rng.Uniform(0, 3)) + "> <s" +
            std::to_string(rng.Uniform(0, 25)) + "> .\n";
    }
    auto g = ParseNTriplesString(nt);
    ASSERT_TRUE(g.ok());
    JoinGraph jg({Tp("?x", "p0", "?y"), Tp("?y", "p1", "?z"),
                  Tp("?x", "p2", "?z")});
    DataStatsOptions opts;
    opts.pairwise_joins = true;
    QueryStatistics stats = ComputeStatisticsFromGraph(jg, *g, opts);

    // Brute-force every pair over the raw triples.
    const Dictionary& dict = g->dict();
    auto matches = [&](const char* p) {
      std::vector<Triple> out;
      TermId pid = dict.LookupIri(p);
      for (const Triple& t : g->triples()) {
        if (t.p == pid) out.push_back(t);
      }
      return out;
    };
    std::vector<Triple> m0 = matches("p0"), m1 = matches("p1"),
                        m2 = matches("p2");
    std::uint64_t j01 = 0, j12 = 0, j02 = 0;
    for (const Triple& a : m0) {
      for (const Triple& b : m1) j01 += a.o == b.s;  // shared ?y
      for (const Triple& b : m2) j02 += a.s == b.s;  // shared ?x
    }
    for (const Triple& a : m1) {
      for (const Triple& b : m2) j12 += a.o == b.o;  // shared ?z
    }
    EXPECT_DOUBLE_EQ(stats.JoinCardinality(0, 1), j01) << "seed " << seed;
    EXPECT_DOUBLE_EQ(stats.JoinCardinality(1, 2), j12) << "seed " << seed;
    EXPECT_DOUBLE_EQ(stats.JoinCardinality(0, 2), j02) << "seed " << seed;
  }
}

}  // namespace
}  // namespace parqo
