// Golden equivalence sweep for the vectorized execution path (DESIGN.md
// sections 13 and 17): every benchmark query, planned by all seven
// algorithms and executed serial and parallel, must produce a
// BindingTable from the batch engine (merge joins enabled) AND from the
// hash-only batch engine that is BIT-IDENTICAL (schema, rows, row order)
// to the row-at-a-time reference engine — operator==, not set
// comparison. The
// same must hold under seeded fault plans: with identical fault
// schedules, both engines recover to identical tables or fail with the
// same typed status, because the fault probe sequence (one BeginNodeOp
// per partition per operator, one DeliverShipment per batch) does not
// depend on join internals.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "exec/cluster.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "optimizer/prepared_query.h"
#include "partition/hash_so.h"
#include "plan/plan.h"
#include "sparql/parser.h"
#include "stats/data_stats.h"
#include "workload/benchmark_queries.h"
#include "workload/lubm.h"
#include "workload/uniprot.h"

namespace parqo {
namespace {

constexpr int kNodes = 4;

const std::vector<Algorithm> kAllAlgorithms{
    Algorithm::kTdCmd,  Algorithm::kTdCmdp,  Algorithm::kHgrTdCmd,
    Algorithm::kTdAuto, Algorithm::kMsc,     Algorithm::kDpBushy,
    Algorithm::kBinaryDp};

const RdfGraph& LubmGraph() {
  // parqo-lint: allow(naked-new) leaked cached dataset
  static const RdfGraph& g = *new RdfGraph([] {
    LubmConfig cfg;
    cfg.universities = 2;
    return GenerateLubm(cfg);
  }());
  return g;
}

const RdfGraph& UniprotGraph() {
  // parqo-lint: allow(naked-new) leaked cached dataset
  static const RdfGraph& g = *new RdfGraph([] {
    UniprotConfig cfg;
    cfg.proteins = 400;
    return GenerateUniprot(cfg);
  }());
  return g;
}

// Metrics both engines must agree on exactly: every field is a function
// of the (identical) intermediate tables, never of kernel internals.
void ExpectSameMetrics(const ExecMetrics& row, const ExecMetrics& batch) {
  EXPECT_EQ(row.measured_cost, batch.measured_cost);
  EXPECT_EQ(row.total_work, batch.total_work);
  EXPECT_EQ(row.rows_scanned, batch.rows_scanned);
  EXPECT_EQ(row.rows_transferred, batch.rows_transferred);
  EXPECT_EQ(row.bytes_shipped, batch.bytes_shipped);
  EXPECT_EQ(row.distributed_joins, batch.distributed_joins);
  EXPECT_EQ(row.result_rows, batch.result_rows);
  EXPECT_EQ(row.node_rows_scanned, batch.node_rows_scanned);
  EXPECT_EQ(row.node_rows_received, batch.node_rows_received);
  EXPECT_EQ(row.node_rows_joined, batch.node_rows_joined);
  ASSERT_EQ(row.edges.size(), batch.edges.size());
  for (std::size_t i = 0; i < row.edges.size(); ++i) {
    EXPECT_EQ(row.edges[i].op, batch.edges[i].op);
    EXPECT_EQ(row.edges[i].rows, batch.edges[i].rows);
    EXPECT_EQ(row.edges[i].bytes, batch.edges[i].bytes);
  }
}

class EngineEquivalenceTest : public ::testing::TestWithParam<BenchmarkQuery> {
 protected:
  void SetUp() override {
    const BenchmarkQuery& bq = GetParam();
    graph_ = &(bq.lubm ? LubmGraph() : UniprotGraph());
    auto parsed = ParseSparql(bq.sparql);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    prepared_ = std::make_unique<PreparedQuery>(parsed->patterns, hash_,
                                                StatsFromData(*graph_));
    assignment_ = hash_.PartitionData(*graph_, kNodes);
    cluster_ = std::make_unique<Cluster>(*graph_, assignment_);
    options_.cost_params.num_nodes = kNodes;
    options_.timeout_seconds = 60;
  }

  PlanNodePtr Plan(Algorithm algorithm) {
    OptimizeResult r = Optimize(algorithm, prepared_->inputs(), options_);
    return std::move(r.plan);
  }

  HashSoPartitioner hash_;
  const RdfGraph* graph_ = nullptr;
  std::unique_ptr<PreparedQuery> prepared_;
  PartitionAssignment assignment_;
  std::unique_ptr<Cluster> cluster_;
  OptimizeOptions options_;
};

TEST_P(EngineEquivalenceTest, AllAlgorithmsSerialAndParallel) {
  for (Algorithm algorithm : kAllAlgorithms) {
    PlanNodePtr plan = Plan(algorithm);
    ASSERT_NE(plan, nullptr) << ToString(algorithm);
    for (bool parallel : {false, true}) {
      SCOPED_TRACE(ToString(algorithm) +
                   (parallel ? " parallel" : " serial"));
      Executor row(*cluster_, prepared_->join_graph(), options_.cost_params,
                   parallel, RetryPolicy{}, ExecEngine::kRow);
      Executor batch(*cluster_, prepared_->join_graph(),
                     options_.cost_params, parallel, RetryPolicy{},
                     ExecEngine::kBatch);
      Executor batch_hash(*cluster_, prepared_->join_graph(),
                          options_.cost_params, parallel, RetryPolicy{},
                          ExecEngine::kBatchHash);
      ExecMetrics mr, mb, mh;
      auto rr = row.Execute(*plan, &mr);
      auto rb = batch.Execute(*plan, &mb);
      auto rh = batch_hash.Execute(*plan, &mh);
      ASSERT_TRUE(rr.ok()) << rr.status().ToString();
      ASSERT_TRUE(rb.ok()) << rb.status().ToString();
      ASSERT_TRUE(rh.ok()) << rh.status().ToString();
      EXPECT_TRUE(*rr == *rb) << "engines diverge: row " << rr->NumRows()
                              << " rows vs batch " << rb->NumRows();
      EXPECT_TRUE(*rb == *rh)
          << "merge joins diverge from hash joins: batch " << rb->NumRows()
          << " rows vs batch-hash " << rh->NumRows();
      ExpectSameMetrics(mr, mb);
      ExpectSameMetrics(mb, mh);
      EXPECT_EQ(mh.merge_joins, 0u);
    }
  }
}

TEST_P(EngineEquivalenceTest, FaultSeedsProduceIdenticalOutcomes) {
  PlanNodePtr plan = Plan(Algorithm::kTdAuto);
  ASSERT_NE(plan, nullptr);
  RetryPolicy retry;
  retry.max_attempts = 6;

  FaultPlanConfig config;
  config.crash_probability = 0.3;
  config.slow_probability = 0.25;
  config.slow_seconds = 1e-4;
  config.drop_probability = 0.1;

  // The CI chaos seeds; a fresh FaultPlan per engine replays the same
  // schedule for both.
  for (std::uint64_t seed : {2017ull, 31337ull, 987654321ull}) {
    SCOPED_TRACE(seed);
    auto run = [&](ExecEngine engine, ExecMetrics* m) {
      FaultPlan fault(seed, kNodes, config);
      Executor exec(*cluster_, prepared_->join_graph(),
                    options_.cost_params, /*parallel_nodes=*/false, retry,
                    engine);
      FaultScope scope(&fault);
      return exec.Execute(*plan, m);
    };
    ExecMetrics mr, mb, mh;
    Result<BindingTable> rr = run(ExecEngine::kRow, &mr);
    Result<BindingTable> rb = run(ExecEngine::kBatch, &mb);
    Result<BindingTable> rh = run(ExecEngine::kBatchHash, &mh);
    ASSERT_EQ(rr.ok(), rb.ok())
        << "row: " << rr.status().ToString()
        << " batch: " << rb.status().ToString();
    ASSERT_EQ(rb.ok(), rh.ok())
        << "batch: " << rb.status().ToString()
        << " batch-hash: " << rh.status().ToString();
    if (rr.ok()) {
      EXPECT_TRUE(*rr == *rb);
      EXPECT_TRUE(*rb == *rh);
      ExpectSameMetrics(mr, mb);
      ExpectSameMetrics(mb, mh);
      EXPECT_EQ(mr.recovery_attempts, mb.recovery_attempts);
      EXPECT_EQ(mr.rows_reshipped, mb.rows_reshipped);
      EXPECT_EQ(mr.degraded_nodes, mb.degraded_nodes);
      EXPECT_EQ(mb.recovery_attempts, mh.recovery_attempts);
      EXPECT_EQ(mb.degraded_nodes, mh.degraded_nodes);
    } else {
      EXPECT_EQ(rr.status().code(), rb.status().code());
      EXPECT_EQ(rb.status().code(), rh.status().code());
      EXPECT_TRUE(mr.failed);
      EXPECT_TRUE(mb.failed);
      EXPECT_TRUE(mh.failed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Benchmark, EngineEquivalenceTest,
    ::testing::ValuesIn(AllBenchmarkQueries()),
    [](const ::testing::TestParamInfo<BenchmarkQuery>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace parqo
