// Join graph tests against the paper's Figure 1 running example.

#include "query/join_graph.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace parqo {
namespace {

using testing::Figure1Query;
using testing::Tp;

class Figure1Test : public ::testing::Test {
 protected:
  Figure1Test() : jg_(Figure1Query()) {}
  JoinGraph jg_;
};

TEST_F(Figure1Test, JoinVariablesAndDegrees) {
  // Join variables of Figure 1b: ?a ?b ?c ?d ?e. ?f and ?g occur once.
  EXPECT_EQ(jg_.num_tps(), 7);
  EXPECT_EQ(jg_.num_join_vars(), 5);

  VarId a = jg_.FindVar("a");
  VarId b = jg_.FindVar("b");
  VarId c = jg_.FindVar("c");
  VarId d = jg_.FindVar("d");
  VarId e = jg_.FindVar("e");
  VarId f = jg_.FindVar("f");
  ASSERT_NE(a, kInvalidVarId);

  // Example 1: N_tp(?c) = {tp2, tp6}, degree 2.
  TpSet ntp_c = jg_.Ntp(c);
  EXPECT_EQ(ntp_c.Count(), 2);
  EXPECT_TRUE(ntp_c.Contains(1));  // tp2
  EXPECT_TRUE(ntp_c.Contains(5));  // tp6

  // ?a is the high-degree variable: tp1, tp2, tp3, tp7.
  EXPECT_EQ(jg_.Ntp(a).Count(), 4);
  EXPECT_EQ(jg_.MaxJoinVarDegree(), 4);
  EXPECT_EQ(jg_.Ntp(b).Count(), 2);
  EXPECT_EQ(jg_.Ntp(d).Count(), 2);
  EXPECT_EQ(jg_.Ntp(e).Count(), 2);
  EXPECT_FALSE(jg_.IsJoinVar(f));
}

TEST_F(Figure1Test, AdjacencyAndNeighbors) {
  // tp4 (?e p4 ?g) is adjacent only to tp3 via ?e.
  EXPECT_EQ(jg_.Adjacent(3), TpSet::Singleton(2));
  // tp1 (?b p1 ?a) is adjacent to tp2, tp3, tp7 via ?a and tp5 via ?b.
  TpSet adj1 = jg_.Adjacent(0);
  EXPECT_EQ(adj1.Count(), 4);
  EXPECT_TRUE(adj1.Contains(1));
  EXPECT_TRUE(adj1.Contains(2));
  EXPECT_TRUE(adj1.Contains(4));
  EXPECT_TRUE(adj1.Contains(6));

  TpSet sq;
  sq.Add(2);  // tp3
  sq.Add(3);  // tp4
  TpSet nbrs = jg_.NeighborsOf(sq);
  // Neighbors via ?a: tp1, tp2, tp7.
  EXPECT_EQ(nbrs.Count(), 3);
  EXPECT_TRUE(nbrs.Contains(0));
  EXPECT_TRUE(nbrs.Contains(1));
  EXPECT_TRUE(nbrs.Contains(6));
}

TEST_F(Figure1Test, Connectivity) {
  EXPECT_TRUE(jg_.IsConnected(jg_.AllTps()));
  TpSet sq;
  sq.Add(3);  // tp4
  sq.Add(4);  // tp5
  EXPECT_FALSE(jg_.IsConnected(sq));
  sq.Add(0);  // tp1: still missing the ?a or ?e bridge
  EXPECT_FALSE(jg_.IsConnected(sq));
  sq.Add(2);  // tp3 bridges via ?e and ?a
  EXPECT_TRUE(jg_.IsConnected(sq));
  EXPECT_TRUE(jg_.IsConnected(TpSet::Singleton(0)));
  EXPECT_TRUE(jg_.IsConnected(TpSet{}));
}

TEST_F(Figure1Test, ComponentsExcludingVariable) {
  VarId a = jg_.FindVar("a");
  // Removing ?a: {tp1, tp5} via ?b, {tp2, tp6, tp7} via ?c/?d... tp7
  // shares ?d with tp6, tp6 shares ?c with tp2. {tp3, tp4} via ?e.
  auto comps = jg_.ComponentsExcluding(jg_.AllTps(), a);
  ASSERT_EQ(comps.size(), 3u);
  std::set<std::uint64_t> got;
  for (TpSet c : comps) got.insert(c.bits());
  TpSet c1, c2, c3;
  c1.Add(0);
  c1.Add(4);
  c2.Add(1);
  c2.Add(5);
  c2.Add(6);
  c3.Add(2);
  c3.Add(3);
  EXPECT_TRUE(got.count(c1.bits()));
  EXPECT_TRUE(got.count(c2.bits()));
  EXPECT_TRUE(got.count(c3.bits()));
}

TEST_F(Figure1Test, SharedJoinVars) {
  TpSet left;
  left.Add(0);  // tp1
  left.Add(4);  // tp5
  TpSet right;
  right.Add(2);  // tp3
  right.Add(3);  // tp4
  auto shared = jg_.SharedJoinVars(left, right);
  ASSERT_EQ(shared.size(), 1u);
  EXPECT_EQ(shared[0], jg_.FindVar("a"));
}

TEST(JoinGraphTest, VarsOfDeduplicates) {
  JoinGraph jg({Tp("?x", "p", "?x"), Tp("?x", "q", "?y")});
  EXPECT_EQ(jg.VarsOf(0).size(), 1u);
  EXPECT_EQ(jg.Ntp(jg.FindVar("x")).Count(), 2);
}

TEST(JoinGraphTest, PredicateVariablesJoin) {
  JoinGraph jg({Tp("?x", "?p", "?y"), Tp("?z", "?p", "?w")});
  EXPECT_TRUE(jg.IsJoinVar(jg.FindVar("p")));
  EXPECT_TRUE(jg.IsConnected(jg.AllTps()));
}

}  // namespace
}  // namespace parqo
