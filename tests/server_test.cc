// End-to-end tests for the serving layer (server/server.h): cache-hit
// plans must be bit-identical to a cold optimize for every algorithm,
// degraded entries must not poison the cache, eviction must never hand a
// session a dangling plan, admission control must reject with the typed
// kOverloaded, and the PR 4 fault layer must keep its invariant while
// serving (bit-identical rows or a clean typed error, per session).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "exec/cluster.h"
#include "optimizer/prepared_query.h"
#include "partition/hash_so.h"
#include "plan/plan.h"
#include "server/admission.h"
#include "server/plan_cache.h"
#include "server/server.h"
#include "server/signature.h"
#include "tests/test_util.h"
#include "workload/random_query.h"
#include "workload/watdiv.h"

namespace parqo {
namespace {

std::uint64_t ChaosSeed() {
  const char* env = std::getenv("PARQO_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 2017;
  return std::strtoull(env, nullptr, 10);
}

constexpr int kNodes = 4;

const RdfGraph& WatdivGraph() {
  // parqo-lint: allow(naked-new) leaked cached dataset
  static const RdfGraph& g = *new RdfGraph([] {
    WatdivDataConfig cfg;
    cfg.entities_per_class = 200;
    cfg.density = 1.2;
    return GenerateWatdivData(cfg);
  }());
  return g;
}

const Cluster& WatdivCluster() {
  // parqo-lint: allow(naked-new) leaked cached cluster
  static const Cluster& c = *new Cluster(
      WatdivGraph(), HashSoPartitioner().PartitionData(WatdivGraph(), kNodes));
  return c;
}

const HashSoPartitioner& Part() {
  static HashSoPartitioner part;
  return part;
}

std::vector<WatdivTemplate> Templates() {
  Rng rng(2017);
  return GenerateWatdivTemplates(124, rng);
}

/// First template whose size falls in [lo, hi].
std::vector<TriplePattern> TemplateSized(int lo, int hi) {
  for (const WatdivTemplate& t : Templates()) {
    int n = static_cast<int>(t.patterns.size());
    if (n >= lo && n <= hi) return t.patterns;
  }
  ADD_FAILURE() << "no template sized [" << lo << "," << hi << "]";
  return {};
}

/// Renames variables and permutes patterns without changing structure.
std::vector<TriplePattern> Scramble(const std::vector<TriplePattern>& patterns,
                                    Rng& rng) {
  std::map<std::string, std::string> names;
  for (const TriplePattern& tp : patterns) {
    for (const std::string& v : tp.Variables()) {
      if (!names.count(v)) {
        names[v] = "r" + std::to_string(rng.Next() % 100000) + "_" +
                   std::to_string(names.size());
      }
    }
  }
  std::vector<TriplePattern> out = patterns;
  for (TriplePattern& tp : out) {
    for (PatternTerm* t : {&tp.s, &tp.p, &tp.o}) {
      if (t->IsVar()) t->var = names.at(t->var);
    }
  }
  for (std::size_t i = out.size(); i > 1; --i) {
    std::swap(out[i - 1], out[rng.Next() % i]);
  }
  return out;
}

/// Result rows as a set over canonical VarIds 0..num_vars-1 — queries
/// with equal signatures execute in the same canonical space, so their
/// normalized rows are directly comparable.
std::set<std::vector<TermId>> Rows(const ServeResult& r) {
  std::set<std::vector<TermId>> rows;
  int num_vars = static_cast<int>(r.var_names.size());
  for (std::size_t i = 0; i < r.rows.NumRows(); ++i) {
    std::vector<TermId> row;
    for (VarId v = 0; v < num_vars; ++v) {
      int c = r.rows.ColumnOf(v);
      row.push_back(c < 0 ? kInvalidTermId : r.rows.At(i, c));
    }
    rows.insert(row);
  }
  return rows;
}

/// %.17g cost rendering: equal strings means bit-equal doubles.
std::string CostBits(double cost) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", cost);
  return buf;
}

// --------------------------------------------------------------------------
// Cache-hit fast path: bit-identical to cold optimize, for all algorithms.

TEST(ServerTest, CacheHitPlanBitIdenticalToColdOptimizeAllAlgorithms) {
  std::vector<TriplePattern> query = TemplateSized(4, 6);
  ASSERT_FALSE(query.empty());
  Rng rng(99);
  for (Algorithm algo :
       {Algorithm::kTdCmd, Algorithm::kTdCmdp, Algorithm::kHgrTdCmd,
        Algorithm::kTdAuto, Algorithm::kMsc, Algorithm::kDpBushy,
        Algorithm::kBinaryDp}) {
    SCOPED_TRACE(ToString(algo));
    ServerConfig config;
    config.algorithm = algo;
    config.num_threads = 2;
    QueryServer server(WatdivGraph(), WatdivCluster(), Part(), config);

    ServeResult cold = server.Serve(query);
    ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
    EXPECT_FALSE(cold.cache_hit);
    ASSERT_NE(cold.plan, nullptr);

    // Reference: optimize the canonical form directly, outside the
    // server, with the same options. The served plan must match to the
    // last bit of its cost and structure.
    CanonicalBgp canon = CanonicalizeBgp(query);
    PreparedQuery prepared(canon.patterns, Part(), StatsFromData(WatdivGraph()));
    OptimizeResult reference = Optimize(algo, prepared.inputs(), config.options);
    ASSERT_NE(reference.plan, nullptr);
    EXPECT_EQ(PlanToCompactString(*cold.plan),
              PlanToCompactString(*reference.plan));
    EXPECT_EQ(CostBits(cold.plan->total_cost),
              CostBits(reference.plan->total_cost));

    // A scrambled rewrite of the query must hit and serve the very same
    // plan and the same rows.
    ServeResult hit = server.Serve(Scramble(query, rng));
    ASSERT_TRUE(hit.status.ok()) << hit.status.ToString();
    EXPECT_TRUE(hit.cache_hit);
    EXPECT_EQ(hit.signature, cold.signature);
    ASSERT_NE(hit.plan, nullptr);
    EXPECT_EQ(PlanToCompactString(*hit.plan), PlanToCompactString(*cold.plan));
    EXPECT_EQ(CostBits(hit.plan_cost), CostBits(cold.plan_cost));
    EXPECT_EQ(Rows(hit), Rows(cold));
  }
}

// The minimized regression for the original signature bug, end to end:
// permuted + renamed query, identical signature, cached-plan hit.
TEST(ServerTest, PermutedRenamedQueryHitsCache) {
  using testing::Tp;
  std::vector<TriplePattern> original = {
      Tp("?a", "http://db.uwaterloo.ca/watdiv/follows", "?b"),
      Tp("?b", "http://db.uwaterloo.ca/watdiv/likes", "?c"),
      Tp("?c", "http://db.uwaterloo.ca/watdiv/hasReview", "?d"),
  };
  std::vector<TriplePattern> rewritten = {
      Tp("?r2", "http://db.uwaterloo.ca/watdiv/hasReview", "?r3"),
      Tp("?r0", "http://db.uwaterloo.ca/watdiv/follows", "?r1"),
      Tp("?r1", "http://db.uwaterloo.ca/watdiv/likes", "?r2"),
  };
  QueryServer server(WatdivGraph(), WatdivCluster(), Part(), ServerConfig{});
  ServeResult first = server.Serve(original);
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit);
  ServeResult second = server.Serve(rewritten);
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(second.signature, first.signature);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(Rows(second), Rows(first));
  EXPECT_EQ(server.cache().hits(), 1u);
  EXPECT_EQ(server.cache().size(), 1u);
}

// --------------------------------------------------------------------------
// Degraded plans: cached under the distinct flag, upgraded on the next
// unhurried request, never poisoning it.

TEST(ServerTest, DegradedEntryIsFlaggedAndUpgradedNotPoisoning) {
  // A dense query large enough that the enumerator cannot finish inside
  // one deadline-poll interval (the WatDiv stars are too small: they
  // complete before the expired deadline is ever observed). Against the
  // WatDiv data its scans are empty, which is irrelevant here — this
  // test is about plan provenance, not rows.
  Rng query_rng(7);
  std::vector<TriplePattern> query =
      GenerateRandomQuery(QueryShape::kDense, 12, query_rng).patterns;
  QueryServer server(WatdivGraph(), WatdivCluster(), Part(), ServerConfig{});

  // An effectively-zero budget forces the deadline degradation path
  // (best memoized plan or MSC fallback) — still a valid, executable
  // plan, cached with degraded set.
  ServeResult rushed = server.Serve(query, /*deadline_seconds=*/1e-9);
  ASSERT_TRUE(rushed.status.ok()) << rushed.status.ToString();
  ASSERT_TRUE(rushed.degraded);
  EXPECT_FALSE(rushed.cache_hit);

  // The next request has no deadline: it must not be served the degraded
  // plan as-is but re-optimize and upgrade the entry.
  ServeResult unhurried = server.Serve(query, /*deadline_seconds=*/0);
  ASSERT_TRUE(unhurried.status.ok());
  EXPECT_TRUE(unhurried.cache_hit);
  EXPECT_TRUE(unhurried.reoptimized);
  EXPECT_FALSE(unhurried.degraded);

  // From now on it is an ordinary clean hit.
  ServeResult third = server.Serve(query);
  ASSERT_TRUE(third.status.ok());
  EXPECT_TRUE(third.cache_hit);
  EXPECT_FALSE(third.reoptimized);
  EXPECT_FALSE(third.degraded);
  EXPECT_EQ(PlanToCompactString(*third.plan),
            PlanToCompactString(*unhurried.plan));

  // All three executed valid plans over the same data.
  EXPECT_EQ(Rows(rushed), Rows(unhurried));
  EXPECT_EQ(Rows(unhurried), Rows(third));
}

// --------------------------------------------------------------------------
// Eviction under concurrency: a session's plan must survive its entry.

TEST(ServerTest, HotShardEvictionNeverDanglesPlans) {
  // One shard, tiny capacity: every insert evicts. Readers hammer a hot
  // key and validate the plan they copied out while a writer storm
  // churns the shard. Under ASan this is the dangling-plan negative
  // test; without it, the sentinel checks still catch corruption.
  PlanCache cache(/*num_shards=*/1, /*shard_capacity=*/2);
  auto make_plan = [](int tp, double sentinel) {
    auto node = std::make_shared<PlanNode>();
    node->kind = PlanNode::Kind::kScan;
    node->tp = tp;
    node->total_cost = sentinel;
    return node;
  };
  const std::string hot_key = PlanCache::MakeKey("hot", "hash-so");
  CachedPlan hot;
  hot.plan = make_plan(7, 1234.5);
  hot.plan_cost = 1234.5;
  cache.Insert(hot_key, hot);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> validated{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        std::optional<CachedPlan> got = cache.Lookup(hot_key);
        if (!got) continue;
        // The entry may be evicted right now; our copy must stay whole.
        ASSERT_NE(got->plan, nullptr);
        ASSERT_EQ(got->plan->tp, 7);
        ASSERT_EQ(got->plan->total_cost, 1234.5);
        ASSERT_EQ(got->plan_cost, 1234.5);
        validated.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) {
      CachedPlan filler;
      filler.plan = make_plan(i % 64, 1.0);
      cache.Insert(PlanCache::MakeKey("f" + std::to_string(i), "hash-so"),
                   std::move(filler));
      if (i % 16 == 0) cache.Insert(hot_key, hot);
    }
    stop.store(true, std::memory_order_release);
  });
  writer.join();
  for (std::thread& r : readers) r.join();
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_GT(validated.load(), 0u);
  EXPECT_LE(cache.size(), 2u);
  // The original shared plan is still intact regardless of cache state.
  EXPECT_EQ(hot.plan->total_cost, 1234.5);
}

// --------------------------------------------------------------------------
// Admission control.

TEST(ServerTest, AdmissionControllerBoundsInFlight) {
  AdmissionController ctrl(2);
  AdmissionTicket a(ctrl), b(ctrl);
  EXPECT_TRUE(a);
  EXPECT_TRUE(b);
  EXPECT_EQ(ctrl.in_flight(), 2);
  {
    AdmissionTicket c(ctrl);
    EXPECT_FALSE(c);  // at capacity: typed rejection, no slot consumed
    EXPECT_EQ(ctrl.in_flight(), 2);
  }
  EXPECT_EQ(ctrl.rejected(), 1u);
  {
    AdmissionTicket d(ctrl);
    EXPECT_FALSE(d);
  }
  // Releasing one slot readmits.
  { AdmissionTicket scoped(ctrl); }
  EXPECT_EQ(ctrl.in_flight(), 2);
}

TEST(ServerTest, OverloadedServerRejectsWithTypedStatus) {
  ServerConfig config;
  config.max_in_flight = 2;
  QueryServer server(WatdivGraph(), WatdivCluster(), Part(), config);
  std::vector<TriplePattern> query = TemplateSized(2, 4);

  {
    AdmissionTicket a(server.admission()), b(server.admission());
    ASSERT_TRUE(a && b);  // both slots held: the server is saturated
    ServeResult rejected = server.Serve(query);
    EXPECT_EQ(rejected.status.code(), StatusCode::kOverloaded);
    EXPECT_EQ(rejected.plan, nullptr);  // nothing was attempted
    EXPECT_TRUE(rejected.signature.empty());
  }
  // Capacity released: the same request now succeeds.
  ServeResult ok = server.Serve(query);
  EXPECT_TRUE(ok.status.ok()) << ok.status.ToString();
  EXPECT_GE(server.admission().rejected(), 1u);
}

TEST(ServerTest, InvalidQueriesGetTypedErrors) {
  QueryServer server(WatdivGraph(), WatdivCluster(), Part(), ServerConfig{});
  EXPECT_EQ(server.Serve({}).status.code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------------
// Concurrent sessions.

TEST(ServerTest, ConcurrentSessionsAgreeWithEachOtherPerSignature) {
  ServerConfig config;
  config.num_threads = 4;
  QueryServer server(WatdivGraph(), WatdivCluster(), Part(), config);

  // A skewed stream over a handful of templates, every event scrambled
  // differently: concurrent sessions race misses and hits on the same
  // keys. Every session with the same signature must produce identical
  // rows whether its plan came cold or cached.
  std::vector<WatdivTemplate> templates = Templates();
  std::vector<std::vector<TriplePattern>> stream;
  Rng rng(5);
  for (int i = 0; i < 48; ++i) {
    const WatdivTemplate& t = templates[i % 6];
    stream.push_back(Scramble(t.patterns, rng));
  }
  std::vector<ServeResult> results = server.ServeConcurrent(stream, 4);
  ASSERT_EQ(results.size(), stream.size());

  std::map<std::string, std::set<std::vector<TermId>>> rows_by_signature;
  int hits = 0;
  for (const ServeResult& r : results) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    hits += r.cache_hit ? 1 : 0;
    auto [it, inserted] = rows_by_signature.emplace(r.signature, Rows(r));
    if (!inserted) {
      EXPECT_EQ(Rows(r), it->second) << "signature " << r.signature;
    }
  }
  // 6 distinct templates in 48 events: at most 6 misses are necessary.
  // Races may duplicate a cold optimize (two sessions miss the same key
  // simultaneously), but the steady state must be hits.
  EXPECT_GE(hits, 36);
  EXPECT_LE(server.cache().size(), 6u);
}

// --------------------------------------------------------------------------
// Chaos while serving: the PR 4 invariant, per session.

TEST(ServerTest, ChaosSeedsKeepBitIdenticalOrTypedErrorPerSession) {
  ServerConfig config;
  config.num_threads = 2;
  QueryServer server(WatdivGraph(), WatdivCluster(), Part(), config);

  std::vector<WatdivTemplate> templates = Templates();
  std::vector<std::vector<TriplePattern>> stream;
  Rng rng(11);
  for (int i = 0; i < 12; ++i) {
    stream.push_back(Scramble(templates[i % 4].patterns, rng));
  }

  // Fault-free baseline rows per signature (also warms the plan cache,
  // so the chaos pass exercises the cache-hit execution path).
  std::map<std::string, std::set<std::vector<TermId>>> baseline;
  for (const auto& q : stream) {
    ServeResult r = server.Serve(q);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    baseline.emplace(r.signature, Rows(r));
  }

  FaultPlanConfig fault_config;
  fault_config.crash_probability = 0.4;
  fault_config.drop_probability = 0.15;
  FaultPlan fault(ChaosSeed(), kNodes, fault_config);
  std::vector<ServeResult> results;
  {
    FaultScope scope(&fault);
    results = server.ServeConcurrent(stream, 2);
  }
  int recovered_or_clean = 0;
  for (const ServeResult& r : results) {
    if (r.status.ok()) {
      EXPECT_EQ(Rows(r), baseline.at(r.signature));
    } else {
      // Recovery exhausted: typed, with zeroed/flagged metrics — never
      // a silently wrong result.
      EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
      EXPECT_TRUE(r.exec_metrics.failed);
      EXPECT_EQ(r.rows.NumRows(), 0u);
    }
    ++recovered_or_clean;
  }
  EXPECT_EQ(recovered_or_clean, static_cast<int>(results.size()));
}

}  // namespace
}  // namespace parqo
