// Randomized end-to-end property test ("poor man's fuzzing"): random
// small RDF graphs, queries sampled by random walks over the data (so
// results are non-trivially non-empty), optimized by every algorithm and
// executed under every partitioning — all runs must reproduce the
// reference evaluator's result set exactly. This exercises the full
// parser-less pipeline: statistics, locality, enumeration, costing,
// partitioning, and the distributed operators, on structures no
// hand-written test would cover.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "exec/cluster.h"
#include "exec/executor.h"
#include "optimizer/prepared_query.h"
#include "partition/hash_so.h"
#include "partition/min_edge_cut.h"
#include "partition/path_bmc.h"
#include "partition/two_hop.h"
#include "plan/validate.h"
#include "query/match.h"
#include "tests/test_util.h"

namespace parqo {
namespace {

// A random labeled graph: `n` entities, `p` predicates, `m` triples, with
// skew so joins have fan-out.
RdfGraph RandomGraph(Rng& rng, int n, int p, int m) {
  Dictionary dict;
  std::vector<TermId> entities, predicates;
  // Appends, not chained operator+: GCC 12 -Wrestrict false positive
  // (PR105651) under -O2.
  for (int i = 0; i < n; ++i) {
    std::string name = "e";
    name += std::to_string(i);
    entities.push_back(dict.EncodeIri(name));
  }
  for (int i = 0; i < p; ++i) {
    std::string name = "p";
    name += std::to_string(i);
    predicates.push_back(dict.EncodeIri(name));
  }
  std::vector<Triple> triples;
  for (int i = 0; i < m; ++i) {
    TermId s = entities[rng.Skewed(n)];
    TermId o = entities[rng.Uniform(0, n - 1)];
    TermId pr = predicates[rng.Skewed(p)];
    triples.push_back(Triple{s, pr, o});
  }
  return RdfGraph(std::move(dict), std::move(triples));
}

// Samples a query with 2..6 patterns by walking the data graph, so the
// query has at least one match. Endpoints become variables; with small
// probability a leaf keeps its constant.
std::vector<TriplePattern> SampleQuery(const RdfGraph& g, Rng& rng) {
  const auto& triples = g.triples();
  const int size = static_cast<int>(rng.Uniform(2, 6));

  std::vector<const Triple*> chosen;
  std::vector<TermId> frontier;
  const Triple& seed =
      triples[rng.Uniform(0, static_cast<std::int64_t>(triples.size()) - 1)];
  chosen.push_back(&seed);
  frontier.push_back(seed.s);
  frontier.push_back(seed.o);

  int guard = 0;
  while (static_cast<int>(chosen.size()) < size && ++guard < 200) {
    TermId v = frontier[rng.Uniform(
        0, static_cast<std::int64_t>(frontier.size()) - 1)];
    auto out = g.OutEdges(v);
    auto in = g.InEdges(v);
    if (out.empty() && in.empty()) continue;
    bool use_out = !out.empty() && (in.empty() || rng.Bernoulli(0.5));
    TripleIdx e = use_out
                      ? out[rng.Uniform(
                            0, static_cast<std::int64_t>(out.size()) - 1)]
                      : in[rng.Uniform(
                            0, static_cast<std::int64_t>(in.size()) - 1)];
    const Triple* t = &triples[e];
    bool dup = false;
    for (const Triple* c : chosen) {
      if (c == t) dup = true;
    }
    if (dup) continue;
    chosen.push_back(t);
    frontier.push_back(t->s);
    frontier.push_back(t->o);
  }

  // Name variables by the entity they replace: shared entities become
  // shared (join) variables, exactly like a match in reverse.
  const Dictionary& dict = g.dict();
  auto var_or_const = [&](TermId id) -> PatternTerm {
    if (rng.Bernoulli(0.15)) {
      return PatternTerm::Const(dict.Decode(id));
    }
    std::string name = "v";
    name += std::to_string(id);
    return PatternTerm::Var(name);
  };
  // Decide variable/constant once per entity for consistency.
  std::vector<std::pair<TermId, PatternTerm>> mapping;
  auto term_for = [&](TermId id) {
    for (auto& [k, v] : mapping) {
      if (k == id) return v;
    }
    mapping.emplace_back(id, var_or_const(id));
    return mapping.back().second;
  };

  std::vector<TriplePattern> patterns;
  for (const Triple* t : chosen) {
    TriplePattern tp;
    tp.s = term_for(t->s);
    tp.p = PatternTerm::Const(dict.Decode(t->p));
    tp.o = term_for(t->o);
    patterns.push_back(std::move(tp));
  }
  return patterns;
}

std::set<std::vector<TermId>> Rows(const BindingTable& t,
                                   const JoinGraph& jg) {
  std::set<std::vector<TermId>> rows;
  for (std::size_t r = 0; r < t.NumRows(); ++r) {
    std::vector<TermId> row;
    for (VarId v = 0; v < jg.num_vars(); ++v) {
      int c = t.ColumnOf(v);
      row.push_back(c < 0 ? kInvalidTermId : t.At(r, c));
    }
    rows.insert(row);
  }
  return rows;
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, AllPipelinesAgreeWithReference) {
  Rng rng(GetParam());
  RdfGraph graph = RandomGraph(rng, /*n=*/60, /*p=*/6, /*m=*/400);

  HashSoPartitioner hash;
  TwoHopForwardPartitioner two_hop;
  PathBmcPartitioner path;
  MinEdgeCutPartitioner min_cut;

  for (int iteration = 0; iteration < 6; ++iteration) {
    std::vector<TriplePattern> patterns = SampleQuery(graph, rng);
    JoinGraph query_jg(patterns);
    if (!query_jg.IsConnected(query_jg.AllTps())) continue;
    SCOPED_TRACE("iteration " + std::to_string(iteration));

    // Reference rows from the single-machine matcher.
    std::set<std::vector<TermId>> expected;
    for (const BgpMatch& m : MatchBgp(query_jg, graph, 0)) {
      expected.insert(m.bindings);
    }
    ASSERT_FALSE(expected.empty());  // sampled from a real match

    struct Combo {
      const Partitioner* partitioner;
      Algorithm algorithm;
    };
    std::vector<Combo> combos{
        {&hash, Algorithm::kTdCmd},    {&hash, Algorithm::kTdCmdp},
        {&hash, Algorithm::kHgrTdCmd}, {&hash, Algorithm::kMsc},
        {&hash, Algorithm::kDpBushy},  {&hash, Algorithm::kBinaryDp},
        {&two_hop, Algorithm::kTdAuto}, {&path, Algorithm::kTdAuto},
        {&min_cut, Algorithm::kTdAuto},
    };
    for (const Combo& combo : combos) {
      SCOPED_TRACE(ToString(combo.algorithm) + " on " +
                   combo.partitioner->name());
      PreparedQuery prepared(patterns, *combo.partitioner,
                             StatsFromData(graph));
      OptimizeOptions options;
      options.timeout_seconds = 30;
      options.cost_params.num_nodes = 3;
      OptimizeResult r =
          Optimize(combo.algorithm, prepared.inputs(), options);
      ASSERT_NE(r.plan, nullptr);
      ASSERT_TRUE(ValidatePlan(*r.plan, prepared.join_graph(),
                               &prepared.local_index())
                      .ok());

      Cluster cluster(graph, combo.partitioner->PartitionData(graph, 3));
      Executor executor(cluster, prepared.join_graph(),
                        options.cost_params);
      auto result = executor.Execute(*r.plan, nullptr);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(Rows(*result, prepared.join_graph()), expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace parqo
