// Execution engine tests: binding tables, node-store scans, and plan
// execution on a tiny hand-made cluster, checked against the reference
// evaluator.

#include <gtest/gtest.h>

#include "exec/binding_table.h"
#include "exec/cluster.h"
#include "exec/executor.h"
#include "exec/join_kernel.h"
#include "exec/reference_join.h"
#include "partition/hash_so.h"
#include "plan/plan.h"
#include "rdf/ntriples.h"
#include "stats/data_stats.h"
#include "tests/test_util.h"

namespace parqo {
namespace {

using testing::Tp;

BindingTable MakeTable(std::vector<VarId> schema,
                       const std::vector<std::vector<TermId>>& rows) {
  BindingTable t(std::move(schema));
  for (const std::vector<TermId>& r : rows) t.AppendRow(r);
  return t;
}

TEST(BindingTableTest, DeduplicateAndProject) {
  BindingTable t({0, 1});
  t.AppendRow(std::vector<TermId>{1, 2});
  t.AppendRow(std::vector<TermId>{1, 2});
  t.AppendRow(std::vector<TermId>{1, 3});
  EXPECT_EQ(t.NumRows(), 3u);
  t.Deduplicate();
  EXPECT_EQ(t.NumRows(), 2u);

  BindingTable p = t.Project({0});
  EXPECT_EQ(p.NumRows(), 1u);  // both rows have 1 in column 0
  EXPECT_EQ(p.At(0, 0), 1u);
  EXPECT_EQ(t.ColumnOf(1), 1);
  EXPECT_EQ(t.ColumnOf(9), -1);
}

TEST(BindingTableTest, DeduplicateEdgeCases) {
  // Empty schema: a table with no columns has no rows by definition.
  BindingTable empty;
  empty.Deduplicate();
  EXPECT_EQ(empty.NumRows(), 0u);
  EXPECT_EQ(empty.num_cols(), 0);

  // All-duplicate input collapses to one row.
  BindingTable dup({0, 1});
  for (int i = 0; i < 100; ++i) dup.AppendRow(std::vector<TermId>{7, 9});
  dup.Deduplicate();
  ASSERT_EQ(dup.NumRows(), 1u);
  EXPECT_EQ(dup.At(0, 0), 7u);
  EXPECT_EQ(dup.At(0, 1), 9u);

  // Keep-first order: survivors appear in first-occurrence order.
  BindingTable t = MakeTable({0}, {{3}, {1}, {3}, {2}, {1}});
  t.Deduplicate();
  ASSERT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.At(0, 0), 3u);
  EXPECT_EQ(t.At(1, 0), 1u);
  EXPECT_EQ(t.At(2, 0), 2u);
}

TEST(BindingTableTest, ProjectEdgeCases) {
  BindingTable t = MakeTable({0, 1}, {{1, 2}, {1, 3}, {1, 2}});

  // Zero-column projection: no schema means no rows.
  BindingTable none = t.Project({});
  EXPECT_EQ(none.num_cols(), 0);
  EXPECT_EQ(none.NumRows(), 0u);

  // All-duplicate on the projected column.
  BindingTable one = t.Project({0});
  ASSERT_EQ(one.NumRows(), 1u);
  EXPECT_EQ(one.At(0, 0), 1u);

  // Projecting an empty table keeps the schema, zero rows.
  BindingTable empty_in({0, 1});
  BindingTable empty_out = empty_in.Project({1});
  EXPECT_EQ(empty_out.num_cols(), 1);
  EXPECT_EQ(empty_out.NumRows(), 0u);
}

TEST(BindingTableTest, AppendFromAndAppendGather) {
  BindingTable src = MakeTable({0, 1}, {{1, 10}, {2, 20}, {3, 30}});
  BindingTable dst({0, 1});
  dst.AppendFrom(src);
  dst.AppendFrom(src);
  ASSERT_EQ(dst.NumRows(), 6u);
  EXPECT_EQ(dst.At(4, 0), 2u);
  EXPECT_EQ(dst.At(4, 1), 20u);

  BindingTable picked({0, 1});
  const std::uint32_t rows[] = {2, 0, 2};
  picked.AppendGather(src, rows, 3);
  EXPECT_EQ(picked, MakeTable({0, 1}, {{3, 30}, {1, 10}, {3, 30}}));
}

// ---------------------------------------------------------------------------
// Batch join kernels vs the row-at-a-time reference: operator== demands
// identical schema, rows, AND row order, so these also pin the canonical
// emit order (probe ascending, build matches ascending).

TEST(JoinKernelTest, EmptyBuildSide) {
  BindingTable left({0, 1});  // empty: becomes the build side
  BindingTable right = MakeTable({1, 2}, {{1, 5}, {2, 6}});
  BindingTable batch = BatchHashJoin(left, right);
  EXPECT_EQ(batch.NumRows(), 0u);
  EXPECT_EQ(batch.schema(), (std::vector<VarId>{0, 1, 2}));
  EXPECT_EQ(batch, ReferenceHashJoin(left, right));
}

TEST(JoinKernelTest, EmptyProbeSide) {
  BindingTable left = MakeTable({0, 1}, {{1, 2}, {3, 4}});
  BindingTable right({1, 2});  // empty: the larger left would probe
  BindingTable batch = BatchHashJoin(left, right);
  EXPECT_EQ(batch.NumRows(), 0u);
  EXPECT_EQ(batch, ReferenceHashJoin(left, right));
}

TEST(JoinKernelTest, FullySharedSchemas) {
  // Identical schemas: the key is every column (generic kernel), and the
  // join is an order-preserving multiset intersection.
  BindingTable left = MakeTable({0, 1}, {{1, 2}, {3, 4}, {5, 6}, {1, 2}});
  BindingTable right = MakeTable({0, 1}, {{3, 4}, {1, 2}, {7, 8}});
  BindingTable batch = BatchHashJoin(left, right);
  EXPECT_EQ(batch, ReferenceHashJoin(left, right));
  // right built (3 < 4 rows); probe = left rows in order, {5,6} unmatched.
  EXPECT_EQ(batch,
            MakeTable({0, 1}, {{1, 2}, {3, 4}, {1, 2}}));
}

TEST(JoinKernelTest, CrossProductWhenNoSharedVars) {
  BindingTable left = MakeTable({0}, {{1}, {2}});
  BindingTable right = MakeTable({1}, {{10}, {20}, {30}});
  BindingTable batch = BatchHashJoin(left, right);
  EXPECT_EQ(batch, ReferenceHashJoin(left, right));
  // Left-row-major order.
  EXPECT_EQ(batch, MakeTable({0, 1}, {{1, 10}, {1, 20}, {1, 30},
                                      {2, 10}, {2, 20}, {2, 30}}));
}

TEST(JoinKernelTest, MultiKeyJoinMatchesReference) {
  // Two shared variables exercise the generic kernel with hash-match plus
  // key confirmation.
  BindingTable left = MakeTable(
      {0, 1, 2}, {{1, 2, 9}, {1, 3, 8}, {4, 2, 7}, {1, 2, 6}});
  BindingTable right =
      MakeTable({0, 1, 3}, {{1, 2, 100}, {4, 2, 200}, {9, 9, 300}});
  BindingTable batch = BatchHashJoin(left, right);
  EXPECT_EQ(batch, ReferenceHashJoin(left, right));
  EXPECT_EQ(batch.NumRows(), 3u);
}

TEST(JoinKernelTest, MorselBoundaryRowCounts) {
  // Probe-side row counts around the morsel size: 0, 1, m-1, m, m+1.
  // Build side has 2 rows so any probe >= 2 keeps sides fixed; the
  // serial single-morsel result is the order oracle.
  constexpr std::size_t kMorsel = 4;
  const std::size_t kCounts[] = {0, 1, kMorsel - 1, kMorsel, kMorsel + 1};
  for (std::size_t probe_rows : kCounts) {
    SCOPED_TRACE(probe_rows);
    BindingTable left = MakeTable({0, 1}, {{1, 100}, {2, 200}});
    BindingTable right({0, 2});
    for (std::size_t r = 0; r < probe_rows; ++r) {
      // Keys cycle 1,2,3: some rows match each build row, some none.
      right.AppendRow(std::vector<TermId>{static_cast<TermId>(r % 3 + 1),
                                          static_cast<TermId>(r)});
    }
    BindingTable oracle = ReferenceHashJoin(left, right);
    for (bool parallel : {false, true}) {
      BatchJoinOptions opts;
      opts.morsel_rows = kMorsel;
      opts.parallel = parallel;
      EXPECT_EQ(BatchHashJoin(left, right, opts), oracle)
          << (parallel ? "parallel" : "serial");
    }
  }
}

TEST(JoinKernelTest, SingleKeyCollisionsStaySeparate) {
  // Regression for the single-key fast path: two distinct TermIds whose
  // hashes collide under the table mask must never cross-match. With a
  // 3-row build the capacity is 16; hunt for a colliding partner.
  const TermId k1 = 1;
  const std::uint64_t home = JoinKeyHash(k1) & 15u;
  TermId k2 = kInvalidTermId;
  for (TermId t = 2; t < 1000000; ++t) {
    if ((JoinKeyHash(t) & 15u) == home) {
      k2 = t;
      break;
    }
  }
  ASSERT_NE(k2, kInvalidTermId) << "no colliding TermId found";

  SingleKeyJoinTable table;
  table.Build({k1, k2, k1});
  std::vector<std::uint32_t> hits;
  table.ForEachMatch(k1, [&](std::uint32_t r) { hits.push_back(r); });
  EXPECT_EQ(hits, (std::vector<std::uint32_t>{0, 2}));  // ascending
  hits.clear();
  table.ForEachMatch(k2, [&](std::uint32_t r) { hits.push_back(r); });
  EXPECT_EQ(hits, (std::vector<std::uint32_t>{1}));

  // End to end: the colliding keys join only with themselves.
  BindingTable left = MakeTable({0, 1}, {{k1, 10}, {k2, 20}, {k1, 30}});
  BindingTable right = MakeTable({0, 2}, {{k2, 1}, {k1, 2}, {k1, 3}, {9, 4}});
  BindingTable batch = BatchHashJoin(left, right);
  EXPECT_EQ(batch, ReferenceHashJoin(left, right));
  EXPECT_EQ(batch.NumRows(), 5u);  // k1: 2x2 pairings, k2: 1x1
}

TEST(JoinKernelTest, GenericKernelMatchesSpecialized) {
  BindingTable left({0, 1});
  BindingTable right({1, 2});
  for (TermId r = 0; r < 257; ++r) {
    left.AppendRow(std::vector<TermId>{r, r % 17});
    right.AppendRow(std::vector<TermId>{r % 17, r + 1000});
  }
  BatchJoinOptions generic;
  generic.force_generic_kernel = true;
  BindingTable fast = BatchHashJoin(left, right);
  EXPECT_EQ(fast, BatchHashJoin(left, right, generic));
  EXPECT_EQ(fast, ReferenceHashJoin(left, right));
}

TEST(NodeStoreTest, ScansByPatternShape) {
  Dictionary d;
  TermId a = d.EncodeIri("a"), b = d.EncodeIri("b"), c = d.EncodeIri("c"),
         p = d.EncodeIri("p"), q = d.EncodeIri("q");
  NodeStore store({{a, p, b}, {a, p, c}, {b, q, c}, {c, p, a}});

  ResolvedPattern all_p;  // ?x <p> ?y
  all_p.p = p;
  all_p.var_s = 0;
  all_p.var_o = 1;
  all_p.schema = {0, 1};
  EXPECT_EQ(store.Scan(all_p).NumRows(), 3u);

  ResolvedPattern s_const = all_p;  // <a> <p> ?y
  s_const.s = a;
  s_const.var_s = kInvalidVarId;
  s_const.schema = {1};
  EXPECT_EQ(store.Scan(s_const).NumRows(), 2u);

  ResolvedPattern o_const = all_p;  // ?x <p> <c>
  o_const.o = c;
  o_const.var_o = kInvalidVarId;
  o_const.schema = {0};
  EXPECT_EQ(store.Scan(o_const).NumRows(), 1u);

  ResolvedPattern var_p;  // ?x ?pp ?y : full scan
  var_p.var_s = 0;
  var_p.var_p = 2;
  var_p.var_o = 1;
  var_p.schema = {0, 1, 2};
  EXPECT_EQ(store.Scan(var_p).NumRows(), 4u);

  ResolvedPattern unmatch = all_p;
  unmatch.unmatchable = true;
  EXPECT_EQ(store.Scan(unmatch).NumRows(), 0u);
}

TEST(NodeStoreTest, MorselScanMatchesSingleMorsel) {
  // Scan output must be identical (including row order) for any morsel
  // size, serial or parallel.
  std::vector<Triple> triples;
  for (TermId s = 1; s <= 200; ++s) {
    triples.push_back({s, 5, s % 7 + 1});
  }
  NodeStore store(std::move(triples));
  ResolvedPattern pat;  // ?x <5> ?y
  pat.p = 5;
  pat.var_s = 0;
  pat.var_o = 1;
  pat.schema = {0, 1};
  BindingTable oracle = store.Scan(pat);
  ASSERT_EQ(oracle.NumRows(), 200u);
  for (std::size_t morsel : {1u, 7u, 64u, 1024u}) {
    for (bool parallel : {false, true}) {
      EXPECT_EQ(store.Scan(pat, morsel, parallel), oracle)
          << morsel << (parallel ? " parallel" : " serial");
    }
  }

  // Constant-object filter pushed into the scan, morseled.
  ResolvedPattern with_o = pat;
  with_o.o = 3;
  with_o.var_o = kInvalidVarId;
  with_o.schema = {0};
  EXPECT_EQ(store.Scan(with_o, 16, true), store.Scan(with_o));
}

TEST(NodeStoreTest, RepeatedVariableFiltersRows) {
  Dictionary d;
  TermId a = d.EncodeIri("a"), b = d.EncodeIri("b"),
         p = d.EncodeIri("p");
  NodeStore store({{a, p, a}, {a, p, b}});
  ResolvedPattern same;  // ?x <p> ?x
  same.p = p;
  same.var_s = 0;
  same.var_o = 0;
  same.schema = {0};
  BindingTable t = store.Scan(same);
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.At(0, 0), a);
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() {
    auto g = ParseNTriplesString(
        "<s1> <worksFor> <d1> .\n"
        "<s2> <worksFor> <d1> .\n"
        "<s3> <worksFor> <d2> .\n"
        "<d1> <subOrg> <u1> .\n"
        "<d2> <subOrg> <u1> .\n"
        "<d2> <subOrg> <u2> .\n"
        "<s1> <likes> <s2> .\n"
        "<s2> <likes> <s3> .\n");
    graph_ = std::make_unique<RdfGraph>(std::move(*g));
    jg_ = std::make_unique<JoinGraph>(std::vector<TriplePattern>{
        Tp("?x", "worksFor", "?y"), Tp("?y", "subOrg", "?u"),
        Tp("?x", "likes", "?z")});
    assignment_ = hash_.PartitionData(*graph_, 3);
    cluster_ = std::make_unique<Cluster>(*graph_, assignment_);
    estimator_ = std::make_unique<CardinalityEstimator>(
        *jg_, ComputeStatisticsFromGraph(*jg_, *graph_));
    builder_ = std::make_unique<PlanBuilder>(*estimator_,
                                             CostModel(CostParams{}));
  }

  std::set<std::vector<TermId>> RowsOf(const BindingTable& t) {
    // Re-order columns to ascending VarId to compare with the reference.
    std::vector<VarId> vars = t.schema();
    std::set<std::vector<TermId>> rows;
    for (std::size_t r = 0; r < t.NumRows(); ++r) {
      std::vector<TermId> row;
      for (VarId v = 0; v < jg_->num_vars(); ++v) {
        int c = t.ColumnOf(v);
        row.push_back(c < 0 ? kInvalidTermId : t.At(r, c));
      }
      rows.insert(row);
    }
    return rows;
  }

  HashSoPartitioner hash_;
  std::unique_ptr<RdfGraph> graph_;
  std::unique_ptr<JoinGraph> jg_;
  PartitionAssignment assignment_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<CardinalityEstimator> estimator_;
  std::unique_ptr<PlanBuilder> builder_;
};

TEST_F(ExecutorTest, RepartitionPlanMatchesReference) {
  PlanNodePtr plan = builder_->Join(
      JoinMethod::kRepartition, jg_->FindVar("y"),
      {builder_->Join(JoinMethod::kRepartition, jg_->FindVar("x"),
                      {builder_->Scan(0), builder_->Scan(2)}),
       builder_->Scan(1)});
  Executor exec(*cluster_, *jg_, CostParams{});
  ExecMetrics m;
  auto result = exec.Execute(*plan, &m);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(RowsOf(*result), testing::ReferenceEvaluate(*jg_, *graph_));
  EXPECT_GT(m.rows_scanned, 0u);
  EXPECT_GT(m.rows_transferred, 0u);
  EXPECT_GT(m.measured_cost, 0.0);
  EXPECT_EQ(m.result_rows, result->NumRows());
}

TEST_F(ExecutorTest, BroadcastPlanMatchesReference) {
  PlanNodePtr plan = builder_->Join(
      JoinMethod::kBroadcast, jg_->FindVar("y"),
      {builder_->Join(JoinMethod::kBroadcast, jg_->FindVar("x"),
                      {builder_->Scan(0), builder_->Scan(2)}),
       builder_->Scan(1)});
  Executor exec(*cluster_, *jg_, CostParams{});
  auto result = exec.Execute(*plan, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(RowsOf(*result), testing::ReferenceEvaluate(*jg_, *graph_));
}

TEST_F(ExecutorTest, LocalJoinOnCollocatedStar) {
  // {tp0, tp2} share ?x (hash-collocated): a local join is correct.
  JoinGraph star(std::vector<TriplePattern>{Tp("?x", "worksFor", "?y"),
                                            Tp("?x", "likes", "?z")});
  CardinalityEstimator est(star,
                           ComputeStatisticsFromGraph(star, *graph_));
  PlanBuilder builder(est, CostModel(CostParams{}));
  TpSet both = TpSet::FullSet(2);
  PlanNodePtr plan = builder.LocalJoinAll(both);
  Executor exec(*cluster_, star, CostParams{});
  ExecMetrics m;
  auto result = exec.Execute(*plan, &m);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(m.rows_transferred, 0u);  // local joins move nothing
  // Reference over the same two patterns.
  std::set<std::vector<TermId>> expected =
      testing::ReferenceEvaluate(star, *graph_);
  std::set<std::vector<TermId>> got;
  for (std::size_t r = 0; r < result->NumRows(); ++r) {
    std::vector<TermId> row;
    for (VarId v = 0; v < star.num_vars(); ++v) {
      row.push_back(result->At(r, result->ColumnOf(v)));
    }
    got.insert(row);
  }
  EXPECT_EQ(got, expected);
}

// k-way (k=3) distributed joins on a star dataset: every input shares ?w.
class KWayExecutorTest : public ::testing::Test {
 protected:
  KWayExecutorTest() {
    auto g = ParseNTriplesString(
        "<w1> <a> <a1> .\n<w1> <a> <a2> .\n<w2> <a> <a3> .\n"
        "<w1> <b> <b1> .\n<w2> <b> <b2> .\n<w3> <b> <b3> .\n"
        "<w1> <c> <c1> .\n<w2> <c> <c2> .\n");
    graph_ = std::make_unique<RdfGraph>(std::move(*g));
    jg_ = std::make_unique<JoinGraph>(std::vector<TriplePattern>{
        Tp("?w", "a", "?x"), Tp("?w", "b", "?y"), Tp("?w", "c", "?z")});
    HashSoPartitioner hash;
    cluster_ = std::make_unique<Cluster>(*graph_,
                                         hash.PartitionData(*graph_, 3));
    estimator_ = std::make_unique<CardinalityEstimator>(
        *jg_, ComputeStatisticsFromGraph(*jg_, *graph_));
    builder_ = std::make_unique<PlanBuilder>(*estimator_,
                                             CostModel(CostParams{}));
  }

  std::set<std::vector<TermId>> Reference() {
    return testing::ReferenceEvaluate(*jg_, *graph_);
  }
  std::set<std::vector<TermId>> Rows(const BindingTable& t) {
    std::set<std::vector<TermId>> rows;
    for (std::size_t r = 0; r < t.NumRows(); ++r) {
      std::vector<TermId> row;
      for (VarId v = 0; v < jg_->num_vars(); ++v) {
        row.push_back(t.At(r, t.ColumnOf(v)));
      }
      rows.insert(row);
    }
    return rows;
  }

  std::unique_ptr<RdfGraph> graph_;
  std::unique_ptr<JoinGraph> jg_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<CardinalityEstimator> estimator_;
  std::unique_ptr<PlanBuilder> builder_;
};

TEST_F(KWayExecutorTest, ThreeWayRepartition) {
  // Expected matches: w1 x {a1,a2} x b1 x c1 and w2 x a3 x b2 x c2.
  PlanNodePtr plan = builder_->Join(
      JoinMethod::kRepartition, jg_->FindVar("w"),
      {builder_->Scan(0), builder_->Scan(1), builder_->Scan(2)});
  Executor exec(*cluster_, *jg_, CostParams{});
  auto result = exec.Execute(*plan, nullptr);
  ASSERT_TRUE(result.ok());
  auto expected = Reference();
  EXPECT_EQ(expected.size(), 3u);
  EXPECT_EQ(Rows(*result), expected);
}

TEST_F(KWayExecutorTest, ThreeWayBroadcast) {
  PlanNodePtr plan = builder_->Join(
      JoinMethod::kBroadcast, jg_->FindVar("w"),
      {builder_->Scan(0), builder_->Scan(1), builder_->Scan(2)});
  Executor exec(*cluster_, *jg_, CostParams{});
  ExecMetrics m;
  auto result = exec.Execute(*plan, &m);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Rows(*result), Reference());
  EXPECT_EQ(m.distributed_joins, 1u);
  // Two smaller inputs broadcast to 3 nodes each.
  EXPECT_GT(m.rows_transferred, 0u);
}

TEST_F(KWayExecutorTest, ThreeWayLocalUnderHash) {
  // All patterns share ?w, so the star is hash-local.
  PlanNodePtr plan = builder_->LocalJoinAll(TpSet::FullSet(3));
  Executor exec(*cluster_, *jg_, CostParams{});
  ExecMetrics m;
  auto result = exec.Execute(*plan, &m);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Rows(*result), Reference());
  EXPECT_EQ(m.rows_transferred, 0u);
  EXPECT_EQ(m.distributed_joins, 0u);
}

TEST_F(ExecutorTest, ParallelNodesMatchSerialExecution) {
  PlanNodePtr plan = builder_->Join(
      JoinMethod::kRepartition, jg_->FindVar("y"),
      {builder_->Join(JoinMethod::kBroadcast, jg_->FindVar("x"),
                      {builder_->Scan(0), builder_->Scan(2)}),
       builder_->Scan(1)});
  Executor serial(*cluster_, *jg_, CostParams{}, /*parallel_nodes=*/false);
  Executor parallel(*cluster_, *jg_, CostParams{}, /*parallel_nodes=*/true);
  ExecMetrics ms, mp;
  auto rs = serial.Execute(*plan, &ms);
  auto rp = parallel.Execute(*plan, &mp);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rp.ok());
  EXPECT_EQ(RowsOf(*rs), RowsOf(*rp));
  EXPECT_EQ(ms.rows_scanned, mp.rows_scanned);
  EXPECT_EQ(ms.rows_transferred, mp.rows_transferred);
  EXPECT_DOUBLE_EQ(ms.measured_cost, mp.measured_cost);
}

TEST_F(ExecutorTest, ProjectionSelectsQueryVariables) {
  PlanNodePtr plan = builder_->Join(
      JoinMethod::kRepartition, jg_->FindVar("y"),
      {builder_->Join(JoinMethod::kRepartition, jg_->FindVar("x"),
                      {builder_->Scan(0), builder_->Scan(2)}),
       builder_->Scan(1)});
  Executor exec(*cluster_, *jg_, CostParams{});
  ParsedQuery pq;
  pq.select_vars = {"u"};
  auto result =
      ExecuteAndProject(exec, *plan, pq, *jg_, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_cols(), 1);
  // Matches: (s1,d1,u1,s2) and (s2,d1,u1,s3); the only university is u1.
  EXPECT_EQ(result->NumRows(), 1u);
}

}  // namespace
}  // namespace parqo
