// The parallel-optimizer determinism contract and the thread-pool
// plumbing. The load-bearing property: for every query and every
// algorithm, a parallel run (intra-query workers, inter-query batch, or
// both nested) returns a plan of cost identical to the sequential run —
// tie-breaking is by canonical enumeration order, never arrival order.
// These tests are also the ThreadSanitizer surface for the sharded memo,
// the shared estimator, and the pool itself (see the CI tsan job).

#include "optimizer/parallel_optimizer.h"

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "optimizer/optimizer.h"
#include "optimizer/prepared_query.h"
#include "partition/hash_so.h"
#include "plan/plan.h"
#include "sparql/parser.h"
#include "tests/optimizer_test_util.h"
#include "workload/benchmark_queries.h"
#include "workload/lubm.h"
#include "workload/random_query.h"
#include "workload/uniprot.h"

namespace parqo {
namespace {

using testing::QueryFixture;

const std::vector<Algorithm> kTdFamily{Algorithm::kTdCmd, Algorithm::kTdCmdp,
                                       Algorithm::kHgrTdCmd,
                                       Algorithm::kTdAuto};

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(257, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < 257; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Outer tasks saturate the pool; inner ParallelFor must still complete
  // because callers participate in their own loops.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](int) {
    pool.ParallelFor(16, [&](int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPoolTest, SubmitRunsTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.ParallelFor(1, [&](int) {});  // warm-up, no-op
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&] { ran.fetch_add(1); });
  }
  // Destructor drains the queue; check after the pool is gone.
  {
    ThreadPool scoped(2);
    for (int i = 0; i < 32; ++i) {
      scoped.Submit([&] { ran.fetch_add(1); });
    }
  }
  EXPECT_GE(ran.load(), 32);  // scoped's 32 are guaranteed drained
}

TEST(ThreadPoolTest, MaxWorkersCapIsRespected) {
  // Not directly observable from outside, but must at least complete and
  // cover everything with a cap smaller than the pool.
  ThreadPool pool(8);
  std::atomic<int> total{0};
  pool.ParallelFor(100, [&](int) { total.fetch_add(1); }, /*max_workers=*/2);
  EXPECT_EQ(total.load(), 100);
}

// --- Intra-query determinism -------------------------------------------

OptimizeResult RunWithThreads(const QueryFixture& fx, Algorithm algorithm,
                              int num_threads) {
  OptimizeOptions options;
  options.num_threads = num_threads;
  return Optimize(algorithm, fx.inputs(), options);
}

TEST(ParallelDeterminismTest, FiftyRandomQueriesAllAlgorithms) {
  // 50 random queries spanning every shape; every TD-family algorithm;
  // parallel (4 workers) vs sequential must agree on plan cost exactly.
  const QueryShape kShapes[] = {QueryShape::kStar, QueryShape::kChain,
                                QueryShape::kCycle, QueryShape::kTree,
                                QueryShape::kDense};
  Rng rng(20170547);
  for (int i = 0; i < 50; ++i) {
    QueryShape shape = kShapes[i % 5];
    int n = 5 + static_cast<int>(rng.Uniform(0, 5));  // 5..9 patterns
    GeneratedQuery q = GenerateRandomQuery(shape, n, rng);
    for (Algorithm algorithm : kTdFamily) {
      QueryFixture seq_fx(q), par_fx(q);
      OptimizeResult seq = RunWithThreads(seq_fx, algorithm, 1);
      OptimizeResult par = RunWithThreads(par_fx, algorithm, 4);
      ASSERT_NE(seq.plan, nullptr)
          << ToString(algorithm) << " query " << i;
      ASSERT_NE(par.plan, nullptr)
          << ToString(algorithm) << " query " << i;
      EXPECT_EQ(par.plan->total_cost, seq.plan->total_cost)
          << ToString(algorithm) << " query " << i << " shape "
          << ToString(shape) << " n=" << n;
      // The tie-break argument gives identical plan *shape* too.
      EXPECT_EQ(PlanToCompactString(*par.plan),
                PlanToCompactString(*seq.plan))
          << ToString(algorithm) << " query " << i;
    }
  }
}

TEST(ParallelDeterminismTest, BenchmarkQueriesOnRealStatistics) {
  // L1-L10 / U1-U5 with exact statistics from generated data — the
  // Table IV setting — across all four algorithms, sequential vs 4
  // workers.
  LubmConfig lubm_cfg;
  lubm_cfg.universities = 2;
  RdfGraph lubm = GenerateLubm(lubm_cfg);
  UniprotConfig uni_cfg;
  uni_cfg.proteins = 400;
  RdfGraph uniprot = GenerateUniprot(uni_cfg);
  HashSoPartitioner hash;

  OptimizeOptions seq_opts;
  seq_opts.timeout_seconds = 120;
  OptimizeOptions par_opts = seq_opts;
  par_opts.num_threads = 4;

  for (const BenchmarkQuery& bq : AllBenchmarkQueries()) {
    auto parsed = ParseSparql(bq.sparql);
    ASSERT_TRUE(parsed.ok()) << bq.name;
    const RdfGraph& data = bq.lubm ? lubm : uniprot;
    PreparedQuery seq_q(parsed->patterns, hash, StatsFromData(data));
    PreparedQuery par_q(parsed->patterns, hash, StatsFromData(data));
    for (Algorithm algorithm : kTdFamily) {
      OptimizeResult seq = Optimize(algorithm, seq_q.inputs(), seq_opts);
      OptimizeResult par = Optimize(algorithm, par_q.inputs(), par_opts);
      if (seq.timed_out || par.timed_out) continue;  // can't compare
      ASSERT_NE(seq.plan, nullptr) << bq.name << " " << ToString(algorithm);
      ASSERT_NE(par.plan, nullptr) << bq.name << " " << ToString(algorithm);
      EXPECT_EQ(par.plan->total_cost, seq.plan->total_cost)
          << bq.name << " " << ToString(algorithm);
    }
  }
}

TEST(ParallelDeterminismTest, ParallelTimeoutReturnsNoPlan) {
  Rng rng(4);
  QueryFixture fx(GenerateRandomQuery(QueryShape::kDense, 24, rng));
  OptimizeOptions options;
  options.timeout_seconds = 1e-4;
  options.num_threads = 4;
  OptimizeResult r = Optimize(Algorithm::kTdCmd, fx.inputs(), options);
  EXPECT_TRUE(r.timed_out);
  EXPECT_EQ(r.plan, nullptr);
}

// --- Inter-query batch --------------------------------------------------

TEST(ParallelOptimizerTest, BatchMatchesSequentialLoop) {
  Rng rng(99);
  HashSoPartitioner hash;
  std::vector<GeneratedQuery> generated;
  const QueryShape kShapes[] = {QueryShape::kStar, QueryShape::kChain,
                                QueryShape::kCycle, QueryShape::kTree};
  for (int i = 0; i < 24; ++i) {
    generated.push_back(
        GenerateRandomQuery(kShapes[i % 4], 5 + i % 5, rng));
  }
  std::vector<std::unique_ptr<PreparedQuery>> prepared;
  std::vector<const PreparedQuery*> queries;
  for (const GeneratedQuery& q : generated) {
    prepared.push_back(std::make_unique<PreparedQuery>(
        q.patterns, hash,
        [&q](const JoinGraph& jg) { return q.MakeStats(jg); }));
    queries.push_back(prepared.back().get());
  }

  OptimizeOptions options;
  std::vector<double> sequential_costs;
  for (const PreparedQuery* q : queries) {
    OptimizeResult r = Optimize(Algorithm::kTdAuto, q->inputs(), options);
    ASSERT_NE(r.plan, nullptr);
    sequential_costs.push_back(r.plan->total_cost);
  }

  ParallelOptimizer popt(4);
  EXPECT_EQ(popt.num_threads(), 4);
  std::vector<OptimizeResult> results =
      popt.OptimizeBatch(Algorithm::kTdAuto, queries, options);
  ASSERT_EQ(results.size(), queries.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_NE(results[i].plan, nullptr) << i;
    EXPECT_EQ(results[i].plan->total_cost, sequential_costs[i]) << i;
  }
}

TEST(ParallelOptimizerTest, MixedAlgorithmBatch) {
  Rng rng(7);
  HashSoPartitioner hash;
  GeneratedQuery q1 = GenerateRandomQuery(QueryShape::kChain, 8, rng);
  GeneratedQuery q2 = GenerateRandomQuery(QueryShape::kStar, 7, rng);
  PreparedQuery p1(q1.patterns, hash,
                   [&](const JoinGraph& jg) { return q1.MakeStats(jg); });
  PreparedQuery p2(q2.patterns, hash,
                   [&](const JoinGraph& jg) { return q2.MakeStats(jg); });

  ParallelOptimizer popt(2);
  std::vector<BatchQuery> batch{{Algorithm::kTdCmd, &p1},
                                {Algorithm::kTdCmdp, &p2}};
  std::vector<OptimizeResult> results =
      popt.OptimizeBatch(batch, OptimizeOptions{});
  ASSERT_EQ(results.size(), 2u);
  ASSERT_NE(results[0].plan, nullptr);
  ASSERT_NE(results[1].plan, nullptr);
  EXPECT_EQ(results[0].algorithm_used, Algorithm::kTdCmd);
  EXPECT_EQ(results[1].algorithm_used, Algorithm::kTdCmdp);
}

// --- Concurrency smoke (the TSan target) --------------------------------

TEST(ConcurrencySmokeTest, NestedBatchAndIntraQueryWorkers) {
  // Inter-query batch on 8 workers where every query also enables
  // intra-query workers from the same pool: the nesting stresses the
  // sharded plan memo, the sharded estimator memo, the atomic abort, and
  // ParallelFor's caller-participation (deadlock-freedom) all at once.
  Rng rng(2017);
  HashSoPartitioner hash;
  std::vector<GeneratedQuery> generated;
  const QueryShape kShapes[] = {QueryShape::kTree, QueryShape::kDense,
                                QueryShape::kCycle};
  for (int i = 0; i < 12; ++i) {
    generated.push_back(
        GenerateRandomQuery(kShapes[i % 3], 7 + i % 4, rng));
  }
  std::vector<std::unique_ptr<PreparedQuery>> prepared;
  std::vector<const PreparedQuery*> queries;
  for (const GeneratedQuery& q : generated) {
    prepared.push_back(std::make_unique<PreparedQuery>(
        q.patterns, hash,
        [&q](const JoinGraph& jg) { return q.MakeStats(jg); }));
    queries.push_back(prepared.back().get());
  }

  OptimizeOptions options;
  options.num_threads = 2;  // nested intra-query workers
  ParallelOptimizer popt(8);
  for (int round = 0; round < 3; ++round) {  // pool reuse across batches
    std::vector<OptimizeResult> results =
        popt.OptimizeBatch(Algorithm::kTdCmd, queries, options);
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_NE(results[i].plan, nullptr) << "round " << round << " " << i;
      EXPECT_GT(results[i].plan->total_cost, 0) << i;
    }
  }
}

}  // namespace
}  // namespace parqo
