// Optimizer comparison on a random workload: a miniature of the paper's
// Section V-C study. Generates random queries of a chosen shape and size
// and prints, per algorithm, the optimization time, the number of
// enumerated join operators (search-space size), and the plan cost
// normalized to TD-CMD's optimum.
//
// Usage: optimizer_comparison [star|chain|cycle|tree|dense] [num_tps]
//                             [count]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "optimizer/prepared_query.h"
#include "partition/hash_so.h"
#include "workload/random_query.h"

int main(int argc, char** argv) {
  using namespace parqo;

  const std::string shape_name = argc > 1 ? argv[1] : "tree";
  const int num_tps = argc > 2 ? std::atoi(argv[2]) : 10;
  const int count = argc > 3 ? std::atoi(argv[3]) : 5;

  QueryShape shape;
  if (shape_name == "star") {
    shape = QueryShape::kStar;
  } else if (shape_name == "chain") {
    shape = QueryShape::kChain;
  } else if (shape_name == "cycle") {
    shape = QueryShape::kCycle;
  } else if (shape_name == "tree") {
    shape = QueryShape::kTree;
  } else if (shape_name == "dense") {
    shape = QueryShape::kDense;
  } else {
    std::fprintf(stderr,
                 "usage: %s [star|chain|cycle|tree|dense] [num_tps] "
                 "[count]\n",
                 argv[0]);
    return 2;
  }

  const std::vector<std::pair<Algorithm, std::string>> algorithms{
      {Algorithm::kTdCmd, "TD-CMD"},     {Algorithm::kTdCmdp, "TD-CMDP"},
      {Algorithm::kHgrTdCmd, "HGR"},     {Algorithm::kTdAuto, "TD-Auto"},
      {Algorithm::kMsc, "MSC"},          {Algorithm::kDpBushy, "DP-Bushy"},
  };

  std::printf("%d random %s queries with %d patterns (hash locality)\n\n",
              count, shape_name.c_str(), num_tps);

  HashSoPartitioner hash;
  Rng rng(4242);
  for (int i = 0; i < count; ++i) {
    GeneratedQuery q = GenerateRandomQuery(shape, num_tps, rng);
    std::printf("query %d:\n", i);
    std::printf("  %-10s %10s %14s %12s %8s\n", "algorithm", "seconds",
                "enumerated", "plan cost", "ratio");

    double reference = -1;
    for (const auto& [algorithm, name] : algorithms) {
      PreparedQuery prepared(
          q.patterns, hash,
          [&q](const JoinGraph& jg) { return q.MakeStats(jg); });
      OptimizeOptions options;
      options.timeout_seconds = 30;
      OptimizeResult r = Optimize(algorithm, prepared.inputs(), options);
      if (r.plan == nullptr) {
        std::printf("  %-10s %10s %14s %12s %8s\n", name.c_str(),
                    "timeout", "-", "-", "-");
        continue;
      }
      if (algorithm == Algorithm::kTdCmd) reference = r.plan->total_cost;
      char ratio[16] = "-";
      if (reference > 0) {
        std::snprintf(ratio, sizeof(ratio), "%.3f",
                      r.plan->total_cost / reference);
      }
      std::printf("  %-10s %9.4fs %14s %12s %8s\n", name.c_str(),
                  r.seconds, WithThousandsSep(r.enumerated).c_str(),
                  FormatCostE(r.plan->total_cost).c_str(), ratio);
    }
    std::printf("\n");
  }
  return 0;
}
