// Relational join ordering with the same enumerator — Section I of the
// paper: "Our optimization algorithms are generic enough to be applied to
// relational query optimization."
//
// A TPC-H-like 8-table join (every table has at most three join
// attributes, so each maps onto one "pattern" whose variables are its
// join keys) is optimized with exhaustive k-ary TD-CMD and with the
// binary-only space; the k-ary plan exploits multi-way repartition joins
// on shared keys exactly as it would for RDF triple patterns.

#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.h"
#include "optimizer/optimizer.h"
#include "partition/local_query_index.h"
#include "plan/plan.h"
#include "query/join_graph.h"
#include "query/query_graph.h"
#include "query/shape.h"
#include "stats/estimator.h"

namespace {

using namespace parqo;

// One relation = one pattern; its up-to-three join attributes become the
// pattern's variables (padded with unique placeholders when fewer).
struct Relation {
  std::string name;
  std::vector<std::string> join_attrs;  // 1..3
  double rows;
  std::vector<double> distinct;  // per attr
};

TriplePattern ToPattern(const Relation& r, int index) {
  auto var = [&](std::size_t i) {
    if (i < r.join_attrs.size()) return PatternTerm::Var(r.join_attrs[i]);
    return PatternTerm::Var("_pad" + std::to_string(index) + "_" +
                            std::to_string(i));
  };
  TriplePattern tp;
  tp.s = var(0);
  tp.p = var(1);
  tp.o = var(2);
  return tp;
}

}  // namespace

int main() {
  // TPC-H-flavored join graph at scale factor ~1 (rounded cardinalities):
  // lineitem(orderkey, partkey, suppkey), orders(orderkey, custkey),
  // customer(custkey, c_nationkey), partsupp(partkey, suppkey),
  // part(partkey), supplier(suppkey, s_nationkey),
  // nation(c_nationkey ~ s_nationkey simplification: two nation roles).
  std::vector<Relation> relations{
      {"lineitem", {"orderkey", "partkey", "suppkey"}, 6'000'000,
       {1'500'000, 200'000, 10'000}},
      {"orders", {"orderkey", "custkey"}, 1'500'000, {1'500'000, 150'000}},
      {"customer", {"custkey", "nationkey"}, 150'000, {150'000, 25}},
      {"partsupp", {"partkey", "suppkey"}, 800'000, {200'000, 10'000}},
      {"part", {"partkey"}, 200'000, {200'000}},
      {"supplier", {"suppkey", "nationkey"}, 10'000, {10'000, 25}},
      {"nation", {"nationkey", "regionkey"}, 25, {25, 5}},
      {"region", {"regionkey"}, 5, {5}},
  };

  std::vector<TriplePattern> patterns;
  for (std::size_t i = 0; i < relations.size(); ++i) {
    patterns.push_back(ToPattern(relations[i], static_cast<int>(i)));
  }
  JoinGraph jg(patterns);
  QueryGraph qg(jg);

  QueryStatistics stats(jg);
  for (std::size_t i = 0; i < relations.size(); ++i) {
    stats.SetCardinality(static_cast<int>(i), relations[i].rows);
    for (std::size_t a = 0; a < relations[i].join_attrs.size(); ++a) {
      VarId v = jg.FindVar(relations[i].join_attrs[a]);
      stats.SetBindings(static_cast<int>(i), v, relations[i].distinct[a]);
    }
  }
  CardinalityEstimator estimator(jg, std::move(stats));
  // Relational tables are not co-partitioned: no local joins.
  LocalQueryIndex none = LocalQueryIndex::None(jg.num_tps());

  OptimizerInputs inputs;
  inputs.join_graph = &jg;
  inputs.query_graph = &qg;
  inputs.local_index = &none;
  inputs.estimator = &estimator;

  std::printf("8-way relational join; join graph: %d relations, %d join "
              "attributes, shape %s\n\n",
              jg.num_tps(), jg.num_join_vars(),
              ToString(ClassifyShape(jg)).c_str());

  OptimizeOptions options;
  for (Algorithm algorithm :
       {Algorithm::kTdCmd, Algorithm::kBinaryDp, Algorithm::kTdCmdp}) {
    OptimizeResult r = Optimize(algorithm, inputs, options);
    if (r.plan == nullptr) {
      std::printf("%s: timed out\n", ToString(algorithm).c_str());
      continue;
    }
    std::printf("=== %s: cost %s, %s operators enumerated, %.4fs ===\n",
                ToString(algorithm).c_str(),
                FormatCostE(r.plan->total_cost).c_str(),
                WithThousandsSep(r.enumerated).c_str(), r.seconds);
    // Print with relation names instead of tp indexes.
    std::string compact = PlanToCompactString(*r.plan);
    for (int i = static_cast<int>(relations.size()) - 1; i >= 0; --i) {
      std::string needle = "tp" + std::to_string(i);
      std::size_t pos = 0;
      while ((pos = compact.find(needle, pos)) != std::string::npos) {
        compact.replace(pos, needle.size(), relations[i].name);
        pos += relations[i].name.size();
      }
    }
    std::printf("%s\n\n", compact.c_str());
  }
  std::printf(
      "(TD-CMD searches k-ary divisions on every shared key; Binary-DP "
      "is restricted to two-input operators. On this snowflake schema "
      "the optimum happens to be binary - broadcast cascades into the "
      "dominant lineitem table; with balanced inputs the multi-way "
      "repartition plans take over, as bench_ablation's k-ary study "
      "shows.)\n");
  return 0;
}
