// LUBM walkthrough: generate a university dataset, partition it with a
// chosen method, then optimize and execute all ten LUBM benchmark queries
// with TD-Auto, reporting per-query plan shape, estimated vs measured
// cost, network traffic, and result counts. This is the paper's Section
// V-B pipeline as one runnable program.
//
// Usage: lubm_cluster [hash|2f|path|mincut] [universities] [nodes]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/strings.h"
#include "exec/cluster.h"
#include "exec/executor.h"
#include "optimizer/prepared_query.h"
#include "partition/hash_so.h"
#include "partition/min_edge_cut.h"
#include "partition/path_bmc.h"
#include "partition/two_hop.h"
#include "plan/plan.h"
#include "sparql/parser.h"
#include "workload/benchmark_queries.h"
#include "workload/lubm.h"

int main(int argc, char** argv) {
  using namespace parqo;

  std::string method = argc > 1 ? argv[1] : "hash";
  int universities = argc > 2 ? std::atoi(argv[2]) : 8;
  int nodes = argc > 3 ? std::atoi(argv[3]) : 10;

  std::unique_ptr<Partitioner> partitioner;
  if (method == "hash") {
    partitioner = std::make_unique<HashSoPartitioner>();
  } else if (method == "2f") {
    partitioner = std::make_unique<TwoHopForwardPartitioner>();
  } else if (method == "path") {
    partitioner = std::make_unique<PathBmcPartitioner>();
  } else if (method == "mincut") {
    partitioner = std::make_unique<MinEdgeCutPartitioner>();
  } else {
    std::fprintf(stderr, "usage: %s [hash|2f|path|mincut] [universities] "
                         "[nodes]\n",
                 argv[0]);
    return 2;
  }

  LubmConfig config;
  config.universities = universities;
  std::printf("generating LUBM-like data (%d universities)...\n",
              universities);
  RdfGraph graph = GenerateLubm(config);
  std::printf("  %s triples, %s vertices\n",
              WithThousandsSep(graph.NumTriples()).c_str(),
              WithThousandsSep(graph.vertices().size()).c_str());

  std::printf("partitioning with %s onto %d nodes...\n",
              partitioner->name().c_str(), nodes);
  PartitionAssignment assignment =
      partitioner->PartitionData(graph, nodes);
  std::printf("  replication factor %.2fx\n",
              assignment.ReplicationFactor(graph.NumTriples()));
  Cluster cluster(graph, assignment);

  OptimizeOptions options;
  options.cost_params.num_nodes = nodes;
  options.timeout_seconds = 60;

  std::printf("\n%-5s %-10s %6s %6s %12s %12s %14s %9s\n", "query", "via",
              "joins", "depth", "est. cost", "meas. cost", "rows shipped",
              "results");
  for (const BenchmarkQuery& bq : AllBenchmarkQueries()) {
    if (!bq.lubm) continue;
    Result<ParsedQuery> parsed = ParseSparql(bq.sparql);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", bq.name.c_str(),
                   parsed.status().ToString().c_str());
      return 1;
    }
    PreparedQuery prepared(parsed->patterns, *partitioner,
                           StatsFromData(graph));
    OptimizeResult r =
        Optimize(Algorithm::kTdAuto, prepared.inputs(), options);
    if (r.plan == nullptr) {
      std::printf("%-5s optimization timed out\n", bq.name.c_str());
      continue;
    }

    Executor executor(cluster, prepared.join_graph(), options.cost_params);
    ExecMetrics metrics;
    Result<BindingTable> result = executor.Execute(*r.plan, &metrics);
    if (!result.ok()) {
      std::printf("%-5s execution failed: %s\n", bq.name.c_str(),
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%-5s %-10s %6d %6d %12s %12.1f %14s %9zu\n",
                bq.name.c_str(), ToString(r.algorithm_used).c_str(),
                r.plan->NumJoinOps(), r.plan->JoinDepth(),
                FormatCostE(r.plan->total_cost).c_str(),
                metrics.measured_cost,
                WithThousandsSep(metrics.rows_transferred).c_str(),
                result->NumRows());
  }

  std::printf("\nplan for L7 (dense query), to show the bushy structure:\n");
  const BenchmarkQuery& l7 = GetBenchmarkQuery("L7");
  Result<ParsedQuery> parsed = ParseSparql(l7.sparql);
  PreparedQuery prepared(parsed->patterns, *partitioner,
                         StatsFromData(graph));
  OptimizeResult r =
      Optimize(Algorithm::kTdAuto, prepared.inputs(), options);
  if (r.plan != nullptr) {
    std::printf("%s", PlanToString(*r.plan, prepared.join_graph()).c_str());
  }
  return 0;
}
