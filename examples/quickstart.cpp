// Quickstart: the smallest end-to-end use of the parqo public API.
//
//   1. load an RDF dataset (N-Triples),
//   2. parse a SPARQL basic graph pattern,
//   3. partition the data across a simulated cluster,
//   4. optimize the query with TD-Auto,
//   5. execute the plan and print decoded results.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "exec/cluster.h"
#include "exec/executor.h"
#include "optimizer/prepared_query.h"
#include "partition/hash_so.h"
#include "plan/plan.h"
#include "rdf/ntriples.h"
#include "sparql/parser.h"

int main() {
  using namespace parqo;

  // 1. A tiny dataset: who works where, and which labs belong to whom.
  const char* kData = R"(
<http://ex/alice>  <http://ex/worksFor> <http://ex/db-lab> .
<http://ex/bob>    <http://ex/worksFor> <http://ex/db-lab> .
<http://ex/carol>  <http://ex/worksFor> <http://ex/ml-lab> .
<http://ex/db-lab> <http://ex/partOf>   <http://ex/cs-dept> .
<http://ex/ml-lab> <http://ex/partOf>   <http://ex/cs-dept> .
<http://ex/alice>  <http://ex/knows>    <http://ex/carol> .
<http://ex/bob>    <http://ex/knows>    <http://ex/alice> .
)";
  Result<RdfGraph> graph = ParseNTriplesString(kData);
  if (!graph.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu triples\n", graph->NumTriples());

  // 2. A 3-pattern chain-plus-branch query.
  Result<ParsedQuery> query = ParseSparql(R"(
    SELECT ?person ?dept ?friend WHERE {
      ?person <http://ex/worksFor> ?lab .
      ?lab    <http://ex/partOf>   ?dept .
      ?person <http://ex/knows>    ?friend .
    })");
  if (!query.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }

  // 3. Hash-partition onto 4 simulated nodes.
  HashSoPartitioner partitioner;
  const int kNodes = 4;
  Cluster cluster(*graph, partitioner.PartitionData(*graph, kNodes));

  // 4. Optimize: PreparedQuery wires join graph, locality index (from the
  // partitioner's combine function), and exact statistics together.
  PreparedQuery prepared(query->patterns, partitioner,
                         StatsFromData(*graph));
  OptimizeOptions options;
  options.cost_params.num_nodes = kNodes;
  OptimizeResult optimized =
      Optimize(Algorithm::kTdAuto, prepared.inputs(), options);
  if (optimized.plan == nullptr) {
    std::fprintf(stderr, "optimization failed\n");
    return 1;
  }
  std::printf("\noptimized with %s in %.4fs (%llu operators "
              "enumerated):\n%s\n",
              ToString(optimized.algorithm_used).c_str(),
              optimized.seconds,
              static_cast<unsigned long long>(optimized.enumerated),
              PlanToString(*optimized.plan, prepared.join_graph()).c_str());

  // 5. Execute on the cluster and decode.
  Executor executor(cluster, prepared.join_graph(), options.cost_params);
  ExecMetrics metrics;
  Result<BindingTable> result = ExecuteAndProject(
      executor, *optimized.plan, *query, prepared.join_graph(), &metrics);
  if (!result.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("results (%zu rows, %llu rows shipped over the network):\n",
              result->NumRows(),
              static_cast<unsigned long long>(metrics.rows_transferred));
  for (std::size_t r = 0; r < result->NumRows(); ++r) {
    std::printf(" ");
    for (int c = 0; c < result->num_cols(); ++c) {
      const Term& term = graph->dict().Decode(result->At(r, c));
      std::printf(" ?%s=%s",
                  prepared.join_graph()
                      .var_name(result->schema()[c])
                      .c_str(),
                  term.lexical.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
