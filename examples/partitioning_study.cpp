// Partitioning study: how the choice of RDF data partitioning changes
// what the optimizer can do. For one query (default: the paper's L6 tree
// query) this example shows, per partitioning method:
//
//   * the maximal local queries the generic model derives (Section III-B),
//   * which/how many subqueries become local,
//   * the plan TD-Auto picks and its estimated cost,
//   * data-side replication on a small generated dataset.
//
// This is Section II-C's "an engine should choose its partitioning per
// application" argument made tangible.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/strings.h"
#include "optimizer/join_graph_reduction.h"
#include "optimizer/prepared_query.h"
#include "partition/hash_so.h"
#include "partition/hot_query.h"
#include "partition/min_edge_cut.h"
#include "partition/path_bmc.h"
#include "partition/two_hop.h"
#include "plan/plan.h"
#include "sparql/parser.h"
#include "workload/benchmark_queries.h"
#include "workload/lubm.h"

int main(int argc, char** argv) {
  using namespace parqo;

  const std::string query_name = argc > 1 ? argv[1] : "L6";
  const BenchmarkQuery& bq = GetBenchmarkQuery(query_name);
  Result<ParsedQuery> parsed = ParseSparql(bq.sparql);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  std::printf("query %s (%s, %d patterns):\n%s\n\n", bq.name.c_str(),
              ToString(bq.shape).c_str(), bq.num_patterns,
              parsed->ToString().c_str());

  LubmConfig config;
  config.universities = 3;
  RdfGraph graph = GenerateLubm(config);
  std::printf("dataset: %s triples\n\n",
              WithThousandsSep(graph.NumTriples()).c_str());

  HashSoPartitioner hash_base;  // shared base for the dynamic wrapper
  std::vector<std::unique_ptr<Partitioner>> partitioners;
  partitioners.push_back(std::make_unique<HashSoPartitioner>());
  partitioners.push_back(std::make_unique<TwoHopForwardPartitioner>());
  partitioners.push_back(std::make_unique<PathBmcPartitioner>());
  partitioners.push_back(std::make_unique<MinEdgeCutPartitioner>());
  // The dynamic model of the paper's appendix: the system has observed
  // this very query as "hot" and re-co-located its matches on top of
  // plain hash partitioning — everything becomes one local query.
  partitioners.push_back(std::make_unique<HotQueryPartitioner>(
      hash_base,
      std::vector<std::vector<TriplePattern>>{parsed->patterns}));

  for (const auto& partitioner : partitioners) {
    std::printf("=== %s ===\n", partitioner->name().c_str());
    PreparedQuery prepared(parsed->patterns, *partitioner,
                           StatsFromData(graph));
    const JoinGraph& jg = prepared.join_graph();

    // Maximal local queries (deduplicated, dominated ones dropped).
    std::printf("maximal local queries:");
    for (TpSet mlq : prepared.local_index().mlqs()) {
      std::printf(" %s", mlq.ToString().c_str());
    }
    std::printf("\n");

    // How much of the subquery lattice is local?
    std::size_t local = 0, connected = 0;
    for (std::uint64_t s = 1; s < (1ull << jg.num_tps()); ++s) {
      TpSet sq(s);
      if (!jg.IsConnected(sq)) continue;
      ++connected;
      if (prepared.local_index().IsLocal(sq)) ++local;
    }
    std::printf("local connected subqueries: %zu / %zu\n", local,
                connected);

    // What would HGR collapse the query into?
    JgrResult jgr =
        ReduceJoinGraph(jg, prepared.local_index(), prepared.estimator(),
                        4096);
    std::printf("join-graph reduction groups:");
    for (TpSet g : jgr.groups) std::printf(" %s", g.ToString().c_str());
    std::printf("\n");

    // Replication cost of the data side.
    PartitionAssignment assignment = partitioner->PartitionData(graph, 10);
    std::printf("data replication: %.2fx\n",
                assignment.ReplicationFactor(graph.NumTriples()));

    // The plan TD-Auto picks.
    OptimizeOptions options;
    OptimizeResult r =
        Optimize(Algorithm::kTdAuto, prepared.inputs(), options);
    if (r.plan == nullptr) {
      std::printf("optimization timed out\n\n");
      continue;
    }
    std::printf("TD-Auto plan (via %s, est. cost %s):\n%s\n",
                ToString(r.algorithm_used).c_str(),
                FormatCostE(r.plan->total_cost).c_str(),
                PlanToString(*r.plan, jg).c_str());
  }
  return 0;
}
