// Reproduces Table VII: the search-space size (number of enumerated join
// operators / plans) per algorithm for chain, cycle, tree, and dense
// queries of 8, 16, and 30 triple patterns, with no locality (the table
// isolates pure enumeration behavior; hash locality is irrelevant to the
// chain/cycle closed forms).
//
// Validation anchors: TD-CMD chain/cycle cells must equal the paper's
// closed forms exactly — (n^3-n)/6 and (n^3-n^2)/2, i.e. 84/680/4,495 and
// 224/1,920/13,050 — independent of the random seed. MSC and DP-Bushy
// time out ("N/A") on the larger shapes, TD-CMDP <= TD-CMD, and
// HGR-TD-CMD is the smallest.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "common/rng.h"
#include "optimizer/enumeration_stats.h"
#include "partition/hash_so.h"
#include "partition/local_query_index.h"
#include "query/query_graph.h"

namespace parqo::bench {
namespace {

// The paper's whole Section V-C study runs over hash-partitioned data, so
// subqueries sharing a vertex are local. This is what makes DP-Bushy's
// tree/dense search spaces tiny in Table VII (it stops at local
// subqueries) while TD-CMD's chain/cycle counts still equal the closed
// forms (Algorithm 1 enumerates local subqueries too).
OptimizeResult RunUnderHash(Algorithm algorithm, const GeneratedQuery& q,
                            const Flags& flags) {
  JoinGraph jg(q.patterns);
  QueryGraph qg(jg);
  HashSoPartitioner hash;
  LocalQueryIndex index(qg, hash);
  CardinalityEstimator estimator(jg, q.MakeStats(jg));
  OptimizerInputs in;
  in.join_graph = &jg;
  in.query_graph = &qg;
  in.local_index = &index;
  in.estimator = &estimator;
  OptimizeOptions options;
  options.timeout_seconds = flags.timeout;
  options.cost_params.num_nodes = flags.nodes;
  return Optimize(algorithm, in, options);
}

int Main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  std::printf("=== Table VII: size of search space ===\n");
  std::printf("cells: enumerated join operators / plans; N/A = >%.0fs\n\n",
              flags.timeout);

  const std::vector<std::pair<QueryShape, std::string>> shapes{
      {QueryShape::kChain, "chain"},
      {QueryShape::kCycle, "cycle"},
      {QueryShape::kTree, "tree"},
      {QueryShape::kDense, "dense"},
  };
  std::vector<int> sizes{8, 16, 30};
  if (flags.quick) sizes = {8, 16};
  const std::vector<std::pair<Algorithm, std::string>> algorithms{
      {Algorithm::kMsc, "MSC"},
      {Algorithm::kDpBushy, "DP-Bushy"},
      {Algorithm::kTdCmd, "TD-CMD"},
      {Algorithm::kTdCmdp, "TD-CMDP"},
      {Algorithm::kHgrTdCmd, "HGR-TD-CMD"},
      {Algorithm::kTdAuto, "TD-Auto"},
  };

  for (const auto& [shape, shape_name] : shapes) {
    std::printf("--- %s ---\n", shape_name.c_str());
    std::vector<std::string> header;
    for (int n : sizes) header.push_back("#tp=" + std::to_string(n));
    PrintRow("algorithm", header);
    PrintRule(12, static_cast<int>(sizes.size()));
    for (const auto& [algorithm, name] : algorithms) {
      std::vector<std::string> cells;
      for (int n : sizes) {
        Rng rng(flags.seed + n);
        GeneratedQuery q = GenerateRandomQuery(shape, n, rng);
        OptimizeResult r = RunUnderHash(algorithm, q, flags);
        cells.push_back(CountCell(r));
      }
      PrintRow(name, cells);
    }
    // Closed-form anchors from Section III-D.
    if (shape == QueryShape::kChain || shape == QueryShape::kCycle) {
      std::vector<std::string> cells;
      for (int n : sizes) {
        std::uint64_t expected = shape == QueryShape::kChain
                                     ? ChainSearchSpace(n)
                                     : CycleSearchSpace(n);
        cells.push_back(WithThousandsSep(expected));
      }
      PrintRow("(Eq. 8/9)", cells);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace parqo::bench

int main(int argc, char** argv) { return parqo::bench::Main(argc, argv); }
