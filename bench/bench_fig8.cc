// Reproduces Figure 8: the cumulative frequency distribution of plan cost
// normalized to TD-CMD's optimal plan, per query shape, for the random
// query workload (the paper's own generator: sizes 2..30, three
// cardinality draws each).
//
// Expected shape: TD-CMDP's and TD-Auto's curves hug 1.0 (nearly all
// plans optimal or near-optimal), HGR-TD-CMD is close behind, DP-Bushy
// clearly worse on dense (90% of its dense plans beaten in the paper),
// and MSC has the heaviest tail.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "partition/hash_so.h"

namespace parqo::bench {
namespace {

const std::vector<std::pair<Algorithm, std::string>> kAlgorithms{
    {Algorithm::kTdCmdp, "TD-CMDP"}, {Algorithm::kHgrTdCmd, "HGR"},
    {Algorithm::kMsc, "MSC"},        {Algorithm::kDpBushy, "DP-Bushy"},
    {Algorithm::kTdAuto, "TD-Auto"},
};

int Main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  std::printf("=== Figure 8: CDF of plan cost relative to TD-CMD ===\n");
  std::printf(
      "random queries, sizes 4..%d, %d cardinality draws each; only "
      "queries TD-CMD finishes within %.0fs enter the universe\n\n",
      flags.quick ? 12 : 16, flags.repeats, flags.timeout);

  const std::vector<std::pair<QueryShape, std::string>> shapes{
      {QueryShape::kChain, "(a) chain"},
      {QueryShape::kCycle, "(b) cycle"},
      {QueryShape::kTree, "(c) tree"},
      {QueryShape::kDense, "(d) dense"},
  };
  // TD-CMD must finish to define the ratio, so the sweep stops at sizes
  // it can optimize exhaustively (the paper applies the same 600 s rule).
  const int max_n = flags.quick ? 12 : 16;

  static const double kBuckets[] = {1.0, 1.01, 1.1, 1.25, 1.5,
                                    2.0, 4.0,  8.0, 1e300};

  for (const auto& [shape, title] : shapes) {
    std::map<std::string, std::vector<double>> ratios;
    std::size_t universe = 0;
    for (int n = 4; n <= max_n; n += 2) {
      for (int rep = 0; rep < flags.repeats; ++rep) {
        Rng rng(flags.seed + 1000 * n + rep);
        GeneratedQuery q = GenerateRandomQuery(shape, n, rng);
        HashSoPartitioner hash;
        auto reference_query = Prepare(q, hash);
        OptimizeResult reference =
            Run(Algorithm::kTdCmd, *reference_query, flags);
        if (reference.plan == nullptr) continue;
        ++universe;
        for (const auto& [algorithm, name] : kAlgorithms) {
          auto query = Prepare(q, hash);
          OptimizeResult r = Run(algorithm, *query, flags);
          if (r.plan == nullptr) continue;
          ratios[name].push_back(r.plan->total_cost /
                                 reference.plan->total_cost);
        }
      }
    }

    std::printf("--- %s (universe: %zu queries) ---\n", title.c_str(),
                universe);
    PrintRow("algorithm",
             {"<=1.0", "1.01", "1.1", "1.25", "1.5", "2", "4", "8", "inf"},
             10, 7);
    PrintRule(10, 9, 7);
    for (const auto& [algorithm, name] : kAlgorithms) {
      std::vector<double>& r = ratios[name];
      std::sort(r.begin(), r.end());
      std::vector<std::string> cells;
      for (double b : kBuckets) {
        std::size_t covered =
            std::upper_bound(r.begin(), r.end(), b + 1e-12) - r.begin();
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%5.1f%%",
                      universe == 0
                          ? 0.0
                          : 100.0 * static_cast<double>(covered) /
                                static_cast<double>(universe));
        cells.push_back(buf);
      }
      PrintRow(name, cells, 10, 7);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace parqo::bench

int main(int argc, char** argv) { return parqo::bench::Main(argc, argv); }
