// Reproduces Table IV: query optimization time for the fifteen benchmark
// queries (Table III) under TD-Auto, MSC, and DP-Bushy, using exact
// statistics from generated LUBM-like / UniProt-like data and Hash-SO
// locality (the setting shared by all three optimizers in Section V-B).
//
// Expected shape (paper): MSC is the slowest and blows up on the dense
// queries (L9 took 432 s, L10 > 10 h in the paper); DP-Bushy is fast but
// explores little; TD-Auto stays in milliseconds-to-sub-second for every
// query.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "partition/hash_so.h"
#include "query/shape.h"
#include "sparql/parser.h"
#include "workload/benchmark_queries.h"
#include "workload/lubm.h"
#include "workload/uniprot.h"

namespace parqo::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  std::printf("=== Table IV: query optimization time ===\n");
  std::printf(
      "datasets: LUBM-like (%d universities), UniProt-like (%d proteins); "
      "timeout %.0fs\n\n",
      flags.lubm_universities, flags.uniprot_proteins, flags.timeout);

  LubmConfig lubm_cfg;
  lubm_cfg.universities = flags.lubm_universities;
  RdfGraph lubm = GenerateLubm(lubm_cfg);
  UniprotConfig uni_cfg;
  uni_cfg.proteins = flags.uniprot_proteins;
  RdfGraph uniprot = GenerateUniprot(uni_cfg);
  std::printf("LUBM-like triples:    %s\n",
              WithThousandsSep(lubm.NumTriples()).c_str());
  std::printf("UniProt-like triples: %s\n\n",
              WithThousandsSep(uniprot.NumTriples()).c_str());

  // Table III recap.
  PrintRow("Query", {"shape", "#patterns"});
  PrintRule(12, 2);
  for (const BenchmarkQuery& bq : AllBenchmarkQueries()) {
    PrintRow(bq.name,
             {ToString(bq.shape), std::to_string(bq.num_patterns)});
  }
  std::printf("\n");

  HashSoPartitioner hash;
  const std::vector<Algorithm> algorithms{
      Algorithm::kTdAuto, Algorithm::kMsc, Algorithm::kDpBushy};

  PrintRow("Query", {"TD-Auto", "MSC", "DP-Bushy", "(TD-Auto via)"});
  PrintRule(12, 4);
  for (const BenchmarkQuery& bq : AllBenchmarkQueries()) {
    auto parsed = ParseSparql(bq.sparql);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", bq.name.c_str(),
                   parsed.status().ToString().c_str());
      return 1;
    }
    const RdfGraph& data = bq.lubm ? lubm : uniprot;
    PreparedQuery query(parsed->patterns, hash, StatsFromData(data));

    std::vector<std::string> cells;
    std::string via;
    for (Algorithm algorithm : algorithms) {
      OptimizeResult r = Run(algorithm, query, flags);
      cells.push_back(TimeCell(r, flags));
      if (algorithm == Algorithm::kTdAuto) {
        via = ToString(r.algorithm_used);
      }
    }
    cells.push_back(via);
    PrintRow(bq.name, cells);
  }
  return 0;
}

}  // namespace
}  // namespace parqo::bench

int main(int argc, char** argv) { return parqo::bench::Main(argc, argv); }
