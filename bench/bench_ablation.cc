// Ablation studies for the design choices DESIGN.md calls out:
//
//   1. TD-CMDP's three pruning rules (Section IV-A) toggled one at a
//      time: how much search-space reduction and plan-quality loss does
//      each rule contribute?
//   2. TD-Auto's decision-tree thresholds (Section IV-C): sweep theta_d
//      and lambda_n over a mixed workload and report mean optimization
//      time and mean cost ratio versus exhaustive TD-CMD.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "optimizer/td_auto.h"
#include "optimizer/td_cmd.h"
#include "partition/hash_so.h"
#include "query/shape.h"

namespace parqo::bench {
namespace {

struct RuleConfig {
  std::string name;
  TdCmdRules rules;
};

std::vector<RuleConfig> RuleConfigs() {
  std::vector<RuleConfig> out;
  out.push_back({"none (TD-CMD)", TdCmdRules{}});
  TdCmdRules r1;
  r1.cmd_mode = CmdMode::kCcmdAndBinary;
  out.push_back({"rule1 (ccmd)", r1});
  TdCmdRules r2;
  r2.binary_broadcast_only = true;
  out.push_back({"rule2 (bin-bcast)", r2});
  TdCmdRules r3;
  r3.local_short_circuit = true;
  out.push_back({"rule3 (local)", r3});
  TdCmdRules all;
  all.cmd_mode = CmdMode::kCcmdAndBinary;
  all.binary_broadcast_only = true;
  all.local_short_circuit = true;
  out.push_back({"all (TD-CMDP)", all});
  return out;
}

int Main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  const int kQueriesPerShape = flags.quick ? 3 : 10;

  std::printf("=== Ablation 1: TD-CMDP pruning rules ===\n");
  std::printf(
      "mixed star/tree/dense workload (n=8..12), hash locality; cells: "
      "mean enumerated ops | mean cost ratio vs TD-CMD\n\n");

  // Build the workload once.
  std::vector<GeneratedQuery> workload;
  {
    Rng rng(flags.seed);
    for (QueryShape shape :
         {QueryShape::kStar, QueryShape::kTree, QueryShape::kDense}) {
      for (int i = 0; i < kQueriesPerShape; ++i) {
        // Sizes 8..12: star queries grow with Bell numbers (Eq. 7), so
        // the exhaustive reference stays tractable.
        workload.push_back(GenerateRandomQuery(
            shape, 8 + 2 * (i % 3), rng));
      }
    }
  }

  HashSoPartitioner hash;
  OptimizeOptions options;
  options.timeout_seconds = flags.timeout;
  options.cost_params.num_nodes = flags.nodes;

  // Reference costs.
  std::vector<double> reference_costs;
  for (const GeneratedQuery& q : workload) {
    auto query = Prepare(q, hash);
    OptimizeResult r =
        RunTdCmdWithRules(query->inputs(), options, TdCmdRules{});
    reference_costs.push_back(r.plan ? r.plan->total_cost : -1);
  }

  PrintRow("rules", {"mean ops", "mean ratio", "worst ratio"}, 18);
  PrintRule(18, 3);
  for (const RuleConfig& cfg : RuleConfigs()) {
    double ops = 0, ratio_sum = 0, worst = 0;
    int counted = 0;
    for (std::size_t i = 0; i < workload.size(); ++i) {
      if (reference_costs[i] <= 0) continue;
      auto query = Prepare(workload[i], hash);
      OptimizeResult r =
          RunTdCmdWithRules(query->inputs(), options, cfg.rules);
      if (r.plan == nullptr) continue;
      ops += static_cast<double>(r.enumerated);
      double ratio = r.plan->total_cost / reference_costs[i];
      ratio_sum += ratio;
      worst = std::max(worst, ratio);
      ++counted;
    }
    char ops_buf[32], ratio_buf[32], worst_buf[32];
    std::snprintf(ops_buf, sizeof(ops_buf), "%.0f", ops / counted);
    std::snprintf(ratio_buf, sizeof(ratio_buf), "%.4f",
                  ratio_sum / counted);
    std::snprintf(worst_buf, sizeof(worst_buf), "%.4f", worst);
    PrintRow(cfg.name, {ops_buf, ratio_buf, worst_buf}, 18);
  }

  std::printf("\n=== Ablation 2: k-ary vs binary-only plans ===\n");
  std::printf(
      "the paper's core claim: multi-way joins beat binary plans in "
      "MapReduce-like engines. Cells: mean/worst cost ratio of the best "
      "binary-only plan (TriAD's space) vs TD-CMD's k-ary optimum.\n\n");
  {
    PrintRow("shape", {"mean ratio", "worst ratio"}, 10);
    PrintRule(10, 2);
    Rng rng(flags.seed + 7);
    for (QueryShape shape :
         {QueryShape::kStar, QueryShape::kTree, QueryShape::kDense}) {
      double ratio_sum = 0, worst = 0;
      int counted = 0;
      for (int i = 0; i < kQueriesPerShape; ++i) {
        GeneratedQuery q = GenerateRandomQuery(shape, 10, rng);
        // No locality: isolate the distributed-join question (under hash
        // locality a star is one local join either way).
        NoLocalityFixture fx1(q), fx2(q);
        OptimizeResult kary =
            RunTdCmdWithRules(fx1.inputs(), options, TdCmdRules{});
        TdCmdRules binary;
        binary.cmd_mode = CmdMode::kBinaryOnly;
        OptimizeResult bin =
            RunTdCmdWithRules(fx2.inputs(), options, binary);
        if (kary.plan == nullptr || bin.plan == nullptr) continue;
        double ratio = bin.plan->total_cost / kary.plan->total_cost;
        ratio_sum += ratio;
        worst = std::max(worst, ratio);
        ++counted;
      }
      char mean_buf[32], worst_buf[32];
      std::snprintf(mean_buf, sizeof(mean_buf), "%.4f",
                    ratio_sum / counted);
      std::snprintf(worst_buf, sizeof(worst_buf), "%.4f", worst);
      PrintRow(ToString(shape), {mean_buf, worst_buf}, 10);
    }
  }

  std::printf("\n=== Ablation 3: TD-Auto thresholds ===\n");
  std::printf(
      "cells: mean optimization seconds | mean cost ratio vs TD-CMD\n\n");
  PrintRow("thresholds", {"mean secs", "mean ratio"}, 24);
  PrintRule(24, 2);
  for (int theta_d : {3, 5, 8}) {
    for (int lambda_n : {10, 14, 18}) {
      OptimizeOptions tuned = options;
      tuned.theta_d = theta_d;
      tuned.lambda_n = lambda_n;
      double secs = 0, ratio_sum = 0;
      int counted = 0;
      for (std::size_t i = 0; i < workload.size(); ++i) {
        if (reference_costs[i] <= 0) continue;
        auto query = Prepare(workload[i], hash);
        OptimizeResult r = RunTdAuto(query->inputs(), tuned);
        if (r.plan == nullptr) continue;
        secs += r.seconds;
        ratio_sum += r.plan->total_cost / reference_costs[i];
        ++counted;
      }
      char label[64], secs_buf[32], ratio_buf[32];
      std::snprintf(label, sizeof(label), "theta_d=%d lambda_n=%d",
                    theta_d, lambda_n);
      std::snprintf(secs_buf, sizeof(secs_buf), "%.5f", secs / counted);
      std::snprintf(ratio_buf, sizeof(ratio_buf), "%.4f",
                    ratio_sum / counted);
      PrintRow(label, {secs_buf, ratio_buf}, 24);
    }
  }
  return 0;
}

}  // namespace
}  // namespace parqo::bench

int main(int argc, char** argv) { return parqo::bench::Main(argc, argv); }
