// bench_main — the canonical end-to-end sweep: optimize AND execute every
// benchmark query (LUBM L1-L10, UniProt U1-U5) plus a WatDiv template
// subset against generated WatDiv data, then emit one machine-readable
// BENCH_main.json with per-query optimize time, plan cost, and measured
// traffic, and the process-wide metrics snapshot. CI's bench-smoke step
// and EXPERIMENTS.md's trend tracking both read this file.
//
//   bench_main [--quick] [--nodes=N] [--timeout=S] [--json=PATH]
//
// The JSON layout is documented in EXPERIMENTS.md ("BENCH_main.json").

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/strings.h"
#include "exec/cluster.h"
#include "exec/executor.h"
#include "optimizer/prepared_query.h"
#include "partition/hash_so.h"
#include "partition/local_query_index.h"
#include "query/query_graph.h"
#include "query/shape.h"
#include "sparql/parser.h"
#include "stats/data_stats.h"
#include "workload/benchmark_queries.h"
#include "workload/lubm.h"
#include "workload/random_query.h"
#include "workload/uniprot.h"
#include "workload/watdiv.h"

namespace parqo::bench {
namespace {

struct Record {
  std::string workload;
  std::string name;
  double optimize_seconds = 0;
  double plan_cost = 0;
  double measured_cost = 0;
  double total_work = 0;
  std::uint64_t enumerated = 0;
  std::uint64_t result_rows = 0;
  std::uint64_t rows_scanned = 0;
  std::uint64_t rows_transferred = 0;
  std::uint64_t bytes_shipped = 0;
  std::uint64_t distributed_joins = 0;
  bool timed_out = false;
  bool executed = false;
  /// Synthetic dense/cycle stress queries (Table VII shapes) that are
  /// optimized but never executed: there is no backing dataset, their
  /// purpose is a high `enumerated` count so optimize_seconds tracks the
  /// enumeration hot path. Excluded from the all_executed invariant.
  bool optimize_only = false;

  /// --faults mode: the same plan re-executed under a seeded FaultPlan
  /// (crashes + stragglers + dropped shipments). "recovered" means the
  /// run returned OK; "rows_match" means its result was row-for-row
  /// identical to the fault-free run — the chaos invariant.
  /// Cardinality-estimation accuracy: per-operator q-error of the
  /// baseline plan (Eq. 10-11 independence over exact per-pattern stats)
  /// and of a re-planned run whose estimator also sees measured pairwise
  /// join cardinalities from the aggregated indexes. Geometric mean and
  /// max over the operators whose true cardinality is nonzero.
  bool qerror_run = false;
  double qerr_base_geo = 0, qerr_base_max = 0;
  double qerr_pair_geo = 0, qerr_pair_max = 0;
  double qerr_base_log_sum = 0, qerr_pair_log_sum = 0;
  std::uint64_t qerr_base_ops = 0, qerr_pair_ops = 0;

  bool fault_run = false;
  bool fault_recovered = false;
  bool fault_rows_match = false;
  double wall_seconds = 0;        ///< Fault-free execution wall time.
  double fault_wall_seconds = 0;  ///< Execution wall time under faults.
  std::uint64_t recovery_attempts = 0;
  std::uint64_t operators_reexecuted = 0;
  std::uint64_t rows_reshipped = 0;
  std::uint64_t shipments_dropped = 0;
  std::uint64_t node_crashes = 0;
};

/// Row-for-row equality up to order (both tables are deduplicated, so
/// sorted row multisets coincide iff the results are identical).
bool SameRows(const BindingTable& a, const BindingTable& b) {
  if (a.schema() != b.schema() || a.NumRows() != b.NumRows()) return false;
  auto rows = [](const BindingTable& t) {
    std::vector<std::vector<TermId>> out;
    out.reserve(t.NumRows());
    for (std::size_t r = 0; r < t.NumRows(); ++r) {
      std::vector<TermId> row(t.num_cols());
      for (int c = 0; c < t.num_cols(); ++c) row[c] = t.At(r, c);
      out.push_back(std::move(row));
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  return rows(a) == rows(b);
}

std::string JsonNum(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Per-operator q-error summary over one execution's recorded
/// estimated/actual cardinalities. Operators whose true cardinality is
/// zero are skipped (q-error is undefined there).
struct QErrorStats {
  double geo = 0, max = 0, log_sum = 0;
  std::uint64_t ops = 0;
};

QErrorStats QErrorOf(const std::vector<ExecMetrics::OpCardinality>& ops) {
  QErrorStats s;
  for (const ExecMetrics::OpCardinality& oc : ops) {
    if (oc.actual == 0 || oc.estimated <= 0) continue;
    const double act = static_cast<double>(oc.actual);
    const double q = std::max(oc.estimated / act, act / oc.estimated);
    s.log_sum += std::log(q);
    s.max = std::max(s.max, q);
    ++s.ops;
  }
  if (s.ops > 0) s.geo = std::exp(s.log_sum / static_cast<double>(s.ops));
  return s;
}

std::string ToJson(const Record& r) {
  std::string out = "    {";
  out += "\"workload\": \"" + r.workload + "\", ";
  out += "\"name\": \"" + r.name + "\", ";
  out += "\"optimize_seconds\": " + JsonNum(r.optimize_seconds) + ", ";
  out += "\"plan_cost\": " + JsonNum(r.plan_cost) + ", ";
  out += "\"measured_cost\": " + JsonNum(r.measured_cost) + ", ";
  out += "\"total_work\": " + JsonNum(r.total_work) + ", ";
  out += "\"enumerated\": " + std::to_string(r.enumerated) + ", ";
  out += "\"result_rows\": " + std::to_string(r.result_rows) + ", ";
  out += "\"rows_scanned\": " + std::to_string(r.rows_scanned) + ", ";
  out += "\"rows_transferred\": " + std::to_string(r.rows_transferred) +
         ", ";
  out += "\"bytes_shipped\": " + std::to_string(r.bytes_shipped) + ", ";
  out += "\"distributed_joins\": " + std::to_string(r.distributed_joins) +
         ", ";
  out += std::string("\"timed_out\": ") + (r.timed_out ? "true" : "false") +
         ", ";
  out += std::string("\"executed\": ") + (r.executed ? "true" : "false");
  out += std::string(", \"optimize_only\": ") +
         (r.optimize_only ? "true" : "false");
  if (r.qerror_run) {
    out += ", \"qerror\": {";
    out += "\"baseline_geomean\": " + JsonNum(r.qerr_base_geo) + ", ";
    out += "\"baseline_max\": " + JsonNum(r.qerr_base_max) + ", ";
    out += "\"pairwise_geomean\": " + JsonNum(r.qerr_pair_geo) + ", ";
    out += "\"pairwise_max\": " + JsonNum(r.qerr_pair_max) + ", ";
    out += "\"baseline_ops\": " + std::to_string(r.qerr_base_ops) + ", ";
    out += "\"pairwise_ops\": " + std::to_string(r.qerr_pair_ops);
    out += "}";
  }
  if (r.fault_run) {
    out += ", \"fault\": {";
    out += std::string("\"recovered\": ") +
           (r.fault_recovered ? "true" : "false") + ", ";
    out += std::string("\"rows_match\": ") +
           (r.fault_rows_match ? "true" : "false") + ", ";
    out += "\"wall_seconds\": " + JsonNum(r.wall_seconds) + ", ";
    out += "\"fault_wall_seconds\": " + JsonNum(r.fault_wall_seconds) +
           ", ";
    out += "\"recovery_attempts\": " +
           std::to_string(r.recovery_attempts) + ", ";
    out += "\"operators_reexecuted\": " +
           std::to_string(r.operators_reexecuted) + ", ";
    out += "\"rows_reshipped\": " + std::to_string(r.rows_reshipped) +
           ", ";
    out += "\"shipments_dropped\": " +
           std::to_string(r.shipments_dropped) + ", ";
    out += "\"node_crashes\": " + std::to_string(r.node_crashes);
    out += "}";
  }
  out += "}";
  return out;
}

/// One entry of the execute-side stress set (DESIGN.md section 13): a
/// synthetic join-heavy query run through BOTH execution engines, so the
/// batch kernels' before/after walls live in the same BENCH_main.json
/// the optimizer numbers do. `engines_rows_match` is operator== on the
/// two result tables — bit-identical, not set-equal.
struct ExecStressRecord {
  std::string name;
  std::uint64_t triples = 0;
  std::uint64_t result_rows = 0;
  double row_wall_seconds = 0;
  double batch_wall_seconds = 0;
  bool engines_rows_match = false;
};

std::string ExecStressToJson(const ExecStressRecord& r) {
  std::string out = "    {";
  out += "\"name\": \"" + r.name + "\", ";
  out += "\"triples\": " + std::to_string(r.triples) + ", ";
  out += "\"result_rows\": " + std::to_string(r.result_rows) + ", ";
  out += "\"row_wall_seconds\": " + JsonNum(r.row_wall_seconds) + ", ";
  out += "\"batch_wall_seconds\": " + JsonNum(r.batch_wall_seconds) + ", ";
  out += "\"speedup\": " +
         JsonNum(r.batch_wall_seconds > 0
                     ? r.row_wall_seconds / r.batch_wall_seconds
                     : 0) +
         ", ";
  out += std::string("\"engines_rows_match\": ") +
         (r.engines_rows_match ? "true" : "false");
  out += "}";
  return out;
}

/// Random edge set over `entities` subjects/objects per predicate p0..pk:
/// every pairwise join has ~edges^2/entities matching pairs, so the
/// execute cost is dominated by the join kernels, not by scans.
RdfGraph MakeExecStressGraph(int entities, int edges_per_pred, int preds,
                             std::uint64_t seed) {
  Dictionary dict;
  std::vector<TermId> ent(entities);
  for (int i = 0; i < entities; ++i) {
    ent[i] = dict.EncodeIri("se" + std::to_string(i));
  }
  std::vector<TermId> pred(preds);
  for (int j = 0; j < preds; ++j) {
    pred[j] = dict.EncodeIri("p" + std::to_string(j));
  }
  Rng rng(seed);
  std::vector<Triple> triples;
  triples.reserve(static_cast<std::size_t>(preds) * edges_per_pred);
  for (int j = 0; j < preds; ++j) {
    for (int k = 0; k < edges_per_pred; ++k) {
      triples.push_back({ent[rng.Uniform(0, entities - 1)], pred[j],
                         ent[rng.Uniform(0, entities - 1)]});
    }
  }
  return RdfGraph(std::move(dict), std::move(triples));
}

ExecStressRecord RunExecStress(const std::string& name,
                               const std::string& sparql,
                               const RdfGraph& graph, const Flags& flags) {
  ExecStressRecord rec;
  rec.name = name;
  rec.triples = graph.NumTriples();

  Result<ParsedQuery> parsed = ParseSparql(sparql);
  PARQO_CHECK(parsed.ok());
  HashSoPartitioner hash;
  Cluster cluster(graph, hash.PartitionData(graph, flags.nodes));
  PreparedQuery prepared(parsed->patterns, hash, StatsFromData(graph));
  OptimizeOptions options;
  options.timeout_seconds = flags.timeout;
  options.cost_params.num_nodes = flags.nodes;
  OptimizeResult best =
      Optimize(Algorithm::kTdAuto, prepared.inputs(), options);
  PARQO_CHECK(best.plan != nullptr);

  // Best-of-N walls on the SAME plan: the engines differ only in the
  // per-node kernels.
  const int reps = flags.quick ? 1 : 3;
  auto run = [&](ExecEngine engine, double* wall) {
    Executor exec(cluster, prepared.join_graph(), options.cost_params,
                  /*parallel_nodes=*/true, RetryPolicy{}, engine);
    Result<BindingTable> rows = Status::Unavailable("unrun");
    *wall = std::numeric_limits<double>::infinity();
    for (int i = 0; i < reps; ++i) {
      ExecMetrics m;
      rows = exec.Execute(*best.plan, &m);
      PARQO_CHECK(rows.ok());
      *wall = std::min(*wall, m.wall_seconds);
    }
    return rows;
  };
  Result<BindingTable> row_rows = run(ExecEngine::kRow, &rec.row_wall_seconds);
  Result<BindingTable> batch_rows =
      run(ExecEngine::kBatch, &rec.batch_wall_seconds);
  rec.result_rows = batch_rows->NumRows();
  rec.engines_rows_match = *row_rows == *batch_rows;
  return rec;
}

/// The enumeration stress set: random dense and cycle queries (Section
/// V-A shapes) optimized under hash locality with synthetic statistics
/// and never executed. These are the queries whose candidate counts dwarf
/// the 15 benchmark queries, so their optimize_seconds is the number the
/// arena/flat-memo hot path is judged by (EXPERIMENTS.md's optimize-time
/// table).
Record RunOptimizeOnly(const std::string& workload, const std::string& name,
                       QueryShape shape, int num_tps, const Flags& flags) {
  Record rec;
  rec.workload = workload;
  rec.name = name;
  rec.optimize_only = true;

  Rng rng(flags.seed + num_tps);
  GeneratedQuery q = GenerateRandomQuery(shape, num_tps, rng);
  JoinGraph jg(q.patterns);
  QueryGraph qg(jg);
  HashSoPartitioner hash;
  LocalQueryIndex index(qg, hash);
  CardinalityEstimator estimator(jg, q.MakeStats(jg));
  OptimizerInputs in;
  in.join_graph = &jg;
  in.query_graph = &qg;
  in.local_index = &index;
  in.estimator = &estimator;
  OptimizeOptions options;
  options.timeout_seconds = flags.timeout;
  options.cost_params.num_nodes = flags.nodes;
  OptimizeResult best = Optimize(Algorithm::kTdAuto, in, options);
  rec.optimize_seconds = best.seconds;
  rec.enumerated = best.enumerated;
  rec.timed_out = best.timed_out;
  if (best.plan != nullptr) rec.plan_cost = best.plan->total_cost;
  return rec;
}

Record RunQuery(const std::string& workload, const std::string& name,
                const ParsedQuery& parsed, const Partitioner& partitioner,
                const RdfGraph& graph, const Cluster& cluster,
                const Flags& flags) {
  Record rec;
  rec.workload = workload;
  rec.name = name;

  PreparedQuery prepared(parsed.patterns, partitioner,
                         StatsFromData(graph));
  OptimizeOptions options;
  options.timeout_seconds = flags.timeout;
  options.cost_params.num_nodes = flags.nodes;
  OptimizeResult best =
      Optimize(Algorithm::kTdAuto, prepared.inputs(), options);
  rec.optimize_seconds = best.seconds;
  rec.enumerated = best.enumerated;
  rec.timed_out = best.timed_out;
  if (best.plan == nullptr) return rec;
  rec.plan_cost = best.plan->total_cost;

  Executor executor(cluster, prepared.join_graph(), options.cost_params,
                    /*parallel_nodes=*/true);
  executor.set_record_op_cardinalities(true);
  ExecMetrics metrics;
  Result<BindingTable> rows = ExecuteAndProject(
      executor, *best.plan, parsed, prepared.join_graph(), &metrics);
  if (!rows.ok()) {
    std::fprintf(stderr, "%s/%s: execution failed: %s\n", workload.c_str(),
                 name.c_str(), rows.status().ToString().c_str());
    return rec;
  }
  rec.executed = true;
  rec.measured_cost = metrics.measured_cost;
  rec.total_work = metrics.total_work;
  rec.result_rows = metrics.result_rows;
  rec.rows_scanned = metrics.rows_scanned;
  rec.rows_transferred = metrics.rows_transferred;
  rec.bytes_shipped = metrics.bytes_shipped;
  rec.distributed_joins = metrics.distributed_joins;
  rec.wall_seconds = metrics.wall_seconds;

  // Cardinality-estimation study: re-plan with measured pairwise join
  // cardinalities (exact |tp_i JOIN tp_j| from the aggregated indexes)
  // and execute that plan once, recording per-operator estimated vs
  // actual rows. Both plans' q-errors land in the JSON, so the gain of
  // the pairwise statistics over the Eq. 10-11 independence baseline is
  // tracked run over run.
  {
    DataStatsOptions stats_opts;
    stats_opts.pairwise_joins = true;
    PreparedQuery pair_prepared(parsed.patterns, partitioner,
                                StatsFromData(graph, stats_opts));
    OptimizeResult pair_best =
        Optimize(Algorithm::kTdAuto, pair_prepared.inputs(), options);
    if (pair_best.plan != nullptr) {
      Executor pair_exec(cluster, pair_prepared.join_graph(),
                         options.cost_params, /*parallel_nodes=*/true);
      pair_exec.set_record_op_cardinalities(true);
      ExecMetrics pair_metrics;
      Result<BindingTable> pair_rows =
          ExecuteAndProject(pair_exec, *pair_best.plan, parsed,
                            pair_prepared.join_graph(), &pair_metrics);
      if (pair_rows.ok()) {
        const QErrorStats base = QErrorOf(metrics.op_cards);
        const QErrorStats pair = QErrorOf(pair_metrics.op_cards);
        rec.qerror_run = base.ops > 0 && pair.ops > 0;
        rec.qerr_base_geo = base.geo;
        rec.qerr_base_max = base.max;
        rec.qerr_base_log_sum = base.log_sum;
        rec.qerr_base_ops = base.ops;
        rec.qerr_pair_geo = pair.geo;
        rec.qerr_pair_max = pair.max;
        rec.qerr_pair_log_sum = pair.log_sum;
        rec.qerr_pair_ops = pair.ops;
      }
    }
  }

  if (flags.faults) {
    // The recovery-overhead study of EXPERIMENTS.md: re-run the same plan
    // with crashes, a straggler or two, and a lossy network, and report
    // how much wall time and re-shipped traffic recovery costs. The seed
    // mixes the run seed with the query name so each query draws a
    // distinct but reproducible fault schedule.
    std::uint64_t fault_seed = flags.seed;
    for (char c : workload + "/" + name) {
      fault_seed = fault_seed * 131 + static_cast<unsigned char>(c);
    }
    FaultPlanConfig config;
    config.crash_probability = 0.3;
    config.slow_probability = 0.25;
    config.slow_seconds = 1e-4;
    config.drop_probability = 0.1;
    FaultPlan fault(fault_seed, flags.nodes, config);
    RetryPolicy retry;
    retry.max_attempts = 6;
    Executor chaos(cluster, prepared.join_graph(), options.cost_params,
                   /*parallel_nodes=*/true, retry);
    ExecMetrics fault_metrics;
    Result<BindingTable> fault_rows = [&] {
      FaultScope scope(&fault);
      return ExecuteAndProject(chaos, *best.plan, parsed,
                               prepared.join_graph(), &fault_metrics);
    }();
    rec.fault_run = true;
    rec.fault_recovered = fault_rows.ok();
    rec.fault_wall_seconds = fault_metrics.wall_seconds;
    if (fault_rows.ok()) {
      rec.fault_rows_match = SameRows(*rows, *fault_rows);
      rec.recovery_attempts = fault_metrics.recovery_attempts;
      rec.operators_reexecuted = fault_metrics.operators_reexecuted;
      rec.rows_reshipped = fault_metrics.rows_reshipped;
      rec.shipments_dropped = fault_metrics.shipments_dropped;
      rec.node_crashes = fault_metrics.degraded_nodes.size();
    }
  }
  return rec;
}

int Main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  SetMetricsEnabled(true);

  std::printf("=== bench_main: optimize + execute, all workloads ===\n\n");
  HashSoPartitioner hash;
  std::vector<Record> records;

  // Compressed-storage footprint across every workload cluster: the
  // permutation indexes' bytes per stored triple, against the 24 B/triple
  // of the dual sorted Triple vectors they replaced.
  std::uint64_t storage_index_bytes = 0, storage_stored_triples = 0;
  auto add_storage = [&](const Cluster& cluster) {
    for (int n = 0; n < cluster.num_nodes(); ++n) {
      storage_index_bytes += cluster.node(n).IndexBytes();
      storage_stored_triples += cluster.node(n).NumTriples();
    }
  };

  {
    LubmConfig config;
    config.universities = flags.quick ? 7 : flags.lubm_universities;
    RdfGraph graph = GenerateLubm(config);
    Cluster cluster(graph, hash.PartitionData(graph, flags.nodes));
    add_storage(cluster);
    std::printf("LUBM: %s triples\n",
                WithThousandsSep(graph.NumTriples()).c_str());
    for (const BenchmarkQuery& bq : AllBenchmarkQueries()) {
      if (!bq.lubm) continue;
      Result<ParsedQuery> q = ParseSparql(bq.sparql);
      PARQO_CHECK(q.ok());
      records.push_back(
          RunQuery("lubm", bq.name, *q, hash, graph, cluster, flags));
    }
  }

  {
    UniprotConfig config;
    config.proteins = flags.quick ? 800 : flags.uniprot_proteins;
    RdfGraph graph = GenerateUniprot(config);
    Cluster cluster(graph, hash.PartitionData(graph, flags.nodes));
    add_storage(cluster);
    std::printf("UniProt: %s triples\n",
                WithThousandsSep(graph.NumTriples()).c_str());
    for (const BenchmarkQuery& bq : AllBenchmarkQueries()) {
      if (bq.lubm) continue;
      Result<ParsedQuery> q = ParseSparql(bq.sparql);
      PARQO_CHECK(q.ok());
      records.push_back(
          RunQuery("uniprot", bq.name, *q, hash, graph, cluster, flags));
    }
  }

  {
    WatdivDataConfig config;
    if (flags.quick) config.entities_per_class = 300;
    RdfGraph graph = GenerateWatdivData(config);
    Cluster cluster(graph, hash.PartitionData(graph, flags.nodes));
    add_storage(cluster);
    std::printf("WatDiv: %s triples\n",
                WithThousandsSep(graph.NumTriples()).c_str());
    Rng rng(flags.seed);
    std::vector<WatdivTemplate> templates =
        GenerateWatdivTemplates(flags.quick ? 20 : 124, rng);
    // Execute a bounded subset of small templates: joins over the dense
    // skewed data explode combinatorially for the largest walks.
    const int kMax = flags.quick ? 5 : 10;
    int taken = 0;
    for (const WatdivTemplate& tmpl : templates) {
      if (taken >= kMax) break;
      if (tmpl.patterns.size() > 6) continue;
      ++taken;
      ParsedQuery parsed;
      parsed.select_all = true;
      parsed.patterns = tmpl.patterns;
      records.push_back(RunQuery("watdiv", "T" + std::to_string(tmpl.id),
                                 parsed, hash, graph, cluster, flags));
    }
  }

  {
    // Enumeration stress set (optimize-only): dense and cycle shapes
    // drive `enumerated` orders of magnitude beyond the benchmark
    // queries, which all finish in microseconds. Sizes follow Table VII;
    // --quick keeps the smallest of each shape.
    struct Stress {
      QueryShape shape;
      const char* workload;
      int num_tps;
    };
    std::vector<Stress> stress{{QueryShape::kDense, "dense", 10},
                               {QueryShape::kDense, "dense", 12},
                               {QueryShape::kDense, "dense", 14},
                               {QueryShape::kCycle, "cycle", 16},
                               {QueryShape::kCycle, "cycle", 24},
                               {QueryShape::kCycle, "cycle", 30}};
    if (flags.quick) {
      stress = {{QueryShape::kDense, "dense", 10},
                {QueryShape::kCycle, "cycle", 16}};
    }
    std::printf("synthetic: %zu optimize-only stress queries\n",
                stress.size());
    for (const Stress& s : stress) {
      records.push_back(
          RunOptimizeOnly(s.workload,
                          s.workload + std::to_string(s.num_tps), s.shape,
                          s.num_tps, flags));
    }
  }

  // Execute-side stress set: join-heavy dense and cycle queries over
  // synthetic random graphs, run through BOTH engines (EXPERIMENTS.md's
  // before/after execute-cost table).
  std::vector<ExecStressRecord> exec_stress;
  {
    // Edge/entity ratio ~6 keeps the intermediate join inputs large (the
    // kernels' work) while the closed shapes stay selective enough that
    // final-result materialization does not dominate the wall.
    const int entities = flags.quick ? 900 : 2000;
    const int edges = flags.quick ? 5400 : 12000;
    RdfGraph graph =
        MakeExecStressGraph(entities, edges, /*preds=*/6, flags.seed);
    std::printf("exec stress: %s triples, %d entities\n",
                WithThousandsSep(graph.NumTriples()).c_str(), entities);
    // 4-variable clique: every pair of variables constrained.
    exec_stress.push_back(RunExecStress(
        "dense4",
        "SELECT * WHERE { ?a <p0> ?b . ?a <p1> ?c . ?a <p2> ?d . "
        "?b <p3> ?c . ?b <p4> ?d . ?c <p5> ?d . }",
        graph, flags));
    // 6-variable cycle: long chain closed back on itself.
    exec_stress.push_back(RunExecStress(
        "cycle6",
        "SELECT * WHERE { ?a <p0> ?b . ?b <p1> ?c . ?c <p2> ?d . "
        "?d <p3> ?e . ?e <p4> ?f . ?f <p5> ?a . }",
        graph, flags));
    for (const ExecStressRecord& r : exec_stress) {
      std::printf(
          "  %-8s row %.4fs  batch %.4fs  (%.2fx)  %s rows  %s\n",
          r.name.c_str(), r.row_wall_seconds, r.batch_wall_seconds,
          r.batch_wall_seconds > 0
              ? r.row_wall_seconds / r.batch_wall_seconds
              : 0.0,
          WithThousandsSep(r.result_rows).c_str(),
          r.engines_rows_match ? "bit-identical" : "MISMATCH");
    }
  }

  std::printf("\n");
  PrintRow("query", {"opt time", "plan cost", "meas cost", "scanned",
                     "shipped", "rows"});
  PrintRule(12, 6);
  Record totals;
  for (const Record& r : records) {
    char t[32];
    std::snprintf(t, sizeof(t), "%.4fs", r.optimize_seconds);
    PrintRow(r.workload + "/" + r.name,
             {t, FormatCostE(r.plan_cost),
              FormatCostE(r.measured_cost),
              WithThousandsSep(r.rows_scanned),
              WithThousandsSep(r.rows_transferred),
              WithThousandsSep(r.result_rows)});
    totals.optimize_seconds += r.optimize_seconds;
    totals.enumerated += r.enumerated;
    totals.rows_scanned += r.rows_scanned;
    totals.rows_transferred += r.rows_transferred;
    totals.bytes_shipped += r.bytes_shipped;
    totals.result_rows += r.result_rows;
    totals.distributed_joins += r.distributed_joins;
    totals.total_work += r.total_work;
    // Any execution failure flags the run; optimize-only stress queries
    // never execute by design.
    if (!r.executed && !r.optimize_only) totals.timed_out = true;
  }
  std::printf("\n%zu queries, %.3fs total optimize time\n", records.size(),
              totals.optimize_seconds);

  // Q-error rollup: geometric mean over every counted operator of every
  // query, for the baseline and pairwise-stat plans.
  QErrorStats qerr_base, qerr_pair;
  for (const Record& r : records) {
    if (!r.qerror_run) continue;
    qerr_base.log_sum += r.qerr_base_log_sum;
    qerr_base.ops += r.qerr_base_ops;
    qerr_base.max = std::max(qerr_base.max, r.qerr_base_max);
    qerr_pair.log_sum += r.qerr_pair_log_sum;
    qerr_pair.ops += r.qerr_pair_ops;
    qerr_pair.max = std::max(qerr_pair.max, r.qerr_pair_max);
  }
  if (qerr_base.ops > 0) {
    qerr_base.geo =
        std::exp(qerr_base.log_sum / static_cast<double>(qerr_base.ops));
  }
  if (qerr_pair.ops > 0) {
    qerr_pair.geo =
        std::exp(qerr_pair.log_sum / static_cast<double>(qerr_pair.ops));
  }
  if (qerr_base.ops > 0) {
    std::printf(
        "q-error: baseline geo %.3f max %.1f (%llu ops) -> "
        "pairwise geo %.3f max %.1f (%llu ops)\n",
        qerr_base.geo, qerr_base.max,
        static_cast<unsigned long long>(qerr_base.ops), qerr_pair.geo,
        qerr_pair.max, static_cast<unsigned long long>(qerr_pair.ops));
  }

  const double bytes_per_triple =
      storage_stored_triples > 0
          ? static_cast<double>(storage_index_bytes) /
                static_cast<double>(storage_stored_triples)
          : 0.0;
  std::printf(
      "storage: %s index bytes over %s stored triples = %.2f B/triple "
      "(dual-vector baseline 24.00)\n",
      WithThousandsSep(storage_index_bytes).c_str(),
      WithThousandsSep(storage_stored_triples).c_str(), bytes_per_triple);

  std::size_t fault_runs = 0, recovered = 0, rows_matched = 0;
  std::uint64_t attempts = 0, reshipped = 0, crashes = 0;
  for (const Record& r : records) {
    if (!r.fault_run) continue;
    ++fault_runs;
    if (r.fault_recovered) ++recovered;
    if (r.fault_rows_match) ++rows_matched;
    attempts += r.recovery_attempts;
    reshipped += r.rows_reshipped;
    crashes += r.node_crashes;
  }
  if (fault_runs > 0) {
    std::printf(
        "faults: %zu runs, %zu recovered (%zu row-identical), "
        "%llu crashes, %llu retry attempts, %s rows re-shipped\n",
        fault_runs, recovered, rows_matched,
        static_cast<unsigned long long>(crashes),
        static_cast<unsigned long long>(attempts),
        WithThousandsSep(reshipped).c_str());
  }

  std::string path = flags.json.empty() ? "BENCH_main.json" : flags.json;
  std::string json = "{\n  \"queries\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    json += ToJson(records[i]);
    if (i + 1 < records.size()) json += ",";
    json += "\n";
  }
  json += "  ],\n  \"exec_stress\": [\n";
  for (std::size_t i = 0; i < exec_stress.size(); ++i) {
    json += ExecStressToJson(exec_stress[i]);
    if (i + 1 < exec_stress.size()) json += ",";
    json += "\n";
  }
  json += "  ],\n  \"totals\": {";
  json += "\"queries\": " + std::to_string(records.size()) + ", ";
  json += "\"optimize_seconds\": " + JsonNum(totals.optimize_seconds) +
          ", ";
  json += "\"enumerated\": " + std::to_string(totals.enumerated) + ", ";
  json += "\"rows_scanned\": " + std::to_string(totals.rows_scanned) + ", ";
  json += "\"rows_transferred\": " +
          std::to_string(totals.rows_transferred) + ", ";
  json += "\"bytes_shipped\": " + std::to_string(totals.bytes_shipped) +
          ", ";
  json += "\"result_rows\": " + std::to_string(totals.result_rows) + ", ";
  json += "\"all_executed\": ";
  json += totals.timed_out ? "false" : "true";
  if (fault_runs > 0) {
    json += ", \"fault_runs\": " + std::to_string(fault_runs);
    json += ", \"fault_recovered\": " + std::to_string(recovered);
    json += ", \"fault_rows_matched\": " + std::to_string(rows_matched);
    json += ", \"recovery_attempts\": " + std::to_string(attempts);
    json += ", \"rows_reshipped\": " + std::to_string(reshipped);
    json += ", \"node_crashes\": " + std::to_string(crashes);
  }
  json += "},\n  \"storage\": {";
  json += "\"index_bytes\": " + std::to_string(storage_index_bytes) + ", ";
  json += "\"stored_triples\": " + std::to_string(storage_stored_triples) +
          ", ";
  json += "\"bytes_per_triple\": " + JsonNum(bytes_per_triple) + ", ";
  json += "\"baseline_bytes_per_triple\": 24.0";
  json += "},\n  \"qerror\": {";
  json += "\"baseline_geomean\": " + JsonNum(qerr_base.geo) + ", ";
  json += "\"baseline_max\": " + JsonNum(qerr_base.max) + ", ";
  json += "\"baseline_ops\": " + std::to_string(qerr_base.ops) + ", ";
  json += "\"pairwise_geomean\": " + JsonNum(qerr_pair.geo) + ", ";
  json += "\"pairwise_max\": " + JsonNum(qerr_pair.max) + ", ";
  json += "\"pairwise_ops\": " + std::to_string(qerr_pair.ops);
  json += "},\n  \"metrics\": ";
  json += MetricsRegistry::Global().Snapshot().ToJson();
  json += "\n}\n";

  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace parqo::bench

int main(int argc, char** argv) {
  return parqo::bench::Main(argc, argv);
}
