// Reproduces Table V: query processing time for the benchmark queries.
// Plans are optimized per partitioning and then *actually executed* on the
// simulated cluster; the reported time is the Table I cost formula applied
// to measured (not estimated) cardinalities — see DESIGN.md section 2 for
// this substitution — together with the raw network volume.
//
// Rows follow the paper: Hash-SO with TD-Auto / MSC / DP-Bushy, then 2f
// and Path-BMC with TD-Auto (only the partition-aware optimizer can use
// them). Expected shape: TD-Auto >= baselines on chain/tree/dense under
// Hash-SO, and Path-BMC turns every query local, winning by roughly an
// order of magnitude.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "exec/cluster.h"
#include "exec/executor.h"
#include "partition/hash_so.h"
#include "partition/path_bmc.h"
#include "partition/two_hop.h"
#include "sparql/parser.h"
#include "workload/benchmark_queries.h"
#include "workload/lubm.h"
#include "workload/uniprot.h"

namespace parqo::bench {
namespace {

struct Setting {
  std::string label;
  const Partitioner* partitioner;
  Algorithm algorithm;
};

int Main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  // Fixed per-distributed-join scheduling latency, in the cost model's
  // normalized units. The paper's prototype runs every broadcast /
  // repartition join as a Hadoop job, whose startup cost is what makes
  // all-local Path-BMC plans an order of magnitude faster; pure Table I
  // has no constant term, so the simulation adds it explicitly here.
  constexpr double kJobOverhead = 25.0;

  std::printf("=== Table V: query processing time (simulated cluster) ===\n");
  std::printf(
      "n=%d nodes; cell = cost-model time over measured cardinalities + "
      "%.0f units per distributed join (job startup), with transferred "
      "rows in parentheses; X = optimizer timeout\n\n",
      flags.nodes, kJobOverhead);

  LubmConfig lubm_cfg;
  lubm_cfg.universities = flags.lubm_universities;
  RdfGraph lubm = GenerateLubm(lubm_cfg);
  UniprotConfig uni_cfg;
  uni_cfg.proteins = flags.uniprot_proteins;
  RdfGraph uniprot = GenerateUniprot(uni_cfg);

  HashSoPartitioner hash;
  TwoHopForwardPartitioner two_hop;
  PathBmcPartitioner path;
  const std::vector<Setting> settings{
      {"Hash-SO/TD-Auto", &hash, Algorithm::kTdAuto},
      {"Hash-SO/MSC", &hash, Algorithm::kMsc},
      {"Hash-SO/DP-Bushy", &hash, Algorithm::kDpBushy},
      {"2f/TD-Auto", &two_hop, Algorithm::kTdAuto},
      {"Path-BMC/TD-Auto", &path, Algorithm::kTdAuto},
  };

  // Partition each dataset once per partitioner.
  struct Clusters {
    std::unique_ptr<Cluster> lubm, uniprot;
  };
  std::vector<Clusters> clusters;
  const std::vector<const Partitioner*> partitioners{&hash, &two_hop,
                                                     &path};
  for (const Partitioner* p : partitioners) {
    Clusters c;
    PartitionAssignment a1 = p->PartitionData(lubm, flags.nodes);
    PartitionAssignment a2 = p->PartitionData(uniprot, flags.nodes);
    std::printf("%-10s replication: LUBM %.2fx, UniProt %.2fx\n",
                p->name().c_str(),
                a1.ReplicationFactor(lubm.NumTriples()),
                a2.ReplicationFactor(uniprot.NumTriples()));
    c.lubm = std::make_unique<Cluster>(lubm, a1);
    c.uniprot = std::make_unique<Cluster>(uniprot, a2);
    clusters.push_back(std::move(c));
  }
  auto cluster_for = [&](const Partitioner* p,
                         bool is_lubm) -> const Cluster& {
    int idx = p == &hash ? 0 : (p == &two_hop ? 1 : 2);
    return is_lubm ? *clusters[idx].lubm : *clusters[idx].uniprot;
  };
  std::printf("\n");

  std::vector<std::string> header;
  for (const Setting& s : settings) header.push_back(s.label);
  PrintRow("Query", header, 8, 18);
  PrintRule(8, static_cast<int>(settings.size()), 18);

  for (const BenchmarkQuery& bq : AllBenchmarkQueries()) {
    auto parsed = ParseSparql(bq.sparql);
    if (!parsed.ok()) return 1;
    const RdfGraph& data = bq.lubm ? lubm : uniprot;

    std::vector<std::string> cells;
    for (const Setting& s : settings) {
      PreparedQuery query(parsed->patterns, *s.partitioner,
                          StatsFromData(data));
      OptimizeResult r = Run(s.algorithm, query, flags);
      if (r.plan == nullptr) {
        cells.push_back("X");
        continue;
      }
      const Cluster& cluster = cluster_for(s.partitioner, bq.lubm);
      Executor executor(cluster, query.join_graph(),
                        [&] {
                          CostParams p;
                          p.num_nodes = flags.nodes;
                          return p;
                        }());
      ExecMetrics metrics;
      auto result = executor.Execute(*r.plan, &metrics);
      if (!result.ok()) {
        cells.push_back("ERR");
        continue;
      }
      char buf[64];
      double time = metrics.measured_cost +
                    kJobOverhead *
                        static_cast<double>(metrics.distributed_joins);
      std::snprintf(buf, sizeof(buf), "%9.1f (%s)", time,
                    WithThousandsSep(metrics.rows_transferred).c_str());
      cells.push_back(buf);
    }
    PrintRow(bq.name, cells, 8, 18);
  }
  std::printf(
      "\n(cost units are the paper's normalized Table I units; row counts "
      "are rows shipped over the simulated network)\n");
  return 0;
}

}  // namespace
}  // namespace parqo::bench

int main(int argc, char** argv) { return parqo::bench::Main(argc, argv); }
