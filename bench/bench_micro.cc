// Micro-benchmarks (google-benchmark) for the hot paths the paper's
// complexity analysis talks about: cbd/cmd enumeration throughput (the
// claimed linear amortized cost per operator), the Theta(|V_Q|)
// local-query check, cardinality estimation, and the executor's hash
// join. Run any binary with --benchmark_filter=... as usual.

#include <benchmark/benchmark.h>

#include <cstring>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/fault.h"
#include "common/flat_map.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "exec/binding_table.h"
#include "exec/join_kernel.h"
#include "optimizer/cbd_enumerator.h"
#include "optimizer/cmd_enumerator.h"
#include "optimizer/td_cmd_core.h"
#include "partition/hash_so.h"
#include "partition/local_query_index.h"
#include "query/query_graph.h"
#include "stats/estimator.h"
#include "storage/compressed_index.h"
#include "workload/random_query.h"

namespace parqo {
namespace {

GeneratedQuery MakeQuery(QueryShape shape, int n) {
  Rng rng(1234 + n);
  return GenerateRandomQuery(shape, n, rng);
}

void BM_CbdEnumeration(benchmark::State& state, QueryShape shape) {
  GeneratedQuery q = MakeQuery(shape, static_cast<int>(state.range(0)));
  JoinGraph jg(q.patterns);
  std::uint64_t emitted = 0;
  for (auto _ : state) {
    for (VarId vj : jg.join_vars()) {
      if (jg.Ntp(vj).Count() < 2) continue;
      EnumerateCbds(jg, jg.AllTps(), vj, [&](TpSet a, TpSet b) {
        benchmark::DoNotOptimize(a);
        benchmark::DoNotOptimize(b);
        ++emitted;
        return true;
      });
    }
  }
  state.counters["cbds/s"] = benchmark::Counter(
      static_cast<double>(emitted), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_CbdEnumeration, chain, QueryShape::kChain)
    ->Arg(8)
    ->Arg(16)
    ->Arg(30);
BENCHMARK_CAPTURE(BM_CbdEnumeration, star, QueryShape::kStar)
    ->Arg(8)
    ->Arg(12);
BENCHMARK_CAPTURE(BM_CbdEnumeration, dense, QueryShape::kDense)
    ->Arg(8)
    ->Arg(12);

void BM_CmdEnumeration(benchmark::State& state, QueryShape shape,
                       CmdMode mode) {
  GeneratedQuery q = MakeQuery(shape, static_cast<int>(state.range(0)));
  JoinGraph jg(q.patterns);
  std::uint64_t emitted = 0;
  for (auto _ : state) {
    EnumerateCmds(jg, jg.AllTps(), mode,
                  [&](std::span<const TpSet> parts, VarId vj) {
                    benchmark::DoNotOptimize(parts);
                    benchmark::DoNotOptimize(vj);
                    ++emitted;
                    return true;
                  });
  }
  state.counters["cmds/s"] = benchmark::Counter(
      static_cast<double>(emitted), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_CmdEnumeration, chain_all, QueryShape::kChain,
                  CmdMode::kAll)
    ->Arg(16)
    ->Arg(30);
BENCHMARK_CAPTURE(BM_CmdEnumeration, star_all, QueryShape::kStar,
                  CmdMode::kAll)
    ->Arg(8)
    ->Arg(12);
BENCHMARK_CAPTURE(BM_CmdEnumeration, star_pruned, QueryShape::kStar,
                  CmdMode::kCcmdAndBinary)
    ->Arg(8)
    ->Arg(12);
BENCHMARK_CAPTURE(BM_CmdEnumeration, dense_all, QueryShape::kDense,
                  CmdMode::kAll)
    ->Arg(8)
    ->Arg(10);

void BM_LocalQueryCheck(benchmark::State& state) {
  GeneratedQuery q =
      MakeQuery(QueryShape::kDense, static_cast<int>(state.range(0)));
  JoinGraph jg(q.patterns);
  QueryGraph qg(jg);
  HashSoPartitioner hash;
  LocalQueryIndex index(qg, hash);
  Rng rng(7);
  std::vector<TpSet> probes;
  for (int i = 0; i < 64; ++i) {
    probes.push_back(
        TpSet(rng.Next() & jg.AllTps().bits()));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.IsLocal(probes[i++ & 63]));
  }
}
BENCHMARK(BM_LocalQueryCheck)->Arg(8)->Arg(16)->Arg(30);

void BM_CardinalityEstimation(benchmark::State& state) {
  GeneratedQuery q =
      MakeQuery(QueryShape::kTree, static_cast<int>(state.range(0)));
  JoinGraph jg(q.patterns);
  for (auto _ : state) {
    // Fresh estimator per iteration: measures the memoized derivation of
    // all prefixes, not a hash lookup.
    CardinalityEstimator est(jg, q.MakeStats(jg));
    benchmark::DoNotOptimize(est.Cardinality(jg.AllTps()));
  }
}
BENCHMARK(BM_CardinalityEstimation)->Arg(8)->Arg(16)->Arg(30);

// Hook-dispatch cost in the hottest recursion: TdCmdCore's leaf/local
// hooks used to be std::function (one indirect call per memo miss); they
// are now template parameters. The two variants below run the identical
// full TD-CMD optimization, differing only in how the hooks are passed —
// the delta is the dispatch overhead bought back by the refactor. The
// estimator is shared (warm after the first iteration) in both, so the
// comparison isolates call dispatch.
struct TdCmdHookFixture {
  explicit TdCmdHookFixture(int n)
      : q(MakeQuery(QueryShape::kChain, n)),
        jg(q.patterns),
        index(LocalQueryIndex::None(jg.num_tps())),
        est(jg, q.MakeStats(jg)),
        builder(est, CostModel()) {}
  GeneratedQuery q;
  JoinGraph jg;
  LocalQueryIndex index;
  CardinalityEstimator est;
  PlanBuilder builder;
};

void BM_TdCmdHooksFunctor(benchmark::State& state) {
  TdCmdHookFixture fx(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    TdCmdCore core(
        fx.jg, fx.builder, TdCmdRules{},
        [&](Arena& a, int tp) { return fx.builder.ScanIn(a, tp); },
        [&](TpSet s) { return fx.index.IsLocal(s); },
        [&](Arena& a, TpSet s) { return fx.builder.LocalJoinAllIn(a, s); });
    benchmark::DoNotOptimize(core.Run());
  }
}
BENCHMARK(BM_TdCmdHooksFunctor)->Arg(16)->Arg(30);

void BM_TdCmdHooksStdFunction(benchmark::State& state) {
  TdCmdHookFixture fx(static_cast<int>(state.range(0)));
  std::function<const PlanCandidate*(Arena&, int)> leaf =
      [&](Arena& a, int tp) { return fx.builder.ScanIn(a, tp); };
  std::function<bool(TpSet)> is_local = [&](TpSet s) {
    return fx.index.IsLocal(s);
  };
  std::function<const PlanCandidate*(Arena&, TpSet)> local =
      [&](Arena& a, TpSet s) { return fx.builder.LocalJoinAllIn(a, s); };
  for (auto _ : state) {
    TdCmdCore core(fx.jg, fx.builder, TdCmdRules{}, leaf, is_local, local);
    benchmark::DoNotOptimize(core.Run());
  }
}
BENCHMARK(BM_TdCmdHooksStdFunction)->Arg(16)->Arg(30);

// Allocation strategy of the enumeration hot path (DESIGN.md §12): the
// cost of one discarded binary-join candidate, which is what Algorithm 1
// churns per considered division. BM_ArenaAlloc prices the arena node —
// a bump allocation with the two children stored inline (plus a Reset
// every 4096 nodes, the steady state of a chunked run). BM_SharedPtrAlloc
// prices what the enumeration used to do: make_shared the node and give
// it a heap-backed two-element children vector, all torn back down
// through refcounts when the candidate loses. The arena side must stay
// comfortably >= 2x faster.
void BM_ArenaAlloc(benchmark::State& state) {
  Arena arena;
  const PlanCandidate leaf{};
  std::uint64_t n = 0;
  for (auto _ : state) {
    PlanCandidate* c = arena.New<PlanCandidate>();
    c->kind = PlanNode::Kind::kJoin;
    c->num_children = 2;
    c->inline_children[0] = &leaf;
    c->inline_children[1] = &leaf;
    benchmark::DoNotOptimize(c);
    if ((++n & 4095) == 0) arena.Reset();
  }
}
BENCHMARK(BM_ArenaAlloc);

void BM_SharedPtrAlloc(benchmark::State& state) {
  const PlanNodePtr leaf = std::make_shared<PlanNode>();
  for (auto _ : state) {
    auto node = std::make_shared<PlanNode>();
    node->kind = PlanNode::Kind::kJoin;
    node->children = {leaf, leaf};
    benchmark::DoNotOptimize(node);
  }
}
BENCHMARK(BM_SharedPtrAlloc);

// End-to-end candidate churn: per iteration, build the scans of an
// n-pattern chain and fold them into a left-deep join tree, then throw
// the whole tree away — the per-division work Algorithm 1 repeats
// millions of times on a dense query. The arena variant resets between
// iterations; the shared_ptr variant frees the tree through refcounts.
// The estimator is warm in both, so the delta is pure allocation.
void BM_CandidateChurnArena(benchmark::State& state) {
  TdCmdHookFixture fx(static_cast<int>(state.range(0)));
  fx.est.Cardinality(fx.jg.AllTps());  // warm the estimator memo
  Arena arena;
  for (auto _ : state) {
    arena.Reset();
    const PlanCandidate* acc = fx.builder.ScanIn(arena, 0);
    for (int tp = 1; tp < fx.jg.num_tps(); ++tp) {
      const PlanCandidate* children[2] = {acc,
                                          fx.builder.ScanIn(arena, tp)};
      acc = fx.builder.JoinIn(arena, JoinMethod::kRepartition,
                              fx.jg.SharedJoinVars(acc->tps,
                                                   TpSet::Singleton(tp))[0],
                              children);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_CandidateChurnArena)->Arg(8)->Arg(16);

void BM_CandidateChurnSharedPtr(benchmark::State& state) {
  TdCmdHookFixture fx(static_cast<int>(state.range(0)));
  fx.est.Cardinality(fx.jg.AllTps());
  for (auto _ : state) {
    PlanNodePtr acc = fx.builder.Scan(0);
    for (int tp = 1; tp < fx.jg.num_tps(); ++tp) {
      VarId vj =
          fx.jg.SharedJoinVars(acc->tps, TpSet::Singleton(tp))[0];
      acc = fx.builder.Join(JoinMethod::kRepartition, vj,
                            {acc, fx.builder.Scan(tp)});
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_CandidateChurnSharedPtr)->Arg(8)->Arg(16);

// Memo-probe cost: the flat open-addressed table against the
// unordered_map it replaced, both preloaded with every connected subchain
// of an n-pattern chain (the key distribution a real memo sees) and
// probed with a 75% hit / 25% miss mix.
std::vector<TpSet> MemoProbeKeys(int n) {
  std::vector<TpSet> keys;
  for (int lo = 0; lo < n; ++lo) {
    TpSet s;
    for (int hi = lo; hi < n; ++hi) {
      s.Add(hi);
      keys.push_back(s);
    }
  }
  return keys;
}

std::vector<TpSet> MemoProbeMix(const std::vector<TpSet>& keys, int n) {
  Rng rng(42);
  std::vector<TpSet> probes;
  for (int i = 0; i < 256; ++i) {
    if (rng.Uniform(0, 3) == 0) {
      // Guaranteed miss: bit n is never set in a stored key.
      probes.push_back(TpSet(rng.Next() | (std::uint64_t{1} << n)));
    } else {
      probes.push_back(
          keys[rng.Uniform(0, static_cast<int>(keys.size()) - 1)]);
    }
  }
  return probes;
}

void BM_FlatMemoProbe(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<TpSet> keys = MemoProbeKeys(n);
  const PlanCandidate dummy{};
  FlatTpSetMap<const PlanCandidate*> map;
  for (TpSet k : keys) map.EmplaceFirstWins(k, &dummy);
  std::vector<TpSet> probes = MemoProbeMix(keys, n);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Find(probes[i++ & 255]));
  }
}
BENCHMARK(BM_FlatMemoProbe)->Arg(16)->Arg(30);

void BM_UnorderedMemoProbe(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<TpSet> keys = MemoProbeKeys(n);
  const PlanCandidate dummy{};
  std::unordered_map<TpSet, const PlanCandidate*, TpSetHash> map;
  for (TpSet k : keys) map.emplace(k, &dummy);
  std::vector<TpSet> probes = MemoProbeMix(keys, n);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(probes[i++ & 255]));
  }
}
BENCHMARK(BM_UnorderedMemoProbe)->Arg(16)->Arg(30);

// Cost of one counter update with collection off vs. on. The metrics
// contract (see common/metrics.h) is that a disabled update is a relaxed
// load plus a predicted branch, so instrumenting hot paths is free; the
// enabled side prices the relaxed fetch_add. Compare against
// BM_MetricCounterBaseline (the empty loop) to read the per-update cost.
void BM_MetricCounterBaseline(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(++i);
  }
}
BENCHMARK(BM_MetricCounterBaseline);

void BM_MetricCounterDisabled(benchmark::State& state) {
  SetMetricsEnabled(false);
  MetricCounter& c =
      MetricsRegistry::Global().counter("bench.micro.disabled");
  for (auto _ : state) {
    c.Add();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_MetricCounterDisabled);

void BM_MetricCounterEnabled(benchmark::State& state) {
  SetMetricsEnabled(true);
  MetricCounter& c =
      MetricsRegistry::Global().counter("bench.micro.enabled");
  for (auto _ : state) {
    c.Add();
    benchmark::DoNotOptimize(c);
  }
  SetMetricsEnabled(false);
}
BENCHMARK(BM_MetricCounterEnabled);

// The fault layer's contract (common/fault.h): with no FaultScope active
// the executor's per-work-item probe is a single acquire load of a null
// pointer, so production runs pay nothing for the recovery machinery.
// Compare BM_FaultProbeDisabled against BM_FaultProbeBaseline to read
// that cost; BM_FaultProbeEnabled prices a live BeginNodeOp on a plan
// with no scheduled faults (the common case inside a chaos run).
void BM_FaultProbeBaseline(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(++i);
  }
}
BENCHMARK(BM_FaultProbeBaseline);

void BM_FaultProbeDisabled(benchmark::State& state) {
  for (auto _ : state) {
    FaultPlan* plan = ActiveFaultPlan();
    benchmark::DoNotOptimize(plan);
    if (plan != nullptr) {
      benchmark::DoNotOptimize(plan->BeginNodeOp(0));
    }
  }
}
BENCHMARK(BM_FaultProbeDisabled);

void BM_FaultProbeEnabled(benchmark::State& state) {
  FaultPlan plan(4);
  FaultScope scope(&plan);
  int node = 0;
  for (auto _ : state) {
    FaultPlan* active = ActiveFaultPlan();
    benchmark::DoNotOptimize(active);
    if (active != nullptr) {
      benchmark::DoNotOptimize(active->BeginNodeOp(node));
      node = (node + 1) & 3;
    }
  }
}
BENCHMARK(BM_FaultProbeEnabled);

// ---------------------------------------------------------------------------
// Vectorized execution kernels (DESIGN.md section 13): each pair prices
// the batch primitive against the row-at-a-time machinery it replaced.

// Two joinable tables sharing exactly one variable; ~`dup` build rows per
// key so probe chains have realistic length.
struct JoinInputs {
  BindingTable left{std::vector<VarId>{0, 1}};
  BindingTable right{std::vector<VarId>{1, 2}};
};
JoinInputs MakeJoinInputs(int rows, int dup) {
  Rng rng(71);
  JoinInputs in;
  const TermId keys = static_cast<TermId>(rows / dup + 1);
  for (int r = 0; r < rows; ++r) {
    std::vector<TermId> lrow{static_cast<TermId>(r + 1),
                             static_cast<TermId>(rng.Uniform(1, keys))};
    std::vector<TermId> rrow{static_cast<TermId>(rng.Uniform(1, keys)),
                             static_cast<TermId>(r + 1)};
    in.left.AppendRow(lrow);
    in.right.AppendRow(rrow);
  }
  return in;
}

// Flat open-addressed probe vs unordered_multimap probe over the same
// single-key build side: the per-probe cost of the join table itself.
void BM_JoinProbeFlat(benchmark::State& state) {
  JoinInputs in = MakeJoinInputs(static_cast<int>(state.range(0)), 8);
  SingleKeyJoinTable table;
  table.Build(in.left.Column(1));
  const std::vector<TermId>& probe = in.right.Column(0);
  std::uint64_t matches = 0;
  for (auto _ : state) {
    for (TermId k : probe) {
      table.ForEachMatch(k, [&](std::uint32_t r) {
        benchmark::DoNotOptimize(r);
        ++matches;
      });
    }
  }
  state.counters["matches/s"] = benchmark::Counter(
      static_cast<double>(matches), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_JoinProbeFlat)->Arg(4096)->Arg(65536);

void BM_JoinProbeMultimap(benchmark::State& state) {
  JoinInputs in = MakeJoinInputs(static_cast<int>(state.range(0)), 8);
  const std::vector<TermId>& build = in.left.Column(1);
  std::unordered_multimap<std::uint64_t, std::uint32_t> table;
  table.reserve(build.size());
  for (std::uint32_t r = 0; r < build.size(); ++r) {
    table.emplace(JoinKeyHash(build[r]), r);
  }
  const std::vector<TermId>& probe = in.right.Column(0);
  std::uint64_t matches = 0;
  for (auto _ : state) {
    for (TermId k : probe) {
      auto [lo, hi] = table.equal_range(JoinKeyHash(k));
      for (auto it = lo; it != hi; ++it) {
        if (build[it->second] != k) continue;
        benchmark::DoNotOptimize(it->second);
        ++matches;
      }
    }
  }
  state.counters["matches/s"] = benchmark::Counter(
      static_cast<double>(matches), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_JoinProbeMultimap)->Arg(4096)->Arg(65536);

// Column-batched append (AppendFrom) vs per-row AppendRow for the same
// gather-free copy, the shape of broadcast gathers and the final gather.
void BM_BatchAppendColumn(benchmark::State& state) {
  JoinInputs in = MakeJoinInputs(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    BindingTable dst(in.left.schema());
    dst.AppendFrom(in.left);
    benchmark::DoNotOptimize(dst.NumRows());
  }
}
BENCHMARK(BM_BatchAppendColumn)->Arg(4096)->Arg(65536);

void BM_BatchAppendRow(benchmark::State& state) {
  JoinInputs in = MakeJoinInputs(static_cast<int>(state.range(0)), 8);
  const BindingTable& src = in.left;
  std::vector<TermId> row(src.num_cols());
  for (auto _ : state) {
    BindingTable dst(src.schema());
    for (std::size_t r = 0; r < src.NumRows(); ++r) {
      for (int c = 0; c < src.num_cols(); ++c) row[c] = src.At(r, c);
      dst.AppendRow(row);
    }
    benchmark::DoNotOptimize(dst.NumRows());
  }
}
BENCHMARK(BM_BatchAppendRow)->Arg(4096)->Arg(65536);

// The single-key specialization vs the generic multi-key kernel on the
// same single-key join: what the TermId fast path is worth end to end.
void BM_SingleKeyJoinSpecialized(benchmark::State& state) {
  JoinInputs in = MakeJoinInputs(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    BindingTable out = BatchHashJoin(in.left, in.right);
    benchmark::DoNotOptimize(out.NumRows());
  }
}
BENCHMARK(BM_SingleKeyJoinSpecialized)->Arg(4096)->Arg(65536);

void BM_SingleKeyJoinGeneric(benchmark::State& state) {
  JoinInputs in = MakeJoinInputs(static_cast<int>(state.range(0)), 8);
  BatchJoinOptions opts;
  opts.force_generic_kernel = true;
  for (auto _ : state) {
    BindingTable out = BatchHashJoin(in.left, in.right, opts);
    benchmark::DoNotOptimize(out.NumRows());
  }
}
BENCHMARK(BM_SingleKeyJoinGeneric)->Arg(4096)->Arg(65536);

// ---------------------------------------------------------------------------
// Compressed storage kernels (DESIGN.md section 17): page decode, seek,
// and ordered-merge cost against the flat-vector machinery they replace.

std::vector<IndexKey> MakeSortedKeys(int n) {
  Rng rng(2017);
  std::vector<IndexKey> keys;
  keys.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    keys.push_back(IndexKey{static_cast<TermId>(rng.Uniform(1, 64)),
                            static_cast<TermId>(rng.Uniform(1, 256)),
                            static_cast<TermId>(rng.Uniform(1, 1 << 20))});
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Full-range decode through the tagged-varbyte pages vs a plain memcpy of
// the same keys: the decompression tax per key, to be weighed against the
// ~3-4x footprint reduction the pages buy.
void BM_PageDecode(benchmark::State& state) {
  std::vector<IndexKey> keys = MakeSortedKeys(static_cast<int>(state.range(0)));
  CompressedKeyIndex idx;
  idx.Build(keys);
  CompressedKeyIndex::Scratch scratch;
  const IndexKey lo{0, 0, 0};
  const IndexKey hi{kMaxTermId, kMaxTermId, kMaxTermId};
  std::uint64_t decoded = 0;
  for (auto _ : state) {
    idx.ScanRange(lo, hi, scratch, [&](std::span<const IndexKey> run) {
      benchmark::DoNotOptimize(run.data());
      decoded += run.size();
    });
  }
  state.counters["keys/s"] = benchmark::Counter(
      static_cast<double>(decoded), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PageDecode)->Arg(4096)->Arg(65536);

void BM_PageMemcpy(benchmark::State& state) {
  std::vector<IndexKey> keys = MakeSortedKeys(static_cast<int>(state.range(0)));
  std::vector<IndexKey> page(kLeafEntries);
  std::uint64_t decoded = 0;
  for (auto _ : state) {
    for (std::size_t begin = 0; begin < keys.size(); begin += kLeafEntries) {
      const std::size_t n = std::min(kLeafEntries, keys.size() - begin);
      std::memcpy(page.data(), keys.data() + begin, n * sizeof(IndexKey));
      benchmark::DoNotOptimize(page.data());
      decoded += n;
    }
  }
  state.counters["keys/s"] = benchmark::Counter(
      static_cast<double>(decoded), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PageMemcpy)->Arg(4096)->Arg(65536);

// Range-count seek through the page directory (decode at most two
// boundary pages) vs equal_range over the uncompressed sorted vector —
// the operation behind every CountPattern statistics probe.
void BM_IndexSeek(benchmark::State& state) {
  std::vector<IndexKey> keys = MakeSortedKeys(static_cast<int>(state.range(0)));
  CompressedKeyIndex idx;
  idx.Build(keys);
  CompressedKeyIndex::Scratch scratch;
  Rng rng(5);
  std::vector<TermId> probes(256);
  for (TermId& p : probes) p = static_cast<TermId>(rng.Uniform(1, 64));
  std::size_t i = 0;
  for (auto _ : state) {
    const TermId k1 = probes[i++ & 255];
    benchmark::DoNotOptimize(idx.CountRange(
        IndexKey{k1, 0, 0}, IndexKey{k1, kMaxTermId, kMaxTermId}, scratch));
  }
}
BENCHMARK(BM_IndexSeek)->Arg(4096)->Arg(65536);

void BM_VectorLowerBound(benchmark::State& state) {
  std::vector<IndexKey> keys = MakeSortedKeys(static_cast<int>(state.range(0)));
  Rng rng(5);
  std::vector<TermId> probes(256);
  for (TermId& p : probes) p = static_cast<TermId>(rng.Uniform(1, 64));
  std::size_t i = 0;
  for (auto _ : state) {
    const TermId k1 = probes[i++ & 255];
    auto lo = std::lower_bound(keys.begin(), keys.end(), IndexKey{k1, 0, 0});
    auto hi = std::upper_bound(
        lo, keys.end(), IndexKey{k1, kMaxTermId, kMaxTermId});
    benchmark::DoNotOptimize(hi - lo);
  }
}
BENCHMARK(BM_VectorLowerBound)->Arg(4096)->Arg(65536);

// Ordered-input join: the merge kernel (two forward cursors, no build
// table) against the hash kernel it supplants when both inputs arrive
// sorted on the shared variable. Same inputs, bit-identical outputs.
JoinInputs MakeSortedJoinInputs(int rows, int dup) {
  Rng rng(71);
  JoinInputs in;
  const TermId nkeys = static_cast<TermId>(rows / dup + 1);
  std::vector<TermId> lk(static_cast<std::size_t>(rows));
  std::vector<TermId> rk(static_cast<std::size_t>(rows));
  for (TermId& k : lk) k = static_cast<TermId>(rng.Uniform(1, nkeys));
  for (TermId& k : rk) k = static_cast<TermId>(rng.Uniform(1, nkeys));
  std::sort(lk.begin(), lk.end());
  std::sort(rk.begin(), rk.end());
  for (int r = 0; r < rows; ++r) {
    std::vector<TermId> lrow{static_cast<TermId>(r + 1),
                             lk[static_cast<std::size_t>(r)]};
    std::vector<TermId> rrow{rk[static_cast<std::size_t>(r)],
                             static_cast<TermId>(r + 1)};
    in.left.AppendRow(lrow);
    in.right.AppendRow(rrow);
  }
  in.left.SetSortedBy(1);
  in.right.SetSortedBy(1);
  return in;
}

void BM_MergeJoin(benchmark::State& state) {
  JoinInputs in = MakeSortedJoinInputs(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    BindingTable out = BatchMergeJoin(in.left, in.right);
    benchmark::DoNotOptimize(out.NumRows());
  }
}
BENCHMARK(BM_MergeJoin)->Arg(4096)->Arg(65536);

void BM_HashJoinProbe(benchmark::State& state) {
  JoinInputs in = MakeSortedJoinInputs(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    BindingTable out = BatchHashJoin(in.left, in.right);
    benchmark::DoNotOptimize(out.NumRows());
  }
}
BENCHMARK(BM_HashJoinProbe)->Arg(4096)->Arg(65536);

void BM_BindingTableDeduplicate(benchmark::State& state) {
  Rng rng(9);
  BindingTable base({0, 1, 2});
  for (int i = 0; i < state.range(0); ++i) {
    std::vector<TermId> row{
        static_cast<TermId>(rng.Uniform(1, 64)),
        static_cast<TermId>(rng.Uniform(1, 64)),
        static_cast<TermId>(rng.Uniform(1, 1024))};
    base.AppendRow(row);
  }
  for (auto _ : state) {
    BindingTable copy = base;
    copy.Deduplicate();
    benchmark::DoNotOptimize(copy.NumRows());
  }
}
BENCHMARK(BM_BindingTableDeduplicate)->Arg(1024)->Arg(16384);

}  // namespace
}  // namespace parqo

BENCHMARK_MAIN();
