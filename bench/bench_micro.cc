// Micro-benchmarks (google-benchmark) for the hot paths the paper's
// complexity analysis talks about: cbd/cmd enumeration throughput (the
// claimed linear amortized cost per operator), the Theta(|V_Q|)
// local-query check, cardinality estimation, and the executor's hash
// join. Run any binary with --benchmark_filter=... as usual.

#include <benchmark/benchmark.h>

#include <functional>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "exec/binding_table.h"
#include "optimizer/cbd_enumerator.h"
#include "optimizer/cmd_enumerator.h"
#include "optimizer/td_cmd_core.h"
#include "partition/hash_so.h"
#include "partition/local_query_index.h"
#include "query/query_graph.h"
#include "stats/estimator.h"
#include "workload/random_query.h"

namespace parqo {
namespace {

GeneratedQuery MakeQuery(QueryShape shape, int n) {
  Rng rng(1234 + n);
  return GenerateRandomQuery(shape, n, rng);
}

void BM_CbdEnumeration(benchmark::State& state, QueryShape shape) {
  GeneratedQuery q = MakeQuery(shape, static_cast<int>(state.range(0)));
  JoinGraph jg(q.patterns);
  std::uint64_t emitted = 0;
  for (auto _ : state) {
    for (VarId vj : jg.join_vars()) {
      if (jg.Ntp(vj).Count() < 2) continue;
      EnumerateCbds(jg, jg.AllTps(), vj, [&](TpSet a, TpSet b) {
        benchmark::DoNotOptimize(a);
        benchmark::DoNotOptimize(b);
        ++emitted;
        return true;
      });
    }
  }
  state.counters["cbds/s"] = benchmark::Counter(
      static_cast<double>(emitted), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_CbdEnumeration, chain, QueryShape::kChain)
    ->Arg(8)
    ->Arg(16)
    ->Arg(30);
BENCHMARK_CAPTURE(BM_CbdEnumeration, star, QueryShape::kStar)
    ->Arg(8)
    ->Arg(12);
BENCHMARK_CAPTURE(BM_CbdEnumeration, dense, QueryShape::kDense)
    ->Arg(8)
    ->Arg(12);

void BM_CmdEnumeration(benchmark::State& state, QueryShape shape,
                       CmdMode mode) {
  GeneratedQuery q = MakeQuery(shape, static_cast<int>(state.range(0)));
  JoinGraph jg(q.patterns);
  std::uint64_t emitted = 0;
  for (auto _ : state) {
    EnumerateCmds(jg, jg.AllTps(), mode,
                  [&](std::span<const TpSet> parts, VarId vj) {
                    benchmark::DoNotOptimize(parts);
                    benchmark::DoNotOptimize(vj);
                    ++emitted;
                    return true;
                  });
  }
  state.counters["cmds/s"] = benchmark::Counter(
      static_cast<double>(emitted), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_CmdEnumeration, chain_all, QueryShape::kChain,
                  CmdMode::kAll)
    ->Arg(16)
    ->Arg(30);
BENCHMARK_CAPTURE(BM_CmdEnumeration, star_all, QueryShape::kStar,
                  CmdMode::kAll)
    ->Arg(8)
    ->Arg(12);
BENCHMARK_CAPTURE(BM_CmdEnumeration, star_pruned, QueryShape::kStar,
                  CmdMode::kCcmdAndBinary)
    ->Arg(8)
    ->Arg(12);
BENCHMARK_CAPTURE(BM_CmdEnumeration, dense_all, QueryShape::kDense,
                  CmdMode::kAll)
    ->Arg(8)
    ->Arg(10);

void BM_LocalQueryCheck(benchmark::State& state) {
  GeneratedQuery q =
      MakeQuery(QueryShape::kDense, static_cast<int>(state.range(0)));
  JoinGraph jg(q.patterns);
  QueryGraph qg(jg);
  HashSoPartitioner hash;
  LocalQueryIndex index(qg, hash);
  Rng rng(7);
  std::vector<TpSet> probes;
  for (int i = 0; i < 64; ++i) {
    probes.push_back(
        TpSet(rng.Next() & jg.AllTps().bits()));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.IsLocal(probes[i++ & 63]));
  }
}
BENCHMARK(BM_LocalQueryCheck)->Arg(8)->Arg(16)->Arg(30);

void BM_CardinalityEstimation(benchmark::State& state) {
  GeneratedQuery q =
      MakeQuery(QueryShape::kTree, static_cast<int>(state.range(0)));
  JoinGraph jg(q.patterns);
  for (auto _ : state) {
    // Fresh estimator per iteration: measures the memoized derivation of
    // all prefixes, not a hash lookup.
    CardinalityEstimator est(jg, q.MakeStats(jg));
    benchmark::DoNotOptimize(est.Cardinality(jg.AllTps()));
  }
}
BENCHMARK(BM_CardinalityEstimation)->Arg(8)->Arg(16)->Arg(30);

// Hook-dispatch cost in the hottest recursion: TdCmdCore's leaf/local
// hooks used to be std::function (one indirect call per memo miss); they
// are now template parameters. The two variants below run the identical
// full TD-CMD optimization, differing only in how the hooks are passed —
// the delta is the dispatch overhead bought back by the refactor. The
// estimator is shared (warm after the first iteration) in both, so the
// comparison isolates call dispatch.
struct TdCmdHookFixture {
  explicit TdCmdHookFixture(int n)
      : q(MakeQuery(QueryShape::kChain, n)),
        jg(q.patterns),
        index(LocalQueryIndex::None(jg.num_tps())),
        est(jg, q.MakeStats(jg)),
        builder(est, CostModel()) {}
  GeneratedQuery q;
  JoinGraph jg;
  LocalQueryIndex index;
  CardinalityEstimator est;
  PlanBuilder builder;
};

void BM_TdCmdHooksFunctor(benchmark::State& state) {
  TdCmdHookFixture fx(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    TdCmdCore core(
        fx.jg, fx.builder, TdCmdRules{},
        [&](int tp) { return fx.builder.Scan(tp); },
        [&](TpSet s) { return fx.index.IsLocal(s); },
        [&](TpSet s) { return fx.builder.LocalJoinAll(s); });
    benchmark::DoNotOptimize(core.Run());
  }
}
BENCHMARK(BM_TdCmdHooksFunctor)->Arg(16)->Arg(30);

void BM_TdCmdHooksStdFunction(benchmark::State& state) {
  TdCmdHookFixture fx(static_cast<int>(state.range(0)));
  std::function<PlanNodePtr(int)> leaf = [&](int tp) {
    return fx.builder.Scan(tp);
  };
  std::function<bool(TpSet)> is_local = [&](TpSet s) {
    return fx.index.IsLocal(s);
  };
  std::function<PlanNodePtr(TpSet)> local = [&](TpSet s) {
    return fx.builder.LocalJoinAll(s);
  };
  for (auto _ : state) {
    TdCmdCore core(fx.jg, fx.builder, TdCmdRules{}, leaf, is_local, local);
    benchmark::DoNotOptimize(core.Run());
  }
}
BENCHMARK(BM_TdCmdHooksStdFunction)->Arg(16)->Arg(30);

// Cost of one counter update with collection off vs. on. The metrics
// contract (see common/metrics.h) is that a disabled update is a relaxed
// load plus a predicted branch, so instrumenting hot paths is free; the
// enabled side prices the relaxed fetch_add. Compare against
// BM_MetricCounterBaseline (the empty loop) to read the per-update cost.
void BM_MetricCounterBaseline(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(++i);
  }
}
BENCHMARK(BM_MetricCounterBaseline);

void BM_MetricCounterDisabled(benchmark::State& state) {
  SetMetricsEnabled(false);
  MetricCounter& c =
      MetricsRegistry::Global().counter("bench.micro.disabled");
  for (auto _ : state) {
    c.Add();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_MetricCounterDisabled);

void BM_MetricCounterEnabled(benchmark::State& state) {
  SetMetricsEnabled(true);
  MetricCounter& c =
      MetricsRegistry::Global().counter("bench.micro.enabled");
  for (auto _ : state) {
    c.Add();
    benchmark::DoNotOptimize(c);
  }
  SetMetricsEnabled(false);
}
BENCHMARK(BM_MetricCounterEnabled);

// The fault layer's contract (common/fault.h): with no FaultScope active
// the executor's per-work-item probe is a single acquire load of a null
// pointer, so production runs pay nothing for the recovery machinery.
// Compare BM_FaultProbeDisabled against BM_FaultProbeBaseline to read
// that cost; BM_FaultProbeEnabled prices a live BeginNodeOp on a plan
// with no scheduled faults (the common case inside a chaos run).
void BM_FaultProbeBaseline(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(++i);
  }
}
BENCHMARK(BM_FaultProbeBaseline);

void BM_FaultProbeDisabled(benchmark::State& state) {
  for (auto _ : state) {
    FaultPlan* plan = ActiveFaultPlan();
    benchmark::DoNotOptimize(plan);
    if (plan != nullptr) {
      benchmark::DoNotOptimize(plan->BeginNodeOp(0));
    }
  }
}
BENCHMARK(BM_FaultProbeDisabled);

void BM_FaultProbeEnabled(benchmark::State& state) {
  FaultPlan plan(4);
  FaultScope scope(&plan);
  int node = 0;
  for (auto _ : state) {
    FaultPlan* active = ActiveFaultPlan();
    benchmark::DoNotOptimize(active);
    if (active != nullptr) {
      benchmark::DoNotOptimize(active->BeginNodeOp(node));
      node = (node + 1) & 3;
    }
  }
}
BENCHMARK(BM_FaultProbeEnabled);

void BM_BindingTableDeduplicate(benchmark::State& state) {
  Rng rng(9);
  BindingTable base({0, 1, 2});
  for (int i = 0; i < state.range(0); ++i) {
    std::vector<TermId> row{
        static_cast<TermId>(rng.Uniform(1, 64)),
        static_cast<TermId>(rng.Uniform(1, 64)),
        static_cast<TermId>(rng.Uniform(1, 1024))};
    base.AppendRow(row);
  }
  for (auto _ : state) {
    BindingTable copy = base;
    copy.Deduplicate();
    benchmark::DoNotOptimize(copy.NumRows());
  }
}
BENCHMARK(BM_BindingTableDeduplicate)->Arg(1024)->Arg(16384);

}  // namespace
}  // namespace parqo

BENCHMARK_MAIN();
