// Shared plumbing for the paper-reproduction bench binaries: flag parsing,
// dataset construction, query preparation, and table formatting. Each
// bench binary regenerates one table or figure of Section V; see
// EXPERIMENTS.md for the index and how to read the output.

#ifndef PARQO_BENCH_BENCH_UTIL_H_
#define PARQO_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "optimizer/optimizer.h"
#include "optimizer/prepared_query.h"
#include "partition/local_query_index.h"
#include "workload/random_query.h"

namespace parqo::bench {

struct Flags {
  /// Per-run optimizer budget. The paper's cutoff is 600 s; the default
  /// here keeps a full bench sweep to minutes (pass --timeout=600 to
  /// match the paper exactly).
  double timeout = 30;
  int nodes = 10;              ///< Simulated cluster size (paper: 10).
  int lubm_universities = 8;   ///< LUBM scale.
  int uniprot_proteins = 3000; ///< UniProt scale.
  int watdiv_instances = 20;   ///< Instances per template (paper: 100).
  int repeats = 3;             ///< Random queries per configuration.
  std::uint64_t seed = 2017;
  bool quick = false;          ///< Shrink sweeps for smoke runs.
  /// bench_main: after each fault-free execution, re-run the same plan
  /// under a seeded FaultPlan and record the recovery overhead.
  bool faults = false;
  /// bench_parallel: comma-separated worker counts to sweep.
  std::string threads = "1,2,4,8";
  /// bench_parallel: write machine-readable results here ("" = don't).
  std::string json;
};

/// Parses "1,2,4" into {1, 2, 4}; ignores empty fields.
std::vector<int> ParseThreadList(const std::string& csv);

/// Parses --name=value flags; unknown flags abort with usage.
Flags ParseFlags(int argc, char** argv);

/// "0.123s", or ">30s" when the run timed out.
std::string TimeCell(const OptimizeResult& result, const Flags& flags);
/// "4,495", or "N/A" when the run timed out.
std::string CountCell(const OptimizeResult& result);
/// "3.12E4", or "N/A" without a plan.
std::string CostCell(const OptimizeResult& result);

/// Runs one algorithm with the flags' budget.
OptimizeResult Run(Algorithm algorithm, const PreparedQuery& query,
                   const Flags& flags);

/// PreparedQuery from a generated query (synthetic statistics) under a
/// partitioner.
std::unique_ptr<PreparedQuery> Prepare(const GeneratedQuery& query,
                                       const Partitioner& partitioner);

/// Optimizer inputs with no data locality at all (pure enumeration
/// studies; every multi-pattern subquery needs a distributed join).
class NoLocalityFixture {
 public:
  explicit NoLocalityFixture(const GeneratedQuery& query);
  OptimizerInputs inputs() const;

 private:
  JoinGraph jg_;
  LocalQueryIndex index_;
  CardinalityEstimator estimator_;
};

/// Fixed-width row printer: first column `label_width` wide, the rest
/// `cell_width`.
void PrintRow(const std::string& label,
              const std::vector<std::string>& cells, int label_width = 12,
              int cell_width = 12);

void PrintRule(int label_width, int cells, int cell_width = 12);

}  // namespace parqo::bench

#endif  // PARQO_BENCH_BENCH_UTIL_H_
