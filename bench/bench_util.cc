#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/strings.h"

namespace parqo::bench {

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value = [&](std::string_view name) -> const char* {
      if (!StartsWith(arg, name) || arg.size() <= name.size() ||
          arg[name.size()] != '=') {
        return nullptr;
      }
      return argv[i] + name.size() + 1;
    };
    const char* v = nullptr;
    if ((v = value("--timeout")) != nullptr) {
      flags.timeout = std::atof(v);
    } else if ((v = value("--nodes")) != nullptr) {
      flags.nodes = std::atoi(v);
    } else if ((v = value("--lubm-universities")) != nullptr) {
      flags.lubm_universities = std::atoi(v);
    } else if ((v = value("--uniprot-proteins")) != nullptr) {
      flags.uniprot_proteins = std::atoi(v);
    } else if ((v = value("--watdiv-instances")) != nullptr) {
      flags.watdiv_instances = std::atoi(v);
    } else if ((v = value("--repeats")) != nullptr) {
      flags.repeats = std::atoi(v);
    } else if ((v = value("--seed")) != nullptr) {
      flags.seed = std::strtoull(v, nullptr, 10);
    } else if ((v = value("--threads")) != nullptr) {
      flags.threads = v;
    } else if ((v = value("--json")) != nullptr) {
      flags.json = v;
    } else if (arg == "--quick") {
      flags.quick = true;
    } else if (arg == "--faults") {
      flags.faults = true;
    } else {
      std::fprintf(stderr,
                   "unknown flag: %s\n"
                   "flags: --timeout=S --nodes=N --lubm-universities=N "
                   "--uniprot-proteins=N --watdiv-instances=N --repeats=N "
                   "--seed=N --threads=CSV --json=PATH --quick --faults\n",
                   argv[i]);
      std::exit(2);
    }
  }
  if (flags.quick) {
    flags.timeout = std::min(flags.timeout, 5.0);
    flags.lubm_universities = std::min(flags.lubm_universities, 2);
    flags.uniprot_proteins = std::min(flags.uniprot_proteins, 500);
    flags.watdiv_instances = std::min(flags.watdiv_instances, 3);
    flags.repeats = 1;
  }
  return flags;
}

std::vector<int> ParseThreadList(const std::string& csv) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > pos) {
      int t = std::atoi(csv.substr(pos, comma - pos).c_str());
      if (t > 0) out.push_back(t);
    }
    pos = comma + 1;
  }
  return out;
}

std::string TimeCell(const OptimizeResult& result, const Flags& flags) {
  if (result.timed_out) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), ">%.0fs", flags.timeout);
    return buf;
  }
  return FormatSeconds(result.seconds);
}

std::string CountCell(const OptimizeResult& result) {
  if (result.timed_out) return "N/A";
  return WithThousandsSep(result.enumerated);
}

std::string CostCell(const OptimizeResult& result) {
  if (result.plan == nullptr) return "N/A";
  return FormatCostE(result.plan->total_cost);
}

OptimizeResult Run(Algorithm algorithm, const PreparedQuery& query,
                   const Flags& flags) {
  OptimizeOptions options;
  options.timeout_seconds = flags.timeout;
  options.cost_params.num_nodes = flags.nodes;
  return Optimize(algorithm, query.inputs(), options);
}

std::unique_ptr<PreparedQuery> Prepare(const GeneratedQuery& query,
                                       const Partitioner& partitioner) {
  return std::make_unique<PreparedQuery>(
      query.patterns, partitioner,
      [&query](const JoinGraph& jg) { return query.MakeStats(jg); });
}

NoLocalityFixture::NoLocalityFixture(const GeneratedQuery& query)
    : jg_(query.patterns),
      index_(LocalQueryIndex::None(jg_.num_tps())),
      estimator_(jg_, query.MakeStats(jg_)) {}

OptimizerInputs NoLocalityFixture::inputs() const {
  OptimizerInputs in;
  in.join_graph = &jg_;
  in.local_index = &index_;
  in.estimator = &estimator_;
  return in;
}

void PrintRow(const std::string& label,
              const std::vector<std::string>& cells, int label_width,
              int cell_width) {
  std::printf("%-*s", label_width, label.c_str());
  for (const std::string& cell : cells) {
    std::printf(" %*s", cell_width, cell.c_str());
  }
  std::printf("\n");
}

void PrintRule(int label_width, int cells, int cell_width) {
  int total = label_width + cells * (cell_width + 1);
  for (int i = 0; i < total; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace parqo::bench
