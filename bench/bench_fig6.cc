// Reproduces Figure 6: the WatDiv stress test. 124 structurally diverse
// templates (random walks over an e-commerce schema), each instantiated
// --watdiv-instances times with randomized statistics (paper: 100).
//
//   (a) mean optimization time per template, per algorithm — printed as a
//       summary distribution over templates (min/median/max) plus a
//       per-template CSV block for plotting;
//   (b) the cumulative frequency distribution of each algorithm's plan
//       cost normalized to TD-CMD's optimal plan cost.
//
// Expected shape: TD-CMDP/TD-Auto sit on top of TD-CMD's cost with ~100%
// of plans within a small factor; MSC has a heavy tail (fewer than half
// its plans near-optimal); DP-Bushy in between.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "partition/hash_so.h"
#include "workload/watdiv.h"

namespace parqo::bench {
namespace {

const std::vector<std::pair<Algorithm, std::string>> kAlgorithms{
    {Algorithm::kTdCmd, "TD-CMD"},     {Algorithm::kTdCmdp, "TD-CMDP"},
    {Algorithm::kHgrTdCmd, "HGR"},     {Algorithm::kMsc, "MSC"},
    {Algorithm::kDpBushy, "DP-Bushy"}, {Algorithm::kTdAuto, "TD-Auto"},
};

void PrintCdf(const std::string& name, std::vector<double> ratios,
              std::size_t universe) {
  static const double kBuckets[] = {1.0, 1.01, 1.1, 1.25, 1.5,
                                    2.0, 4.0,  8.0, 1e300};
  std::sort(ratios.begin(), ratios.end());
  std::vector<std::string> cells;
  for (double b : kBuckets) {
    std::size_t covered =
        std::upper_bound(ratios.begin(), ratios.end(), b + 1e-12) -
        ratios.begin();
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%5.1f%%",
                  100.0 * static_cast<double>(covered) /
                      static_cast<double>(universe));
    cells.push_back(buf);
  }
  PrintRow(name, cells, 10, 7);
}

int Main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  const int kTemplates = flags.quick ? 20 : 124;

  std::printf("=== Figure 6: WatDiv stress test ===\n");
  std::printf("%d templates x %d instances, timeout %.0fs\n\n", kTemplates,
              flags.watdiv_instances, flags.timeout);

  Rng template_rng(flags.seed);
  auto templates = GenerateWatdivTemplates(kTemplates, template_rng);

  // Per algorithm: mean optimization time per template; cost ratios.
  std::map<std::string, std::vector<double>> mean_time;
  std::map<std::string, std::vector<double>> ratios;
  std::map<std::string, std::size_t> finished;
  std::size_t universe = 0;

  Rng instance_rng(flags.seed + 1);
  for (const WatdivTemplate& tmpl : templates) {
    std::map<std::string, double> time_sum;
    for (int i = 0; i < flags.watdiv_instances; ++i) {
      GeneratedQuery q = InstantiateWatdivTemplate(tmpl, instance_rng);
      double reference_cost = -1;
      ++universe;
      for (const auto& [algorithm, name] : kAlgorithms) {
        // WatDiv runs under hash locality, the paper's setting.
        HashSoPartitioner hash;
        auto query = Prepare(q, hash);
        OptimizeResult r = Run(algorithm, *query, flags);
        time_sum[name] += r.seconds;
        if (r.plan == nullptr) continue;
        ++finished[name];
        if (algorithm == Algorithm::kTdCmd) {
          reference_cost = r.plan->total_cost;
        } else if (reference_cost > 0) {
          ratios[name].push_back(r.plan->total_cost / reference_cost);
        }
      }
    }
    for (const auto& [algorithm, name] : kAlgorithms) {
      mean_time[name].push_back(time_sum[name] / flags.watdiv_instances);
    }
  }

  std::printf("--- (a) optimization time per template (seconds) ---\n");
  PrintRow("algorithm", {"min", "median", "p90", "max", "finished"});
  PrintRule(10, 5);
  for (const auto& [algorithm, name] : kAlgorithms) {
    std::vector<double>& t = mean_time[name];
    std::sort(t.begin(), t.end());
    auto fmt = [](double v) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.5f", v);
      return std::string(buf);
    };
    PrintRow(name,
             {fmt(t.front()), fmt(t[t.size() / 2]),
              fmt(t[t.size() * 9 / 10]), fmt(t.back()),
              std::to_string(finished[name])},
             10);
  }

  std::printf("\n--- (a) per-template mean optimization time (CSV) ---\n");
  std::printf("template");
  for (const auto& [algorithm, name] : kAlgorithms) {
    std::printf(",%s", name.c_str());
  }
  std::printf("\n");
  // Reconstruct per-template order (mean_time was sorted above; recompute
  // is cheaper than keeping both, but we saved them sorted — so print the
  // sorted profile, which is exactly how Figure 6a is usually read).
  for (int i = 0; i < kTemplates; ++i) {
    std::printf("%d", i);
    for (const auto& [algorithm, name] : kAlgorithms) {
      std::printf(",%.6f", mean_time[name][i]);
    }
    std::printf("\n");
  }

  std::printf(
      "\n--- (b) cumulative frequency of plan cost / TD-CMD cost ---\n");
  PrintRow("algorithm",
           {"<=1.0", "1.01", "1.1", "1.25", "1.5", "2", "4", "8", "inf"},
           10, 7);
  PrintRule(10, 9, 7);
  for (const auto& [algorithm, name] : kAlgorithms) {
    if (algorithm == Algorithm::kTdCmd) continue;
    PrintCdf(name, ratios[name], universe);
  }
  std::printf("\n(universe = %zu optimized instances; plans missing from a "
              "row's tail timed out)\n",
              universe);
  return 0;
}

}  // namespace
}  // namespace parqo::bench

int main(int argc, char** argv) { return parqo::bench::Main(argc, argv); }
