// Serving-layer bench: replay a WatDiv template stream through the
// QueryServer and measure what the plan cache buys end to end.
//
// Setup: an executable WatDiv dataset on a simulated cluster, the 124
// query templates (--quick: 24), and a stream of `instances` events per
// template. Every event is a scrambled instance — variables renamed,
// patterns permuted, entity constants re-drawn — so any cache hit is the
// canonicalizer's doing, never string equality. Two arrival orders:
// "uniform" cycles templates evenly; "skewed" concentrates most events on
// few templates (the realistic endpoint shape).
//
// Three passes per distribution:
//   serial      - every event cold: canonicalize, prepare statistics,
//                 optimize, execute. No cache. The per-query baseline.
//   concurrent  - the same stream through QueryServer::ServeConcurrent
//                 with --clients sessions sharing the plan cache. Every
//                 served plan is compared bit-for-bit (compact rendering
//                 + %.17g cost) against the serial pass's plan for that
//                 signature, and result rows must carry the same
//                 order-independent multiset fingerprint as that event's
//                 serial rows.
//   faults      - the concurrent pass again under a seeded FaultPlan
//                 (PR 4 layer): every session must return rows identical
//                 to the fault-free pass or a clean typed error.
//
// --json=PATH writes BENCH_serve.json (schema validated by CI's
// bench-smoke job): per-distribution cache hit rate, p50/p99 end-to-end
// latency serial vs concurrent, and the identity/fault verdicts.
//
// --faults additionally runs the self-healing resilience sweep
// (DESIGN.md section 16) on a fixed query: a sick-node stream (the
// breaker must trip within its configured threshold, after which
// sessions route around the node with zero mid-query crash detections),
// a straggler stream served hedged vs un-hedged (hedged p99 must not
// exceed un-hedged p99; rows bit-identical to clean), and a retry storm
// under a fixed cluster-wide RetryBudget (total retries across all
// sessions <= capacity). Results land in the JSON's "resilience"
// section, with per-session recovery/hedge/quarantine counters printed.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/fault.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "exec/cluster.h"
#include "exec/executor.h"
#include "optimizer/prepared_query.h"
#include "partition/hash_so.h"
#include "plan/plan.h"
#include "server/server.h"
#include "server/signature.h"
#include "workload/watdiv.h"

namespace parqo::bench {
namespace {

std::uint64_t ChaosSeed(std::uint64_t fallback) {
  // Read once from main() before any worker thread exists; nothing in the
  // process calls setenv, so the getenv data race mt-unsafe guards
  // against cannot occur here.
  const char* env = std::getenv("PARQO_CHAOS_SEED");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

/// Scrambles one event: renames variables, permutes patterns, re-draws
/// the trailing number of every entity constant. Structure (and thus the
/// signature) is untouched.
std::vector<TriplePattern> ScrambleEvent(
    const std::vector<TriplePattern>& patterns, int entities, Rng& rng) {
  std::map<std::string, std::string> names;
  for (const TriplePattern& tp : patterns) {
    for (const std::string& v : tp.Variables()) {
      if (!names.count(v)) {
        names[v] = "v" + std::to_string(rng.Next() % 1000000) + "_" +
                   std::to_string(names.size());
      }
    }
  }
  std::vector<TriplePattern> out = patterns;
  for (TriplePattern& tp : out) {
    for (PatternTerm* t : {&tp.s, &tp.p, &tp.o}) {
      if (t->IsVar()) {
        t->var = names.at(t->var);
      } else if (t != &tp.p) {
        // Re-draw ".../entity/<Class><num>" constants: same signature
        // (the value is parameterized out), different cache-irrelevant
        // binding.
        std::string& lex = t->term.lexical;
        std::size_t end = lex.size();
        while (end > 0 && std::isdigit(static_cast<unsigned char>(
                              lex[end - 1]))) {
          --end;
        }
        if (end < lex.size()) {
          lex = lex.substr(0, end) +
                std::to_string(rng.Uniform(0, entities - 1));
        }
      }
    }
  }
  for (std::size_t i = out.size(); i > 1; --i) {
    std::swap(out[i - 1], out[rng.Next() % i]);
  }
  return out;
}

struct LatencyStats {
  double p50_ms = 0, p99_ms = 0, mean_ms = 0, total_s = 0;
};

LatencyStats Summarize(std::vector<double> seconds, double total_s) {
  LatencyStats s;
  if (seconds.empty()) return s;
  std::sort(seconds.begin(), seconds.end());
  auto pct = [&](double p) {
    std::size_t i = static_cast<std::size_t>(p * (seconds.size() - 1));
    return seconds[i] * 1e3;
  };
  s.p50_ms = pct(0.5);
  s.p99_ms = pct(0.99);
  double sum = 0;
  for (double v : seconds) sum += v;
  s.mean_ms = sum / seconds.size() * 1e3;
  s.total_s = total_s;
  return s;
}

/// What the serial cold pass learned about one signature: the golden
/// plan identity (rows are golden per event, not per signature).
struct Golden {
  std::string plan_compact;
  std::string cost_bits;
};

std::string CostBits(double cost) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", cost);
  return buf;
}

/// Order-independent multiset fingerprint of a result table over the
/// canonical VarIds 0..num_vars-1: per-row FNV-1a folded with two
/// commutative reductions plus the row count. This replaces
/// materializing a std::set of row vectors — WatDiv templates that
/// return millions of rows made that the bench's memory bound (tens of
/// GB across the event stream), not anything in the serving layer.
struct RowsFp {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t xr = 0;
  bool operator!=(const RowsFp& o) const {
    return count != o.count || sum != o.sum || xr != o.xr;
  }
};

RowsFp FingerprintRows(const BindingTable& t, int num_vars) {
  RowsFp fp;
  std::vector<int> cols(static_cast<std::size_t>(num_vars));
  for (VarId v = 0; v < num_vars; ++v) cols[v] = t.ColumnOf(v);
  for (std::size_t r = 0; r < t.NumRows(); ++r) {
    std::uint64_t h = 1469598103934665603ULL;
    for (int c : cols) {
      std::uint64_t x =
          c < 0 ? ~std::uint64_t{0} : static_cast<std::uint64_t>(t.At(r, c));
      for (int b = 0; b < 8; ++b) {
        h ^= (x >> (8 * b)) & 0xff;
        h *= 1099511628211ULL;
      }
    }
    ++fp.count;
    fp.sum += h;
    fp.xr ^= h;
  }
  return fp;
}

/// The --faults self-healing sweep: one verdict per scenario, plus the
/// numbers the acceptance bars are stated in.
struct ResilienceReport {
  // Sick-node stream.
  int sick_sessions = 0;
  int breaker_trip_session = 0;  ///< 1-based session that tripped it.
  int failure_threshold = 0;
  std::uint64_t post_trip_crash_detections = 0;
  int post_trip_quarantined_sessions = 0;
  bool sick_rows_match = true;
  // Straggler stream, hedged vs un-hedged.
  double unhedged_p99_ms = 0;
  double hedged_p99_ms = 0;
  std::uint64_t hedge_launches = 0;
  std::uint64_t hedge_wins = 0;
  bool hedge_rows_match = true;
  // Retry storm under a shared budget.
  int storm_sessions = 0;
  std::uint64_t budget_capacity = 0;
  std::uint64_t retries_acquired = 0;
  std::uint64_t budget_denied = 0;
  int storm_typed_errors = 0;
  bool storm_rows_match = true;

  bool ok() const {
    return breaker_trip_session > 0 &&
           breaker_trip_session <= failure_threshold &&
           post_trip_crash_detections == 0 && sick_rows_match &&
           hedged_p99_ms <= unhedged_p99_ms && hedge_rows_match &&
           retries_acquired <= budget_capacity && storm_rows_match;
  }
};

/// Runs the three seeded resilience scenarios against a fixed query (the
/// first mid-size template) so every session's rows are comparable to
/// one clean fingerprint.
ResilienceReport RunResilience(const RdfGraph& graph, const Cluster& cluster,
                               const Partitioner& partitioner,
                               const OptimizeOptions& options,
                               const std::vector<WatdivTemplate>& templates,
                               const Flags& flags) {
  ResilienceReport rep;
  std::vector<TriplePattern> query = templates[0].patterns;
  for (const WatdivTemplate& t : templates) {
    if (t.patterns.size() >= 3 && t.patterns.size() <= 5) {
      query = t.patterns;
      break;
    }
  }

  auto fingerprint = [](const ServeResult& r) {
    return FingerprintRows(r.rows, static_cast<int>(r.var_names.size()));
  };

  // --- Scenario 1: sick node. Sessions stream at a persistently failing
  // node; the breaker must trip within failure_threshold sessions, after
  // which every session quarantines the node pre-emptively.
  {
    ServerConfig config;
    config.algorithm = Algorithm::kTdAuto;
    config.options = options;
    config.health.failure_threshold = 3;
    config.health.cooldown_seconds = 1e6;  // stays open for the sweep
    QueryServer server(graph, cluster, partitioner, config);
    rep.failure_threshold = config.health.failure_threshold;

    ServeResult clean = server.Serve(query);
    if (!clean.status.ok()) {
      std::fprintf(stderr, "resilience: clean serve failed: %s\n",
                   clean.status.ToString().c_str());
      rep.sick_rows_match = false;
      return rep;
    }
    RowsFp clean_fp = fingerprint(clean);

    const int sick_node = 1;
    FaultPlan fault(flags.nodes);
    fault.SickNode(sick_node);
    FaultScope scope(&fault);
    rep.sick_sessions = rep.failure_threshold + 6;
    std::printf("resilience: sick node %d, %d sessions\n", sick_node,
                rep.sick_sessions);
    for (int s = 1; s <= rep.sick_sessions; ++s) {
      ServeResult r = server.Serve(query);
      bool tripped = server.health()->state(sick_node) == BreakerState::kOpen;
      if (rep.breaker_trip_session == 0 && tripped) {
        rep.breaker_trip_session = s;
      }
      std::uint64_t crashes = 0;
      for (std::uint64_t f : r.exec_metrics.node_failures) crashes += f;
      bool quarantined = !r.exec_metrics.quarantined_nodes.empty();
      if (rep.breaker_trip_session > 0 && s > rep.breaker_trip_session) {
        rep.post_trip_crash_detections += crashes;
        if (quarantined) ++rep.post_trip_quarantined_sessions;
      }
      if (r.status.ok()) {
        if (fingerprint(r) != clean_fp) rep.sick_rows_match = false;
      } else {
        rep.sick_rows_match = false;  // a sick node must be recoverable
      }
      std::printf(
          "  session %2d: recoveries=%llu crashes_detected=%llu "
          "quarantined=%s breaker=%s\n",
          s,
          static_cast<unsigned long long>(r.exec_metrics.recovery_attempts),
          static_cast<unsigned long long>(crashes), quarantined ? "yes" : "no",
          tripped ? "open" : "closed");
    }
  }

  // --- Scenario 2: straggler, hedged vs un-hedged. The same slow-node
  // fault plan served by a health-less server (pays the delay) and by a
  // warmed health-enabled server (hedges around it).
  {
    const int slow_node = flags.nodes - 1;
    const double delay = 0.005;
    const int kSessions = 12;

    auto p99 = [](std::vector<double> lat) {
      std::sort(lat.begin(), lat.end());
      return lat[static_cast<std::size_t>(0.99 * (lat.size() - 1))] * 1e3;
    };

    ServerConfig unhedged_config;
    unhedged_config.algorithm = Algorithm::kTdAuto;
    unhedged_config.options = options;
    unhedged_config.enable_health = false;
    QueryServer unhedged(graph, cluster, partitioner, unhedged_config);

    ServerConfig hedged_config = unhedged_config;
    hedged_config.enable_health = true;
    QueryServer hedged(graph, cluster, partitioner, hedged_config);

    ServeResult clean = hedged.Serve(query);  // warms cache AND EWMAs
    RowsFp clean_fp = fingerprint(clean);
    ServeResult warm = hedged.Serve(query);  // cache-hit timing sample
    (void)warm;
    ServeResult unhedged_clean = unhedged.Serve(query);
    (void)unhedged_clean;

    FaultPlan fault(flags.nodes);
    fault.SlowNode(slow_node, delay);
    FaultScope scope(&fault);
    std::vector<double> unhedged_lat, hedged_lat;
    for (int s = 0; s < kSessions; ++s) {
      ServeResult r = unhedged.Serve(query);
      if (!r.status.ok() || fingerprint(r) != clean_fp) {
        rep.hedge_rows_match = false;
      }
      unhedged_lat.push_back(r.total_seconds);
    }
    for (int s = 0; s < kSessions; ++s) {
      ServeResult r = hedged.Serve(query);
      if (!r.status.ok() || fingerprint(r) != clean_fp) {
        rep.hedge_rows_match = false;
      }
      rep.hedge_launches += r.exec_metrics.hedged_ops;
      rep.hedge_wins += r.exec_metrics.hedge_wins;
      hedged_lat.push_back(r.total_seconds);
    }
    rep.unhedged_p99_ms = p99(unhedged_lat);
    rep.hedged_p99_ms = p99(hedged_lat);
    std::printf(
        "resilience: straggler node %d (+%.1f ms/op): p99 %.3f ms "
        "un-hedged vs %.3f ms hedged (%llu hedges, %llu wins)\n",
        slow_node, delay * 1e3, rep.unhedged_p99_ms, rep.hedged_p99_ms,
        static_cast<unsigned long long>(rep.hedge_launches),
        static_cast<unsigned long long>(rep.hedge_wins));
  }

  // --- Scenario 3: retry storm against a fixed cluster-wide budget.
  // Concurrent sessions retry through a very lossy network; the TOTAL
  // number of retries across all of them is capped by the bucket.
  {
    ServerConfig config;
    config.algorithm = Algorithm::kTdAuto;
    config.options = options;
    config.enable_health = false;  // isolate the budget
    config.retry_budget = 16;
    config.num_threads = 4;
    QueryServer server(graph, cluster, partitioner, config);
    rep.budget_capacity = config.retry_budget;

    ServeResult clean = server.Serve(query);
    RowsFp clean_fp = fingerprint(clean);

    FaultPlan fault(flags.nodes);
    fault.DropShipments(0.5, ChaosSeed(flags.seed));
    rep.storm_sessions = 24;
    std::vector<std::vector<TriplePattern>> stream(
        static_cast<std::size_t>(rep.storm_sessions), query);
    std::vector<char> verdict(stream.size(), 0);  // 1 ok, 2 typed, 3 bad
    {
      FaultScope scope(&fault);
      server.ServeConcurrent(stream, 4, [&](std::size_t e, ServeResult r) {
        if (r.status.ok()) {
          verdict[e] = fingerprint(r) != clean_fp ? 3 : 1;
        } else {
          verdict[e] = r.status.code() == StatusCode::kUnavailable ||
                               r.status.code() == StatusCode::kOverloaded
                           ? 2
                           : 3;
        }
      });
    }
    for (char v : verdict) {
      if (v == 2) ++rep.storm_typed_errors;
      if (v == 3) rep.storm_rows_match = false;
    }
    rep.retries_acquired = server.retry_budget()->acquired();
    rep.budget_denied = server.retry_budget()->denied();
    std::printf(
        "resilience: retry storm: %llu/%llu budget tokens drawn across %d "
        "sessions (%llu denied, %d typed errors)\n\n",
        static_cast<unsigned long long>(rep.retries_acquired),
        static_cast<unsigned long long>(rep.budget_capacity),
        rep.storm_sessions, static_cast<unsigned long long>(rep.budget_denied),
        rep.storm_typed_errors);
  }
  return rep;
}

struct DistributionReport {
  std::string name;
  int events = 0;
  LatencyStats serial;
  LatencyStats concurrent;
  std::uint64_t hits = 0, misses = 0, evictions = 0, overloaded = 0;
  double hit_rate = 0;
  bool plans_identical = true;
  bool rows_identical = true;
  int fault_sessions = 0, fault_ok = 0, fault_typed_errors = 0;
  bool fault_rows_match = true;
};

int Main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  const int kTemplates = flags.quick ? 24 : 124;
  // >= 10 events per template keeps the best-case hit rate >= 90%, the
  // acceptance bar for template replay.
  const int kEventsPerTemplate = 12;
  const int kClients = 4;
  const int kEntities = flags.quick ? 120 : 300;

  std::printf("=== bench_serve: plan-cache serving vs per-query optimize ===\n");
  std::printf("%d templates, %d events each, %d clients, %d nodes\n\n",
              kTemplates, kEventsPerTemplate, kClients, flags.nodes);

  WatdivDataConfig data_config;
  data_config.entities_per_class = kEntities;
  data_config.density = 1.2;
  data_config.seed = flags.seed;
  RdfGraph graph = GenerateWatdivData(data_config);
  HashSoPartitioner partitioner;
  Cluster cluster(graph, partitioner.PartitionData(graph, flags.nodes));
  std::printf("data: %zu triples on %d nodes\n\n", graph.NumTriples(),
              flags.nodes);

  Rng template_rng(flags.seed);
  auto templates = GenerateWatdivTemplates(kTemplates, template_rng);
  const int kEvents = kTemplates * kEventsPerTemplate;

  OptimizeOptions options;
  options.timeout_seconds = flags.timeout;
  options.cost_params.num_nodes = flags.nodes;

  std::vector<DistributionReport> reports;
  for (const std::string& dist : {std::string("skewed"),
                                  std::string("uniform")}) {
    DistributionReport report;
    report.name = dist;
    report.events = kEvents;

    // Build the stream. Uniform cycles templates; skewed draws template
    // u^3-biased so a few templates dominate (hot keys), while every
    // template still appears at least once (cold tail).
    Rng stream_rng(flags.seed + (dist == "skewed" ? 11 : 23));
    std::vector<std::vector<TriplePattern>> stream;
    stream.reserve(kEvents);
    for (int i = 0; i < kEvents; ++i) {
      int t;
      if (dist == "uniform" || i < kTemplates) {
        t = i % kTemplates;
      } else {
        double u =
            static_cast<double>(stream_rng.Next() % 1000000) / 1000000.0;
        t = static_cast<int>(u * u * u * kTemplates) % kTemplates;
      }
      stream.push_back(
          ScrambleEvent(templates[t].patterns, kEntities, stream_rng));
    }

    // --- serial cold baseline: optimize + execute every event, no cache.
    // Plan identity is golden per *signature*; rows are golden per
    // *event* — two events of one template share a plan but carry
    // re-drawn constants, so their rows differ legitimately.
    std::map<std::string, Golden> golden;
    std::vector<RowsFp> event_rows(stream.size());
    std::vector<double> serial_lat;
    serial_lat.reserve(kEvents);
    Stopwatch serial_watch;
    for (std::size_t e = 0; e < stream.size(); ++e) {
      const auto& event = stream[e];
      Stopwatch event_watch;
      CanonicalBgp canon = CanonicalizeBgp(event);
      PreparedQuery prepared(canon.patterns, partitioner,
                             StatsFromData(graph));
      OptimizeResult r =
          Optimize(Algorithm::kTdAuto, prepared.inputs(), options);
      if (!r.plan) {
        std::fprintf(stderr, "serial optimize produced no plan\n");
        return 1;
      }
      Executor exec(cluster, prepared.join_graph(), options.cost_params);
      ExecMetrics m;
      auto rows = exec.Execute(*r.plan, &m);
      if (!rows.ok()) {
        std::fprintf(stderr, "serial execute failed: %s\n",
                     rows.status().ToString().c_str());
        return 1;
      }
      serial_lat.push_back(event_watch.ElapsedSeconds());
      event_rows[e] =
          FingerprintRows(*rows, static_cast<int>(canon.var_names.size()));
      auto [it, inserted] = golden.emplace(canon.signature, Golden{});
      if (inserted) {
        it->second.plan_compact = PlanToCompactString(*r.plan);
        it->second.cost_bits = CostBits(r.plan->total_cost);
      }
    }
    report.serial = Summarize(serial_lat, serial_watch.ElapsedSeconds());

    // --- concurrent cached pass through the server.
    ServerConfig config;
    config.algorithm = Algorithm::kTdAuto;
    config.options = options;
    config.num_threads = kClients;
    config.max_in_flight = kClients * 4;
    QueryServer server(graph, cluster, partitioner, config);
    // Streaming consumption: each session's result table is verified and
    // dropped on the worker thread that produced it; only per-index
    // scalars survive the pass. Slots are distinct per index, so the
    // concurrent writes below are race-free.
    std::vector<double> lat_by_event(stream.size(), -1);
    std::vector<char> was_overloaded(stream.size(), 0);
    std::vector<char> plan_mismatch(stream.size(), 0);
    std::vector<char> rows_mismatch(stream.size(), 0);
    Stopwatch concurrent_watch;
    server.ServeConcurrent(
        stream, kClients, [&](std::size_t e, ServeResult r) {
          if (!r.status.ok()) {
            if (r.status.code() == StatusCode::kOverloaded) {
              was_overloaded[e] = 1;
            }
            return;
          }
          lat_by_event[e] = r.total_seconds;
          const Golden& g = golden.at(r.signature);
          if (PlanToCompactString(*r.plan) != g.plan_compact ||
              CostBits(r.plan->total_cost) != g.cost_bits) {
            plan_mismatch[e] = 1;
          }
          if (FingerprintRows(r.rows, static_cast<int>(r.var_names.size())) !=
              event_rows[e]) {
            rows_mismatch[e] = 1;
          }
        });
    double concurrent_total = concurrent_watch.ElapsedSeconds();

    std::vector<double> concurrent_lat;
    concurrent_lat.reserve(stream.size());
    for (std::size_t e = 0; e < stream.size(); ++e) {
      if (was_overloaded[e]) ++report.overloaded;
      if (lat_by_event[e] >= 0) concurrent_lat.push_back(lat_by_event[e]);
      if (plan_mismatch[e]) report.plans_identical = false;
      if (rows_mismatch[e]) report.rows_identical = false;
    }
    report.concurrent = Summarize(concurrent_lat, concurrent_total);
    report.hits = server.cache().hits();
    report.misses = server.cache().misses();
    report.evictions = server.cache().evictions();
    report.hit_rate =
        report.hits + report.misses == 0
            ? 0
            : static_cast<double>(report.hits) /
                  static_cast<double>(report.hits + report.misses);

    // --- fault pass: same stream, same (already warm) server, under a
    // seeded fault plan. Chaos invariant per session.
    FaultPlanConfig fault_config;
    fault_config.crash_probability = 0.3;
    fault_config.drop_probability = 0.1;
    FaultPlan fault(ChaosSeed(flags.seed), flags.nodes, fault_config);
    // 0 = pending, 1 = ok+rows match, 2 = typed error, 3 = invariant broken.
    std::vector<char> fault_verdict(stream.size(), 0);
    {
      FaultScope scope(&fault);
      server.ServeConcurrent(
          stream, kClients, [&](std::size_t e, ServeResult r) {
            if (r.status.ok()) {
              fault_verdict[e] =
                  FingerprintRows(r.rows,
                                  static_cast<int>(r.var_names.size())) !=
                          event_rows[e]
                      ? 3
                      : 1;
            } else {
              fault_verdict[e] =
                  r.status.code() != StatusCode::kUnavailable &&
                          r.status.code() != StatusCode::kOverloaded
                      ? 3
                      : 2;
            }
          });
    }
    for (char v : fault_verdict) {
      ++report.fault_sessions;
      if (v == 1) ++report.fault_ok;
      if (v == 2) ++report.fault_typed_errors;
      if (v == 3) report.fault_rows_match = false;
    }

    std::printf("--- %s stream (%d events) ---\n", dist.c_str(), kEvents);
    PrintRow("pass", {"p50 ms", "p99 ms", "mean ms", "total s"}, 12, 10);
    PrintRule(12, 4, 10);
    auto row = [](const LatencyStats& s) {
      char a[32], b[32], c[32], d[32];
      std::snprintf(a, sizeof(a), "%.3f", s.p50_ms);
      std::snprintf(b, sizeof(b), "%.3f", s.p99_ms);
      std::snprintf(c, sizeof(c), "%.3f", s.mean_ms);
      std::snprintf(d, sizeof(d), "%.2f", s.total_s);
      return std::vector<std::string>{a, b, c, d};
    };
    PrintRow("serial", row(report.serial), 12, 10);
    PrintRow("concurrent", row(report.concurrent), 12, 10);
    std::printf(
        "cache: %llu hits / %llu misses (%.1f%% hit rate), %llu evictions, "
        "%llu overloaded\nplans identical to cold optimize: %s; rows "
        "identical: %s\nfaults: %d sessions -> %d ok, %d typed errors, "
        "invariant %s\n\n",
        static_cast<unsigned long long>(report.hits),
        static_cast<unsigned long long>(report.misses),
        report.hit_rate * 100.0,
        static_cast<unsigned long long>(report.evictions),
        static_cast<unsigned long long>(report.overloaded),
        report.plans_identical ? "yes" : "NO",
        report.rows_identical ? "yes" : "NO", report.fault_sessions,
        report.fault_ok, report.fault_typed_errors,
        report.fault_rows_match ? "held" : "VIOLATED");
    reports.push_back(std::move(report));
  }

  ResilienceReport resilience;
  bool ran_resilience = false;
  if (flags.faults) {
    std::printf("--- resilience sweep (--faults) ---\n");
    resilience = RunResilience(graph, cluster, partitioner, options,
                               templates, flags);
    ran_resilience = true;
    std::printf(
        "resilience verdict: breaker trip session %d (threshold %d), "
        "post-trip crash detections %llu, hedged p99 %s un-hedged, "
        "retries %llu <= budget %llu: %s\n\n",
        resilience.breaker_trip_session, resilience.failure_threshold,
        static_cast<unsigned long long>(
            resilience.post_trip_crash_detections),
        resilience.hedged_p99_ms <= resilience.unhedged_p99_ms ? "<=" : ">",
        static_cast<unsigned long long>(resilience.retries_acquired),
        static_cast<unsigned long long>(resilience.budget_capacity),
        resilience.ok() ? "OK" : "VIOLATED");
  }

  bool all_ok = true;
  for (const DistributionReport& r : reports) {
    all_ok = all_ok && r.plans_identical && r.rows_identical &&
             r.fault_rows_match;
  }
  if (ran_resilience) all_ok = all_ok && resilience.ok();

  if (!flags.json.empty()) {
    std::string json = "{\n";
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  \"workload\": {\"templates\": %d, \"events_per_template\""
                  ": %d, \"clients\": %d, \"nodes\": %d},\n"
                  "  \"distributions\": {\n",
                  kTemplates, kEventsPerTemplate, kClients, flags.nodes);
    json += buf;
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const DistributionReport& r = reports[i];
      std::snprintf(
          buf, sizeof(buf),
          "    \"%s\": {\n"
          "      \"events\": %d,\n"
          "      \"serial\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
          "\"mean_ms\": %.4f, \"total_s\": %.3f},\n"
          "      \"concurrent\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
          "\"mean_ms\": %.4f, \"total_s\": %.3f},\n",
          r.name.c_str(), r.events, r.serial.p50_ms, r.serial.p99_ms,
          r.serial.mean_ms, r.serial.total_s, r.concurrent.p50_ms,
          r.concurrent.p99_ms, r.concurrent.mean_ms, r.concurrent.total_s);
      json += buf;
      std::snprintf(
          buf, sizeof(buf),
          "      \"cache\": {\"hits\": %llu, \"misses\": %llu, "
          "\"evictions\": %llu, \"hit_rate\": %.4f},\n"
          "      \"overloaded\": %llu,\n"
          "      \"plans_identical\": %s,\n"
          "      \"rows_identical\": %s,\n"
          "      \"faults\": {\"sessions\": %d, \"ok\": %d, "
          "\"typed_errors\": %d, \"rows_match\": %s}\n    }%s\n",
          static_cast<unsigned long long>(r.hits),
          static_cast<unsigned long long>(r.misses),
          static_cast<unsigned long long>(r.evictions), r.hit_rate,
          static_cast<unsigned long long>(r.overloaded),
          r.plans_identical ? "true" : "false",
          r.rows_identical ? "true" : "false", r.fault_sessions, r.fault_ok,
          r.fault_typed_errors, r.fault_rows_match ? "true" : "false",
          i + 1 < reports.size() ? "," : "");
      json += buf;
    }
    json += "  }";
    if (ran_resilience) {
      const ResilienceReport& r = resilience;
      json += ",\n  \"resilience\": {\n";
      std::snprintf(
          buf, sizeof(buf),
          "    \"sick_node\": {\"sessions\": %d, \"failure_threshold\": %d, "
          "\"breaker_trip_session\": %d, \"post_trip_crash_detections\": "
          "%llu, \"post_trip_quarantined_sessions\": %d, \"rows_match\": "
          "%s},\n",
          r.sick_sessions, r.failure_threshold, r.breaker_trip_session,
          static_cast<unsigned long long>(r.post_trip_crash_detections),
          r.post_trip_quarantined_sessions,
          r.sick_rows_match ? "true" : "false");
      json += buf;
      std::snprintf(
          buf, sizeof(buf),
          "    \"hedging\": {\"unhedged_p99_ms\": %.4f, \"hedged_p99_ms\": "
          "%.4f, \"hedge_launches\": %llu, \"hedge_wins\": %llu, "
          "\"rows_match\": %s},\n",
          r.unhedged_p99_ms, r.hedged_p99_ms,
          static_cast<unsigned long long>(r.hedge_launches),
          static_cast<unsigned long long>(r.hedge_wins),
          r.hedge_rows_match ? "true" : "false");
      json += buf;
      std::snprintf(
          buf, sizeof(buf),
          "    \"retry_storm\": {\"sessions\": %d, \"budget_capacity\": "
          "%llu, \"retries_acquired\": %llu, \"budget_denied\": %llu, "
          "\"typed_errors\": %d, \"within_budget\": %s, \"rows_match\": "
          "%s},\n    \"ok\": %s\n  }",
          r.storm_sessions, static_cast<unsigned long long>(r.budget_capacity),
          static_cast<unsigned long long>(r.retries_acquired),
          static_cast<unsigned long long>(r.budget_denied),
          r.storm_typed_errors,
          r.retries_acquired <= r.budget_capacity ? "true" : "false",
          r.storm_rows_match ? "true" : "false", r.ok() ? "true" : "false");
      json += buf;
    }
    json += "\n}\n";
    FILE* f = std::fopen(flags.json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", flags.json.c_str());
  }

  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace parqo::bench

int main(int argc, char** argv) { return parqo::bench::Main(argc, argv); }
