// Reproduces Figure 7: optimization time versus query size (2..30 triple
// patterns) for chain, cycle, tree, and dense queries from the random
// query generator, per algorithm. Cells are mean seconds over --repeats
// queries; "N/A" marks timeouts (the paper cuts curves at 600 s).
//
// Expected shape: TD-CMD is near-flat for chain/cycle (linear amortized
// enumeration), grows steeply on tree/dense; TD-CMDP tracks TD-CMD but
// 2-5x faster on large tree/dense; HGR-TD-CMD stays lowest at large n;
// MSC grows exponentially everywhere; DP-Bushy blows up on chains/cycles
// (generate-then-check splits) while staying fast on dense.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "partition/hash_so.h"

namespace parqo::bench {
namespace {

const std::vector<std::pair<Algorithm, std::string>> kAlgorithms{
    {Algorithm::kTdCmd, "TD-CMD"},     {Algorithm::kTdCmdp, "TD-CMDP"},
    {Algorithm::kHgrTdCmd, "HGR"},     {Algorithm::kMsc, "MSC"},
    {Algorithm::kDpBushy, "DP-Bushy"}, {Algorithm::kTdAuto, "TD-Auto"},
};

int Main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  std::printf("=== Figure 7: optimization time vs query size ===\n");
  std::printf("mean over %d random queries per cell; N/A = >%.0fs\n\n",
              flags.repeats, flags.timeout);

  const std::vector<std::pair<QueryShape, std::string>> shapes{
      {QueryShape::kChain, "(a) chain"},
      {QueryShape::kCycle, "(b) cycle"},
      {QueryShape::kTree, "(c) tree"},
      {QueryShape::kDense, "(d) dense"},
  };
  std::vector<int> sizes;
  for (int n = 4; n <= (flags.quick ? 12 : 30); n += flags.quick ? 4 : 2) {
    sizes.push_back(n);
  }

  for (const auto& [shape, title] : shapes) {
    std::printf("--- %s ---\n", title.c_str());
    std::vector<std::string> header;
    for (int n : sizes) header.push_back(std::to_string(n));
    PrintRow("algorithm", header, 10, 9);
    PrintRule(10, static_cast<int>(sizes.size()), 9);

    for (const auto& [algorithm, name] : kAlgorithms) {
      std::vector<std::string> cells;
      bool exceeded = false;  // once an algorithm times out, stop growing
      for (int n : sizes) {
        if (exceeded) {
          cells.push_back("N/A");
          continue;
        }
        double sum = 0;
        bool timed_out = false;
        for (int rep = 0; rep < flags.repeats; ++rep) {
          Rng rng(flags.seed + 1000 * n + rep);
          GeneratedQuery q = GenerateRandomQuery(shape, n, rng);
          HashSoPartitioner hash;
          auto query = Prepare(q, hash);
          OptimizeResult r = Run(algorithm, *query, flags);
          sum += r.seconds;
          timed_out |= r.timed_out;
          if (timed_out) break;  // no point burning the budget again
        }
        if (timed_out) {
          cells.push_back("N/A");
          exceeded = true;
        } else {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.4f", sum / flags.repeats);
          cells.push_back(buf);
        }
      }
      PrintRow(name, cells, 10, 9);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace parqo::bench

int main(int argc, char** argv) { return parqo::bench::Main(argc, argv); }
