// Parallel-optimizer bench: how much faster does the WatDiv batch
// workload (Fig 6's 124 templates x N instances) optimize when the
// optimizer itself runs multi-threaded?
//
//   (a) inter-query: the whole batch dispatched to a ParallelOptimizer
//       pool, sweeping worker counts (--threads=1,2,4,8); the 1-thread
//       row is a plain sequential loop and is the speedup baseline. Every
//       parallel pass is cross-checked against the baseline: plan costs
//       must be identical for every query (determinism contract).
//   (b) intra-query: one large query per shape, sweeping
//       OptimizeOptions::num_threads through TdCmdCore::RunParallel.
//
// Every pass re-prepares its queries so no pass inherits another's warm
// cardinality memo. --json=PATH additionally emits the results machine-
// readable (threads -> seconds/speedup) for trend tracking across PRs.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "optimizer/parallel_optimizer.h"
#include "partition/hash_so.h"
#include "workload/random_query.h"
#include "workload/watdiv.h"

namespace parqo::bench {
namespace {

struct PassResult {
  int threads = 1;
  double seconds = 0;
  bool costs_match = true;
  int mismatches = 0;
};

std::vector<std::unique_ptr<PreparedQuery>> PrepareAll(
    const std::vector<GeneratedQuery>& instances,
    const Partitioner& partitioner) {
  std::vector<std::unique_ptr<PreparedQuery>> out;
  out.reserve(instances.size());
  for (const GeneratedQuery& q : instances) {
    out.push_back(Prepare(q, partitioner));
  }
  return out;
}

int Main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  const int kTemplates = flags.quick ? 20 : 124;
  std::vector<int> thread_counts = ParseThreadList(flags.threads);
  if (thread_counts.empty() || thread_counts.front() != 1) {
    thread_counts.insert(thread_counts.begin(), 1);
  }

  std::printf("=== bench_parallel: optimizer throughput vs. threads ===\n");
  std::printf(
      "WatDiv batch: %d templates x %d instances; hardware_concurrency=%d\n\n",
      kTemplates, flags.watdiv_instances, ThreadPool::DefaultConcurrency());

  Rng template_rng(flags.seed);
  auto templates = GenerateWatdivTemplates(kTemplates, template_rng);
  Rng instance_rng(flags.seed + 1);
  std::vector<GeneratedQuery> instances;
  for (const WatdivTemplate& tmpl : templates) {
    for (int i = 0; i < flags.watdiv_instances; ++i) {
      instances.push_back(InstantiateWatdivTemplate(tmpl, instance_rng));
    }
  }
  std::printf("batch size: %zu queries\n\n", instances.size());

  HashSoPartitioner hash;
  OptimizeOptions options;
  options.timeout_seconds = flags.timeout;
  options.cost_params.num_nodes = flags.nodes;

  const std::vector<std::pair<Algorithm, std::string>> kAlgorithms{
      {Algorithm::kTdCmd, "TD-CMD"}, {Algorithm::kTdAuto, "TD-Auto"}};

  std::string json = "{\n";
  char jbuf[256];
  std::snprintf(jbuf, sizeof(jbuf),
                "  \"workload\": {\"templates\": %d, \"instances\": %d, "
                "\"queries\": %zu},\n  \"hardware_concurrency\": %d,\n"
                "  \"batch\": [\n",
                kTemplates, flags.watdiv_instances, instances.size(),
                ThreadPool::DefaultConcurrency());
  json += jbuf;
  bool first_json_row = true;

  std::printf("--- (a) inter-query batch optimization ---\n");
  bool all_match = true;
  for (const auto& [algorithm, name] : kAlgorithms) {
    PrintRow(name, {"threads", "seconds", "speedup", "costs"});
    PrintRule(10, 4);

    std::vector<double> baseline_costs;
    double baseline_seconds = 0;
    for (int t : thread_counts) {
      // Fresh preparation per pass: no pass benefits from a previous
      // pass's warm cardinality memos.
      auto prepared = PrepareAll(instances, hash);
      std::vector<const PreparedQuery*> queries;
      queries.reserve(prepared.size());
      for (const auto& p : prepared) queries.push_back(p.get());

      PassResult pass;
      pass.threads = t;
      if (t == 1) {
        Stopwatch watch;
        std::vector<OptimizeResult> results;
        results.reserve(queries.size());
        for (const PreparedQuery* q : queries) {
          results.push_back(Optimize(algorithm, q->inputs(), options));
        }
        pass.seconds = watch.ElapsedSeconds();
        baseline_seconds = pass.seconds;
        baseline_costs.reserve(results.size());
        for (const OptimizeResult& r : results) {
          baseline_costs.push_back(r.plan != nullptr ? r.plan->total_cost
                                                     : -1.0);
        }
      } else {
        ParallelOptimizer popt(t);
        Stopwatch watch;
        std::vector<OptimizeResult> results =
            popt.OptimizeBatch(algorithm, queries, options);
        pass.seconds = watch.ElapsedSeconds();
        for (std::size_t i = 0; i < results.size(); ++i) {
          double cost = results[i].plan != nullptr
                            ? results[i].plan->total_cost
                            : -1.0;
          if (cost != baseline_costs[i]) {
            pass.costs_match = false;
            ++pass.mismatches;
          }
        }
      }
      all_match = all_match && pass.costs_match;

      double speedup = pass.seconds > 0 ? baseline_seconds / pass.seconds : 0;
      char sec[32], spd[32];
      std::snprintf(sec, sizeof(sec), "%.3fs", pass.seconds);
      std::snprintf(spd, sizeof(spd), "%.2fx", speedup);
      PrintRow("", {std::to_string(t), sec, spd,
                    pass.costs_match
                        ? "ok"
                        : ("MISMATCH:" + std::to_string(pass.mismatches))});

      std::snprintf(jbuf, sizeof(jbuf),
                    "%s    {\"algorithm\": \"%s\", \"threads\": %d, "
                    "\"seconds\": %.6f, \"speedup\": %.4f, "
                    "\"costs_match\": %s}",
                    first_json_row ? "" : ",\n", name.c_str(), t,
                    pass.seconds, speedup, pass.costs_match ? "true" : "false");
      json += jbuf;
      first_json_row = false;
    }
    std::printf("\n");
  }
  json += "\n  ],\n  \"intra_query\": [\n";

  std::printf("--- (b) intra-query parallel enumeration ---\n");
  struct IntraCase {
    QueryShape shape;
    int num_tps;
  };
  const std::vector<IntraCase> kIntraCases{{QueryShape::kChain, 30},
                                           {QueryShape::kCycle, 20},
                                           {QueryShape::kStar, 12},
                                           {QueryShape::kDense, 12}};
  first_json_row = true;
  for (const IntraCase& c : kIntraCases) {
    Rng rng(flags.seed + c.num_tps);
    GeneratedQuery q = GenerateRandomQuery(c.shape, c.num_tps, rng);
    std::string label =
        std::string(ToString(c.shape)) + "-" + std::to_string(c.num_tps);
    PrintRow(label, {"threads", "seconds", "speedup", "cost"});
    PrintRule(10, 4);

    double baseline_seconds = 0;
    double baseline_cost = -1;
    bool shape_match = true;
    for (int t : thread_counts) {
      // Fresh fixture per run (cold estimator memo).
      NoLocalityFixture fx(q);
      OptimizeOptions intra = options;
      intra.num_threads = t;
      ParallelOptimizer popt(t);
      intra.thread_pool = &popt.pool();
      Stopwatch watch;
      OptimizeResult r = Optimize(Algorithm::kTdCmd, fx.inputs(), intra);
      double seconds = watch.ElapsedSeconds();
      double cost = r.plan != nullptr ? r.plan->total_cost : -1.0;
      if (t == 1) {
        baseline_seconds = seconds;
        baseline_cost = cost;
      } else if (cost != baseline_cost) {
        shape_match = false;
        all_match = false;
      }
      double speedup = seconds > 0 ? baseline_seconds / seconds : 0;
      char sec[32], spd[32];
      std::snprintf(sec, sizeof(sec), "%.3fs", seconds);
      std::snprintf(spd, sizeof(spd), "%.2fx", speedup);
      PrintRow("", {std::to_string(t), sec, spd, CostCell(r)});

      std::snprintf(jbuf, sizeof(jbuf),
                    "%s    {\"query\": \"%s\", \"threads\": %d, "
                    "\"seconds\": %.6f, \"speedup\": %.4f}",
                    first_json_row ? "" : ",\n", label.c_str(), t, seconds,
                    speedup);
      json += jbuf;
      first_json_row = false;
    }
    if (!shape_match) PrintRow("", {"", "", "", "COST MISMATCH"});
    std::printf("\n");
  }
  json += "\n  ],\n";
  json += std::string("  \"costs_match\": ") + (all_match ? "true" : "false") +
          "\n}\n";

  std::printf("determinism: parallel plan costs %s sequential baseline\n",
              all_match ? "identical to" : "DIVERGED from");

  if (!flags.json.empty()) {
    if (FILE* f = std::fopen(flags.json.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("json written to %s\n", flags.json.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
      return 1;
    }
  }
  return all_match ? 0 : 1;
}

}  // namespace
}  // namespace parqo::bench

int main(int argc, char** argv) { return parqo::bench::Main(argc, argv); }
