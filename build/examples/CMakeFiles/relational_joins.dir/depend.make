# Empty dependencies file for relational_joins.
# This may be replaced when dependencies are built.
