file(REMOVE_RECURSE
  "CMakeFiles/relational_joins.dir/relational_joins.cpp.o"
  "CMakeFiles/relational_joins.dir/relational_joins.cpp.o.d"
  "relational_joins"
  "relational_joins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_joins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
