# Empty dependencies file for parqo_cli.
# This may be replaced when dependencies are built.
