file(REMOVE_RECURSE
  "CMakeFiles/parqo_cli.dir/parqo_cli.cc.o"
  "CMakeFiles/parqo_cli.dir/parqo_cli.cc.o.d"
  "parqo_cli"
  "parqo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parqo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
