file(REMOVE_RECURSE
  "CMakeFiles/parqo_exec.dir/binding_table.cc.o"
  "CMakeFiles/parqo_exec.dir/binding_table.cc.o.d"
  "CMakeFiles/parqo_exec.dir/cluster.cc.o"
  "CMakeFiles/parqo_exec.dir/cluster.cc.o.d"
  "CMakeFiles/parqo_exec.dir/executor.cc.o"
  "CMakeFiles/parqo_exec.dir/executor.cc.o.d"
  "CMakeFiles/parqo_exec.dir/node_store.cc.o"
  "CMakeFiles/parqo_exec.dir/node_store.cc.o.d"
  "libparqo_exec.a"
  "libparqo_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parqo_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
