file(REMOVE_RECURSE
  "libparqo_exec.a"
)
