# Empty dependencies file for parqo_exec.
# This may be replaced when dependencies are built.
