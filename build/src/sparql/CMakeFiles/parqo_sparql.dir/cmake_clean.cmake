file(REMOVE_RECURSE
  "CMakeFiles/parqo_sparql.dir/parser.cc.o"
  "CMakeFiles/parqo_sparql.dir/parser.cc.o.d"
  "CMakeFiles/parqo_sparql.dir/query.cc.o"
  "CMakeFiles/parqo_sparql.dir/query.cc.o.d"
  "libparqo_sparql.a"
  "libparqo_sparql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parqo_sparql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
