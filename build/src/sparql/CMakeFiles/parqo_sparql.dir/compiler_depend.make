# Empty compiler generated dependencies file for parqo_sparql.
# This may be replaced when dependencies are built.
