file(REMOVE_RECURSE
  "libparqo_sparql.a"
)
