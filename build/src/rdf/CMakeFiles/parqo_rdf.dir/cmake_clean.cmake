file(REMOVE_RECURSE
  "CMakeFiles/parqo_rdf.dir/dictionary.cc.o"
  "CMakeFiles/parqo_rdf.dir/dictionary.cc.o.d"
  "CMakeFiles/parqo_rdf.dir/graph.cc.o"
  "CMakeFiles/parqo_rdf.dir/graph.cc.o.d"
  "CMakeFiles/parqo_rdf.dir/ntriples.cc.o"
  "CMakeFiles/parqo_rdf.dir/ntriples.cc.o.d"
  "CMakeFiles/parqo_rdf.dir/term.cc.o"
  "CMakeFiles/parqo_rdf.dir/term.cc.o.d"
  "libparqo_rdf.a"
  "libparqo_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parqo_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
