file(REMOVE_RECURSE
  "libparqo_rdf.a"
)
