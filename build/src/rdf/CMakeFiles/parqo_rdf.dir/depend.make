# Empty dependencies file for parqo_rdf.
# This may be replaced when dependencies are built.
