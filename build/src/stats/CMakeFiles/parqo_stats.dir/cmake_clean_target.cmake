file(REMOVE_RECURSE
  "libparqo_stats.a"
)
