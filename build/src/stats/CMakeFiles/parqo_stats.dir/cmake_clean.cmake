file(REMOVE_RECURSE
  "CMakeFiles/parqo_stats.dir/data_stats.cc.o"
  "CMakeFiles/parqo_stats.dir/data_stats.cc.o.d"
  "CMakeFiles/parqo_stats.dir/estimator.cc.o"
  "CMakeFiles/parqo_stats.dir/estimator.cc.o.d"
  "libparqo_stats.a"
  "libparqo_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parqo_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
