# Empty compiler generated dependencies file for parqo_stats.
# This may be replaced when dependencies are built.
