
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/data_stats.cc" "src/stats/CMakeFiles/parqo_stats.dir/data_stats.cc.o" "gcc" "src/stats/CMakeFiles/parqo_stats.dir/data_stats.cc.o.d"
  "/root/repo/src/stats/estimator.cc" "src/stats/CMakeFiles/parqo_stats.dir/estimator.cc.o" "gcc" "src/stats/CMakeFiles/parqo_stats.dir/estimator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parqo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/parqo_query.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/parqo_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/parqo_sparql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
