
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/dp_bushy.cc" "src/optimizer/CMakeFiles/parqo_optimizer.dir/dp_bushy.cc.o" "gcc" "src/optimizer/CMakeFiles/parqo_optimizer.dir/dp_bushy.cc.o.d"
  "/root/repo/src/optimizer/enumeration_stats.cc" "src/optimizer/CMakeFiles/parqo_optimizer.dir/enumeration_stats.cc.o" "gcc" "src/optimizer/CMakeFiles/parqo_optimizer.dir/enumeration_stats.cc.o.d"
  "/root/repo/src/optimizer/grouped_graph.cc" "src/optimizer/CMakeFiles/parqo_optimizer.dir/grouped_graph.cc.o" "gcc" "src/optimizer/CMakeFiles/parqo_optimizer.dir/grouped_graph.cc.o.d"
  "/root/repo/src/optimizer/hgr_td_cmd.cc" "src/optimizer/CMakeFiles/parqo_optimizer.dir/hgr_td_cmd.cc.o" "gcc" "src/optimizer/CMakeFiles/parqo_optimizer.dir/hgr_td_cmd.cc.o.d"
  "/root/repo/src/optimizer/join_graph_reduction.cc" "src/optimizer/CMakeFiles/parqo_optimizer.dir/join_graph_reduction.cc.o" "gcc" "src/optimizer/CMakeFiles/parqo_optimizer.dir/join_graph_reduction.cc.o.d"
  "/root/repo/src/optimizer/msc.cc" "src/optimizer/CMakeFiles/parqo_optimizer.dir/msc.cc.o" "gcc" "src/optimizer/CMakeFiles/parqo_optimizer.dir/msc.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/optimizer/CMakeFiles/parqo_optimizer.dir/optimizer.cc.o" "gcc" "src/optimizer/CMakeFiles/parqo_optimizer.dir/optimizer.cc.o.d"
  "/root/repo/src/optimizer/prepared_query.cc" "src/optimizer/CMakeFiles/parqo_optimizer.dir/prepared_query.cc.o" "gcc" "src/optimizer/CMakeFiles/parqo_optimizer.dir/prepared_query.cc.o.d"
  "/root/repo/src/optimizer/td_auto.cc" "src/optimizer/CMakeFiles/parqo_optimizer.dir/td_auto.cc.o" "gcc" "src/optimizer/CMakeFiles/parqo_optimizer.dir/td_auto.cc.o.d"
  "/root/repo/src/optimizer/td_cmd.cc" "src/optimizer/CMakeFiles/parqo_optimizer.dir/td_cmd.cc.o" "gcc" "src/optimizer/CMakeFiles/parqo_optimizer.dir/td_cmd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parqo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/parqo_query.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/parqo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/parqo_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/parqo_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/parqo_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/parqo_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/parqo_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
