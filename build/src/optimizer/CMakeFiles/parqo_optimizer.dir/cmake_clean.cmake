file(REMOVE_RECURSE
  "CMakeFiles/parqo_optimizer.dir/dp_bushy.cc.o"
  "CMakeFiles/parqo_optimizer.dir/dp_bushy.cc.o.d"
  "CMakeFiles/parqo_optimizer.dir/enumeration_stats.cc.o"
  "CMakeFiles/parqo_optimizer.dir/enumeration_stats.cc.o.d"
  "CMakeFiles/parqo_optimizer.dir/grouped_graph.cc.o"
  "CMakeFiles/parqo_optimizer.dir/grouped_graph.cc.o.d"
  "CMakeFiles/parqo_optimizer.dir/hgr_td_cmd.cc.o"
  "CMakeFiles/parqo_optimizer.dir/hgr_td_cmd.cc.o.d"
  "CMakeFiles/parqo_optimizer.dir/join_graph_reduction.cc.o"
  "CMakeFiles/parqo_optimizer.dir/join_graph_reduction.cc.o.d"
  "CMakeFiles/parqo_optimizer.dir/msc.cc.o"
  "CMakeFiles/parqo_optimizer.dir/msc.cc.o.d"
  "CMakeFiles/parqo_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/parqo_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/parqo_optimizer.dir/prepared_query.cc.o"
  "CMakeFiles/parqo_optimizer.dir/prepared_query.cc.o.d"
  "CMakeFiles/parqo_optimizer.dir/td_auto.cc.o"
  "CMakeFiles/parqo_optimizer.dir/td_auto.cc.o.d"
  "CMakeFiles/parqo_optimizer.dir/td_cmd.cc.o"
  "CMakeFiles/parqo_optimizer.dir/td_cmd.cc.o.d"
  "libparqo_optimizer.a"
  "libparqo_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parqo_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
