file(REMOVE_RECURSE
  "libparqo_optimizer.a"
)
