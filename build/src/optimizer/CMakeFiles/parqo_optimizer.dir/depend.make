# Empty dependencies file for parqo_optimizer.
# This may be replaced when dependencies are built.
