# Empty compiler generated dependencies file for parqo_workload.
# This may be replaced when dependencies are built.
