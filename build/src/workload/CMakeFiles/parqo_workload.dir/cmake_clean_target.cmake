file(REMOVE_RECURSE
  "libparqo_workload.a"
)
