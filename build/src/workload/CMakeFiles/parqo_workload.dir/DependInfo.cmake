
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/benchmark_queries.cc" "src/workload/CMakeFiles/parqo_workload.dir/benchmark_queries.cc.o" "gcc" "src/workload/CMakeFiles/parqo_workload.dir/benchmark_queries.cc.o.d"
  "/root/repo/src/workload/lubm.cc" "src/workload/CMakeFiles/parqo_workload.dir/lubm.cc.o" "gcc" "src/workload/CMakeFiles/parqo_workload.dir/lubm.cc.o.d"
  "/root/repo/src/workload/random_query.cc" "src/workload/CMakeFiles/parqo_workload.dir/random_query.cc.o" "gcc" "src/workload/CMakeFiles/parqo_workload.dir/random_query.cc.o.d"
  "/root/repo/src/workload/uniprot.cc" "src/workload/CMakeFiles/parqo_workload.dir/uniprot.cc.o" "gcc" "src/workload/CMakeFiles/parqo_workload.dir/uniprot.cc.o.d"
  "/root/repo/src/workload/watdiv.cc" "src/workload/CMakeFiles/parqo_workload.dir/watdiv.cc.o" "gcc" "src/workload/CMakeFiles/parqo_workload.dir/watdiv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parqo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/parqo_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/parqo_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/parqo_query.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/parqo_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
