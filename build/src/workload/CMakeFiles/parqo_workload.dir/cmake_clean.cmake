file(REMOVE_RECURSE
  "CMakeFiles/parqo_workload.dir/benchmark_queries.cc.o"
  "CMakeFiles/parqo_workload.dir/benchmark_queries.cc.o.d"
  "CMakeFiles/parqo_workload.dir/lubm.cc.o"
  "CMakeFiles/parqo_workload.dir/lubm.cc.o.d"
  "CMakeFiles/parqo_workload.dir/random_query.cc.o"
  "CMakeFiles/parqo_workload.dir/random_query.cc.o.d"
  "CMakeFiles/parqo_workload.dir/uniprot.cc.o"
  "CMakeFiles/parqo_workload.dir/uniprot.cc.o.d"
  "CMakeFiles/parqo_workload.dir/watdiv.cc.o"
  "CMakeFiles/parqo_workload.dir/watdiv.cc.o.d"
  "libparqo_workload.a"
  "libparqo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parqo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
