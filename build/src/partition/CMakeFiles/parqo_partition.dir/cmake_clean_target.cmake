file(REMOVE_RECURSE
  "libparqo_partition.a"
)
