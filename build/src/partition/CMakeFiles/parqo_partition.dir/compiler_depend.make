# Empty compiler generated dependencies file for parqo_partition.
# This may be replaced when dependencies are built.
