file(REMOVE_RECURSE
  "CMakeFiles/parqo_partition.dir/hash_so.cc.o"
  "CMakeFiles/parqo_partition.dir/hash_so.cc.o.d"
  "CMakeFiles/parqo_partition.dir/hot_query.cc.o"
  "CMakeFiles/parqo_partition.dir/hot_query.cc.o.d"
  "CMakeFiles/parqo_partition.dir/local_query_index.cc.o"
  "CMakeFiles/parqo_partition.dir/local_query_index.cc.o.d"
  "CMakeFiles/parqo_partition.dir/min_edge_cut.cc.o"
  "CMakeFiles/parqo_partition.dir/min_edge_cut.cc.o.d"
  "CMakeFiles/parqo_partition.dir/path_bmc.cc.o"
  "CMakeFiles/parqo_partition.dir/path_bmc.cc.o.d"
  "CMakeFiles/parqo_partition.dir/two_hop.cc.o"
  "CMakeFiles/parqo_partition.dir/two_hop.cc.o.d"
  "libparqo_partition.a"
  "libparqo_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parqo_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
