
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/hash_so.cc" "src/partition/CMakeFiles/parqo_partition.dir/hash_so.cc.o" "gcc" "src/partition/CMakeFiles/parqo_partition.dir/hash_so.cc.o.d"
  "/root/repo/src/partition/hot_query.cc" "src/partition/CMakeFiles/parqo_partition.dir/hot_query.cc.o" "gcc" "src/partition/CMakeFiles/parqo_partition.dir/hot_query.cc.o.d"
  "/root/repo/src/partition/local_query_index.cc" "src/partition/CMakeFiles/parqo_partition.dir/local_query_index.cc.o" "gcc" "src/partition/CMakeFiles/parqo_partition.dir/local_query_index.cc.o.d"
  "/root/repo/src/partition/min_edge_cut.cc" "src/partition/CMakeFiles/parqo_partition.dir/min_edge_cut.cc.o" "gcc" "src/partition/CMakeFiles/parqo_partition.dir/min_edge_cut.cc.o.d"
  "/root/repo/src/partition/path_bmc.cc" "src/partition/CMakeFiles/parqo_partition.dir/path_bmc.cc.o" "gcc" "src/partition/CMakeFiles/parqo_partition.dir/path_bmc.cc.o.d"
  "/root/repo/src/partition/two_hop.cc" "src/partition/CMakeFiles/parqo_partition.dir/two_hop.cc.o" "gcc" "src/partition/CMakeFiles/parqo_partition.dir/two_hop.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parqo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/parqo_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/parqo_query.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/parqo_sparql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
