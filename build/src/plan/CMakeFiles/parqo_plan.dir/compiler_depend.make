# Empty compiler generated dependencies file for parqo_plan.
# This may be replaced when dependencies are built.
