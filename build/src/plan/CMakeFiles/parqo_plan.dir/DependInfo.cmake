
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/export.cc" "src/plan/CMakeFiles/parqo_plan.dir/export.cc.o" "gcc" "src/plan/CMakeFiles/parqo_plan.dir/export.cc.o.d"
  "/root/repo/src/plan/plan.cc" "src/plan/CMakeFiles/parqo_plan.dir/plan.cc.o" "gcc" "src/plan/CMakeFiles/parqo_plan.dir/plan.cc.o.d"
  "/root/repo/src/plan/validate.cc" "src/plan/CMakeFiles/parqo_plan.dir/validate.cc.o" "gcc" "src/plan/CMakeFiles/parqo_plan.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parqo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/parqo_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/parqo_query.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/parqo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/parqo_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/parqo_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/parqo_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
