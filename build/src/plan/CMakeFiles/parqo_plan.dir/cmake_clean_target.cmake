file(REMOVE_RECURSE
  "libparqo_plan.a"
)
