file(REMOVE_RECURSE
  "CMakeFiles/parqo_plan.dir/export.cc.o"
  "CMakeFiles/parqo_plan.dir/export.cc.o.d"
  "CMakeFiles/parqo_plan.dir/plan.cc.o"
  "CMakeFiles/parqo_plan.dir/plan.cc.o.d"
  "CMakeFiles/parqo_plan.dir/validate.cc.o"
  "CMakeFiles/parqo_plan.dir/validate.cc.o.d"
  "libparqo_plan.a"
  "libparqo_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parqo_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
