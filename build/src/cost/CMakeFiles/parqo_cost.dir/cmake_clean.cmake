file(REMOVE_RECURSE
  "CMakeFiles/parqo_cost.dir/calibrate.cc.o"
  "CMakeFiles/parqo_cost.dir/calibrate.cc.o.d"
  "CMakeFiles/parqo_cost.dir/cost_model.cc.o"
  "CMakeFiles/parqo_cost.dir/cost_model.cc.o.d"
  "libparqo_cost.a"
  "libparqo_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parqo_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
