# Empty dependencies file for parqo_cost.
# This may be replaced when dependencies are built.
