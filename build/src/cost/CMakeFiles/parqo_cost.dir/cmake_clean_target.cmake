file(REMOVE_RECURSE
  "libparqo_cost.a"
)
