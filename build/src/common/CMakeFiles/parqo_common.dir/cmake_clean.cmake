file(REMOVE_RECURSE
  "CMakeFiles/parqo_common.dir/strings.cc.o"
  "CMakeFiles/parqo_common.dir/strings.cc.o.d"
  "CMakeFiles/parqo_common.dir/tp_set.cc.o"
  "CMakeFiles/parqo_common.dir/tp_set.cc.o.d"
  "libparqo_common.a"
  "libparqo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parqo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
