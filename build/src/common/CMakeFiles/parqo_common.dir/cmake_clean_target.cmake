file(REMOVE_RECURSE
  "libparqo_common.a"
)
