# Empty dependencies file for parqo_common.
# This may be replaced when dependencies are built.
