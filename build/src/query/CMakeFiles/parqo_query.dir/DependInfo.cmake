
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/join_graph.cc" "src/query/CMakeFiles/parqo_query.dir/join_graph.cc.o" "gcc" "src/query/CMakeFiles/parqo_query.dir/join_graph.cc.o.d"
  "/root/repo/src/query/match.cc" "src/query/CMakeFiles/parqo_query.dir/match.cc.o" "gcc" "src/query/CMakeFiles/parqo_query.dir/match.cc.o.d"
  "/root/repo/src/query/query_graph.cc" "src/query/CMakeFiles/parqo_query.dir/query_graph.cc.o" "gcc" "src/query/CMakeFiles/parqo_query.dir/query_graph.cc.o.d"
  "/root/repo/src/query/shape.cc" "src/query/CMakeFiles/parqo_query.dir/shape.cc.o" "gcc" "src/query/CMakeFiles/parqo_query.dir/shape.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parqo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/parqo_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/parqo_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
