file(REMOVE_RECURSE
  "libparqo_query.a"
)
