# Empty compiler generated dependencies file for parqo_query.
# This may be replaced when dependencies are built.
