file(REMOVE_RECURSE
  "CMakeFiles/parqo_query.dir/join_graph.cc.o"
  "CMakeFiles/parqo_query.dir/join_graph.cc.o.d"
  "CMakeFiles/parqo_query.dir/match.cc.o"
  "CMakeFiles/parqo_query.dir/match.cc.o.d"
  "CMakeFiles/parqo_query.dir/query_graph.cc.o"
  "CMakeFiles/parqo_query.dir/query_graph.cc.o.d"
  "CMakeFiles/parqo_query.dir/shape.cc.o"
  "CMakeFiles/parqo_query.dir/shape.cc.o.d"
  "libparqo_query.a"
  "libparqo_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parqo_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
