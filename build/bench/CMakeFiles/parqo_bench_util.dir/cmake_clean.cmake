file(REMOVE_RECURSE
  "CMakeFiles/parqo_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/parqo_bench_util.dir/bench_util.cc.o.d"
  "libparqo_bench_util.a"
  "libparqo_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parqo_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
