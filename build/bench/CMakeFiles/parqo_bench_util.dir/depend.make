# Empty dependencies file for parqo_bench_util.
# This may be replaced when dependencies are built.
