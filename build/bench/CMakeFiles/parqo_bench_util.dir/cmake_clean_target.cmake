file(REMOVE_RECURSE
  "libparqo_bench_util.a"
)
