
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/calibrate_test.cc" "tests/CMakeFiles/calibrate_test.dir/calibrate_test.cc.o" "gcc" "tests/CMakeFiles/calibrate_test.dir/calibrate_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/parqo_test_util.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/parqo_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/parqo_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/parqo_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/parqo_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/parqo_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/parqo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/parqo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/parqo_query.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/parqo_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/parqo_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/parqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
