# Empty dependencies file for td_cmd_test.
# This may be replaced when dependencies are built.
