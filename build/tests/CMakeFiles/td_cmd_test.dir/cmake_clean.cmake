file(REMOVE_RECURSE
  "CMakeFiles/td_cmd_test.dir/td_cmd_test.cc.o"
  "CMakeFiles/td_cmd_test.dir/td_cmd_test.cc.o.d"
  "td_cmd_test"
  "td_cmd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/td_cmd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
