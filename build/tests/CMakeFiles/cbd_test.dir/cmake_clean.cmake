file(REMOVE_RECURSE
  "CMakeFiles/cbd_test.dir/cbd_test.cc.o"
  "CMakeFiles/cbd_test.dir/cbd_test.cc.o.d"
  "cbd_test"
  "cbd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
