# Empty compiler generated dependencies file for cbd_test.
# This may be replaced when dependencies are built.
