# Empty dependencies file for cmd_test.
# This may be replaced when dependencies are built.
