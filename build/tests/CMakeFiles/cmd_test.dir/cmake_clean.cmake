file(REMOVE_RECURSE
  "CMakeFiles/cmd_test.dir/cmd_test.cc.o"
  "CMakeFiles/cmd_test.dir/cmd_test.cc.o.d"
  "cmd_test"
  "cmd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
