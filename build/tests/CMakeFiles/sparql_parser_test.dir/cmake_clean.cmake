file(REMOVE_RECURSE
  "CMakeFiles/sparql_parser_test.dir/sparql_parser_test.cc.o"
  "CMakeFiles/sparql_parser_test.dir/sparql_parser_test.cc.o.d"
  "sparql_parser_test"
  "sparql_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparql_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
