file(REMOVE_RECURSE
  "CMakeFiles/enumeration_stats_test.dir/enumeration_stats_test.cc.o"
  "CMakeFiles/enumeration_stats_test.dir/enumeration_stats_test.cc.o.d"
  "enumeration_stats_test"
  "enumeration_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enumeration_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
