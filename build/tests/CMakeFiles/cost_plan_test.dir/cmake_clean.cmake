file(REMOVE_RECURSE
  "CMakeFiles/cost_plan_test.dir/cost_plan_test.cc.o"
  "CMakeFiles/cost_plan_test.dir/cost_plan_test.cc.o.d"
  "cost_plan_test"
  "cost_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
