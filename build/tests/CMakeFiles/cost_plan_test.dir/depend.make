# Empty dependencies file for cost_plan_test.
# This may be replaced when dependencies are built.
