# Empty compiler generated dependencies file for parqo_test_util.
# This may be replaced when dependencies are built.
