file(REMOVE_RECURSE
  "CMakeFiles/parqo_test_util.dir/test_util.cc.o"
  "CMakeFiles/parqo_test_util.dir/test_util.cc.o.d"
  "libparqo_test_util.a"
  "libparqo_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parqo_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
