file(REMOVE_RECURSE
  "libparqo_test_util.a"
)
