file(REMOVE_RECURSE
  "CMakeFiles/hgr_test.dir/hgr_test.cc.o"
  "CMakeFiles/hgr_test.dir/hgr_test.cc.o.d"
  "hgr_test"
  "hgr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
