# Empty compiler generated dependencies file for hgr_test.
# This may be replaced when dependencies are built.
