file(REMOVE_RECURSE
  "CMakeFiles/tp_set_test.dir/tp_set_test.cc.o"
  "CMakeFiles/tp_set_test.dir/tp_set_test.cc.o.d"
  "tp_set_test"
  "tp_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
