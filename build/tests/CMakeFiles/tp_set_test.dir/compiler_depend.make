# Empty compiler generated dependencies file for tp_set_test.
# This may be replaced when dependencies are built.
