// libFuzzer harness for the SPARQL BGP parser (src/sparql/parser.cc) and
// the JoinGraph construction that consumes its output.
//
// Properties under fuzz:
//   1. No crash / sanitizer report on arbitrary bytes — parse errors must
//      surface as Status, never as aborts or OOB access.
//   2. Accepted queries with 1..64 patterns (the TpSet capacity contract
//      enforced by JoinGraph) must survive join-graph construction, and
//      the graph's basic algebra must be self-consistent: every pattern
//      renders, every join variable's Ntp is non-empty and within the
//      query.
//
// Build: cmake -DPARQO_FUZZ=ON (see fuzz_ntriples.cc for the toolchain
// split between libFuzzer and the standalone replay driver).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/check.h"
#include "query/join_graph.h"
#include "sparql/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  parqo::Result<parqo::ParsedQuery> parsed = parqo::ParseSparql(text);
  if (!parsed.ok()) return 0;
  if (parsed->patterns.empty() ||
      parsed->patterns.size() > parqo::TpSet::kMaxSize) {
    return 0;  // JoinGraph's documented capacity contract
  }

  parqo::JoinGraph jg(parsed->patterns);
  PARQO_CHECK(jg.num_tps() == static_cast<int>(parsed->patterns.size()));
  PARQO_CHECK(jg.AllTps().Count() == jg.num_tps());
  for (int tp = 0; tp < jg.num_tps(); ++tp) {
    std::string rendered = jg.pattern(tp).ToString();
    PARQO_CHECK(!rendered.empty());
  }
  for (parqo::VarId v = 0; v < jg.num_vars(); ++v) {
    parqo::TpSet ntp = jg.Ntp(v);
    PARQO_CHECK(ntp.IsSubsetOf(jg.AllTps()));
  }
  return 0;
}
