// libFuzzer harness for the compressed permutation index builder
// (src/storage/dataset_index.cc). Input bytes are consumed as 12-byte
// little-endian chunks, one (s, p, o) triple of three uint32s per chunk;
// raw ids are folded into [1, kMaxTermId) so kInvalidTermId (the
// wildcard marker) never appears as data. Properties under fuzz:
//
//   1. No crash / sanitizer report building all four permutations and
//      the aggregated count tables from an arbitrary triple multiset —
//      duplicates, runs of identical keys spanning many leaf pages, and
//      adversarial gap patterns included.
//   2. Round-trip: a full-range ScanRange of every permutation decodes
//      exactly the input multiset in that permutation's sorted key
//      order (delta+varbyte pages lose nothing).
//   3. CountPattern / StatsFor* agree with brute force over the input
//      for every constant mask, on a bounded sample of data triples.
//   4. ByteSize / num_pages sanity.
//
// Build: cmake -DPARQO_FUZZ=ON. Under clang this links libFuzzer;
// under other compilers fuzz/standalone_main.cc replays the seed corpus.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/check.h"
#include "rdf/triple.h"
#include "storage/dataset_index.h"

namespace {

// Bounds build cost per input: 4096 triples x 4 sorts stays well under
// the libFuzzer per-input timeout even with ASan.
constexpr std::size_t kMaxTriples = 4096;

parqo::TermId FoldId(std::uint32_t raw) {
  return static_cast<parqo::TermId>(raw % (parqo::kMaxTermId - 1)) + 1;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using parqo::CompressedKeyIndex;
  using parqo::DatasetIndex;
  using parqo::IndexKey;
  using parqo::kInvalidTermId;
  using parqo::kMaxTermId;
  using parqo::Perm;
  using parqo::PermKey;
  using parqo::TermId;
  using parqo::Triple;

  const std::size_t n = std::min(size / 12, kMaxTriples);
  std::vector<Triple> triples(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t raw[3];
    std::memcpy(raw, data + i * 12, sizeof(raw));
    triples[i] = {FoldId(raw[0]), FoldId(raw[1]), FoldId(raw[2])};
  }

  DatasetIndex index(triples);
  PARQO_CHECK(index.NumTriples() == n);
  if (n == 0) return 0;
  PARQO_CHECK(index.ByteSize() > 0);
  PARQO_CHECK(index.num_pages() >= 4);  // one leaf page per permutation

  // Property 2: every permutation round-trips the input multiset in
  // sorted key order.
  CompressedKeyIndex::Scratch scratch;
  for (Perm perm : {Perm::kSpo, Perm::kPso, Perm::kPos, Perm::kOsp}) {
    std::vector<IndexKey> expected(n);
    for (std::size_t i = 0; i < n; ++i) {
      expected[i] = PermKey(perm, triples[i]);
    }
    std::sort(expected.begin(), expected.end());
    std::vector<IndexKey> got;
    got.reserve(n);
    index.perm(perm).ScanRange(
        {0, 0, 0}, {kMaxTermId, kMaxTermId, kMaxTermId}, scratch,
        [&](std::span<const IndexKey> run) {
          got.insert(got.end(), run.begin(), run.end());
        });
    PARQO_CHECK(got.size() == expected.size());
    for (std::size_t i = 0; i < n; ++i) {
      PARQO_CHECK(got[i].k1 == expected[i].k1 &&
                  got[i].k2 == expected[i].k2 &&
                  got[i].k3 == expected[i].k3);
    }
  }

  // Property 3: aggregated counts match brute force for every constant
  // mask, sampled over the data so runtime stays O(n) per mask.
  auto brute = [&](TermId s, TermId p, TermId o) {
    std::uint64_t c = 0;
    for (const Triple& t : triples) {
      c += (s == kInvalidTermId || t.s == s) &&
           (p == kInvalidTermId || t.p == p) &&
           (o == kInvalidTermId || t.o == o);
    }
    return c;
  };
  const TermId none = kInvalidTermId;
  const std::size_t step = std::max<std::size_t>(std::size_t{1}, n / 16);
  for (std::size_t i = 0; i < n; i += step) {
    const Triple& t = triples[i];
    PARQO_CHECK(index.CountPattern(t.s, t.p, t.o) == brute(t.s, t.p, t.o));
    PARQO_CHECK(index.CountPattern(t.s, t.p, none) == brute(t.s, t.p, none));
    PARQO_CHECK(index.CountPattern(none, t.p, t.o) == brute(none, t.p, t.o));
    PARQO_CHECK(index.CountPattern(t.s, none, t.o) == brute(t.s, none, t.o));
    PARQO_CHECK(index.CountPattern(t.s, none, none) ==
                brute(t.s, none, none));
    PARQO_CHECK(index.CountPattern(none, t.p, none) ==
                brute(none, t.p, none));
    PARQO_CHECK(index.CountPattern(none, none, t.o) ==
                brute(none, none, t.o));
    PARQO_CHECK(index.StatsForS(t.s).count == brute(t.s, none, none));
    PARQO_CHECK(index.StatsForP(t.p).count == brute(none, t.p, none));
    PARQO_CHECK(index.StatsForO(t.o).count == brute(none, none, t.o));
  }
  PARQO_CHECK(index.CountPattern(none, none, none) == n);

  // A key folded differently from every data id must count zero
  // everywhere (the aggregated tables return zeros, not garbage).
  TermId absent = 1;
  for (const Triple& t : triples) {
    absent = std::max({absent, t.s, t.p, t.o});
  }
  if (absent < kMaxTermId - 1) {
    ++absent;
    PARQO_CHECK(index.CountPattern(absent, none, none) == 0);
    PARQO_CHECK(index.StatsForS(absent).count == 0);
    PARQO_CHECK(index.StatsForP(absent).count == 0);
    PARQO_CHECK(index.StatsForO(absent).count == 0);
  }
  return 0;
}
