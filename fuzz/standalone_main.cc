// Replay driver for the fuzz harnesses when libFuzzer is unavailable
// (any non-clang toolchain). Feeds each file argument — typically the
// seed corpus — through LLVMFuzzerTestOneInput once and exits non-zero
// only on a read failure; harness property violations abort via
// PARQO_CHECK exactly as under libFuzzer.
//
// Usage: fuzz_ntriples corpus/ntriples/*  (same for fuzz_sparql)

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    ++replayed;
  }
  std::printf("replayed %d input(s)\n", replayed);
  return 0;
}
