// libFuzzer harness for the N-Triples parser (src/rdf/ntriples.cc).
//
// Two properties under fuzz:
//   1. No crash / sanitizer report on arbitrary bytes — the parser must
//      reject garbage with a Status, never an abort or OOB read.
//   2. Round-trip stability on accepted inputs: serializing the parsed
//      graph and re-parsing it must succeed and preserve the triple
//      count (the full equality check lives in tests/roundtrip_test).
//
// Build: cmake -DPARQO_FUZZ=ON. Under clang this links libFuzzer
// (-fsanitize=fuzzer,address); under other compilers fuzz/standalone_main.cc
// provides a corpus-replay main so the harness still builds and smokes.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/check.h"
#include "rdf/graph.h"
#include "rdf/ntriples.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  parqo::Result<parqo::RdfGraph> parsed = parqo::ParseNTriplesString(text);
  if (!parsed.ok()) return 0;

  std::string serialized = parqo::WriteNTriples(*parsed);
  parqo::Result<parqo::RdfGraph> reparsed =
      parqo::ParseNTriplesString(serialized);
  PARQO_CHECK(reparsed.ok());
  PARQO_CHECK(reparsed->triples().size() == parsed->triples().size());
  return 0;
}
