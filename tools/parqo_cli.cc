// parqo_cli — optimize and run SPARQL BGPs against an N-Triples file on a
// simulated cluster from the command line.
//
//   parqo_cli --data=FILE.nt [--query=FILE.rq | reads stdin]
//             [--partitioner=hash|2f|path|mincut] [--nodes=N]
//             [--algorithm=tdauto|tdcmd|tdcmdp|hgr|msc|dpbushy|binary]
//             [--timeout=S] [--explain] [--dot] [--json] [--no-exec]
//             [--max-rows=N]
//
// Examples:
//   parqo_cli --data=uni.nt --query=q.rq --partitioner=path --explain
//   echo 'SELECT * WHERE { ?s ?p ?o }' | parqo_cli --data=uni.nt

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/strings.h"
#include "exec/cluster.h"
#include "exec/executor.h"
#include "optimizer/prepared_query.h"
#include "partition/hash_so.h"
#include "partition/min_edge_cut.h"
#include "partition/path_bmc.h"
#include "partition/two_hop.h"
#include "plan/export.h"
#include "plan/plan.h"
#include "rdf/ntriples.h"
#include "sparql/parser.h"

namespace {

struct CliOptions {
  std::string data_path;
  std::string query_path;
  std::string partitioner = "hash";
  std::string algorithm = "tdauto";
  int nodes = 10;
  double timeout = 600;
  bool explain = false;
  bool dot = false;
  bool json = false;
  bool no_exec = false;
  bool parallel = false;
  std::size_t max_rows = 50;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --data=FILE.nt [--query=FILE.rq] [--partitioner=hash|2f|"
      "path|mincut]\n"
      "          [--algorithm=tdauto|tdcmd|tdcmdp|hgr|msc|dpbushy|binary]\n"
      "          [--nodes=N] [--timeout=S] [--explain] [--dot] [--json]\n"
      "          [--no-exec] [--max-rows=N]\n"
      "The query is read from stdin when --query is absent.\n",
      argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value = [&](std::string_view name) -> const char* {
      std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) != 0) return nullptr;
      return argv[i] + prefix.size();
    };
    const char* v = nullptr;
    if ((v = value("--data")) != nullptr) {
      opts->data_path = v;
    } else if ((v = value("--query")) != nullptr) {
      opts->query_path = v;
    } else if ((v = value("--partitioner")) != nullptr) {
      opts->partitioner = v;
    } else if ((v = value("--algorithm")) != nullptr) {
      opts->algorithm = v;
    } else if ((v = value("--nodes")) != nullptr) {
      opts->nodes = std::atoi(v);
    } else if ((v = value("--timeout")) != nullptr) {
      opts->timeout = std::atof(v);
    } else if ((v = value("--max-rows")) != nullptr) {
      opts->max_rows = std::strtoull(v, nullptr, 10);
    } else if (arg == "--explain") {
      opts->explain = true;
    } else if (arg == "--dot") {
      opts->dot = true;
    } else if (arg == "--json") {
      opts->json = true;
    } else if (arg == "--no-exec") {
      opts->no_exec = true;
    } else if (arg == "--parallel") {
      opts->parallel = true;
    } else {
      return false;
    }
  }
  return !opts->data_path.empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parqo;

  CliOptions opts;
  if (!ParseArgs(argc, argv, &opts)) return Usage(argv[0]);

  std::unique_ptr<Partitioner> partitioner;
  if (opts.partitioner == "hash") {
    partitioner = std::make_unique<HashSoPartitioner>();
  } else if (opts.partitioner == "2f") {
    partitioner = std::make_unique<TwoHopForwardPartitioner>();
  } else if (opts.partitioner == "path") {
    partitioner = std::make_unique<PathBmcPartitioner>();
  } else if (opts.partitioner == "mincut") {
    partitioner = std::make_unique<MinEdgeCutPartitioner>();
  } else {
    return Usage(argv[0]);
  }

  Algorithm algorithm;
  if (opts.algorithm == "tdauto") {
    algorithm = Algorithm::kTdAuto;
  } else if (opts.algorithm == "tdcmd") {
    algorithm = Algorithm::kTdCmd;
  } else if (opts.algorithm == "tdcmdp") {
    algorithm = Algorithm::kTdCmdp;
  } else if (opts.algorithm == "hgr") {
    algorithm = Algorithm::kHgrTdCmd;
  } else if (opts.algorithm == "msc") {
    algorithm = Algorithm::kMsc;
  } else if (opts.algorithm == "dpbushy") {
    algorithm = Algorithm::kDpBushy;
  } else if (opts.algorithm == "binary") {
    algorithm = Algorithm::kBinaryDp;
  } else {
    return Usage(argv[0]);
  }

  // Load data.
  Result<RdfGraph> graph = ParseNTriplesFile(opts.data_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "loaded %s triples from %s\n",
               WithThousandsSep(graph->NumTriples()).c_str(),
               opts.data_path.c_str());

  // Load query.
  std::string query_text;
  if (!opts.query_path.empty()) {
    FILE* f = std::fopen(opts.query_path.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open %s\n",
                   opts.query_path.c_str());
      return 1;
    }
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      query_text.append(buf, got);
    }
    std::fclose(f);
  } else {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    query_text = ss.str();
  }
  Result<ParsedQuery> query = ParseSparql(query_text);
  if (!query.ok()) {
    std::fprintf(stderr, "error: %s\n", query.status().ToString().c_str());
    return 1;
  }

  // Optimize.
  PreparedQuery prepared(query->patterns, *partitioner,
                         StatsFromData(*graph));
  OptimizeOptions options;
  options.timeout_seconds = opts.timeout;
  options.cost_params.num_nodes = opts.nodes;
  OptimizeResult best = Optimize(algorithm, prepared.inputs(), options);
  if (best.plan == nullptr) {
    std::fprintf(stderr, "optimization timed out after %.1fs\n",
                 best.seconds);
    return 1;
  }
  std::fprintf(stderr,
               "optimized with %s in %.4fs (%llu operators enumerated, "
               "estimated cost %s)\n",
               ToString(best.algorithm_used).c_str(), best.seconds,
               static_cast<unsigned long long>(best.enumerated),
               FormatCostE(best.plan->total_cost).c_str());

  if (opts.explain) {
    std::printf("%s",
                PlanToString(*best.plan, prepared.join_graph()).c_str());
  }
  if (opts.dot) {
    std::printf("%s", PlanToDot(*best.plan, prepared.join_graph()).c_str());
  }
  if (opts.json) {
    std::printf("%s\n",
                PlanToJson(*best.plan, prepared.join_graph()).c_str());
  }
  if (opts.no_exec) return 0;

  // Execute.
  Cluster cluster(*graph,
                  partitioner->PartitionData(*graph, opts.nodes));
  Executor executor(cluster, prepared.join_graph(), options.cost_params,
                    opts.parallel);
  ExecMetrics metrics;
  Result<BindingTable> rows = ExecuteAndProject(
      executor, *best.plan, *query, prepared.join_graph(), &metrics);
  if (!rows.ok()) {
    std::fprintf(stderr, "error: %s\n", rows.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "executed in %.3fs wall: %zu rows, %llu scanned, %llu "
               "shipped, measured cost %.1f\n",
               metrics.wall_seconds, rows->NumRows(),
               static_cast<unsigned long long>(metrics.rows_scanned),
               static_cast<unsigned long long>(metrics.rows_transferred),
               metrics.measured_cost);

  // Header + rows (tab-separated).
  for (int c = 0; c < rows->num_cols(); ++c) {
    std::printf("%s?%s", c > 0 ? "\t" : "",
                prepared.join_graph().var_name(rows->schema()[c]).c_str());
  }
  std::printf("\n");
  std::size_t shown = 0;
  for (std::size_t r = 0; r < rows->NumRows(); ++r) {
    if (opts.max_rows != 0 && shown++ >= opts.max_rows) {
      std::printf("... (%zu more rows)\n", rows->NumRows() - shown + 1);
      break;
    }
    for (int c = 0; c < rows->num_cols(); ++c) {
      std::printf("%s%s", c > 0 ? "\t" : "",
                  graph->dict().Decode(rows->At(r, c)).ToNTriples().c_str());
    }
    std::printf("\n");
  }
  return 0;
}
