#!/usr/bin/env python3
"""Self-test for tools/parqo_lint.py.

One positive (rule fires) and one negative (clean, or allow()-suppressed)
snippet per rule, plus end-to-end assertions over the deliberately-broken
thread-safety fixtures in tests/tsa_fixtures/. Runs as the lint_selftest
ctest target; tools/parqo_lint.py itself is exercised in-process so a
regression in rule scoping (a rule that silently stops matching) fails
here rather than shipping a linter that approves everything.

Usage: tools/parqo_lint_test.py   (from the repository root or anywhere)
"""

import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import parqo_lint  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURE_DIR = os.path.join(REPO_ROOT, "tests", "tsa_fixtures")


class LintHarness(unittest.TestCase):
    """Writes snippets under a temp tree so path-scoped rules see the
    relative paths they key on ("src/...", hot-path file names)."""

    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="parqo_lint_test_")
        self.prev_cwd = os.getcwd()
        os.chdir(self.tmp)

    def tearDown(self):
        os.chdir(self.prev_cwd)
        shutil.rmtree(self.tmp, ignore_errors=True)

    def findings(self, source, rel="src/snippet.h"):
        path = os.path.join(self.tmp, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(source)
        linter = parqo_lint.Linter()
        linter.lint_file(rel)
        return linter.findings

    def rules(self, source, rel="src/snippet.h"):
        return {rule for _, _, rule, _ in self.findings(source, rel)}

    def assert_fires(self, rule, source, rel="src/snippet.h"):
        self.assertIn(rule, self.rules(source, rel),
                      "expected %s to fire" % rule)

    def assert_clean(self, rule, source, rel="src/snippet.h"):
        self.assertNotIn(rule, self.rules(source, rel),
                         "expected %s to stay quiet" % rule)


class ExistingRules(LintHarness):
    def test_unordered_iteration(self):
        bad = ("std::unordered_map<int, int> m;\n"
               "void F() { for (const auto& kv : m) Use(kv); }\n")
        self.assert_fires("unordered-iteration", bad)
        ok = ("std::unordered_map<int, int> m;\n"
              "// parqo-lint: allow(unordered-iteration) order-independent sum\n"
              "void F() { for (const auto& kv : m) Use(kv); }\n")
        self.assert_clean("unordered-iteration", ok)

    def test_naked_new(self):
        self.assert_fires("naked-new", "int* p = new int;\n")
        self.assert_clean("naked-new", "auto p = std::make_unique<int>();\n")

    def test_allow_without_reason(self):
        bad = "int* p = new int;  // parqo-lint: allow(naked-new)\n"
        self.assert_fires("allow-without-reason", bad)
        ok = "int* p = new int;  // parqo-lint: allow(naked-new) arena slab\n"
        self.assert_clean("allow-without-reason", ok)

    def test_std_function_hot_path(self):
        src = "std::function<void()> hook;\n"
        self.assert_fires("std-function-hot-path", src,
                          rel="src/optimizer/td_cmd_core.h")
        self.assert_clean("std-function-hot-path", src,
                          rel="src/server/server.h")

    def test_shared_plan_hot_path(self):
        src = "auto n = std::make_shared<PlanNode>();\n"
        self.assert_fires("shared-plan-hot-path", src,
                          rel="src/optimizer/dp_bushy.cc")
        self.assert_clean("shared-plan-hot-path", src,
                          rel="src/server/server.cc")

    def test_exec_row_hot_path(self):
        src = "void F(Table& t, Row r) { t.AppendRow(r); }\n"
        self.assert_fires("exec-row-hot-path", src,
                          rel="src/exec/join_kernel.cc")
        self.assert_clean("exec-row-hot-path", src,
                          rel="src/exec/reference_join.cc")

    def test_raw_triple_storage(self):
        member = ("class NodeStore {\n"
                  "  std::vector<Triple> pso_;\n"
                  "};\n")
        self.assert_fires("raw-triple-storage", member,
                          rel="src/exec/node_store.h")
        iteration = ("std::uint64_t F() {\n"
                     "  std::uint64_t n = 0;\n"
                     "  for (const Triple& t : pso_) n += t.s;\n"
                     "  return n;\n"
                     "}\n")
        self.assert_fires("raw-triple-storage", iteration,
                          rel="src/exec/executor.cc")
        # The storage layer itself owns the permutation members.
        self.assert_clean("raw-triple-storage", member,
                          rel="src/storage/dataset_index.h")
        # Locals/parameters (no trailing underscore) while building a
        # store are fine, as is an allow()ed deliberate buffer.
        local = "void Build(std::vector<Triple> triples);\n"
        self.assert_clean("raw-triple-storage", local,
                          rel="src/exec/node_store.h")
        allowed = ("// parqo-lint: allow(raw-triple-storage) test staging\n"
                   "std::vector<Triple> staged_;\n")
        self.assert_clean("raw-triple-storage", allowed,
                          rel="src/exec/node_store.h")

    def test_metric_write(self):
        self.assert_fires(
            "metric-write", "static double g_probe_counter = 0;\n",
            rel="src/exec/executor.cc")
        self.assert_clean(
            "metric-write", "static double g_probe_counter = 0;\n",
            rel="src/common/metrics.cc")

    def test_naked_sleep(self):
        self.assert_fires(
            "naked-sleep",
            "void F() { std::this_thread::sleep_for(d); }\n")
        self.assert_clean(
            "naked-sleep", "void F() { SleepSeconds(0.1); }\n")

    def test_retry_budget(self):
        bad = "void F() { while (!ok) SleepSeconds(0.05); }\n"
        self.assert_fires("retry-budget", bad)
        conforming = (
            "void F() { SleepSeconds(retry.NextBackoffSeconds()); }\n")
        self.assert_clean("retry-budget", conforming)
        # The argument may spill onto a continuation line.
        multiline = ("void F() {\n"
                     "  SleepSeconds(\n"
                     "      retry.NextBackoffSeconds());\n"
                     "}\n")
        self.assert_clean("retry-budget", multiline)
        not_a_retry = (
            "// parqo-lint: allow(retry-budget) startup settle, not a retry\n"
            "void F() { SleepSeconds(0.05); }\n")
        self.assert_clean("retry-budget", not_a_retry)
        # fault.cc owns SleepSeconds and the injection delays themselves.
        self.assert_clean("retry-budget",
                          "void F() { SleepSeconds(0.05); }\n",
                          rel="src/common/fault.cc")

    def test_unordered_in_signature(self):
        src = "std::unordered_map<int, int> m;\n"
        self.assert_fires("unordered-in-signature", src,
                          rel="src/server/signature.cc")
        self.assert_clean("unordered-in-signature", src,
                          rel="src/server/plan_cache.cc")


class LockDisciplineRules(LintHarness):
    def test_registry_parsed(self):
        # The rank registry comes from the real thread_annotations.h; a
        # parse regression would silently disable two rules.
        self.assertIn("kPool", parqo_lint.LOCK_RANKS)
        self.assertIn("kMetrics", parqo_lint.LOCK_RANKS)
        self.assertLess(parqo_lint.LOCK_RANKS["kCacheShard"],
                        parqo_lint.LOCK_RANKS["kMetrics"])

    def test_raw_std_mutex(self):
        self.assert_fires("raw-std-mutex", "std::mutex mu;\n")
        self.assert_fires("raw-std-mutex",
                          "std::lock_guard<std::mutex> l(mu);\n")
        self.assert_clean("raw-std-mutex",
                          "Mutex mu{LockRank::kLeaf};\n")
        # Out of scope: tests and tools may use raw primitives.
        self.assert_clean("raw-std-mutex", "std::mutex mu;\n",
                          rel="tests/some_test.cc")

    def test_mutex_rank(self):
        self.assert_fires("mutex-rank", "struct S { Mutex mu; };\n")
        self.assert_fires(
            "mutex-rank", "Mutex mu{LockRank::kNotInRegistry};\n")
        self.assert_clean("mutex-rank", "Mutex mu{LockRank::kPool};\n")
        # Ordering attributes between declarator and initializer.
        self.assert_clean(
            "mutex-rank",
            "struct S {\n"
            "  Mutex a{LockRank::kPool};\n"
            "  Mutex b PARQO_ACQUIRED_AFTER(a) = Mutex(LockRank::kFault);\n"
            "};\n")
        # References are aliases, not declarations.
        self.assert_clean("mutex-rank", "void F(Mutex& mu);\n")

    def test_guarded_field(self):
        bad = ("struct S {\n"
               "  Mutex mu{LockRank::kLeaf};\n"
               "  int value = 0;\n"
               "};\n")
        self.assert_fires("guarded-field", bad)
        annotated = ("struct S {\n"
                     "  Mutex mu{LockRank::kLeaf};\n"
                     "  int value PARQO_GUARDED_BY(mu) = 0;\n"
                     "};\n")
        self.assert_clean("guarded-field", annotated)
        reasoned = ("struct S {\n"
                    "  Mutex mu{LockRank::kLeaf};\n"
                    "  // parqo-lint: allow(guarded-field) set before sharing\n"
                    "  int value = 0;\n"
                    "};\n")
        self.assert_clean("guarded-field", reasoned)
        exempt = ("struct S {\n"
                  "  Mutex mu{LockRank::kLeaf};\n"
                  "  std::atomic<int> hits{0};\n"
                  "  std::condition_variable cv;\n"
                  "  const int limit = 4;\n"
                  "  int Size() const;\n"
                  "};\n")
        self.assert_clean("guarded-field", exempt)
        # A class with no mutex is not audited at all.
        self.assert_clean("guarded-field", "struct S { int value = 0; };\n")

    def test_guarded_field_scopes_nested_structs(self):
        # The mutex lives in the nested shard; the outer class's members
        # are not the shard's responsibility.
        src = ("class Cache {\n"
               "  struct Shard {\n"
               "    Mutex mu{LockRank::kCacheShard};\n"
               "    int entries PARQO_GUARDED_BY(mu) = 0;\n"
               "  };\n"
               "  std::vector<Shard> shards_;\n"
               "};\n")
        self.assert_clean("guarded-field", src)

    def test_lock_rank_order(self):
        bad = ("struct S {\n"
               "  Mutex hi{LockRank::kMetrics};\n"
               "  Mutex lo{LockRank::kCacheShard};\n"
               "};\n"
               "void F(S& s) {\n"
               "  MutexLock a(s.hi);\n"
               "  MutexLock b(s.lo);\n"
               "}\n")
        self.assert_fires("lock-rank-order", bad)
        same_rank = ("struct S {\n"
                     "  Mutex a{LockRank::kPool};\n"
                     "  Mutex b{LockRank::kPool};\n"
                     "};\n"
                     "void F(S& s) {\n"
                     "  MutexLock outer(s.a);\n"
                     "  MutexLock inner(s.b);\n"
                     "}\n")
        self.assert_fires("lock-rank-order", same_rank)
        climbing = ("struct S {\n"
                    "  Mutex lo{LockRank::kCacheShard};\n"
                    "  Mutex hi{LockRank::kMetrics};\n"
                    "};\n"
                    "void F(S& s) {\n"
                    "  MutexLock a(s.lo);\n"
                    "  MutexLock b(s.hi);\n"
                    "}\n")
        self.assert_clean("lock-rank-order", climbing)
        sequential = ("struct S {\n"
                      "  Mutex hi{LockRank::kMetrics};\n"
                      "  Mutex lo{LockRank::kCacheShard};\n"
                      "};\n"
                      "void F(S& s) {\n"
                      "  { MutexLock a(s.hi); }\n"
                      "  { MutexLock b(s.lo); }\n"
                      "}\n")
        self.assert_clean("lock-rank-order", sequential)

    def test_lock_rank_order_uses_sibling_header(self):
        header = ("class C {\n"
                  "  Mutex hi_{LockRank::kMetrics};\n"
                  "  Mutex lo_{LockRank::kCacheShard};\n"
                  "};\n")
        source = ("void C::F() {\n"
                  "  MutexLock a(hi_);\n"
                  "  MutexLock b(lo_);\n"
                  "}\n")
        path = os.path.join(self.tmp, "src", "c.h")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(header)
        self.assert_fires("lock-rank-order", source, rel="src/c.cc")

    def test_naked_lock(self):
        self.assert_fires("naked-lock", "void F() { mu_.Lock(); }\n")
        self.assert_fires("naked-lock", "void F() { mu_.unlock(); }\n")
        self.assert_clean("naked-lock", "void F() { MutexLock l(mu_); }\n")
        # Named locked-helper calls are not acquisitions.
        self.assert_clean("naked-lock",
                          "void F() { EvictExcessLocked(shard); }\n")

    def test_tsa_escape(self):
        self.assert_fires(
            "tsa-escape",
            "void F() PARQO_NO_THREAD_SAFETY_ANALYSIS;\n")
        self.assert_clean(
            "tsa-escape",
            "// parqo-lint: allow(tsa-escape) benign init-order race\n"
            "void F() PARQO_NO_THREAD_SAFETY_ANALYSIS;\n")


class TsaFixtures(unittest.TestCase):
    """The deliberately-broken fixture files must keep failing the linter
    and the clean one must keep passing — end to end, real paths."""

    @staticmethod
    def lint(name):
        linter = parqo_lint.Linter()
        prev = os.getcwd()
        os.chdir(REPO_ROOT)
        try:
            linter.lint_file(os.path.join("tests", "tsa_fixtures", name))
        finally:
            os.chdir(prev)
        return {rule for _, _, rule, _ in linter.findings}

    def test_ok_fixture_is_clean(self):
        self.assertEqual(self.lint("ok_discipline.cc"), set())

    def test_bad_unguarded_field_fixture_fails(self):
        self.assertIn("guarded-field", self.lint("bad_unguarded_field.cc"))

    def test_bad_misordered_lock_fixture_fails(self):
        self.assertIn("lock-rank-order",
                      self.lint("bad_misordered_lock.cc"))

    def test_fixture_dir_excluded_from_tree_walks(self):
        # A tree run over tests/ must skip the fixtures: they are negative
        # examples, not findings against the repository.
        import subprocess
        out = subprocess.run(
            [sys.executable, os.path.join("tools", "parqo_lint.py"),
             "tests"],
            cwd=REPO_ROOT, capture_output=True, text=True)
        self.assertEqual(out.returncode, 0, out.stdout + out.stderr)
        self.assertNotIn("tsa_fixtures", out.stdout)


if __name__ == "__main__":
    unittest.main()
