#!/usr/bin/env python3
"""Project-specific lint for the parqo codebase.

Four rule families, each guarding an invariant the compiler cannot see:

  unordered-iteration   Iterating a std::unordered_map/unordered_set feeds
                        hash-order into whatever consumes the loop. In an
                        optimizer whose contract is "parallel plan == serial
                        plan, bit for bit" (the determinism tests in
                        tests/parallel_test.cc), any such loop that touches a
                        cost comparison or plan reduction is a latent
                        nondeterminism bug. Every iteration must either be
                        rewritten over a sorted/indexed container or carry an
                        allow() comment arguing order-independence.

  naked-new             Manual new/delete outside an owning abstraction.
                        The codebase is shared_ptr/unique_ptr/value-only.

  std-function-hot-path std::function in the enumerator hot path. The
                        recursion in td_cmd_core.h is templated over its
                        hook functors precisely so calls inline; a
                        std::function reintroduces type erasure and an
                        indirect call per memo probe.

  shared-plan-hot-path  Plan nodes constructed through the shared_ptr path
                        (std::make_shared, PlanBuilder::Scan/Join/
                        LocalJoinAll) inside the enumeration hot-path
                        files. Enumeration churns millions of candidates
                        and discards all but one; each must be a bump
                        allocation from the per-worker Arena
                        (ScanIn/JoinIn/LocalJoinAllIn, DESIGN.md §12), not
                        a heap node with refcounts. Cold paths — the
                        one-time materialization of a winner, a
                        single-group fallback — carry an allow().

  metric-write          Metric state mutated outside the registry's atomic
                        API (src/common/metrics.h). Hot paths share metric
                        cache lines across worker threads; a non-atomic
                        write is a data race TSan only catches when the
                        interleaving cooperates.

  exec-row-hot-path     Row-at-a-time constructs inside the vectorized
                        per-node execution hot path (DESIGN.md §13):
                        std::unordered_multimap join state, or per-row
                        AppendRow calls. The batch engine's contract is
                        one hash probe and one gather per morsel, not a
                        node allocation or a row copy per tuple;
                        reference_join.cc is the sanctioned row-at-a-time
                        oracle and is exempt. Cold paths carry an allow().

  unordered-in-signature
                        Any std::unordered_* container in the BGP
                        canonicalizer (src/server/signature.*). The plan
                        cache keys on the canonical signature, so the
                        signature must be byte-identical across processes,
                        platforms, and libstdc++ versions; hash containers
                        expose seed- and implementation-dependent order to
                        every loop that touches them. Unlike
                        unordered-iteration this rule bans the declaration
                        itself — signature code uses std::map/std::set/
                        std::sort only, and there is no allow() escape.

  naked-sleep           Sleeps (sleep/usleep/nanosleep/sleep_for/
                        sleep_until) and predicate-less condition-variable
                        waits outside src/common/fault.*. All simulated
                        waiting is owned by parqo::SleepSeconds so fault
                        injection and retry backoff stay deterministic and
                        bounded; a stray sleep elsewhere is either a hidden
                        timing dependence (flaky test) or an unbounded hang
                        the chaos harness cannot detect. Waits must carry a
                        predicate (cv.wait(lock, pred)) or a timeout.

Suppression: append "// parqo-lint: allow(<rule>) <reason>" to the offending
line, or put it on the line directly above. The reason is mandatory —
an allow() without one is itself a finding.

Usage: tools/parqo_lint.py [root ...]   (default: src tools bench fuzz)
Exit status 1 if any finding is reported.
"""

import os
import re
import sys

DEFAULT_ROOTS = ["src", "tools", "bench", "fuzz"]
CXX_EXTENSIONS = (".h", ".cc")

# Files whose call graph sits inside the per-division enumeration loop
# (Algorithms 1-3) or the DP inner loop. std::function is banned here.
HOT_PATH_FILES = {
    "src/optimizer/td_cmd_core.h",
    "src/optimizer/cbd_enumerator.h",
    "src/optimizer/cmd_enumerator.h",
    "src/optimizer/td_cmd.cc",
    "src/optimizer/hgr_td_cmd.cc",
    "src/optimizer/dp_bushy.cc",
    "src/optimizer/msc.cc",
    "src/optimizer/join_graph_reduction.cc",
}

# Files whose enumeration loops must build PlanCandidates in an Arena,
# never shared PlanNodes (DESIGN.md §12).
ARENA_HOT_PATH_FILES = {
    "src/optimizer/td_cmd_core.h",
    "src/optimizer/cbd_enumerator.h",
    "src/optimizer/cmd_enumerator.h",
    "src/optimizer/td_cmd.cc",
    "src/optimizer/hgr_td_cmd.cc",
    "src/optimizer/dp_bushy.cc",
}

# Files on the per-node execution hot path (DESIGN.md §13). Joins here go
# through the open-addressed kernels in join_kernel.cc and rows move in
# columnar gathers; a std::unordered_multimap or a per-row AppendRow call
# reintroduces the row-at-a-time engine this path replaced. The oracle
# (reference_join.cc) and the cold-path API definition (binding_table.h)
# are deliberately not listed.
EXEC_HOT_PATH_FILES = {
    "src/exec/executor.cc",
    "src/exec/node_store.cc",
    "src/exec/binding_table.cc",
    "src/exec/join_kernel.h",
    "src/exec/join_kernel.cc",
}

ALLOW_RE = re.compile(r"//\s*parqo-lint:\s*allow\(([a-z-]+)\)\s*(\S.*)?$")

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{()]*>\s+(\w+)"
)
RANGE_FOR_HEAD_RE = re.compile(r"for\s*\(")
NEW_RE = re.compile(r"(?<![\w.])new\b(?!\s*\()")  # "new T", not "new (place)"
PLAIN_NEW_RE = re.compile(r"(?<![\w.])new\b")
DELETE_RE = re.compile(r"(?<![\w.])delete(\s*\[\s*\])?\s+\w")
STD_FUNCTION_RE = re.compile(r"std::function\s*<")
# make_shared of anything, or a call to one of PlanBuilder's shared_ptr
# constructors. The arena twins (ScanIn/JoinIn/LocalJoinAllIn) do not
# match: a following identifier character breaks the pattern.
SHARED_PLAN_RE = re.compile(
    r"std::make_shared\s*<|[.>]\s*(?:Scan|Join|LocalJoinAll)\s*\("
)
METRIC_INTERNAL_RE = re.compile(r"\bmetrics_internal::")
METRIC_RAW_WRITE_RE = re.compile(
    r"\bMetric(?:Counter|Gauge|Histogram)\b[^;]*\bvalue_\b"
)
# A mutable namespace-scope accumulator named like a metric, declared
# outside the registry: these are exactly the "I'll just bump a global"
# writes the rule exists to keep atomic and inside src/common.
METRIC_GLOBAL_RE = re.compile(
    r"^\s*(?:static\s+)?(?:double|float|int|long|unsigned|std::u?int\d+_t|"
    r"u?int\d+_t|std::size_t|size_t)\s+g?_?\w*(?:metric|counter)\w*\s*[={;]"
)
UNORDERED_MULTIMAP_RE = re.compile(r"std::unordered_multimap\s*<")
APPEND_ROW_CALL_RE = re.compile(r"[.>]\s*AppendRow\s*\(")
SLEEP_RE = re.compile(
    r"\b(?:sleep_for|sleep_until|usleep|nanosleep|sleep)\s*\("
)
CV_WAIT_RE = re.compile(r"[.>]\s*wait\s*\(")
# The one sanctioned wait implementation (see SleepSeconds).
SLEEP_EXEMPT_FILES = {"src/common/fault.h", "src/common/fault.cc"}
# Canonical-signature computation (plan-cache keys) must be byte-stable
# across processes and standard-library versions: hash containers are
# banned outright here, declaration included, with no allow() escape.
SIGNATURE_FILES = {"src/server/signature.h", "src/server/signature.cc"}
UNORDERED_ANY_RE = re.compile(r"std::unordered_\w+")


def range_for_sequence(code):
    """Returns the sequence expression of a range-for on this line, or None.

    Walks from "for (" to the matching close paren so loop bodies on the
    same line are not captured, then splits on the range-for ':' at paren
    depth zero.
    """
    m = RANGE_FOR_HEAD_RE.search(code)
    if not m:
        return None
    depth = 1
    colon = None
    for i in range(m.end(), len(code)):
        c = code[i]
        if c in "([":
            depth += 1
        elif c in ")]":
            depth -= 1
            if depth == 0:
                if colon is None:
                    return None  # classic for(;;)
                return code[colon + 1:i].strip()
        elif c == ":" and depth == 1:
            # "::" is scope resolution, not the range-for separator.
            if code[i - 1:i] == ":" or code[i + 1:i + 2] == ":":
                continue
            colon = i
    return None


def final_identifier(expr):
    """The last member in an access chain: "a.b_->map" -> "map",
    "g.Items(x)" -> "Items". That is the entity actually iterated."""
    expr = expr.strip()
    call = re.match(r"(.*?)\s*\((?:[^()]|\([^()]*\))*\)$", expr)
    if call:
        expr = call.group(1)
    ids = re.findall(r"\w+", expr)
    return ids[-1] if ids else None


def strip_strings_and_comments(line, in_block_comment):
    """Blanks out string/char literals and comments, preserving length.

    Returns (code, in_block_comment, comment_text) where comment_text is
    the // trailer (used to find allow() pragmas).
    """
    out = []
    comment = ""
    i = 0
    n = len(line)
    state = "block" if in_block_comment else "code"
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                comment = line[i:]
                break
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(" ")
            i += 1
        elif state in ("string", "char"):
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if (state == "string" and c == '"') or (
                state == "char" and c == "'"
            ):
                state = "code"
            out.append(" ")
            i += 1
    return "".join(out), state == "block", comment


class Linter:
    def __init__(self):
        self.findings = []

    def report(self, path, lineno, rule, message):
        self.findings.append((path, lineno, rule, message))

    def lint_file(self, path):
        rel = path.replace(os.sep, "/")
        with open(path, encoding="utf-8") as f:
            raw_lines = f.read().splitlines()

        code_lines = []
        allows = {}  # line number -> set of allowed rules
        in_block = False
        for idx, raw in enumerate(raw_lines, start=1):
            code, in_block, comment = strip_strings_and_comments(
                raw, in_block
            )
            code_lines.append(code)
            m = ALLOW_RE.search(comment)
            if m:
                rule, reason = m.group(1), m.group(2)
                if not reason:
                    self.report(
                        rel, idx, "allow-without-reason",
                        "allow(%s) needs a justification after the ')'"
                        % rule,
                    )
                # A pragma on its own line covers the next line; an
                # end-of-line pragma covers its own line.
                target = idx + 1 if not code.strip() else idx
                allows.setdefault(target, set()).add(rule)

        def allowed(lineno, rule):
            return rule in allows.get(lineno, set())

        self.check_unordered_iteration(rel, code_lines, allowed)
        self.check_unordered_in_signature(rel, code_lines)
        self.check_naked_new(rel, code_lines, allowed)
        self.check_std_function(rel, code_lines, allowed)
        self.check_shared_plan(rel, code_lines, allowed)
        self.check_exec_row(rel, code_lines, allowed)
        self.check_metric_writes(rel, code_lines, allowed)
        self.check_naked_sleep(rel, code_lines, allowed)

    def check_unordered_iteration(self, rel, code_lines, allowed):
        rule = "unordered-iteration"
        names = set()
        for code in code_lines:
            for m in UNORDERED_DECL_RE.finditer(code):
                names.add(m.group(1))
        if not names:
            return
        for lineno, code in enumerate(code_lines, start=1):
            seq = range_for_sequence(code)
            if seq is None:
                continue
            target = final_identifier(seq)
            if target not in names:
                continue
            if allowed(lineno, rule):
                continue
            self.report(
                rel, lineno, rule,
                "range-for over unordered container '%s': hash order must "
                "not feed cost comparisons or plan reductions; sort first "
                "or justify with allow(%s)" % (seq, rule),
            )

    def check_unordered_in_signature(self, rel, code_lines):
        # Deliberately no allowed() hook: a hash container anywhere in the
        # canonicalizer risks seed-dependent signatures, which silently
        # splits (or, worse, merges) plan-cache keys.
        rule = "unordered-in-signature"
        if rel not in SIGNATURE_FILES:
            return
        for lineno, code in enumerate(code_lines, start=1):
            m = UNORDERED_ANY_RE.search(code)
            if not m:
                continue
            self.report(
                rel, lineno, rule,
                "%s in signature computation: canonical signatures must be "
                "byte-stable across processes; use std::map/std::set/"
                "std::sort (no allow() escape for this rule)" % m.group(0),
            )

    def check_naked_new(self, rel, code_lines, allowed):
        rule = "naked-new"
        for lineno, code in enumerate(code_lines, start=1):
            hit = None
            if PLAIN_NEW_RE.search(code):
                hit = "new"
            elif DELETE_RE.search(code) and "= delete" not in code:
                hit = "delete"
            if hit is None or allowed(lineno, rule):
                continue
            self.report(
                rel, lineno, rule,
                "naked '%s': use std::make_shared/std::make_unique or a "
                "value type" % hit,
            )

    def check_std_function(self, rel, code_lines, allowed):
        rule = "std-function-hot-path"
        if rel not in HOT_PATH_FILES:
            return
        for lineno, code in enumerate(code_lines, start=1):
            if not STD_FUNCTION_RE.search(code):
                continue
            if allowed(lineno, rule):
                continue
            self.report(
                rel, lineno, rule,
                "std::function in the enumeration hot path: use a template "
                "parameter so the per-division calls inline",
            )

    def check_shared_plan(self, rel, code_lines, allowed):
        rule = "shared-plan-hot-path"
        if rel not in ARENA_HOT_PATH_FILES:
            return
        for lineno, code in enumerate(code_lines, start=1):
            if not SHARED_PLAN_RE.search(code):
                continue
            if allowed(lineno, rule):
                continue
            self.report(
                rel, lineno, rule,
                "shared_ptr plan construction in the enumeration hot path: "
                "build candidates in the worker's Arena "
                "(ScanIn/JoinIn/LocalJoinAllIn) and materialize only the "
                "winner, or justify the cold path with allow(%s)" % rule,
            )

    def check_exec_row(self, rel, code_lines, allowed):
        rule = "exec-row-hot-path"
        if rel not in EXEC_HOT_PATH_FILES:
            return
        for lineno, code in enumerate(code_lines, start=1):
            msg = None
            if UNORDERED_MULTIMAP_RE.search(code):
                msg = ("std::unordered_multimap join state in the batch "
                       "execution hot path: use the open-addressed "
                       "SingleKeyJoinTable/MultiKeyJoinTable kernels "
                       "(src/exec/join_kernel.h)")
            elif APPEND_ROW_CALL_RE.search(code):
                msg = ("per-row AppendRow in the batch execution hot path: "
                       "batch with AppendFrom/AppendGather (one gather per "
                       "column per morsel), or justify the cold path with "
                       "allow(%s)" % rule)
            if msg is None or allowed(lineno, rule):
                continue
            self.report(rel, lineno, rule, msg)

    def check_metric_writes(self, rel, code_lines, allowed):
        rule = "metric-write"
        if rel.startswith("src/common/"):
            return
        for lineno, code in enumerate(code_lines, start=1):
            msg = None
            if METRIC_INTERNAL_RE.search(code):
                msg = ("metrics_internal is private to src/common; go "
                       "through MetricsEnabled()/the registry")
            elif METRIC_RAW_WRITE_RE.search(code):
                msg = ("direct access to a metric's value_; use "
                       "Add()/Set()/Observe()")
            elif METRIC_GLOBAL_RE.match(code):
                msg = ("namespace-scope metric/counter accumulator outside "
                       "src/common; register a MetricCounter instead (hot "
                       "paths share these across threads)")
            if msg is None or allowed(lineno, rule):
                continue
            self.report(rel, lineno, rule, msg)

    def check_naked_sleep(self, rel, code_lines, allowed):
        rule = "naked-sleep"
        if rel in SLEEP_EXEMPT_FILES:
            return
        for lineno, code in enumerate(code_lines, start=1):
            msg = None
            if SLEEP_RE.search(code):
                msg = ("naked sleep: route all waiting through "
                       "parqo::SleepSeconds (src/common/fault.cc) so fault "
                       "injection and retry backoff stay deterministic")
            else:
                m = CV_WAIT_RE.search(code)
                if m and self._wait_is_unbounded(code, m.end() - 1):
                    msg = ("predicate-less condition-variable wait: pass a "
                           "predicate (cv.wait(lock, pred)) or use a "
                           "bounded wait_for/wait_until")
            if msg is None or allowed(lineno, rule):
                continue
            self.report(rel, lineno, rule, msg)

    @staticmethod
    def _wait_is_unbounded(code, open_paren):
        """True when the wait(...) starting at `open_paren` has exactly one
        argument (no predicate) on this line. Multi-line argument lists end
        in a comma or an unclosed paren and are conservatively skipped."""
        depth = 0
        commas = 0
        for i in range(open_paren, len(code)):
            c = code[i]
            if c in "([":
                depth += 1
            elif c in ")]":
                depth -= 1
                if depth == 0:
                    return commas == 0
            elif c == "," and depth == 1:
                commas += 1
        return False


def main(argv):
    roots = argv[1:] or DEFAULT_ROOTS
    linter = Linter()
    files = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        for dirpath, _, filenames in os.walk(root):
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    for path in sorted(files):
        linter.lint_file(path)

    for path, lineno, rule, message in linter.findings:
        print("%s:%d: [%s] %s" % (path, lineno, rule, message))
    if linter.findings:
        print("parqo_lint: %d finding(s)" % len(linter.findings))
        return 1
    print("parqo_lint: clean (%d files)" % len(files))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
