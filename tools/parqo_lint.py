#!/usr/bin/env python3
"""Project-specific lint for the parqo codebase.

Four rule families, each guarding an invariant the compiler cannot see:

  unordered-iteration   Iterating a std::unordered_map/unordered_set feeds
                        hash-order into whatever consumes the loop. In an
                        optimizer whose contract is "parallel plan == serial
                        plan, bit for bit" (the determinism tests in
                        tests/parallel_test.cc), any such loop that touches a
                        cost comparison or plan reduction is a latent
                        nondeterminism bug. Every iteration must either be
                        rewritten over a sorted/indexed container or carry an
                        allow() comment arguing order-independence.

  naked-new             Manual new/delete outside an owning abstraction.
                        The codebase is shared_ptr/unique_ptr/value-only.

  std-function-hot-path std::function in the enumerator hot path. The
                        recursion in td_cmd_core.h is templated over its
                        hook functors precisely so calls inline; a
                        std::function reintroduces type erasure and an
                        indirect call per memo probe.

  shared-plan-hot-path  Plan nodes constructed through the shared_ptr path
                        (std::make_shared, PlanBuilder::Scan/Join/
                        LocalJoinAll) inside the enumeration hot-path
                        files. Enumeration churns millions of candidates
                        and discards all but one; each must be a bump
                        allocation from the per-worker Arena
                        (ScanIn/JoinIn/LocalJoinAllIn, DESIGN.md §12), not
                        a heap node with refcounts. Cold paths — the
                        one-time materialization of a winner, a
                        single-group fallback — carry an allow().

  metric-write          Metric state mutated outside the registry's atomic
                        API (src/common/metrics.h). Hot paths share metric
                        cache lines across worker threads; a non-atomic
                        write is a data race TSan only catches when the
                        interleaving cooperates.

  exec-row-hot-path     Row-at-a-time constructs inside the vectorized
                        per-node execution hot path (DESIGN.md §13):
                        std::unordered_multimap join state, or per-row
                        AppendRow calls. The batch engine's contract is
                        one hash probe and one gather per morsel, not a
                        node allocation or a row copy per tuple;
                        reference_join.cc is the sanctioned row-at-a-time
                        oracle and is exempt. Cold paths carry an allow().

  raw-triple-storage    Raw permutation storage in the execution layer
                        (src/exec/): a std::vector<Triple> data member —
                        the pre-storage dual-sorted-vector layout — or any
                        use of legacy pso_/pos_/spo_/osp_ vector members.
                        Triples live in storage/DatasetIndex (compressed
                        clustered permutation indexes, DESIGN.md §17);
                        scans and counts go through ForEachMatch/
                        CountPattern so every pattern is answered from the
                        right permutation's contiguous range instead of a
                        hand-rolled binary search over a raw vector. A
                        deliberate raw buffer (test staging, build-time
                        chunking locals are already exempt by the member
                        naming convention) carries an allow().

  unordered-in-signature
                        Any std::unordered_* container in the BGP
                        canonicalizer (src/server/signature.*). The plan
                        cache keys on the canonical signature, so the
                        signature must be byte-identical across processes,
                        platforms, and libstdc++ versions; hash containers
                        expose seed- and implementation-dependent order to
                        every loop that touches them. Unlike
                        unordered-iteration this rule bans the declaration
                        itself — signature code uses std::map/std::set/
                        std::sort only, and there is no allow() escape.

  naked-sleep           Sleeps (sleep/usleep/nanosleep/sleep_for/
                        sleep_until) and predicate-less condition-variable
                        waits outside src/common/fault.*. All simulated
                        waiting is owned by parqo::SleepSeconds so fault
                        injection and retry backoff stay deterministic and
                        bounded; a stray sleep elsewhere is either a hidden
                        timing dependence (flaky test) or an unbounded hang
                        the chaos harness cannot detect. Waits must carry a
                        predicate (cv.wait(lock, pred)) or a timeout.

  retry-budget          A SleepSeconds() call whose delay does not come from
                        RetryPolicy::NextBackoffSeconds(). A hand-rolled
                        retry loop (fixed or ad-hoc backoff) retries for
                        free: it never draws a token from the cluster-wide
                        RetryBudget (src/common/fault.h), so a recovery
                        storm of such loops can amplify an outage
                        unbounded. Every retry delay must be computed by
                        the RetryPolicy wired to the budget; a sleep that
                        genuinely is not a retry (startup settle, test
                        pacing) carries an allow() saying so.

  Lock-discipline rules (src/ and tsa_fixtures only; the annotation header
  src/common/thread_annotations.h that implements the discipline is exempt):

  raw-std-mutex         std::mutex / std::shared_mutex / std::lock_guard /
                        std::unique_lock / std::scoped_lock / std::shared_lock
                        outside the annotation header. All locking goes
                        through parqo::Mutex + MutexLock so Clang Thread
                        Safety Analysis sees every acquisition and the
                        runtime rank checker audits ordering.

  mutex-rank            A parqo::Mutex/SharedMutex declared without a
                        LockRank::k* position in the static hierarchy, or
                        with a rank name the registry (the LockRank enum in
                        thread_annotations.h) does not define. Unranked
                        locks are invisible to deadlock-ordering review.

  guarded-field         A mutable data member of a mutex-owning class that
                        carries neither PARQO_GUARDED_BY nor a written
                        reason why it needs no lock (immutable after
                        construction, per-element atomics, ...). Exempt
                        member types: std::atomic, std::condition_variable,
                        std::once_flag, Mutex/SharedMutex, const/constexpr.

  lock-rank-order       A lexically nested MutexLock acquisition whose rank
                        is not strictly greater than the lock already held.
                        Same-rank nesting is also a finding (self-deadlock
                        under a different interleaving). This is the static
                        mirror of the runtime checker in
                        thread_annotations.h.

  naked-lock            A bare .lock()/.unlock()/.Lock()/.Unlock() call:
                        critical sections are RAII-only (MutexLock /
                        SharedMutexLock), so no early return or exception
                        can leak a held lock past its scope.

  tsa-escape            PARQO_NO_THREAD_SAFETY_ANALYSIS without an
                        allow(tsa-escape) justification. Every analysis
                        escape must say why the analysis is wrong there.

Suppression: append "// parqo-lint: allow(<rule>) <reason>" to the offending
line, or put it on the line directly above. The reason is mandatory —
an allow() without one is itself a finding.

Usage: tools/parqo_lint.py [root ...]   (default: src tools bench fuzz)
Exit status 1 if any finding is reported.
"""

import os
import re
import sys

DEFAULT_ROOTS = ["src", "tools", "bench", "fuzz"]
CXX_EXTENSIONS = (".h", ".cc")

# Files whose call graph sits inside the per-division enumeration loop
# (Algorithms 1-3) or the DP inner loop. std::function is banned here.
HOT_PATH_FILES = {
    "src/optimizer/td_cmd_core.h",
    "src/optimizer/cbd_enumerator.h",
    "src/optimizer/cmd_enumerator.h",
    "src/optimizer/td_cmd.cc",
    "src/optimizer/hgr_td_cmd.cc",
    "src/optimizer/dp_bushy.cc",
    "src/optimizer/msc.cc",
    "src/optimizer/join_graph_reduction.cc",
}

# Files whose enumeration loops must build PlanCandidates in an Arena,
# never shared PlanNodes (DESIGN.md §12).
ARENA_HOT_PATH_FILES = {
    "src/optimizer/td_cmd_core.h",
    "src/optimizer/cbd_enumerator.h",
    "src/optimizer/cmd_enumerator.h",
    "src/optimizer/td_cmd.cc",
    "src/optimizer/hgr_td_cmd.cc",
    "src/optimizer/dp_bushy.cc",
}

# Files on the per-node execution hot path (DESIGN.md §13). Joins here go
# through the open-addressed kernels in join_kernel.cc and rows move in
# columnar gathers; a std::unordered_multimap or a per-row AppendRow call
# reintroduces the row-at-a-time engine this path replaced. The oracle
# (reference_join.cc) and the cold-path API definition (binding_table.h)
# are deliberately not listed.
EXEC_HOT_PATH_FILES = {
    "src/exec/executor.cc",
    "src/exec/node_store.cc",
    "src/exec/binding_table.cc",
    "src/exec/join_kernel.h",
    "src/exec/join_kernel.cc",
}

ALLOW_RE = re.compile(r"//\s*parqo-lint:\s*allow\(([a-z-]+)\)\s*(\S.*)?$")

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{()]*>\s+(\w+)"
)
RANGE_FOR_HEAD_RE = re.compile(r"for\s*\(")
NEW_RE = re.compile(r"(?<![\w.])new\b(?!\s*\()")  # "new T", not "new (place)"
PLAIN_NEW_RE = re.compile(r"(?<![\w.])new\b")
DELETE_RE = re.compile(r"(?<![\w.])delete(\s*\[\s*\])?\s+\w")
STD_FUNCTION_RE = re.compile(r"std::function\s*<")
# make_shared of anything, or a call to one of PlanBuilder's shared_ptr
# constructors. The arena twins (ScanIn/JoinIn/LocalJoinAllIn) do not
# match: a following identifier character breaks the pattern.
SHARED_PLAN_RE = re.compile(
    r"std::make_shared\s*<|[.>]\s*(?:Scan|Join|LocalJoinAll)\s*\("
)
METRIC_INTERNAL_RE = re.compile(r"\bmetrics_internal::")
METRIC_RAW_WRITE_RE = re.compile(
    r"\bMetric(?:Counter|Gauge|Histogram)\b[^;]*\bvalue_\b"
)
# A mutable namespace-scope accumulator named like a metric, declared
# outside the registry: these are exactly the "I'll just bump a global"
# writes the rule exists to keep atomic and inside src/common.
METRIC_GLOBAL_RE = re.compile(
    r"^\s*(?:static\s+)?(?:double|float|int|long|unsigned|std::u?int\d+_t|"
    r"u?int\d+_t|std::size_t|size_t)\s+g?_?\w*(?:metric|counter)\w*\s*[={;]"
)
UNORDERED_MULTIMAP_RE = re.compile(r"std::unordered_multimap\s*<")
# A std::vector<Triple> *member* (trailing-underscore naming) — locals and
# parameters used while building a store do not match — and the legacy
# permutation-vector member names themselves.
TRIPLE_VECTOR_MEMBER_RE = re.compile(
    r"std::vector\s*<\s*Triple\s*>\s+\w+_\s*[;={]"
)
PERM_VECTOR_IDENT_RE = re.compile(r"\b(?:pso|pos|spo|osp)_\b")
APPEND_ROW_CALL_RE = re.compile(r"[.>]\s*AppendRow\s*\(")
SLEEP_RE = re.compile(
    r"\b(?:sleep_for|sleep_until|usleep|nanosleep|sleep)\s*\("
)
CV_WAIT_RE = re.compile(r"[.>]\s*wait\s*\(")
SLEEP_SECONDS_CALL_RE = re.compile(r"\bSleepSeconds\s*\(")
# The backoff computation that draws from the cluster-wide RetryBudget.
RETRY_BACKOFF_RE = re.compile(r"\bNextBackoffSeconds\s*\(")
# The one sanctioned wait implementation (see SleepSeconds).
SLEEP_EXEMPT_FILES = {"src/common/fault.h", "src/common/fault.cc"}
# Canonical-signature computation (plan-cache keys) must be byte-stable
# across processes and standard-library versions: hash containers are
# banned outright here, declaration included, with no allow() escape.
SIGNATURE_FILES = {"src/server/signature.h", "src/server/signature.cc"}
UNORDERED_ANY_RE = re.compile(r"std::unordered_\w+")

# --- Lock discipline (see the rule descriptions at the top) -----------------

# The header that implements the discipline: it wraps std::mutex, defines
# the LockRank registry, and is the one sanctioned home of raw locking.
THREAD_ANNOTATIONS_FILE = "src/common/thread_annotations.h"

RAW_MUTEX_RE = re.compile(
    r"std::(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)
# A by-value Mutex/SharedMutex declaration ("Mutex mu{LockRank::kPool};").
# References and pointers ("Mutex& mu") do not match: they alias a lock
# ranked at its declaration site. Ordering attributes may sit between the
# declarator and the initializer ("Mutex b PARQO_ACQUIRED_AFTER(a) = ...").
MUTEX_DECL_RE = re.compile(
    r"\b(?:mutable\s+)?(?:Shared)?Mutex\s+\w+\s*"
    r"(?:PARQO_\w+\s*\([^)]*\)\s*)*[;={(]"
)
MUTEX_RANK_REF_RE = re.compile(
    r"\b(?:Shared)?Mutex\s+(\w+)\s*(?:PARQO_\w+\s*\([^)]*\)\s*)*"
    r"(?:[{(]|=\s*(?:Shared)?Mutex\s*[({])\s*LockRank::(k\w+)\s*[)}]"
)
ACQUIRE_RE = re.compile(r"\b(?:Shared)?MutexLock\s+\w+\s*[({]([^;{}]*)[)}]")
NAKED_LOCK_RE = re.compile(
    r"[.>]\s*(?:try_lock|lock|unlock|lock_shared|unlock_shared|"
    r"TryLock|Lock|Unlock|LockShared|UnlockShared)\s*\(\s*\)"
)
TSA_ESCAPE_RE = re.compile(r"\bPARQO_NO_THREAD_SAFETY_ANALYSIS\b")
CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+(?:PARQO_\w+\s*\([^)]*\)\s*)?\w+[^;=]*$"
)
# Member types that need no GUARDED_BY: lock-free by construction, the
# lock itself, or CV/once_flag (which synchronize through their own API).
GUARDED_EXEMPT_RE = re.compile(
    r"^(?:mutable\s+)?(?:std::atomic\b|std::condition_variable\b|"
    r"std::once_flag\b|(?:Shared)?Mutex\b|const\b|constexpr\b|static\b)"
)
ACCESS_SPEC_RE = re.compile(r"^\s*(?:public|private|protected)\s*:\s*")


def _load_lock_ranks():
    """LockRank name -> value, parsed from the registry enum. Empty when
    the header is missing (pre-hierarchy checkouts lint without ranks)."""
    here = os.path.dirname(os.path.abspath(__file__))
    path = os.path.join(os.path.dirname(here), "src", "common",
                        "thread_annotations.h")
    ranks = {}
    if not os.path.isfile(path):
        return ranks
    in_enum = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if "enum class LockRank" in line:
                in_enum = True
                continue
            if in_enum:
                if "}" in line:
                    break
                m = re.match(r"\s*(k\w+)\s*=\s*(\d+)", line)
                if m:
                    ranks[m.group(1)] = int(m.group(2))
    return ranks


LOCK_RANKS = _load_lock_ranks()


def _lock_rules_apply(rel):
    """Lock-discipline rules run on src/ (and the deliberately-broken
    fixture snippets) but not on tests/bench/tools, and never on the
    annotation header that implements the machinery being enforced."""
    if rel == THREAD_ANNOTATIONS_FILE or rel.endswith("thread_annotations.h"):
        return False
    return rel.startswith("src/") or "tsa_fixtures" in rel


def _strip_template_args(s):
    """Blanks matched <...> spans so parens inside template arguments
    ("std::function<void()>") do not read as a function declaration."""
    out = []
    depth = 0
    for c in s:
        if c == "<":
            depth += 1
            out.append(" ")
        elif c == ">" and depth > 0:
            depth -= 1
            out.append(" ")
        else:
            out.append(c if depth == 0 else " ")
    return "".join(out)


def range_for_sequence(code):
    """Returns the sequence expression of a range-for on this line, or None.

    Walks from "for (" to the matching close paren so loop bodies on the
    same line are not captured, then splits on the range-for ':' at paren
    depth zero.
    """
    m = RANGE_FOR_HEAD_RE.search(code)
    if not m:
        return None
    depth = 1
    colon = None
    for i in range(m.end(), len(code)):
        c = code[i]
        if c in "([":
            depth += 1
        elif c in ")]":
            depth -= 1
            if depth == 0:
                if colon is None:
                    return None  # classic for(;;)
                return code[colon + 1:i].strip()
        elif c == ":" and depth == 1:
            # "::" is scope resolution, not the range-for separator.
            if code[i - 1:i] == ":" or code[i + 1:i + 2] == ":":
                continue
            colon = i
    return None


def final_identifier(expr):
    """The last member in an access chain: "a.b_->map" -> "map",
    "g.Items(x)" -> "Items". That is the entity actually iterated."""
    expr = expr.strip()
    call = re.match(r"(.*?)\s*\((?:[^()]|\([^()]*\))*\)$", expr)
    if call:
        expr = call.group(1)
    ids = re.findall(r"\w+", expr)
    return ids[-1] if ids else None


def strip_strings_and_comments(line, in_block_comment):
    """Blanks out string/char literals and comments, preserving length.

    Returns (code, in_block_comment, comment_text) where comment_text is
    the // trailer (used to find allow() pragmas).
    """
    out = []
    comment = ""
    i = 0
    n = len(line)
    state = "block" if in_block_comment else "code"
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                comment = line[i:]
                break
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(" ")
            i += 1
        elif state in ("string", "char"):
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if (state == "string" and c == '"') or (
                state == "char" and c == "'"
            ):
                state = "code"
            out.append(" ")
            i += 1
    return "".join(out), state == "block", comment


class Linter:
    def __init__(self):
        self.findings = []

    def report(self, path, lineno, rule, message):
        self.findings.append((path, lineno, rule, message))

    def lint_file(self, path):
        rel = path.replace(os.sep, "/")
        with open(path, encoding="utf-8") as f:
            raw_lines = f.read().splitlines()

        code_lines = []
        allows = {}  # line number -> set of allowed rules
        in_block = False
        for idx, raw in enumerate(raw_lines, start=1):
            code, in_block, comment = strip_strings_and_comments(
                raw, in_block
            )
            code_lines.append(code)
            m = ALLOW_RE.search(comment)
            if m:
                rule, reason = m.group(1), m.group(2)
                if not reason:
                    self.report(
                        rel, idx, "allow-without-reason",
                        "allow(%s) needs a justification after the ')'"
                        % rule,
                    )
                # A pragma on its own line covers the next line; an
                # end-of-line pragma covers its own line.
                target = idx + 1 if not code.strip() else idx
                allows.setdefault(target, set()).add(rule)

        def allowed(lineno, rule):
            return rule in allows.get(lineno, set())

        self.check_unordered_iteration(rel, code_lines, allowed)
        self.check_unordered_in_signature(rel, code_lines)
        self.check_naked_new(rel, code_lines, allowed)
        self.check_std_function(rel, code_lines, allowed)
        self.check_shared_plan(rel, code_lines, allowed)
        self.check_exec_row(rel, code_lines, allowed)
        self.check_raw_triple_storage(rel, code_lines, allowed)
        self.check_metric_writes(rel, code_lines, allowed)
        self.check_naked_sleep(rel, code_lines, allowed)
        self.check_retry_budget(rel, code_lines, allowed)
        self.check_lock_discipline(rel, code_lines, allowed)
        self.check_guarded_fields(rel, code_lines, allowed)
        self.check_lock_rank_order(rel, path, code_lines, allowed)

    def check_unordered_iteration(self, rel, code_lines, allowed):
        rule = "unordered-iteration"
        names = set()
        for code in code_lines:
            for m in UNORDERED_DECL_RE.finditer(code):
                names.add(m.group(1))
        if not names:
            return
        for lineno, code in enumerate(code_lines, start=1):
            seq = range_for_sequence(code)
            if seq is None:
                continue
            target = final_identifier(seq)
            if target not in names:
                continue
            if allowed(lineno, rule):
                continue
            self.report(
                rel, lineno, rule,
                "range-for over unordered container '%s': hash order must "
                "not feed cost comparisons or plan reductions; sort first "
                "or justify with allow(%s)" % (seq, rule),
            )

    def check_unordered_in_signature(self, rel, code_lines):
        # Deliberately no allowed() hook: a hash container anywhere in the
        # canonicalizer risks seed-dependent signatures, which silently
        # splits (or, worse, merges) plan-cache keys.
        rule = "unordered-in-signature"
        if rel not in SIGNATURE_FILES:
            return
        for lineno, code in enumerate(code_lines, start=1):
            m = UNORDERED_ANY_RE.search(code)
            if not m:
                continue
            self.report(
                rel, lineno, rule,
                "%s in signature computation: canonical signatures must be "
                "byte-stable across processes; use std::map/std::set/"
                "std::sort (no allow() escape for this rule)" % m.group(0),
            )

    def check_naked_new(self, rel, code_lines, allowed):
        rule = "naked-new"
        for lineno, code in enumerate(code_lines, start=1):
            hit = None
            if PLAIN_NEW_RE.search(code):
                hit = "new"
            elif DELETE_RE.search(code) and "= delete" not in code:
                hit = "delete"
            if hit is None or allowed(lineno, rule):
                continue
            self.report(
                rel, lineno, rule,
                "naked '%s': use std::make_shared/std::make_unique or a "
                "value type" % hit,
            )

    def check_std_function(self, rel, code_lines, allowed):
        rule = "std-function-hot-path"
        if rel not in HOT_PATH_FILES:
            return
        for lineno, code in enumerate(code_lines, start=1):
            if not STD_FUNCTION_RE.search(code):
                continue
            if allowed(lineno, rule):
                continue
            self.report(
                rel, lineno, rule,
                "std::function in the enumeration hot path: use a template "
                "parameter so the per-division calls inline",
            )

    def check_shared_plan(self, rel, code_lines, allowed):
        rule = "shared-plan-hot-path"
        if rel not in ARENA_HOT_PATH_FILES:
            return
        for lineno, code in enumerate(code_lines, start=1):
            if not SHARED_PLAN_RE.search(code):
                continue
            if allowed(lineno, rule):
                continue
            self.report(
                rel, lineno, rule,
                "shared_ptr plan construction in the enumeration hot path: "
                "build candidates in the worker's Arena "
                "(ScanIn/JoinIn/LocalJoinAllIn) and materialize only the "
                "winner, or justify the cold path with allow(%s)" % rule,
            )

    def check_exec_row(self, rel, code_lines, allowed):
        rule = "exec-row-hot-path"
        if rel not in EXEC_HOT_PATH_FILES:
            return
        for lineno, code in enumerate(code_lines, start=1):
            msg = None
            if UNORDERED_MULTIMAP_RE.search(code):
                msg = ("std::unordered_multimap join state in the batch "
                       "execution hot path: use the open-addressed "
                       "SingleKeyJoinTable/MultiKeyJoinTable kernels "
                       "(src/exec/join_kernel.h)")
            elif APPEND_ROW_CALL_RE.search(code):
                msg = ("per-row AppendRow in the batch execution hot path: "
                       "batch with AppendFrom/AppendGather (one gather per "
                       "column per morsel), or justify the cold path with "
                       "allow(%s)" % rule)
            if msg is None or allowed(lineno, rule):
                continue
            self.report(rel, lineno, rule, msg)

    def check_raw_triple_storage(self, rel, code_lines, allowed):
        rule = "raw-triple-storage"
        if not rel.startswith("src/exec/"):
            return
        for lineno, code in enumerate(code_lines, start=1):
            msg = None
            if TRIPLE_VECTOR_MEMBER_RE.search(code):
                msg = ("std::vector<Triple> member in the execution layer: "
                       "store triples in a storage/DatasetIndex "
                       "(compressed permutation indexes, "
                       "src/storage/dataset_index.h) instead of raw sorted "
                       "vectors, or justify a deliberate buffer with "
                       "allow(%s)" % rule)
            elif PERM_VECTOR_IDENT_RE.search(code):
                msg = ("raw permutation-vector identifier in the execution "
                       "layer: scans and counts go through "
                       "DatasetIndex::ForEachMatch/CountPattern, not "
                       "hand-rolled pso_/pos_ iteration")
            if msg is None or allowed(lineno, rule):
                continue
            self.report(rel, lineno, rule, msg)

    def check_metric_writes(self, rel, code_lines, allowed):
        rule = "metric-write"
        if rel.startswith("src/common/"):
            return
        for lineno, code in enumerate(code_lines, start=1):
            msg = None
            if METRIC_INTERNAL_RE.search(code):
                msg = ("metrics_internal is private to src/common; go "
                       "through MetricsEnabled()/the registry")
            elif METRIC_RAW_WRITE_RE.search(code):
                msg = ("direct access to a metric's value_; use "
                       "Add()/Set()/Observe()")
            elif METRIC_GLOBAL_RE.match(code):
                msg = ("namespace-scope metric/counter accumulator outside "
                       "src/common; register a MetricCounter instead (hot "
                       "paths share these across threads)")
            if msg is None or allowed(lineno, rule):
                continue
            self.report(rel, lineno, rule, msg)

    def check_naked_sleep(self, rel, code_lines, allowed):
        rule = "naked-sleep"
        if rel in SLEEP_EXEMPT_FILES:
            return
        for lineno, code in enumerate(code_lines, start=1):
            msg = None
            if SLEEP_RE.search(code):
                msg = ("naked sleep: route all waiting through "
                       "parqo::SleepSeconds (src/common/fault.cc) so fault "
                       "injection and retry backoff stay deterministic")
            else:
                m = CV_WAIT_RE.search(code)
                if m and self._wait_is_unbounded(code, m.end() - 1):
                    msg = ("predicate-less condition-variable wait: pass a "
                           "predicate (cv.wait(lock, pred)) or use a "
                           "bounded wait_for/wait_until")
            if msg is None or allowed(lineno, rule):
                continue
            self.report(rel, lineno, rule, msg)

    def check_retry_budget(self, rel, code_lines, allowed):
        rule = "retry-budget"
        if rel in SLEEP_EXEMPT_FILES:
            return
        for lineno, code in enumerate(code_lines, start=1):
            m = SLEEP_SECONDS_CALL_RE.search(code)
            if m is None or allowed(lineno, rule):
                continue
            # Collect the argument expression: from the opening paren to
            # its balanced close, spilling over a few continuation lines.
            arg = code[m.end() - 1:]
            for extra in range(5):
                balance = 0
                closed = False
                for ch in arg:
                    if ch == "(":
                        balance += 1
                    elif ch == ")":
                        balance -= 1
                        if balance == 0:
                            closed = True
                            break
                if closed:
                    break
                nxt = lineno + extra  # code_lines is 0-based: next line
                if nxt >= len(code_lines):
                    break
                arg += " " + code_lines[nxt]
            if RETRY_BACKOFF_RE.search(arg):
                continue
            self.report(
                rel, lineno, rule,
                "retry delay not drawn from the cluster retry budget: "
                "compute it with RetryPolicy::NextBackoffSeconds() "
                "(src/common/fault.h) so each retry claims a RetryBudget "
                "token, or allow(retry-budget) a sleep that is not a "
                "retry",
            )

    def check_lock_discipline(self, rel, code_lines, allowed):
        """Per-line lock rules: raw-std-mutex, mutex-rank, naked-lock,
        tsa-escape."""
        if not _lock_rules_apply(rel):
            return
        for lineno, code in enumerate(code_lines, start=1):
            m = RAW_MUTEX_RE.search(code)
            if m and not allowed(lineno, "raw-std-mutex"):
                self.report(
                    rel, lineno, "raw-std-mutex",
                    "%s bypasses the annotated wrappers: use parqo::Mutex "
                    "+ MutexLock (common/thread_annotations.h) so the "
                    "thread-safety analysis and the rank checker see the "
                    "acquisition" % m.group(0),
                )
            if MUTEX_DECL_RE.search(code):
                rank_m = MUTEX_RANK_REF_RE.search(code)
                if rank_m is None:
                    if not allowed(lineno, "mutex-rank"):
                        self.report(
                            rel, lineno, "mutex-rank",
                            "Mutex declared without a LockRank: every lock "
                            "takes a position in the static hierarchy "
                            "(LockRank registry in "
                            "common/thread_annotations.h)",
                        )
                elif LOCK_RANKS and rank_m.group(2) not in LOCK_RANKS:
                    if not allowed(lineno, "mutex-rank"):
                        self.report(
                            rel, lineno, "mutex-rank",
                            "LockRank::%s is not in the registry; add it "
                            "to the LockRank enum (with its ordering "
                            "rationale) before using it" % rank_m.group(2),
                        )
            if NAKED_LOCK_RE.search(code) and not allowed(lineno,
                                                          "naked-lock"):
                self.report(
                    rel, lineno, "naked-lock",
                    "naked lock()/unlock(): critical sections are "
                    "RAII-only (MutexLock/SharedMutexLock) so early "
                    "returns and exceptions cannot leak a held lock",
                )
            if TSA_ESCAPE_RE.search(code) and not allowed(lineno,
                                                          "tsa-escape"):
                self.report(
                    rel, lineno, "tsa-escape",
                    "PARQO_NO_THREAD_SAFETY_ANALYSIS needs an "
                    "allow(tsa-escape) comment explaining why the "
                    "analysis is wrong here",
                )

    def check_guarded_fields(self, rel, code_lines, allowed):
        """Every mutable member of a mutex-owning class carries
        PARQO_GUARDED_BY or a written allow(guarded-field) reason.

        A lexical scope walk: class/struct bodies are tracked through a
        stack, member statements are accumulated across lines, and
        function bodies / nested enums are skipped wholesale. Only classes
        that directly declare a Mutex/SharedMutex member are audited —
        a class whose locking lives in a nested shard struct is audited
        at the shard."""
        rule = "guarded-field"
        if not _lock_rules_apply(rel):
            return
        depth = 0
        scopes = []  # innermost last: {"body": depth, "mutex": bool,
        #              "fields": [(lineno, stmt)]}
        stmt = ""
        stmt_line = None
        skip_until = None  # skip chars until depth drops below this

        def finish_stmt():
            nonlocal stmt, stmt_line
            text = ACCESS_SPEC_RE.sub("", stmt.strip())
            while ACCESS_SPEC_RE.match(text):
                text = ACCESS_SPEC_RE.sub("", text)
            if text and scopes:
                scope = scopes[-1]
                if re.match(r"(?:mutable\s+)?(?:Shared)?Mutex\b", text):
                    scope["mutex"] = True
                else:
                    scope["fields"].append((stmt_line, text))
            stmt = ""
            stmt_line = None

        def close_scope():
            scope = scopes.pop()
            if not scope["mutex"]:
                return
            for lineno, text in scope["fields"]:
                if self._field_is_exempt(text):
                    continue
                if allowed(lineno, rule):
                    continue
                self.report(
                    rel, lineno, rule,
                    "mutable member of a mutex-owning type without "
                    "PARQO_GUARDED_BY: annotate it, or state why it needs "
                    "no lock with allow(%s) <reason>" % rule,
                )

        for lineno, code in enumerate(code_lines, start=1):
            if code.lstrip().startswith("#"):
                continue  # preprocessor lines never join a member stmt
            for ch in code:
                if skip_until is not None:
                    if ch == "{":
                        depth += 1
                    elif ch == "}":
                        depth -= 1
                        if depth < skip_until:
                            skip_until = None
                    continue
                if ch == "{":
                    depth += 1
                    head = _strip_template_args(stmt)
                    if re.search(r"\benum\b", head):
                        skip_until = depth
                        stmt, stmt_line = "", None
                    elif CLASS_HEAD_RE.search(head.strip()):
                        scopes.append({"body": depth, "mutex": False,
                                       "fields": []})
                        stmt, stmt_line = "", None
                    elif re.search(r"\bnamespace\b", head):
                        # Transparent: namespaces do not nest members.
                        stmt, stmt_line = "", None
                    elif scopes and "(" in head:
                        # Inline member function body (or ctor with init
                        # list): opaque to the field audit.
                        skip_until = depth
                        stmt, stmt_line = "", None
                    elif scopes:
                        # Brace-init inside a member declaration
                        # ("std::atomic<int> done{0};"): part of the stmt.
                        stmt += ch
                        if stmt_line is None:
                            stmt_line = lineno
                    else:
                        skip_until = depth  # free function body etc.
                        stmt, stmt_line = "", None
                elif ch == "}":
                    depth -= 1
                    if scopes and depth < scopes[-1]["body"]:
                        finish_stmt()
                        close_scope()
                    elif scopes and depth >= scopes[-1]["body"]:
                        stmt += ch  # closing a brace-init
                elif ch == ";":
                    if scopes and depth == scopes[-1]["body"]:
                        finish_stmt()
                    else:
                        stmt, stmt_line = "", None
                else:
                    if not ch.isspace() and stmt_line is None:
                        stmt_line = lineno
                    stmt += ch
            stmt += " "  # newline separates tokens
        while scopes:  # unbalanced file: close what is open, still audit
            finish_stmt()
            close_scope()

    @staticmethod
    def _field_is_exempt(text):
        """True for member statements that need no GUARDED_BY."""
        if not text or "PARQO_GUARDED_BY" in text or \
                "PARQO_PT_GUARDED_BY" in text:
            return True
        if re.match(r"(?:using|typedef|friend|enum|template)\b", text):
            return True
        if "= delete" in text or "= default" in text:
            return True
        if GUARDED_EXEMPT_RE.match(text):
            return True
        stripped = _strip_template_args(text)
        eq = stripped.find("=")
        paren = stripped.find("(")
        if paren >= 0 and (eq < 0 or paren < eq):
            return True  # function declaration
        return False

    def check_lock_rank_order(self, rel, path, code_lines, allowed):
        """Lexically nested MutexLock acquisitions must climb the rank
        hierarchy strictly. Ranks resolve through the Mutex declarations
        in this file plus its sibling header (where a .cc's members are
        declared); an acquisition whose rank cannot be resolved is
        skipped — mutex-rank already forces every declaration to carry
        one."""
        rule = "lock-rank-order"
        if not _lock_rules_apply(rel) or not LOCK_RANKS:
            return
        decls = self._mutex_rank_decls(code_lines)
        if path.endswith(".cc"):
            sibling = path[:-3] + ".h"
            if os.path.isfile(sibling):
                decls.update(self._mutex_rank_decls(
                    self._stripped_lines(sibling)))
        depth = 0
        held = []  # (depth_at_acquisition, rank, name, lineno)
        for lineno, code in enumerate(code_lines, start=1):
            pos = 0
            for m in ACQUIRE_RE.finditer(code):
                depth += code.count("{", pos, m.start()) - \
                    code.count("}", pos, m.start())
                pos = m.start()
                while held and depth < held[-1][0]:
                    held.pop()
                name = final_identifier(m.group(1))
                rank = decls.get(name)
                if rank is None:
                    continue
                if held and rank <= held[-1][1] and \
                        not allowed(lineno, rule):
                    self.report(
                        rel, lineno, rule,
                        "acquiring '%s' (rank %d) while holding '%s' "
                        "(rank %d): nested acquisitions must take "
                        "strictly increasing LockRank values" %
                        (name, rank, held[-1][2], held[-1][1]),
                    )
                held.append((depth, rank, name, lineno))
            depth += code.count("{", pos) - code.count("}", pos)
            while held and depth < held[-1][0]:
                held.pop()

    @staticmethod
    def _mutex_rank_decls(code_lines):
        """Mutex member/variable name -> rank value for this file."""
        decls = {}
        for code in code_lines:
            for m in MUTEX_RANK_REF_RE.finditer(code):
                rank = LOCK_RANKS.get(m.group(2))
                if rank is not None:
                    decls[m.group(1)] = rank
        return decls

    @staticmethod
    def _stripped_lines(path):
        code_lines = []
        in_block = False
        with open(path, encoding="utf-8") as f:
            for raw in f.read().splitlines():
                code, in_block, _ = strip_strings_and_comments(raw, in_block)
                code_lines.append(code)
        return code_lines

    @staticmethod
    def _wait_is_unbounded(code, open_paren):
        """True when the wait(...) starting at `open_paren` has exactly one
        argument (no predicate) on this line. Multi-line argument lists end
        in a comma or an unclosed paren and are conservatively skipped."""
        depth = 0
        commas = 0
        for i in range(open_paren, len(code)):
            c = code[i]
            if c in "([":
                depth += 1
            elif c in ")]":
                depth -= 1
                if depth == 0:
                    return commas == 0
            elif c == "," and depth == 1:
                commas += 1
        return False


def main(argv):
    roots = argv[1:] or DEFAULT_ROOTS
    linter = Linter()
    files = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            # Deliberately-broken thread-safety snippets: linted by
            # tools/parqo_lint_test.py (which asserts they FAIL), compiled
            # by tools/check_tsa_fixtures.py — never part of a clean run.
            dirnames[:] = [d for d in dirnames if d != "tsa_fixtures"]
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    for path in sorted(files):
        linter.lint_file(path)

    for path, lineno, rule, message in linter.findings:
        print("%s:%d: [%s] %s" % (path, lineno, rule, message))
    if linter.findings:
        print("parqo_lint: %d finding(s)" % len(linter.findings))
        return 1
    print("parqo_lint: clean (%d files)" % len(files))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
