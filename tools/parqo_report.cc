// parqo_report — end-to-end observability report for one query: generates
// a workload dataset, partitions it, optimizes and executes the query, and
// prints per-phase timings, optimizer/estimator memo statistics, the
// partitioning quality summary, and a per-node traffic table that is
// checked against the executor's totals.
//
//   parqo_report [--workload=lubm|uniprot|watdiv] [--query=L1|U3]
//                [--template=N]            (watdiv template index)
//                [--partitioner=hash|2f|path|mincut]
//                [--algorithm=tdauto|tdcmd|tdcmdp|hgr|msc|dpbushy|binary]
//                [--nodes=N] [--scale=N] [--threads=N] [--explain]
//                [--json=FILE]             (metrics snapshot JSON)
//                [--trace=FILE]            (Chrome trace-event JSON)
//
// Examples:
//   parqo_report --workload=lubm --query=L2 --partitioner=path
//   parqo_report --workload=watdiv --template=17 --trace=trace.json

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/trace.h"
#include "exec/cluster.h"
#include "exec/executor.h"
#include "optimizer/prepared_query.h"
#include "partition/hash_so.h"
#include "partition/min_edge_cut.h"
#include "partition/path_bmc.h"
#include "partition/two_hop.h"
#include "plan/export.h"
#include "sparql/parser.h"
#include "stats/data_stats.h"
#include "workload/benchmark_queries.h"
#include "workload/lubm.h"
#include "workload/uniprot.h"
#include "workload/watdiv.h"

namespace {

using namespace parqo;

struct Options {
  std::string workload = "lubm";
  std::string query;  // default picked per workload
  int template_id = 0;
  std::string partitioner = "hash";
  std::string algorithm = "tdauto";
  int nodes = 10;
  int scale = 0;  // 0 = workload default
  int threads = 4;
  bool explain = false;
  std::string json_path;
  std::string trace_path;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workload=lubm|uniprot|watdiv] [--query=L1|U3]\n"
      "          [--template=N] [--partitioner=hash|2f|path|mincut]\n"
      "          [--algorithm=tdauto|tdcmd|tdcmdp|hgr|msc|dpbushy|binary]\n"
      "          [--nodes=N] [--scale=N] [--threads=N] [--explain]\n"
      "          [--json=FILE] [--trace=FILE]\n",
      argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value = [&](std::string_view name) -> const char* {
      std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) != 0) return nullptr;
      return argv[i] + prefix.size();
    };
    const char* v = nullptr;
    if ((v = value("--workload")) != nullptr) {
      opts->workload = v;
    } else if ((v = value("--query")) != nullptr) {
      opts->query = v;
    } else if ((v = value("--template")) != nullptr) {
      opts->template_id = std::atoi(v);
    } else if ((v = value("--partitioner")) != nullptr) {
      opts->partitioner = v;
    } else if ((v = value("--algorithm")) != nullptr) {
      opts->algorithm = v;
    } else if ((v = value("--nodes")) != nullptr) {
      opts->nodes = std::atoi(v);
    } else if ((v = value("--scale")) != nullptr) {
      opts->scale = std::atoi(v);
    } else if ((v = value("--threads")) != nullptr) {
      opts->threads = std::atoi(v);
    } else if (arg == "--explain") {
      opts->explain = true;
    } else if ((v = value("--json")) != nullptr) {
      opts->json_path = v;
    } else if ((v = value("--trace")) != nullptr) {
      opts->trace_path = v;
    } else {
      return false;
    }
  }
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

double Pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) /
                                static_cast<double>(whole);
}

/// Geometric-mean and max per-operator q-error over one execution's
/// recorded cardinalities (operators with true cardinality 0 skipped).
struct QErrorSummary {
  double geo = 0, max = 0;
  std::uint64_t ops = 0;
};

QErrorSummary SummarizeQError(
    const std::vector<ExecMetrics::OpCardinality>& ops) {
  QErrorSummary s;
  double log_sum = 0;
  for (const ExecMetrics::OpCardinality& oc : ops) {
    if (oc.actual == 0 || oc.estimated <= 0) continue;
    const double act = static_cast<double>(oc.actual);
    const double q = std::max(oc.estimated / act, act / oc.estimated);
    log_sum += std::log(q);
    s.max = std::max(s.max, q);
    ++s.ops;
  }
  if (s.ops > 0) s.geo = std::exp(log_sum / static_cast<double>(s.ops));
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) return Usage(argv[0]);

  std::unique_ptr<Partitioner> partitioner;
  if (opts.partitioner == "hash") {
    partitioner = std::make_unique<HashSoPartitioner>();
  } else if (opts.partitioner == "2f") {
    partitioner = std::make_unique<TwoHopForwardPartitioner>();
  } else if (opts.partitioner == "path") {
    partitioner = std::make_unique<PathBmcPartitioner>();
  } else if (opts.partitioner == "mincut") {
    partitioner = std::make_unique<MinEdgeCutPartitioner>();
  } else {
    return Usage(argv[0]);
  }

  Algorithm algorithm;
  if (opts.algorithm == "tdauto") {
    algorithm = Algorithm::kTdAuto;
  } else if (opts.algorithm == "tdcmd") {
    algorithm = Algorithm::kTdCmd;
  } else if (opts.algorithm == "tdcmdp") {
    algorithm = Algorithm::kTdCmdp;
  } else if (opts.algorithm == "hgr") {
    algorithm = Algorithm::kHgrTdCmd;
  } else if (opts.algorithm == "msc") {
    algorithm = Algorithm::kMsc;
  } else if (opts.algorithm == "dpbushy") {
    algorithm = Algorithm::kDpBushy;
  } else if (opts.algorithm == "binary") {
    algorithm = Algorithm::kBinaryDp;
  } else {
    return Usage(argv[0]);
  }

  SetMetricsEnabled(true);
  TraceRecorder::Global().SetEnabled(true);

  std::vector<std::pair<std::string, double>> phases;
  auto timed = [&](const std::string& name, auto&& fn) {
    TraceSpan span("phase/" + name, "report");
    Stopwatch watch;
    auto result = fn();
    phases.emplace_back(name, watch.ElapsedSeconds());
    return result;
  };

  // -- Phase: generate ----------------------------------------------------
  std::string query_label;
  std::vector<TriplePattern> patterns;
  ParsedQuery parsed;
  RdfGraph graph = timed("generate", [&]() -> RdfGraph {
    if (opts.workload == "lubm" || opts.workload == "uniprot") {
      query_label = !opts.query.empty() ? opts.query
                    : opts.workload == "lubm" ? "L1"
                                              : "U1";
      const BenchmarkQuery& bq = GetBenchmarkQuery(query_label);
      Result<ParsedQuery> q = ParseSparql(bq.sparql);
      if (!q.ok()) {
        std::fprintf(stderr, "error: %s\n", q.status().ToString().c_str());
        std::exit(1);
      }
      parsed = *q;
      patterns = parsed.patterns;
      if (opts.workload == "lubm") {
        LubmConfig config;
        if (opts.scale > 0) config.universities = opts.scale;
        return GenerateLubm(config);
      }
      UniprotConfig config;
      if (opts.scale > 0) config.proteins = opts.scale;
      return GenerateUniprot(config);
    }
    if (opts.workload == "watdiv") {
      Rng rng(2017);
      std::vector<WatdivTemplate> templates =
          GenerateWatdivTemplates(124, rng);
      int id = opts.template_id;
      if (id < 0 || id >= static_cast<int>(templates.size())) {
        std::fprintf(stderr, "error: --template out of range [0, %zu)\n",
                     templates.size());
        std::exit(2);
      }
      query_label = "watdiv-template-" + std::to_string(id);
      patterns = templates[id].patterns;
      parsed.select_all = true;
      parsed.patterns = patterns;
      WatdivDataConfig config;
      if (opts.scale > 0) config.entities_per_class = opts.scale;
      return GenerateWatdivData(config);
    }
    std::fprintf(stderr, "error: unknown workload '%s'\n",
                 opts.workload.c_str());
    std::exit(2);
  });

  std::printf("parqo_report: %s / %s on %d nodes (%s, %s, %d threads)\n",
              opts.workload.c_str(), query_label.c_str(), opts.nodes,
              opts.partitioner.c_str(), opts.algorithm.c_str(),
              opts.threads);
  std::printf("dataset: %s triples, %s vertices\n",
              WithThousandsSep(graph.NumTriples()).c_str(),
              WithThousandsSep(graph.vertices().size()).c_str());

  // -- Phase: partition ---------------------------------------------------
  PartitionAssignment assignment =
      timed("partition", [&]() {
        return partitioner->PartitionData(graph, opts.nodes);
      });
  PartitionAnalysis analysis = AnalyzeAssignment(graph, assignment);

  // -- Phase: prepare (stats + indexes) -----------------------------------
  auto prepared = timed("prepare", [&]() {
    return std::make_unique<PreparedQuery>(patterns, *partitioner,
                                           StatsFromData(graph));
  });

  // -- Phase: optimize ----------------------------------------------------
  OptimizeOptions options;
  options.cost_params.num_nodes = opts.nodes;
  options.num_threads = opts.threads;
  OptimizeResult best = timed("optimize", [&]() {
    return Optimize(algorithm, prepared->inputs(), options);
  });
  if (best.plan == nullptr) {
    std::fprintf(stderr, "optimization timed out after %.1fs\n",
                 best.seconds);
    return 1;
  }

  // -- Phase: execute -----------------------------------------------------
  Cluster cluster(graph, assignment);
  Executor executor(cluster, prepared->join_graph(), options.cost_params,
                    /*parallel_nodes=*/opts.threads > 1);
  executor.set_record_op_cardinalities(true);
  ExecMetrics metrics;
  Result<BindingTable> rows = timed("execute", [&]() {
    return ExecuteAndProject(executor, *best.plan, parsed,
                             prepared->join_graph(), &metrics);
  });
  if (!rows.ok()) {
    std::fprintf(stderr, "error: %s\n", rows.status().ToString().c_str());
    return 1;
  }

  // -- Report -------------------------------------------------------------
  std::printf("\n== per-phase wall time ==\n");
  double total_phase = 0;
  for (const auto& [name, seconds] : phases) total_phase += seconds;
  for (const auto& [name, seconds] : phases) {
    std::printf("  %-10s %10.4fs  %5.1f%%\n", name.c_str(), seconds,
                total_phase > 0 ? 100.0 * seconds / total_phase : 0.0);
  }

  std::printf("\n== partitioning (%s) ==\n", partitioner->name().c_str());
  std::printf("  stored triples     %s (replication factor %.3f)\n",
              WithThousandsSep(analysis.total_stored).c_str(),
              analysis.replication_factor);
  std::printf("  cut edges          %s of %s (%.1f%%)\n",
              WithThousandsSep(analysis.cut_edges).c_str(),
              WithThousandsSep(analysis.total_edges).c_str(),
              Pct(analysis.cut_edges, analysis.total_edges));

  std::printf("\n== optimizer (%s) ==\n",
              ToString(best.algorithm_used).c_str());
  std::printf("  optimize time      %.4fs\n", best.seconds);
  std::printf("  operators          %s enumerated\n",
              WithThousandsSep(best.enumerated).c_str());
  std::printf("  plan cost          %s (estimated)\n",
              FormatCostE(best.plan->total_cost).c_str());
  std::uint64_t lookups = best.memo_hits + best.memo_misses;
  std::printf("  memo               %s entries, %s hits / %s lookups"
              " (%.1f%% hit rate)\n",
              WithThousandsSep(best.memo_entries).c_str(),
              WithThousandsSep(best.memo_hits).c_str(),
              WithThousandsSep(lookups).c_str(),
              Pct(best.memo_hits, lookups));
  std::printf("  rule-3 pruning     %s local short circuits\n",
              WithThousandsSep(best.local_short_circuits).c_str());
  if (best.workers > 1 && best.seconds > 0) {
    std::printf("  workers            %d (%.0f%% utilization)\n",
                best.workers,
                100.0 * best.busy_seconds / (best.workers * best.seconds));
  }
  const CardinalityEstimator& est = prepared->estimator();
  std::uint64_t est_lookups = est.memo_hits() + est.memo_misses();
  std::printf("  estimator memo     %s hits / %s lookups (%.1f%% hit "
              "rate)\n",
              WithThousandsSep(est.memo_hits()).c_str(),
              WithThousandsSep(est_lookups).c_str(),
              Pct(est.memo_hits(), est_lookups));
  if (opts.explain) {
    std::printf("\n%s",
                PlanToString(*best.plan, prepared->join_graph()).c_str());
  }

  std::printf("\n== execution ==\n");
  std::printf("  result rows        %s\n",
              WithThousandsSep(metrics.result_rows).c_str());
  std::printf("  critical path      %.1f (measured Eq. 3 cost)\n",
              metrics.measured_cost);
  std::printf("  total work         %.1f (%.2fx parallelism)\n",
              metrics.total_work,
              metrics.measured_cost > 0
                  ? metrics.total_work / metrics.measured_cost
                  : 0.0);
  std::printf("  distributed joins  %s\n",
              WithThousandsSep(metrics.distributed_joins).c_str());
  std::printf("  rows scanned       %s\n",
              WithThousandsSep(metrics.rows_scanned).c_str());
  std::printf("  rows transferred   %s (%s bytes)\n",
              WithThousandsSep(metrics.rows_transferred).c_str(),
              WithThousandsSep(metrics.bytes_shipped).c_str());
  for (const ExecMetrics::EdgeTraffic& e : metrics.edges) {
    std::printf("    edge %-12s %s rows, %s bytes\n", e.op.c_str(),
                WithThousandsSep(e.rows).c_str(),
                WithThousandsSep(e.bytes).c_str());
  }

  std::printf("\n== storage ==\n");
  std::uint64_t index_bytes = 0;
  std::uint64_t stored_triples = 0;
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    index_bytes += cluster.node(i).IndexBytes();
    stored_triples += cluster.node(i).NumTriples();
  }
  std::printf("  permutation indexes %s bytes over %s stored triples\n",
              WithThousandsSep(index_bytes).c_str(),
              WithThousandsSep(stored_triples).c_str());
  std::printf("  bytes per triple   %.2f (dual-sorted-vector baseline "
              "24.00)\n",
              stored_triples > 0 ? static_cast<double>(index_bytes) /
                                       static_cast<double>(stored_triples)
                                 : 0.0);

  std::printf("\n== cardinality estimation ==\n");
  std::printf("  %-14s %-16s %14s %14s %8s\n", "op", "patterns",
              "estimated", "actual", "q-error");
  for (const ExecMetrics::OpCardinality& oc : metrics.op_cards) {
    std::string tps;
    for (int tp : oc.tps) {
      if (!tps.empty()) tps += ",";
      tps += std::to_string(tp);
    }
    const double act = static_cast<double>(oc.actual);
    const double q = oc.actual == 0 || oc.estimated <= 0
                         ? 0.0
                         : std::max(oc.estimated / act, act / oc.estimated);
    std::printf("  %-14s {%-14s %14.1f %14s %8.2f\n", oc.op.c_str(),
                (tps + "}").c_str(), oc.estimated,
                WithThousandsSep(oc.actual).c_str(), q);
  }
  QErrorSummary base_q = SummarizeQError(metrics.op_cards);
  std::printf("  baseline (Eq. 10-11)  geo-mean q %.3f, max q %.1f over "
              "%s ops\n",
              base_q.geo, base_q.max,
              WithThousandsSep(base_q.ops).c_str());
  // Re-plan with exact pairwise join cardinalities from the aggregated
  // indexes and execute once more, so the report shows what the extra
  // statistics buy on this query.
  {
    DataStatsOptions pair_opts;
    pair_opts.pairwise_joins = true;
    PreparedQuery pair_prepared(patterns, *partitioner,
                                StatsFromData(graph, pair_opts));
    OptimizeResult pair_best =
        Optimize(algorithm, pair_prepared.inputs(), options);
    if (pair_best.plan != nullptr) {
      Executor pair_exec(cluster, pair_prepared.join_graph(),
                         options.cost_params,
                         /*parallel_nodes=*/opts.threads > 1);
      pair_exec.set_record_op_cardinalities(true);
      ExecMetrics pair_metrics;
      Result<BindingTable> pair_rows =
          ExecuteAndProject(pair_exec, *pair_best.plan,
                            parsed, pair_prepared.join_graph(),
                            &pair_metrics);
      if (pair_rows.ok()) {
        QErrorSummary pair_q = SummarizeQError(pair_metrics.op_cards);
        std::printf("  pairwise-exact stats  geo-mean q %.3f, max q %.1f "
                    "over %s ops\n",
                    pair_q.geo, pair_q.max,
                    WithThousandsSep(pair_q.ops).c_str());
      }
    }
  }

  std::printf("\n== per-node traffic ==\n");
  std::printf("  %-6s %12s %12s %12s %12s\n", "node", "stored", "scanned",
              "received", "joined");
  for (int i = 0; i < opts.nodes; ++i) {
    std::printf("  %-6d %12s %12s %12s %12s\n", i,
                WithThousandsSep(i < static_cast<int>(
                                         analysis.node_stored.size())
                                     ? analysis.node_stored[i]
                                     : 0)
                    .c_str(),
                WithThousandsSep(metrics.node_rows_scanned[i]).c_str(),
                WithThousandsSep(metrics.node_rows_received[i]).c_str(),
                WithThousandsSep(metrics.node_rows_joined[i]).c_str());
  }
  std::uint64_t sum_scanned = std::accumulate(
      metrics.node_rows_scanned.begin(), metrics.node_rows_scanned.end(),
      std::uint64_t{0});
  std::uint64_t sum_received = std::accumulate(
      metrics.node_rows_received.begin(), metrics.node_rows_received.end(),
      std::uint64_t{0});
  std::printf("  %-6s %12s %12s %12s\n", "sum", "",
              WithThousandsSep(sum_scanned).c_str(),
              WithThousandsSep(sum_received).c_str());
  bool sums_ok = sum_scanned == metrics.rows_scanned &&
                 sum_received == metrics.rows_transferred;
  std::printf("  traffic check: per-node sums %s executor totals\n",
              sums_ok ? "match" : "DO NOT match");

  // Only populated when the run executed under a FaultScope (the scalar
  // totals above count successful deliveries only, so the traffic check
  // holds even through recovery — that is the reconciliation invariant).
  if (metrics.recovery_attempts > 0 || !metrics.degraded_nodes.empty() ||
      metrics.shipments_dropped > 0) {
    std::printf("\n== recovery ==\n");
    std::printf("  retry attempts     %s\n",
                WithThousandsSep(metrics.recovery_attempts).c_str());
    std::printf("  ops re-executed    %s\n",
                WithThousandsSep(metrics.operators_reexecuted).c_str());
    std::printf("  rows re-shipped    %s\n",
                WithThousandsSep(metrics.rows_reshipped).c_str());
    std::printf("  shipments dropped  %s\n",
                WithThousandsSep(metrics.shipments_dropped).c_str());
    std::string degraded;
    for (int node : metrics.degraded_nodes) {
      if (!degraded.empty()) degraded += ", ";
      degraded += std::to_string(node);
    }
    std::printf("  degraded nodes     %zu%s%s\n",
                metrics.degraded_nodes.size(),
                degraded.empty() ? "" : ": ", degraded.c_str());
  }

  if (!opts.json_path.empty()) {
    std::string json = MetricsRegistry::Global().Snapshot().ToJson();
    if (!WriteFile(opts.json_path, json + "\n")) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   opts.json_path.c_str());
      return 1;
    }
    std::printf("\nmetrics snapshot written to %s\n",
                opts.json_path.c_str());
  }
  if (!opts.trace_path.empty()) {
    if (!WriteFile(opts.trace_path,
                   TraceRecorder::Global().ToChromeJson() + "\n")) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   opts.trace_path.c_str());
      return 1;
    }
    std::printf("trace (%zu events) written to %s — open in "
                "chrome://tracing or ui.perfetto.dev\n",
                TraceRecorder::Global().NumEvents(),
                opts.trace_path.c_str());
  }

  return sums_ok ? 0 : 1;
}
