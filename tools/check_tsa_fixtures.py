#!/usr/bin/env python3
"""Compile-checks the thread-safety fixtures with clang.

Every tests/tsa_fixtures/ok_*.cc must compile CLEANLY and every
tests/tsa_fixtures/bad_*.cc must FAIL under

    <clang> -fsyntax-only -std=c++20 -Isrc \
            -Wthread-safety -Wthread-safety-beta -Werror

(-Wthread-safety-beta is what checks the ACQUIRED_BEFORE/ACQUIRED_AFTER
ordering relations). A bad fixture that starts compiling means the
annotations no-op'd — a broken -I path, a macro regression in
common/thread_annotations.h, or a clang without the capability attribute
— which is exactly the silent failure mode this script exists to catch:
the analysis passing over src/ proves nothing if it cannot reject known
violations.

Usage: tools/check_tsa_fixtures.py [--clang CLANG] [fixture_dir]
       (run from the repository root; default clang++, default
        tests/tsa_fixtures)
Exit status 0 iff every fixture verdict matches its name.
"""

import argparse
import glob
import os
import shutil
import subprocess
import sys

FLAGS = ["-fsyntax-only", "-std=c++20", "-Isrc",
         "-Wthread-safety", "-Wthread-safety-beta", "-Werror"]


def compile_fixture(clang, path):
    proc = subprocess.run([clang] + FLAGS + [path],
                          capture_output=True, text=True)
    return proc.returncode == 0, proc.stdout + proc.stderr


def main(argv):
    parser = argparse.ArgumentParser()
    parser.add_argument("--clang", default="clang++")
    parser.add_argument("fixture_dir", nargs="?",
                        default=os.path.join("tests", "tsa_fixtures"))
    args = parser.parse_args(argv[1:])

    if shutil.which(args.clang) is None:
        print("check_tsa_fixtures: '%s' not found" % args.clang)
        return 1

    fixtures = sorted(glob.glob(os.path.join(args.fixture_dir, "*.cc")))
    if not fixtures:
        print("check_tsa_fixtures: no fixtures under %s" % args.fixture_dir)
        return 1

    failures = 0
    for path in fixtures:
        name = os.path.basename(path)
        expect_ok = name.startswith("ok_")
        ok, output = compile_fixture(args.clang, path)
        if ok == expect_ok:
            print("check_tsa_fixtures: %-28s %s (as expected)"
                  % (name, "accepted" if ok else "rejected"))
            continue
        failures += 1
        if expect_ok:
            print("check_tsa_fixtures: %s should compile cleanly but was "
                  "rejected:\n%s" % (name, output))
        else:
            print("check_tsa_fixtures: %s compiled CLEANLY but must be "
                  "rejected — the thread-safety analysis is not seeing "
                  "the annotations (check -Isrc and the PARQO_* macros in "
                  "src/common/thread_annotations.h)" % name)
    if failures:
        print("check_tsa_fixtures: %d unexpected verdict(s)" % failures)
        return 1
    print("check_tsa_fixtures: %d fixture(s) behaved" % len(fixtures))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
