// parqo_serve — serve SPARQL BGPs through the plan-cached serving layer
// (src/server/) against an N-Triples file or a generated WatDiv dataset
// on a simulated cluster.
//
//   parqo_serve [--data=FILE.nt] [--nodes=N] [--deadline=S]
//               [--algorithm=tdauto|tdcmd|tdcmdp|hgr|msc|dpbushy|binary]
//               [--max-in-flight=N] [--max-rows=N] [--stats] [--saturate]
//
// Reads SELECT queries from stdin, separated by blank lines (or one
// query when the input has none), serves each, and prints rows plus the
// serving diagnostics: signature, cache hit/miss, optimize/execute
// latency. With no --data a WatDiv dataset is generated, so
//
//   echo 'SELECT * WHERE { ?s ?p ?o }' | parqo_serve
//
// works out of the box. --stats dumps cache counters on exit.
//
// Exit codes distinguish what a wrapping script should do: 0 all served,
// 75 (EX_TEMPFAIL) every failure was RETRYABLE (kOverloaded /
// kUnavailable — transient overload or exhausted recovery; back off and
// re-submit), 1 at least one fatal failure (parse error, invalid query),
// 2 usage. --saturate is a test hook that fills every admission slot
// first, so each query is turned away with the typed kOverloaded.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/cluster.h"
#include "partition/hash_so.h"
#include "rdf/ntriples.h"
#include "server/server.h"
#include "sparql/parser.h"
#include "workload/watdiv.h"

namespace {

struct ServeOptions {
  std::string data_path;
  std::string algorithm = "tdauto";
  int nodes = 10;
  double deadline = 0;
  int max_in_flight = 64;
  std::size_t max_rows = 20;
  bool stats = false;
  bool saturate = false;
};

/// Exit code for "every failure was transient" (sysexits EX_TEMPFAIL):
/// the caller should back off and re-submit, not page anyone.
constexpr int kExitRetryable = 75;

bool IsRetryable(const parqo::Status& s) {
  return s.code() == parqo::StatusCode::kOverloaded ||
         s.code() == parqo::StatusCode::kUnavailable;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--data=FILE.nt] [--nodes=N] [--deadline=S]\n"
               "          [--algorithm=tdauto|tdcmd|tdcmdp|hgr|msc|dpbushy|"
               "binary]\n"
               "          [--max-in-flight=N] [--max-rows=N] [--stats]\n"
               "          [--saturate]\n"
               "Queries are read from stdin, separated by blank lines.\n"
               "Exit: 0 ok, %d all failures retryable, 1 fatal, 2 usage.\n",
               argv0, kExitRetryable);
  return 2;
}

bool ParseArgs(int argc, char** argv, ServeOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const std::string& name) -> const char* {
      std::string prefix = name + "=";
      if (arg.rfind(prefix, 0) != 0) return nullptr;
      return arg.c_str() + prefix.size();
    };
    const char* v = nullptr;
    if ((v = value("--data")) != nullptr) {
      opts->data_path = v;
    } else if ((v = value("--algorithm")) != nullptr) {
      opts->algorithm = v;
    } else if ((v = value("--nodes")) != nullptr) {
      opts->nodes = std::atoi(v);
    } else if ((v = value("--deadline")) != nullptr) {
      opts->deadline = std::atof(v);
    } else if ((v = value("--max-in-flight")) != nullptr) {
      opts->max_in_flight = std::atoi(v);
    } else if ((v = value("--max-rows")) != nullptr) {
      opts->max_rows = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--stats") {
      opts->stats = true;
    } else if (arg == "--saturate") {
      opts->saturate = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

bool PickAlgorithm(const std::string& name, parqo::Algorithm* out) {
  using parqo::Algorithm;
  if (name == "tdauto") *out = Algorithm::kTdAuto;
  else if (name == "tdcmd") *out = Algorithm::kTdCmd;
  else if (name == "tdcmdp") *out = Algorithm::kTdCmdp;
  else if (name == "hgr") *out = Algorithm::kHgrTdCmd;
  else if (name == "msc") *out = Algorithm::kMsc;
  else if (name == "dpbushy") *out = Algorithm::kDpBushy;
  else if (name == "binary") *out = Algorithm::kBinaryDp;
  else return false;
  return true;
}

/// Splits stdin into query texts at blank lines.
std::vector<std::string> ReadQueries() {
  std::vector<std::string> queries;
  std::string current, line;
  while (std::getline(std::cin, line)) {
    bool blank = line.find_first_not_of(" \t\r") == std::string::npos;
    if (blank) {
      if (!current.empty()) queries.push_back(current);
      current.clear();
    } else {
      current += line;
      current += '\n';
    }
  }
  if (!current.empty()) queries.push_back(current);
  return queries;
}

}  // namespace

int main(int argc, char** argv) {
  ServeOptions opts;
  if (!ParseArgs(argc, argv, &opts)) return Usage(argv[0]);
  parqo::Algorithm algorithm;
  if (!PickAlgorithm(opts.algorithm, &algorithm)) return Usage(argv[0]);

  parqo::RdfGraph graph = [&] {
    if (opts.data_path.empty()) {
      std::fprintf(stderr, "no --data: generating a WatDiv dataset\n");
      return parqo::GenerateWatdivData(parqo::WatdivDataConfig{});
    }
    auto loaded = parqo::ParseNTriplesFile(opts.data_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", opts.data_path.c_str(),
                   loaded.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(*loaded);
  }();

  parqo::HashSoPartitioner partitioner;
  parqo::Cluster cluster(graph,
                         partitioner.PartitionData(graph, opts.nodes));
  std::fprintf(stderr, "%zu triples on %d nodes (%s partitioning)\n",
               graph.NumTriples(), opts.nodes,
               partitioner.name().c_str());

  parqo::ServerConfig config;
  config.algorithm = algorithm;
  config.query_deadline_seconds = opts.deadline;
  config.max_in_flight = opts.max_in_flight;
  parqo::QueryServer server(graph, cluster, partitioner, config);

  if (opts.saturate) {
    // Test hook: occupy every admission slot so each served query is
    // rejected with the typed kOverloaded (slots are never released; the
    // process exits right after the query loop).
    int held = 0;
    while (server.admission().TryAdmit()) ++held;
    std::fprintf(stderr, "saturated: holding %d admission slots\n", held);
  }

  int fatal_failures = 0;
  int retryable_failures = 0;
  for (const std::string& text : ReadQueries()) {
    auto parsed = parqo::ParseSparql(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   parsed.status().ToString().c_str());
      ++fatal_failures;
      continue;
    }
    parqo::ServeResult r = server.Serve(parsed->patterns);
    if (!r.status.ok()) {
      if (IsRetryable(r.status)) {
        std::fprintf(stderr, "serve error (retryable): %s\n",
                     r.status.ToString().c_str());
        std::fprintf(stderr,
                     "retry: transient overload/unavailability -- back off "
                     "and re-submit this query\n");
        ++retryable_failures;
      } else {
        std::fprintf(stderr, "serve error: %s\n",
                     r.status.ToString().c_str());
        ++fatal_failures;
      }
      continue;
    }
    std::printf("# signature: %s\n", r.signature.c_str());
    std::printf(
        "# %s%s | optimize %.3f ms | execute %.3f ms | total %.3f ms | "
        "cost %.3g | %zu rows\n",
        r.cache_hit ? "cache hit" : "cache miss",
        r.degraded ? " (degraded)" : "", r.optimize_seconds * 1e3,
        r.execute_seconds * 1e3, r.total_seconds * 1e3, r.plan_cost,
        r.rows.NumRows());
    // Header in the caller's variable spellings, canonical order.
    for (std::size_t k = 0; k < r.var_names.size(); ++k) {
      std::printf("%s?%s", k == 0 ? "" : "\t", r.var_names[k].c_str());
    }
    std::printf("\n");
    const parqo::Dictionary& dict = graph.dict();
    std::size_t shown = 0;
    for (std::size_t row = 0; row < r.rows.NumRows() && shown < opts.max_rows;
         ++row, ++shown) {
      for (std::size_t k = 0; k < r.var_names.size(); ++k) {
        int c = r.rows.ColumnOf(static_cast<parqo::VarId>(k));
        std::printf("%s%s", k == 0 ? "" : "\t",
                    c < 0 ? "-"
                          : dict.Decode(r.rows.At(row, c))
                                .ToNTriples()
                                .c_str());
      }
      std::printf("\n");
    }
    if (r.rows.NumRows() > shown) {
      std::printf("... (%zu more rows)\n", r.rows.NumRows() - shown);
    }
    std::printf("\n");
  }

  if (opts.stats) {
    std::printf(
        "cache: %llu hits, %llu misses, %llu inserts, %llu evictions, "
        "%zu entries; admission: %llu admitted, %llu rejected\n",
        static_cast<unsigned long long>(server.cache().hits()),
        static_cast<unsigned long long>(server.cache().misses()),
        static_cast<unsigned long long>(server.cache().inserts()),
        static_cast<unsigned long long>(server.cache().evictions()),
        server.cache().size(),
        static_cast<unsigned long long>(server.admission().admitted()),
        static_cast<unsigned long long>(server.admission().rejected()));
  }
  if (fatal_failures > 0) return 1;
  return retryable_failures > 0 ? kExitRetryable : 0;
}
