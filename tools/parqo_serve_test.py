#!/usr/bin/env python3
"""Exit-code contract test for parqo_serve (DESIGN.md section 16).

A wrapping script must be able to tell "back off and re-submit" from
"this query is broken" without parsing stderr prose:

  0   every query served
  75  every failure was retryable (kOverloaded / kUnavailable), with a
      one-line retry hint on stderr
  1   at least one fatal failure (e.g. a parse error)
  2   usage

Usage: parqo_serve_test.py --serve=/path/to/parqo_serve
"""

import os
import subprocess
import sys
import tempfile

QUERY = "SELECT * WHERE { ?s <p> ?o }\n"
BAD_QUERY = "SELECT * WHERE { this is not sparql\n"

DATA = """\
<s1> <p> <o1> .
<s2> <p> <o2> .
<s3> <q> <o3> .
"""


def run(serve, args, stdin):
    return subprocess.run(
        [serve] + args,
        input=stdin,
        capture_output=True,
        text=True,
        timeout=120,
    )


def main():
    serve = None
    for arg in sys.argv[1:]:
        if arg.startswith("--serve="):
            serve = arg[len("--serve=") :]
    if not serve or not os.path.exists(serve):
        print(f"missing --serve binary (got {serve!r})", file=sys.stderr)
        return 2

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        data = os.path.join(tmp, "tiny.nt")
        with open(data, "w", encoding="utf-8") as f:
            f.write(DATA)
        base = [f"--data={data}", "--nodes=3"]

        # 1. Healthy serve: exit 0, rows on stdout.
        r = run(serve, base, QUERY)
        if r.returncode != 0:
            failures.append(f"healthy serve exited {r.returncode}: {r.stderr}")
        elif "signature" not in r.stdout:
            failures.append(f"healthy serve printed no result: {r.stdout!r}")

        # 2. Saturated server: the typed kOverloaded is RETRYABLE — exit
        #    75 with a one-line retry hint on stderr.
        r = run(serve, base + ["--max-in-flight=1", "--saturate"], QUERY)
        if r.returncode != 75:
            failures.append(f"saturated serve exited {r.returncode}, want 75")
        if "retryable" not in r.stderr:
            failures.append(f"no retryable marker on stderr: {r.stderr!r}")
        if "retry:" not in r.stderr or "re-submit" not in r.stderr:
            failures.append(f"no retry hint line on stderr: {r.stderr!r}")

        # 3. A parse error is fatal: exit 1, no retry hint.
        r = run(serve, base, BAD_QUERY)
        if r.returncode != 1:
            failures.append(f"parse error exited {r.returncode}, want 1")
        if "retry:" in r.stderr:
            failures.append(f"fatal failure printed a retry hint: {r.stderr!r}")

        # 4. Mixed stream: one fatal + one retryable failure -> fatal (1)
        #    wins, so automation never blindly retries a broken query.
        r = run(
            serve,
            base + ["--max-in-flight=1", "--saturate"],
            QUERY + "\n" + BAD_QUERY,
        )
        if r.returncode != 1:
            failures.append(f"mixed stream exited {r.returncode}, want 1")

        # 5. Unknown flag: usage (2).
        r = run(serve, ["--no-such-flag"], "")
        if r.returncode != 2:
            failures.append(f"usage exited {r.returncode}, want 2")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("parqo_serve exit-code contract: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
