// The Join Graph Reduction (JGR) problem of Section IV-B, Definition 4:
// cover the query's patterns with local queries so that the sum of the
// covering queries' cardinalities is minimized, then collapse each chosen
// local query into a single vertex of a reduced join graph. JGR is NP-hard
// (Theorem 4, by reduction from weighted set cover), so we use the greedy
// weighted set-cover heuristic with its ln(n) approximation guarantee.
//
// Candidates are the connected subqueries of the maximal local queries
// (every subquery of a local query is local, Lemma 4), weighted by their
// estimated cardinality. The greedy repeatedly takes the candidate with
// the best cardinality-per-newly-covered-pattern ratio; overlapping picks
// are made disjoint by clipping to the still-uncovered patterns and
// splitting the clip into connected components (each still local).

#ifndef PARQO_OPTIMIZER_JOIN_GRAPH_REDUCTION_H_
#define PARQO_OPTIMIZER_JOIN_GRAPH_REDUCTION_H_

#include <cstdint>
#include <vector>

#include "common/tp_set.h"
#include "partition/local_query_index.h"
#include "query/join_graph.h"
#include "stats/estimator.h"

namespace parqo {

struct JgrResult {
  /// Disjoint, connected, local groups covering the whole query.
  std::vector<TpSet> groups;
  std::uint64_t candidates_considered = 0;
};

/// `candidate_cap` bounds the connected subqueries enumerated per maximal
/// local query; past the cap only the MLQ itself and singletons are used.
JgrResult ReduceJoinGraph(const JoinGraph& jg, const LocalQueryIndex& index,
                          const CardinalityEstimator& estimator,
                          int candidate_cap);

/// Enumerates connected subqueries of `within` (BFS over the subset
/// lattice), at most `cap`; smaller subqueries come first. Exposed for
/// tests and for the star-worst-case analysis bench.
std::vector<TpSet> EnumerateConnectedSubqueries(const JoinGraph& jg,
                                                TpSet within, int cap);

}  // namespace parqo

#endif  // PARQO_OPTIMIZER_JOIN_GRAPH_REDUCTION_H_
