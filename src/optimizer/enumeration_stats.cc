#include "optimizer/enumeration_stats.h"

#include <vector>

#include "common/status.h"

namespace parqo {

std::uint64_t BellNumber(int k) {
  PARQO_CHECK(k >= 0 && k <= 25);
  // Bell triangle.
  std::vector<std::uint64_t> row{1};
  for (int i = 1; i <= k; ++i) {
    std::vector<std::uint64_t> next;
    next.reserve(i + 1);
    next.push_back(row.back());
    for (std::uint64_t x : row) next.push_back(next.back() + x);
    row = std::move(next);
  }
  return row.front();
}

std::uint64_t Binomial(int n, int k) {
  if (k < 0 || k > n) return 0;
  std::uint64_t result = 1;
  for (int i = 0; i < k; ++i) {
    result = result * static_cast<std::uint64_t>(n - i) /
             static_cast<std::uint64_t>(i + 1);
  }
  return result;
}

std::uint64_t StarSearchSpace(int n) {
  std::uint64_t total = 0;
  for (int k = 2; k <= n; ++k) {
    total += (BellNumber(k) - 1) * Binomial(n, k);
  }
  return total;
}

}  // namespace parqo
