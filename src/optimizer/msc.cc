#include "optimizer/msc.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/stopwatch.h"

namespace parqo {
namespace {

// One relation at the current plan level.
struct Relation {
  TpSet tps;        // base patterns covered
  PlanNodePtr plan; // subplan producing it
};

// Mask over the current level's relation indexes.
using RelMask = TpSet;

struct Clique {
  VarId var;
  RelMask rels;
};

class MscSearch {
 public:
  MscSearch(const OptimizerInputs& inputs, const OptimizeOptions& options)
      : jg_(*inputs.join_graph),
        local_index_(*inputs.local_index),
        builder_(*inputs.estimator, CostModel(options.cost_params)),
        options_(options) {}

  OptimizeResult Run() {
    Stopwatch watch;
    std::vector<Relation> initial;
    initial.reserve(jg_.num_tps());
    for (int tp = 0; tp < jg_.num_tps(); ++tp) {
      initial.push_back(Relation{TpSet::Singleton(tp), builder_.Scan(tp)});
    }
    RecurseLevels(initial);
    OptimizeResult result;
    result.plan = best_;
    result.seconds = watch.ElapsedSeconds();
    result.enumerated = plans_enumerated_;
    result.abort_cause = abort_cause_;
    result.timed_out =
        aborted_ && abort_cause_ != AbortCause::kDeadline;
    result.algorithm_used = Algorithm::kMsc;
    return result;
  }

 private:
  // Abort probe, run between enumeration steps. MSC is naturally
  // degradation-friendly: it keeps the best complete flat plan found so
  // far, so every abort cause still yields a valid plan once the first
  // cover completes (O(|E|) work).
  bool Aborting() {
    if (aborted_) return true;
    if (options_.deadline.Expired()) {
      aborted_ = true;
      abort_cause_ = AbortCause::kDeadline;
    } else if (stopwatch_.ElapsedSeconds() > options_.timeout_seconds ||
               plans_enumerated_ >= options_.msc_plan_cap) {
      aborted_ = true;
      abort_cause_ = AbortCause::kTimeout;
    }
    return aborted_;
  }

  // The variable cliques of the current relations: one clique per join
  // variable still shared by >= 2 relations. Identical relation sets are
  // merged (they would produce the same join).
  std::vector<Clique> BuildCliques(const std::vector<Relation>& rels) {
    std::vector<Clique> cliques;
    for (VarId v : jg_.join_vars()) {
      RelMask mask;
      for (std::size_t i = 0; i < rels.size(); ++i) {
        if (jg_.Ntp(v).Intersects(rels[i].tps)) {
          mask.Add(static_cast<int>(i));
        }
      }
      if (mask.Count() >= 2) {
        bool dup = false;
        for (const Clique& c : cliques) {
          if (c.rels == mask) {
            dup = true;
            break;
          }
        }
        if (!dup) cliques.push_back(Clique{v, mask});
      }
    }
    return cliques;
  }

  // Enumerates every cover of `universe` by `cliques` with exactly `limit`
  // sets, deduplicated; calls `found` with the chosen clique indexes.
  template <typename FoundFn>
  void EnumerateCovers(const std::vector<Clique>& cliques, RelMask universe,
                       int limit, FoundFn&& found) {
    std::vector<int> chosen;
    std::unordered_set<std::uint64_t> seen;
    EnumerateCoversRec(cliques, universe, limit, &chosen, &seen, found);
  }

  template <typename FoundFn>
  void EnumerateCoversRec(const std::vector<Clique>& cliques,
                          RelMask uncovered, int remaining,
                          std::vector<int>* chosen,
                          std::unordered_set<std::uint64_t>* seen,
                          FoundFn&& found) {
    if (Aborting()) return;
    if (uncovered.Empty()) {
      // Canonical signature: sorted clique indexes packed 8 bits each
      // (levels never need more than 8 cliques at 64 relations... they can,
      // so hash the sorted vector instead).
      std::vector<int> sig = *chosen;
      std::sort(sig.begin(), sig.end());
      std::uint64_t h = 1469598103934665603ULL;
      for (int idx : sig) {
        h ^= static_cast<std::uint64_t>(idx) + 1;
        h *= 1099511628211ULL;
      }
      if (seen->insert(h).second) found(sig);
      return;
    }
    if (remaining == 0) return;
    // Branch on the lowest uncovered relation: some chosen clique must
    // contain it.
    int r = uncovered.First();
    for (std::size_t i = 0; i < cliques.size(); ++i) {
      if (!cliques[i].rels.Contains(r)) continue;
      chosen->push_back(static_cast<int>(i));
      EnumerateCoversRec(cliques, uncovered - cliques[i].rels,
                         remaining - 1, chosen, seen, found);
      chosen->pop_back();
    }
  }

  // Builds the next level for one cover and recurses.
  void ApplyCover(const std::vector<Relation>& rels,
                  const std::vector<Clique>& cliques,
                  const std::vector<int>& cover) {
    // Assign each relation to the first clique of the cover containing it.
    std::vector<Relation> next;
    RelMask assigned;
    for (int ci : cover) {
      std::vector<PlanNodePtr> children;
      TpSet tps;
      bool all_scans = true;
      RelMask members = cliques[ci].rels - assigned;
      if (members.Empty()) continue;  // fully claimed by earlier cliques
      for (int r : members) {
        children.push_back(rels[r].plan);
        tps |= rels[r].tps;
        if (rels[r].plan->kind != PlanNode::Kind::kScan) all_scans = false;
      }
      assigned |= members;
      if (children.size() == 1) {
        next.push_back(Relation{tps, children[0]});
        continue;
      }
      // Base-level joins over co-located data are local; everything else
      // reshuffles (flat plans never broadcast).
      JoinMethod method = (all_scans && local_index_.IsLocal(tps))
                              ? JoinMethod::kLocal
                              : JoinMethod::kRepartition;
      VarId jv =
          method == JoinMethod::kLocal ? kInvalidVarId : cliques[ci].var;
      next.push_back(Relation{tps, builder_.Join(method, jv, children)});
    }
    RecurseLevels(next);
  }

  void RecurseLevels(const std::vector<Relation>& rels) {
    if (Aborting()) return;
    if (rels.size() == 1) {
      ++plans_enumerated_;
      if (!best_ || rels[0].plan->total_cost < best_->total_cost) {
        best_ = rels[0].plan;
      }
      return;
    }
    std::vector<Clique> cliques = BuildCliques(rels);
    if (cliques.empty()) return;  // disconnected residue; dead end

    RelMask universe = TpSet::FullSet(static_cast<int>(rels.size()));
    // Iterative deepening to the minimum cover size, then enumerate all
    // covers of that size. This is the expensive exact MSC step.
    for (int limit = 1; limit <= static_cast<int>(cliques.size());
         ++limit) {
      bool any = false;
      EnumerateCovers(cliques, universe, limit,
                      [&](const std::vector<int>& cover) {
                        any = true;
                        ApplyCover(rels, cliques, cover);
                      });
      if (any || Aborting()) break;
    }
  }

  const JoinGraph& jg_;
  const LocalQueryIndex& local_index_;
  PlanBuilder builder_;
  OptimizeOptions options_;

  Stopwatch stopwatch_;
  PlanNodePtr best_;
  std::uint64_t plans_enumerated_ = 0;
  bool aborted_ = false;
  AbortCause abort_cause_ = AbortCause::kNone;
};

}  // namespace

OptimizeResult RunMsc(const OptimizerInputs& inputs,
                      const OptimizeOptions& options) {
  return MscSearch(inputs, options).Run();
}

}  // namespace parqo
