#include "optimizer/dp_bushy.h"

#include <cstdint>
#include <span>
#include <vector>

#include "common/arena.h"
#include "common/check.h"
#include "common/flat_map.h"
#include "common/stopwatch.h"
#include "optimizer/plan_validator.h"

namespace parqo {
namespace {

class DpBushy {
 public:
  DpBushy(const OptimizerInputs& inputs, const OptimizeOptions& options)
      : inputs_(inputs),
        jg_(*inputs.join_graph),
        local_index_(*inputs.local_index),
        builder_(*inputs.estimator, CostModel(options.cost_params)),
        timeout_seconds_(options.timeout_seconds),
        validate_(options.validate) {}

  OptimizeResult Run() {
    Stopwatch watch;
    const PlanCandidate* plan = BestPlan(jg_.AllTps());
    if (validate_ && !aborted_ && plan != nullptr) {
      // Same memo contract as the TD-CMD family: only connected,
      // correctly costed subplans keyed by exactly their pattern set.
      // Candidates are materialized one at a time for the validator.
      PlanValidator validator(jg_, &local_index_, inputs_.estimator,
                              &builder_.cost_model());
      memo_.ForEach([&](TpSet q, const PlanCandidate* entry) {
        PARQO_CHECK(entry != nullptr);
        PARQO_CHECK_OK(validator.ValidateMemoEntry(q, *MaterializePlan(*entry)));
      });
    }
    OptimizeResult result;
    result.plan = (aborted_ || plan == nullptr) ? nullptr
                                                : MaterializePlan(*plan);
    result.seconds = watch.ElapsedSeconds();
    result.enumerated = ops_enumerated_;
    result.timed_out = aborted_;
    result.algorithm_used = Algorithm::kDpBushy;
    return result;
  }

 private:
  bool Deadline() {
    if (aborted_) return true;
    if ((++probe_ & 0xfff) == 0 &&
        stopwatch_.ElapsedSeconds() > timeout_seconds_) {
      aborted_ = true;
    }
    return aborted_;
  }

  // The maximal multi-way division: one part per pattern adjacent to the
  // highest-degree join variable, with the non-adjacent remainder pieces
  // attached to a neighboring part (first fit).
  bool MaximalDivision(TpSet q, VarId* var_out,
                       std::vector<TpSet>* parts_out) {
    VarId best_var = kInvalidVarId;
    int best_degree = 0;
    for (VarId v : jg_.join_vars()) {
      int d = jg_.Degree(v, q);
      if (d > best_degree) {
        best_degree = d;
        best_var = v;
      }
    }
    if (best_degree < 3) return false;  // binary splits already cover k=2

    TpSet neighbors = jg_.Ntp(best_var) & q;
    std::vector<TpSet>& parts = *parts_out;
    parts.clear();
    for (int tp : neighbors) parts.push_back(TpSet::Singleton(tp));
    jg_.ComponentsExcluding(q, best_var, &comps_scratch_);
    for (TpSet comp : comps_scratch_) {
      TpSet remainder = comp - neighbors;
      jg_.ComponentsExcluding(remainder, best_var, &pieces_scratch_);
      for (TpSet piece : pieces_scratch_) {
        TpSet adj = jg_.NeighborsOf(piece) & neighbors;
        if (adj.Empty()) return false;  // piece only reachable via v*
        // Attach to the first adjacent seed part.
        for (TpSet& part : parts) {
          if (part.Intersects(adj)) {
            part |= piece;
            break;
          }
        }
      }
    }
    *var_out = best_var;
    return true;
  }

  const PlanCandidate* BestPlan(TpSet q) {
    if (const PlanCandidate* const* hit = memo_.Find(q)) return *hit;
    const PlanCandidate* best = Generate(q);
    if (!aborted_) memo_.EmplaceFirstWins(q, best);
    return best;
  }

  const PlanCandidate* Generate(TpSet q) {
    if (q.Count() == 1) return builder_.ScanIn(arena_, q.First());
    if (local_index_.IsLocal(q)) {
      // Local subqueries are pushed down to the store as one local join.
      return builder_.LocalJoinAllIn(arena_, q);
    }

    const PlanCandidate* best = nullptr;
    auto consider = [&](JoinMethod method, VarId var,
                        std::span<const PlanCandidate* const> children) {
      const PlanCandidate* cand =
          builder_.JoinIn(arena_, method, var, children);
      if (best == nullptr || cand->total_cost < best->total_cost) {
        best = cand;
      }
    };

    // (a) Every binary split — generate first, check connectivity and
    // Cartesian-freeness afterwards (the inefficiency the paper analyzes).
    const std::uint64_t bits = q.bits();
    const std::uint64_t low = bits & (~bits + 1);  // anchor the lowest bit
    for (std::uint64_t sub = (bits - 1) & bits; sub != 0;
         sub = (sub - 1) & bits) {
      if (Deadline()) return best;
      if ((sub & low) == 0) continue;  // canonical half only
      TpSet left(sub);
      TpSet right = q - left;
      if (right.Empty()) continue;
      // Post-hoc checks:
      if (!jg_.IsConnected(left) || !jg_.IsConnected(right)) continue;
      std::vector<VarId> shared = jg_.SharedJoinVars(left, right);
      if (shared.empty()) continue;  // Cartesian product; discard
      ++ops_enumerated_;
      const PlanCandidate* children[2] = {BestPlan(left), BestPlan(right)};
      if (aborted_) return best;
      consider(JoinMethod::kBroadcast, shared[0], children);
      consider(JoinMethod::kRepartition, shared[0], children);
    }

    // (b) The one maximal multi-way join.
    VarId var;
    std::vector<TpSet> parts;
    if (MaximalDivision(q, &var, &parts)) {
      ++ops_enumerated_;
      const PlanCandidate* children[TpSet::kMaxSize];
      std::size_t n = 0;
      for (TpSet part : parts) {
        children[n++] = BestPlan(part);
        if (aborted_) return best;
      }
      std::span<const PlanCandidate* const> span(children, n);
      consider(JoinMethod::kBroadcast, var, span);
      consider(JoinMethod::kRepartition, var, span);
    }
    return best;
  }

  const OptimizerInputs& inputs_;
  const JoinGraph& jg_;
  const LocalQueryIndex& local_index_;
  PlanBuilder builder_;
  double timeout_seconds_;
  bool validate_ = false;

  Stopwatch stopwatch_;
  std::uint64_t probe_ = 0;
  std::uint64_t ops_enumerated_ = 0;
  bool aborted_ = false;
  /// All candidates live here; only the winner is materialized at the end.
  Arena arena_;
  FlatTpSetMap<const PlanCandidate*> memo_;
  std::vector<TpSet> comps_scratch_;
  std::vector<TpSet> pieces_scratch_;
};

}  // namespace

OptimizeResult RunDpBushy(const OptimizerInputs& inputs,
                          const OptimizeOptions& options) {
  return DpBushy(inputs, options).Run();
}

}  // namespace parqo
