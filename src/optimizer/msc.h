// MSC baseline — the minimum-set-cover flat-plan optimizer of CliqueSquare
// (Goasdoue et al., ICDE 2015; reference [6]), reimplemented from the
// published description. The optimizer builds plans level by level: at
// each level it forms the variable cliques of the current relations,
// solves an exact MINIMUM SET COVER of the relations by cliques (NP-hard;
// solved by iterative-deepening exhaustive search — this exponential step
// is precisely the inefficiency Section III of the paper points out), and
// joins each chosen clique with one k-way operator. Enumerating every
// minimum cover at every level yields all "flattest" plans; the cheapest
// by the shared cost model is returned.
//
// First-level joins over co-located base data run as local joins; all
// higher joins are repartition joins — flat plans cannot exploit
// broadcast joins, which is one reason they lose to bushier TD-CMD plans
// (Section V-B).

#ifndef PARQO_OPTIMIZER_MSC_H_
#define PARQO_OPTIMIZER_MSC_H_

#include "optimizer/optimizer.h"

namespace parqo {

OptimizeResult RunMsc(const OptimizerInputs& inputs,
                      const OptimizeOptions& options);

}  // namespace parqo

#endif  // PARQO_OPTIMIZER_MSC_H_
