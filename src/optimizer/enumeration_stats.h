// Closed-form search-space sizes from Section III-D, used to validate the
// enumerator (Table VII's TD-CMD column equals these formulas exactly for
// chain and cycle queries) and to analyze the star worst case.

#ifndef PARQO_OPTIMIZER_ENUMERATION_STATS_H_
#define PARQO_OPTIMIZER_ENUMERATION_STATS_H_

#include <cstdint>

namespace parqo {

/// T(Q) for a chain query with n patterns: (n^3 - n) / 6   (Eq. 8).
constexpr std::uint64_t ChainSearchSpace(std::uint64_t n) {
  return (n * n * n - n) / 6;
}

/// T(Q) for a cycle query with n patterns: (n^3 - n^2) / 2   (Eq. 9).
constexpr std::uint64_t CycleSearchSpace(std::uint64_t n) {
  return (n * n * n - n * n) / 2;
}

/// Bell number B_k (number of partitions of a k-element set); k <= 25
/// fits in 64 bits comfortably for the sizes the tests use.
std::uint64_t BellNumber(int k);

/// T(Q) for a star query with n patterns: sum_k (B_k - 1) * C(n, k)
/// (Eq. 7) — the worst case, where every multi-division is connected.
std::uint64_t StarSearchSpace(int n);

/// Binomial coefficient C(n, k).
std::uint64_t Binomial(int n, int k);

}  // namespace parqo

#endif  // PARQO_OPTIMIZER_ENUMERATION_STATS_H_
