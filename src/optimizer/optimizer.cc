#include "optimizer/optimizer.h"

#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "cost/cost_model.h"
#include "optimizer/plan_validator.h"
#include "optimizer/dp_bushy.h"
#include "optimizer/hgr_td_cmd.h"
#include "optimizer/msc.h"
#include "optimizer/td_auto.h"
#include "optimizer/td_cmd.h"

namespace parqo {
namespace {

OptimizeResult Dispatch(Algorithm algorithm, const OptimizerInputs& inputs,
                        const OptimizeOptions& options) {
  switch (algorithm) {
    case Algorithm::kTdCmd:
      return RunTdCmd(inputs, options, /*pruned=*/false);
    case Algorithm::kTdCmdp:
      return RunTdCmd(inputs, options, /*pruned=*/true);
    case Algorithm::kHgrTdCmd:
      return RunHgrTdCmd(inputs, options);
    case Algorithm::kTdAuto:
      return RunTdAuto(inputs, options);
    case Algorithm::kMsc:
      return RunMsc(inputs, options);
    case Algorithm::kDpBushy:
      return RunDpBushy(inputs, options);
    case Algorithm::kBinaryDp: {
      TdCmdRules rules;
      rules.cmd_mode = CmdMode::kBinaryOnly;
      OptimizeResult result = RunTdCmdWithRules(inputs, options, rules);
      result.algorithm_used = Algorithm::kBinaryDp;
      return result;
    }
  }
  return OptimizeResult{};
}

/// Publishes one run's enumeration detail to the global registry so
/// reports aggregate across queries without plumbing results around.
void PublishMetrics(const OptimizeResult& result) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.counter("optimizer.runs").Add(1);
  reg.counter("optimizer.cmds_enumerated").Add(result.enumerated);
  reg.counter("optimizer.memo_entries").Add(result.memo_entries);
  reg.counter("optimizer.memo_hits").Add(result.memo_hits);
  reg.counter("optimizer.memo_misses").Add(result.memo_misses);
  reg.counter("optimizer.local_short_circuits")
      .Add(result.local_short_circuits);
  if (result.timed_out) reg.counter("optimizer.timeouts").Add(1);
  if (result.abort_cause == AbortCause::kDeadline) {
    reg.counter("optimizer.deadline_aborts").Add(1);
  }
  if (result.fell_back_to_msc) reg.counter("optimizer.msc_fallbacks").Add(1);
  reg.histogram("optimizer.seconds").Observe(result.seconds);
  if (result.workers > 1 && result.seconds > 0) {
    reg.gauge("optimizer.worker_utilization")
        .Set(result.busy_seconds / (result.workers * result.seconds));
  }
}

}  // namespace

std::string ToString(AbortCause cause) {
  switch (cause) {
    case AbortCause::kNone: return "none";
    case AbortCause::kTimeout: return "timeout";
    case AbortCause::kMemoCap: return "memo_cap";
    case AbortCause::kDeadline: return "deadline";
  }
  return "?";
}

std::string ToString(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kTdCmd: return "TD-CMD";
    case Algorithm::kTdCmdp: return "TD-CMDP";
    case Algorithm::kHgrTdCmd: return "HGR-TD-CMD";
    case Algorithm::kTdAuto: return "TD-Auto";
    case Algorithm::kMsc: return "MSC";
    case Algorithm::kDpBushy: return "DP-Bushy";
    case Algorithm::kBinaryDp: return "Binary-DP";
  }
  return "?";
}

OptimizeResult Optimize(Algorithm algorithm, const OptimizerInputs& inputs,
                        const OptimizeOptions& options) {
  PARQO_CHECK(inputs.join_graph != nullptr);
  PARQO_CHECK(inputs.local_index != nullptr);
  PARQO_CHECK(inputs.estimator != nullptr);
  TraceSpan span("optimize/" + ToString(algorithm), "optimizer");
  OptimizeResult result = Dispatch(algorithm, inputs, options);
  if (result.plan == nullptr &&
      result.abort_cause == AbortCause::kDeadline) {
    // The deadline fired before the enumerator completed any plan. The
    // caller still needs something executable, so degrade to the MSC flat
    // plan: its first cover completes in O(|E|) work per level, which is
    // effectively instant at the scale where a deadline can fire mid-run.
    // The (expired) deadline is lifted for the fallback — re-applying it
    // would abort MSC before its first plan too.
    OptimizeOptions fallback = options;
    fallback.deadline = Deadline::Infinite();
    OptimizeResult msc = RunMsc(inputs, fallback);
    result.plan = msc.plan;
    result.seconds += msc.seconds;
    result.fell_back_to_msc = result.plan != nullptr;
  }
  if (options.validate && result.plan != nullptr) {
    // Algorithm-specific wiring already validated divisions and memo
    // state mid-run; this is the uniform final gate every algorithm
    // (including MSC and TD-Auto's delegate) passes through.
    CostModel cost_model(options.cost_params);
    PlanValidator validator(*inputs.join_graph, inputs.local_index,
                            inputs.estimator, &cost_model);
    PARQO_CHECK_OK(validator.ValidatePlan(*result.plan));
  }
  if (MetricsEnabled()) PublishMetrics(result);
  return result;
}

}  // namespace parqo
