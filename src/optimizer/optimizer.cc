#include "optimizer/optimizer.h"

#include "common/status.h"
#include "optimizer/dp_bushy.h"
#include "optimizer/hgr_td_cmd.h"
#include "optimizer/msc.h"
#include "optimizer/td_auto.h"
#include "optimizer/td_cmd.h"

namespace parqo {

std::string ToString(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kTdCmd: return "TD-CMD";
    case Algorithm::kTdCmdp: return "TD-CMDP";
    case Algorithm::kHgrTdCmd: return "HGR-TD-CMD";
    case Algorithm::kTdAuto: return "TD-Auto";
    case Algorithm::kMsc: return "MSC";
    case Algorithm::kDpBushy: return "DP-Bushy";
    case Algorithm::kBinaryDp: return "Binary-DP";
  }
  return "?";
}

OptimizeResult Optimize(Algorithm algorithm, const OptimizerInputs& inputs,
                        const OptimizeOptions& options) {
  PARQO_CHECK(inputs.join_graph != nullptr);
  PARQO_CHECK(inputs.local_index != nullptr);
  PARQO_CHECK(inputs.estimator != nullptr);
  switch (algorithm) {
    case Algorithm::kTdCmd:
      return RunTdCmd(inputs, options, /*pruned=*/false);
    case Algorithm::kTdCmdp:
      return RunTdCmd(inputs, options, /*pruned=*/true);
    case Algorithm::kHgrTdCmd:
      return RunHgrTdCmd(inputs, options);
    case Algorithm::kTdAuto:
      return RunTdAuto(inputs, options);
    case Algorithm::kMsc:
      return RunMsc(inputs, options);
    case Algorithm::kDpBushy:
      return RunDpBushy(inputs, options);
    case Algorithm::kBinaryDp: {
      TdCmdRules rules;
      rules.cmd_mode = CmdMode::kBinaryOnly;
      OptimizeResult result = RunTdCmdWithRules(inputs, options, rules);
      result.algorithm_used = Algorithm::kBinaryDp;
      return result;
    }
  }
  return OptimizeResult{};
}

}  // namespace parqo
