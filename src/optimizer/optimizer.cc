#include "optimizer/optimizer.h"

#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "cost/cost_model.h"
#include "optimizer/plan_validator.h"
#include "optimizer/dp_bushy.h"
#include "optimizer/hgr_td_cmd.h"
#include "optimizer/msc.h"
#include "optimizer/td_auto.h"
#include "optimizer/td_cmd.h"

namespace parqo {
namespace {

OptimizeResult Dispatch(Algorithm algorithm, const OptimizerInputs& inputs,
                        const OptimizeOptions& options) {
  switch (algorithm) {
    case Algorithm::kTdCmd:
      return RunTdCmd(inputs, options, /*pruned=*/false);
    case Algorithm::kTdCmdp:
      return RunTdCmd(inputs, options, /*pruned=*/true);
    case Algorithm::kHgrTdCmd:
      return RunHgrTdCmd(inputs, options);
    case Algorithm::kTdAuto:
      return RunTdAuto(inputs, options);
    case Algorithm::kMsc:
      return RunMsc(inputs, options);
    case Algorithm::kDpBushy:
      return RunDpBushy(inputs, options);
    case Algorithm::kBinaryDp: {
      TdCmdRules rules;
      rules.cmd_mode = CmdMode::kBinaryOnly;
      OptimizeResult result = RunTdCmdWithRules(inputs, options, rules);
      result.algorithm_used = Algorithm::kBinaryDp;
      return result;
    }
  }
  return OptimizeResult{};
}

/// Publishes one run's enumeration detail to the global registry so
/// reports aggregate across queries without plumbing results around.
void PublishMetrics(const OptimizeResult& result) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.counter("optimizer.runs").Add(1);
  reg.counter("optimizer.cmds_enumerated").Add(result.enumerated);
  reg.counter("optimizer.memo_entries").Add(result.memo_entries);
  reg.counter("optimizer.memo_hits").Add(result.memo_hits);
  reg.counter("optimizer.memo_misses").Add(result.memo_misses);
  reg.counter("optimizer.local_short_circuits")
      .Add(result.local_short_circuits);
  if (result.timed_out) reg.counter("optimizer.timeouts").Add(1);
  reg.histogram("optimizer.seconds").Observe(result.seconds);
  if (result.workers > 1 && result.seconds > 0) {
    reg.gauge("optimizer.worker_utilization")
        .Set(result.busy_seconds / (result.workers * result.seconds));
  }
}

}  // namespace

std::string ToString(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kTdCmd: return "TD-CMD";
    case Algorithm::kTdCmdp: return "TD-CMDP";
    case Algorithm::kHgrTdCmd: return "HGR-TD-CMD";
    case Algorithm::kTdAuto: return "TD-Auto";
    case Algorithm::kMsc: return "MSC";
    case Algorithm::kDpBushy: return "DP-Bushy";
    case Algorithm::kBinaryDp: return "Binary-DP";
  }
  return "?";
}

OptimizeResult Optimize(Algorithm algorithm, const OptimizerInputs& inputs,
                        const OptimizeOptions& options) {
  PARQO_CHECK(inputs.join_graph != nullptr);
  PARQO_CHECK(inputs.local_index != nullptr);
  PARQO_CHECK(inputs.estimator != nullptr);
  TraceSpan span("optimize/" + ToString(algorithm), "optimizer");
  OptimizeResult result = Dispatch(algorithm, inputs, options);
  if (options.validate && result.plan != nullptr) {
    // Algorithm-specific wiring already validated divisions and memo
    // state mid-run; this is the uniform final gate every algorithm
    // (including MSC and TD-Auto's delegate) passes through.
    CostModel cost_model(options.cost_params);
    PlanValidator validator(*inputs.join_graph, inputs.local_index,
                            inputs.estimator, &cost_model);
    PARQO_CHECK_OK(validator.ValidatePlan(*result.plan));
  }
  if (MetricsEnabled()) PublishMetrics(result);
  return result;
}

}  // namespace parqo
