// HGR-TD-CMD (Section IV-B): heuristic join-graph reduction followed by
// full TD-CMD enumeration on the reduced graph. Collapsing local queries
// into single vertices reduces both drivers of enumeration complexity —
// the number of patterns and the join-variable degrees — while the plans
// lost are exactly those that would split a cheap local region across
// distributed joins.

#ifndef PARQO_OPTIMIZER_HGR_TD_CMD_H_
#define PARQO_OPTIMIZER_HGR_TD_CMD_H_

#include "optimizer/optimizer.h"

namespace parqo {

OptimizeResult RunHgrTdCmd(const OptimizerInputs& inputs,
                           const OptimizeOptions& options);

}  // namespace parqo

#endif  // PARQO_OPTIMIZER_HGR_TD_CMD_H_
