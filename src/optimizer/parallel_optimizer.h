// Inter-query parallelism: optimize a batch of prepared queries
// concurrently on a fixed-size worker pool (sized by hardware_concurrency
// by default, reused across batches — never thread-per-task). This is the
// workload shape of a multi-user SPARQL endpoint: a stream of incoming
// queries whose optimization must keep up with arrival rate, as assumed by
// the distributed engines the paper compares against (Partout, PHD-Store).
//
// Each query is optimized exactly as Optimize() would — same inputs, same
// statistics (estimators are per-query and thread-safe), same options — so
// batch results are bit-identical in plan cost to a sequential loop,
// independent of scheduling order.

#ifndef PARQO_OPTIMIZER_PARALLEL_OPTIMIZER_H_
#define PARQO_OPTIMIZER_PARALLEL_OPTIMIZER_H_

#include <vector>

#include "common/thread_pool.h"
#include "optimizer/optimizer.h"
#include "optimizer/prepared_query.h"

namespace parqo {

/// One batch entry: an algorithm applied to a prepared query (borrowed;
/// must outlive the OptimizeBatch call).
struct BatchQuery {
  Algorithm algorithm = Algorithm::kTdAuto;
  const PreparedQuery* query = nullptr;
};

class ParallelOptimizer {
 public:
  /// `num_threads` <= 0 selects hardware_concurrency. The pool is created
  /// once and reused for every batch.
  explicit ParallelOptimizer(int num_threads = 0);

  int num_threads() const { return pool_.size(); }
  ThreadPool& pool() { return pool_; }

  /// Optimizes every entry concurrently; results come back in input
  /// order. `options.num_threads` additionally enables intra-query
  /// parallelism per entry (workers are shared with the batch, which is
  /// safe: ParallelFor callers participate, so nesting cannot deadlock).
  std::vector<OptimizeResult> OptimizeBatch(
      const std::vector<BatchQuery>& batch, const OptimizeOptions& options);

  /// Convenience overload: one algorithm over a vector of queries.
  std::vector<OptimizeResult> OptimizeBatch(
      Algorithm algorithm, const std::vector<const PreparedQuery*>& queries,
      const OptimizeOptions& options);

 private:
  ThreadPool pool_;
};

}  // namespace parqo

#endif  // PARQO_OPTIMIZER_PARALLEL_OPTIMIZER_H_
