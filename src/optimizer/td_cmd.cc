#include "optimizer/td_cmd.h"

#include "common/check.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "optimizer/plan_validator.h"
#include "optimizer/td_cmd_core.h"

namespace parqo {

OptimizeResult RunTdCmd(const OptimizerInputs& inputs,
                        const OptimizeOptions& options, bool pruned) {
  TdCmdRules rules;
  if (pruned) {
    rules.cmd_mode = CmdMode::kCcmdAndBinary;
    rules.binary_broadcast_only = true;
    rules.local_short_circuit = true;
  }
  OptimizeResult result = RunTdCmdWithRules(inputs, options, rules);
  result.algorithm_used = pruned ? Algorithm::kTdCmdp : Algorithm::kTdCmd;
  return result;
}

OptimizeResult RunTdCmdWithRules(const OptimizerInputs& inputs,
                                 const OptimizeOptions& options,
                                 const TdCmdRules& rules) {
  const JoinGraph& jg = *inputs.join_graph;
  PlanBuilder builder(*inputs.estimator, CostModel(options.cost_params));

  Stopwatch watch;
  TdCmdRules run_rules = rules;
  run_rules.validate = options.validate;
  TdCmdCore core(
      jg, builder, run_rules,
      /*leaf_plan=*/
      [&](Arena& arena, int tp) { return builder.ScanIn(arena, tp); },
      /*is_local=*/
      [&](TpSet q) { return inputs.local_index->IsLocal(q); },
      /*local_plan=*/
      [&](Arena& arena, TpSet q) {
        return builder.LocalJoinAllIn(arena, q);
      },
      options.timeout_seconds, options.deadline);
  PlanNodePtr plan;
  if (options.num_threads > 1) {
    ThreadPool& pool = options.thread_pool != nullptr ? *options.thread_pool
                                                      : ThreadPool::Global();
    plan = core.RunParallel(pool, options.num_threads);
  } else {
    plan = core.Run();
  }

  if (options.validate && plan != nullptr) {
    // The memo must never be polluted: every entry keys a connected
    // subquery and stores a well-formed, correctly costed plan for
    // exactly that subquery.
    PlanValidator validator(jg, inputs.local_index, inputs.estimator,
                            &builder.cost_model());
    core.ForEachMemoEntry([&](TpSet q, const PlanNodePtr& entry) {
      PARQO_CHECK(entry != nullptr);
      PARQO_CHECK_OK(validator.ValidateMemoEntry(q, *entry));
    });
  }

  OptimizeResult result;
  result.plan = plan;
  result.seconds = watch.ElapsedSeconds();
  result.enumerated = core.stats().enumerated_cmds;
  result.abort_cause = ToAbortCause(core.stats().abort_cause);
  // Deadline expiry degrades (plan kept / MSC fallback) rather than
  // failing, so it is not reported as a timeout.
  result.timed_out = core.stats().timed_out &&
                     result.abort_cause != AbortCause::kDeadline;
  result.algorithm_used = Algorithm::kTdCmd;
  result.memo_entries = core.stats().memo_entries;
  result.memo_hits = core.stats().memo_hits;
  result.memo_misses = core.stats().memo_misses;
  result.local_short_circuits = core.stats().local_short_circuits;
  result.workers = core.stats().workers;
  result.busy_seconds = core.stats().busy_seconds;
  return result;
}

}  // namespace parqo
