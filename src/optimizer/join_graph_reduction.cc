#include "optimizer/join_graph_reduction.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/status.h"

namespace parqo {

std::vector<TpSet> EnumerateConnectedSubqueries(const JoinGraph& jg,
                                                TpSet within, int cap) {
  std::vector<TpSet> out;
  std::unordered_set<TpSet, TpSetHash> seen;
  std::deque<TpSet> queue;
  for (int tp : within) {
    TpSet s = TpSet::Singleton(tp);
    queue.push_back(s);
    seen.insert(s);
  }
  while (!queue.empty() && static_cast<int>(out.size()) < cap) {
    TpSet s = queue.front();
    queue.pop_front();
    out.push_back(s);
    for (int tp : jg.NeighborsOf(s) & within) {
      TpSet grown = s;
      grown.Add(tp);
      if (seen.insert(grown).second) queue.push_back(grown);
    }
  }
  return out;
}

JgrResult ReduceJoinGraph(const JoinGraph& jg, const LocalQueryIndex& index,
                          const CardinalityEstimator& estimator,
                          int candidate_cap) {
  JgrResult result;

  // Candidate pool C: connected subqueries of each maximal local query,
  // plus all singletons (which keeps the greedy total even when MLQs are
  // too large to enumerate).
  std::unordered_set<TpSet, TpSetHash> pool;
  for (int tp = 0; tp < jg.num_tps(); ++tp) {
    pool.insert(TpSet::Singleton(tp));
  }
  for (TpSet mlq : index.mlqs()) {
    if (mlq.Count() <= 1) continue;
    std::vector<TpSet> subs =
        EnumerateConnectedSubqueries(jg, mlq, candidate_cap);
    bool truncated = static_cast<int>(subs.size()) >= candidate_cap;
    for (TpSet s : subs) pool.insert(s);
    if (truncated) {
      // Make sure the full MLQ itself (per connected component) stays
      // available — it is often the best pick for large local regions.
      for (TpSet comp : jg.Components(mlq)) pool.insert(comp);
    }
  }
  result.candidates_considered = pool.size();

  std::vector<TpSet> candidates(pool.begin(), pool.end());
  // Canonical order, not the set's hash order: the greedy loop below
  // breaks (ratio, gain) ties by first-seen, so candidate order decides
  // the grouping — and with it the final plan — whenever candidates tie.
  std::sort(candidates.begin(), candidates.end(),
            [](TpSet a, TpSet b) { return a.bits() < b.bits(); });
  std::vector<double> weight(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    weight[i] = estimator.Cardinality(candidates[i]);
  }

  // Greedy weighted set cover: minimize weight per newly covered pattern.
  TpSet uncovered = jg.AllTps();
  while (!uncovered.Empty()) {
    int best = -1;
    double best_ratio = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      int gain = (candidates[i] & uncovered).Count();
      if (gain == 0) continue;
      double ratio = weight[i] / gain;
      if (best < 0 || ratio < best_ratio ||
          (ratio == best_ratio &&
           gain > (candidates[best] & uncovered).Count())) {
        best = static_cast<int>(i);
        best_ratio = ratio;
      }
    }
    PARQO_CHECK(best >= 0);  // singletons guarantee progress
    TpSet part = candidates[best] & uncovered;
    uncovered -= part;
    // Clipping may disconnect the pick; each component is still a subquery
    // of the same local query, hence local (Lemma 4).
    for (TpSet comp : jg.Components(part)) {
      result.groups.push_back(comp);
    }
  }
  return result;
}

}  // namespace parqo
