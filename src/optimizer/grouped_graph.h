// The reduced join graph J'(Q) of Section IV-B: vertices are groups of
// triple patterns that the join-graph reduction collapsed into single
// local queries; join variables are the original query's variables that
// still connect two or more groups. GroupedJoinGraph implements the same
// Graph concept as JoinGraph (AllTps / join_vars / Ntp / Degree /
// NeighborsOf / ComponentsExcluding), so Algorithms 1-3 run on it
// unchanged — bitsets now index groups instead of patterns.

#ifndef PARQO_OPTIMIZER_GROUPED_GRAPH_H_
#define PARQO_OPTIMIZER_GROUPED_GRAPH_H_

#include <vector>

#include "common/tp_set.h"
#include "query/join_graph.h"

namespace parqo {

class GroupedJoinGraph {
 public:
  /// `groups` must be disjoint, non-empty, and cover base.AllTps().
  GroupedJoinGraph(const JoinGraph& base, std::vector<TpSet> groups);

  int num_tps() const { return static_cast<int>(groups_.size()); }
  TpSet AllTps() const { return TpSet::FullSet(num_tps()); }

  const std::vector<VarId>& join_vars() const { return join_vars_; }
  TpSet Ntp(VarId v) const { return rel_ntp_[v]; }
  int Degree(VarId v, TpSet within) const {
    return (rel_ntp_[v] & within).Count();
  }

  TpSet Adjacent(int rel) const { return adjacent_[rel]; }
  TpSet AdjacentExcluding(int rel, VarId vj) const;
  TpSet NeighborsOf(TpSet rels) const;
  bool IsConnected(TpSet rels) const;
  TpSet ComponentOfExcluding(int seed, TpSet within, VarId vj) const;
  std::vector<TpSet> ComponentsExcluding(TpSet within, VarId vj) const;
  /// Allocation-free variant (same contract as JoinGraph's).
  void ComponentsExcluding(TpSet within, VarId vj,
                           std::vector<TpSet>* out) const;

  //===------------------------------------------------------------------===//
  // Mapping back to the base query
  //===------------------------------------------------------------------===//

  const JoinGraph& base() const { return *base_; }
  /// Triple patterns of group `rel`.
  TpSet GroupTps(int rel) const { return groups_[rel]; }
  /// Union of the patterns of all groups in `rels`.
  TpSet ExpandTps(TpSet rels) const;
  int MaxJoinVarDegree() const;

 private:
  const JoinGraph* base_;
  std::vector<TpSet> groups_;
  std::vector<VarId> join_vars_;
  std::vector<TpSet> rel_ntp_;        // per base VarId: mask over groups
  std::vector<std::vector<VarId>> rel_join_vars_;  // per group
  std::vector<TpSet> adjacent_;       // per group
};

}  // namespace parqo

#endif  // PARQO_OPTIMIZER_GROUPED_GRAPH_H_
