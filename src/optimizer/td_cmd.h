// TD-CMD and TD-CMDP (Sections III and IV-A): Algorithm 1 instantiated on
// the raw join graph, with triple-pattern scans as leaves.

#ifndef PARQO_OPTIMIZER_TD_CMD_H_
#define PARQO_OPTIMIZER_TD_CMD_H_

#include "optimizer/optimizer.h"
#include "optimizer/td_cmd_core.h"

namespace parqo {

/// `pruned` selects TD-CMDP (Rules 1-3) instead of plain TD-CMD.
OptimizeResult RunTdCmd(const OptimizerInputs& inputs,
                        const OptimizeOptions& options, bool pruned);

/// Ablation entry point: run Algorithm 1 with an arbitrary combination of
/// the Section IV-A pruning rules (see bench/bench_ablation.cc).
OptimizeResult RunTdCmdWithRules(const OptimizerInputs& inputs,
                                 const OptimizeOptions& options,
                                 const TdCmdRules& rules);

/// Maps the enumerator-internal abort cause onto the public one.
inline AbortCause ToAbortCause(TdAbortCause cause) {
  switch (cause) {
    case TdAbortCause::kNone: return AbortCause::kNone;
    case TdAbortCause::kTimeout: return AbortCause::kTimeout;
    case TdAbortCause::kMemoCap: return AbortCause::kMemoCap;
    case TdAbortCause::kDeadline: return AbortCause::kDeadline;
  }
  return AbortCause::kNone;
}

}  // namespace parqo

#endif  // PARQO_OPTIMIZER_TD_CMD_H_
