// Connected multi-division enumeration — Algorithm 3 of the paper.
//
// A connected multi-division (cmd) of a query Q on join variable v_j is a
// partition (SQ1, ..., SQk, v_j), k >= 2, of Q into connected subqueries
// that each contain a pattern of N_tp(v_j) (Definition 3). Each cmd is one
// candidate k-way join operator. The enumeration peels connected
// binary-divisions off recursively: the part containing the current anchor
// is pushed onto a stack and the remainder is split further, which yields
// every cmd exactly once (Theorem 2) at O(|V_T|) amortized cost per cmd
// (Lemma 3).
//
// Mode kCcmdAndBinary implements TD-CMDP's Rule 1 (Section IV-A): emit all
// binary divisions, but for k > 2 emit only connected
// complete-multi-divisions (ccmds), in which every part contains exactly
// one pattern of N_tp(v_j).

#ifndef PARQO_OPTIMIZER_CMD_ENUMERATOR_H_
#define PARQO_OPTIMIZER_CMD_ENUMERATOR_H_

#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/tp_set.h"
#include "optimizer/cbd_enumerator.h"
#include "query/join_graph.h"

namespace parqo {

enum class CmdMode {
  kAll,            ///< TD-CMD: every connected multi-division.
  kCcmdAndBinary,  ///< TD-CMDP Rule 1: binary divisions + ccmds only.
  /// Binary divisions only (k = 2). With this mode Algorithm 1 degrades
  /// to a classical binary bushy-plan optimizer — the plan space of
  /// TriAD's DP [8], which the paper uses to argue for multi-way joins.
  kBinaryOnly,
};

/// Reusable per-worker scratch for EnumerateCmds/EnumerateCmdsOnVar: the
/// part stack of Algorithm 3 plus the nested cbd enumeration's pools.
/// One per enumeration worker (see td_cmd_core.h's Ctx); never shared
/// across threads.
struct CmdEnumScratch {
  ScratchPool<TpSet> stack;
  CbdScratch cbd;
};

/// Enumerates the multi-divisions of `q` on a single join variable `vj`.
/// `emit(parts, vj)` receives all k parts; parts are valid only during the
/// call. Returns false iff an emit callback returned false (abort).
/// Requires q connected and Degree(vj, q) >= 2. `scratch` makes repeated
/// enumeration allocation-free; hot callers pass their worker's pool.
template <typename Graph, typename EmitFn>
bool EnumerateCmdsOnVar(const Graph& graph, TpSet q, VarId vj, CmdMode mode,
                        EmitFn&& emit, CmdEnumScratch* scratch) {
  struct Context {
    const Graph& graph;
    TpSet q;  // the divided (sub)query, for the debug division contract
    VarId vj;
    CmdMode mode;
    EmitFn& emit;
    CmdEnumScratch& scratch;
    // Leased from scratch.stack for the duration of the call.
    std::vector<TpSet>& stack;
    bool stack_complete = true;  // all stacked parts have exactly 1 neighbor

    /// Definition 3 contract of every emitted division, checked in debug
    /// builds: k >= 2 non-empty connected blocks, pairwise disjoint,
    /// covering q, each incident to v_j.
    bool DivisionContractHolds() const {
      TpSet seen;
      for (TpSet part : stack) {
        if (part.Empty() || part.Intersects(seen)) return false;
        if (!graph.IsConnected(part)) return false;
        if (graph.Degree(vj, part) == 0) return false;
        seen |= part;
      }
      return seen == q && stack.size() >= 2;
    }

    bool Recurse(TpSet sql) {
      if (!stack.empty()) {
        bool do_emit = true;
        if (mode == CmdMode::kCcmdAndBinary && stack.size() >= 2) {
          // k >= 3: only ccmds survive Rule 1. Stacked parts are already
          // single-neighbor by the pruned recursion below; check the tail.
          do_emit =
              stack_complete && graph.Degree(vj, sql) == 1;
        }
        if (do_emit) {
          stack.push_back(sql);
          PARQO_DCHECK(DivisionContractHolds());
          bool keep_going = emit(std::span<const TpSet>(stack), vj);
          stack.pop_back();
          if (!keep_going) return false;
        }
        if (mode == CmdMode::kBinaryOnly) return true;  // k = 2 only
      }
      if (graph.Degree(vj, sql) < 2) return true;  // cannot split further
      if (mode == CmdMode::kCcmdAndBinary && !stack.empty() &&
          !stack_complete) {
        // A stacked multi-neighbor part rules out any deeper ccmd.
        return true;
      }
      return EnumerateCbds(
          graph, sql, vj,
          [&](TpSet sq1, TpSet sq2) {
            if (mode == CmdMode::kCcmdAndBinary && !stack.empty() &&
                graph.Degree(vj, sq1) != 1) {
              // This branch could only produce non-complete k>=3 divisions.
              return true;
            }
            bool saved = stack_complete;
            stack_complete = saved && graph.Degree(vj, sq1) == 1;
            stack.push_back(sq1);
            bool ok = Recurse(sq2);
            stack.pop_back();
            stack_complete = saved;
            return ok;
          },
          &scratch.cbd);
    }
  };

  ScratchPool<TpSet>::Lease stack(scratch->stack);
  Context ctx{graph, q, vj, mode, emit, *scratch, *stack, true};
  return ctx.Recurse(q);
}

/// Convenience overload with call-local scratch (tests, one-off callers).
template <typename Graph, typename EmitFn>
bool EnumerateCmdsOnVar(const Graph& graph, TpSet q, VarId vj, CmdMode mode,
                        EmitFn&& emit) {
  CmdEnumScratch scratch;
  return EnumerateCmdsOnVar(graph, q, vj, mode,
                            std::forward<EmitFn>(emit), &scratch);
}

/// Enumerates D_cmd(q): the multi-divisions of `q` over every join
/// variable (Algorithm 3's outer loop). Returns false on abort.
template <typename Graph, typename EmitFn>
bool EnumerateCmds(const Graph& graph, TpSet q, CmdMode mode, EmitFn&& emit,
                   CmdEnumScratch* scratch) {
  for (VarId vj : graph.join_vars()) {
    if (graph.Degree(vj, q) < 2) continue;
    if (!EnumerateCmdsOnVar(graph, q, vj, mode, emit, scratch)) {
      return false;
    }
  }
  return true;
}

/// Convenience overload with call-local scratch (tests, one-off callers).
template <typename Graph, typename EmitFn>
bool EnumerateCmds(const Graph& graph, TpSet q, CmdMode mode,
                   EmitFn&& emit) {
  CmdEnumScratch scratch;
  return EnumerateCmds(graph, q, mode, std::forward<EmitFn>(emit),
                       &scratch);
}

}  // namespace parqo

#endif  // PARQO_OPTIMIZER_CMD_ENUMERATOR_H_
