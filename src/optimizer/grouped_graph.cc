#include "optimizer/grouped_graph.h"

#include <utility>

#include "common/status.h"

namespace parqo {

GroupedJoinGraph::GroupedJoinGraph(const JoinGraph& base,
                                   std::vector<TpSet> groups)
    : base_(&base), groups_(std::move(groups)) {
  PARQO_CHECK(!groups_.empty());
  PARQO_CHECK(groups_.size() <= TpSet::kMaxSize);
  TpSet covered;
  for (TpSet g : groups_) {
    PARQO_CHECK(!g.Empty());
    PARQO_CHECK(!g.Intersects(covered));
    covered |= g;
  }
  PARQO_CHECK(covered == base.AllTps());

  rel_ntp_.assign(base.num_vars(), TpSet{});
  for (VarId v = 0; v < base.num_vars(); ++v) {
    for (int rel = 0; rel < num_tps(); ++rel) {
      if (base.Ntp(v).Intersects(groups_[rel])) rel_ntp_[v].Add(rel);
    }
  }
  for (VarId v = 0; v < base.num_vars(); ++v) {
    if (rel_ntp_[v].Count() >= 2) join_vars_.push_back(v);
  }

  rel_join_vars_.resize(num_tps());
  adjacent_.assign(num_tps(), TpSet{});
  for (int rel = 0; rel < num_tps(); ++rel) {
    for (VarId v : join_vars_) {
      if (rel_ntp_[v].Contains(rel)) {
        rel_join_vars_[rel].push_back(v);
        adjacent_[rel] |= rel_ntp_[v];
      }
    }
    adjacent_[rel].Remove(rel);
  }
}

TpSet GroupedJoinGraph::AdjacentExcluding(int rel, VarId vj) const {
  TpSet out;
  for (VarId v : rel_join_vars_[rel]) {
    if (v != vj) out |= rel_ntp_[v];
  }
  out.Remove(rel);
  return out;
}

TpSet GroupedJoinGraph::NeighborsOf(TpSet rels) const {
  TpSet out;
  for (int rel : rels) out |= adjacent_[rel];
  return out - rels;
}

bool GroupedJoinGraph::IsConnected(TpSet rels) const {
  if (rels.Count() <= 1) return true;
  TpSet comp = TpSet::Singleton(rels.First());
  TpSet frontier = comp;
  while (!frontier.Empty()) {
    TpSet next;
    for (int rel : frontier) next |= adjacent_[rel];
    next &= rels;
    next -= comp;
    comp |= next;
    frontier = next;
  }
  return comp == rels;
}

TpSet GroupedJoinGraph::ComponentOfExcluding(int seed, TpSet within,
                                             VarId vj) const {
  TpSet comp = TpSet::Singleton(seed);
  TpSet frontier = comp;
  while (!frontier.Empty()) {
    TpSet next;
    for (int rel : frontier) next |= AdjacentExcluding(rel, vj);
    next &= within;
    next -= comp;
    comp |= next;
    frontier = next;
  }
  return comp;
}

std::vector<TpSet> GroupedJoinGraph::ComponentsExcluding(TpSet within,
                                                         VarId vj) const {
  std::vector<TpSet> out;
  ComponentsExcluding(within, vj, &out);
  return out;
}

void GroupedJoinGraph::ComponentsExcluding(TpSet within, VarId vj,
                                           std::vector<TpSet>* out) const {
  out->clear();
  TpSet rest = within;
  while (!rest.Empty()) {
    TpSet comp = ComponentOfExcluding(rest.First(), rest, vj);
    out->push_back(comp);
    rest -= comp;
  }
}

TpSet GroupedJoinGraph::ExpandTps(TpSet rels) const {
  TpSet out;
  for (int rel : rels) out |= groups_[rel];
  return out;
}

int GroupedJoinGraph::MaxJoinVarDegree() const {
  int best = 0;
  for (VarId v : join_vars_) {
    int d = rel_ntp_[v].Count();
    if (d > best) best = d;
  }
  return best;
}

}  // namespace parqo
