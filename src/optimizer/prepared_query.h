// Owns everything the optimizer needs for one query — join graph, query
// graph, maximal-local-query index, statistics, and estimator — built in
// the right order from a pattern list, a partitioner, and a statistics
// source. Benches, tests, and examples use this instead of wiring the
// five structures by hand.

#ifndef PARQO_OPTIMIZER_PREPARED_QUERY_H_
#define PARQO_OPTIMIZER_PREPARED_QUERY_H_

#include <functional>
#include <memory>
#include <vector>

#include "optimizer/optimizer.h"
#include "partition/local_query_index.h"
#include "query/join_graph.h"
#include "query/query_graph.h"
#include "rdf/graph.h"
#include "stats/data_stats.h"
#include "stats/estimator.h"

namespace parqo {

/// Produces the per-pattern statistics once the join graph (and hence the
/// VarId space) exists.
using StatsSource = std::function<QueryStatistics(const JoinGraph&)>;

/// A StatsSource computing exact statistics from a dataset.
StatsSource StatsFromData(const RdfGraph& graph);

/// As above with explicit options (e.g. measured pairwise join
/// cardinalities for the estimator's refined selectivities).
StatsSource StatsFromData(const RdfGraph& graph,
                          const DataStatsOptions& opts);

class PreparedQuery {
 public:
  PreparedQuery(std::vector<TriplePattern> patterns,
                const Partitioner& partitioner, const StatsSource& stats);

  PreparedQuery(const PreparedQuery&) = delete;
  PreparedQuery& operator=(const PreparedQuery&) = delete;

  const JoinGraph& join_graph() const { return *join_graph_; }
  const QueryGraph& query_graph() const { return *query_graph_; }
  const LocalQueryIndex& local_index() const { return *local_index_; }
  const CardinalityEstimator& estimator() const { return *estimator_; }

  /// Borrowed views for Optimize(); valid while this object lives.
  OptimizerInputs inputs() const;

 private:
  std::unique_ptr<JoinGraph> join_graph_;
  std::unique_ptr<QueryGraph> query_graph_;
  std::unique_ptr<LocalQueryIndex> local_index_;
  std::unique_ptr<CardinalityEstimator> estimator_;
};

}  // namespace parqo

#endif  // PARQO_OPTIMIZER_PREPARED_QUERY_H_
