#include "optimizer/plan_validator.h"

#include <cmath>
#include <string>
#include <vector>

namespace parqo {
namespace {

/// Partition property of an intermediate result (Section II-D). Base means
/// "partitioned like the stored data" (subject-hash co-location); hashed
/// means "hash-partitioned on one join variable" as established by a
/// repartition operator.
struct PartitionProperty {
  enum class Kind { kBase, kHashed } kind = Kind::kBase;
  VarId var = kInvalidVarId;  ///< The hash variable when kind == kHashed.
};

Status Fail(const std::string& what, const PlanNode& node) {
  return Status::Internal("invalid plan: " + what + " at node covering " +
                          node.tps.ToString());
}

bool FiniteNonNegative(double x) { return std::isfinite(x) && x >= 0; }

class Checker {
 public:
  Checker(const JoinGraph& jg, const LocalQueryIndex* local_index,
          const CardinalityEstimator* estimator, const CostModel* cost_model)
      : jg_(jg),
        local_index_(local_index),
        estimator_(estimator),
        cost_model_(cost_model) {}

  Status Validate(const PlanNode& node, PartitionProperty* prop_out) {
    if (node.kind == PlanNode::Kind::kScan) {
      return ValidateScan(node, prop_out);
    }
    return ValidateJoin(node, prop_out);
  }

 private:
  Status ValidateScan(const PlanNode& node, PartitionProperty* prop_out) {
    if (node.tp < 0 || node.tp >= jg_.num_tps()) {
      return Fail("scan of nonexistent pattern", node);
    }
    if (node.tps != TpSet::Singleton(node.tp)) {
      return Fail("scan tps mismatch", node);
    }
    if (!node.children.empty()) return Fail("scan with children", node);
    if (!FiniteNonNegative(node.cardinality)) {
      return Fail("scan cardinality not finite and non-negative", node);
    }
    if (node.op_cost != 0 || node.total_cost != 0) {
      return Fail("scan with nonzero cost", node);
    }
    if (estimator_ != nullptr &&
        node.cardinality != estimator_->Cardinality(node.tps)) {
      return Fail("scan cardinality differs from the estimator's", node);
    }
    // Stored triples are in the data partitioning.
    *prop_out = PartitionProperty{PartitionProperty::Kind::kBase,
                                  kInvalidVarId};
    return Status::Ok();
  }

  Status ValidateJoin(const PlanNode& node, PartitionProperty* prop_out) {
    if (node.children.size() < 2) {
      return Fail("join with fewer than 2 inputs", node);
    }

    // Division blocks: pairwise disjoint, cover the parent, connected.
    TpSet seen;
    for (const PlanNodePtr& c : node.children) {
      if (c == nullptr) return Fail("null child", node);
      if (c->tps.Empty()) return Fail("child covering no patterns", node);
      if (c->tps.Intersects(seen)) return Fail("children overlap", node);
      seen |= c->tps;
    }
    if (seen != node.tps) return Fail("children do not cover node", node);
    if (!jg_.IsConnected(node.tps)) {
      return Fail("disconnected subquery (Cartesian product)", node);
    }

    // Children first: their partition properties feed this operator's
    // legality check, and their costs feed the Eq. 3 recomputation.
    std::vector<PartitionProperty> child_props(node.children.size());
    double max_child_total = 0;
    std::vector<double> input_cards;
    input_cards.reserve(node.children.size());
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      const PlanNode& c = *node.children[i];
      PARQO_RETURN_IF_ERROR(Validate(c, &child_props[i]));
      max_child_total = std::max(max_child_total, c.total_cost);
      input_cards.push_back(c.cardinality);
    }

    PARQO_RETURN_IF_ERROR(ValidateMethod(node, child_props, prop_out));

    if (!FiniteNonNegative(node.cardinality)) {
      return Fail("cardinality not finite and non-negative", node);
    }
    if (!FiniteNonNegative(node.op_cost) ||
        !FiniteNonNegative(node.total_cost)) {
      return Fail("cost not finite and non-negative", node);
    }
    if (node.total_cost < node.op_cost ||
        node.total_cost < max_child_total) {
      return Fail("total cost below operator or child cost (Eq. 3)", node);
    }
    if (estimator_ != nullptr &&
        node.cardinality != estimator_->Cardinality(node.tps)) {
      return Fail("cardinality differs from the estimator's", node);
    }
    if (cost_model_ != nullptr) {
      double op = cost_model_->JoinOpCost(node.method, input_cards,
                                          node.cardinality);
      if (node.op_cost != op) {
        return Fail("operator cost differs from the Eq. 4 recomputation",
                    node);
      }
      if (node.total_cost != max_child_total + node.op_cost) {
        return Fail("total cost differs from the Eq. 3 recomputation", node);
      }
    }
    return Status::Ok();
  }

  Status ValidateMethod(const PlanNode& node,
                        const std::vector<PartitionProperty>& child_props,
                        PartitionProperty* prop_out) {
    switch (node.method) {
      case JoinMethod::kLocal: {
        if (node.join_var != kInvalidVarId) {
          return Fail("local join with a join variable", node);
        }
        if (local_index_ != nullptr && !local_index_->IsLocal(node.tps)) {
          return Fail("local join of a non-local subquery", node);
        }
        // A local join needs its inputs co-located with the stored data;
        // an input that a repartition operator re-hashed is not (II-D).
        for (const PartitionProperty& p : child_props) {
          if (p.kind != PartitionProperty::Kind::kBase) {
            return Fail("local join over a re-partitioned input "
                        "(illegal partition-property claim)",
                        node);
          }
        }
        *prop_out = PartitionProperty{PartitionProperty::Kind::kBase,
                                      kInvalidVarId};
        return Status::Ok();
      }
      case JoinMethod::kBroadcast:
      case JoinMethod::kRepartition: {
        if (node.join_var == kInvalidVarId) {
          return Fail("distributed join without a join variable", node);
        }
        TpSet ntp = jg_.Ntp(node.join_var);
        for (const PlanNodePtr& c : node.children) {
          if (!c->tps.Intersects(ntp)) {
            return Fail("child does not contain the join variable "
                        "(Definition 3 condition 3)",
                        node);
          }
        }
        if (node.method == JoinMethod::kBroadcast) {
          // The k-1 smaller inputs ship to the largest input's nodes, so
          // the result inherits the largest input's partitioning.
          std::size_t largest = 0;
          for (std::size_t i = 1; i < node.children.size(); ++i) {
            if (node.children[i]->cardinality >
                node.children[largest]->cardinality) {
              largest = i;
            }
          }
          *prop_out = child_props[largest];
        } else {
          *prop_out = PartitionProperty{PartitionProperty::Kind::kHashed,
                                        node.join_var};
        }
        return Status::Ok();
      }
    }
    return Fail("unknown join method", node);
  }

  const JoinGraph& jg_;
  const LocalQueryIndex* local_index_;
  const CardinalityEstimator* estimator_;
  const CostModel* cost_model_;
};

}  // namespace

Status PlanValidator::ValidateSubplan(const PlanNode& plan) const {
  PartitionProperty prop;
  return Checker(*jg_, local_index_, estimator_, cost_model_)
      .Validate(plan, &prop);
}

Status PlanValidator::ValidatePlan(const PlanNode& plan) const {
  if (plan.tps != jg_->AllTps()) {
    return Status::Internal("plan does not cover the whole query: " +
                            plan.tps.ToString());
  }
  return ValidateSubplan(plan);
}

Status PlanValidator::ValidateMemoEntry(TpSet key_tps,
                                        const PlanNode& plan) const {
  if (plan.tps != key_tps) {
    return Status::Internal("memo entry keyed by " + key_tps.ToString() +
                            " stores a plan covering " + plan.tps.ToString());
  }
  if (!jg_->IsConnected(key_tps)) {
    return Status::Internal("memo polluted by disconnected subquery " +
                            key_tps.ToString());
  }
  return ValidateSubplan(plan);
}

}  // namespace parqo
