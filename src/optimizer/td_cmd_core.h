// Top-down join enumeration with memoization — Algorithm 1 of the paper.
//
// GetBestPlan recursively finds the cheapest k-ary bushy plan of a
// (sub)query: it enumerates the connected multi-divisions (each cmd is one
// candidate k-way join), recursively optimizes every part, builds broadcast
// and repartition variants of the operator, and keeps the cheapest plan in
// a memo table keyed by the subquery bitset. Local queries additionally get
// the single-operator local-join plan (line 10); with Rule 3 (TD-CMDP) the
// local plan short-circuits the enumeration entirely.
//
// The core is a template over the Graph concept (JoinGraph or
// GroupedJoinGraph) and over the three hook functors mapping graph elements
// to plans, which is what lets the identical code drive TD-CMD, TD-CMDP,
// and the reduced-graph phase of HGR-TD-CMD — and, with relations instead
// of triple patterns, relational multi-way join ordering. The hooks are
// template parameters (not std::function) so the hottest recursion makes
// direct calls; construct with CTAD: `TdCmdCore core(graph, builder, ...)`.
//
// Memory management (DESIGN.md §12): enumeration constructs candidates,
// not shared plan nodes. Every subplan is a PlanCandidate allocated from a
// bump-pointer Arena via the arena-taking hooks and PlanBuilder::JoinIn,
// the memo tables are flat open-addressed FlatTpSetMaps storing raw
// candidate pointers, and only the winning root candidate is deep-copied
// into the PlanNodePtr representation the rest of the system consumes.
// Losing candidates are never freed individually; they die wholesale with
// the core's arenas. The sequential path owns one arena; RunParallel gives
// each chunk its own (workers publish memo entries across arenas, so every
// arena lives as long as the core). Nothing is reset between runs — a
// repeated Run() keeps its warm memo, whose entries point into the arenas.
//
// RunParallel fans the root-level cmds out to a worker pool. Workers share
// a shard-striped memo (kMemoShards mutex-guarded flat maps keyed by
// TpSetHash) so subproblem plans are reused across branches, the
// deadline/memo-cap abort is an atomic flag probed on the sequential
// path's cadence, and the root reduction tie-breaks equal-cost candidates
// by canonical enumeration index — so parallel and sequential runs return
// plans of identical cost (and shape) for every query. Racing workers may
// derive the same subquery twice; both derive the identical plan (the
// recursion is a pure function of the bitset given the shared,
// deterministic estimator), so first-insert-wins keeps the memo
// consistent.

#ifndef PARQO_OPTIMIZER_TD_CMD_CORE_H_
#define PARQO_OPTIMIZER_TD_CMD_CORE_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/check.h"
#include "common/flat_map.h"
#include "common/scratch_pool.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/tp_set.h"
#include "optimizer/cmd_enumerator.h"
#include "optimizer/plan_validator.h"
#include "plan/plan.h"

namespace parqo {

/// Search-space knobs. TD-CMD uses the defaults; TD-CMDP enables all three
/// pruning rules of Section IV-A.
struct TdCmdRules {
  CmdMode cmd_mode = CmdMode::kAll;   ///< Rule 1 when kCcmdAndBinary.
  bool binary_broadcast_only = false; ///< Rule 2.
  bool local_short_circuit = false;   ///< Rule 3.
  /// Memo-table ceiling: a backstop against exhausting memory on huge
  /// dense queries before the wall-clock timeout fires (treated exactly
  /// like a timeout). ~4M entries is a few hundred MB of plans.
  std::size_t memo_cap = std::size_t{1} << 22;
  /// Mid-run invariant validation (OptimizeOptions::validate): every
  /// enumerated division is checked against the Definition 3 contract and
  /// every candidate operator's cost against finiteness and the
  /// "memoized best is cheapest" invariant. Violations abort.
  bool validate = false;
};

/// Why an enumeration run gave up. kTimeout and kMemoCap are reported as
/// timed_out with a null plan, matching the paper's single 600 s cutoff.
/// kDeadline (OptimizeOptions::deadline, a hard wall-clock budget) instead
/// degrades gracefully: the run returns the best *complete* plan derived
/// so far, which callers may further back stop with MSC.
enum class TdAbortCause { kNone, kTimeout, kMemoCap, kDeadline };

struct TdCmdStats {
  std::uint64_t enumerated_cmds = 0;  ///< Table VII's search-space size.
  std::uint64_t memo_entries = 0;
  std::uint64_t memo_hits = 0;    ///< Subproblems answered from the memo.
  std::uint64_t memo_misses = 0;  ///< Subproblems derived fresh.
  /// Rule-3 short circuits: local subqueries whose cmd enumeration was
  /// skipped entirely (each one prunes a whole subtree of the search).
  std::uint64_t local_short_circuits = 0;
  bool timed_out = false;
  TdAbortCause abort_cause = TdAbortCause::kNone;
  /// RunParallel only: worker count, chunk count, and the summed busy
  /// seconds across chunk executions. busy_seconds / (workers * wall)
  /// is the utilization of the parallel fan-out.
  int workers = 1;
  int chunks = 0;
  double busy_seconds = 0;
};

template <typename Graph, typename LeafPlanFn, typename IsLocalFn,
          typename LocalPlanFn>
class TdCmdCore {
 public:
  /// `leaf_plan(arena, i)` supplies the candidate plan of single relation
  /// i, allocated in `arena`. `is_local(s)` answers whether relation set s
  /// is a local query, and `local_plan(arena, s)` builds its one-operator
  /// local candidate (|s| >= 2).
  TdCmdCore(const Graph& graph, const PlanBuilder& builder, TdCmdRules rules,
            LeafPlanFn leaf_plan, IsLocalFn is_local, LocalPlanFn local_plan,
            double timeout_seconds = 600.0,
            Deadline deadline = Deadline::Infinite())
      : graph_(graph),
        builder_(builder),
        rules_(rules),
        leaf_plan_(std::move(leaf_plan)),
        is_local_(std::move(is_local)),
        local_plan_(std::move(local_plan)),
        timeout_seconds_(timeout_seconds),
        deadline_(deadline) {}

  /// Optimizes the full query single-threaded. Returns nullptr on timeout;
  /// on deadline expiry returns the best complete plan found so far
  /// (possibly null when the deadline fired before any plan completed).
  PlanNodePtr Run() {
    stopwatch_.Restart();
    ResetRunState();
    Ctx ctx;
    ctx.arena = &arena_;
    const PlanCandidate* plan =
        GetBestPlan<false>(graph_.AllTps(), /*is_local=*/false, ctx);
    stats_.enumerated_cmds = ctx.enumerated;
    stats_.memo_entries = memo_.size();
    FlushCtx(ctx);
    FinishStats();
    if (!KeepPlanOnAbort() || plan == nullptr) return nullptr;
    return MaterializePlan(*plan);
  }

  /// Optimizes the full query with up to `num_threads` workers drawn from
  /// `pool` (the caller participates, so nesting inside a pool task is
  /// safe). Falls back to Run() when num_threads <= 1. Returns a plan of
  /// cost identical to Run()'s, or nullptr on timeout.
  PlanNodePtr RunParallel(ThreadPool& pool, int num_threads) {
    if (num_threads <= 1) return Run();
    stopwatch_.Restart();
    ResetRunState();
    memo_size_.store(0, std::memory_order_relaxed);
    stats_.workers = num_threads;

    TpSet all = graph_.AllTps();
    if (all.Count() == 1) {
      return MaterializePlan(*leaf_plan_(arena_, all.First()));
    }
    bool root_local = is_local_(all);
    if (root_local && rules_.local_short_circuit) {
      stats_.local_short_circuits = 1;
      // Rule 3, same as the sequential path.
      return MaterializePlan(*local_plan_(arena_, all));
    }

    // Materialize the root-level cmds in canonical enumeration order;
    // the index into this vector is the determinism tie-breaker.
    struct RootCmd {
      std::vector<TpSet> parts;
      VarId vj;
    };
    std::vector<RootCmd> cmds;
    Ctx root_ctx;
    root_ctx.arena = &arena_;
    EnumerateCmds(
        graph_, all, rules_.cmd_mode,
        [&](std::span<const TpSet> parts, VarId vj) {
          ++root_ctx.enumerated;
          if (!CheckDeadline<true>(root_ctx)) return false;
          if (rules_.validate) {
            PARQO_CHECK_OK(ValidateDivision(graph_, all, parts, vj));
          }
          cmds.emplace_back(RootCmd{
              std::vector<TpSet>(parts.begin(), parts.end()), vj});
          return true;
        },
        &root_ctx.enum_scratch);
    if (Aborted()) {
      stats_.enumerated_cmds = root_ctx.enumerated;
      FlushCtx(root_ctx);
      FinishStats();
      // Deadline expiry during root materialization mirrors the
      // sequential path, whose root scan is seeded with the local plan.
      if (KeepPlanOnAbort() && root_local) {
        return MaterializePlan(*local_plan_(arena_, all));
      }
      return nullptr;
    }

    // A candidate root operator: (cost, canonical index) orders exactly
    // like the sequential strict-< "first cheapest wins" scan.
    struct Candidate {
      double cost = std::numeric_limits<double>::infinity();
      std::int64_t index = std::numeric_limits<std::int64_t>::max();
      const PlanCandidate* plan = nullptr;
      void Offer(double c, std::int64_t i, const PlanCandidate* p) {
        if (c < cost || (c == cost && i < index)) {
          cost = c;
          index = i;
          plan = p;
        }
      }
    };

    // Contiguous chunks keep per-chunk winners comparable by global index.
    const int num_chunks = static_cast<int>(
        std::min(cmds.size(), static_cast<std::size_t>(num_threads) * 4));
    std::vector<Candidate> chunk_best(std::max(num_chunks, 1));
    // validate only: cheapest alternative each chunk saw, for the
    // "winner is no worse than every recorded alternative" cross-check.
    std::vector<double> chunk_min(
        std::max(num_chunks, 1), std::numeric_limits<double>::infinity());
    std::atomic<std::uint64_t> enumerated{0};

    // One arena per chunk, each kept alive for the lifetime of the core:
    // memo entries allocated by one chunk are read by every other worker
    // (and by ForEachMemoEntry after the run). Repeated runs reuse them —
    // never Reset() here, the warm memo still points into them.
    while (chunk_arenas_.size() < static_cast<std::size_t>(num_chunks)) {
      chunk_arenas_.push_back(std::make_unique<Arena>());
    }

    if (num_chunks > 0) {
      pool.ParallelFor(
          num_chunks,
          [&](int chunk) {
            Stopwatch chunk_watch;
            Ctx ctx;
            ctx.arena = chunk_arenas_[chunk].get();
            Candidate best;
            const std::size_t lo = cmds.size() * chunk / num_chunks;
            const std::size_t hi = cmds.size() * (chunk + 1) / num_chunks;
            std::vector<const PlanCandidate*> children;
            for (std::size_t i = lo; i < hi; ++i) {
              // Root cmds were counted during materialization; only probe.
              if (!CheckDeadline<true>(ctx)) break;
              const RootCmd& cmd = cmds[i];
              children.clear();
              for (TpSet part : cmd.parts) {
                children.push_back(GetBestPlan<true>(part, root_local, ctx));
                if (Aborted()) break;
              }
              if (Aborted()) break;
              bool broadcast_ok = !rules_.binary_broadcast_only ||
                                  cmd.parts.size() == 2;  // Rule 2
              if (broadcast_ok) {
                const PlanCandidate* cand = builder_.JoinIn(
                    *ctx.arena, JoinMethod::kBroadcast, cmd.vj, children);
                if (rules_.validate) {
                  PARQO_CHECK(std::isfinite(cand->total_cost) &&
                              cand->total_cost >= 0);
                  chunk_min[chunk] =
                      std::min(chunk_min[chunk], cand->total_cost);
                }
                best.Offer(cand->total_cost, static_cast<std::int64_t>(2 * i),
                           cand);
              }
              const PlanCandidate* cand = builder_.JoinIn(
                  *ctx.arena, JoinMethod::kRepartition, cmd.vj, children);
              if (rules_.validate) {
                PARQO_CHECK(std::isfinite(cand->total_cost) &&
                            cand->total_cost >= 0);
                chunk_min[chunk] =
                    std::min(chunk_min[chunk], cand->total_cost);
              }
              best.Offer(cand->total_cost,
                         static_cast<std::int64_t>(2 * i + 1), cand);
            }
            chunk_best[chunk] = std::move(best);
            enumerated.fetch_add(ctx.enumerated, std::memory_order_relaxed);
            FlushCtx(ctx);
            busy_us_acc_.fetch_add(
                static_cast<std::uint64_t>(chunk_watch.ElapsedSeconds() *
                                           1e6),
                std::memory_order_relaxed);
          },
          num_threads);
    }

    Candidate best;
    if (root_local) {
      // Algorithm 1 line 10 seeds the scan with the local plan; index -1
      // reproduces "cmds must be strictly cheaper to displace it".
      const PlanCandidate* local = local_plan_(arena_, all);
      best.Offer(local->total_cost, -1, local);
    }
    for (Candidate& c : chunk_best) {
      if (c.plan != nullptr) best.Offer(c.cost, c.index, c.plan);
    }
    if (rules_.validate && best.plan != nullptr && !Aborted()) {
      for (double m : chunk_min) PARQO_CHECK(best.cost <= m);
    }

    stats_.enumerated_cmds =
        root_ctx.enumerated + enumerated.load(std::memory_order_relaxed);
    stats_.memo_entries = memo_size_.load(std::memory_order_relaxed);
    stats_.chunks = num_chunks;
    FlushCtx(root_ctx);
    FinishStats();
    if (!KeepPlanOnAbort() || best.plan == nullptr) return nullptr;
    return MaterializePlan(*best.plan);
  }

  const TdCmdStats& stats() const { return stats_; }

  /// Post-run inspection of the memo (both the sequential map and the
  /// parallel shards), for OptimizeOptions::validate wiring and tests.
  /// Each candidate entry is materialized into a fresh PlanNodePtr for the
  /// visitor — this is the validation cold path, never enumeration. Not
  /// thread-safe against a concurrent run.
  template <typename Fn>
  void ForEachMemoEntry(Fn&& fn) const {
    memo_.ForEach([&](TpSet q, const PlanCandidate* plan) {
      fn(q, plan != nullptr ? MaterializePlan(*plan) : nullptr);
    });
    for (const MemoShard& shard : shards_) {
      // Post-run cold path; the lock is uncontended but keeps this read
      // honest under the thread-safety analysis (and safe if a caller
      // ever races it with a run despite the documented contract).
      MutexLock lock(shard.mu);
      shard.map.ForEach([&](TpSet q, const PlanCandidate* plan) {
        fn(q, plan != nullptr ? MaterializePlan(*plan) : nullptr);
      });
    }
  }

 private:
  /// Per-worker (or per-run, sequentially) mutable state: the worker's
  /// arena, the reusable enumeration scratch, the deadline probe counter,
  /// and the local share of the enumeration counter.
  struct Ctx {
    Arena* arena = nullptr;
    CmdEnumScratch enum_scratch;
    /// Depth-indexed reusable child-plan vectors for BestPlanGen's
    /// recursion (one live vector per recursion level).
    ScratchPool<const PlanCandidate*> children_pool;
    std::uint64_t probe = 0;
    std::uint64_t enumerated = 0;
    std::uint64_t memo_hits = 0;
    std::uint64_t memo_misses = 0;
    std::uint64_t local_sc = 0;
  };

  static constexpr std::size_t kMemoShards = 64;  // power of two

  struct MemoShard {
    /// Held only around the flat-map probe/publish; BestPlanGen's
    /// recursion (which re-enters sibling shards at this same rank) runs
    /// strictly outside it. Mutable so the post-run const inspection
    /// path (ForEachMemoEntry) can lock too.
    mutable Mutex mu{LockRank::kMemoShard};
    FlatTpSetMap<const PlanCandidate*> map PARQO_GUARDED_BY(mu);
  };

  bool Aborted() const { return aborted_.load(std::memory_order_relaxed); }

  /// Whether an end-of-run plan may be returned to the caller. Timeout and
  /// memo-cap aborts discard it (pre-deadline semantics, bit-identical for
  /// callers that never set a deadline); a deadline abort keeps the best
  /// complete plan. Candidates only ever enter `best` after all children
  /// derived cleanly (the enumeration loops re-probe Aborted() after every
  /// child), so a kept plan is always complete and correctly costed.
  bool KeepPlanOnAbort() const {
    if (!Aborted()) return true;
    return abort_cause_.load(std::memory_order_relaxed) ==
           static_cast<int>(TdAbortCause::kDeadline);
  }

  /// Folds a worker's (or the sequential run's) counters into the shared
  /// accumulators. Called once per chunk/run, never on the hot path.
  void FlushCtx(const Ctx& ctx) {
    memo_hits_acc_.fetch_add(ctx.memo_hits, std::memory_order_relaxed);
    memo_misses_acc_.fetch_add(ctx.memo_misses, std::memory_order_relaxed);
    local_sc_acc_.fetch_add(ctx.local_sc, std::memory_order_relaxed);
  }

  /// Copies the accumulators and abort state into stats_ at end of run.
  void FinishStats() {
    stats_.memo_hits = memo_hits_acc_.load(std::memory_order_relaxed);
    stats_.memo_misses = memo_misses_acc_.load(std::memory_order_relaxed);
    stats_.local_short_circuits =
        local_sc_acc_.load(std::memory_order_relaxed);
    stats_.busy_seconds =
        static_cast<double>(busy_us_acc_.load(std::memory_order_relaxed)) *
        1e-6;
    stats_.timed_out = Aborted();
    stats_.abort_cause = static_cast<TdAbortCause>(
        abort_cause_.load(std::memory_order_relaxed));
  }

  void ResetRunState() {
    aborted_.store(false, std::memory_order_relaxed);
    abort_cause_.store(static_cast<int>(TdAbortCause::kNone),
                       std::memory_order_relaxed);
    memo_hits_acc_.store(0, std::memory_order_relaxed);
    memo_misses_acc_.store(0, std::memory_order_relaxed);
    local_sc_acc_.store(0, std::memory_order_relaxed);
    busy_us_acc_.store(0, std::memory_order_relaxed);
    stats_ = TdCmdStats{};
    // Deliberately does NOT touch the memos or the arenas: a repeated run
    // reuses the warm memo, whose entries point into the arenas.
  }

  template <bool kParallel>
  bool CheckDeadline(Ctx& ctx) {
    if (Aborted()) return false;
    if ((++ctx.probe & 0x3ff) == 0) {
      std::size_t memo_size =
          kParallel ? memo_size_.load(std::memory_order_relaxed)
                    : memo_.size();
      if (deadline_.Expired()) {
        abort_cause_.store(static_cast<int>(TdAbortCause::kDeadline),
                           std::memory_order_relaxed);
        aborted_.store(true, std::memory_order_relaxed);
        return false;
      }
      if (stopwatch_.ElapsedSeconds() > timeout_seconds_) {
        abort_cause_.store(static_cast<int>(TdAbortCause::kTimeout),
                           std::memory_order_relaxed);
        aborted_.store(true, std::memory_order_relaxed);
        return false;
      }
      if (memo_size > rules_.memo_cap) {
        abort_cause_.store(static_cast<int>(TdAbortCause::kMemoCap),
                           std::memory_order_relaxed);
        aborted_.store(true, std::memory_order_relaxed);
        return false;
      }
    }
    return true;
  }

  template <bool kParallel>
  const PlanCandidate* GetBestPlan(TpSet q, bool is_local, Ctx& ctx) {
    if constexpr (kParallel) {
      MemoShard& shard = shards_[TpSetHash{}(q) & (kMemoShards - 1)];
      {
        MutexLock lock(shard.mu);
        if (const PlanCandidate* const* hit = shard.map.Find(q)) {
          ++ctx.memo_hits;
          return *hit;
        }
      }
      ++ctx.memo_misses;
      if (!is_local) is_local = is_local_(q);
      const PlanCandidate* plan = BestPlanGen<true>(q, is_local, ctx);
      if (!Aborted()) {
        MutexLock lock(shard.mu);
        if (shard.map.EmplaceFirstWins(q, plan).second) {
          memo_size_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      return plan;
    } else {
      if (const PlanCandidate* const* hit = memo_.Find(q)) {
        ++ctx.memo_hits;
        return *hit;
      }
      ++ctx.memo_misses;
      if (!is_local) is_local = is_local_(q);
      const PlanCandidate* plan = BestPlanGen<false>(q, is_local, ctx);
      if (!Aborted()) memo_.EmplaceFirstWins(q, plan);
      return plan;
    }
  }

  template <bool kParallel>
  const PlanCandidate* BestPlanGen(TpSet q, bool is_local, Ctx& ctx) {
    if (q.Count() == 1) return leaf_plan_(*ctx.arena, q.First());

    const PlanCandidate* best = nullptr;
    if (is_local) {
      best = local_plan_(*ctx.arena, q);
      if (rules_.local_short_circuit) {  // Rule 3
        ++ctx.local_sc;
        return best;
      }
    }

    double min_candidate = std::numeric_limits<double>::infinity();
    auto consider = [&](const PlanCandidate* cand) {
      if (rules_.validate) {
        PARQO_CHECK(std::isfinite(cand->total_cost) &&
                    cand->total_cost >= 0);
        min_candidate = std::min(min_candidate, cand->total_cost);
      }
      if (best == nullptr || cand->total_cost < best->total_cost) {
        best = cand;
      }
    };

    typename ScratchPool<const PlanCandidate*>::Lease children(
        ctx.children_pool);
    EnumerateCmds(
        graph_, q, rules_.cmd_mode,
        [&](std::span<const TpSet> parts, VarId vj) {
          ++ctx.enumerated;
          if (!CheckDeadline<kParallel>(ctx)) return false;
          if (rules_.validate) {
            PARQO_CHECK_OK(ValidateDivision(graph_, q, parts, vj));
          }

          children->clear();
          for (TpSet part : parts) {
            children->push_back(
                GetBestPlan<kParallel>(part, is_local, ctx));
            if (Aborted()) return false;
          }
          // Line 15-19: try each distributed join algorithm on this cmd.
          bool broadcast_ok =
              !rules_.binary_broadcast_only || parts.size() == 2;  // Rule 2
          if (broadcast_ok) {
            consider(builder_.JoinIn(*ctx.arena, JoinMethod::kBroadcast,
                                     vj, *children));
          }
          consider(builder_.JoinIn(*ctx.arena, JoinMethod::kRepartition,
                                   vj, *children));
          return true;
        },
        &ctx.enum_scratch);
    if (rules_.validate && best != nullptr && !Aborted()) {
      // The plan this subquery memoizes must be no worse than every
      // alternative recorded during its enumeration.
      PARQO_CHECK(best->total_cost <= min_candidate);
    }
    return best;
  }

  const Graph& graph_;
  const PlanBuilder& builder_;
  TdCmdRules rules_;
  LeafPlanFn leaf_plan_;
  IsLocalFn is_local_;
  LocalPlanFn local_plan_;
  double timeout_seconds_;
  Deadline deadline_;

  Stopwatch stopwatch_;
  std::atomic<bool> aborted_{false};
  std::atomic<int> abort_cause_{0};
  std::atomic<std::uint64_t> memo_hits_acc_{0};
  std::atomic<std::uint64_t> memo_misses_acc_{0};
  std::atomic<std::uint64_t> local_sc_acc_{0};
  std::atomic<std::uint64_t> busy_us_acc_{0};
  TdCmdStats stats_;
  /// Sequential-path arena and memo: no locking on the hot lookup.
  Arena arena_;
  FlatTpSetMap<const PlanCandidate*> memo_;
  /// Parallel-path memo: shard-striped, shared by all workers. Values are
  /// candidate pointers into the chunk arenas below.
  std::array<MemoShard, kMemoShards> shards_;
  std::atomic<std::size_t> memo_size_{0};
  /// One arena per parallel chunk, created on demand and retained for the
  /// core's lifetime (memo entries are handed across workers and read
  /// after the run by ForEachMemoEntry).
  std::vector<std::unique_ptr<Arena>> chunk_arenas_;
};

}  // namespace parqo

#endif  // PARQO_OPTIMIZER_TD_CMD_CORE_H_
