// Top-down join enumeration with memoization — Algorithm 1 of the paper.
//
// GetBestPlan recursively finds the cheapest k-ary bushy plan of a
// (sub)query: it enumerates the connected multi-divisions (each cmd is one
// candidate k-way join), recursively optimizes every part, builds broadcast
// and repartition variants of the operator, and keeps the cheapest plan in
// a memo table keyed by the subquery bitset. Local queries additionally get
// the single-operator local-join plan (line 10); with Rule 3 (TD-CMDP) the
// local plan short-circuits the enumeration entirely.
//
// The core is a template over the Graph concept (JoinGraph or
// GroupedJoinGraph) and parameterized by hooks mapping graph elements to
// plans, which is what lets the identical code drive TD-CMD, TD-CMDP, and
// the reduced-graph phase of HGR-TD-CMD — and, with relations instead of
// triple patterns, relational multi-way join ordering.

#ifndef PARQO_OPTIMIZER_TD_CMD_CORE_H_
#define PARQO_OPTIMIZER_TD_CMD_CORE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/tp_set.h"
#include "optimizer/cmd_enumerator.h"
#include "plan/plan.h"

namespace parqo {

/// Search-space knobs. TD-CMD uses the defaults; TD-CMDP enables all three
/// pruning rules of Section IV-A.
struct TdCmdRules {
  CmdMode cmd_mode = CmdMode::kAll;   ///< Rule 1 when kCcmdAndBinary.
  bool binary_broadcast_only = false; ///< Rule 2.
  bool local_short_circuit = false;   ///< Rule 3.
  /// Memo-table ceiling: a backstop against exhausting memory on huge
  /// dense queries before the wall-clock timeout fires (treated exactly
  /// like a timeout). ~4M entries is a few hundred MB of plans.
  std::size_t memo_cap = std::size_t{1} << 22;
};

struct TdCmdStats {
  std::uint64_t enumerated_cmds = 0;  ///< Table VII's search-space size.
  std::uint64_t memo_entries = 0;
  bool timed_out = false;
};

template <typename Graph>
class TdCmdCore {
 public:
  /// `leaf_plan(i)` supplies the plan of single relation i. `is_local(s)`
  /// answers whether relation set s is a local query, and `local_plan(s)`
  /// builds its one-operator local plan (|s| >= 2).
  TdCmdCore(const Graph& graph, const PlanBuilder& builder, TdCmdRules rules,
            std::function<PlanNodePtr(int)> leaf_plan,
            std::function<bool(TpSet)> is_local,
            std::function<PlanNodePtr(TpSet)> local_plan,
            double timeout_seconds = 600.0)
      : graph_(graph),
        builder_(builder),
        rules_(rules),
        leaf_plan_(std::move(leaf_plan)),
        is_local_(std::move(is_local)),
        local_plan_(std::move(local_plan)),
        timeout_seconds_(timeout_seconds) {}

  /// Optimizes the full query. Returns nullptr on timeout.
  PlanNodePtr Run() {
    stopwatch_.Restart();
    aborted_ = false;
    PlanNodePtr plan = GetBestPlan(graph_.AllTps(), /*is_local=*/false);
    stats_.memo_entries = memo_.size();
    stats_.timed_out = aborted_;
    return aborted_ ? nullptr : plan;
  }

  const TdCmdStats& stats() const { return stats_; }

 private:
  bool CheckDeadline() {
    if (aborted_) return false;
    if ((++deadline_probe_ & 0x3ff) == 0 &&
        (stopwatch_.ElapsedSeconds() > timeout_seconds_ ||
         memo_.size() > rules_.memo_cap)) {
      aborted_ = true;
      return false;
    }
    return true;
  }

  PlanNodePtr GetBestPlan(TpSet q, bool is_local) {
    auto it = memo_.find(q);
    if (it != memo_.end()) return it->second;
    if (!is_local) is_local = is_local_(q);
    PlanNodePtr plan = BestPlanGen(q, is_local);
    if (!aborted_) memo_.emplace(q, plan);
    return plan;
  }

  PlanNodePtr BestPlanGen(TpSet q, bool is_local) {
    if (q.Count() == 1) return leaf_plan_(q.First());

    PlanNodePtr best;
    if (is_local) {
      best = local_plan_(q);
      if (rules_.local_short_circuit) return best;  // Rule 3
    }

    std::vector<PlanNodePtr> children;
    EnumerateCmds(
        graph_, q, rules_.cmd_mode,
        [&](std::span<const TpSet> parts, VarId vj) {
          ++stats_.enumerated_cmds;
          if (!CheckDeadline()) return false;

          children.clear();
          for (TpSet part : parts) {
            children.push_back(GetBestPlan(part, is_local));
            if (aborted_) return false;
          }
          // Line 15-19: try each distributed join algorithm on this cmd.
          bool broadcast_ok =
              !rules_.binary_broadcast_only || parts.size() == 2;  // Rule 2
          if (broadcast_ok) {
            PlanNodePtr cand =
                builder_.Join(JoinMethod::kBroadcast, vj, children);
            if (!best || cand->total_cost < best->total_cost) best = cand;
          }
          PlanNodePtr cand =
              builder_.Join(JoinMethod::kRepartition, vj, children);
          if (!best || cand->total_cost < best->total_cost) best = cand;
          return true;
        });
    return best;
  }

  const Graph& graph_;
  const PlanBuilder& builder_;
  TdCmdRules rules_;
  std::function<PlanNodePtr(int)> leaf_plan_;
  std::function<bool(TpSet)> is_local_;
  std::function<PlanNodePtr(TpSet)> local_plan_;
  double timeout_seconds_;

  Stopwatch stopwatch_;
  std::uint64_t deadline_probe_ = 0;
  bool aborted_ = false;
  TdCmdStats stats_;
  std::unordered_map<TpSet, PlanNodePtr, TpSetHash> memo_;
};

}  // namespace parqo

#endif  // PARQO_OPTIMIZER_TD_CMD_CORE_H_
