// Connected binary-division enumeration — Algorithm 2 of the paper.
//
// Given a connected (sub)query Q and a join variable v_j with at least two
// incident patterns in Q, a connected binary-division (cbd) is an unordered
// split (SQ1, SQ2, v_j) with SQ1 u SQ2 = Q, SQ1 n SQ2 = empty, both sides
// connected and both containing a pattern in N_tp(v_j) (Definition 3 with
// k = 2). The algorithm removes v_j from the join graph, classifies the
// resulting components as indivisible (one neighbor of v_j) or divisible
// (several), and grows SQ from an anchor neighbor pattern:
//
//   * extending into an indivisible component absorbs the whole component
//     (Lemma 1);
//   * extending with a pattern tp of a divisible component also absorbs
//     the pieces of the component that lose their connection to v_j
//     (Lemma 2);
//   * an exclusion set X prevents re-deriving the same SQ along a
//     different order, so every cbd is emitted exactly once (Theorem 1);
//   * the cost per emitted cbd is O(|V_T|) in the worst case (Lemma 6).
//
// The implementation is a template over the graph type: it runs unchanged
// on the raw JoinGraph and on the GroupedJoinGraph used by HGR-TD-CMD.

#ifndef PARQO_OPTIMIZER_CBD_ENUMERATOR_H_
#define PARQO_OPTIMIZER_CBD_ENUMERATOR_H_

#include <utility>
#include <vector>

#include "common/check.h"
#include "common/scratch_pool.h"
#include "common/tp_set.h"
#include "query/join_graph.h"

namespace parqo {

/// Reusable per-worker scratch for EnumerateCbds. The enumeration needs
/// one component list per invocation plus one piece list per Lemma-2
/// extension; without pooling those are a malloc/free pair each, paid on
/// the hottest recursion of the optimizer (one EnumerateCbds per stacked
/// cmd part). Single-threaded — each enumeration worker owns its own.
struct CbdScratch {
  ScratchPool<TpSet> components;
  ScratchPool<TpSet> pieces;
};

/// Enumerates all cbds of `q` on `vj`, invoking `emit(sq1, sq2)` for each;
/// sq1 is the side containing the anchor (the lowest-index pattern of
/// N_tp(vj) in q). If `emit` returns false, enumeration stops and this
/// returns false. Requires: q connected in `graph`, Degree(vj, q) >= 2.
/// `scratch` (optional) makes the steady state allocation-free; pass the
/// worker's pool when calling from a hot loop.
template <typename Graph, typename EmitFn>
bool EnumerateCbds(const Graph& graph, TpSet q, VarId vj, EmitFn&& emit,
                   CbdScratch* scratch) {
  struct Context {
    const Graph& graph;
    TpSet q;
    VarId vj;
    TpSet neighbors;  // N_tp(vj) & q
    EmitFn& emit;
    CbdScratch& scratch;
    // Line 1: the components C_vj of q with v_j removed, fixed up front
    // (leased from the scratch pool by EnumerateCbds).
    std::vector<TpSet>* components = nullptr;
    int component_of[TpSet::kMaxSize] = {};

    void BuildComponents() {
      graph.ComponentsExcluding(q, vj, components);
      for (std::size_t i = 0; i < components->size(); ++i) {
        for (int tp : (*components)[i]) {
          component_of[tp] = static_cast<int>(i);
        }
      }
    }

    TpSet ComponentAt(int tp) const {
      return (*components)[component_of[tp]];
    }

    bool Recurse(TpSet sq, TpSet excluded) {
      // Line 3: a full or tainted extension yields no further cbds.
      if (sq == q || sq.Intersects(excluded)) return true;
      if (!sq.Empty()) {
        // Definition 3 (k = 2) contract, per Lemmas 1-2: both sides
        // connected and both incident to v_j. Debug-build only.
        PARQO_DCHECK(graph.IsConnected(sq));
        PARQO_DCHECK(graph.IsConnected(q - sq));
        PARQO_DCHECK(sq.Intersects(neighbors));
        PARQO_DCHECK((q - sq).Intersects(neighbors));
        if (!emit(sq, q - sq)) return false;  // line 5: emit one cbd
      }

      TpSet ext = excluded;
      TpSet candidates;
      if (sq.Empty()) {
        candidates = TpSet::Singleton(neighbors.First());  // anchor
      } else {
        candidates = (graph.NeighborsOf(sq) & q) - excluded;  // line 10
      }
      for (int tp : candidates) {
        TpSet comp = ComponentAt(tp);
        bool indivisible = (comp & neighbors).Count() == 1;
        TpSet extension;
        if (indivisible) {
          extension = comp;  // Lemma 1: absorb the whole component
        } else {
          // Lemma 2: absorb tp plus every piece of comp \ (sq u {tp})
          // that no longer touches v_j. The piece list is leased, and
          // released before the recursion below (LIFO).
          extension = TpSet::Singleton(tp);
          TpSet remainder = comp - sq - extension;
          ScratchPool<TpSet>::Lease pieces(scratch.pieces);
          graph.ComponentsExcluding(remainder, vj, pieces.get());
          for (TpSet piece : *pieces) {
            if ((piece & neighbors).Empty()) extension |= piece;
          }
        }
        if (!Recurse(sq | extension, ext)) return false;
        ext.Add(tp);  // line 18: exclude tp from later branches
      }
      return true;
    }
  };

  ScratchPool<TpSet>::Lease components(scratch->components);
  Context ctx{graph, q, vj, graph.Ntp(vj) & q, emit, *scratch,
              components.get()};
  ctx.BuildComponents();
  return ctx.Recurse(TpSet{}, TpSet{});
}

/// Convenience overload with call-local scratch (tests, one-off callers).
template <typename Graph, typename EmitFn>
bool EnumerateCbds(const Graph& graph, TpSet q, VarId vj, EmitFn&& emit) {
  CbdScratch scratch;
  return EnumerateCbds(graph, q, vj, std::forward<EmitFn>(emit), &scratch);
}

}  // namespace parqo

#endif  // PARQO_OPTIMIZER_CBD_ENUMERATOR_H_
