// Public entry point of the query optimizer. Bundles the per-query inputs
// (join graph, query graph, partitioning-derived local-query index, and
// cardinality estimator) and dispatches to one of the algorithms studied in
// the paper:
//
//   kTdCmd     - Algorithm 1, full connected-multi-division space (Sec III)
//   kTdCmdp    - TD-CMD + pruning Rules 1-3 (Sec IV-A)
//   kHgrTdCmd  - join-graph reduction, then TD-CMD on the reduced graph
//                (Sec IV-B)
//   kTdAuto    - decision-tree dispatch between the above (Sec IV-C, Fig 5)
//   kMsc       - CliqueSquare-style minimum-set-cover flat plans [6]
//   kDpBushy   - Huang et al. generate-and-test bushy DP [7]
//   kBinaryDp  - binary-only bushy DP (TriAD's plan space [8]; extension)

#ifndef PARQO_OPTIMIZER_OPTIMIZER_H_
#define PARQO_OPTIMIZER_OPTIMIZER_H_

#include <cstdint>
#include <string>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "cost/cost_model.h"
#include "partition/local_query_index.h"
#include "plan/plan.h"
#include "query/join_graph.h"
#include "query/query_graph.h"
#include "stats/estimator.h"

namespace parqo {

enum class Algorithm {
  kTdCmd,
  kTdCmdp,
  kHgrTdCmd,
  kTdAuto,
  kMsc,
  kDpBushy,
  /// Extension: binary bushy plans only (TriAD's plan space [8]); used by
  /// the ablation bench to quantify the value of k-ary joins.
  kBinaryDp,
};

std::string ToString(Algorithm algorithm);

/// Everything an optimizer needs to know about one query. All pointers are
/// borrowed and must outlive the call.
struct OptimizerInputs {
  const JoinGraph* join_graph = nullptr;
  const QueryGraph* query_graph = nullptr;
  const LocalQueryIndex* local_index = nullptr;
  const CardinalityEstimator* estimator = nullptr;
};

struct OptimizeOptions {
  CostParams cost_params;
  /// Wall-clock budget, after which the algorithm gives up (the paper caps
  /// runs at 600 s in Section V-C). A timed-out run returns a null plan.
  double timeout_seconds = 600.0;

  /// Hard wall-clock deadline (default: none). Unlike the timeout, expiry
  /// degrades gracefully instead of failing: the TD-CMD family returns the
  /// best complete plan memoized so far, and when none exists Optimize()
  /// falls back to MSC (O(|E|) per level, effectively instant), so the
  /// caller always gets a valid executable plan. The cause is recorded in
  /// OptimizeResult::abort_cause / fell_back_to_msc. With no deadline set
  /// results are bit-identical to a build without this feature.
  Deadline deadline = Deadline::Infinite();

  /// Intra-query enumeration workers for the TD-CMD family (root-level
  /// cmds fanned out over a shared memo; see td_cmd_core.h). 1 runs the
  /// lock-free sequential path; parallel runs return plans of identical
  /// cost. Workers come from `thread_pool`, or the process-global pool
  /// when null.
  int num_threads = 1;
  ThreadPool* thread_pool = nullptr;

  /// Runs the structural/cost invariant validator (plan_validator.h) over
  /// the produced plan, every memo entry, and every enumerated division.
  /// Any violation aborts via PARQO_CHECK — a wrong plan must never
  /// escape silently. Works in all build types (independent of
  /// PARQO_DCHECK); costs roughly a constant factor on enumeration, so
  /// it is for tests, canaries, and debugging, not the serving path.
  bool validate = false;

  /// TD-Auto thresholds (Figure 5; Section IV-C reports the values used
  /// in the paper's experiments).
  int theta_d = 5;    ///< max join-variable degree for plain TD-CMD.
  int theta_n = 30;   ///< #patterns below which TD-CMDP handles high-degree.
  int lambda_n = 14;  ///< #patterns below which TD-CMD handles dense.

  /// HGR candidate-generation cap: connected subqueries enumerated per
  /// maximal local query (see join_graph_reduction.h).
  int hgr_candidate_cap = 4096;

  /// MSC guard: maximum complete flat plans to materialize.
  std::uint64_t msc_plan_cap = 200000;
};

/// Why an optimizer run stopped early (kNone: it ran to completion).
/// Mirrors the enumerator-internal TdAbortCause; kDeadline additionally
/// applies to MSC, which checks the same deadline between cover levels.
enum class AbortCause { kNone, kTimeout, kMemoCap, kDeadline };

std::string ToString(AbortCause cause);

struct OptimizeResult {
  PlanNodePtr plan;  ///< Null if the algorithm timed out before any plan.
  double seconds = 0;
  /// Search-space size: join operators / plans enumerated (Table VII).
  std::uint64_t enumerated = 0;
  bool timed_out = false;
  /// Why the run stopped early; kDeadline with a non-null plan means the
  /// plan is the degraded best-effort result, not the space's optimum.
  AbortCause abort_cause = AbortCause::kNone;
  /// True when the deadline expired before any complete plan existed and
  /// Optimize() substituted the MSC flat plan.
  bool fell_back_to_msc = false;
  /// The algorithm that actually ran (differs from the request for
  /// kTdAuto, which reports its decision-tree choice).
  Algorithm algorithm_used = Algorithm::kTdCmd;

  /// TD-CMD-family enumeration detail (all zero for MSC / DP-Bushy).
  /// memo_hits / (memo_hits + memo_misses) is the subproblem reuse rate.
  std::uint64_t memo_entries = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  std::uint64_t local_short_circuits = 0;  ///< Rule-3 pruned subtrees.
  /// RunParallel fan-out detail: busy_seconds / (workers * seconds) is the
  /// worker utilization (1 worker => busy_seconds stays 0).
  int workers = 1;
  double busy_seconds = 0;
};

/// Runs the requested algorithm on one query.
OptimizeResult Optimize(Algorithm algorithm, const OptimizerInputs& inputs,
                        const OptimizeOptions& options);

}  // namespace parqo

#endif  // PARQO_OPTIMIZER_OPTIMIZER_H_
