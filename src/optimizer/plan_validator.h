// Machine-checkable definition of a "correct plan" and a "correct memo".
//
// The paper's optimality argument (Section III, Lemmas 1-2, Theorems 1-2)
// rests on structural invariants that nothing in the type system enforces:
// every enumerated subquery is connected, every k-ary division partitions
// its parent, partition properties flow legally through local / broadcast /
// repartition operators (Section II-D), and every cost is the deterministic
// Eq. 3/4 value of its subtree. PlanValidator re-derives all of it from
// scratch and reports the first violation; the optimizers run it behind
// OptimizeOptions::validate, and tests/validator_test runs the full
// LUBM/UniProt workloads under it.
//
// This deliberately re-implements the checks instead of trusting
// PlanBuilder: a validator that calls the code under test validates
// nothing.

#ifndef PARQO_OPTIMIZER_PLAN_VALIDATOR_H_
#define PARQO_OPTIMIZER_PLAN_VALIDATOR_H_

#include <span>

#include "common/status.h"
#include "common/tp_set.h"
#include "cost/cost_model.h"
#include "partition/local_query_index.h"
#include "plan/plan.h"
#include "query/join_graph.h"
#include "stats/estimator.h"

namespace parqo {

class PlanValidator {
 public:
  /// `local_index`, `estimator`, and `cost_model` may each be null, which
  /// skips the locality check / the cardinality-and-cost recomputation.
  PlanValidator(const JoinGraph& jg, const LocalQueryIndex* local_index,
                const CardinalityEstimator* estimator = nullptr,
                const CostModel* cost_model = nullptr)
      : jg_(&jg),
        local_index_(local_index),
        estimator_(estimator),
        cost_model_(cost_model) {}

  /// Validates a complete plan: covers the whole query and every subtree
  /// satisfies the invariants listed in ValidateSubplan().
  Status ValidatePlan(const PlanNode& plan) const;

  /// Validates a (sub)plan rooted anywhere in the query. Checks, per node:
  ///  - scans reference an existing pattern and cover exactly {tp};
  ///  - joins have >= 2 children whose pattern sets are pairwise disjoint
  ///    and union to the node's set (division blocks partition the parent);
  ///  - every subtree's pattern set is connected in the join graph
  ///    (Lemma 1-2 contract: no Cartesian products, Definition 3 cond. 2);
  ///  - distributed joins carry a join variable shared by all children
  ///    (Definition 3 condition 3); local joins carry none and cover a
  ///    subquery the local index confirms is local;
  ///  - partition properties propagate legally (Section II-D): a local
  ///    join consumes only base-partitioned inputs (scans / local joins),
  ///    broadcast keeps the largest input's property, repartition
  ///    re-establishes hash-on-join-variable;
  ///  - cardinalities and costs are finite, non-negative, and (with an
  ///    estimator and cost model) bit-identical to the Eq. 3/4
  ///    recomputation from the leaves up.
  Status ValidateSubplan(const PlanNode& plan) const;

  /// Validates one memo entry: the stored plan covers exactly the key's
  /// pattern set, the key is connected, and the plan passes
  /// ValidateSubplan(). `key_tps` is the entry's subquery in *base*
  /// pattern space (HGR callers expand group bitsets first).
  Status ValidateMemoEntry(TpSet key_tps, const PlanNode& plan) const;

 private:
  const JoinGraph* jg_;
  const LocalQueryIndex* local_index_;
  const CardinalityEstimator* estimator_;
  const CostModel* cost_model_;
};

/// The division contract of Definition 3, shared by the cbd/cmd
/// enumerators' debug checks and the core's validate mode: `parts` (k >= 2)
/// are non-empty, pairwise disjoint, cover `parent`, each part is connected
/// in `g`, and each part contains a pattern incident to `vj`. Templated
/// over the Graph concept so it runs on JoinGraph and GroupedJoinGraph.
template <typename Graph>
Status ValidateDivision(const Graph& g, TpSet parent,
                        std::span<const TpSet> parts, VarId vj) {
  if (parts.size() < 2) {
    return Status::Internal("division of " + parent.ToString() +
                            " has fewer than 2 blocks");
  }
  TpSet seen;
  TpSet ntp = g.Ntp(vj) & parent;
  for (TpSet part : parts) {
    if (part.Empty()) {
      return Status::Internal("empty division block of " + parent.ToString());
    }
    if (part.Intersects(seen)) {
      return Status::Internal("overlapping division blocks of " +
                              parent.ToString() + ": " + part.ToString() +
                              " overlaps " + seen.ToString());
    }
    seen |= part;
    if (!g.IsConnected(part)) {
      return Status::Internal("disconnected division block " +
                              part.ToString() + " of " + parent.ToString());
    }
    if (!part.Intersects(ntp)) {
      return Status::Internal("division block " + part.ToString() +
                              " contains no pattern incident to the join "
                              "variable (Definition 3 condition 3)");
    }
  }
  if (seen != parent) {
    return Status::Internal("division blocks cover " + seen.ToString() +
                            " instead of " + parent.ToString());
  }
  return Status::Ok();
}

}  // namespace parqo

#endif  // PARQO_OPTIMIZER_PLAN_VALIDATOR_H_
