// TD-Auto (Section IV-C): picks the optimization algorithm from the two
// complexity drivers identified in Section III-D — join-variable degree
// and query size — using the decision tree of Figure 5:
//
//   |V_T| / |V_J| >= 1  (acyclic or single-cycle join graph):
//       max degree < theta_d        -> TD-CMD
//       else |V_T| < theta_n        -> TD-CMDP
//       else                        -> HGR-TD-CMD
//   |V_T| / |V_J| < 1   (multiple cycles):
//       |V_T| < lambda_n            -> TD-CMD
//       else                        -> HGR-TD-CMD

#ifndef PARQO_OPTIMIZER_TD_AUTO_H_
#define PARQO_OPTIMIZER_TD_AUTO_H_

#include "optimizer/optimizer.h"

namespace parqo {

/// The decision only (exposed for tests and the ablation bench).
Algorithm TdAutoChoice(const JoinGraph& jg, const OptimizeOptions& options);

OptimizeResult RunTdAuto(const OptimizerInputs& inputs,
                         const OptimizeOptions& options);

}  // namespace parqo

#endif  // PARQO_OPTIMIZER_TD_AUTO_H_
