#include "optimizer/prepared_query.h"

#include <utility>

#include "stats/data_stats.h"

namespace parqo {

StatsSource StatsFromData(const RdfGraph& graph) {
  return [&graph](const JoinGraph& jg) {
    return ComputeStatisticsFromGraph(jg, graph);
  };
}

StatsSource StatsFromData(const RdfGraph& graph,
                          const DataStatsOptions& opts) {
  return [&graph, opts](const JoinGraph& jg) {
    return ComputeStatisticsFromGraph(jg, graph, opts);
  };
}

PreparedQuery::PreparedQuery(std::vector<TriplePattern> patterns,
                             const Partitioner& partitioner,
                             const StatsSource& stats) {
  join_graph_ = std::make_unique<JoinGraph>(std::move(patterns));
  query_graph_ = std::make_unique<QueryGraph>(*join_graph_);
  local_index_ =
      std::make_unique<LocalQueryIndex>(*query_graph_, partitioner);
  estimator_ = std::make_unique<CardinalityEstimator>(*join_graph_,
                                                      stats(*join_graph_));
}

OptimizerInputs PreparedQuery::inputs() const {
  OptimizerInputs in;
  in.join_graph = join_graph_.get();
  in.query_graph = query_graph_.get();
  in.local_index = local_index_.get();
  in.estimator = estimator_.get();
  return in;
}

}  // namespace parqo
