#include "optimizer/hgr_td_cmd.h"

#include "common/check.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "optimizer/grouped_graph.h"
#include "optimizer/join_graph_reduction.h"
#include "optimizer/plan_validator.h"
#include "optimizer/td_cmd.h"
#include "optimizer/td_cmd_core.h"

namespace parqo {

OptimizeResult RunHgrTdCmd(const OptimizerInputs& inputs,
                           const OptimizeOptions& options) {
  const JoinGraph& jg = *inputs.join_graph;
  PlanBuilder builder(*inputs.estimator, CostModel(options.cost_params));
  Stopwatch watch;

  OptimizeResult result;
  result.algorithm_used = Algorithm::kHgrTdCmd;

  JgrResult jgr = ReduceJoinGraph(jg, *inputs.local_index,
                                  *inputs.estimator,
                                  options.hgr_candidate_cap);

  if (jgr.groups.size() == 1) {
    // The whole query is one local query (e.g. under Path-BMC).
    TpSet group = jgr.groups[0];
    result.plan =
        group.Count() == 1
            // parqo-lint: allow(shared-plan-hot-path) cold: one node, once
            ? builder.Scan(group.First())
            // parqo-lint: allow(shared-plan-hot-path) cold: one node, once
            : builder.LocalJoinAll(group);
    result.seconds = watch.ElapsedSeconds();
    return result;
  }

  // A leaf of the reduced graph is either a raw pattern scan or the
  // one-operator local join of a whole group.
  auto group_leaf = [&](Arena& arena, TpSet group) -> const PlanCandidate* {
    if (group.Count() == 1) return builder.ScanIn(arena, group.First());
    return builder.LocalJoinAllIn(arena, group);
  };

  GroupedJoinGraph grouped(jg, jgr.groups);
  TdCmdRules rules;  // plain TD-CMD on the reduced graph
  rules.validate = options.validate;
  TdCmdCore core(
      grouped, builder, rules,
      /*leaf_plan=*/
      [&](Arena& arena, int rel) {
        return group_leaf(arena, grouped.GroupTps(rel));
      },
      /*is_local=*/
      [&](TpSet rels) {
        return inputs.local_index->IsLocal(grouped.ExpandTps(rels));
      },
      /*local_plan=*/
      [&](Arena& arena, TpSet rels) {
        return builder.LocalJoinAllIn(arena, grouped.ExpandTps(rels));
      },
      options.timeout_seconds, options.deadline);

  if (options.num_threads > 1) {
    ThreadPool& pool = options.thread_pool != nullptr ? *options.thread_pool
                                                      : ThreadPool::Global();
    result.plan = core.RunParallel(pool, options.num_threads);
  } else {
    result.plan = core.Run();
  }

  if (options.validate && result.plan != nullptr) {
    // Memo keys live in group space; the stored plans cover base
    // patterns, so expand each key before checking the entry.
    PlanValidator validator(jg, inputs.local_index, inputs.estimator,
                            &builder.cost_model());
    core.ForEachMemoEntry([&](TpSet rels, const PlanNodePtr& entry) {
      PARQO_CHECK(entry != nullptr);
      PARQO_CHECK_OK(
          validator.ValidateMemoEntry(grouped.ExpandTps(rels), *entry));
    });
  }

  result.seconds = watch.ElapsedSeconds();
  result.enumerated = core.stats().enumerated_cmds;
  result.abort_cause = ToAbortCause(core.stats().abort_cause);
  result.timed_out = core.stats().timed_out &&
                     result.abort_cause != AbortCause::kDeadline;
  result.memo_entries = core.stats().memo_entries;
  result.memo_hits = core.stats().memo_hits;
  result.memo_misses = core.stats().memo_misses;
  result.local_short_circuits = core.stats().local_short_circuits;
  result.workers = core.stats().workers;
  result.busy_seconds = core.stats().busy_seconds;
  return result;
}

}  // namespace parqo
