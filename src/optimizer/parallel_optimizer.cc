#include "optimizer/parallel_optimizer.h"

#include "common/status.h"

namespace parqo {

ParallelOptimizer::ParallelOptimizer(int num_threads)
    : pool_(num_threads > 0 ? num_threads
                            : ThreadPool::DefaultConcurrency()) {}

std::vector<OptimizeResult> ParallelOptimizer::OptimizeBatch(
    const std::vector<BatchQuery>& batch, const OptimizeOptions& options) {
  std::vector<OptimizeResult> results(batch.size());
  OptimizeOptions per_query = options;
  // Intra-query workers come from the batch pool, not a fresh one.
  if (per_query.num_threads > 1 && per_query.thread_pool == nullptr) {
    per_query.thread_pool = &pool_;
  }
  pool_.ParallelFor(static_cast<int>(batch.size()), [&](int i) {
    const BatchQuery& item = batch[static_cast<std::size_t>(i)];
    PARQO_CHECK(item.query != nullptr);
    results[static_cast<std::size_t>(i)] =
        Optimize(item.algorithm, item.query->inputs(), per_query);
  });
  return results;
}

std::vector<OptimizeResult> ParallelOptimizer::OptimizeBatch(
    Algorithm algorithm, const std::vector<const PreparedQuery*>& queries,
    const OptimizeOptions& options) {
  std::vector<BatchQuery> batch;
  batch.reserve(queries.size());
  for (const PreparedQuery* q : queries) batch.push_back({algorithm, q});
  return OptimizeBatch(batch, options);
}

}  // namespace parqo
