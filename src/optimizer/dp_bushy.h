// DP-Bushy baseline — the top-down dynamic-programming optimizer of Huang,
// Venkatraman & Abadi, "Query optimization of distributed pattern
// matching" (ICDE 2014; reference [7]), reimplemented from the published
// description and the characterization in Sections III/IV of the paper:
// on each recursive call it considers (a) every binary split of the
// subquery — generated first, checked for connectedness/Cartesian products
// afterwards, which is what gives the algorithm its exponential amortized
// cost per join operator — and (b) the single multi-way join that joins
// the maximal number of inputs (built on the highest-degree join
// variable). Local subqueries are evaluated directly by the store.

#ifndef PARQO_OPTIMIZER_DP_BUSHY_H_
#define PARQO_OPTIMIZER_DP_BUSHY_H_

#include "optimizer/optimizer.h"

namespace parqo {

OptimizeResult RunDpBushy(const OptimizerInputs& inputs,
                          const OptimizeOptions& options);

}  // namespace parqo

#endif  // PARQO_OPTIMIZER_DP_BUSHY_H_
