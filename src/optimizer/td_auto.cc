#include "optimizer/td_auto.h"

#include "optimizer/hgr_td_cmd.h"
#include "optimizer/td_cmd.h"
#include "query/shape.h"

namespace parqo {

Algorithm TdAutoChoice(const JoinGraph& jg, const OptimizeOptions& options) {
  double ratio = TpToJoinVarRatio(jg);
  if (ratio >= 1.0) {
    if (jg.MaxJoinVarDegree() < options.theta_d) return Algorithm::kTdCmd;
    if (jg.num_tps() < options.theta_n) return Algorithm::kTdCmdp;
    return Algorithm::kHgrTdCmd;
  }
  if (jg.num_tps() < options.lambda_n) return Algorithm::kTdCmd;
  return Algorithm::kHgrTdCmd;
}

OptimizeResult RunTdAuto(const OptimizerInputs& inputs,
                         const OptimizeOptions& options) {
  // options.num_threads flows through to whichever TD-CMD-family
  // algorithm the decision tree picks; the choice itself only inspects
  // the join graph, so it is identical across thread counts.
  Algorithm choice = TdAutoChoice(*inputs.join_graph, options);
  OptimizeResult result;
  switch (choice) {
    case Algorithm::kTdCmd:
      result = RunTdCmd(inputs, options, /*pruned=*/false);
      break;
    case Algorithm::kTdCmdp:
      result = RunTdCmd(inputs, options, /*pruned=*/true);
      break;
    default:
      result = RunHgrTdCmd(inputs, options);
      break;
  }
  result.algorithm_used = choice;
  return result;
}

}  // namespace parqo
