// SPARQL basic-graph-pattern queries (Section II-A): a set of triple
// patterns whose positions are constants or variables. This is the scope
// the paper optimizes; solution modifiers other than SELECT projection are
// out of scope.

#ifndef PARQO_SPARQL_QUERY_H_
#define PARQO_SPARQL_QUERY_H_

#include <string>
#include <vector>

#include "rdf/term.h"

namespace parqo {

/// One position (subject, predicate, or object) of a triple pattern.
struct PatternTerm {
  enum class Kind { kVar, kConst };

  Kind kind = Kind::kConst;
  std::string var;  ///< Variable name without '?', when kind == kVar.
  Term term;        ///< Constant term, when kind == kConst.

  static PatternTerm Var(std::string name) {
    PatternTerm t;
    t.kind = Kind::kVar;
    t.var = std::move(name);
    return t;
  }
  static PatternTerm Const(Term term) {
    PatternTerm t;
    t.kind = Kind::kConst;
    t.term = std::move(term);
    return t;
  }

  bool IsVar() const { return kind == Kind::kVar; }

  friend bool operator==(const PatternTerm&, const PatternTerm&) = default;

  std::string ToString() const;
};

struct TriplePattern {
  PatternTerm s, p, o;

  /// Distinct variable names, in s/p/o order.
  std::vector<std::string> Variables() const;
  bool UsesVariable(const std::string& name) const;

  friend bool operator==(const TriplePattern&, const TriplePattern&) =
      default;

  std::string ToString() const;
};

/// A parsed SELECT query.
struct ParsedQuery {
  std::vector<std::string> select_vars;  ///< Empty when select_all.
  bool select_all = false;               ///< SELECT *
  std::vector<TriplePattern> patterns;

  std::string ToString() const;
};

}  // namespace parqo

#endif  // PARQO_SPARQL_QUERY_H_
