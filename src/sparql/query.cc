#include "sparql/query.h"

#include <algorithm>

#include "rdf/ntriples.h"

namespace parqo {

std::string PatternTerm::ToString() const {
  if (IsVar()) return "?" + var;
  return TermToNTriples(term);
}

std::vector<std::string> TriplePattern::Variables() const {
  std::vector<std::string> out;
  for (const PatternTerm* t : {&s, &p, &o}) {
    if (t->IsVar() &&
        std::find(out.begin(), out.end(), t->var) == out.end()) {
      out.push_back(t->var);
    }
  }
  return out;
}

bool TriplePattern::UsesVariable(const std::string& name) const {
  return (s.IsVar() && s.var == name) || (p.IsVar() && p.var == name) ||
         (o.IsVar() && o.var == name);
}

std::string TriplePattern::ToString() const {
  return s.ToString() + " " + p.ToString() + " " + o.ToString() + " .";
}

std::string ParsedQuery::ToString() const {
  std::string out = "SELECT";
  if (select_all) {
    out += " *";
  } else {
    for (const std::string& v : select_vars) out += " ?" + v;
  }
  out += " WHERE {\n";
  for (const TriplePattern& tp : patterns) {
    out += "  " + tp.ToString() + "\n";
  }
  out += "}";
  return out;
}

}  // namespace parqo
