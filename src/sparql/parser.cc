#include "sparql/parser.h"

#include <cctype>
#include <map>
#include <string>
#include <vector>

namespace parqo {
namespace {

enum class Tok {
  kKeywordSelect,
  kKeywordWhere,
  kKeywordPrefix,
  kIri,      // <...> content without brackets
  kPname,    // prefix:local (text includes the colon)
  kVar,      // ?name, text without '?'
  kLiteral,  // "..." content unescaped, with verbatim @lang/^^<dt> suffix
  kStar,
  kDot,
  kLBrace,
  kRBrace,
  kColonOnly,  // ":" alone (default-prefix name ":local" handled via pname)
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;
  std::size_t pos;
};

bool IsPnameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == '%';
}

Status LexError(std::size_t pos, const std::string& what) {
  return Status::InvalidArgument("SPARQL lex error at offset " +
                                 std::to_string(pos) + ": " + what);
}

std::string AsciiUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

Status Lex(std::string_view text, std::vector<Token>* out) {
  std::size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (c == '<') {
      std::size_t close = text.find('>', i + 1);
      if (close == std::string_view::npos) {
        return LexError(i, "unterminated IRI");
      }
      out->push_back(
          {Tok::kIri, std::string(text.substr(i + 1, close - i - 1)), i});
      i = close + 1;
      continue;
    }
    if (c == '?' || c == '$') {
      std::size_t end = i + 1;
      while (end < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[end])) ||
              text[end] == '_')) {
        ++end;
      }
      if (end == i + 1) return LexError(i, "empty variable name");
      out->push_back(
          {Tok::kVar, std::string(text.substr(i + 1, end - i - 1)), i});
      i = end;
      continue;
    }
    if (c == '"') {
      std::string body;
      std::size_t j = i + 1;
      while (j < text.size() && text[j] != '"') {
        if (text[j] == '\\' && j + 1 < text.size()) {
          ++j;
          switch (text[j]) {
            case 't': body += '\t'; break;
            case 'n': body += '\n'; break;
            case '"': body += '"'; break;
            case '\\': body += '\\'; break;
            default: body += text[j];
          }
        } else {
          body += text[j];
        }
        ++j;
      }
      if (j >= text.size()) return LexError(i, "unterminated literal");
      ++j;  // closing quote
      // Verbatim @lang or ^^<datatype> suffix.
      if (j < text.size() && text[j] == '@') {
        std::size_t end = j;
        while (end < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[end])) ||
                text[end] == '@' || text[end] == '-')) {
          ++end;
        }
        body += std::string(text.substr(j, end - j));
        j = end;
      } else if (j + 1 < text.size() && text[j] == '^' &&
                 text[j + 1] == '^') {
        if (j + 2 >= text.size() || text[j + 2] != '<') {
          return LexError(j, "expected <datatype> after ^^");
        }
        std::size_t close = text.find('>', j + 3);
        if (close == std::string_view::npos) {
          return LexError(j, "unterminated datatype IRI");
        }
        body += std::string(text.substr(j, close + 1 - j));
        j = close + 1;
      }
      out->push_back({Tok::kLiteral, std::move(body), i});
      i = j;
      continue;
    }
    if (c == '*') {
      out->push_back({Tok::kStar, "*", i});
      ++i;
      continue;
    }
    if (c == '.') {
      out->push_back({Tok::kDot, ".", i});
      ++i;
      continue;
    }
    if (c == '{') {
      out->push_back({Tok::kLBrace, "{", i});
      ++i;
      continue;
    }
    if (c == '}') {
      out->push_back({Tok::kRBrace, "}", i});
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
        c == ':') {
      // Bare word: keyword or prefixed name. Scan prefix part.
      std::size_t end = i;
      while (end < text.size() && IsPnameChar(text[end])) ++end;
      bool has_colon = end < text.size() && text[end] == ':';
      if (has_colon) {
        std::size_t local_start = end + 1;
        std::size_t local_end = local_start;
        while (local_end < text.size() && IsPnameChar(text[local_end])) {
          ++local_end;
        }
        // A trailing '.' terminates the pattern, not the name.
        while (local_end > local_start && text[local_end - 1] == '.') {
          --local_end;
        }
        out->push_back(
            {Tok::kPname, std::string(text.substr(i, local_end - i)), i});
        i = local_end;
        continue;
      }
      std::string word(text.substr(i, end - i));
      // Strip pname-chars that scanned past a keyword's trailing dot, e.g.
      // in "WHERE." (not expected, but harmless).
      std::string upper = AsciiUpper(word);
      if (upper == "SELECT") {
        out->push_back({Tok::kKeywordSelect, word, i});
      } else if (upper == "WHERE") {
        out->push_back({Tok::kKeywordWhere, word, i});
      } else if (upper == "PREFIX") {
        out->push_back({Tok::kKeywordPrefix, word, i});
      } else if (upper == "DISTINCT") {
        // Accepted and ignored: projection dedup is implicit in our
        // set-semantics executor.
      } else {
        return LexError(i, "unexpected word '" + word + "'");
      }
      i = end;
      continue;
    }
    return LexError(i, std::string("unexpected character '") + c + "'");
  }
  out->push_back({Tok::kEnd, "", text.size()});
  return Status::Ok();
}

// Result<T> cannot use PARQO_RETURN_IF_ERROR directly in functions that
// return Result (the Status converts implicitly), but a dedicated name keeps
// the intent clear at call sites below.
#define PARQO_RETURN_IF_ERROR_R(expr)       \
  do {                                      \
    ::parqo::Status _st = (expr);           \
    if (!_st.ok()) return _st;              \
  } while (false)

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> Parse() {
    ParsedQuery q;
    PARQO_RETURN_IF_ERROR_R(ParsePrefixes());
    PARQO_RETURN_IF_ERROR_R(ParseSelect(&q));
    PARQO_RETURN_IF_ERROR_R(ParseWhere(&q));
    if (Peek().kind != Tok::kEnd) {
      return Error("trailing content after query");
    }
    if (q.patterns.empty()) {
      return Error("query has no triple patterns");
    }
    return q;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(Tok kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("SPARQL parse error at offset " +
                                   std::to_string(Peek().pos) + ": " + what);
  }

  Status ParsePrefixes() {
    while (Match(Tok::kKeywordPrefix)) {
      const Token& name = Peek();
      std::string prefix;
      if (name.kind == Tok::kPname) {
        // "PREFIX rdf: <iri>" lexes the "rdf:" as a pname with empty local.
        prefix = name.text.substr(0, name.text.find(':'));
        Advance();
      } else {
        return Error("expected 'name:' after PREFIX");
      }
      if (Peek().kind != Tok::kIri) {
        return Error("expected <iri> in PREFIX declaration");
      }
      prefixes_[prefix] = Advance().text;
    }
    return Status::Ok();
  }

  Status ParseSelect(ParsedQuery* q) {
    if (!Match(Tok::kKeywordSelect)) return Error("expected SELECT");
    if (Match(Tok::kStar)) {
      q->select_all = true;
    } else {
      while (Peek().kind == Tok::kVar) {
        q->select_vars.push_back(Advance().text);
      }
      if (q->select_vars.empty()) {
        return Error("expected ?vars or * after SELECT");
      }
    }
    return Status::Ok();
  }

  Status ParseWhere(ParsedQuery* q) {
    if (!Match(Tok::kKeywordWhere)) return Error("expected WHERE");
    if (!Match(Tok::kLBrace)) return Error("expected '{'");
    while (Peek().kind != Tok::kRBrace) {
      TriplePattern tp;
      PARQO_RETURN_IF_ERROR(ParsePatternTerm(&tp.s, /*object_pos=*/false));
      PARQO_RETURN_IF_ERROR(ParsePatternTerm(&tp.p, /*object_pos=*/false));
      PARQO_RETURN_IF_ERROR(ParsePatternTerm(&tp.o, /*object_pos=*/true));
      q->patterns.push_back(std::move(tp));
      if (!Match(Tok::kDot)) break;  // '.' optional before '}'
    }
    if (!Match(Tok::kRBrace)) return Error("expected '}'");
    return Status::Ok();
  }

  Status ParsePatternTerm(PatternTerm* out, bool object_pos) {
    const Token& t = Peek();
    switch (t.kind) {
      case Tok::kVar:
        *out = PatternTerm::Var(Advance().text);
        return Status::Ok();
      case Tok::kIri:
        *out = PatternTerm::Const(Term::Iri(Advance().text));
        return Status::Ok();
      case Tok::kPname: {
        std::string text = Advance().text;
        std::size_t colon = text.find(':');
        std::string prefix = text.substr(0, colon);
        auto it = prefixes_.find(prefix);
        if (it == prefixes_.end()) {
          return Error("undeclared prefix '" + prefix + ":'");
        }
        *out = PatternTerm::Const(
            Term::Iri(it->second + text.substr(colon + 1)));
        return Status::Ok();
      }
      case Tok::kLiteral:
        if (!object_pos) {
          return Error("literal allowed only in object position");
        }
        *out = PatternTerm::Const(Term::Literal(Advance().text));
        return Status::Ok();
      default:
        return Error("expected variable, IRI, prefixed name, or literal");
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::map<std::string, std::string> prefixes_;
};
#undef PARQO_RETURN_IF_ERROR_R

}  // namespace

Result<ParsedQuery> ParseSparql(std::string_view text) {
  std::vector<Token> tokens;
  Status st = Lex(text, &tokens);
  if (!st.ok()) return st;
  return Parser(std::move(tokens)).Parse();
}

}  // namespace parqo
