// Recursive-descent parser for the SPARQL subset used throughout the paper:
//
//   [PREFIX name: <iri>]*
//   SELECT (?var+ | *) WHERE { triple-pattern ('.' triple-pattern)* '.'? }
//
// Positions may be variables (?x), IRIs (<...> or prefixed names like
// ub:worksFor), or literals ("...", object position only).

#ifndef PARQO_SPARQL_PARSER_H_
#define PARQO_SPARQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "sparql/query.h"

namespace parqo {

/// Parses a query text; errors carry a byte offset and description.
Result<ParsedQuery> ParseSparql(std::string_view text);

}  // namespace parqo

#endif  // PARQO_SPARQL_PARSER_H_
