// Path partitioning ("Path-BMC") of Wu et al., ICDE 2015 (reference [2];
// Example 2). In the generic model, combine(v) for a start vertex v
// assembles every triple forward-reachable from v (the union of all
// end-to-end paths starting at v) and distribute merges elements onto
// nodes bottom-up to balance load and limit duplication.
//
// Our distribute substitutes the paper's bottom-up merge with a greedy
// least-loaded assignment of elements (largest first), which preserves the
// property the optimizer cares about: all triples of an element are
// co-located, so any query contained in a forward-reachability cone is
// local. Triples in no element (vertices unreachable from any source, e.g.
// pure cycles) fall back to hash placement so coverage is total.

#ifndef PARQO_PARTITION_PATH_BMC_H_
#define PARQO_PARTITION_PATH_BMC_H_

#include "partition/partitioner.h"

namespace parqo {

class PathBmcPartitioner : public Partitioner {
 public:
  std::string name() const override { return "path-bmc"; }
  PartitionAssignment PartitionData(const RdfGraph& graph,
                                    int n) const override;
  TpSet MaximalLocalQuery(const QueryGraph& gq, int vertex) const override;
};

}  // namespace parqo

#endif  // PARQO_PARTITION_PATH_BMC_H_
