// The generic RDF data partitioning model of Section II-C. Every static
// partitioning method is described by two conceptual phases:
//
//   combining:    ev <- combine(v, G_R)   for each vertex v — assemble the
//                 triples related to v into an indivisible element;
//   distributing: P_i <- distribute(ev)   — place each element on a node.
//
// The optimizer is partition-aware but decoupled from any concrete method:
// all it needs is combine() applied to the *query* graph, which yields the
// maximal local query anchored at each query vertex (Section III-B /
// Appendix A). Concrete partitioners therefore implement two things:
// a data-side PartitionData() used by the execution engine, and the
// query-side MaximalLocalQuery() used by the optimizer.

#ifndef PARQO_PARTITION_PARTITIONER_H_
#define PARQO_PARTITION_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/tp_set.h"
#include "query/query_graph.h"
#include "rdf/graph.h"

namespace parqo {

/// Which triples each computing node stores. A triple may be stored on
/// several nodes (partitioning elements overlap); that replication is the
/// price paid for larger local queries.
struct PartitionAssignment {
  int num_nodes = 0;
  std::vector<std::vector<TripleIdx>> node_triples;

  std::size_t TotalStored() const {
    std::size_t sum = 0;
    for (const auto& v : node_triples) sum += v.size();
    return sum;
  }
  /// Stored copies per source triple (>= 1 when every triple is covered).
  double ReplicationFactor(std::size_t num_source_triples) const {
    if (num_source_triples == 0) return 0;
    return static_cast<double>(TotalStored()) /
           static_cast<double>(num_source_triples);
  }
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  virtual std::string name() const = 0;

  /// Data side: assigns every triple of `graph` to one or more of `n`
  /// nodes according to combine/distribute.
  virtual PartitionAssignment PartitionData(const RdfGraph& graph,
                                            int n) const = 0;

  /// Query side: combine(v, G_Q) — the maximal local query anchored at
  /// query-graph vertex `vertex` (Definition 5 / Appendix A).
  virtual TpSet MaximalLocalQuery(const QueryGraph& gq,
                                  int vertex) const = 0;
};

/// Node index for a term under hash distribution. Deterministic across
/// runs (depends only on the term id).
int HashToNode(TermId id, int n);

/// Partitioning-quality summary computable from any PartitionAssignment,
/// so methods with very different combine() phases stay comparable.
struct PartitionAnalysis {
  double replication_factor = 0;
  std::uint64_t total_stored = 0;
  /// Stored triples per node (load balance).
  std::vector<std::uint64_t> node_stored;
  /// RDF-graph edges whose endpoints live on different nodes, under the
  /// primary-owner rule: a vertex's owner is the node storing the most of
  /// its incident triples (ties break to the lowest node id). A cut edge
  /// is one a traversal might cross the network for.
  std::uint64_t cut_edges = 0;
  std::uint64_t total_edges = 0;
};

/// Computes the summary and, when metrics are enabled, publishes it to
/// the global registry as partition.* gauges.
PartitionAnalysis AnalyzeAssignment(const RdfGraph& graph,
                                    const PartitionAssignment& assignment);

}  // namespace parqo

#endif  // PARQO_PARTITION_PARTITIONER_H_
