#include "partition/hash_so.h"

namespace parqo {

int HashToNode(TermId id, int n) {
  std::uint64_t x = id;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<int>(x % static_cast<std::uint64_t>(n));
}

PartitionAssignment HashSoPartitioner::PartitionData(const RdfGraph& graph,
                                                     int n) const {
  PartitionAssignment out;
  out.num_nodes = n;
  out.node_triples.resize(n);
  const auto& triples = graph.triples();
  for (TripleIdx i = 0; i < triples.size(); ++i) {
    int ns = HashToNode(triples[i].s, n);
    int no = HashToNode(triples[i].o, n);
    out.node_triples[ns].push_back(i);
    if (no != ns) out.node_triples[no].push_back(i);
  }
  return out;
}

TpSet HashSoPartitioner::MaximalLocalQuery(const QueryGraph& gq,
                                           int vertex) const {
  return gq.vertex(vertex).IncidentTps();
}

}  // namespace parqo
