#include "partition/two_hop.h"

#include <vector>

namespace parqo {

PartitionAssignment TwoHopForwardPartitioner::PartitionData(
    const RdfGraph& graph, int n) const {
  PartitionAssignment out;
  out.num_nodes = n;
  out.node_triples.resize(n);
  const auto& triples = graph.triples();

  // Scratch bitmap over nodes, reused per triple to deduplicate targets.
  std::vector<bool> target(n, false);
  std::vector<int> touched;
  for (TripleIdx i = 0; i < triples.size(); ++i) {
    const Triple& t = triples[i];
    auto add = [&](int node) {
      if (!target[node]) {
        target[node] = true;
        touched.push_back(node);
        out.node_triples[node].push_back(i);
      }
    };
    // 1 hop: element of the subject itself.
    add(HashToNode(t.s, n));
    // 2nd hop: element of every vertex with an edge into t.s.
    for (TripleIdx e : graph.InEdges(t.s)) {
      add(HashToNode(triples[e].s, n));
    }
    for (int node : touched) target[node] = false;
    touched.clear();
  }
  return out;
}

TpSet TwoHopForwardPartitioner::MaximalLocalQuery(const QueryGraph& gq,
                                                  int vertex) const {
  return gq.ForwardReachableTps(vertex, /*max_hops=*/2);
}

}  // namespace parqo
