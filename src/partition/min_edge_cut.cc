#include "partition/min_edge_cut.h"

#include <deque>
#include <vector>

namespace parqo {

PartitionAssignment MinEdgeCutPartitioner::PartitionData(
    const RdfGraph& graph, int n) const {
  PartitionAssignment out;
  out.num_nodes = n;
  out.node_triples.resize(n);

  const auto& vertices = graph.vertices();
  const std::size_t id_bound = graph.dict().IdUpperBound();
  std::vector<int> part(id_bound, -1);
  const std::size_t capacity = vertices.size() / n + 1;
  std::vector<std::size_t> filled(n, 0);

  // Round-robin BFS growth from evenly spaced seeds: each part absorbs one
  // frontier vertex per turn until it reaches capacity, which yields
  // balanced, locality-preserving parts (a light-weight METIS stand-in).
  std::vector<std::deque<TermId>> frontier(n);
  std::size_t next_seed = 0;
  auto take_seed = [&](int p) {
    while (next_seed < vertices.size()) {
      TermId v = vertices[next_seed++];
      if (part[v] == -1) {
        frontier[p].push_back(v);
        return true;
      }
    }
    return false;
  };
  for (int p = 0; p < n; ++p) take_seed(p);

  bool progress = true;
  while (progress) {
    progress = false;
    for (int p = 0; p < n; ++p) {
      if (filled[p] >= capacity) continue;
      // Pop until an unassigned vertex or an empty frontier.
      TermId v = 0;
      bool found = false;
      while (!frontier[p].empty()) {
        v = frontier[p].front();
        frontier[p].pop_front();
        if (part[v] == -1) {
          found = true;
          break;
        }
      }
      if (!found && !take_seed(p)) continue;
      if (!found) {
        v = frontier[p].front();
        frontier[p].pop_front();
        if (part[v] != -1) {
          progress = true;  // seed was taken by another part meanwhile
          continue;
        }
      }
      part[v] = p;
      ++filled[p];
      progress = true;
      for (TripleIdx e : graph.OutEdges(v)) {
        TermId o = graph.triples()[e].o;
        if (part[o] == -1) frontier[p].push_back(o);
      }
      for (TripleIdx e : graph.InEdges(v)) {
        TermId s = graph.triples()[e].s;
        if (part[s] == -1) frontier[p].push_back(s);
      }
    }
  }

  // The 1-hop guarantee: a triple is stored wherever either endpoint lives.
  const auto& triples = graph.triples();
  for (TripleIdx i = 0; i < triples.size(); ++i) {
    int ps = part[triples[i].s];
    int po = part[triples[i].o];
    if (ps < 0) ps = HashToNode(triples[i].s, n);
    if (po < 0) po = HashToNode(triples[i].o, n);
    out.node_triples[ps].push_back(i);
    if (po != ps) out.node_triples[po].push_back(i);
  }
  return out;
}

TpSet MinEdgeCutPartitioner::MaximalLocalQuery(const QueryGraph& gq,
                                               int vertex) const {
  return gq.vertex(vertex).IncidentTps();
}

}  // namespace parqo
