// Dynamic (hot-query-aware) partitioning — the extension the paper's
// appendix sketches for run-time repartitioning systems such as
// AdPart [45] and [5]. A base static partitioner is augmented with a
// list of "hot" queries whose matches the system has re-co-located:
//
//   * query side (appendix B): the maximal local query at a query vertex
//     v is the larger of combine(v, G_Q) and any connected intersection
//     between the query and a hot query that touches v;
//   * data side: on top of the base assignment, every concrete match
//     subgraph of each hot query is replicated onto one node.
//
// Caveat (inherent to the appendix's scheme, documented here rather than
// hidden): a *strict* sub-pattern of a hot query is only guaranteed local
// for matches that extend to a full hot-query match. Real adaptive
// engines handle misses by falling back to distributed execution; this
// model is therefore intended for optimizer studies and for workloads
// where queries embed entire hot queries (which execution tests cover).

#ifndef PARQO_PARTITION_HOT_QUERY_H_
#define PARQO_PARTITION_HOT_QUERY_H_

#include <memory>
#include <vector>

#include "partition/partitioner.h"
#include "sparql/query.h"

namespace parqo {

class HotQueryPartitioner : public Partitioner {
 public:
  /// `base` must outlive this object. Each hot query is a set of triple
  /// patterns (a BGP).
  HotQueryPartitioner(const Partitioner& base,
                      std::vector<std::vector<TriplePattern>> hot_queries);

  std::string name() const override;
  PartitionAssignment PartitionData(const RdfGraph& graph,
                                    int n) const override;
  TpSet MaximalLocalQuery(const QueryGraph& gq, int vertex) const override;

 private:
  const Partitioner* base_;
  std::vector<std::vector<TriplePattern>> hot_queries_;
};

/// The connected set of `gq` patterns that structurally embed into the
/// hot query `hot` (constants must match where `hot` has constants;
/// variables are positional wildcards), restricted to the component
/// containing `vertex`. Exposed for tests.
TpSet HotQueryIntersection(const QueryGraph& gq,
                           const std::vector<TriplePattern>& hot,
                           int vertex);

}  // namespace parqo

#endif  // PARQO_PARTITION_HOT_QUERY_H_
