// The local-query check of Section III-B / Appendix A. At optimizer
// startup the maximal local query M_LQ_v = combine(v, G_Q) is computed for
// every query-graph vertex; afterwards "is subquery SQ local?" is a bitset
// containment test against each MLQ — Theta(|V_Q|) worst case, Theta(1)
// per test (Theorem 5).

#ifndef PARQO_PARTITION_LOCAL_QUERY_INDEX_H_
#define PARQO_PARTITION_LOCAL_QUERY_INDEX_H_

#include <vector>

#include "common/tp_set.h"
#include "partition/partitioner.h"
#include "query/query_graph.h"

namespace parqo {

class LocalQueryIndex {
 public:
  /// Computes combine(v, G_Q) for every vertex of the query graph.
  LocalQueryIndex(const QueryGraph& gq, const Partitioner& partitioner);

  /// Direct construction from MLQ bitsets (tests, custom models).
  explicit LocalQueryIndex(std::vector<TpSet> mlqs);

  /// An index under which nothing (beyond single patterns) is local.
  static LocalQueryIndex None(int num_tps);

  /// True iff the (connected) subquery is a local query: it is contained
  /// in some maximal local query (Theorem 5). Singletons are always local.
  bool IsLocal(TpSet sq) const {
    if (sq.Count() <= 1) return true;
    for (TpSet mlq : mlqs_) {
      if (sq.IsSubsetOf(mlq)) return true;
    }
    return false;
  }

  /// Deduplicated, maximal-only MLQ bitsets.
  const std::vector<TpSet>& mlqs() const { return mlqs_; }

 private:
  void Minimize();

  std::vector<TpSet> mlqs_;
};

}  // namespace parqo

#endif  // PARQO_PARTITION_LOCAL_QUERY_INDEX_H_
