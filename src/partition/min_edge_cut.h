// Undirected 1-hop guarantee partitioning in the style of Huang, Abadi &
// Ren's "un-one-hop" (reference [4]; Example 2): combine(v) gathers all
// triples incident to v, distribute is a balanced graph partitioner that
// tries to minimize cut edges. The paper's prototype uses METIS; we
// substitute a deterministic multi-seed BFS growth (documented in
// DESIGN.md) — the optimizer-visible behavior (which queries are local)
// is identical because it depends only on combine.

#ifndef PARQO_PARTITION_MIN_EDGE_CUT_H_
#define PARQO_PARTITION_MIN_EDGE_CUT_H_

#include "partition/partitioner.h"

namespace parqo {

class MinEdgeCutPartitioner : public Partitioner {
 public:
  std::string name() const override { return "min-edge-cut"; }
  PartitionAssignment PartitionData(const RdfGraph& graph,
                                    int n) const override;
  TpSet MaximalLocalQuery(const QueryGraph& gq, int vertex) const override;
};

}  // namespace parqo

#endif  // PARQO_PARTITION_MIN_EDGE_CUT_H_
