#include "partition/hot_query.h"

#include <algorithm>

#include "query/match.h"
#include "query/join_graph.h"

namespace parqo {
namespace {

// Does query pattern `q` structurally embed into hot pattern `h`?
// Positions where `h` is constant must match exactly; where `h` is a
// variable, `q` may have anything (a constant is a specialization).
bool PatternEmbeds(const TriplePattern& q, const TriplePattern& h) {
  auto pos = [](const PatternTerm& qt, const PatternTerm& ht) {
    if (!ht.IsVar()) return !qt.IsVar() && qt.term == ht.term;
    return true;
  };
  return pos(q.s, h.s) && pos(q.p, h.p) && pos(q.o, h.o);
}

}  // namespace

TpSet HotQueryIntersection(const QueryGraph& gq,
                           const std::vector<TriplePattern>& hot,
                           int vertex) {
  const JoinGraph& jg = gq.join_graph();
  TpSet candidates;
  for (int tp = 0; tp < jg.num_tps(); ++tp) {
    for (const TriplePattern& h : hot) {
      if (PatternEmbeds(jg.pattern(tp), h)) {
        candidates.Add(tp);
        break;
      }
    }
  }
  // Condition (2): anchored at the vertex.
  TpSet incident = gq.vertex(vertex).IncidentTps();
  if (!candidates.Intersects(incident)) return TpSet{};
  // Condition (1): connected; keep the component containing the vertex.
  int seed = (candidates & incident).First();
  return jg.ComponentOf(seed, candidates);
}

HotQueryPartitioner::HotQueryPartitioner(
    const Partitioner& base,
    std::vector<std::vector<TriplePattern>> hot_queries)
    : base_(&base), hot_queries_(std::move(hot_queries)) {}

std::string HotQueryPartitioner::name() const {
  return base_->name() + "+hot";
}

PartitionAssignment HotQueryPartitioner::PartitionData(
    const RdfGraph& graph, int n) const {
  PartitionAssignment out = base_->PartitionData(graph, n);

  // Index triples for back-translation of match subgraphs.
  // (The triple array is sorted and deduplicated by construction.)
  const auto& triples = graph.triples();
  auto index_of = [&](const Triple& t) -> TripleIdx {
    auto it = std::lower_bound(triples.begin(), triples.end(), t);
    return static_cast<TripleIdx>(it - triples.begin());
  };

  constexpr std::size_t kMatchCap = 1u << 17;
  for (const auto& hot : hot_queries_) {
    JoinGraph jg(hot);
    for (const BgpMatch& match : MatchBgp(jg, graph, kMatchCap)) {
      // Co-locate the whole match subgraph at the node chosen by the
      // first binding (the run-time system's anchor).
      int node = HashToNode(match.bindings.empty() ? TermId{1}
                                                   : match.bindings[0],
                            n);
      for (const Triple& t : match.triples) {
        out.node_triples[node].push_back(index_of(t));
      }
    }
  }
  for (auto& bucket : out.node_triples) {
    std::sort(bucket.begin(), bucket.end());
    bucket.erase(std::unique(bucket.begin(), bucket.end()), bucket.end());
  }
  return out;
}

TpSet HotQueryPartitioner::MaximalLocalQuery(const QueryGraph& gq,
                                             int vertex) const {
  TpSet best = base_->MaximalLocalQuery(gq, vertex);
  for (const auto& hot : hot_queries_) {
    TpSet candidate = HotQueryIntersection(gq, hot, vertex);
    if (candidate.Count() > best.Count()) best = candidate;
  }
  return best;
}

}  // namespace parqo
