#include "partition/partitioner.h"

#include <algorithm>
#include <cstddef>

#include "common/metrics.h"

namespace parqo {

PartitionAnalysis AnalyzeAssignment(const RdfGraph& graph,
                                    const PartitionAssignment& assignment) {
  PartitionAnalysis out;
  out.total_edges = graph.NumTriples();
  out.total_stored = assignment.TotalStored();
  out.replication_factor = assignment.ReplicationFactor(graph.NumTriples());
  const int n = assignment.num_nodes;
  out.node_stored.reserve(assignment.node_triples.size());
  for (const auto& v : assignment.node_triples) {
    out.node_stored.push_back(v.size());
  }

  if (n > 0 && graph.NumTriples() > 0) {
    // Incident-triple counts per (vertex, node), flattened; vertex ids
    // are dense dictionary ids so direct indexing beats hashing.
    TermId max_v = 0;
    for (TermId v : graph.vertices()) max_v = std::max(max_v, v);
    std::vector<std::uint32_t> counts(
        (static_cast<std::size_t>(max_v) + 1) * n, 0);
    const std::vector<Triple>& triples = graph.triples();
    for (int i = 0; i < n; ++i) {
      for (TripleIdx t : assignment.node_triples[i]) {
        const Triple& tr = triples[t];
        ++counts[static_cast<std::size_t>(tr.s) * n + i];
        ++counts[static_cast<std::size_t>(tr.o) * n + i];
      }
    }
    auto owner = [&](TermId v) {
      const std::uint32_t* row = counts.data() +
                                 static_cast<std::size_t>(v) * n;
      int best = 0;
      for (int i = 1; i < n; ++i) {
        if (row[i] > row[best]) best = i;
      }
      return best;
    };
    for (const Triple& tr : triples) {
      if (owner(tr.s) != owner(tr.o)) ++out.cut_edges;
    }
  }

  if (MetricsEnabled()) {
    MetricsRegistry& reg = MetricsRegistry::Global();
    reg.gauge("partition.replication_factor").Set(out.replication_factor);
    reg.gauge("partition.total_stored")
        .Set(static_cast<double>(out.total_stored));
    reg.gauge("partition.cut_edges").Set(static_cast<double>(out.cut_edges));
    reg.gauge("partition.total_edges")
        .Set(static_cast<double>(out.total_edges));
  }
  return out;
}

}  // namespace parqo
