#include "partition/local_query_index.h"

#include <algorithm>
#include <utility>

namespace parqo {

LocalQueryIndex::LocalQueryIndex(const QueryGraph& gq,
                                 const Partitioner& partitioner) {
  mlqs_.reserve(gq.num_vertices());
  for (int v = 0; v < gq.num_vertices(); ++v) {
    TpSet mlq = partitioner.MaximalLocalQuery(gq, v);
    if (!mlq.Empty()) mlqs_.push_back(mlq);
  }
  Minimize();
}

LocalQueryIndex::LocalQueryIndex(std::vector<TpSet> mlqs)
    : mlqs_(std::move(mlqs)) {
  Minimize();
}

LocalQueryIndex LocalQueryIndex::None(int /*num_tps*/) {
  return LocalQueryIndex(std::vector<TpSet>{});
}

void LocalQueryIndex::Minimize() {
  // Drop MLQs contained in another MLQ; they cannot change IsLocal().
  std::sort(mlqs_.begin(), mlqs_.end(), [](TpSet a, TpSet b) {
    return a.Count() > b.Count();
  });
  std::vector<TpSet> kept;
  for (TpSet m : mlqs_) {
    bool dominated = false;
    for (TpSet k : kept) {
      if (m.IsSubsetOf(k)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(m);
  }
  mlqs_ = std::move(kept);
}

}  // namespace parqo
