#include "partition/path_bmc.h"

#include <algorithm>
#include <vector>

namespace parqo {
namespace {

// Forward-reachable triple indexes from `v`, capped to keep pathological
// graphs bounded (the cap is far above anything our generators produce).
// Vertices visited along the way are recorded in `reached` — any vertex
// reachable from an anchor has its own forward cone contained in the
// anchor's cone, which is what the locality contract needs.
std::vector<TripleIdx> ForwardCone(const RdfGraph& graph, TermId v,
                                   std::size_t cap,
                                   std::vector<bool>* visited_scratch,
                                   std::vector<TermId>* touched_scratch,
                                   std::vector<bool>* reached) {
  std::vector<TripleIdx> cone;
  std::vector<TermId> frontier{v};
  (*visited_scratch)[v] = true;
  touched_scratch->push_back(v);
  while (!frontier.empty() && cone.size() < cap) {
    std::vector<TermId> next;
    for (TermId u : frontier) {
      for (TripleIdx e : graph.OutEdges(u)) {
        cone.push_back(e);
        TermId o = graph.triples()[e].o;
        if (!(*visited_scratch)[o]) {
          (*visited_scratch)[o] = true;
          touched_scratch->push_back(o);
          next.push_back(o);
        }
        if (cone.size() >= cap) break;
      }
      if (cone.size() >= cap) break;
    }
    frontier = std::move(next);
  }
  for (TermId u : *touched_scratch) {
    (*visited_scratch)[u] = false;
    if (reached != nullptr) (*reached)[u] = true;
  }
  touched_scratch->clear();
  return cone;
}

}  // namespace

PartitionAssignment PathBmcPartitioner::PartitionData(const RdfGraph& graph,
                                                      int n) const {
  PartitionAssignment out;
  out.num_nodes = n;
  out.node_triples.resize(n);

  constexpr std::size_t kConeCap = 1u << 20;

  const std::size_t id_bound = graph.dict().IdUpperBound();
  std::vector<bool> visited(id_bound, false);
  std::vector<TermId> touched;
  // reached[v]: v lies inside some anchor's cone, so cone(v) is stored
  // intact on that anchor's node.
  std::vector<bool> reached(id_bound, false);

  // Elements are anchored at source vertices (no incoming edges); cyclic
  // regions with no source get representative anchors afterwards.
  std::vector<std::pair<TermId, std::size_t>> anchors;  // (vertex, size)
  for (TermId v : graph.vertices()) {
    if (graph.InDegree(v) == 0 && graph.OutDegree(v) > 0) {
      anchors.emplace_back(v, 0);
    }
  }
  // First pass: size the source cones and record reachability.
  for (auto& [v, size] : anchors) {
    size =
        ForwardCone(graph, v, kConeCap, &visited, &touched, &reached).size();
  }
  // Cover source-less strongly-connected regions: any still-unreached
  // vertex with out-edges becomes an anchor (its cone then contains the
  // whole cycle it sits on).
  for (TermId v : graph.vertices()) {
    if (!reached[v] && graph.OutDegree(v) > 0) {
      std::size_t size =
          ForwardCone(graph, v, kConeCap, &visited, &touched, &reached)
              .size();
      anchors.emplace_back(v, size);
    }
  }

  // Second pass: assign the largest elements to the least-loaded node
  // (greedy merge in the spirit of Path-BM's bottom-up merging).
  std::sort(anchors.begin(), anchors.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<std::size_t> load(n, 0);
  std::vector<bool> covered(graph.NumTriples(), false);
  for (const auto& [v, size] : anchors) {
    int best = 0;
    for (int i = 1; i < n; ++i) {
      if (load[i] < load[best]) best = i;
    }
    std::vector<TripleIdx> cone =
        ForwardCone(graph, v, kConeCap, &visited, &touched, nullptr);
    for (TripleIdx e : cone) covered[e] = true;
    std::sort(cone.begin(), cone.end());
    cone.erase(std::unique(cone.begin(), cone.end()), cone.end());
    auto& bucket = out.node_triples[best];
    bucket.insert(bucket.end(), cone.begin(), cone.end());
    load[best] += cone.size();
  }

  // Safety net: any triple in no cone at all (possible only under the
  // cone cap) falls back to hash placement so coverage stays total.
  for (TripleIdx i = 0; i < graph.NumTriples(); ++i) {
    if (!covered[i]) {
      int node = HashToNode(graph.triples()[i].s, n);
      out.node_triples[node].push_back(i);
    }
  }
  // A node may have received overlapping elements; deduplicate per node.
  for (auto& bucket : out.node_triples) {
    std::sort(bucket.begin(), bucket.end());
    bucket.erase(std::unique(bucket.begin(), bucket.end()), bucket.end());
  }
  return out;
}

TpSet PathBmcPartitioner::MaximalLocalQuery(const QueryGraph& gq,
                                            int vertex) const {
  return gq.ForwardReachableTps(vertex, /*max_hops=*/-1);
}

}  // namespace parqo
