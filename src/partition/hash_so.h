// Hash partitioning on both the subject and the object of each triple
// ("Hash-SO", Section V-A). In the generic model: combine(v) gathers all
// triples incident to v (subject or object) and distribute hashes v.
// Consequently a subquery is local iff all its patterns share one vertex
// (Example 7) — stars are local, which is what the MSC and DP-Bushy
// optimizers implicitly assume.

#ifndef PARQO_PARTITION_HASH_SO_H_
#define PARQO_PARTITION_HASH_SO_H_

#include "partition/partitioner.h"

namespace parqo {

class HashSoPartitioner : public Partitioner {
 public:
  std::string name() const override { return "hash-so"; }
  PartitionAssignment PartitionData(const RdfGraph& graph,
                                    int n) const override;
  TpSet MaximalLocalQuery(const QueryGraph& gq, int vertex) const override;
};

}  // namespace parqo

#endif  // PARQO_PARTITION_HASH_SO_H_
