// The 2-hop forward semantic hash partitioning ("2f") of Lee & Liu,
// VLDB 2014 (reference [3] of the paper; Example 2). combine(v) assembles
// all edges within 2-hop forward distance of v; distribute hashes v.
// A triple (s, p, o) therefore lands on hash(s) and on hash(u) for every
// in-neighbor u of s. Queries contained in a 2-hop forward cone of some
// vertex become local.

#ifndef PARQO_PARTITION_TWO_HOP_H_
#define PARQO_PARTITION_TWO_HOP_H_

#include "partition/partitioner.h"

namespace parqo {

class TwoHopForwardPartitioner : public Partitioner {
 public:
  std::string name() const override { return "2f"; }
  PartitionAssignment PartitionData(const RdfGraph& graph,
                                    int n) const override;
  TpSet MaximalLocalQuery(const QueryGraph& gq, int vertex) const override;
};

}  // namespace parqo

#endif  // PARQO_PARTITION_TWO_HOP_H_
