// Cost-model calibration. Table II's normalization factors were
// "obtained by our experiments" (Section V-A); this module makes that
// step reproducible: given observed operator executions — input sizes,
// output size, method, and measured wall time — it fits the Table I
// coefficients by least squares, one (alpha, beta, gamma) triple per
// join method, sharing alpha across methods by averaging.
//
//   time ~ alpha * sum|in| + beta_m * transfer_units_m + gamma_m * |out|
//
// where transfer_units is (sum-max)*n for broadcast and sum for
// repartition (0 for local joins, so local fits only alpha and gamma).

#ifndef PARQO_COST_CALIBRATE_H_
#define PARQO_COST_CALIBRATE_H_

#include <span>
#include <vector>

#include "cost/cost_model.h"

namespace parqo {

/// One observed operator execution.
struct CalibrationSample {
  JoinMethod method = JoinMethod::kLocal;
  std::vector<double> input_cards;
  double output_card = 0;
  double seconds = 0;  ///< Measured wall time of the operator.
};

/// Fits Table I coefficients to the samples. Methods with no samples
/// keep their values from `initial`; `num_nodes` must match the cluster
/// the samples came from. Coefficients are clamped to be non-negative.
CostParams CalibrateCostParams(std::span<const CalibrationSample> samples,
                               const CostParams& initial);

}  // namespace parqo

#endif  // PARQO_COST_CALIBRATE_H_
