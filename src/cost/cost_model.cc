#include "cost/cost_model.h"

#include <algorithm>

namespace parqo {

std::string ToString(JoinMethod method) {
  switch (method) {
    case JoinMethod::kLocal: return "local";
    case JoinMethod::kBroadcast: return "broadcast";
    case JoinMethod::kRepartition: return "repartition";
  }
  return "?";
}

double CostModel::IoCost(std::span<const double> input_cards) const {
  double sum = 0;
  for (double c : input_cards) sum += c;
  return params_.alpha * sum;
}

double CostModel::TransferCost(JoinMethod method,
                               std::span<const double> input_cards) const {
  double sum = 0;
  double max = 0;
  for (double c : input_cards) {
    sum += c;
    max = std::max(max, c);
  }
  switch (method) {
    case JoinMethod::kLocal:
      return 0;
    case JoinMethod::kBroadcast:
      return params_.beta_broadcast * (sum - max) * params_.num_nodes;
    case JoinMethod::kRepartition:
      return params_.beta_repartition * sum;
  }
  return 0;
}

double CostModel::ComputeCost(JoinMethod method, double output_card) const {
  switch (method) {
    case JoinMethod::kLocal:
      return params_.gamma_local * output_card;
    case JoinMethod::kBroadcast:
      return params_.gamma_broadcast * output_card;
    case JoinMethod::kRepartition:
      return params_.gamma_repartition * output_card;
  }
  return 0;
}

double CostModel::JoinOpCost(JoinMethod method,
                             std::span<const double> input_cards,
                             double output_card) const {
  return IoCost(input_cards) + TransferCost(method, input_cards) +
         ComputeCost(method, output_card);
}

}  // namespace parqo
