// The cost model of Section II-E. A k-way join operator's cost is
//
//   C(op) = C_io + C_trans + C_join                       (Eq. 4)
//
// with the per-algorithm components of Table I:
//
//             C_io              C_trans                             C_join
//   Local     a*sum|SQ_i|       0                                   yL*|result|
//   Broadcast a*sum|SQ_i|       bB*(sum|SQ_i| - max|SQ_i|)*n        yB*|result|
//   Repart.   a*sum|SQ_i|       bR*sum|SQ_i|                        yR*|result|
//
// and plan cost is the recursive Eq. 3:
//
//   C(p(Q)) = max{C(p(SQ_1)), ..., C(p(SQ_k))} + C(op_join)
//
// The default normalization factors are the paper's Table II values.

#ifndef PARQO_COST_COST_MODEL_H_
#define PARQO_COST_COST_MODEL_H_

#include <span>
#include <string>

namespace parqo {

/// How a k-way join operator is executed (Section II-D).
enum class JoinMethod {
  kLocal,        ///< Per-node join, no cross-node communication.
  kBroadcast,    ///< k-1 smaller inputs broadcast to the largest's nodes.
  kRepartition,  ///< All inputs repartitioned on the shared join variable.
};

std::string ToString(JoinMethod method);

/// Normalization factors (Table II) plus the cluster size n, which the
/// broadcast-join network term depends on.
struct CostParams {
  double alpha = 0.02;              ///< a: I/O per tuple.
  double beta_broadcast = 0.05;     ///< bB: network per broadcast tuple.
  double beta_repartition = 0.1;    ///< bR: network per repartitioned tuple.
  double gamma_local = 0.004;       ///< yL: local-join work per result tuple.
  double gamma_broadcast = 0.008;   ///< yB.
  double gamma_repartition = 0.005; ///< yR.
  int num_nodes = 10;               ///< n: computing nodes in the cluster.
};

class CostModel {
 public:
  explicit CostModel(CostParams params = CostParams{}) : params_(params) {}

  const CostParams& params() const { return params_; }

  /// Cost of one k-way join operator given its input and output
  /// cardinalities (Table I). `input_cards` must be non-empty.
  double JoinOpCost(JoinMethod method, std::span<const double> input_cards,
                    double output_card) const;

  /// Individual components, exposed for tests and the executor's
  /// measured-cost reporting.
  double IoCost(std::span<const double> input_cards) const;
  double TransferCost(JoinMethod method,
                      std::span<const double> input_cards) const;
  double ComputeCost(JoinMethod method, double output_card) const;

 private:
  CostParams params_;
};

}  // namespace parqo

#endif  // PARQO_COST_COST_MODEL_H_
