#include "cost/calibrate.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace parqo {
namespace {

// Solves the k x k normal-equation system A x = b by Gaussian elimination
// with partial pivoting; returns false when (numerically) singular.
template <int K>
bool Solve(std::array<std::array<double, K>, K> a, std::array<double, K> b,
           std::array<double, K>* x) {
  for (int col = 0; col < K; ++col) {
    int pivot = col;
    for (int r = col + 1; r < K; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (int r = 0; r < K; ++r) {
      if (r == col) continue;
      double f = a[r][col] / a[col][col];
      for (int c = col; c < K; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  for (int i = 0; i < K; ++i) (*x)[i] = b[i] / a[i][i];
  return true;
}

struct Features {
  double io = 0;        // sum of input cardinalities
  double transfer = 0;  // method-specific network units
  double compute = 0;   // output cardinality
};

Features Featurize(const CalibrationSample& s, int num_nodes) {
  Features f;
  double max = 0;
  for (double c : s.input_cards) {
    f.io += c;
    max = std::max(max, c);
  }
  switch (s.method) {
    case JoinMethod::kLocal:
      f.transfer = 0;
      break;
    case JoinMethod::kBroadcast:
      f.transfer = (f.io - max) * num_nodes;
      break;
    case JoinMethod::kRepartition:
      f.transfer = f.io;
      break;
  }
  f.compute = s.output_card;
  return f;
}

}  // namespace

CostParams CalibrateCostParams(std::span<const CalibrationSample> samples,
                               const CostParams& initial) {
  CostParams out = initial;

  // Per-method 3-variable least squares on (io, transfer, compute);
  // local joins have no transfer column, so they get a 2-variable fit.
  std::vector<double> alphas;
  auto fit3 = [&](JoinMethod method, double* beta, double* gamma) {
    std::array<std::array<double, 3>, 3> a{};
    std::array<double, 3> b{};
    int count = 0;
    for (const CalibrationSample& s : samples) {
      if (s.method != method) continue;
      Features f = Featurize(s, initial.num_nodes);
      const double v[3] = {f.io, f.transfer, f.compute};
      for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) a[i][j] += v[i] * v[j];
        b[i] += v[i] * s.seconds;
      }
      ++count;
    }
    if (count < 3) return;
    std::array<double, 3> x{};
    if (!Solve<3>(a, b, &x)) return;
    alphas.push_back(std::max(0.0, x[0]));
    *beta = std::max(0.0, x[1]);
    *gamma = std::max(0.0, x[2]);
  };

  fit3(JoinMethod::kBroadcast, &out.beta_broadcast, &out.gamma_broadcast);
  fit3(JoinMethod::kRepartition, &out.beta_repartition,
       &out.gamma_repartition);

  {
    std::array<std::array<double, 2>, 2> a{};
    std::array<double, 2> b{};
    int count = 0;
    for (const CalibrationSample& s : samples) {
      if (s.method != JoinMethod::kLocal) continue;
      Features f = Featurize(s, initial.num_nodes);
      const double v[2] = {f.io, f.compute};
      for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j) a[i][j] += v[i] * v[j];
        b[i] += v[i] * s.seconds;
      }
      ++count;
    }
    if (count >= 2) {
      std::array<double, 2> x{};
      if (Solve<2>(a, b, &x)) {
        alphas.push_back(std::max(0.0, x[0]));
        out.gamma_local = std::max(0.0, x[1]);
      }
    }
  }

  if (!alphas.empty()) {
    double sum = 0;
    for (double v : alphas) sum += v;
    out.alpha = sum / static_cast<double>(alphas.size());
  }
  return out;
}

}  // namespace parqo
