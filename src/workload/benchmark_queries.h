// The fifteen benchmark queries of Section V (Table III): L1-L10 over the
// LUBM-like dataset and U1-U5 over the UniProt-like dataset, taken from
// the paper's appendix. Constants referring to generated entities are kept
// in the original LUBM/UniProt naming scheme; the two adaptations (L5/L6
// publication anchors use departments that exist at our scale) are noted
// inline in the .cc.

#ifndef PARQO_WORKLOAD_BENCHMARK_QUERIES_H_
#define PARQO_WORKLOAD_BENCHMARK_QUERIES_H_

#include <string>
#include <vector>

#include "query/shape.h"

namespace parqo {

struct BenchmarkQuery {
  std::string name;      ///< "L1" ... "L10", "U1" ... "U5".
  std::string sparql;    ///< Full query text (PREFIX + SELECT + WHERE).
  QueryShape shape;      ///< Table III's category.
  int num_patterns;      ///< Table III's size.
  bool lubm;             ///< true: LUBM dataset; false: UniProt.
};

/// All fifteen queries in Table III order.
const std::vector<BenchmarkQuery>& AllBenchmarkQueries();

/// Lookup by name; aborts on unknown names.
const BenchmarkQuery& GetBenchmarkQuery(const std::string& name);

}  // namespace parqo

#endif  // PARQO_WORKLOAD_BENCHMARK_QUERIES_H_
