// WatDiv-like stress-test workload (Aluc et al., ISWC 2014; reference
// [27]). The paper uses WatDiv's 124 structurally diverse query templates
// (each instantiated 100 times) purely to stress the *optimizers* —
// Figure 6 reports optimization time and plan-cost CDFs, not data results.
// This generator reproduces that setup: templates are random walks with
// occasional branching over an e-commerce schema graph (the WatDiv
// domain: users, products, reviews, retailers, ...), so most templates
// are stars or joins of a few stars, exactly the structural mix the paper
// observes; instances attach randomized statistics.

#ifndef PARQO_WORKLOAD_WATDIV_H_
#define PARQO_WORKLOAD_WATDIV_H_

#include <vector>

#include "common/rng.h"
#include "workload/random_query.h"

namespace parqo {

struct WatdivTemplate {
  int id = 0;
  std::vector<TriplePattern> patterns;
};

/// Generates `count` templates (the paper uses 124) with sizes 2..10.
std::vector<WatdivTemplate> GenerateWatdivTemplates(int count, Rng& rng);

/// One instance of a template: same structure, fresh random statistics
/// (cardinalities in [1, 1000], bindings in [1, cardinality]).
GeneratedQuery InstantiateWatdivTemplate(const WatdivTemplate& tmpl,
                                         Rng& rng);

}  // namespace parqo

#endif  // PARQO_WORKLOAD_WATDIV_H_
