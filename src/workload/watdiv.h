// WatDiv-like stress-test workload (Aluc et al., ISWC 2014; reference
// [27]). The paper uses WatDiv's 124 structurally diverse query templates
// (each instantiated 100 times) purely to stress the *optimizers* —
// Figure 6 reports optimization time and plan-cost CDFs, not data results.
// This generator reproduces that setup: templates are random walks with
// occasional branching over an e-commerce schema graph (the WatDiv
// domain: users, products, reviews, retailers, ...), so most templates
// are stars or joins of a few stars, exactly the structural mix the paper
// observes; instances attach randomized statistics.

#ifndef PARQO_WORKLOAD_WATDIV_H_
#define PARQO_WORKLOAD_WATDIV_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "rdf/graph.h"
#include "workload/random_query.h"

namespace parqo {

struct WatdivTemplate {
  int id = 0;
  std::vector<TriplePattern> patterns;
};

/// Generates `count` templates (the paper uses 124) with sizes 2..10.
std::vector<WatdivTemplate> GenerateWatdivTemplates(int count, Rng& rng);

/// One instance of a template: same structure, fresh random statistics
/// (cardinalities in [1, 1000], bindings in [1, cardinality]).
GeneratedQuery InstantiateWatdivTemplate(const WatdivTemplate& tmpl,
                                         Rng& rng);

/// Parameters for GenerateWatdivData.
struct WatdivDataConfig {
  /// Entities per schema class. Template constants reference entity ids
  /// 0..999, so the default keeps every parameterized template
  /// satisfiable against the generated data.
  int entities_per_class = 1000;
  /// Average outgoing triples per (subject entity, schema edge).
  double density = 1.5;
  std::uint64_t seed = 7;
};

/// An executable WatDiv-style dataset over the same e-commerce schema the
/// templates walk: entity IRIs follow the template-constant naming
/// (".../entity/<Class><i>"), triples run along the 20 schema edges with
/// Zipf-skewed object choice. Lets parqo_report and bench_main *execute*
/// WatDiv queries, not just optimize them.
RdfGraph GenerateWatdivData(const WatdivDataConfig& config);

}  // namespace parqo

#endif  // PARQO_WORKLOAD_WATDIV_H_
