// The paper's random query generator (Section V-A): produces star, chain,
// cycle, tree, and dense queries of a requested size, with cardinalities
// drawn uniformly from [1, max_cardinality] and per-variable binding
// counts from [1, cardinality]. These drive the search-space study
// (Table VII) and the optimization-time / plan-cost figures (7 and 8).

#ifndef PARQO_WORKLOAD_RANDOM_QUERY_H_
#define PARQO_WORKLOAD_RANDOM_QUERY_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "query/shape.h"
#include "sparql/query.h"
#include "stats/statistics.h"

namespace parqo {

/// A generated query plus its synthetic statistics. The statistics are
/// keyed by variable name so they can be replayed onto the JoinGraph's
/// VarIds once it exists (see MakeStats).
struct GeneratedQuery {
  std::vector<TriplePattern> patterns;
  std::vector<double> cardinalities;  // per pattern
  /// Per pattern: (variable name, binding count) pairs.
  std::vector<std::vector<std::pair<std::string, double>>> bindings;

  QueryStatistics MakeStats(const JoinGraph& jg) const;
};

/// Generates a connected query of `shape` with `num_tps` patterns.
/// Shapes kSingle/kDisconnected are invalid requests. Tree and dense
/// shapes are randomized and re-drawn a few times until classification
/// matches; the final query always has the requested size and is
/// connected.
GeneratedQuery GenerateRandomQuery(QueryShape shape, int num_tps, Rng& rng,
                                   int max_cardinality = 1000);

}  // namespace parqo

#endif  // PARQO_WORKLOAD_RANDOM_QUERY_H_
