#include "workload/watdiv.h"

#include <string>
#include <vector>

namespace parqo {
namespace {

// A slice of the WatDiv e-commerce schema: (subject class, predicate,
// object class). Classes index into kClasses.
constexpr const char* kClasses[] = {
    "User",   "Product", "Review",  "Retailer", "Website",
    "Genre",  "City",    "Country", "Offer",    "Purchase",
};
constexpr int kNumClasses = 10;

struct SchemaEdge {
  int subject_class;
  const char* predicate;
  int object_class;
};

constexpr SchemaEdge kSchema[] = {
    {0, "follows", 0},         {0, "friendOf", 0},
    {0, "likes", 1},           {0, "makesPurchase", 9},
    {0, "subscribesTo", 4},    {0, "userCity", 6},
    {2, "reviewFor", 1},       {2, "reviewer", 0},
    {2, "ratingSite", 4},      {1, "hasGenre", 5},
    {1, "producedBy", 3},      {3, "homepage", 4},
    {3, "retailerCountry", 7}, {8, "offerProduct", 1},
    {8, "offerRetailer", 3},   {9, "purchaseFor", 1},
    {6, "cityCountry", 7},     {5, "parentGenre", 5},
    {1, "relatedTo", 1},       {4, "hostedIn", 7},
};
constexpr int kNumSchemaEdges = 20;

std::string PredIri(const char* predicate) {
  return std::string("http://db.uwaterloo.ca/watdiv/") + predicate;
}

}  // namespace

std::vector<WatdivTemplate> GenerateWatdivTemplates(int count, Rng& rng) {
  std::vector<WatdivTemplate> out;
  out.reserve(count);
  for (int id = 0; id < count; ++id) {
    WatdivTemplate tmpl;
    tmpl.id = id;
    const int size = static_cast<int>(rng.Uniform(2, 10));

    // Pattern-graph nodes: (variable name, schema class).
    struct Node {
      std::string var;
      int cls;
    };
    std::vector<Node> nodes;
    int next_var = 0;
    auto new_node = [&](int cls) {
      // Built by append: chained operator+ here trips GCC 12's
      // -Wrestrict false positive (PR105651) under -O2.
      std::string var = "v";
      var += std::to_string(next_var++);
      nodes.push_back(Node{std::move(var), cls});
      return static_cast<int>(nodes.size()) - 1;
    };
    new_node(static_cast<int>(rng.Uniform(0, kNumClasses - 1)));

    int guard = 0;
    while (static_cast<int>(tmpl.patterns.size()) < size &&
           ++guard < 1000) {
      // Random-walk step: pick an existing node (bias to the newest for
      // chains, to the first for stars) and a schema edge touching its
      // class, in either direction.
      int at;
      double roll = rng.UniformDouble();
      if (roll < 0.5) {
        at = static_cast<int>(nodes.size()) - 1;  // extend the walk
      } else if (roll < 0.8) {
        at = 0;  // branch from the root (star-ness)
      } else {
        at = static_cast<int>(rng.Uniform(0, nodes.size() - 1));
      }
      std::vector<int> forward, backward;
      for (int e = 0; e < kNumSchemaEdges; ++e) {
        if (kSchema[e].subject_class == nodes[at].cls) forward.push_back(e);
        if (kSchema[e].object_class == nodes[at].cls) backward.push_back(e);
      }
      if (forward.empty() && backward.empty()) break;
      bool go_forward =
          !forward.empty() &&
          (backward.empty() || rng.Bernoulli(0.6));
      int e = go_forward
                  ? forward[rng.Uniform(0, forward.size() - 1)]
                  : backward[rng.Uniform(0, backward.size() - 1)];
      int other = new_node(go_forward ? kSchema[e].object_class
                                      : kSchema[e].subject_class);
      TriplePattern tp;
      const Node& subject = go_forward ? nodes[at] : nodes[other];
      const Node& object = go_forward ? nodes[other] : nodes[at];
      tp.s = PatternTerm::Var(subject.var);
      tp.p = PatternTerm::Const(Term::Iri(PredIri(kSchema[e].predicate)));
      tp.o = PatternTerm::Var(object.var);
      // The fresh leaf node occasionally binds to a constant, like
      // WatDiv's parameterized placeholders. Only the *new* endpoint may
      // be replaced — the walk endpoint is what keeps the query
      // connected.
      if (rng.Bernoulli(0.2) &&
          static_cast<int>(tmpl.patterns.size()) + 1 == size) {
        const Node& fresh = nodes[other];
        PatternTerm constant = PatternTerm::Const(Term::Iri(
            "http://db.uwaterloo.ca/watdiv/entity/" +
            std::string(kClasses[fresh.cls]) +
            std::to_string(rng.Uniform(0, 999))));
        if (go_forward) {
          tp.o = constant;
        } else {
          tp.s = constant;
        }
      }
      tmpl.patterns.push_back(std::move(tp));
    }
    if (tmpl.patterns.size() < 2) {
      --id;  // re-draw degenerate walks
      continue;
    }
    out.push_back(std::move(tmpl));
  }
  return out;
}

RdfGraph GenerateWatdivData(const WatdivDataConfig& config) {
  Rng rng(config.seed);
  Dictionary dict;
  std::vector<Triple> triples;
  auto entity = [&](int cls, std::int64_t i) {
    return dict.Encode(
        Term::Iri("http://db.uwaterloo.ca/watdiv/entity/" +
                  std::string(kClasses[cls]) + std::to_string(i)));
  };
  for (int ei = 0; ei < kNumSchemaEdges; ++ei) {
    const SchemaEdge& edge = kSchema[ei];
    TermId pred = dict.Encode(Term::Iri(PredIri(edge.predicate)));
    for (int s = 0; s < config.entities_per_class; ++s) {
      // Degree = floor(density) + Bernoulli(fractional part).
      int degree = static_cast<int>(config.density);
      if (rng.Bernoulli(config.density - degree)) ++degree;
      for (int k = 0; k < degree; ++k) {
        std::int64_t o = rng.Skewed(config.entities_per_class);
        triples.push_back(Triple{entity(edge.subject_class, s), pred,
                                 entity(edge.object_class, o)});
      }
    }
  }
  return RdfGraph(std::move(dict), std::move(triples));
}

GeneratedQuery InstantiateWatdivTemplate(const WatdivTemplate& tmpl,
                                         Rng& rng) {
  GeneratedQuery out;
  out.patterns = tmpl.patterns;
  out.bindings.resize(out.patterns.size());
  for (std::size_t i = 0; i < out.patterns.size(); ++i) {
    double card = static_cast<double>(rng.Uniform(1, 1000));
    out.cardinalities.push_back(card);
    for (const std::string& var : out.patterns[i].Variables()) {
      out.bindings[i].emplace_back(
          var, static_cast<double>(
                   rng.Uniform(1, static_cast<std::int64_t>(card))));
    }
  }
  return out;
}

}  // namespace parqo
