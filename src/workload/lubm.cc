#include "workload/lubm.h"

#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace parqo {
namespace {

class Builder {
 public:
  explicit Builder(std::uint64_t seed) : rng_(seed) {}

  TermId Iri(const std::string& iri) { return dict_.EncodeIri(iri); }
  TermId Lit(const std::string& s) { return dict_.EncodeLiteral(s); }
  TermId Ub(const std::string& local) {
    return Iri(std::string(kUbPrefix) + local);
  }

  void Add(TermId s, TermId p, TermId o) {
    triples_.push_back(Triple{s, p, o});
  }

  int Range(int lo, int hi) { return static_cast<int>(rng_.Uniform(lo, hi)); }
  Rng& rng() { return rng_; }

  RdfGraph Finish() {
    return RdfGraph(std::move(dict_), std::move(triples_));
  }

 private:
  Rng rng_;
  Dictionary dict_;
  std::vector<Triple> triples_;
};

std::string DeptIri(int univ, int dept) {
  return "http://www.Department" + std::to_string(dept) + ".University" +
         std::to_string(univ) + ".edu";
}

}  // namespace

RdfGraph GenerateLubm(const LubmConfig& cfg) {
  Builder b(cfg.seed);

  const TermId type = b.Iri(kRdfType);
  const TermId c_university = b.Ub("University");
  const TermId c_department = b.Ub("Department");
  const TermId c_research_group = b.Ub("ResearchGroup");
  const TermId c_full_prof = b.Ub("FullProfessor");
  const TermId c_assoc_prof = b.Ub("AssociateProfessor");
  const TermId c_grad_student = b.Ub("GraduateStudent");
  const TermId c_undergrad = b.Ub("UndergraduateStudent");
  const TermId c_grad_course = b.Ub("GraduateCourse");
  const TermId c_course = b.Ub("Course");
  const TermId c_publication = b.Ub("Publication");
  const TermId p_suborg = b.Ub("subOrganizationOf");
  const TermId p_works_for = b.Ub("worksFor");
  const TermId p_teacher_of = b.Ub("teacherOf");
  const TermId p_takes_course = b.Ub("takesCourse");
  const TermId p_advisor = b.Ub("advisor");
  const TermId p_member_of = b.Ub("memberOf");
  const TermId p_ugdegree = b.Ub("undergraduateDegreeFrom");
  const TermId p_pub_author = b.Ub("publicationAuthor");
  const TermId p_name = b.Ub("name");

  std::vector<TermId> universities;
  for (int u = 0; u < cfg.universities; ++u) {
    TermId univ = b.Iri("http://www.University" + std::to_string(u) +
                        ".edu");
    universities.push_back(univ);
    b.Add(univ, type, c_university);
    b.Add(univ, p_name, b.Lit("University" + std::to_string(u)));
  }

  for (int u = 0; u < cfg.universities; ++u) {
    const TermId univ = universities[u];
    const int departments = b.Range(cfg.min_departments,
                                    cfg.max_departments);
    for (int d = 0; d < departments; ++d) {
      const std::string dept_iri = DeptIri(u, d);
      const TermId dept = b.Iri(dept_iri);
      b.Add(dept, type, c_department);
      b.Add(dept, p_suborg, univ);
      b.Add(dept, p_name, b.Lit("Department" + std::to_string(d)));

      const int groups = b.Range(cfg.min_research_groups,
                                 cfg.max_research_groups);
      for (int g = 0; g < groups; ++g) {
        TermId rg = b.Iri(dept_iri + "/ResearchGroup" + std::to_string(g));
        b.Add(rg, type, c_research_group);
        b.Add(rg, p_suborg, dept);
      }

      // Faculty: full professors first, then associates; both advise,
      // teach, and author publications.
      std::vector<TermId> professors;
      std::vector<TermId> grad_courses;
      std::vector<TermId> courses;
      const int gcourses = b.Range(cfg.min_grad_courses,
                                   cfg.max_grad_courses);
      for (int c = 0; c < gcourses; ++c) {
        TermId gc = b.Iri(dept_iri + "/GraduateCourse" + std::to_string(c));
        b.Add(gc, type, c_grad_course);
        grad_courses.push_back(gc);
      }
      const int ncourses = b.Range(cfg.min_courses, cfg.max_courses);
      for (int c = 0; c < ncourses; ++c) {
        TermId cc = b.Iri(dept_iri + "/Course" + std::to_string(c));
        b.Add(cc, type, c_course);
        courses.push_back(cc);
      }

      auto add_professor = [&](const std::string& stem, TermId cls,
                               int index) {
        const std::string prof_iri =
            dept_iri + "/" + stem + std::to_string(index);
        TermId prof = b.Iri(prof_iri);
        b.Add(prof, type, cls);
        b.Add(prof, p_works_for, dept);
        b.Add(prof, p_name, b.Lit(stem + std::to_string(index)));
        // Teaches one graduate and one undergraduate course.
        b.Add(prof, p_teacher_of,
              grad_courses[b.Range(0, gcourses - 1)]);
        b.Add(prof, p_teacher_of, courses[b.Range(0, ncourses - 1)]);
        const int pubs = b.Range(cfg.min_publications_per_prof,
                                 cfg.max_publications_per_prof);
        for (int k = 0; k < pubs; ++k) {
          TermId pub =
              b.Iri(prof_iri + "/Publication" + std::to_string(k));
          b.Add(pub, type, c_publication);
          b.Add(pub, p_pub_author, prof);
          b.Add(pub, p_name,
                b.Lit("Publication" + std::to_string(k) + " of " + stem +
                      std::to_string(index)));
        }
        professors.push_back(prof);
        return prof;
      };

      const int fulls = b.Range(cfg.min_full_professors,
                                cfg.max_full_professors);
      for (int f = 0; f < fulls; ++f) {
        add_professor("FullProfessor", c_full_prof, f);
      }
      const int assocs = b.Range(cfg.min_associate_professors,
                                 cfg.max_associate_professors);
      for (int a = 0; a < assocs; ++a) {
        add_professor("AssociateProfessor", c_assoc_prof, a);
      }

      const int grads = b.Range(cfg.min_grad_students,
                                cfg.max_grad_students);
      for (int s = 0; s < grads; ++s) {
        const std::string stu_iri =
            dept_iri + "/GraduateStudent" + std::to_string(s);
        TermId stu = b.Iri(stu_iri);
        b.Add(stu, type, c_grad_student);
        b.Add(stu, p_member_of, dept);
        TermId advisor = professors[b.Range(
            0, static_cast<int>(professors.size()) - 1)];
        b.Add(stu, p_advisor, advisor);
        const int taken = b.Range(1, 3);
        for (int t = 0; t < taken; ++t) {
          b.Add(stu, p_takes_course,
                grad_courses[b.Range(0, gcourses - 1)]);
        }
        // Graduate students sometimes take a course their advisor
        // teaches, which keeps queries like L9/L10 non-empty.
        if (b.rng().Bernoulli(0.5)) {
          // The advisor teaches two courses; re-add one of them.
          // (Approximation: take a random graduate course again.)
          b.Add(stu, p_takes_course,
                grad_courses[b.Range(0, gcourses - 1)]);
        }
        // Undergraduate degree: usually the same university.
        TermId degree_univ =
            b.rng().Bernoulli(0.7)
                ? univ
                : universities[b.Range(0, cfg.universities - 1)];
        b.Add(stu, p_ugdegree, degree_univ);
        // Some publications list the student as a co-author.
        if (b.rng().Bernoulli(0.3)) {
          TermId pub = b.Iri(dept_iri + "/FullProfessor0/Publication0");
          b.Add(pub, p_pub_author, stu);
        }
      }

      const int undergrads = b.Range(cfg.min_undergrad_students,
                                     cfg.max_undergrad_students);
      for (int s = 0; s < undergrads; ++s) {
        const std::string stu_iri =
            dept_iri + "/UndergraduateStudent" + std::to_string(s);
        TermId stu = b.Iri(stu_iri);
        b.Add(stu, type, c_undergrad);
        b.Add(stu, p_member_of, dept);
        b.Add(stu, p_advisor,
              professors[b.Range(0, static_cast<int>(professors.size()) -
                                        1)]);
        const int taken = b.Range(1, 3);
        for (int t = 0; t < taken; ++t) {
          b.Add(stu, p_takes_course, courses[b.Range(0, ncourses - 1)]);
        }
      }
    }
  }

  return b.Finish();
}

}  // namespace parqo
