// LUBM-like synthetic university dataset (Guo, Pan & Heflin's benchmark,
// reference [24]) at laptop scale. The schema vocabulary, IRI naming
// scheme, and entity relationships match what the paper's benchmark
// queries L1-L10 (Appendix) touch, so those queries run verbatim against
// the generated data. The paper used LUBM-10000 (1.38 G triples); the
// scale here is the number of universities (see DESIGN.md on the
// substitution).

#ifndef PARQO_WORKLOAD_LUBM_H_
#define PARQO_WORKLOAD_LUBM_H_

#include <cstdint>

#include "common/rng.h"
#include "rdf/graph.h"

namespace parqo {

struct LubmConfig {
  /// >= 7 keeps every benchmark-query constant (up to University6)
  /// resolvable.
  int universities = 8;
  std::uint64_t seed = 42;

  // Per-university / per-department entity count ranges.
  int min_departments = 3, max_departments = 6;
  int min_research_groups = 2, max_research_groups = 4;
  int min_full_professors = 3, max_full_professors = 6;
  int min_associate_professors = 2, max_associate_professors = 5;
  int min_grad_students = 8, max_grad_students = 20;
  int min_undergrad_students = 12, max_undergrad_students = 30;
  int min_grad_courses = 4, max_grad_courses = 8;
  int min_courses = 5, max_courses = 10;
  int min_publications_per_prof = 2, max_publications_per_prof = 5;
};

/// The LUBM namespace prefix used by the generator and queries.
inline constexpr char kUbPrefix[] =
    "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";
inline constexpr char kRdfType[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

RdfGraph GenerateLubm(const LubmConfig& config);

}  // namespace parqo

#endif  // PARQO_WORKLOAD_LUBM_H_
