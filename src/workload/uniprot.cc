#include "workload/uniprot.h"

#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"
#include "workload/lubm.h"  // kRdfType

namespace parqo {
namespace {

class Builder {
 public:
  explicit Builder(std::uint64_t seed) : rng_(seed) {}

  TermId Iri(const std::string& iri) { return dict_.EncodeIri(iri); }
  TermId Lit(const std::string& s) { return dict_.EncodeLiteral(s); }
  TermId Uni(const std::string& local) {
    return Iri(std::string(kUniPrefix) + local);
  }
  TermId Rdfs(const std::string& local) {
    return Iri(std::string(kRdfsPrefix) + local);
  }

  void Add(TermId s, TermId p, TermId o) {
    triples_.push_back(Triple{s, p, o});
  }
  int Range(int lo, int hi) { return static_cast<int>(rng_.Uniform(lo, hi)); }
  Rng& rng() { return rng_; }

  RdfGraph Finish() {
    return RdfGraph(std::move(dict_), std::move(triples_));
  }

 private:
  Rng rng_;
  Dictionary dict_;
  std::vector<Triple> triples_;
};

std::string ProteinIri(int i) {
  return "http://purl.uniprot.org/uniprot/P" + std::to_string(i);
}

}  // namespace

RdfGraph GenerateUniprot(const UniprotConfig& cfg) {
  Builder b(cfg.seed);

  const TermId type = b.Iri(kRdfType);
  const TermId c_protein = b.Uni("Protein");
  const TermId c_interaction = b.Uni("Interaction");
  const TermId c_disease_ann = b.Uni("Disease_Annotation");
  const TermId c_function_ann = b.Uni("Function_Annotation");
  const TermId p_organism = b.Uni("organism");
  const TermId p_enzyme = b.Uni("enzyme");
  const TermId p_annotation = b.Uni("annotation");
  const TermId p_comment = b.Rdfs("comment");
  const TermId p_see_also_rdfs = b.Rdfs("seeAlso");
  const TermId p_see_also_schema = b.Rdfs("seeAlso");
  const TermId p_database = b.Uni("database");
  const TermId p_encoded_by = b.Uni("encodedBy");
  const TermId p_classified = b.Uni("classifiedWith");
  const TermId p_replaces = b.Uni("replaces");
  const TermId p_replaced_by = b.Uni("replacedBy");
  const TermId p_participant = b.Uni("participant");
  const TermId p_range = b.Uni("range");

  // Shared vocabulary individuals.
  std::vector<TermId> taxa;
  for (int t = 0; t < cfg.taxa; ++t) {
    // taxon 9606 (human) is index 0 and is picked most often (skew).
    int code = t == 0 ? 9606 : 10000 + t;
    taxa.push_back(b.Iri(std::string(kTaxonPrefix) + std::to_string(code)));
  }
  std::vector<TermId> enzymes;
  enzymes.push_back(b.Iri("http://purl.uniprot.org/enzyme/2.7.7.-"));
  enzymes.push_back(b.Iri("http://purl.uniprot.org/enzyme/3.1.3.16"));
  for (int e = 2; e < cfg.enzyme_classes; ++e) {
    enzymes.push_back(b.Iri("http://purl.uniprot.org/enzyme/1.1.1." +
                            std::to_string(e)));
  }
  std::vector<TermId> keywords;
  keywords.push_back(b.Iri("http://purl.uniprot.org/keywords/67"));
  for (int k = 1; k < cfg.keywords; ++k) {
    keywords.push_back(
        b.Iri("http://purl.uniprot.org/keywords/" + std::to_string(100 + k)));
  }
  std::vector<TermId> databases;
  for (int d = 0; d < cfg.databases; ++d) {
    databases.push_back(
        b.Iri("http://purl.uniprot.org/database/DB" + std::to_string(d)));
  }
  // Cross-reference targets U1 filters on.
  const TermId ref_refseq =
      b.Iri("http://purl.uniprot.org/refseq/NP_346136.1");
  const TermId ref_tigr = b.Iri("http://purl.uniprot.org/tigr/SP_1698");
  const TermId ref_pfam = b.Iri("http://purl.uniprot.org/pfam/PF00842");
  const TermId ref_prints = b.Iri("http://purl.uniprot.org/prints/PR00992");
  const TermId ref_embl =
      b.Iri("http://purl.uniprot.org/embl-cds/AAN81952.1");

  std::vector<TermId> proteins;
  proteins.reserve(cfg.proteins);
  for (int i = 0; i < cfg.proteins; ++i) {
    proteins.push_back(b.Iri(ProteinIri(i)));
  }

  for (int i = 0; i < cfg.proteins; ++i) {
    const TermId prot = proteins[i];
    b.Add(prot, type, c_protein);
    b.Add(prot, p_organism,
          taxa[static_cast<std::size_t>(b.rng().Skewed(cfg.taxa))]);
    b.Add(prot, p_encoded_by,
          b.Iri("http://purl.uniprot.org/gene/G" + std::to_string(i)));

    // Enzyme classes: ~1/3 of proteins are enzymes; the first two classes
    // (U3's constants) are intentionally common.
    if (b.rng().Bernoulli(0.35)) {
      b.Add(prot, p_enzyme,
            enzymes[static_cast<std::size_t>(
                b.rng().Skewed(cfg.enzyme_classes))]);
    }

    const int keyword_count = b.Range(1, 3);
    for (int k = 0; k < keyword_count; ++k) {
      b.Add(prot, p_classified,
            keywords[static_cast<std::size_t>(b.rng().Skewed(cfg.keywords))]);
    }

    // Annotations; some are disease annotations with comments and ranges.
    const int annotations = b.Range(1, 4);
    for (int a = 0; a < annotations; ++a) {
      TermId ann = b.Iri(ProteinIri(i) + "#annotation" + std::to_string(a));
      b.Add(prot, p_annotation, ann);
      b.Add(ann, type,
            b.rng().Bernoulli(0.3) ? c_disease_ann : c_function_ann);
      b.Add(ann, p_comment,
            b.Lit("annotation " + std::to_string(a) + " of protein " +
                  std::to_string(i)));
      if (b.rng().Bernoulli(0.5)) {
        b.Add(ann, p_range,
              b.Iri(ProteinIri(i) + "#range" + std::to_string(a)));
      }
    }

    // rdfs:seeAlso link nodes with source databases (U2's tail).
    const int links = b.Range(1, 3);
    for (int l = 0; l < links; ++l) {
      TermId link = b.Iri("http://purl.uniprot.org/xref/X" +
                          std::to_string(i) + "_" + std::to_string(l));
      b.Add(prot, p_see_also_rdfs, link);
      b.Add(link, p_database,
            databases[static_cast<std::size_t>(
                b.rng().Skewed(cfg.databases))]);
    }

    // Specific cross-references for U1 and U4: a slice of proteins gets
    // each; protein 0 gets all four U1 targets.
    if (i == 0 || b.rng().Bernoulli(0.02)) {
      b.Add(prot, p_see_also_schema, ref_refseq);
    }
    if (i == 0 || b.rng().Bernoulli(0.02)) {
      b.Add(prot, p_see_also_schema, ref_tigr);
    }
    if (i == 0 || b.rng().Bernoulli(0.05)) {
      b.Add(prot, p_see_also_schema, ref_pfam);
    }
    if (i == 0 || b.rng().Bernoulli(0.05)) {
      b.Add(prot, p_see_also_schema, ref_prints);
    }
    if (i % 97 == 3 || b.rng().Bernoulli(0.01)) {
      b.Add(prot, p_see_also_schema, ref_embl);
    }
  }

  // Version chains: P -replacedBy-> A, A -replaces-> AB (and inverse),
  // AB -replacedBy-> B ... exactly the U2 traversal.
  const int chains =
      static_cast<int>(cfg.proteins * cfg.replaced_rate);
  for (int c = 0; c < chains; ++c) {
    const int base = b.Range(0, cfg.proteins - 1);
    const int len = b.Range(2, 4);
    // The base protein also replaces an older entry, so patterns like
    // U3's "?p1 uni:replaces ?p3" bind for current proteins.
    TermId old_version = b.Iri(ProteinIri(base) + ".v0");
    b.Add(proteins[base], p_replaces, old_version);
    b.Add(old_version, p_replaced_by, proteins[base]);
    TermId prev = proteins[base];
    for (int v = 0; v < len; ++v) {
      TermId next = b.Iri(ProteinIri(base) + ".v" + std::to_string(v + 1));
      b.Add(prev, p_replaced_by, next);
      b.Add(next, p_replaces, prev);
      prev = next;
    }
    // Chain tails also carry seeAlso links so U2 yields bindings.
    TermId link = b.Iri("http://purl.uniprot.org/xref/Chain" +
                        std::to_string(c));
    b.Add(prev, p_see_also_rdfs, link);
    b.Add(link, p_database,
          databases[static_cast<std::size_t>(b.rng().Skewed(cfg.databases))]);
  }
  // Guaranteed U4 witness: protein 3 already has the embl-cds reference
  // (3 % 97 == 3); give it the keyword and a version chain too.
  if (cfg.proteins > 3) {
    b.Add(proteins[3], p_classified, keywords[0]);
    TermId old_version = b.Iri(ProteinIri(3) + ".v0");
    b.Add(proteins[3], p_replaces, old_version);
    b.Add(old_version, p_replaced_by, proteins[3]);
  }

  // The named protein of U2 with a guaranteed deep chain.
  {
    TermId q = b.Iri("http://purl.uniprot.org/uniprot/Q4N2B5");
    b.Add(q, type, c_protein);
    TermId prev = q;
    for (int v = 0; v < 3; ++v) {
      TermId next = b.Iri("http://purl.uniprot.org/uniprot/Q4N2B5.v" +
                          std::to_string(v + 1));
      b.Add(prev, p_replaced_by, next);
      b.Add(next, p_replaces, prev);
      TermId link =
          b.Iri("http://purl.uniprot.org/xref/Q4N2B5_" + std::to_string(v));
      b.Add(next, p_see_also_rdfs, link);
      b.Add(link, p_database, databases[0]);
      prev = next;
    }
  }

  // Interactions between proteins (U3).
  const int interactions =
      static_cast<int>(cfg.proteins * cfg.interaction_rate);
  for (int x = 0; x < interactions; ++x) {
    TermId inter =
        b.Iri("http://purl.uniprot.org/intact/EBI-" + std::to_string(x));
    b.Add(inter, type, c_interaction);
    int a = b.Range(0, cfg.proteins - 1);
    int c = b.Range(0, cfg.proteins - 1);
    b.Add(inter, p_participant, proteins[a]);
    b.Add(inter, p_participant, proteins[c]);
  }

  return b.Finish();
}

}  // namespace parqo
