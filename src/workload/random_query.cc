#include "workload/random_query.h"

#include <algorithm>

#include "common/status.h"
#include "query/join_graph.h"

namespace parqo {
namespace {

// Appends, not chained operator+: GCC 12 -Wrestrict false positive
// (PR105651) under -O2.
std::string VarName(int i) {
  std::string name = "v";
  name += std::to_string(i);
  return name;
}

TriplePattern MakePattern(const std::string& subject_var, int predicate,
                          const std::string& object_var) {
  TriplePattern tp;
  tp.s = PatternTerm::Var(subject_var);
  tp.p = PatternTerm::Const(
      Term::Iri("http://parqo.dev/p/" + std::to_string(predicate)));
  tp.o = PatternTerm::Var(object_var);
  return tp;
}

std::vector<TriplePattern> BuildStructure(QueryShape shape, int n,
                                          Rng& rng) {
  std::vector<TriplePattern> patterns;
  switch (shape) {
    case QueryShape::kStar: {
      // All patterns share one center variable, in random direction.
      for (int i = 0; i < n; ++i) {
        std::string leaf = "x";
        leaf += std::to_string(i);
        if (rng.Bernoulli(0.5)) {
          patterns.push_back(MakePattern("c", i, leaf));
        } else {
          patterns.push_back(MakePattern(leaf, i, "c"));
        }
      }
      break;
    }
    case QueryShape::kChain: {
      for (int i = 0; i < n; ++i) {
        patterns.push_back(MakePattern(VarName(i), i, VarName(i + 1)));
      }
      break;
    }
    case QueryShape::kCycle: {
      for (int i = 0; i < n; ++i) {
        patterns.push_back(MakePattern(VarName(i), i, VarName((i + 1) % n)));
      }
      break;
    }
    case QueryShape::kTree: {
      // Grow a random tree over the join graph: each new pattern shares
      // one variable with an earlier pattern and introduces a fresh one.
      int next_var = 1;
      patterns.push_back(MakePattern(VarName(0), 0, VarName(next_var++)));
      for (int i = 1; i < n; ++i) {
        int u = static_cast<int>(rng.Uniform(0, next_var - 1));
        int w = next_var++;
        if (rng.Bernoulli(0.5)) {
          patterns.push_back(MakePattern(VarName(u), i, VarName(w)));
        } else {
          patterns.push_back(MakePattern(VarName(w), i, VarName(u)));
        }
      }
      break;
    }
    case QueryShape::kDense: {
      // A random tree plus chords between existing variables.
      int tree_tps = std::max(2, n - std::max(1, n / 3));
      int next_var = 1;
      patterns.push_back(MakePattern(VarName(0), 0, VarName(next_var++)));
      for (int i = 1; i < tree_tps; ++i) {
        int u = static_cast<int>(rng.Uniform(0, next_var - 1));
        int w = next_var++;
        patterns.push_back(MakePattern(VarName(u), i, VarName(w)));
      }
      for (int i = tree_tps; i < n; ++i) {
        int u = static_cast<int>(rng.Uniform(0, next_var - 1));
        int w = static_cast<int>(rng.Uniform(0, next_var - 1));
        while (w == u) w = static_cast<int>(rng.Uniform(0, next_var - 1));
        patterns.push_back(MakePattern(VarName(u), i, VarName(w)));
      }
      break;
    }
    default:
      PARQO_CHECK(false && "unsupported shape request");
  }
  return patterns;
}

}  // namespace

QueryStatistics GeneratedQuery::MakeStats(const JoinGraph& jg) const {
  QueryStatistics stats(jg);
  for (int tp = 0; tp < jg.num_tps(); ++tp) {
    stats.SetCardinality(tp, cardinalities[tp]);
    for (const auto& [name, b] : bindings[tp]) {
      VarId v = jg.FindVar(name);
      PARQO_CHECK(v != kInvalidVarId);
      stats.SetBindings(tp, v, b);
    }
  }
  return stats;
}

GeneratedQuery GenerateRandomQuery(QueryShape shape, int num_tps, Rng& rng,
                                   int max_cardinality) {
  PARQO_CHECK(num_tps >= 2 && num_tps <= TpSet::kMaxSize);

  std::vector<TriplePattern> patterns;
  // Tree/dense growth is randomized; redraw until the classifier agrees
  // (bounded; the structures converge quickly for n >= 4).
  for (int attempt = 0; attempt < 32; ++attempt) {
    patterns = BuildStructure(shape, num_tps, rng);
    JoinGraph jg(patterns);
    if (ClassifyShape(jg) == shape || attempt == 31) break;
  }

  GeneratedQuery out;
  out.patterns = patterns;
  out.cardinalities.reserve(patterns.size());
  out.bindings.resize(patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    double card = static_cast<double>(rng.Uniform(1, max_cardinality));
    out.cardinalities.push_back(card);
    for (const std::string& var : patterns[i].Variables()) {
      double b = static_cast<double>(
          rng.Uniform(1, static_cast<std::int64_t>(card)));
      out.bindings[i].emplace_back(var, b);
    }
  }
  return out;
}

}  // namespace parqo
