// UniProt-like synthetic protein dataset. The real UniProt RDF export
// (2 G triples in the paper) is not redistributable at that scale; this
// generator reproduces the sub-schema that queries U1-U5 (Appendix)
// traverse: proteins with organisms, enzymes, annotations (including
// disease annotations with comments and ranges), encodedBy genes,
// interactions with participants, keyword classifications, versioned
// replaces/replacedBy chains, and seeAlso cross-references with source
// databases.

#ifndef PARQO_WORKLOAD_UNIPROT_H_
#define PARQO_WORKLOAD_UNIPROT_H_

#include <cstdint>

#include "common/rng.h"
#include "rdf/graph.h"

namespace parqo {

struct UniprotConfig {
  int proteins = 3000;
  std::uint64_t seed = 43;

  int taxa = 40;               ///< Distinct organisms (9606 is common).
  int enzyme_classes = 30;     ///< Including 2.7.7.- and 3.1.3.16.
  int keywords = 100;          ///< Including keywords/67.
  int databases = 12;
  double interaction_rate = 0.6;  ///< Interactions per protein.
  double replaced_rate = 0.25;    ///< Proteins with version chains.
};

inline constexpr char kUniPrefix[] = "http://purl.uniprot.org/core/";
inline constexpr char kRdfsPrefix[] = "http://www.w3.org/2000/01/rdf-schema#";
inline constexpr char kTaxonPrefix[] = "http://purl.uniprot.org/taxonomy/";

RdfGraph GenerateUniprot(const UniprotConfig& config);

}  // namespace parqo

#endif  // PARQO_WORKLOAD_UNIPROT_H_
