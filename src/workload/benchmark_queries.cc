#include "workload/benchmark_queries.h"

#include "common/status.h"

namespace parqo {
namespace {

constexpr char kLubmPrefixes[] =
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n";

constexpr char kUniprotPrefixes[] =
    "PREFIX uni: <http://purl.uniprot.org/core/>\n"
    "PREFIX schema: <http://www.w3.org/2000/01/rdf-schema#>\n"
    "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
    "PREFIX taxon: <http://purl.uniprot.org/taxonomy/>\n";

std::vector<BenchmarkQuery> BuildQueries() {
  std::vector<BenchmarkQuery> q;
  auto lubm = [&](const std::string& name, QueryShape shape, int n,
                  const std::string& body) {
    q.push_back({name, std::string(kLubmPrefixes) + body, shape, n, true});
  };
  auto uniprot = [&](const std::string& name, QueryShape shape, int n,
                     const std::string& body) {
    q.push_back(
        {name, std::string(kUniprotPrefixes) + body, shape, n, false});
  };

  lubm("L1", QueryShape::kStar, 2, R"(
SELECT ?x WHERE {
  ?x rdf:type ub:ResearchGroup .
  ?x ub:subOrganizationOf <http://www.Department0.University0.edu> . })");

  lubm("L2", QueryShape::kChain, 2, R"(
SELECT ?x ?y WHERE {
  ?x ub:worksFor ?y .
  ?y ub:subOrganizationOf <http://www.University0.edu> . })");

  lubm("L3", QueryShape::kTree, 4, R"(
SELECT ?x ?y WHERE {
  ?x rdf:type ub:GraduateStudent .
  <http://www.Department0.University0.edu/AssociateProfessor0>
      ub:teacherOf ?y .
  ?y rdf:type ub:GraduateCourse .
  ?x ub:takesCourse ?y . })");

  lubm("L4", QueryShape::kTree, 4, R"(
SELECT ?x ?y WHERE {
  ?x ub:worksFor ?y .
  ?y rdf:type ub:Department .
  ?x rdf:type ub:FullProfessor .
  ?y ub:subOrganizationOf <http://www.University0.edu> . })");

  // Adaptation: the paper anchors L5 at Department12.University0; our
  // scale has >= 3 departments per university, so Department1 is used.
  lubm("L5", QueryShape::kTree, 8, R"(
SELECT ?x ?w WHERE {
  ?x ub:advisor ?y .
  ?y ub:worksFor ?z .
  ?x rdf:type ub:GraduateStudent .
  ?z ub:subOrganizationOf ?w .
  ?w ub:name ?u .
  ?z rdf:type ub:Department .
  ?w rdf:type ub:University .
  <http://www.Department1.University0.edu/FullProfessor0/Publication0>
      ub:publicationAuthor ?x . })");

  lubm("L6", QueryShape::kTree, 8, R"(
SELECT ?x ?p WHERE {
  ?x ub:advisor ?y .
  ?y ub:worksFor ?z .
  ?x rdf:type ub:GraduateStudent .
  <http://www.Department0.University0.edu/FullProfessor0/Publication0>
      ub:publicationAuthor ?x .
  ?p ub:name ?n .
  ?z rdf:type ub:Department .
  ?z ub:subOrganizationOf ?w .
  ?p ub:publicationAuthor ?x . })");

  lubm("L7", QueryShape::kDense, 6, R"(
SELECT ?x ?y ?z WHERE {
  ?z ub:subOrganizationOf ?y .
  ?y rdf:type ub:University .
  ?z rdf:type ub:Department .
  ?x rdf:type ub:GraduateStudent .
  ?x ub:memberOf ?z .
  ?x ub:undergraduateDegreeFrom ?y . })");

  lubm("L8", QueryShape::kDense, 6, R"(
SELECT ?x ?y ?z WHERE {
  ?y ub:teacherOf ?z .
  ?y rdf:type ub:FullProfessor .
  ?z rdf:type ub:Course .
  ?x ub:takesCourse ?z .
  ?x rdf:type ub:UndergraduateStudent .
  ?x ub:advisor ?y . })");

  lubm("L9", QueryShape::kDense, 11, R"(
SELECT ?x ?y ?f ?c ?p ?n WHERE {
  ?y rdf:type ub:University .
  ?x rdf:type ub:GraduateStudent .
  ?x ub:undergraduateDegreeFrom ?y .
  ?f rdf:type ub:FullProfessor .
  ?x ub:advisor ?f .
  ?x ub:takesCourse ?c .
  ?f ub:teacherOf ?c .
  ?c rdf:type ub:GraduateCourse .
  <http://www.Department2.University6.edu/FullProfessor1/Publication1>
      ub:publicationAuthor ?f .
  ?p ub:publicationAuthor ?f .
  ?p ub:name ?n . })");

  // Note: Table III of the paper lists L10 with 12 patterns, but the
  // appendix query text contains 14; we keep the full appendix text.
  lubm("L10", QueryShape::kDense, 14, R"(
SELECT ?x ?y ?z ?f ?c ?p ?n WHERE {
  ?z ub:subOrganizationOf ?y .
  ?y rdf:type ub:University .
  ?z rdf:type ub:Department .
  ?x ub:memberOf ?z .
  ?x rdf:type ub:GraduateStudent .
  ?x ub:undergraduateDegreeFrom ?y .
  ?f rdf:type ub:FullProfessor .
  ?x ub:advisor ?f .
  ?x ub:takesCourse ?c .
  ?f ub:teacherOf ?c .
  ?c rdf:type ub:GraduateCourse .
  <http://www.Department2.University6.edu/FullProfessor1/Publication1>
      ub:publicationAuthor ?f .
  ?p ub:publicationAuthor ?f .
  ?p ub:name ?n . })");

  uniprot("U1", QueryShape::kStar, 5, R"(
SELECT ?a ?vo WHERE {
  ?a uni:encodedBy ?vo .
  ?a schema:seeAlso <http://purl.uniprot.org/refseq/NP_346136.1> .
  ?a schema:seeAlso <http://purl.uniprot.org/tigr/SP_1698> .
  ?a schema:seeAlso <http://purl.uniprot.org/pfam/PF00842> .
  ?a schema:seeAlso <http://purl.uniprot.org/prints/PR00992> . })");

  uniprot("U2", QueryShape::kChain, 5, R"(
SELECT ?a ?ab ?b ?link ?db WHERE {
  <http://purl.uniprot.org/uniprot/Q4N2B5> uni:replacedBy ?a .
  ?a uni:replaces ?ab .
  ?ab uni:replacedBy ?b .
  ?b rdfs:seeAlso ?link .
  ?link uni:database ?db . })");

  uniprot("U3", QueryShape::kTree, 11, R"(
SELECT ?p2 ?interaction ?p1 ?annotation ?text ?en WHERE {
  ?p1 uni:enzyme <http://purl.uniprot.org/enzyme/2.7.7.-> .
  ?p1 rdf:type uni:Protein .
  ?interaction uni:participant ?p1 .
  ?interaction rdf:type uni:Interaction .
  ?interaction uni:participant ?p2 .
  ?p2 rdf:type uni:Protein .
  ?p2 uni:enzyme <http://purl.uniprot.org/enzyme/3.1.3.16> .
  ?p1 uni:annotation ?annotation .
  ?p1 uni:replaces ?p3 .
  ?p1 uni:encodedBy ?en .
  ?annotation rdfs:comment ?text . })");

  uniprot("U4", QueryShape::kTree, 6, R"(
SELECT ?a ?ab ?b ?annotation ?range WHERE {
  ?a uni:classifiedWith <http://purl.uniprot.org/keywords/67> .
  ?a schema:seeAlso <http://purl.uniprot.org/embl-cds/AAN81952.1> .
  ?a uni:replaces ?ab .
  ?ab uni:replacedBy ?b .
  ?b uni:annotation ?annotation .
  ?annotation uni:range ?range . })");

  uniprot("U5", QueryShape::kTree, 5, R"(
SELECT ?protein ?annotation WHERE {
  ?protein uni:annotation ?annotation .
  ?protein rdf:type uni:Protein .
  ?protein uni:organism taxon:9606 .
  ?annotation rdf:type <http://purl.uniprot.org/core/Disease_Annotation> .
  ?annotation rdfs:comment ?text . })");

  return q;
}

}  // namespace

const std::vector<BenchmarkQuery>& AllBenchmarkQueries() {
  // Leaked intentionally so the list outlives static destructors.
  // parqo-lint: allow(naked-new) leaked singleton
  static const auto* q = new std::vector<BenchmarkQuery>(BuildQueries());
  return *q;
}

const BenchmarkQuery& GetBenchmarkQuery(const std::string& name) {
  for (const BenchmarkQuery& q : AllBenchmarkQueries()) {
    if (q.name == name) return q;
  }
  PARQO_CHECK(false && "unknown benchmark query");
  static BenchmarkQuery dummy;
  return dummy;
}

}  // namespace parqo
