// The RDF graph G_R = (V_R, E_R) of Section II-A: vertices are all subjects
// and objects, directed labeled edges are the triples. Partitioners' combine
// functions (Section II-C) need fast per-vertex out/in edge access, so the
// graph keeps CSR-style adjacency over the triple array.

#ifndef PARQO_RDF_GRAPH_H_
#define PARQO_RDF_GRAPH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"
#include "storage/dataset_index.h"

namespace parqo {

/// Index of a triple within RdfGraph::triples().
using TripleIdx = std::uint32_t;

class RdfGraph {
 public:
  /// Takes ownership of the dictionary and triple set; duplicate triples are
  /// removed (RDF datasets are sets).
  RdfGraph(Dictionary dict, std::vector<Triple> triples);

  RdfGraph(const RdfGraph&) = delete;
  RdfGraph& operator=(const RdfGraph&) = delete;
  RdfGraph(RdfGraph&&) = default;
  RdfGraph& operator=(RdfGraph&&) = default;

  const Dictionary& dict() const { return dict_; }
  Dictionary& mutable_dict() { return dict_; }
  const std::vector<Triple>& triples() const { return triples_; }
  std::size_t NumTriples() const { return triples_.size(); }

  /// All vertex ids (terms occurring in subject or object position).
  const std::vector<TermId>& vertices() const { return vertices_; }

  /// Triples whose subject is v.
  std::span<const TripleIdx> OutEdges(TermId v) const {
    return Slice(out_offsets_, out_index_, v);
  }
  /// Triples whose object is v.
  std::span<const TripleIdx> InEdges(TermId v) const {
    return Slice(in_offsets_, in_index_, v);
  }

  bool IsVertex(TermId v) const {
    return v < out_offsets_.size() - 1 &&
           (OutDegree(v) > 0 || InDegree(v) > 0);
  }
  std::size_t OutDegree(TermId v) const { return OutEdges(v).size(); }
  std::size_t InDegree(TermId v) const { return InEdges(v).size(); }

  /// The dataset-wide storage index (permutations + aggregated counts),
  /// built lazily on first use — graphs that never consult statistics
  /// never pay for it — and cached for the graph's lifetime. Thread-safe;
  /// the returned reference is valid as long as the graph lives.
  const DatasetIndex& Index() const {
    std::call_once(*index_once_,
                   [&] { index_ = std::make_unique<DatasetIndex>(triples_); });
    return *index_;
  }

 private:
  std::span<const TripleIdx> Slice(const std::vector<std::uint32_t>& offsets,
                                   const std::vector<TripleIdx>& index,
                                   TermId v) const {
    if (v + 1 >= offsets.size()) return {};
    return std::span<const TripleIdx>(index.data() + offsets[v],
                                      offsets[v + 1] - offsets[v]);
  }

  Dictionary dict_;
  std::vector<Triple> triples_;
  std::vector<TermId> vertices_;
  // Heap-held so the graph stays movable (std::once_flag is not).
  mutable std::unique_ptr<std::once_flag> index_once_ =
      std::make_unique<std::once_flag>();
  mutable std::unique_ptr<DatasetIndex> index_;
  // CSR adjacency: offsets indexed directly by TermId.
  std::vector<std::uint32_t> out_offsets_;
  std::vector<TripleIdx> out_index_;
  std::vector<std::uint32_t> in_offsets_;
  std::vector<TripleIdx> in_index_;
};

}  // namespace parqo

#endif  // PARQO_RDF_GRAPH_H_
