#include "rdf/graph.h"

#include <algorithm>
#include <utility>

namespace parqo {

RdfGraph::RdfGraph(Dictionary dict, std::vector<Triple> triples)
    : dict_(std::move(dict)), triples_(std::move(triples)) {
  std::sort(triples_.begin(), triples_.end());
  triples_.erase(std::unique(triples_.begin(), triples_.end()),
                 triples_.end());

  const std::size_t id_bound = dict_.IdUpperBound();
  out_offsets_.assign(id_bound + 1, 0);
  in_offsets_.assign(id_bound + 1, 0);

  std::vector<bool> is_vertex(id_bound, false);
  for (const Triple& t : triples_) {
    ++out_offsets_[t.s + 1];
    ++in_offsets_[t.o + 1];
    is_vertex[t.s] = true;
    is_vertex[t.o] = true;
  }
  for (std::size_t v = 1; v <= id_bound; ++v) {
    out_offsets_[v] += out_offsets_[v - 1];
    in_offsets_[v] += in_offsets_[v - 1];
  }

  out_index_.resize(triples_.size());
  in_index_.resize(triples_.size());
  std::vector<std::uint32_t> out_cursor(out_offsets_.begin(),
                                        out_offsets_.end() - 1);
  std::vector<std::uint32_t> in_cursor(in_offsets_.begin(),
                                       in_offsets_.end() - 1);
  for (TripleIdx i = 0; i < triples_.size(); ++i) {
    out_index_[out_cursor[triples_[i].s]++] = i;
    in_index_[in_cursor[triples_[i].o]++] = i;
  }

  for (TermId v = 0; v < id_bound; ++v) {
    if (is_vertex[v]) vertices_.push_back(v);
  }
}

}  // namespace parqo
