// Dictionary encoding of RDF terms. Every distinct term maps to a dense
// TermId so that triples are plain 12-byte structs and joins compare
// integers, the standard design in RDF engines (RDF-3X, TriAD, ...).

#ifndef PARQO_RDF_DICTIONARY_H_
#define PARQO_RDF_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace parqo {

class Dictionary {
 public:
  Dictionary() = default;
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Interns a term, returning its id (existing id if already present).
  /// Ids are assigned densely starting at 1.
  TermId Encode(const Term& term);

  /// Convenience for IRIs, the dominant case in generators.
  TermId EncodeIri(std::string_view iri);
  TermId EncodeLiteral(std::string_view lit);

  /// Returns the id of a term, or kInvalidTermId if never interned.
  TermId Lookup(const Term& term) const;
  TermId LookupIri(std::string_view iri) const;

  /// Decodes an id; id must be valid.
  const Term& Decode(TermId id) const { return terms_[id]; }

  /// Number of interned terms.
  std::size_t size() const { return terms_.size() - 1; }

  /// Largest id + 1 (useful to size direct-indexed tables).
  TermId IdUpperBound() const { return static_cast<TermId>(terms_.size()); }

 private:
  // Key combines kind and lexical form so "x" (IRI) != "x" (literal).
  static std::string MakeKey(TermKind kind, std::string_view lexical);

  std::unordered_map<std::string, TermId> index_;
  std::vector<Term> terms_{Term{}};  // slot 0 = invalid sentinel
};

}  // namespace parqo

#endif  // PARQO_RDF_DICTIONARY_H_
