// RDF terms at the parse boundary. Inside the engine every term is a
// dictionary-encoded 32-bit id (TermId); the lexical Term struct only
// appears in parser output and report printing.

#ifndef PARQO_RDF_TERM_H_
#define PARQO_RDF_TERM_H_

#include <cstdint>
#include <string>

namespace parqo {

/// Dictionary-encoded term identifier. 0 is reserved as "invalid".
using TermId = std::uint32_t;
inline constexpr TermId kInvalidTermId = 0;

enum class TermKind : std::uint8_t {
  kIri,
  kLiteral,
  kBlank,
};

/// A lexical RDF term: IRI, literal, or blank node.
struct Term {
  TermKind kind = TermKind::kIri;
  /// IRI without angle brackets, literal without quotes (but with any
  /// language tag / datatype suffix verbatim), or blank-node label
  /// without the "_:" prefix.
  std::string lexical;

  static Term Iri(std::string s) {
    return Term{TermKind::kIri, std::move(s)};
  }
  static Term Literal(std::string s) {
    return Term{TermKind::kLiteral, std::move(s)};
  }
  static Term Blank(std::string s) {
    return Term{TermKind::kBlank, std::move(s)};
  }

  friend bool operator==(const Term&, const Term&) = default;

  /// N-Triples surface syntax: <iri>, "literal", _:b.
  std::string ToNTriples() const;
};

}  // namespace parqo

#endif  // PARQO_RDF_TERM_H_
