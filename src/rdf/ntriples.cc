#include "rdf/ntriples.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/strings.h"

namespace parqo {
namespace {

// Cursor over one physical line.
struct LineCursor {
  std::string_view line;
  std::size_t pos = 0;

  void SkipSpace() {
    while (pos < line.size() &&
           (line[pos] == ' ' || line[pos] == '\t')) {
      ++pos;
    }
  }
  bool AtEnd() const { return pos >= line.size(); }
  char Peek() const { return line[pos]; }
};

Status SyntaxError(std::size_t line_no, const std::string& what) {
  return Status::InvalidArgument("N-Triples syntax error on line " +
                                 std::to_string(line_no) + ": " + what);
}

// Unescapes \t \n \r \" \\ and leaves other bytes verbatim. Full
// \uXXXX handling is not needed by our generators but simple escapes are.
std::string Unescape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == '\\' && i + 1 < raw.size()) {
      ++i;
      switch (raw[i]) {
        case 't': out += '\t'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        default:
          out += '\\';
          out += raw[i];
      }
    } else {
      out += raw[i];
    }
  }
  return out;
}

std::string Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default: out += c;
    }
  }
  return out;
}

// Parses one term starting at the cursor. `allow_literal` is false in
// subject/predicate position.
Status ParseTerm(LineCursor& cur, std::size_t line_no, bool allow_literal,
                 Term* out) {
  cur.SkipSpace();
  if (cur.AtEnd()) return SyntaxError(line_no, "unexpected end of line");
  char c = cur.Peek();
  if (c == '<') {
    std::size_t close = cur.line.find('>', cur.pos + 1);
    if (close == std::string_view::npos) {
      return SyntaxError(line_no, "unterminated IRI");
    }
    *out = Term::Iri(
        std::string(cur.line.substr(cur.pos + 1, close - cur.pos - 1)));
    cur.pos = close + 1;
    return Status::Ok();
  }
  if (c == '_') {
    if (cur.pos + 1 >= cur.line.size() || cur.line[cur.pos + 1] != ':') {
      return SyntaxError(line_no, "malformed blank node");
    }
    std::size_t end = cur.pos + 2;
    while (end < cur.line.size() && cur.line[end] != ' ' &&
           cur.line[end] != '\t') {
      ++end;
    }
    // The terminating '.' may directly follow the label ("_:b ." and
    // "_:b." are both legal N-Triples); a label itself never ends with
    // '.', so strip trailing dots back off the token.
    while (end > cur.pos + 2 && cur.line[end - 1] == '.') --end;
    if (end == cur.pos + 2) return SyntaxError(line_no, "empty blank label");
    *out = Term::Blank(
        std::string(cur.line.substr(cur.pos + 2, end - cur.pos - 2)));
    cur.pos = end;
    return Status::Ok();
  }
  if (c == '"') {
    if (!allow_literal) {
      return SyntaxError(line_no, "literal not allowed in this position");
    }
    // Find the closing unescaped quote.
    std::size_t i = cur.pos + 1;
    while (i < cur.line.size()) {
      if (cur.line[i] == '\\') {
        i += 2;
        continue;
      }
      if (cur.line[i] == '"') break;
      ++i;
    }
    if (i >= cur.line.size()) {
      return SyntaxError(line_no, "unterminated literal");
    }
    std::string body =
        Unescape(cur.line.substr(cur.pos + 1, i - cur.pos - 1));
    cur.pos = i + 1;
    // Optional @lang or ^^<datatype>; kept verbatim in the lexical form so
    // distinct typed literals stay distinct in the dictionary.
    if (!cur.AtEnd() && cur.Peek() == '@') {
      // A language tag is alnum/'-' only, so stop at the first other
      // character; in particular a directly attached terminator
      // ("x"@en. without a space) must not be swallowed into the tag.
      std::size_t end = cur.pos + 1;
      while (end < cur.line.size() &&
             (std::isalnum(static_cast<unsigned char>(cur.line[end])) ||
              cur.line[end] == '-')) {
        ++end;
      }
      body += std::string(cur.line.substr(cur.pos, end - cur.pos));
      cur.pos = end;
    } else if (cur.pos + 1 < cur.line.size() && cur.Peek() == '^' &&
               cur.line[cur.pos + 1] == '^') {
      std::size_t close = cur.line.find('>', cur.pos + 2);
      if (close == std::string_view::npos) {
        return SyntaxError(line_no, "unterminated datatype IRI");
      }
      body += std::string(cur.line.substr(cur.pos, close + 1 - cur.pos));
      cur.pos = close + 1;
    }
    *out = Term::Literal(std::move(body));
    return Status::Ok();
  }
  return SyntaxError(line_no, std::string("unexpected character '") + c +
                                  "'");
}

}  // namespace

Status ParseNTriplesInto(std::string_view text, Dictionary& dict,
                         std::vector<Triple>& out) {
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t nl = text.find('\n', start);
    std::string_view line = text.substr(
        start, nl == std::string_view::npos ? text.size() - start
                                            : nl - start);
    start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;

    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;

    LineCursor cur{stripped};
    Term s, p, o;
    PARQO_RETURN_IF_ERROR(ParseTerm(cur, line_no, /*allow_literal=*/false,
                                    &s));
    PARQO_RETURN_IF_ERROR(ParseTerm(cur, line_no, /*allow_literal=*/false,
                                    &p));
    if (p.kind != TermKind::kIri) {
      return SyntaxError(line_no, "predicate must be an IRI");
    }
    PARQO_RETURN_IF_ERROR(ParseTerm(cur, line_no, /*allow_literal=*/true,
                                    &o));
    cur.SkipSpace();
    if (cur.AtEnd() || cur.Peek() != '.') {
      return SyntaxError(line_no, "expected terminating '.'");
    }
    ++cur.pos;
    cur.SkipSpace();
    if (!cur.AtEnd() && cur.Peek() != '#') {
      return SyntaxError(line_no, "trailing content after '.'");
    }
    out.push_back(Triple{dict.Encode(s), dict.Encode(p), dict.Encode(o)});
  }
  return Status::Ok();
}

Result<RdfGraph> ParseNTriplesString(std::string_view text) {
  Dictionary dict;
  std::vector<Triple> triples;
  Status st = ParseNTriplesInto(text, dict, triples);
  if (!st.ok()) return st;
  return RdfGraph(std::move(dict), std::move(triples));
}

Result<RdfGraph> ParseNTriplesFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseNTriplesString(buf.str());
}

std::string TermToNTriples(const Term& term) {
  switch (term.kind) {
    case TermKind::kIri:
      return "<" + term.lexical + ">";
    case TermKind::kBlank:
      return "_:" + term.lexical;
    case TermKind::kLiteral: {
      // Split off a verbatim @lang / ^^<dt> suffix if present.
      std::string_view lex = term.lexical;
      std::string_view suffix;
      std::size_t caret = lex.rfind("^^<");
      if (caret != std::string_view::npos && EndsWith(lex, ">")) {
        suffix = lex.substr(caret);
        lex = lex.substr(0, caret);
      } else {
        std::size_t at = lex.rfind('@');
        if (at != std::string_view::npos && at + 1 < lex.size()) {
          // Only split off a *well-formed* language tag (alnum/'-'):
          // the suffix is emitted verbatim — never re-escaped — so a
          // body that merely contains '@' followed by arbitrary bytes
          // (tabs, quotes, backslashes) must stay inside the escaped
          // literal or the output would not re-parse.
          bool tag_ok = true;
          for (char c : lex.substr(at + 1)) {
            if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-') {
              tag_ok = false;
              break;
            }
          }
          if (tag_ok) {
            suffix = lex.substr(at);
            lex = lex.substr(0, at);
          }
        }
      }
      // Built by append: chained operator+ here trips GCC 12's
      // -Wrestrict false positive (PR105651) under -O2.
      std::string quoted = "\"";
      quoted += Escape(lex);
      quoted += '"';
      quoted += suffix;
      return quoted;
    }
  }
  return "";
}

std::string WriteNTriples(const RdfGraph& graph) {
  std::string out;
  for (const Triple& t : graph.triples()) {
    out += TermToNTriples(graph.dict().Decode(t.s));
    out += ' ';
    out += TermToNTriples(graph.dict().Decode(t.p));
    out += ' ';
    out += TermToNTriples(graph.dict().Decode(t.o));
    out += " .\n";
  }
  return out;
}

}  // namespace parqo
