// N-Triples reader and writer. This is the serialization used to load RDF
// datasets into the engine; the subset covers IRIs, blank nodes, and
// literals with optional language tags / datatypes, plus comments.

#ifndef PARQO_RDF_NTRIPLES_H_
#define PARQO_RDF_NTRIPLES_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "rdf/triple.h"

namespace parqo {

/// Parses N-Triples `text`, interning terms into `dict` and appending to
/// `out`. Returns the first syntax error with a line number, if any.
Status ParseNTriplesInto(std::string_view text, Dictionary& dict,
                         std::vector<Triple>& out);

/// Parses a complete document into a fresh graph.
Result<RdfGraph> ParseNTriplesString(std::string_view text);

/// Loads and parses a file.
Result<RdfGraph> ParseNTriplesFile(const std::string& path);

/// Serializes a graph back to N-Triples (one triple per line, sorted).
std::string WriteNTriples(const RdfGraph& graph);

/// Serializes a single term in N-Triples surface syntax.
std::string TermToNTriples(const Term& term);

}  // namespace parqo

#endif  // PARQO_RDF_NTRIPLES_H_
