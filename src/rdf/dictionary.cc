#include "rdf/dictionary.h"

#include <utility>

namespace parqo {

std::string Dictionary::MakeKey(TermKind kind, std::string_view lexical) {
  std::string key;
  key.reserve(lexical.size() + 1);
  key.push_back(static_cast<char>(kind));
  key.append(lexical);
  return key;
}

TermId Dictionary::Encode(const Term& term) {
  std::string key = MakeKey(term.kind, term.lexical);
  auto [it, inserted] =
      index_.emplace(std::move(key), static_cast<TermId>(terms_.size()));
  if (inserted) terms_.push_back(term);
  return it->second;
}

TermId Dictionary::EncodeIri(std::string_view iri) {
  return Encode(Term::Iri(std::string(iri)));
}

TermId Dictionary::EncodeLiteral(std::string_view lit) {
  return Encode(Term::Literal(std::string(lit)));
}

TermId Dictionary::Lookup(const Term& term) const {
  auto it = index_.find(MakeKey(term.kind, term.lexical));
  return it == index_.end() ? kInvalidTermId : it->second;
}

TermId Dictionary::LookupIri(std::string_view iri) const {
  auto it = index_.find(MakeKey(TermKind::kIri, iri));
  return it == index_.end() ? kInvalidTermId : it->second;
}

}  // namespace parqo
