// A dictionary-encoded RDF triple <subject, predicate, object>.

#ifndef PARQO_RDF_TRIPLE_H_
#define PARQO_RDF_TRIPLE_H_

#include <cstdint>
#include <tuple>

#include "rdf/term.h"

namespace parqo {

struct Triple {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;

  friend bool operator==(const Triple&, const Triple&) = default;
  friend auto operator<=>(const Triple& a, const Triple& b) {
    return std::tie(a.s, a.p, a.o) <=> std::tie(b.s, b.p, b.o);
  }
};

struct TripleHash {
  std::size_t operator()(const Triple& t) const noexcept {
    std::uint64_t x = (static_cast<std::uint64_t>(t.s) << 32) ^
                      (static_cast<std::uint64_t>(t.p) << 16) ^ t.o;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace parqo

#endif  // PARQO_RDF_TRIPLE_H_
