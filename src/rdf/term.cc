#include "rdf/term.h"

#include "rdf/ntriples.h"

namespace parqo {

std::string Term::ToNTriples() const { return TermToNTriples(*this); }

}  // namespace parqo
