#include "exec/health.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/metrics.h"

namespace parqo {
namespace {

constexpr int kClosed = static_cast<int>(BreakerState::kClosed);
constexpr int kOpen = static_cast<int>(BreakerState::kOpen);
constexpr int kHalfOpen = static_cast<int>(BreakerState::kHalfOpen);

}  // namespace

NodeHealthRegistry::NodeHealthRegistry(int num_nodes, HealthConfig config)
    : config_(config),
      nodes_(num_nodes),
      hedge_threshold_(std::numeric_limits<double>::infinity()) {
  PARQO_CHECK(num_nodes > 0);
  PARQO_CHECK(config_.ewma_alpha > 0 && config_.ewma_alpha <= 1);
  PARQO_CHECK(config_.failure_threshold > 0);
  PARQO_CHECK(config_.session_window > 0);
  MutexLock lock(mu_);
  session_walls_.assign(static_cast<std::size_t>(config_.session_window),
                        0.0);
}

bool NodeHealthRegistry::AllowRoute(int node) {
  PARQO_CHECK(node >= 0 && node < num_nodes());
  NodeHealth& n = nodes_[node];
  int s = n.state.load(std::memory_order_relaxed);
  if (s == kClosed) return true;
  if (s == kOpen) {
    double opened = n.opened_at.load(std::memory_order_relaxed);
    if (clock_.ElapsedSeconds() - opened >= config_.cooldown_seconds) {
      int expected = kOpen;
      if (n.state.compare_exchange_strong(expected, kHalfOpen,
                                          std::memory_order_relaxed)) {
        // This caller won the single half-open probe slot; its session
        // routes to the node and its outcome decides close-or-reopen.
        probes_started_.fetch_add(1, std::memory_order_relaxed);
        if (MetricsEnabled()) {
          MetricsRegistry::Global()
              .counter("server.health.probes")
              .Add(1);
        }
        return true;
      }
    }
  }
  // Open inside cooldown, or half-open with the probe claimed elsewhere.
  routes_denied_.fetch_add(1, std::memory_order_relaxed);
  if (MetricsEnabled()) {
    MetricsRegistry::Global()
        .counter("server.health.routes_denied")
        .Add(1);
  }
  return false;
}

void NodeHealthRegistry::Open(NodeHealth& n) {
  int s = n.state.load(std::memory_order_relaxed);
  for (;;) {
    if (s == kOpen) return;  // already open; keep the older opened_at
    if (n.state.compare_exchange_weak(s, kOpen,
                                      std::memory_order_relaxed)) {
      break;
    }
  }
  n.opened_at.store(clock_.ElapsedSeconds(), std::memory_order_relaxed);
  breaker_opens_.fetch_add(1, std::memory_order_relaxed);
  if (MetricsEnabled()) {
    MetricsRegistry::Global()
        .counter("server.health.breaker_opens")
        .Add(1);
  }
}

void NodeHealthRegistry::Close(NodeHealth& n) {
  int expected = kHalfOpen;
  if (!n.state.compare_exchange_strong(expected, kClosed,
                                       std::memory_order_relaxed)) {
    return;
  }
  breaker_closes_.fetch_add(1, std::memory_order_relaxed);
  if (MetricsEnabled()) {
    MetricsRegistry::Global()
        .counter("server.health.breaker_closes")
        .Add(1);
  }
}

void NodeHealthRegistry::RecordNodeFailure(int node) {
  PARQO_CHECK(node >= 0 && node < num_nodes());
  NodeHealth& n = nodes_[node];
  n.failures_total.fetch_add(1, std::memory_order_relaxed);
  int failures =
      n.consecutive_failures.fetch_add(1, std::memory_order_relaxed) + 1;
  if (MetricsEnabled()) {
    MetricsRegistry::Global()
        .counter("server.health.node_failures")
        .Add(1);
  }
  int s = n.state.load(std::memory_order_relaxed);
  if (s == kHalfOpen) {
    // The probe failed: straight back to open, cooldown restarts.
    Open(n);
    return;
  }
  if (s == kClosed && failures >= config_.failure_threshold) Open(n);
}

void NodeHealthRegistry::RecordNodeSuccess(int node, double op_seconds) {
  PARQO_CHECK(node >= 0 && node < num_nodes());
  NodeHealth& n = nodes_[node];
  n.successes_total.fetch_add(1, std::memory_order_relaxed);
  n.consecutive_failures.store(0, std::memory_order_relaxed);
  if (n.state.load(std::memory_order_relaxed) == kHalfOpen) Close(n);
  if (op_seconds <= 0) return;
  // Lock-free EWMA: CAS the double's bit pattern. Zero bits mean "no
  // sample yet" (a real sample is always > 0, so the patterns are
  // disjoint).
  std::uint64_t cur = n.ewma_bits.load(std::memory_order_relaxed);
  for (;;) {
    double next =
        cur == 0
            ? op_seconds
            : config_.ewma_alpha * op_seconds +
                  (1.0 - config_.ewma_alpha) * std::bit_cast<double>(cur);
    if (n.ewma_bits.compare_exchange_weak(cur,
                                          std::bit_cast<std::uint64_t>(next),
                                          std::memory_order_relaxed)) {
      return;
    }
  }
}

double NodeHealthRegistry::EwmaOpSeconds(int node) const {
  PARQO_CHECK(node >= 0 && node < num_nodes());
  std::uint64_t bits = nodes_[node].ewma_bits.load(std::memory_order_relaxed);
  return bits == 0 ? 0.0 : std::bit_cast<double>(bits);
}

void NodeHealthRegistry::RecomputeHedgeThreshold() {
  std::vector<double> samples;
  samples.reserve(nodes_.size());
  for (const NodeHealth& n : nodes_) {
    std::uint64_t bits = n.ewma_bits.load(std::memory_order_relaxed);
    if (bits != 0) samples.push_back(std::bit_cast<double>(bits));
  }
  double threshold = std::numeric_limits<double>::infinity();
  if (!samples.empty()) {
    std::sort(samples.begin(), samples.end());
    double pos = config_.hedge_quantile *
                 static_cast<double>(samples.size() - 1);
    std::size_t idx = static_cast<std::size_t>(pos);
    double quantile = samples[idx];
    if (idx + 1 < samples.size()) {
      double frac = pos - static_cast<double>(idx);
      quantile += frac * (samples[idx + 1] - samples[idx]);
    }
    threshold = std::max(config_.hedge_min_seconds,
                         config_.hedge_multiplier * quantile);
  }
  hedge_threshold_.store(threshold, std::memory_order_relaxed);
}

void NodeHealthRegistry::RecordSession(const ExecMetrics& m) {
  // Per-node feedback. Mid-query failures were already reported by the
  // executor's RecordNodeFailure the moment each probe failed, so the
  // session pass only records successes: a node that did work and never
  // failed this session observed (busy / ops) mean per-op latency.
  int n = std::min(num_nodes(), static_cast<int>(m.node_ops.size()));
  for (int i = 0; i < n; ++i) {
    std::uint64_t ops = m.node_ops[i];
    std::uint64_t failures =
        i < static_cast<int>(m.node_failures.size()) ? m.node_failures[i]
                                                     : 0;
    if (ops == 0 || failures > 0) continue;
    RecordNodeSuccess(i, m.node_busy_seconds[i] /
                             static_cast<double>(ops));
  }

  {
    MutexLock lock(mu_);
    session_walls_[static_cast<std::size_t>(session_next_)] =
        m.wall_seconds;
    session_next_ = (session_next_ + 1) % config_.session_window;
    if (session_count_ < config_.session_window) ++session_count_;
    // p99 over the occupied window (nearest-rank).
    std::vector<double> walls(
        session_walls_.begin(),
        session_walls_.begin() + session_count_);
    std::size_t rank = static_cast<std::size_t>(
        0.99 * static_cast<double>(walls.size() - 1));
    std::nth_element(walls.begin(),
                     walls.begin() + static_cast<std::ptrdiff_t>(rank),
                     walls.end());
    session_p99_.store(walls[rank], std::memory_order_relaxed);
    RecomputeHedgeThreshold();
  }

  if (MetricsEnabled()) {
    MetricsRegistry& reg = MetricsRegistry::Global();
    reg.counter("server.health.sessions").Add(1);
    reg.gauge("server.health.session_p99_seconds")
        .Set(session_p99_.load(std::memory_order_relaxed));
    double hedge = hedge_threshold_.load(std::memory_order_relaxed);
    if (std::isfinite(hedge)) {
      reg.gauge("server.health.hedge_threshold_seconds").Set(hedge);
    }
  }
}

}  // namespace parqo
