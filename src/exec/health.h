// Cross-query node health: EWMA latency tracking, failure counting, and
// per-node circuit breakers (DESIGN.md section 16).
//
// PR 4's recovery layer is per-query: every session independently pays
// the full detect-crash / re-home / retry cycle against the same sick
// node, and concurrent sessions amplify each other into retry storms.
// The NodeHealthRegistry is the piece of state that REMEMBERS: the
// server feeds it every session's ExecMetrics, it tracks per-node EWMA
// operator latency and consecutive-failure counts, and it drives one
// circuit breaker per simulated node:
//
//       closed ── failure_threshold consecutive failures ──> open
//       open ── cooldown elapsed, first router claims probe ──> half-open
//       half-open ── probe session succeeds on the node ──> closed
//       half-open ── probe session fails on the node ──> open (again)
//
// The executor consults the registry BEFORE dispatch (AllowRoute): open
// nodes are quarantined — their partitions are pre-emptively re-homed to
// survivors, so the session never discovers the crash mid-scan. The
// registry also derives a hedge threshold (a quantile over the per-node
// EWMA latencies) that the executor compares against a node's in-flight
// delay to trigger speculative re-execution, and a session-latency p99
// that the AdmissionController uses for load shedding.
//
// Concurrency: the executor-facing read path (AllowRoute /
// HedgeThresholdSeconds / SessionP99Seconds) is lock-free — atomic per-
// node state, breaker transitions by CAS. The feedback path
// (RecordSession) takes mu_ (LockRank::kHealth) only to recompute the
// derived quantile thresholds; per-node EWMA updates themselves are CAS
// loops on bit-cast doubles so RecordNodeSuccess/Failure may also be
// called mid-query from executor workers.

#ifndef PARQO_EXEC_HEALTH_H_
#define PARQO_EXEC_HEALTH_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/thread_annotations.h"
#include "exec/executor.h"

namespace parqo {

/// Breaker and EWMA knobs. Defaults suit the simulated cluster's
/// sub-millisecond operators; tests shrink/grow cooldown_seconds to pin
/// transitions.
struct HealthConfig {
  /// EWMA weight of the newest sample (higher = faster adaptation).
  double ewma_alpha = 0.3;
  /// Consecutive failures that trip a breaker closed -> open.
  int failure_threshold = 3;
  /// Seconds an open breaker waits before offering a half-open probe.
  double cooldown_seconds = 0.5;
  /// The hedge threshold is `hedge_multiplier` times this quantile of
  /// the per-node EWMA operator latencies (nodes with samples only).
  double hedge_quantile = 0.9;
  double hedge_multiplier = 4.0;
  /// Never hedge below this absolute in-flight delay, regardless of how
  /// fast the healthy quantile is — hedging microsecond ops is waste.
  double hedge_min_seconds = 1e-4;
  /// Session latencies tracked for the admission p99 (ring buffer size).
  int session_window = 256;
};

enum class BreakerState : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

class NodeHealthRegistry {
 public:
  explicit NodeHealthRegistry(int num_nodes,
                              HealthConfig config = HealthConfig());

  NodeHealthRegistry(const NodeHealthRegistry&) = delete;
  NodeHealthRegistry& operator=(const NodeHealthRegistry&) = delete;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const HealthConfig& config() const { return config_; }

  // -- Executor-facing routing (lock-free) -----------------------------

  /// Routing decision for one session's dispatch. Closed breaker: route.
  /// Open breaker inside cooldown: avoid (quarantine). Open breaker past
  /// cooldown: exactly one caller wins the CAS to half-open and routes
  /// (the probe); everyone else keeps avoiding until the probe's outcome
  /// is recorded. NOT idempotent — introspection should use state().
  bool AllowRoute(int node);

  /// Current hedge threshold in seconds; +infinity until enough healthy
  /// samples exist to derive a quantile.
  double HedgeThresholdSeconds() const {
    return hedge_threshold_.load(std::memory_order_relaxed);
  }

  /// p99 of recent session wall times (admission shedding input);
  /// 0 until a session has been recorded.
  double SessionP99Seconds() const {
    return session_p99_.load(std::memory_order_relaxed);
  }

  // -- Feedback --------------------------------------------------------

  /// Feeds one finished session's metrics: per-node EWMA updates from
  /// node busy time, failure/success bookkeeping (success on a probed
  /// half-open node closes its breaker), and recomputation of the
  /// derived hedge threshold and session p99. Call after EVERY session,
  /// failed or not — failures are what breakers eat.
  void RecordSession(const ExecMetrics& m);

  /// One mid-query crash detection on `node` (executor calls this the
  /// moment a probe fails, so a breaker can trip within a single
  /// session's retry loop rather than one session per failure).
  void RecordNodeFailure(int node);

  /// One successful observation on `node` with mean per-op latency
  /// `op_seconds` (<= 0 records the success but skips the EWMA update).
  void RecordNodeSuccess(int node, double op_seconds);

  // -- Introspection (tests, bench, metrics) ---------------------------

  BreakerState state(int node) const {
    return static_cast<BreakerState>(
        nodes_[node].state.load(std::memory_order_relaxed));
  }
  double EwmaOpSeconds(int node) const;
  int consecutive_failures(int node) const {
    return nodes_[node].consecutive_failures.load(
        std::memory_order_relaxed);
  }
  std::uint64_t breaker_opens() const {
    return breaker_opens_.load(std::memory_order_relaxed);
  }
  std::uint64_t breaker_closes() const {
    return breaker_closes_.load(std::memory_order_relaxed);
  }
  std::uint64_t probes_started() const {
    return probes_started_.load(std::memory_order_relaxed);
  }
  std::uint64_t routes_denied() const {
    return routes_denied_.load(std::memory_order_relaxed);
  }

 private:
  struct NodeHealth {
    std::atomic<int> state{static_cast<int>(BreakerState::kClosed)};
    std::atomic<int> consecutive_failures{0};
    /// EWMA of per-op latency, stored as the double's bit pattern so the
    /// CAS update loop needs no lock. Zero bits until the first sample.
    std::atomic<std::uint64_t> ewma_bits{0};
    /// Stopwatch-relative time the breaker last opened.
    std::atomic<double> opened_at{0};
    std::atomic<std::uint64_t> failures_total{0};
    std::atomic<std::uint64_t> successes_total{0};
  };

  void Open(NodeHealth& n);
  void Close(NodeHealth& n);
  /// Recomputes hedge_threshold_ from the per-node EWMAs. Serialized by
  /// mu_; reads the atomics, publishes one atomic result.
  void RecomputeHedgeThreshold() PARQO_REQUIRES(mu_);

  const HealthConfig config_;
  /// Steady clock for breaker cooldowns; immutable after construction.
  // parqo-lint: allow(guarded-field) read-only steady-clock epoch
  Stopwatch clock_;

  /// Elements are atomics; the vector's shape is fixed at construction.
  // parqo-lint: allow(guarded-field) per-element atomics, sized in the ctor
  std::vector<NodeHealth> nodes_;

  std::atomic<double> hedge_threshold_;
  std::atomic<double> session_p99_{0};

  std::atomic<std::uint64_t> breaker_opens_{0};
  std::atomic<std::uint64_t> breaker_closes_{0};
  std::atomic<std::uint64_t> probes_started_{0};
  std::atomic<std::uint64_t> routes_denied_{0};

  /// Serializes derived-threshold recomputation and the session-latency
  /// ring buffer; never held while calling out of this class.
  Mutex mu_{LockRank::kHealth};
  std::vector<double> session_walls_ PARQO_GUARDED_BY(mu_);
  int session_next_ PARQO_GUARDED_BY(mu_) = 0;
  int session_count_ PARQO_GUARDED_BY(mu_) = 0;
};

}  // namespace parqo

#endif  // PARQO_EXEC_HEALTH_H_
