// Batch hash-join kernels for the per-node execution path (DESIGN.md
// section 13). The join table is open-addressed with linear probing —
// the same shape as common/flat_map.h, but keyed per build row instead
// of per TpSet: each slot holds one build-row entry, duplicates of a key
// occupy later slots of the same probe chain, and linear probing
// guarantees a probe encounters them in build-insertion (ascending row)
// order. That property, plus morsel-order reduction of probe chunks,
// makes the batch engine's output order canonical: probe rows ascending,
// matching build rows ascending — independent of hashing, capacity, or
// thread interleaving.
//
// Two kernels share the layout: SingleKeyJoinTable stores the TermId key
// inline and matches by direct key comparison (no hash re-check, no key
// gather — the overwhelmingly common case in BGP joins, where operators
// share exactly one variable); MultiKeyJoinTable stores the 64-bit key
// hash and leaves full key equality to the caller, which has the key
// columns at hand.

#ifndef PARQO_EXEC_JOIN_KERNEL_H_
#define PARQO_EXEC_JOIN_KERNEL_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/morsel.h"
#include "exec/binding_table.h"
#include "query/join_graph.h"
#include "rdf/term.h"

namespace parqo {

/// Sorted union of two operator schemas (the join output schema).
std::vector<VarId> MergeSchemas(const std::vector<VarId>& a,
                                const std::vector<VarId>& b);

/// Variables present in both schemas, in `a`'s order (the join key).
std::vector<VarId> SharedSchema(const std::vector<VarId>& a,
                                const std::vector<VarId>& b);

/// Mixes a single TermId key into a 64-bit hash (splitmix64 finalizer).
/// TermIds are small dense integers, so without mixing every key would
/// land in the same low slots of a power-of-two table.
inline std::uint64_t JoinKeyHash(TermId t) {
  std::uint64_t x = static_cast<std::uint64_t>(t);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// FNV-1a over a multi-column key (matches the row-hash constants used by
/// BindingTable::Deduplicate).
inline std::uint64_t JoinKeyHash(const TermId* key, std::size_t n) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= key[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// Open-addressed join table over a single TermId key column. Slots are 8
/// bytes ({key, row+1}); row_plus_1 == 0 marks vacant. No erase, no
/// tombstones; capacity is a power of two at <= 50% load.
class SingleKeyJoinTable {
 public:
  /// (Re)builds the table over `keys`; row r of the build side has key
  /// keys[r]. Previous contents are discarded.
  void Build(const std::vector<TermId>& keys) {
    std::size_t cap = 16;
    while (cap < keys.size() * 2) cap <<= 1;
    slots_.assign(cap, Slot{});
    const std::size_t mask = cap - 1;
    for (std::uint32_t r = 0; r < keys.size(); ++r) {
      TermId k = keys[r];
      std::size_t i = JoinKeyHash(k) & mask;
      while (slots_[i].row_plus_1 != 0) i = (i + 1) & mask;
      slots_[i] = Slot{k, r + 1};
    }
  }

  /// Calls fn(build_row) for every build row whose key equals `key`, in
  /// ascending build-row order. Matching is a direct TermId comparison —
  /// hash collisions cost one compare, never a false match.
  template <typename Fn>
  void ForEachMatch(TermId key, Fn&& fn) const {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = JoinKeyHash(key) & mask;; i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (s.row_plus_1 == 0) return;
      if (s.key == key) fn(s.row_plus_1 - 1);
    }
  }

  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    TermId key = kInvalidTermId;
    std::uint32_t row_plus_1 = 0;  // 0 = vacant
  };
  std::vector<Slot> slots_;
};

/// Open-addressed join table over a multi-column key, storing the 64-bit
/// key hash per build row. The caller confirms full key equality on hash
/// match (it owns the key columns); with 64-bit hashes a false positive
/// costs one extra compare.
class MultiKeyJoinTable {
 public:
  /// (Re)builds the table; row r of the build side hashes to hashes[r].
  void Build(const std::vector<std::uint64_t>& hashes) {
    std::size_t cap = 16;
    while (cap < hashes.size() * 2) cap <<= 1;
    slots_.assign(cap, Slot{});
    const std::size_t mask = cap - 1;
    for (std::uint32_t r = 0; r < hashes.size(); ++r) {
      std::size_t i = hashes[r] & mask;
      while (slots_[i].row_plus_1 != 0) i = (i + 1) & mask;
      slots_[i] = Slot{hashes[r], r + 1};
    }
  }

  /// Calls fn(build_row) for every build row whose key HASH equals
  /// `hash`, in ascending build-row order. The caller must re-check the
  /// actual key columns.
  template <typename Fn>
  void ForEachHashMatch(std::uint64_t hash, Fn&& fn) const {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (s.row_plus_1 == 0) return;
      if (s.hash == hash) fn(s.row_plus_1 - 1);
    }
  }

  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t row_plus_1 = 0;  // 0 = vacant
  };
  std::vector<Slot> slots_;
};

struct BatchJoinOptions {
  /// Probe-side rows per morsel; 0 = one morsel (no splitting).
  std::size_t morsel_rows = kDefaultMorselRows;
  /// Dispatch probe morsels over the shared thread pool. Output is
  /// identical either way (morsel-order reduction).
  bool parallel = false;
  /// Forces the generic multi-key kernel even for single-key joins; for
  /// benchmarking the specialization, never for production use.
  bool force_generic_kernel = false;
};

/// Hash join of two tables on all shared variables (cross product when
/// none are shared). Build side is the smaller input (ties keep left);
/// output rows are ordered probe-row-major with build matches ascending,
/// columns materialized by batch gather. The output inherits the probe
/// side's sorted-by metadata (probe-major emit preserves probe order).
BindingTable BatchHashJoin(const BindingTable& left,
                           const BindingTable& right,
                           const BatchJoinOptions& opts = BatchJoinOptions{});

/// The single shared variable both inputs are known-sorted on, or
/// kInvalidVarId when the merge join does not apply (no/multiple shared
/// variables, unknown order, or an empty input — the hash join handles
/// those identically for free).
VarId MergeJoinKey(const BindingTable& left, const BindingTable& right);

/// Merge join on the single shared variable; both inputs MUST be sorted
/// on it (MergeJoinKey != kInvalidVarId). Probe/build sides, emit order,
/// and output columns are chosen exactly like BatchHashJoin — for sorted
/// inputs the run-scan produces probe-ascending, build-ascending matches,
/// so the output is BIT-IDENTICAL to the hash join's; only the matching
/// work (two sorted cursors, no table build, no hashing) differs. Probe
/// morsels locate their build run by binary search and reduce in morsel
/// order, so parallel output equals serial output.
BindingTable BatchMergeJoin(
    const BindingTable& left, const BindingTable& right,
    const BatchJoinOptions& opts = BatchJoinOptions{});

}  // namespace parqo

#endif  // PARQO_EXEC_JOIN_KERNEL_H_
