// Row-at-a-time reference hash join: the pre-vectorization execution
// path, kept in-tree as the oracle for the batch kernels. The golden
// equivalence test (tests/engine_equivalence_test.cc) runs every query
// through both engines and demands bit-identical BindingTables, so this
// implementation pins down the canonical output order both engines
// share: probe rows ascending (probe = the larger input; ties build
// left), matching build rows ascending, cross product left-row-major.
//
// This file is deliberately slow and simple — per-row key
// materialization, per-row AppendRow — and is exempt from the
// exec-row-hot-path lint rule because being the row-at-a-time oracle is
// its entire job.

#ifndef PARQO_EXEC_REFERENCE_JOIN_H_
#define PARQO_EXEC_REFERENCE_JOIN_H_

#include "exec/binding_table.h"

namespace parqo {

/// Hash join of two tables on all shared variables (cross product when
/// none are shared), row at a time. Same schema, rows, and row ORDER as
/// BatchHashJoin — by construction, not by sorting.
BindingTable ReferenceHashJoin(const BindingTable& left,
                               const BindingTable& right);

}  // namespace parqo

#endif  // PARQO_EXEC_REFERENCE_JOIN_H_
