#include "exec/cluster.h"

namespace parqo {

Cluster::Cluster(const RdfGraph& graph,
                 const PartitionAssignment& assignment)
    : graph_(&graph) {
  nodes_.reserve(assignment.num_nodes);
  for (const auto& idxs : assignment.node_triples) {
    std::vector<Triple> triples;
    triples.reserve(idxs.size());
    for (TripleIdx i : idxs) triples.push_back(graph.triples()[i]);
    nodes_.emplace_back(std::move(triples));
  }
}

std::size_t Cluster::TotalStored() const {
  std::size_t sum = 0;
  for (const NodeStore& n : nodes_) sum += n.NumTriples();
  return sum;
}

}  // namespace parqo
