// Per-node triple storage of the simulated cluster, backed by the
// compressed storage subsystem (storage/dataset_index.h): four clustered
// permutation indexes answer every constant combination of a triple
// pattern with one contiguous prefix-range scan — including variable
// predicates, which seek SPO/OSP instead of degenerating to a linear
// filter pass. Scans decompress page-at-a-time directly into
// BindingTable columns. This plays the role RDF-3X plays on each worker
// in the paper's prototype.

#ifndef PARQO_EXEC_NODE_STORE_H_
#define PARQO_EXEC_NODE_STORE_H_

#include <vector>

#include "exec/binding_table.h"
#include "query/join_graph.h"
#include "rdf/triple.h"
#include "storage/dataset_index.h"

namespace parqo {

/// A triple pattern with constants resolved to TermIds; kInvalidTermId in
/// a position means "variable". Produced by BindPattern (executor.h).
struct ResolvedPattern {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;
  VarId var_s = kInvalidVarId;
  VarId var_p = kInvalidVarId;
  VarId var_o = kInvalidVarId;
  /// Sorted distinct variables (the scan output schema).
  std::vector<VarId> schema;
  /// True when the pattern has an unbindable constant (absent from the
  /// dictionary): it matches nothing anywhere.
  bool unmatchable = false;
};

class NodeStore {
 public:
  explicit NodeStore(std::vector<Triple> triples);

  NodeStore(NodeStore&&) = default;
  NodeStore& operator=(NodeStore&&) = default;

  std::size_t NumTriples() const { return index_.NumTriples(); }

  /// Scans this node's triples for `pattern` matches via the permutation
  /// index whose prefix pins every constant; only repeated-variable
  /// equality is filtered during page decode. Pages are the scan morsels:
  /// with `parallel`, groups of ~`morsel_rows` entries decode over the
  /// shared pool and are reduced in page order, so output row order is
  /// index-key order regardless of morseling (morsel_rows == 0 means one
  /// morsel). The result carries sorted-by metadata for the first free
  /// key component, which is what lets the batch engine merge-join
  /// co-ordered inputs.
  BindingTable Scan(const ResolvedPattern& pattern,
                    std::size_t morsel_rows = 0, bool parallel = false) const;

  /// Compressed footprint of this node's indexes, for the bytes-per-triple
  /// storage report (the dual-vector layout this replaced was 24 B).
  std::size_t IndexBytes() const { return index_.ByteSize(); }

  const DatasetIndex& index() const { return index_; }

 private:
  DatasetIndex index_;
};

}  // namespace parqo

#endif  // PARQO_EXEC_NODE_STORE_H_
