// Per-node triple storage of the simulated cluster. Each node keeps its
// assigned triples in two sort orders (PSO and POS) so that the triple
// patterns of our workloads — constant predicate with constant subject,
// constant object, both, or neither — scan via binary search; variable
// predicates fall back to a full scan. This plays the role RDF-3X plays on
// each worker in the paper's prototype.

#ifndef PARQO_EXEC_NODE_STORE_H_
#define PARQO_EXEC_NODE_STORE_H_

#include <optional>
#include <span>
#include <vector>

#include "exec/binding_table.h"
#include "query/join_graph.h"
#include "rdf/triple.h"

namespace parqo {

/// A triple pattern with constants resolved to TermIds; kInvalidTermId in
/// a position means "variable". Produced by BindPattern (executor.h).
struct ResolvedPattern {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;
  VarId var_s = kInvalidVarId;
  VarId var_p = kInvalidVarId;
  VarId var_o = kInvalidVarId;
  /// Sorted distinct variables (the scan output schema).
  std::vector<VarId> schema;
  /// True when the pattern has an unbindable constant (absent from the
  /// dictionary): it matches nothing anywhere.
  bool unmatchable = false;
};

class NodeStore {
 public:
  explicit NodeStore(std::vector<Triple> triples);

  std::size_t NumTriples() const { return pso_.size(); }

  /// Scans this node's triples for `pattern` matches. Vectorized: the
  /// constant and repeated-variable filters run over the sorted triple
  /// range first (optionally split into `morsel_rows`-sized morsels,
  /// dispatched over the shared pool when `parallel`), then the output
  /// columns are materialized by one gather per column. Output row order
  /// is triple-index order regardless of morseling. morsel_rows == 0
  /// means one morsel.
  BindingTable Scan(const ResolvedPattern& pattern,
                    std::size_t morsel_rows = 0, bool parallel = false) const;

 private:
  std::vector<Triple> pso_;  // sorted by (p, s, o)
  std::vector<Triple> pos_;  // sorted by (p, o, s)
};

}  // namespace parqo

#endif  // PARQO_EXEC_NODE_STORE_H_
