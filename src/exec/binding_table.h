// Columnar table of variable bindings flowing between operators of the
// execution engine. The schema is a list of VarIds; storage is one dense
// TermId vector per column, so batch operators (scan emission, join
// gather, repartition routing) read and write contiguous columns instead
// of strided rows (DESIGN.md section 13). Row-at-a-time access (At,
// AppendRow) remains for cold paths and tests; the execution hot path is
// held to the batch APIs by tools/parqo_lint.py's exec-row-hot-path rule.

#ifndef PARQO_EXEC_BINDING_TABLE_H_
#define PARQO_EXEC_BINDING_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "query/join_graph.h"
#include "rdf/term.h"

namespace parqo {

class BindingTable {
 public:
  BindingTable() = default;
  explicit BindingTable(std::vector<VarId> schema)
      : schema_(std::move(schema)), cols_(schema_.size()) {
    BuildColumnIndex();
  }

  const std::vector<VarId>& schema() const { return schema_; }
  int num_cols() const { return static_cast<int>(schema_.size()); }
  std::size_t NumRows() const { return cols_.empty() ? 0 : cols_[0].size(); }

  /// Column index of variable v, or -1 if absent. O(1): the constructor
  /// builds a small VarId-indexed lookup (duplicate schema entries keep
  /// the first column, matching the linear scan this replaced).
  int ColumnOf(VarId v) const {
    return v >= 0 && static_cast<std::size_t>(v) < col_of_.size()
               ? col_of_[v]
               : -1;
  }

  TermId At(std::size_t row, int col) const { return cols_[col][row]; }

  /// Whole-column access for batch kernels.
  const std::vector<TermId>& Column(int col) const { return cols_[col]; }
  std::vector<TermId>& MutableColumn(int col) { return cols_[col]; }

  void Reserve(std::size_t rows) {
    for (std::vector<TermId>& c : cols_) c.reserve(rows);
  }

  /// Ordered-scan metadata: the variable whose column is known to be
  /// non-decreasing in row order (kInvalidVarId = unknown). Index scans
  /// set it for the first free key component; the batch join kernels
  /// propagate it through order-preserving operators and the executor
  /// consults it to choose merge joins. NOT part of value equality:
  /// operator== compares schema and rows only, so tables that differ only
  /// in known order compare equal.
  VarId sorted_by() const { return sorted_by_; }
  void SetSortedBy(VarId v) { sorted_by_ = v; }

  /// Appends one row; `row` must have num_cols() entries. Cold-path/test
  /// API: operators append in batches (AppendFrom/AppendGather). Any
  /// append invalidates sorted-order metadata (appended rows need not
  /// extend the order).
  void AppendRow(const TermId* row) {
    sorted_by_ = kInvalidVarId;
    for (std::size_t c = 0; c < cols_.size(); ++c) {
      cols_[c].push_back(row[c]);
    }
  }
  void AppendRow(const std::vector<TermId>& row) { AppendRow(row.data()); }

  /// Appends every row of `src`, column by column. Schemas must be
  /// identical (same variables in the same column order).
  void AppendFrom(const BindingTable& src);

  /// Appends `n` rows of `src` selected by `rows` (source row indexes, in
  /// the given order), column by column. Schemas must be identical.
  void AppendGather(const BindingTable& src, const std::uint32_t* rows,
                    std::size_t n);

  /// Removes duplicate rows (set semantics), keeping the first occurrence
  /// of each row in order — the canonical order downstream golden
  /// comparisons rely on. Hash-based: no row copies, no sorting.
  /// Keep-first preserves row order, so sorted-by metadata survives.
  void Deduplicate();

  /// Rows projected onto `vars` (each must be in the schema),
  /// deduplicated. Column-oriented: each projected column is copied
  /// wholesale, then duplicates are hashed out on the projected columns
  /// only. A zero-column projection yields an empty table (a table with
  /// no schema has no rows by definition).
  BindingTable Project(const std::vector<VarId>& vars) const;

  /// Exact equality: same schema, same rows in the same order.
  friend bool operator==(const BindingTable& a, const BindingTable& b) {
    return a.schema_ == b.schema_ && a.cols_ == b.cols_;
  }

 private:
  void BuildColumnIndex();

  std::vector<VarId> schema_;
  std::vector<std::vector<TermId>> cols_;  // cols_[c][r]
  std::vector<int> col_of_;                // VarId -> column index, -1 absent
  VarId sorted_by_ = kInvalidVarId;        // known row order; not compared
};

}  // namespace parqo

#endif  // PARQO_EXEC_BINDING_TABLE_H_
