// Columnar table of variable bindings flowing between operators of the
// execution engine. The schema is a sorted list of VarIds; rows are dense
// TermId tuples.

#ifndef PARQO_EXEC_BINDING_TABLE_H_
#define PARQO_EXEC_BINDING_TABLE_H_

#include <cstdint>
#include <vector>

#include "query/join_graph.h"
#include "rdf/term.h"

namespace parqo {

class BindingTable {
 public:
  BindingTable() = default;
  explicit BindingTable(std::vector<VarId> schema)
      : schema_(std::move(schema)) {}

  const std::vector<VarId>& schema() const { return schema_; }
  int num_cols() const { return static_cast<int>(schema_.size()); }
  std::size_t NumRows() const {
    return schema_.empty() ? 0 : data_.size() / schema_.size();
  }

  /// Column index of variable v, or -1 if absent.
  int ColumnOf(VarId v) const {
    for (int c = 0; c < num_cols(); ++c) {
      if (schema_[c] == v) return c;
    }
    return -1;
  }

  TermId At(std::size_t row, int col) const {
    return data_[row * schema_.size() + col];
  }

  /// Appends one row; `row` must have num_cols() entries.
  void AppendRow(const TermId* row) {
    data_.insert(data_.end(), row, row + schema_.size());
  }
  void AppendRow(const std::vector<TermId>& row) { AppendRow(row.data()); }

  const TermId* RowPtr(std::size_t row) const {
    return data_.data() + row * schema_.size();
  }

  /// Removes duplicate rows (set semantics).
  void Deduplicate();

  /// Rows projected onto `vars` (each must be in the schema), deduplicated.
  BindingTable Project(const std::vector<VarId>& vars) const;

 private:
  std::vector<VarId> schema_;
  std::vector<TermId> data_;  // row-major
};

}  // namespace parqo

#endif  // PARQO_EXEC_BINDING_TABLE_H_
