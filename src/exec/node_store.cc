#include "exec/node_store.h"

#include <algorithm>

#include "common/morsel.h"

namespace parqo {
namespace {

// Triple-field order of each permutation's key components, as indexes
// into (s, p, o): the first FREE component is the scan's sort key.
constexpr int kPermFields[4][3] = {
    {0, 1, 2},  // kSpo
    {1, 0, 2},  // kPso
    {1, 2, 0},  // kPos
    {2, 0, 1},  // kOsp
};

}  // namespace

NodeStore::NodeStore(std::vector<Triple> triples) : index_(triples) {}

BindingTable NodeStore::Scan(const ResolvedPattern& pattern,
                             std::size_t morsel_rows, bool parallel) const {
  BindingTable out(pattern.schema);
  if (pattern.unmatchable) return out;

  const DatasetIndex::RangeChoice rc =
      DatasetIndex::ChooseRange(pattern.s, pattern.p, pattern.o);
  const CompressedKeyIndex& idx = index_.perm(rc.perm);
  const auto [first_page, end_page] = idx.PageSpan(rc.lo, rc.hi);
  const std::size_t num_pages = end_page - first_page;
  if (num_pages == 0) return out;

  // Every constant is pinned by the range prefix; only repeated-variable
  // equality (?x p ?x) is filtered during decode.
  const bool need_so =
      pattern.var_s != kInvalidVarId && pattern.var_s == pattern.var_o;
  const bool need_sp =
      pattern.var_s != kInvalidVarId && pattern.var_s == pattern.var_p;
  const bool need_po =
      pattern.var_p != kInvalidVarId && pattern.var_p == pattern.var_o;
  const bool filter = need_so || need_sp || need_po;

  // Pages are the scan morsels; a group of pages per morsel approximates
  // the requested rows-per-morsel. Chunks are reduced in page order, so
  // the output is byte-for-byte the serial scan's.
  const std::size_t pages_per_morsel =
      morsel_rows == 0 ? num_pages
                       : std::max<std::size_t>(1, morsel_rows / kLeafEntries);
  std::vector<std::vector<Triple>> chunks(
      NumMorsels(num_pages, pages_per_morsel));
  ForEachMorsel(
      num_pages, pages_per_morsel, parallel,
      [&](std::size_t m, std::size_t mb, std::size_t me) {
        std::vector<Triple>& kept = chunks[m];
        CompressedKeyIndex::Scratch scratch;
        for (std::size_t page = mb; page < me; ++page) {
          idx.ScanPage(first_page + page, rc.lo, rc.hi, scratch,
                       [&](std::span<const IndexKey> run) {
                         for (const IndexKey& k : run) {
                           const Triple t = PermTriple(rc.perm, k);
                           if (filter) {
                             if (need_so && t.s != t.o) continue;
                             if (need_sp && t.s != t.p) continue;
                             if (need_po && t.p != t.o) continue;
                           }
                           kept.push_back(t);
                         }
                       });
        }
      });

  // Materialize: one gather per output column from the kept triples.
  std::size_t total = 0;
  for (const std::vector<Triple>& c : chunks) total += c.size();
  for (int c = 0; c < out.num_cols(); ++c) {
    const VarId v = pattern.schema[c];
    // Source-field precedence matches the row-at-a-time emitter this
    // replaced: s, then p, then o.
    const int field = v == pattern.var_s ? 0 : v == pattern.var_p ? 1 : 2;
    std::vector<TermId>& dst = out.MutableColumn(c);
    dst.resize(total);
    std::size_t pos = 0;
    for (const std::vector<Triple>& chunk : chunks) {
      for (const Triple& t : chunk) {
        dst[pos++] = field == 0 ? t.s : field == 1 ? t.p : t.o;
      }
    }
  }

  // Rows arrive in rc.perm key order, so the first free key component's
  // column is non-decreasing — the ordered-scan property merge joins use.
  const TermId consts[3] = {pattern.s, pattern.p, pattern.o};
  const VarId vars[3] = {pattern.var_s, pattern.var_p, pattern.var_o};
  for (const int field : kPermFields[static_cast<int>(rc.perm)]) {
    if (consts[field] == kInvalidTermId) {
      out.SetSortedBy(vars[field]);
      break;
    }
  }
  return out;
}

}  // namespace parqo
