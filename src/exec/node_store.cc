#include "exec/node_store.h"

#include <algorithm>
#include <tuple>

namespace parqo {
namespace {

struct PsoLess {
  bool operator()(const Triple& a, const Triple& b) const {
    return std::tie(a.p, a.s, a.o) < std::tie(b.p, b.s, b.o);
  }
};
struct PosLess {
  bool operator()(const Triple& a, const Triple& b) const {
    return std::tie(a.p, a.o, a.s) < std::tie(b.p, b.o, b.s);
  }
};

}  // namespace

NodeStore::NodeStore(std::vector<Triple> triples) : pso_(std::move(triples)) {
  std::sort(pso_.begin(), pso_.end(), PsoLess{});
  pos_ = pso_;
  std::sort(pos_.begin(), pos_.end(), PosLess{});
}

void NodeStore::EmitMatch(const ResolvedPattern& pattern, const Triple& t,
                          BindingTable* out) const {
  // Repeated-variable patterns require equal bindings.
  if (pattern.var_s != kInvalidVarId && pattern.var_s == pattern.var_o &&
      t.s != t.o) {
    return;
  }
  if (pattern.var_s != kInvalidVarId && pattern.var_s == pattern.var_p &&
      t.s != t.p) {
    return;
  }
  if (pattern.var_p != kInvalidVarId && pattern.var_p == pattern.var_o &&
      t.p != t.o) {
    return;
  }
  TermId row[3];
  for (std::size_t i = 0; i < pattern.schema.size(); ++i) {
    VarId v = pattern.schema[i];
    if (v == pattern.var_s) {
      row[i] = t.s;
    } else if (v == pattern.var_p) {
      row[i] = t.p;
    } else {
      row[i] = t.o;
    }
  }
  out->AppendRow(row);
}

BindingTable NodeStore::Scan(const ResolvedPattern& pattern) const {
  BindingTable out(pattern.schema);
  if (pattern.unmatchable) return out;

  auto match_rest = [&](const Triple& t) {
    return (pattern.s == kInvalidTermId || t.s == pattern.s) &&
           (pattern.p == kInvalidTermId || t.p == pattern.p) &&
           (pattern.o == kInvalidTermId || t.o == pattern.o);
  };

  if (pattern.p == kInvalidTermId) {
    // Variable predicate: full scan.
    for (const Triple& t : pso_) {
      if (match_rest(t)) EmitMatch(pattern, t, &out);
    }
    return out;
  }

  if (pattern.s != kInvalidTermId) {
    // (p, s) range in PSO.
    Triple lo{pattern.s, pattern.p, 0};
    auto begin = std::lower_bound(pso_.begin(), pso_.end(), lo, PsoLess{});
    for (auto it = begin;
         it != pso_.end() && it->p == pattern.p && it->s == pattern.s;
         ++it) {
      if (match_rest(*it)) EmitMatch(pattern, *it, &out);
    }
    return out;
  }
  if (pattern.o != kInvalidTermId) {
    // (p, o) range in POS.
    Triple lo{0, pattern.p, pattern.o};
    auto begin = std::lower_bound(pos_.begin(), pos_.end(), lo, PosLess{});
    for (auto it = begin;
         it != pos_.end() && it->p == pattern.p && it->o == pattern.o;
         ++it) {
      if (match_rest(*it)) EmitMatch(pattern, *it, &out);
    }
    return out;
  }
  // Predicate-only range in PSO.
  Triple lo{0, pattern.p, 0};
  auto begin = std::lower_bound(pso_.begin(), pso_.end(), lo, PsoLess{});
  for (auto it = begin; it != pso_.end() && it->p == pattern.p; ++it) {
    EmitMatch(pattern, *it, &out);
  }
  return out;
}

}  // namespace parqo
