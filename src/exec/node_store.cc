#include "exec/node_store.h"

#include <algorithm>
#include <cstdint>
#include <tuple>

#include "common/morsel.h"

namespace parqo {
namespace {

struct PsoLess {
  bool operator()(const Triple& a, const Triple& b) const {
    return std::tie(a.p, a.s, a.o) < std::tie(b.p, b.s, b.o);
  }
};
struct PosLess {
  bool operator()(const Triple& a, const Triple& b) const {
    return std::tie(a.p, a.o, a.s) < std::tie(b.p, b.o, b.s);
  }
};

constexpr TermId kMaxTermId = 0xffffffffu;

}  // namespace

NodeStore::NodeStore(std::vector<Triple> triples) : pso_(std::move(triples)) {
  std::sort(pso_.begin(), pso_.end(), PsoLess{});
  pos_ = pso_;
  std::sort(pos_.begin(), pos_.end(), PosLess{});
}

BindingTable NodeStore::Scan(const ResolvedPattern& pattern,
                             std::size_t morsel_rows, bool parallel) const {
  BindingTable out(pattern.schema);
  if (pattern.unmatchable) return out;

  // Narrow to the sorted range the pattern's constants allow: (p, s) in
  // PSO, (p, o) in POS, p-only in PSO; a variable predicate scans all.
  const std::vector<Triple>* vec = &pso_;
  std::size_t begin = 0;
  std::size_t end = pso_.size();
  if (pattern.p != kInvalidTermId) {
    if (pattern.s != kInvalidTermId) {
      Triple lo{pattern.s, pattern.p, 0};
      Triple hi{pattern.s, pattern.p, kMaxTermId};
      begin = std::lower_bound(pso_.begin(), pso_.end(), lo, PsoLess{}) -
              pso_.begin();
      end = std::upper_bound(pso_.begin(), pso_.end(), hi, PsoLess{}) -
            pso_.begin();
    } else if (pattern.o != kInvalidTermId) {
      vec = &pos_;
      Triple lo{0, pattern.p, pattern.o};
      Triple hi{kMaxTermId, pattern.p, pattern.o};
      begin = std::lower_bound(pos_.begin(), pos_.end(), lo, PosLess{}) -
              pos_.begin();
      end = std::upper_bound(pos_.begin(), pos_.end(), hi, PosLess{}) -
            pos_.begin();
    } else {
      Triple lo{0, pattern.p, 0};
      Triple hi{kMaxTermId, pattern.p, kMaxTermId};
      begin = std::lower_bound(pso_.begin(), pso_.end(), lo, PsoLess{}) -
              pso_.begin();
      end = std::upper_bound(pso_.begin(), pso_.end(), hi, PsoLess{}) -
            pso_.begin();
    }
  }
  if (begin >= end) return out;
  const Triple* triples = vec->data();

  // Filter pass, pushed ahead of materialization: constant equality (a
  // no-op for positions the range already pins) and repeated-variable
  // equality run over the raw triples; survivors are kept as indexes.
  const bool need_so = pattern.var_s != kInvalidVarId &&
                       pattern.var_s == pattern.var_o;
  const bool need_sp = pattern.var_s != kInvalidVarId &&
                       pattern.var_s == pattern.var_p;
  const bool need_po = pattern.var_p != kInvalidVarId &&
                       pattern.var_p == pattern.var_o;
  auto matches = [&](const Triple& t) {
    return (pattern.s == kInvalidTermId || t.s == pattern.s) &&
           (pattern.p == kInvalidTermId || t.p == pattern.p) &&
           (pattern.o == kInvalidTermId || t.o == pattern.o) &&
           (!need_so || t.s == t.o) && (!need_sp || t.s == t.p) &&
           (!need_po || t.p == t.o);
  };

  const std::size_t n = end - begin;
  std::vector<std::vector<std::uint32_t>> keep(NumMorsels(n, morsel_rows));
  ForEachMorsel(n, morsel_rows, parallel,
                [&](std::size_t m, std::size_t mb, std::size_t me) {
                  std::vector<std::uint32_t>& k = keep[m];
                  for (std::size_t i = mb; i < me; ++i) {
                    std::uint32_t idx =
                        static_cast<std::uint32_t>(begin + i);
                    if (matches(triples[idx])) k.push_back(idx);
                  }
                });

  // Materialize: one gather per output column from the matching triple
  // field; morsel-order concatenation keeps triple-index row order.
  std::size_t total = 0;
  for (const std::vector<std::uint32_t>& k : keep) total += k.size();
  for (int c = 0; c < out.num_cols(); ++c) {
    VarId v = pattern.schema[c];
    // Source-field precedence matches the row-at-a-time emitter this
    // replaced: s, then p, then o.
    const int field = v == pattern.var_s ? 0 : v == pattern.var_p ? 1 : 2;
    std::vector<TermId>& dst = out.MutableColumn(c);
    dst.resize(total);
    std::size_t pos = 0;
    for (const std::vector<std::uint32_t>& k : keep) {
      for (std::uint32_t idx : k) {
        const Triple& t = triples[idx];
        dst[pos++] = field == 0 ? t.s : field == 1 ? t.p : t.o;
      }
    }
  }
  return out;
}

}  // namespace parqo
