#include "exec/reference_join.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "exec/join_kernel.h"

namespace parqo {

BindingTable ReferenceHashJoin(const BindingTable& left,
                               const BindingTable& right) {
  std::vector<VarId> shared = SharedSchema(left.schema(), right.schema());
  std::vector<VarId> out_schema = MergeSchemas(left.schema(), right.schema());
  BindingTable out(out_schema);

  std::vector<int> out_from_left(out_schema.size(), -1);
  std::vector<int> out_from_right(out_schema.size(), -1);
  for (std::size_t i = 0; i < out_schema.size(); ++i) {
    out_from_left[i] = left.ColumnOf(out_schema[i]);
    out_from_right[i] = right.ColumnOf(out_schema[i]);
  }
  std::vector<TermId> row(out_schema.size());
  auto emit = [&](std::size_t lr, std::size_t rr) {
    for (std::size_t i = 0; i < out_schema.size(); ++i) {
      row[i] = out_from_left[i] >= 0 ? left.At(lr, out_from_left[i])
                                     : right.At(rr, out_from_right[i]);
    }
    out.AppendRow(row);
  };

  if (shared.empty()) {
    for (std::size_t lr = 0; lr < left.NumRows(); ++lr) {
      for (std::size_t rr = 0; rr < right.NumRows(); ++rr) emit(lr, rr);
    }
    return out;
  }

  const bool build_left = left.NumRows() <= right.NumRows();
  const BindingTable& build = build_left ? left : right;
  const BindingTable& probe = build_left ? right : left;
  std::vector<int> build_key, probe_key;
  for (VarId v : shared) {
    build_key.push_back(build.ColumnOf(v));
    probe_key.push_back(probe.ColumnOf(v));
  }

  // Hash -> build rows in ascending order (vector preserves insertion
  // order); the probe loop then emits probe-ascending, build-ascending.
  std::vector<TermId> key(shared.size());
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> table;
  table.reserve(build.NumRows());
  for (std::size_t r = 0; r < build.NumRows(); ++r) {
    for (std::size_t i = 0; i < key.size(); ++i) {
      key[i] = build.At(r, build_key[i]);
    }
    table[JoinKeyHash(key.data(), key.size())].push_back(
        static_cast<std::uint32_t>(r));
  }
  for (std::size_t r = 0; r < probe.NumRows(); ++r) {
    for (std::size_t i = 0; i < key.size(); ++i) {
      key[i] = probe.At(r, probe_key[i]);
    }
    auto it = table.find(JoinKeyHash(key.data(), key.size()));
    if (it == table.end()) continue;
    for (std::uint32_t b : it->second) {
      bool equal = true;
      for (std::size_t i = 0; i < key.size(); ++i) {
        if (build.At(b, build_key[i]) != key[i]) {
          equal = false;
          break;
        }
      }
      if (!equal) continue;
      if (build_left) {
        emit(b, r);
      } else {
        emit(r, b);
      }
    }
  }
  return out;
}

}  // namespace parqo
