#include "exec/binding_table.h"

#include <utility>

namespace parqo {
namespace {

// FNV-1a over one row, reading column vectors at a fixed row index. Same
// constants as the join kernels so hash quality is shared.
std::uint64_t HashRowAt(const std::vector<std::vector<TermId>>& cols,
                        std::size_t row) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::vector<TermId>& c : cols) {
    h ^= c[row];
    h *= 1099511628211ULL;
  }
  return h;
}

constexpr std::uint32_t kVacant = 0xffffffffu;

}  // namespace

void BindingTable::BuildColumnIndex() {
  VarId max_var = -1;
  for (VarId v : schema_) max_var = v > max_var ? v : max_var;
  col_of_.assign(static_cast<std::size_t>(max_var + 1), -1);
  for (int c = 0; c < num_cols(); ++c) {
    VarId v = schema_[c];
    PARQO_DCHECK(v >= 0);
    if (col_of_[v] < 0) col_of_[v] = c;  // duplicates keep the first
  }
}

void BindingTable::AppendFrom(const BindingTable& src) {
  PARQO_DCHECK(schema_ == src.schema_);
  sorted_by_ = kInvalidVarId;
  for (std::size_t c = 0; c < cols_.size(); ++c) {
    cols_[c].insert(cols_[c].end(), src.cols_[c].begin(),
                    src.cols_[c].end());
  }
}

void BindingTable::AppendGather(const BindingTable& src,
                                const std::uint32_t* rows, std::size_t n) {
  PARQO_DCHECK(schema_ == src.schema_);
  sorted_by_ = kInvalidVarId;
  for (std::size_t c = 0; c < cols_.size(); ++c) {
    std::vector<TermId>& dst = cols_[c];
    const std::vector<TermId>& from = src.cols_[c];
    std::size_t base = dst.size();
    dst.resize(base + n);
    for (std::size_t i = 0; i < n; ++i) {
      dst[base + i] = from[rows[i]];
    }
  }
}

void BindingTable::Deduplicate() {
  const std::size_t rows = NumRows();
  if (rows == 0) return;

  // Open-addressed table of row indexes, linear probing, power-of-two
  // capacity at <= 50% load. A slot holds the index of the first row seen
  // with that content; kVacant marks empty.
  std::size_t cap = 16;
  while (cap < rows * 2) cap <<= 1;
  const std::size_t mask = cap - 1;
  std::vector<std::uint32_t> slots(cap, kVacant);
  std::vector<std::uint32_t> keep;
  keep.reserve(rows);

  auto rows_equal = [&](std::uint32_t a, std::uint32_t b) {
    for (const std::vector<TermId>& c : cols_) {
      if (c[a] != c[b]) return false;
    }
    return true;
  };

  for (std::uint32_t r = 0; r < rows; ++r) {
    std::uint64_t h = HashRowAt(cols_, r);
    for (std::size_t i = h & mask;; i = (i + 1) & mask) {
      std::uint32_t s = slots[i];
      if (s == kVacant) {
        slots[i] = r;
        keep.push_back(r);
        break;
      }
      if (rows_equal(s, r)) break;  // duplicate of an earlier row
    }
  }
  if (keep.size() == rows) return;  // nothing to drop

  for (std::vector<TermId>& c : cols_) {
    std::vector<TermId> out(keep.size());
    for (std::size_t i = 0; i < keep.size(); ++i) {
      out[i] = c[keep[i]];
    }
    c = std::move(out);
  }
}

BindingTable BindingTable::Project(const std::vector<VarId>& vars) const {
  BindingTable out(vars);
  for (std::size_t i = 0; i < vars.size(); ++i) {
    int c = ColumnOf(vars[i]);
    PARQO_CHECK(c >= 0);
    out.cols_[i] = cols_[c];  // whole-column copy
  }
  // Projection keeps row order (dedup is keep-first), so known order
  // survives when the sorted column itself is kept.
  if (sorted_by_ != kInvalidVarId && out.ColumnOf(sorted_by_) >= 0) {
    out.sorted_by_ = sorted_by_;
  }
  out.Deduplicate();
  return out;
}

}  // namespace parqo
