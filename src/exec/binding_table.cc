#include "exec/binding_table.h"

#include <unordered_set>

#include "common/status.h"

namespace parqo {
namespace {

std::uint64_t HashRow(const TermId* row, int cols) {
  std::uint64_t h = 1469598103934665603ULL;
  for (int c = 0; c < cols; ++c) {
    h ^= row[c];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

void BindingTable::Deduplicate() {
  if (schema_.empty() || data_.empty()) return;
  const int cols = num_cols();
  // Hash-set of row indexes with custom equality over the row data.
  struct RowRef {
    const std::vector<TermId>* data;
    int cols;
    std::size_t row;
  };
  struct RowHash {
    std::size_t operator()(const RowRef& r) const {
      return HashRow(r.data->data() + r.row * r.cols, r.cols);
    }
  };
  struct RowEq {
    bool operator()(const RowRef& a, const RowRef& b) const {
      const TermId* pa = a.data->data() + a.row * a.cols;
      const TermId* pb = b.data->data() + b.row * b.cols;
      for (int c = 0; c < a.cols; ++c) {
        if (pa[c] != pb[c]) return false;
      }
      return true;
    }
  };
  std::unordered_set<RowRef, RowHash, RowEq> seen;
  std::vector<TermId> out;
  out.reserve(data_.size());
  const std::size_t rows = NumRows();
  for (std::size_t r = 0; r < rows; ++r) {
    if (seen.insert(RowRef{&data_, cols, r}).second) {
      const TermId* p = RowPtr(r);
      out.insert(out.end(), p, p + cols);
    }
  }
  data_ = std::move(out);
}

BindingTable BindingTable::Project(const std::vector<VarId>& vars) const {
  BindingTable out(vars);
  std::vector<int> cols;
  cols.reserve(vars.size());
  for (VarId v : vars) {
    int c = ColumnOf(v);
    PARQO_CHECK(c >= 0);
    cols.push_back(c);
  }
  std::vector<TermId> row(vars.size());
  const std::size_t rows = NumRows();
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t i = 0; i < cols.size(); ++i) {
      row[i] = At(r, cols[i]);
    }
    out.AppendRow(row);
  }
  out.Deduplicate();
  return out;
}

}  // namespace parqo
