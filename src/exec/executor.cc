#include "exec/executor.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "partition/partitioner.h"

namespace parqo {
namespace {

std::uint64_t HashKey(const std::vector<TermId>& key) {
  std::uint64_t h = 1469598103934665603ULL;
  for (TermId t : key) {
    h ^= t;
    h *= 1099511628211ULL;
  }
  return h;
}

// Sorted union of two schemas.
std::vector<VarId> MergeSchemas(const std::vector<VarId>& a,
                                const std::vector<VarId>& b) {
  std::vector<VarId> out = a;
  for (VarId v : b) {
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<VarId> SharedSchema(const std::vector<VarId>& a,
                                const std::vector<VarId>& b) {
  std::vector<VarId> out;
  for (VarId v : a) {
    if (std::find(b.begin(), b.end(), v) != b.end()) out.push_back(v);
  }
  return out;
}

// Hash join of two tables on all shared variables (cross product when none
// are shared, which only arises inside constant-anchored local queries).
BindingTable HashJoin(const BindingTable& left, const BindingTable& right) {
  std::vector<VarId> shared = SharedSchema(left.schema(), right.schema());
  std::vector<VarId> out_schema =
      MergeSchemas(left.schema(), right.schema());
  BindingTable out(out_schema);

  // Column plumbing.
  std::vector<int> left_key, right_key;
  for (VarId v : shared) {
    left_key.push_back(left.ColumnOf(v));
    right_key.push_back(right.ColumnOf(v));
  }
  std::vector<int> out_from_left(out_schema.size(), -1);
  std::vector<int> out_from_right(out_schema.size(), -1);
  for (std::size_t i = 0; i < out_schema.size(); ++i) {
    out_from_left[i] = left.ColumnOf(out_schema[i]);
    out_from_right[i] = right.ColumnOf(out_schema[i]);
  }

  std::vector<TermId> key(shared.size());
  std::vector<TermId> row(out_schema.size());
  auto emit = [&](std::size_t lr, std::size_t rr) {
    for (std::size_t i = 0; i < out_schema.size(); ++i) {
      row[i] = out_from_left[i] >= 0 ? left.At(lr, out_from_left[i])
                                     : right.At(rr, out_from_right[i]);
    }
    out.AppendRow(row);
  };

  if (shared.empty()) {
    for (std::size_t lr = 0; lr < left.NumRows(); ++lr) {
      for (std::size_t rr = 0; rr < right.NumRows(); ++rr) emit(lr, rr);
    }
    return out;
  }

  // Build on the smaller side.
  const bool build_left = left.NumRows() <= right.NumRows();
  const BindingTable& build = build_left ? left : right;
  const BindingTable& probe = build_left ? right : left;
  const std::vector<int>& build_key = build_left ? left_key : right_key;
  const std::vector<int>& probe_key = build_left ? right_key : left_key;

  std::unordered_multimap<std::uint64_t, std::size_t> table;
  table.reserve(build.NumRows());
  for (std::size_t r = 0; r < build.NumRows(); ++r) {
    for (std::size_t i = 0; i < key.size(); ++i) {
      key[i] = build.At(r, build_key[i]);
    }
    table.emplace(HashKey(key), r);
  }
  for (std::size_t r = 0; r < probe.NumRows(); ++r) {
    for (std::size_t i = 0; i < key.size(); ++i) {
      key[i] = probe.At(r, probe_key[i]);
    }
    auto [lo, hi] = table.equal_range(HashKey(key));
    for (auto it = lo; it != hi; ++it) {
      std::size_t b = it->second;
      bool equal = true;
      for (std::size_t i = 0; i < key.size(); ++i) {
        if (build.At(b, build_key[i]) != key[i]) {
          equal = false;
          break;
        }
      }
      if (!equal) continue;
      if (build_left) {
        emit(b, r);
      } else {
        emit(r, b);
      }
    }
  }
  return out;
}

// Concurrency cap for simulated-node work: beyond this many workers the
// extra threads only add scheduling overhead (cluster sizes in the
// hundreds used to spawn one thread each).
constexpr int kMaxNodeWorkers = 32;

// Runs fn(0..n-1); when parallel, the simulated cluster's nodes work
// concurrently on the shared pool (bounded workers, no per-node thread
// spawn). fn must only touch node-local state.
void ForEachNode(int n, bool parallel,
                 const std::function<void(int)>& fn) {
  if (!parallel || n <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool::Global().ParallelFor(n, fn, kMaxNodeWorkers);
}

const char* SpanName(const PlanNode& node) {
  if (node.kind == PlanNode::Kind::kScan) return "exec/scan";
  switch (node.method) {
    case JoinMethod::kLocal: return "exec/local_join";
    case JoinMethod::kBroadcast: return "exec/broadcast_join";
    case JoinMethod::kRepartition: return "exec/repartition_join";
  }
  return "exec/join";
}

// 8-byte TermIds; schema width is the row's wire size.
std::uint64_t RowBytes(const std::vector<VarId>& schema) {
  return static_cast<std::uint64_t>(schema.size()) * sizeof(TermId);
}

}  // namespace

ResolvedPattern BindPattern(const TriplePattern& pattern,
                            const JoinGraph& jg, const Dictionary& dict) {
  ResolvedPattern out;
  auto bind = [&](const PatternTerm& t, TermId* c, VarId* v) {
    if (t.IsVar()) {
      *v = jg.FindVar(t.var);
    } else {
      *c = dict.Lookup(t.term);
      if (*c == kInvalidTermId) out.unmatchable = true;
    }
  };
  bind(pattern.s, &out.s, &out.var_s);
  bind(pattern.p, &out.p, &out.var_p);
  bind(pattern.o, &out.o, &out.var_o);
  for (VarId v : {out.var_s, out.var_p, out.var_o}) {
    if (v != kInvalidVarId &&
        std::find(out.schema.begin(), out.schema.end(), v) ==
            out.schema.end()) {
      out.schema.push_back(v);
    }
  }
  std::sort(out.schema.begin(), out.schema.end());
  return out;
}

struct Executor::DistTable {
  std::vector<BindingTable> per_node;
  std::vector<VarId> schema;

  std::uint64_t GlobalRows() const {
    std::uint64_t sum = 0;
    for (const BindingTable& t : per_node) sum += t.NumRows();
    return sum;
  }
};

Executor::Executor(const Cluster& cluster, const JoinGraph& jg,
                   CostParams cost_params, bool parallel_nodes)
    : cluster_(cluster),
      jg_(jg),
      cost_model_(cost_params),
      parallel_nodes_(parallel_nodes) {}

Result<BindingTable> Executor::Execute(const PlanNode& plan,
                                       ExecMetrics* metrics) {
  Stopwatch watch;
  ExecMetrics local_metrics;
  ExecMetrics& m = metrics != nullptr ? *metrics : local_metrics;
  m = ExecMetrics{};

  const int n = cluster_.num_nodes();
  m.node_rows_scanned.assign(n, 0);
  m.node_rows_received.assign(n, 0);
  m.node_rows_joined.assign(n, 0);

  // Recursive evaluation; returns the distributed table and fills the
  // measured Eq. 3 cost of the subtree.
  struct Frame {
    DistTable table;
    double cost = 0;
  };
  std::function<Frame(const PlanNode&)> eval =
      [&](const PlanNode& node) -> Frame {
    // The span covers the whole subtree; nested operator spans on the
    // same thread render as a flame graph in the trace viewer.
    TraceSpan span(SpanName(node), "exec");
    Frame frame;
    if (node.kind == PlanNode::Kind::kScan) {
      ResolvedPattern rp =
          BindPattern(jg_.pattern(node.tp), jg_, cluster_.graph().dict());
      frame.table.schema = rp.schema;
      frame.table.per_node.resize(n);
      ForEachNode(n, parallel_nodes_, [&](int i) {
        frame.table.per_node[i] = cluster_.node(i).Scan(rp);
      });
      for (int i = 0; i < n; ++i) {
        std::uint64_t rows = frame.table.per_node[i].NumRows();
        m.rows_scanned += rows;
        m.node_rows_scanned[i] += rows;
      }
      frame.cost = 0;
      return frame;
    }

    // Evaluate children.
    std::vector<Frame> children;
    children.reserve(node.children.size());
    double max_child_cost = 0;
    std::vector<double> input_cards;
    for (const PlanNodePtr& c : node.children) {
      Frame f = eval(*c);
      max_child_cost = std::max(max_child_cost, f.cost);
      input_cards.push_back(static_cast<double>(f.table.GlobalRows()));
      children.push_back(std::move(f));
    }

    if (node.method != JoinMethod::kLocal) ++m.distributed_joins;

    DistTable out;
    out.per_node.resize(n);
    switch (node.method) {
      case JoinMethod::kLocal: {
        ForEachNode(n, parallel_nodes_, [&](int i) {
          BindingTable acc = children[0].table.per_node[i];
          for (std::size_t c = 1; c < children.size(); ++c) {
            acc = HashJoin(acc, children[c].table.per_node[i]);
          }
          out.per_node[i] = std::move(acc);
        });
        break;
      }
      case JoinMethod::kBroadcast: {
        // Keep the globally largest input partitioned; gather the rest.
        std::size_t largest = 0;
        for (std::size_t c = 1; c < children.size(); ++c) {
          if (children[c].table.GlobalRows() >
              children[largest].table.GlobalRows()) {
            largest = c;
          }
        }
        std::vector<BindingTable> gathered;
        for (std::size_t c = 0; c < children.size(); ++c) {
          if (c == largest) continue;
          BindingTable g(children[c].table.schema);
          for (const BindingTable& t : children[c].table.per_node) {
            for (std::size_t r = 0; r < t.NumRows(); ++r) {
              g.AppendRow(t.RowPtr(r));
            }
          }
          g.Deduplicate();
          // One copy of the gathered input lands on every node.
          std::uint64_t rows = g.NumRows() * static_cast<std::uint64_t>(n);
          std::uint64_t bytes = rows * RowBytes(g.schema());
          m.rows_transferred += rows;
          m.bytes_shipped += bytes;
          for (int i = 0; i < n; ++i) {
            m.node_rows_received[i] += g.NumRows();
          }
          m.edges.push_back({"broadcast", rows, bytes});
          gathered.push_back(std::move(g));
        }
        ForEachNode(n, parallel_nodes_, [&](int i) {
          BindingTable acc = children[largest].table.per_node[i];
          for (const BindingTable& g : gathered) {
            acc = HashJoin(acc, g);
          }
          out.per_node[i] = std::move(acc);
        });
        break;
      }
      case JoinMethod::kRepartition: {
        // Re-hash every input on the cmd's join variable.
        std::vector<std::vector<BindingTable>> routed(children.size());
        for (std::size_t c = 0; c < children.size(); ++c) {
          const DistTable& in = children[c].table;
          routed[c].assign(n, BindingTable(in.schema));
          int col = -1;
          if (!in.per_node.empty()) {
            col = in.per_node[0].ColumnOf(node.join_var);
          }
          PARQO_CHECK(col >= 0);
          // Count at the receiving end so per-node sums reproduce the
          // totals exactly: every routed row has one target.
          std::uint64_t edge_rows = 0;
          for (const BindingTable& t : in.per_node) {
            for (std::size_t r = 0; r < t.NumRows(); ++r) {
              int target = HashToNode(t.At(r, col), n);
              routed[c][target].AppendRow(t.RowPtr(r));
              ++m.node_rows_received[target];
            }
            edge_rows += t.NumRows();
          }
          std::uint64_t edge_bytes = edge_rows * RowBytes(in.schema);
          m.rows_transferred += edge_rows;
          m.bytes_shipped += edge_bytes;
          m.edges.push_back({"repartition", edge_rows, edge_bytes});
          // Replicated source rows can meet at the target; dedup there.
          for (BindingTable& t : routed[c]) t.Deduplicate();
        }
        ForEachNode(n, parallel_nodes_, [&](int i) {
          BindingTable acc = std::move(routed[0][i]);
          for (std::size_t c = 1; c < children.size(); ++c) {
            acc = HashJoin(acc, routed[c][i]);
          }
          out.per_node[i] = std::move(acc);
        });
        break;
      }
    }
    out.schema = out.per_node.empty() ? std::vector<VarId>{}
                                      : out.per_node[0].schema();
    for (int i = 0; i < n; ++i) {
      m.node_rows_joined[i] += out.per_node[i].NumRows();
    }

    double output_card = static_cast<double>(out.GlobalRows());
    double op_cost = cost_model_.JoinOpCost(node.method, input_cards,
                                            output_card);
    m.total_work += op_cost;
    frame.cost = max_child_cost + op_cost;
    frame.table = std::move(out);
    return frame;
  };

  Frame root = eval(plan);
  m.measured_cost = root.cost;

  // Gather and deduplicate the global result.
  BindingTable result(root.table.schema);
  for (const BindingTable& t : root.table.per_node) {
    for (std::size_t r = 0; r < t.NumRows(); ++r) {
      result.AppendRow(t.RowPtr(r));
    }
  }
  result.Deduplicate();
  m.result_rows = result.NumRows();
  m.wall_seconds = watch.ElapsedSeconds();

  if (MetricsEnabled()) {
    MetricsRegistry& reg = MetricsRegistry::Global();
    reg.counter("exec.queries").Add(1);
    reg.counter("exec.rows_scanned").Add(m.rows_scanned);
    reg.counter("exec.rows_transferred").Add(m.rows_transferred);
    reg.counter("exec.bytes_shipped").Add(m.bytes_shipped);
    reg.counter("exec.distributed_joins").Add(m.distributed_joins);
    reg.counter("exec.result_rows").Add(m.result_rows);
    reg.histogram("exec.wall_seconds").Observe(m.wall_seconds);
    reg.histogram("exec.measured_cost").Observe(m.measured_cost);
  }
  return result;
}

Result<BindingTable> ExecuteAndProject(Executor& executor,
                                       const PlanNode& plan,
                                       const ParsedQuery& query,
                                       const JoinGraph& jg,
                                       ExecMetrics* metrics) {
  Result<BindingTable> full = executor.Execute(plan, metrics);
  if (!full.ok()) return full;
  if (query.select_all) return full;
  std::vector<VarId> vars;
  for (const std::string& name : query.select_vars) {
    VarId v = jg.FindVar(name);
    if (v == kInvalidVarId) {
      return Status::InvalidArgument("SELECT variable ?" + name +
                                     " does not occur in the query body");
    }
    vars.push_back(v);
  }
  return full->Project(vars);
}

}  // namespace parqo
